// Tests for the baseline policies: static partition and proportional share.

#include "baselines/proportional_share.hpp"
#include "baselines/static_partition.hpp"

#include <gtest/gtest.h>

#include "core/world.hpp"

using namespace heteroplace;
using namespace heteroplace::util::literals;
using baselines::ProportionalShareConfig;
using baselines::ProportionalSharePolicy;
using baselines::ShareMode;
using baselines::StaticPartitionConfig;
using baselines::StaticPartitionPolicy;
using cluster::Resources;
using core::World;
using util::Seconds;
using workload::JobSpec;

namespace {

JobSpec make_spec(unsigned id, double submit) {
  JobSpec s;
  s.id = util::JobId{id};
  s.work = util::MhzSeconds{3.0e6};
  s.max_speed = 3000_mhz;
  s.memory = 1300_mb;
  s.submit_time = Seconds{submit};
  s.completion_goal = Seconds{4000.0};
  return s;
}

void add_web_app(World& world, double lambda) {
  workload::TxAppSpec spec;
  spec.id = util::AppId{0};
  spec.name = "web";
  spec.rt_goal = Seconds{1.2};
  spec.service_demand = 5000.0;
  spec.instance_memory = 1024_mb;
  spec.max_instances = 16;
  spec.max_cpu_per_instance = 12000_mhz;
  world.add_app(workload::TxApp{spec, workload::DemandTrace{lambda}});
}

}  // namespace

// --- Static partition -----------------------------------------------------------

TEST(StaticPartition, SplitsNodesByFraction) {
  World world;
  world.cluster().add_nodes(10, Resources{12000_mhz, 4096_mb});
  add_web_app(world, 10.0);
  for (unsigned i = 0; i < 40; ++i) world.submit_job(make_spec(i, i * 10.0));

  StaticPartitionConfig cfg;
  cfg.tx_node_fraction = 0.4;
  StaticPartitionPolicy policy(cfg);
  const auto out = policy.decide(world, 0_s);

  // Instances on the 4 TX nodes only.
  EXPECT_EQ(out.plan.instances.size(), 4u);
  for (const auto& inst : out.plan.instances) EXPECT_LT(inst.node.get(), 4u);
  // Jobs only on the remaining 6 nodes, 3 per node max: 18 placed.
  EXPECT_EQ(out.plan.jobs.size(), 18u);
  for (const auto& jp : out.plan.jobs) EXPECT_GE(jp.node.get(), 4u);
}

TEST(StaticPartition, JobsPlacedFcfsAtFullSpeed) {
  World world;
  world.cluster().add_nodes(2, Resources{12000_mhz, 4096_mb});
  add_web_app(world, 10.0);
  // Submit in reverse id order to prove it is submit time that matters.
  world.submit_job(make_spec(5, 500.0));
  world.submit_job(make_spec(1, 100.0));
  world.submit_job(make_spec(2, 200.0));
  world.submit_job(make_spec(3, 300.0));

  StaticPartitionConfig cfg;
  cfg.tx_node_fraction = 0.5;  // 1 TX node, 1 job node with 3 slots
  StaticPartitionPolicy policy(cfg);
  const auto out = policy.decide(world, 1000_s);
  ASSERT_EQ(out.plan.jobs.size(), 3u);
  // The three earliest submissions got the slots at full speed.
  for (const auto& jp : out.plan.jobs) {
    EXPECT_NE(jp.job.get(), 5u);
    EXPECT_DOUBLE_EQ(jp.cpu.get(), 3000.0);
  }
}

TEST(StaticPartition, NeverMigrates) {
  // A job running on a job node stays there across decisions.
  World world;
  world.cluster().add_nodes(4, Resources{12000_mhz, 4096_mb});
  add_web_app(world, 10.0);
  auto& job = world.submit_job(make_spec(0, 0.0));
  job.set_phase(0_s, workload::JobPhase::kStarting);
  job.set_phase(0_s, workload::JobPhase::kRunning);
  job.set_node(util::NodeId{3});

  StaticPartitionPolicy policy({0.5});
  const auto out1 = policy.decide(world, 100_s);
  const auto out2 = policy.decide(world, 700_s);
  ASSERT_EQ(out1.plan.jobs.size(), 1u);
  ASSERT_EQ(out2.plan.jobs.size(), 1u);
  EXPECT_EQ(out1.plan.jobs[0].node.get(), 3u);
  EXPECT_EQ(out2.plan.jobs[0].node.get(), 3u);
}

TEST(StaticPartition, ZeroFractionGivesJobsEverything) {
  World world;
  world.cluster().add_nodes(3, Resources{12000_mhz, 4096_mb});
  add_web_app(world, 10.0);
  for (unsigned i = 0; i < 12; ++i) world.submit_job(make_spec(i, i * 1.0));
  StaticPartitionPolicy policy({0.0});
  const auto out = policy.decide(world, 100_s);
  EXPECT_TRUE(out.plan.instances.empty());
  EXPECT_EQ(out.plan.jobs.size(), 9u);  // 3 nodes × 3 slots
}

// --- Proportional share ------------------------------------------------------------

TEST(ProportionalShare, EqualModeSplitsEvenly) {
  World world;
  world.cluster().add_nodes(2, Resources{12000_mhz, 4096_mb});
  add_web_app(world, 24.0);
  world.submit_job(make_spec(0, 0.0));

  auto job_model = std::make_shared<utility::JobUtilityModel>();
  auto tx_model = std::make_shared<utility::TxUtilityModel>();
  ProportionalShareConfig cfg;
  cfg.mode = ShareMode::kEqualPerWorkload;
  ProportionalSharePolicy policy(job_model, tx_model, cfg);
  const auto out = policy.decide(world, 0_s);

  // Two consumers, 24000 MHz: 12000 each, but the job is capped by its
  // demand (1500 MHz reaches the utility plateau at t=0).
  ASSERT_EQ(out.diag.apps.size(), 1u);
  EXPECT_NEAR(out.diag.apps[0].target.get(), 12000.0, 1e-6);
  EXPECT_NEAR(out.diag.jobs_target.get(), 1500.0, 1e-6);
}

TEST(ProportionalShare, DemandModeFollowsDemands) {
  World world;
  world.cluster().add_nodes(2, Resources{12000_mhz, 4096_mb});
  add_web_app(world, 24.0);  // demand ≈ 161667, dwarfs one job's 3000
  world.submit_job(make_spec(0, 0.0));

  auto job_model = std::make_shared<utility::JobUtilityModel>();
  auto tx_model = std::make_shared<utility::TxUtilityModel>();
  ProportionalShareConfig cfg;
  cfg.mode = ShareMode::kDemandProportional;
  ProportionalSharePolicy policy(job_model, tx_model, cfg);
  const auto out = policy.decide(world, 0_s);
  ASSERT_EQ(out.diag.apps.size(), 1u);
  // App gets nearly everything: share ratio ≈ demand ratio.
  EXPECT_GT(out.diag.apps[0].target.get(), 20000.0);
  EXPECT_LT(out.diag.jobs_target.get(), 1000.0);
}

TEST(ProportionalShare, UtilityBlindnessShowsInDiagnostics) {
  // Proportional share reports hypothetical utilities so experiments can
  // compare: with equal split, a tight-deadline job and the app land at
  // different utilities (no equalization).
  World world;
  world.cluster().add_nodes(1, Resources{12000_mhz, 4096_mb});
  add_web_app(world, 24.0);
  auto spec = make_spec(0, 0.0);
  spec.completion_goal = Seconds{1200.0};  // tight: needs ~2500 MHz for goal
  world.submit_job(spec);

  auto job_model = std::make_shared<utility::JobUtilityModel>();
  auto tx_model = std::make_shared<utility::TxUtilityModel>();
  ProportionalSharePolicy policy(job_model, tx_model, {});
  const auto out = policy.decide(world, 0_s);
  EXPECT_TRUE(std::isnan(out.diag.u_star));  // no equalization happened
  EXPECT_EQ(out.diag.active_jobs, 1);
}
