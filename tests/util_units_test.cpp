// Tests for strong unit types and tagged identifiers.

#include "util/ids.hpp"
#include "util/units.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

using namespace heteroplace::util;
using namespace heteroplace::util::literals;

TEST(Units, ArithmeticWithinAUnit) {
  const CpuMhz a{3000.0};
  const CpuMhz b{1500.0};
  EXPECT_DOUBLE_EQ((a + b).get(), 4500.0);
  EXPECT_DOUBLE_EQ((a - b).get(), 1500.0);
  EXPECT_DOUBLE_EQ((a * 2.0).get(), 6000.0);
  EXPECT_DOUBLE_EQ((0.5 * a).get(), 1500.0);
  EXPECT_DOUBLE_EQ((a / 3.0).get(), 1000.0);
  EXPECT_DOUBLE_EQ(a / b, 2.0);  // ratio is dimensionless
  EXPECT_DOUBLE_EQ((-a).get(), -3000.0);
}

TEST(Units, CompoundAssignment) {
  CpuMhz a{100.0};
  a += CpuMhz{50.0};
  a -= CpuMhz{30.0};
  a *= 2.0;
  EXPECT_DOUBLE_EQ(a.get(), 240.0);
}

TEST(Units, Comparisons) {
  EXPECT_LT(CpuMhz{1.0}, CpuMhz{2.0});
  EXPECT_EQ(Seconds{5.0}, Seconds{5.0});
  EXPECT_GE(MemMb{10.0}, MemMb{10.0});
}

TEST(Units, WorkSpeedTimeRelations) {
  // work = speed × time and the two divisions invert it.
  const CpuMhz speed{3000.0};
  const Seconds t{16000.0};
  const MhzSeconds work = speed * t;
  EXPECT_DOUBLE_EQ(work.get(), 4.8e7);
  EXPECT_DOUBLE_EQ((work / speed).get(), 16000.0);
  EXPECT_DOUBLE_EQ((work / t).get(), 3000.0);
  EXPECT_DOUBLE_EQ((t * speed).get(), work.get());
}

TEST(Units, Literals) {
  EXPECT_DOUBLE_EQ((3000_mhz).get(), 3000.0);
  EXPECT_DOUBLE_EQ((1.5_mhz).get(), 1.5);
  EXPECT_DOUBLE_EQ((4096_mb).get(), 4096.0);
  EXPECT_DOUBLE_EQ((600_s).get(), 600.0);
  EXPECT_DOUBLE_EQ((0.5_s).get(), 0.5);
}

TEST(Units, StreamOutput) {
  std::ostringstream os;
  os << CpuMhz{12000.0};
  EXPECT_EQ(os.str(), "12000");
}

TEST(Ids, DefaultIsInvalid) {
  const JobId id;
  EXPECT_FALSE(id.valid());
  std::ostringstream os;
  os << id;
  EXPECT_EQ(os.str(), "<none>");
}

TEST(Ids, ValueAndValidity) {
  const NodeId n{7};
  EXPECT_TRUE(n.valid());
  EXPECT_EQ(n.get(), 7u);
  std::ostringstream os;
  os << n;
  EXPECT_EQ(os.str(), "7");
}

TEST(Ids, ComparisonAndOrdering) {
  EXPECT_EQ(JobId{3}, JobId{3});
  EXPECT_NE(JobId{3}, JobId{4});
  EXPECT_LT(JobId{3}, JobId{4});
}

TEST(Ids, DistinctTagsAreDistinctTypes) {
  // Compile-time property: JobId and NodeId do not mix. (If this
  // compiles at all, the types exist independently; equality across tags
  // would be a compile error, which we cannot express in a runtime test —
  // this documents the intent.)
  static_assert(!std::is_same_v<JobId, NodeId>);
  static_assert(!std::is_same_v<VmId, AppId>);
}

TEST(Ids, Hashable) {
  std::unordered_set<JobId> set;
  set.insert(JobId{1});
  set.insert(JobId{2});
  set.insert(JobId{1});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.count(JobId{2}) > 0);
}
