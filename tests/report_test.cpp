// Report tests: the summary CSV header and row must agree column for
// column (sweep benches concatenate them blindly), and print_series_csv
// must thin to every n-th row of the union time grid with zero-order
// hold for series missing a sample at that time.

#include "scenario/report.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "scenario/metrics.hpp"
#include "util/time_series.hpp"

using namespace heteroplace;

namespace {

std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream in(line);
  while (std::getline(in, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::string line;
  std::istringstream in(text);
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

}  // namespace

TEST(Report, SummaryCsvHeaderAndRowAgree) {
  scenario::ExperimentSummary s;
  s.scenario = "unit";
  s.policy = "utility";
  s.jobs_completed = 3;
  s.jobs_submitted = 4;
  const auto header = split_csv(scenario::summary_csv_header());
  const auto row = split_csv(scenario::summary_csv_row(s));
  EXPECT_EQ(header.size(), row.size());
  // Spot-check that the row's cells line up with their headers.
  ASSERT_GE(header.size(), 4u);
  EXPECT_EQ(header[0], "scenario");
  EXPECT_EQ(row[0], "unit");
  EXPECT_EQ(header[1], "policy");
  EXPECT_EQ(row[1], "utility");
  EXPECT_EQ(header[2], "jobs_completed");
  EXPECT_EQ(row[2], "3");
  EXPECT_EQ(header[3], "jobs_submitted");
  EXPECT_EQ(row[3], "4");
}

TEST(Report, SeriesCsvUnionGridAndZeroOrderHold) {
  util::TimeSeriesSet set;
  set.add("a", 0.0, 1.0);
  set.add("a", 10.0, 2.0);
  set.add("b", 5.0, 7.0);  // no sample at t=0 or t=10

  std::ostringstream os;
  scenario::print_series_csv(os, set, {"a", "b", "missing"});
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 4u);  // header + union of {0, 5, 10}
  EXPECT_EQ(split_csv(lines[0]), (std::vector<std::string>{"t", "a", "b", "missing"}));
  // t=0: b has no sample yet -> 0; an unknown series is all zeros.
  EXPECT_EQ(split_csv(lines[1]), (std::vector<std::string>{"0", "1", "0", "0"}));
  // t=5: a holds its t=0 value.
  EXPECT_EQ(split_csv(lines[2]), (std::vector<std::string>{"5", "1", "7", "0"}));
  // t=10: b holds its t=5 value.
  EXPECT_EQ(split_csv(lines[3]), (std::vector<std::string>{"10", "2", "7", "0"}));
}

TEST(Report, SeriesCsvEveryNthThins) {
  util::TimeSeriesSet set;
  for (int i = 0; i < 10; ++i) set.add("a", static_cast<double>(i), static_cast<double>(i));

  std::ostringstream os;
  scenario::print_series_csv(os, set, {"a"}, /*every_nth=*/4);
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 4u);  // header + rows at t = 0, 4, 8
  EXPECT_EQ(split_csv(lines[1])[0], "0");
  EXPECT_EQ(split_csv(lines[2])[0], "4");
  EXPECT_EQ(split_csv(lines[3])[0], "8");

  // every_nth < 1 clamps to 1 (prints every row).
  std::ostringstream all;
  scenario::print_series_csv(all, set, {"a"}, /*every_nth=*/0);
  EXPECT_EQ(lines_of(all.str()).size(), 11u);
}
