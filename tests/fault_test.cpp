// Fault-injection subsystem tests: the FaultSchedule (window validation,
// per-target substream determinism, overlap coalescing), the
// FaultInjector against a live world (crash teardown + checkpoint
// revert + timed recovery, interval-checkpoint progress loss), the
// closed-form transfer retry/backoff timeline after a link kill
// (including failback after an exhausted retry budget), chaos
// determinism across reruns, the bit-identity pins that faults-disabled
// and enabled-with-an-empty-schedule runs reproduce the pre-fault
// output exactly (single-world and federated), and the fail-loud
// fault.* config surface.

#include "faults/injector.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "core/utility_policy.hpp"
#include "core/world.hpp"
#include "faults/fault_schedule.hpp"
#include "federation/federation.hpp"
#include "migration/manager.hpp"
#include "migration/policy.hpp"
#include "migration/transfer_model.hpp"
#include "scenario/config_loader.hpp"
#include "scenario/experiment.hpp"
#include "scenario/federation_experiment.hpp"
#include "sim/engine.hpp"
#include "util/config.hpp"
#include "utility/utility_fn.hpp"

using namespace heteroplace;
using namespace heteroplace::util::literals;

namespace {

std::unique_ptr<core::UtilityDrivenPolicy> make_policy() {
  return std::make_unique<core::UtilityDrivenPolicy>(
      std::make_shared<utility::JobUtilityModel>(), std::make_shared<utility::TxUtilityModel>());
}

workload::JobSpec make_job(unsigned id, double submit = 0.0) {
  workload::JobSpec s;
  s.id = util::JobId{id};
  s.work = util::MhzSeconds{3.0e6};  // 1000 s at full speed
  s.max_speed = 3000_mhz;
  s.memory = 1300_mb;
  s.submit_time = util::Seconds{submit};
  s.completion_goal = util::Seconds{8000.0};
  return s;
}

void add_nodes(federation::Domain& d, int n) {
  d.world().cluster().add_nodes(n, cluster::Resources{12000_mhz, 4096_mb});
}

faults::FaultWindow node_window(std::size_t domain, std::size_t node, double start, double end) {
  faults::FaultWindow w;
  w.kind = faults::FaultKind::kNodeCrash;
  w.domain = domain;
  w.node = node;
  w.start_s = start;
  w.end_s = end;
  return w;
}

void expect_same_series(const util::TimeSeriesSet& a, const util::TimeSeriesSet& b,
                        const std::string& name) {
  const auto* sa = a.find(name);
  const auto* sb = b.find(name);
  ASSERT_NE(sa, nullptr) << name;
  ASSERT_NE(sb, nullptr) << name;
  ASSERT_EQ(sa->size(), sb->size()) << name;
  for (std::size_t i = 0; i < sa->size(); ++i) {
    EXPECT_DOUBLE_EQ(sa->points()[i].t, sb->points()[i].t) << name << " point " << i;
    EXPECT_DOUBLE_EQ(sa->points()[i].v, sb->points()[i].v) << name << " point " << i;
  }
}

}  // namespace

// --- FaultSchedule -----------------------------------------------------------

TEST(FaultSchedule, RejectsBadWindows) {
  faults::FaultSchedule s;
  EXPECT_THROW(s.add(node_window(0, 0, -1.0, 10.0)), std::invalid_argument);
  EXPECT_THROW(s.add(node_window(0, 0, 10.0, 10.0)), std::invalid_argument);
  EXPECT_THROW(s.add(node_window(0, 0, 10.0, 5.0)), std::invalid_argument);
  faults::FaultWindow w = node_window(0, 0, 1.0, 2.0);
  w.severity = 0.0;
  EXPECT_THROW(s.add(w), std::invalid_argument);
  w.severity = 1.5;
  EXPECT_THROW(s.add(w), std::invalid_argument);
  EXPECT_TRUE(s.empty());
  EXPECT_NO_THROW(s.add(node_window(0, 0, 1.0, 2.0)));
  EXPECT_EQ(s.size(), 1u);
}

TEST(FaultSchedule, CoalescesOverlappingSameTargetWindows) {
  faults::FaultSchedule s;
  s.add(node_window(0, 0, 100.0, 200.0));
  s.add(node_window(0, 0, 150.0, 300.0));  // overlaps the first
  s.add(node_window(0, 1, 120.0, 130.0));  // different target: untouched
  s.add(node_window(0, 0, 400.0, 450.0));  // disjoint: untouched

  const auto merged = s.finalized();
  ASSERT_EQ(merged.size(), 3u);
  // Sorted by start; the overlapping pair coalesced to the union extent
  // (the injector must never crash a node that is already down).
  EXPECT_DOUBLE_EQ(merged[0].start_s, 100.0);
  EXPECT_DOUBLE_EQ(merged[0].end_s, 300.0);
  EXPECT_EQ(merged[0].node, 0u);
  EXPECT_DOUBLE_EQ(merged[1].start_s, 120.0);
  EXPECT_EQ(merged[1].node, 1u);
  EXPECT_DOUBLE_EQ(merged[2].start_s, 400.0);
  EXPECT_DOUBLE_EQ(merged[2].end_s, 450.0);
}

TEST(FaultSchedule, GenerateIsDeterministicAndPerTargetStable) {
  faults::FaultRates rates;
  rates.node_mttf_s = 5000.0;
  rates.node_mttr_s = 500.0;

  faults::FaultSchedule a;
  a.generate(rates, 42, 100000.0, {3});
  faults::FaultSchedule b;
  b.generate(rates, 42, 100000.0, {3});
  ASSERT_GT(a.size(), 0u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.raw()[i].start_s, b.raw()[i].start_s);
    EXPECT_DOUBLE_EQ(a.raw()[i].end_s, b.raw()[i].end_s);
    EXPECT_EQ(a.raw()[i].node, b.raw()[i].node);
  }

  // A different seed shifts the pattern.
  faults::FaultSchedule c;
  c.generate(rates, 43, 100000.0, {3});
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a.raw()[i].start_s != c.raw()[i].start_s;
  }
  EXPECT_TRUE(differs);

  // Per-target substreams: growing the cluster must not perturb the fault
  // pattern of the nodes that were already there.
  faults::FaultSchedule grown;
  grown.generate(rates, 42, 100000.0, {4});
  std::vector<faults::FaultWindow> small_n0n1n2, grown_n0n1n2;
  for (const auto& w : a.raw()) small_n0n1n2.push_back(w);
  for (const auto& w : grown.raw()) {
    if (w.node < 3) grown_n0n1n2.push_back(w);
  }
  ASSERT_EQ(small_n0n1n2.size(), grown_n0n1n2.size());
  for (std::size_t i = 0; i < small_n0n1n2.size(); ++i) {
    EXPECT_DOUBLE_EQ(small_n0n1n2[i].start_s, grown_n0n1n2[i].start_s);
    EXPECT_EQ(small_n0n1n2[i].node, grown_n0n1n2[i].node);
  }
}

TEST(FaultSchedule, GenerateNeedsAHorizonWhenRatesAreSet) {
  faults::FaultRates rates;
  rates.node_mttf_s = 5000.0;
  rates.node_mttr_s = 500.0;
  faults::FaultSchedule s;
  EXPECT_THROW(s.generate(rates, 1, 0.0, {2}), std::invalid_argument);
  // No enabled process: nothing to draw, any horizon is fine.
  faults::FaultSchedule quiet;
  EXPECT_NO_THROW(quiet.generate(faults::FaultRates{}, 1, 0.0, {2}));
  EXPECT_TRUE(quiet.empty());
}

// --- injector validation ------------------------------------------------------

TEST(FaultInjector, ValidatesHooksAndScheduleTargets) {
  sim::Engine engine;
  EXPECT_THROW(faults::FaultInjector(engine, {}, faults::FaultSchedule{}),
               std::invalid_argument);

  core::World world;
  world.cluster().add_nodes(2, cluster::Resources{12000_mhz, 4096_mb});
  core::PlacementController controller(engine, world, make_policy());

  {
    faults::FaultSchedule s;
    s.add(node_window(1, 0, 10.0, 20.0));  // domain 1 does not exist
    faults::FaultInjector inj(engine, {{&world, &controller, nullptr}}, std::move(s));
    EXPECT_THROW(inj.start(), std::invalid_argument);
  }
  {
    faults::FaultSchedule s;
    s.add(node_window(0, 7, 10.0, 20.0));  // node 7 does not exist
    faults::FaultInjector inj(engine, {{&world, &controller, nullptr}}, std::move(s));
    EXPECT_THROW(inj.start(), std::invalid_argument);
  }
  {
    faults::FaultSchedule s;
    faults::FaultWindow w;
    w.kind = faults::FaultKind::kLinkFault;
    w.domain = 0;
    w.to = 1;
    w.start_s = 10.0;
    w.end_s = 20.0;
    s.add(w);
    // Link faults need a migration manager to own the retry machinery.
    faults::FaultInjector inj(engine, {{&world, &controller, nullptr}}, std::move(s));
    EXPECT_THROW(inj.start(), std::invalid_argument);
  }
}

// --- node crash against a live world -----------------------------------------

TEST(FaultInjector, CrashDestroysVmsRevertsJobAndTimedRecoveryRestarts) {
  sim::Engine engine;
  core::World world;
  world.cluster().add_nodes(1, cluster::Resources{12000_mhz, 4096_mb});
  core::PlacementController controller(engine, world, make_policy());

  faults::FaultSchedule schedule;
  schedule.add(node_window(0, 0, 250.0, 600.0));
  faults::FaultInjector injector(engine, {{&world, &controller, nullptr}},
                                 std::move(schedule));  // continuous checkpointing

  const auto spec = make_job(0);
  engine.schedule_at(0_s, sim::EventPriority::kWorkloadArrival,
                     [&world, spec] { world.submit_job(spec); });

  // Probe the job's exact progress right as the crash fires but before
  // kFault runs (kWorkloadArrival sorts ahead of kFault at one
  // timestamp).
  double done_at_crash = -1.0;
  engine.schedule_at(util::Seconds{250.0}, sim::EventPriority::kWorkloadArrival, [&] {
    auto& job = world.job(util::JobId{0});
    job.advance_to(engine.now());
    done_at_crash = job.done().get();
    EXPECT_EQ(job.phase(), workload::JobPhase::kRunning);
  });

  controller.start();
  injector.start();

  engine.run_until(util::Seconds{250.0});
  const auto& job = world.job(util::JobId{0});
  ASSERT_GT(done_at_crash, 0.0);
  // Torn down: VM destroyed, job pending, continuous checkpointing kept
  // every MHz·s of progress, node refuses placement at zero power.
  EXPECT_EQ(job.phase(), workload::JobPhase::kPending);
  EXPECT_FALSE(job.vm().valid());
  EXPECT_TRUE(world.cluster().node(util::NodeId{0}).residents().empty());
  EXPECT_DOUBLE_EQ(job.done().get(), done_at_crash);
  EXPECT_EQ(world.cluster().node(util::NodeId{0}).power_state(), cluster::PowerState::kFailed);
  EXPECT_FALSE(world.cluster().node(util::NodeId{0}).placeable());
  EXPECT_EQ(injector.failed_node_count(0), 1u);
  EXPECT_DOUBLE_EQ(injector.availability(0), 0.0);  // the only node is down
  const auto mid = injector.stats(0, engine.now());
  EXPECT_EQ(mid.node_crashes, 1);
  EXPECT_EQ(mid.jobs_reverted, 1);
  EXPECT_DOUBLE_EQ(mid.jobs_lost_progress_s, 0.0);

  // While the node is down nothing can restart the job.
  engine.run_until(util::Seconds{599.0});
  EXPECT_EQ(world.job(util::JobId{0}).phase(), workload::JobPhase::kPending);
  EXPECT_DOUBLE_EQ(injector.downtime_s(0, engine.now()), 349.0);

  // Timed recovery: node comes back, the controller re-places the job and
  // it finishes with only the downtime lost, not the progress.
  while (world.completed_count() < 1 && engine.now().get() < 1.0e5) {
    engine.run_until(engine.now() + util::Seconds{1000.0});
  }
  ASSERT_EQ(world.completed_count(), 1u);
  EXPECT_EQ(world.cluster().node(util::NodeId{0}).power_state(), cluster::PowerState::kActive);
  EXPECT_GE(world.job(util::JobId{0}).done().get(), spec.work.get() - 1e-6);
  const auto fin = injector.stats(0, engine.now());
  EXPECT_EQ(fin.node_recoveries, 1);
  EXPECT_EQ(fin.repairs, 1);
  EXPECT_DOUBLE_EQ(injector.mttr_s(), 350.0);
  EXPECT_DOUBLE_EQ(fin.downtime_s, 350.0);
  EXPECT_TRUE(world.cluster().validate().empty());
}

TEST(FaultInjector, IntervalCheckpointingLosesProgressSinceLastTick) {
  sim::Engine engine;
  core::World world;
  world.cluster().add_nodes(1, cluster::Resources{12000_mhz, 4096_mb});
  core::PlacementController controller(engine, world, make_policy());

  faults::FaultSchedule schedule;
  schedule.add(node_window(0, 0, 250.0, 400.0));
  faults::FaultOptions options;
  options.checkpoint_interval_s = 100.0;  // ticks at 100, 200, ...
  faults::FaultInjector injector(engine, {{&world, &controller, nullptr}},
                                 std::move(schedule), options);

  const auto spec = make_job(0);
  engine.schedule_at(0_s, sim::EventPriority::kWorkloadArrival,
                     [&world, spec] { world.submit_job(spec); });

  // Sample the exact progress at the last checkpoint before the crash
  // (kSampling runs after the kFault checkpoint tick at t=200) and at
  // the crash instant (kWorkloadArrival runs before kFault at t=250).
  double done_at_ckpt = -1.0, done_at_crash = -1.0;
  engine.schedule_at(util::Seconds{200.0}, sim::EventPriority::kSampling, [&] {
    done_at_ckpt = world.job(util::JobId{0}).done().get();
  });
  engine.schedule_at(util::Seconds{250.0}, sim::EventPriority::kWorkloadArrival, [&] {
    auto& job = world.job(util::JobId{0});
    job.advance_to(engine.now());
    done_at_crash = job.done().get();
  });

  controller.start();
  injector.start();
  engine.run_until(util::Seconds{250.0});

  ASSERT_GT(done_at_ckpt, 0.0);
  ASSERT_GT(done_at_crash, done_at_ckpt);
  // The crash rewinds to the t=200 checkpoint; the 50 s of work done
  // since (at max_speed) is the accounted loss.
  EXPECT_DOUBLE_EQ(world.job(util::JobId{0}).done().get(), done_at_ckpt);
  EXPECT_DOUBLE_EQ(injector.stats(0, engine.now()).jobs_lost_progress_s,
                   (done_at_crash - done_at_ckpt) / spec.max_speed.get());
}

// --- link kill → retry/backoff timeline --------------------------------------

namespace {

/// Two-domain drain fixture: job 0 runs in its routed domain, which
/// drains at t=500 so the 540 s migration tick starts the evacuation
/// (suspend lands 15 s later, at 555). The link dies at 545 — after the
/// move was initiated, before the checkpoint hits the wire.
struct RetryFixture {
  sim::Engine engine;
  federation::Federation fed{engine, federation::make_router("least-loaded")};
  std::unique_ptr<migration::MigrationManager> mgr;
  std::size_t src = 99, dst = 99;

  explicit RetryFixture(int max_retries) {
    for (int i = 0; i < 2; ++i) {
      add_nodes(fed.add_domain("d" + std::to_string(i), make_policy()), 2);
    }
    migration::MigrationOptions opts;
    opts.check_interval = util::Seconds{60.0};
    opts.max_transfer_retries = max_retries;
    opts.retry_backoff_s = 30.0;
    opts.retry_backoff_max_s = 480.0;
    mgr = std::make_unique<migration::MigrationManager>(
        fed, migration::TransferModel{}, migration::make_migration_policy("drain"), opts);

    const auto spec = make_job(0);
    engine.schedule_at(0_s, sim::EventPriority::kWorkloadArrival,
                       [this, spec] { fed.submit_job(spec); });
    engine.schedule_at(util::Seconds{500.0}, sim::EventPriority::kWorkloadArrival, [this] {
      src = fed.job_domain(util::JobId{0});
      dst = 1 - src;
      fed.set_domain_weight(src, 0.0);
    });
    engine.schedule_at(util::Seconds{545.0}, sim::EventPriority::kFault,
                       [this] { mgr->apply_link_fault(src, dst, /*bandwidth_factor=*/0.0); });
    fed.start();
    mgr->start();
  }
};

}  // namespace

TEST(FaultRecovery, RetryBackoffTimelineIsClosedForm) {
  RetryFixture fx(/*max_retries=*/3);
  // Restore the link between the 2nd and 3rd retry attempts.
  fx.engine.schedule_at(util::Seconds{700.0}, sim::EventPriority::kFault,
                        [&fx] { fx.mgr->clear_link_fault(fx.src, fx.dst); });

  // Checkpoint lands at 555 on a dead link → park in retry-wait. Capped
  // exponential backoff from there: 30·2^k ⇒ attempts at 585 (down), 645
  // (down), 765 (link back up → resubmit succeeds).
  fx.engine.run_until(util::Seconds{556.0});
  EXPECT_TRUE(fx.mgr->job_in_flight(util::JobId{0}));
  EXPECT_EQ(fx.mgr->stats().started, 1);

  fx.engine.run_until(util::Seconds{764.0});
  EXPECT_EQ(fx.mgr->stats().transfer_retries, 0);  // both attempts found it down
  EXPECT_TRUE(fx.mgr->job_in_flight(util::JobId{0}));

  fx.engine.run_until(util::Seconds{766.0});
  EXPECT_EQ(fx.mgr->stats().transfer_retries, 1);

  // The resubmitted image takes 1300 MB / 125 MB/s + 2 s latency =
  // 12.4 s of wire time: arrival at exactly 777.4.
  fx.engine.run_until(util::Seconds{777.3});
  EXPECT_TRUE(fx.mgr->job_in_flight(util::JobId{0}));
  fx.engine.run_until(util::Seconds{777.5});
  EXPECT_FALSE(fx.mgr->job_in_flight(util::JobId{0}));
  EXPECT_EQ(fx.fed.job_domain(util::JobId{0}), fx.dst);

  while (fx.fed.total_completed() < 1 && fx.engine.now().get() < 1.0e5) {
    fx.engine.run_until(fx.engine.now() + util::Seconds{1000.0});
  }
  ASSERT_EQ(fx.fed.total_completed(), 1u);
  EXPECT_EQ(fx.mgr->stats().completed, 1);
  EXPECT_EQ(fx.mgr->stats().transfer_failbacks, 0);
  EXPECT_DOUBLE_EQ(fx.mgr->stats().work_lost_mhz_s, 0.0);  // exact checkpoint survived
  const auto& job = fx.fed.domain(fx.dst).world().job(util::JobId{0});
  EXPECT_EQ(job.phase(), workload::JobPhase::kCompleted);
  EXPECT_GE(job.done().get(), 3.0e6 - 1e-6);
}

TEST(FaultRecovery, ExhaustedRetryBudgetFailsBackToSource) {
  RetryFixture fx(/*max_retries=*/3);
  // Link stays dead through every backoff window (585, 645, 765): the
  // fourth schedule hits the budget and the job lands back at its source.
  fx.engine.schedule_at(util::Seconds{5000.0}, sim::EventPriority::kFault,
                        [&fx] { fx.mgr->clear_link_fault(fx.src, fx.dst); });

  fx.engine.run_until(util::Seconds{764.0});
  EXPECT_EQ(fx.mgr->stats().transfer_failbacks, 0);
  fx.engine.run_until(util::Seconds{766.0});
  EXPECT_EQ(fx.mgr->stats().transfer_failbacks, 1);
  EXPECT_EQ(fx.mgr->stats().transfer_retries, 0);
  EXPECT_FALSE(fx.mgr->job_in_flight(util::JobId{0}));
  EXPECT_EQ(fx.fed.job_domain(util::JobId{0}), fx.src);  // back home

  // The job recovers in place (the drained weight only steers new load
  // and drain proposals; a failed-back job may finish where it stands).
  while (fx.fed.total_completed() < 1 && fx.engine.now().get() < 1.0e5) {
    fx.engine.run_until(fx.engine.now() + util::Seconds{1000.0});
  }
  ASSERT_EQ(fx.fed.total_completed(), 1u);
  EXPECT_EQ(fx.mgr->stats().in_flight, 0);
  for (std::size_t d = 0; d < 2; ++d) {
    EXPECT_TRUE(fx.fed.domain(d).world().cluster().validate().empty()) << "domain " << d;
  }
}

TEST(FaultRecovery, BackedUpLinkRescoresQueuedTransfersCheapestFirst) {
  sim::Engine engine;
  federation::Federation fed{engine, federation::make_router("least-loaded")};
  for (int i = 0; i < 2; ++i) {
    add_nodes(fed.add_domain("d" + std::to_string(i), make_policy()), 2);
  }
  fed.set_domain_weight(1, 0.0);  // route everything to d0 first

  migration::MigrationOptions opts;
  opts.check_interval = util::Seconds{60.0};
  opts.rescore_queued_transfers = true;
  migration::MigrationManager mgr(fed, migration::TransferModel{5.0, 2.0},  // slow 5 MB/s link
                                  migration::make_migration_policy("drain"), opts);

  // Four jobs with very different images; FIFO would ship them in id
  // order once the drain starts.
  const double memory_mb[] = {1500.0, 2000.0, 600.0, 900.0};
  for (unsigned id = 0; id < 4; ++id) {
    auto spec = make_job(id);
    spec.memory = util::MemMb{memory_mb[id]};
    engine.schedule_at(0_s, sim::EventPriority::kWorkloadArrival,
                       [&fed, spec] { fed.submit_job(spec); });
  }
  engine.schedule_at(util::Seconds{500.0}, sim::EventPriority::kWorkloadArrival, [&fed] {
    fed.set_domain_weight(1, 1.0);
    fed.set_domain_weight(0, 0.0);  // drain d0 → all four queue on one slow pool
  });

  fed.start();
  mgr.start();

  // Job 0 (1500 MB) monopolizes the wire for 300 s; the next migration
  // tick sees a 3-deep backlog and re-ranks it 600, 900, 2000 — so the
  // small images land while FIFO would still be shipping job 1.
  engine.run_until(util::Seconds{1200.0});
  EXPECT_GT(mgr.stats().transfers_rescored, 0);
  EXPECT_EQ(fed.job_domain(util::JobId{2}), 1u);
  EXPECT_EQ(fed.job_domain(util::JobId{3}), 1u);
  EXPECT_EQ(fed.job_domain(util::JobId{1}), 0u);  // 2000 MB image still waiting
  EXPECT_TRUE(mgr.job_in_flight(util::JobId{1}));

  while (fed.total_completed() < 4 && engine.now().get() < 1.0e5) {
    engine.run_until(engine.now() + util::Seconds{1000.0});
  }
  ASSERT_EQ(fed.total_completed(), 4u);
  EXPECT_EQ(mgr.stats().completed, 4);
  EXPECT_EQ(mgr.stats().in_flight, 0);
}

// --- scenario-level: chaos determinism & bit-identity pins --------------------

namespace {

scenario::FederatedScenario small_chaos_scenario() {
  scenario::Scenario base = scenario::section3_scaled(0.2);
  base.seed = 42;
  base.jobs.count = 20;
  base.jobs.mean_interarrival_s = 400.0;
  scenario::FederatedScenario fs = scenario::federate(base, 3);
  fs.horizon_s = 60000.0;
  fs.migration.enabled = true;
  fs.migration.policy = "drain";
  fs.migration.check_interval_s = 120.0;
  fs.faults.enabled = true;
  fs.faults.checkpoint_interval_s = 600.0;
  fs.faults.node_mttf_s = 15000.0;
  fs.faults.node_mttr_s = 1500.0;
  fs.faults.events.push_back({"blackout", 1, 0, 0, 30000.0, 5000.0, 1.0});
  return fs;
}

}  // namespace

TEST(FaultScenario, ChaosRunsAreDeterministicAndAccounted) {
  const scenario::FederatedScenario fs = small_chaos_scenario();
  scenario::ExperimentOptions opt;
  const auto r1 = scenario::run_federated_experiment(fs, opt);
  const auto r2 = scenario::run_federated_experiment(fs, opt);

  for (const char* name : {"fed_availability", "fed_fault_failed_nodes",
                           "fed_jobs_lost_progress_s", "fed_jobs_running",
                           "fed_jobs_completed", "fed_tx_alloc_mhz"}) {
    expect_same_series(r1.series, r2.series, name);
  }
  EXPECT_EQ(r1.summary.jobs_completed, r2.summary.jobs_completed);
  EXPECT_EQ(r1.faults.node_crashes, r2.faults.node_crashes);
  EXPECT_DOUBLE_EQ(r1.faults.downtime_s, r2.faults.downtime_s);
  EXPECT_DOUBLE_EQ(r1.faults.jobs_lost_progress_s, r2.faults.jobs_lost_progress_s);
  EXPECT_DOUBLE_EQ(r1.fault_mttr_s, r2.fault_mttr_s);

  // The chaos actually happened and is fully accounted.
  EXPECT_GT(r1.faults.node_crashes, 0);
  EXPECT_EQ(r1.faults.blackouts, 1);
  EXPECT_EQ(r1.faults.blackout_recoveries, 1);
  EXPECT_GT(r1.faults.downtime_s, 5000.0);  // at least the blackout window
  EXPECT_LT(r1.summary.availability, 1.0);
  EXPECT_GE(r1.faults.jobs_lost_progress_s, 0.0);
  // The blacked-out controller missed cycles; its healthy peer did not.
  EXPECT_LT(r1.domains[1].result.summary.cycles, r1.domains[0].result.summary.cycles);
}

TEST(FaultScenario, DisabledAndEnabledEmptyRunsAreBitIdentical) {
  // A faults-enabled run with an empty schedule must reproduce the
  // faults-disabled run exactly: the injector meters availability (a flat
  // 1.0) but never mutates. This pins "faults disabled == pre-fault
  // output" from the other side.
  scenario::Scenario off = scenario::section3_scaled(0.2);
  off.seed = 42;
  scenario::Scenario empty = off;
  empty.faults.enabled = true;

  scenario::ExperimentOptions opt;
  opt.max_sim_time_s = 2.0e6;
  const auto r_off = scenario::run_experiment(off, opt);
  const auto r_empty = scenario::run_experiment(empty, opt);

  EXPECT_EQ(r_off.series.find("availability"), nullptr);
  ASSERT_NE(r_empty.series.find("availability"), nullptr);
  for (const auto& p : r_empty.series.find("availability")->points()) {
    EXPECT_DOUBLE_EQ(p.v, 1.0);
  }

  for (const char* name : {"u_star", "tx_alloc_mhz", "lr_alloc_mhz", "active_jobs",
                           "jobs_completed", "tx_utility", "lr_hyp_utility"}) {
    expect_same_series(r_off.series, r_empty.series, name);
  }
  EXPECT_EQ(r_off.summary.jobs_completed, r_empty.summary.jobs_completed);
  EXPECT_DOUBLE_EQ(r_off.summary.tx_utility.mean(), r_empty.summary.tx_utility.mean());
  EXPECT_DOUBLE_EQ(r_off.summary.job_utility.mean(), r_empty.summary.job_utility.mean());
  EXPECT_EQ(r_off.summary.sim_end_time_s, r_empty.summary.sim_end_time_s);
  EXPECT_DOUBLE_EQ(r_empty.summary.availability, 1.0);
  EXPECT_EQ(r_empty.summary.fault_node_crashes, 0);
}

TEST(FaultScenario, FederatedDisabledAndEnabledEmptyRunsAreBitIdentical) {
  scenario::Scenario base = scenario::section3_scaled(0.2);
  base.seed = 42;
  scenario::FederatedScenario off = scenario::federate(base, 3);
  scenario::FederatedScenario empty = off;
  empty.faults.enabled = true;

  scenario::ExperimentOptions opt;
  opt.max_sim_time_s = 2.0e6;
  const auto r_off = scenario::run_federated_experiment(off, opt);
  const auto r_empty = scenario::run_federated_experiment(empty, opt);

  EXPECT_EQ(r_off.series.find("fed_availability"), nullptr);
  ASSERT_NE(r_empty.series.find("fed_availability"), nullptr);
  ASSERT_NE(r_empty.series.find("availability_dc0"), nullptr);
  for (const auto& p : r_empty.series.find("fed_availability")->points()) {
    EXPECT_DOUBLE_EQ(p.v, 1.0);
  }

  for (const char* name :
       {"fed_tx_alloc_mhz", "fed_lr_alloc_mhz", "fed_jobs_running", "fed_jobs_completed"}) {
    expect_same_series(r_off.series, r_empty.series, name);
  }
  ASSERT_EQ(r_off.domains.size(), r_empty.domains.size());
  for (std::size_t d = 0; d < r_off.domains.size(); ++d) {
    for (const char* name : {"u_star", "tx_alloc_mhz", "lr_alloc_mhz", "jobs_completed"}) {
      expect_same_series(r_off.domains[d].result.series, r_empty.domains[d].result.series,
                         name);
    }
    EXPECT_EQ(r_off.domains[d].result.summary.jobs_completed,
              r_empty.domains[d].result.summary.jobs_completed);
  }
  EXPECT_EQ(r_off.summary.jobs_completed, r_empty.summary.jobs_completed);
  EXPECT_DOUBLE_EQ(r_empty.summary.availability, 1.0);
}

// --- config surface -----------------------------------------------------------

TEST(FaultConfig, KeysRoundTripThroughLoader) {
  util::Config cfg;
  cfg.set("fault.enabled", "true");
  cfg.set("fault.seed", "7");
  cfg.set("fault.until_s", "50000");
  cfg.set("fault.checkpoint_interval_s", "900");
  cfg.set("fault.max_concurrent_repairs", "2");
  cfg.set("fault.node_mttf_s", "40000");
  cfg.set("fault.node_mttr_s", "2000");
  cfg.set("fault.events", "1");
  cfg.set("fault.event.0.kind", "node-crash");
  cfg.set("fault.event.0.domain", "0");
  cfg.set("fault.event.0.node", "2");
  cfg.set("fault.event.0.at_s", "1000");
  cfg.set("fault.event.0.duration_s", "600");
  const scenario::Scenario s = scenario::scenario_from_config(cfg);
  EXPECT_TRUE(s.faults.enabled);
  EXPECT_EQ(s.faults.seed, 7u);
  EXPECT_DOUBLE_EQ(s.faults.until_s, 50000.0);
  EXPECT_DOUBLE_EQ(s.faults.checkpoint_interval_s, 900.0);
  EXPECT_EQ(s.faults.max_concurrent_repairs, 2);
  EXPECT_DOUBLE_EQ(s.faults.node_mttf_s, 40000.0);
  EXPECT_DOUBLE_EQ(s.faults.node_mttr_s, 2000.0);
  ASSERT_EQ(s.faults.events.size(), 1u);
  EXPECT_EQ(s.faults.events[0].kind, "node-crash");
  EXPECT_EQ(s.faults.events[0].node, 2u);
  EXPECT_DOUBLE_EQ(s.faults.events[0].at_s, 1000.0);
  EXPECT_DOUBLE_EQ(s.faults.events[0].duration_s, 600.0);

  // Link faults and blackouts flow through the federated loader ("from"
  // names a link event's source domain).
  cfg.set("domains", "3");
  cfg.set("migration.enabled", "true");
  cfg.set("fault.link_mttf_s", "30000");
  cfg.set("fault.link_mttr_s", "1200");
  cfg.set("fault.events", "3");
  cfg.set("fault.event.1.kind", "link-down");
  cfg.set("fault.event.1.from", "0");
  cfg.set("fault.event.1.to", "2");
  cfg.set("fault.event.1.at_s", "2000");
  cfg.set("fault.event.1.duration_s", "300");
  cfg.set("fault.event.1.severity", "0.5");
  cfg.set("fault.event.2.kind", "blackout");
  cfg.set("fault.event.2.domain", "1");
  cfg.set("fault.event.2.at_s", "9000");
  cfg.set("fault.event.2.duration_s", "1800");
  const scenario::FederatedScenario fs = scenario::federated_scenario_from_config(cfg);
  EXPECT_DOUBLE_EQ(fs.faults.link_mttf_s, 30000.0);
  ASSERT_EQ(fs.faults.events.size(), 3u);
  EXPECT_EQ(fs.faults.events[1].kind, "link-down");
  EXPECT_EQ(fs.faults.events[1].domain, 0u);
  EXPECT_EQ(fs.faults.events[1].to, 2u);
  EXPECT_DOUBLE_EQ(fs.faults.events[1].severity, 0.5);
  EXPECT_EQ(fs.faults.events[2].kind, "blackout");
  EXPECT_EQ(fs.faults.events[2].domain, 1u);
}

TEST(FaultConfig, RejectsInvalidValues) {
  const auto reject = [](const std::vector<std::pair<std::string, std::string>>& extra) {
    util::Config cfg;
    cfg.set("fault.enabled", "true");
    for (const auto& [k, v] : extra) cfg.set(k, v);
    EXPECT_THROW(scenario::scenario_from_config(cfg), util::ConfigError)
        << extra.front().first << " = " << extra.front().second;
  };

  reject({{"fault.node_mttf_s", "-1"}});
  reject({{"fault.checkpoint_interval_s", "-5"}});
  reject({{"fault.max_concurrent_repairs", "-1"}});
  // Half a rate pair is meaningless: MTTF without MTTR (and vice versa).
  reject({{"fault.node_mttf_s", "1000"}});
  reject({{"fault.node_mttr_s", "100"}});
  // Stochastic rates need a generation horizon (the default scenario has
  // horizon_s = 0, run-to-completion).
  reject({{"fault.node_mttf_s", "1000"}, {"fault.node_mttr_s", "100"}});
  // Unknown kind / unknown fault key fail loudly.
  reject({{"fault.events", "1"},
          {"fault.event.0.kind", "meteor-strike"},
          {"fault.event.0.at_s", "10"},
          {"fault.event.0.duration_s", "5"}});
  reject({{"fault.explode", "true"}});
  // Events need a time and a positive duration.
  reject({{"fault.events", "1"}, {"fault.event.0.duration_s", "5"}});
  reject({{"fault.events", "1"}, {"fault.event.0.at_s", "10"}});
  // Severity outside (0, 1], or on a kind that cannot be partial.
  reject({{"fault.events", "1"},
          {"fault.event.0.at_s", "10"},
          {"fault.event.0.duration_s", "5"},
          {"fault.event.0.severity", "1.5"}});
  reject({{"fault.events", "1"},
          {"fault.event.0.at_s", "10"},
          {"fault.event.0.duration_s", "5"},
          {"fault.event.0.severity", "0.5"}});
  // Out-of-range targets.
  reject({{"fault.events", "1"},
          {"fault.event.0.at_s", "10"},
          {"fault.event.0.duration_s", "5"},
          {"fault.event.0.node", "99"}});
  reject({{"fault.events", "1"},
          {"fault.event.0.at_s", "10"},
          {"fault.event.0.duration_s", "5"},
          {"fault.event.0.domain", "1"}});
  // Overlapping explicit windows on one target.
  reject({{"fault.events", "2"},
          {"fault.event.0.at_s", "10"},
          {"fault.event.0.duration_s", "50"},
          {"fault.event.1.at_s", "30"},
          {"fault.event.1.duration_s", "50"}});
  // Link faults and blackouts are federated concepts.
  reject({{"fault.link_mttf_s", "1000"}, {"fault.link_mttr_s", "100"}, {"fault.until_s", "1"}});
  reject({{"fault.events", "1"},
          {"fault.event.0.kind", "blackout"},
          {"fault.event.0.at_s", "10"},
          {"fault.event.0.duration_s", "5"}});

  // Federated-only rejections.
  const auto reject_fed = [](const std::vector<std::pair<std::string, std::string>>& extra) {
    util::Config cfg;
    cfg.set("domains", "3");
    cfg.set("fault.enabled", "true");
    for (const auto& [k, v] : extra) cfg.set(k, v);
    EXPECT_THROW(scenario::federated_scenario_from_config(cfg), util::ConfigError)
        << extra.front().first << " = " << extra.front().second;
  };
  // Link faults need the migration subsystem (which owns the links).
  reject_fed({{"fault.events", "1"},
              {"fault.event.0.kind", "link-down"},
              {"fault.event.0.to", "1"},
              {"fault.event.0.at_s", "10"},
              {"fault.event.0.duration_s", "5"}});
  // A link must cross domains; both source spellings at once are ambiguous.
  reject_fed({{"migration.enabled", "true"},
              {"fault.events", "1"},
              {"fault.event.0.kind", "link-down"},
              {"fault.event.0.from", "1"},
              {"fault.event.0.to", "1"},
              {"fault.event.0.at_s", "10"},
              {"fault.event.0.duration_s", "5"}});
  reject_fed({{"migration.enabled", "true"},
              {"fault.events", "1"},
              {"fault.event.0.kind", "link-down"},
              {"fault.event.0.from", "0"},
              {"fault.event.0.domain", "0"},
              {"fault.event.0.to", "1"},
              {"fault.event.0.at_s", "10"},
              {"fault.event.0.duration_s", "5"}});
}

TEST(FaultConfig, MigrationRetryKeysRoundTripAndValidate) {
  util::Config cfg;
  cfg.set("domains", "2");
  cfg.set("migration.enabled", "true");
  cfg.set("migration.max_transfer_retries", "5");
  cfg.set("migration.retry_backoff_s", "20");
  cfg.set("migration.retry_backoff_max_s", "320");
  cfg.set("migration.rescore_queued_transfers", "true");
  const scenario::FederatedScenario fs = scenario::federated_scenario_from_config(cfg);
  EXPECT_EQ(fs.migration.max_transfer_retries, 5);
  EXPECT_DOUBLE_EQ(fs.migration.retry_backoff_s, 20.0);
  EXPECT_DOUBLE_EQ(fs.migration.retry_backoff_max_s, 320.0);
  EXPECT_TRUE(fs.migration.rescore_queued_transfers);

  const auto reject = [](const std::string& key, const std::string& value) {
    util::Config cfg;
    cfg.set("domains", "2");
    cfg.set("migration.enabled", "true");
    cfg.set(key, value);
    EXPECT_THROW(scenario::federated_scenario_from_config(cfg), util::ConfigError)
        << key << " = " << value;
  };
  reject("migration.max_transfer_retries", "-1");
  reject("migration.retry_backoff_s", "0");
  reject("migration.retry_backoff_max_s", "5");  // below retry_backoff_s default 30
}

TEST(FaultInjector, RepairCrewLimitServesQueuedNodeRepairsInFailureOrder) {
  // Three nodes crash together at t=100, each with a 100 s repair. An
  // unlimited crew (the default) runs all repairs concurrently and every
  // node is back at t=200 — the pinned pre-crew behavior. A crew of one
  // serializes them in failure order: recoveries at 200, 300, 400.
  const auto failed_counts = [](int max_repairs) {
    sim::Engine engine;
    core::World world;
    world.cluster().add_nodes(3, cluster::Resources{12000_mhz, 4096_mb});
    core::PlacementController controller(engine, world, make_policy());
    faults::FaultSchedule schedule;
    for (std::size_t n = 0; n < 3; ++n) schedule.add(node_window(0, n, 100.0, 200.0));
    faults::FaultOptions opts;
    opts.max_concurrent_repairs = max_repairs;
    faults::FaultInjector injector(engine, {{&world, &controller, nullptr}}, std::move(schedule),
                                   opts);
    controller.start();
    injector.start();
    std::vector<std::size_t> counts;
    for (double t : {150.0, 250.0, 350.0, 450.0}) {
      engine.run_until(util::Seconds{t});
      counts.push_back(injector.failed_node_count(0));
    }
    EXPECT_EQ(injector.stats(0, engine.now()).node_crashes, 3);
    EXPECT_EQ(injector.stats(0, engine.now()).node_recoveries, 3);
    EXPECT_EQ(injector.stats(0, engine.now()).repairs, 3);
    // Hands-on time is the window duration regardless of queueing, so
    // MTTR prices the crew's work, not the backlog.
    EXPECT_DOUBLE_EQ(injector.mttr_s(), 100.0);
    return counts;
  };

  EXPECT_EQ(failed_counts(0), (std::vector<std::size_t>{3, 0, 0, 0}));  // unlimited
  EXPECT_EQ(failed_counts(3), (std::vector<std::size_t>{3, 0, 0, 0}));  // crew covers all
  EXPECT_EQ(failed_counts(2), (std::vector<std::size_t>{3, 1, 0, 0}));  // one queued
  EXPECT_EQ(failed_counts(1), (std::vector<std::size_t>{3, 2, 1, 0}));  // fully serialized
}

TEST(FaultInjector, RepairCrewRecoversNodesInFailureOrder) {
  // Staggered crashes under a crew of one: node 0 (down at 100) is fixed
  // first even though node 1 (down at 120) has the shorter window.
  sim::Engine engine;
  core::World world;
  world.cluster().add_nodes(2, cluster::Resources{12000_mhz, 4096_mb});
  core::PlacementController controller(engine, world, make_policy());
  faults::FaultSchedule schedule;
  schedule.add(node_window(0, 0, 100.0, 300.0));  // 200 s repair
  schedule.add(node_window(0, 1, 120.0, 170.0));  // 50 s repair, queued behind it
  faults::FaultOptions opts;
  opts.max_concurrent_repairs = 1;
  faults::FaultInjector injector(engine, {{&world, &controller, nullptr}}, std::move(schedule),
                                 opts);
  controller.start();
  injector.start();

  const auto active = [&world](std::size_t n) {
    return world.cluster().nodes()[n].power_state() == cluster::PowerState::kActive;
  };
  engine.run_until(util::Seconds{299.0});
  EXPECT_FALSE(active(0));
  EXPECT_FALSE(active(1));
  // Node 0's repair completes at 300; only then does the crew pick node 1
  // up, finishing its 50 s job at 350.
  engine.run_until(util::Seconds{320.0});
  EXPECT_TRUE(active(0));
  EXPECT_FALSE(active(1));
  engine.run_until(util::Seconds{360.0});
  EXPECT_TRUE(active(1));
  EXPECT_EQ(injector.stats(0, engine.now()).repairs, 2);
  EXPECT_DOUBLE_EQ(injector.stats(0, engine.now()).repair_time_s, 250.0);
}
