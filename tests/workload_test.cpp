// Tests for the workload substrate: jobs, arrivals, demand traces.

#include "workload/arrival.hpp"
#include "workload/job.hpp"
#include "workload/job_factory.hpp"
#include "workload/transactional.hpp"

#include <gtest/gtest.h>

#include <cmath>

using namespace heteroplace;
using namespace heteroplace::util::literals;
using util::Seconds;
using workload::Job;
using workload::JobPhase;
using workload::JobSpec;

namespace {
JobSpec basic_spec() {
  JobSpec s;
  s.id = util::JobId{1};
  s.work = util::MhzSeconds{3.0e6};
  s.max_speed = 3000_mhz;
  s.memory = 1300_mb;
  s.submit_time = 100_s;
  s.completion_goal = 2000_s;
  return s;
}
}  // namespace

// --- Job progress accounting ---------------------------------------------------

TEST(Job, NominalLength) { EXPECT_DOUBLE_EQ(basic_spec().nominal_length().get(), 1000.0); }

TEST(Job, AccumulatesWorkWhileRunning) {
  Job j(basic_spec());
  j.set_phase(100_s, JobPhase::kStarting);
  j.set_phase(160_s, JobPhase::kRunning);
  j.set_speed(160_s, 3000_mhz);
  j.advance_to(260_s);
  EXPECT_DOUBLE_EQ(j.done().get(), 3000.0 * 100.0);
  EXPECT_DOUBLE_EQ(j.remaining().get(), 3.0e6 - 3.0e5);
  EXPECT_FALSE(j.finished());
}

TEST(Job, NoProgressWhilePendingOrSuspended) {
  Job j(basic_spec());
  j.advance_to(500_s);
  EXPECT_DOUBLE_EQ(j.done().get(), 0.0);
  j.set_phase(500_s, JobPhase::kStarting);
  j.set_phase(560_s, JobPhase::kRunning);
  j.set_speed(560_s, 1000_mhz);
  j.set_phase(660_s, JobPhase::kSuspending);  // speed zeroed
  j.advance_to(1000_s);
  EXPECT_DOUBLE_EQ(j.done().get(), 1000.0 * 100.0);
}

TEST(Job, SpeedChangeSplitsIntegration) {
  Job j(basic_spec());
  j.set_phase(100_s, JobPhase::kStarting);
  j.set_phase(100_s, JobPhase::kRunning);
  j.set_speed(100_s, 1000_mhz);
  j.set_speed(200_s, 2000_mhz);  // after 100 s at 1000
  j.advance_to(300_s);           // plus 100 s at 2000
  EXPECT_DOUBLE_EQ(j.done().get(), 1000.0 * 100 + 2000.0 * 100);
}

TEST(Job, ProgressClampsAtTotalWork) {
  Job j(basic_spec());
  j.set_phase(100_s, JobPhase::kStarting);
  j.set_phase(100_s, JobPhase::kRunning);
  j.set_speed(100_s, 3000_mhz);
  j.advance_to(100000_s);
  EXPECT_DOUBLE_EQ(j.done().get(), 3.0e6);
  EXPECT_TRUE(j.finished());
}

TEST(Job, SpeedAboveMaxRejected) {
  Job j(basic_spec());
  j.set_phase(100_s, JobPhase::kStarting);
  j.set_phase(100_s, JobPhase::kRunning);
  EXPECT_THROW(j.set_speed(100_s, 3500_mhz), std::invalid_argument);
}

TEST(Job, TimeBackwardsThrows) {
  Job j(basic_spec());
  j.advance_to(500_s);
  EXPECT_THROW(j.advance_to(400_s), std::logic_error);
}

TEST(Job, PredictedCompletion) {
  Job j(basic_spec());
  EXPECT_DOUBLE_EQ(j.predicted_completion(100_s, 3000_mhz).get(), 1100.0);
  EXPECT_DOUBLE_EQ(j.predicted_completion(100_s, 1000_mhz).get(), 3100.0);
  EXPECT_TRUE(std::isinf(j.predicted_completion(100_s, 0_mhz).get()));
}

TEST(Job, GoalTimeIsSubmitPlusGoal) {
  const Job j(basic_spec());
  EXPECT_DOUBLE_EQ(j.goal_time().get(), 2100.0);
}

TEST(Job, ChurnCounters) {
  Job j(basic_spec());
  j.count_suspend();
  j.count_suspend();
  j.count_migrate();
  EXPECT_EQ(j.suspend_count(), 2);
  EXPECT_EQ(j.migrate_count(), 1);
}

// --- Arrival processes -----------------------------------------------------------

TEST(Arrivals, PoissonCountAndMean) {
  util::Rng rng(42);
  workload::PoissonArrivals p(0_s, 260_s, 1000);
  const auto times = workload::materialize(p, rng);
  ASSERT_EQ(times.size(), 1000u);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end(),
                             [](Seconds a, Seconds b) { return a.get() < b.get(); }));
  // Mean inter-arrival ≈ 260 (last/total).
  EXPECT_NEAR(times.back().get() / 1000.0, 260.0, 30.0);
}

TEST(Arrivals, PoissonUnboundedKeepsProducing) {
  util::Rng rng(1);
  workload::PoissonArrivals p(0_s, 10_s, -1);
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(p.next(rng).has_value());
}

TEST(Arrivals, PhasedSwitchesRate) {
  util::Rng rng(7);
  workload::PhasedPoissonArrivals p(
      0_s, {{Seconds{10.0}, 100}, {Seconds{1000.0}, 100}});
  const auto times = workload::materialize(p, rng);
  ASSERT_EQ(times.size(), 200u);
  const double first_phase = times[99].get();
  const double second_phase = times[199].get() - times[99].get();
  EXPECT_LT(first_phase, 2500.0);     // ~100×10
  EXPECT_GT(second_phase, 50000.0);   // ~100×1000
}

TEST(Arrivals, UniformIsDeterministic) {
  util::Rng rng(0);
  workload::UniformArrivals u(100_s, 50_s, 3);
  EXPECT_DOUBLE_EQ(u.next(rng)->get(), 150.0);
  EXPECT_DOUBLE_EQ(u.next(rng)->get(), 200.0);
  EXPECT_DOUBLE_EQ(u.next(rng)->get(), 250.0);
  EXPECT_FALSE(u.next(rng).has_value());
}

TEST(Arrivals, TracePlaysBack) {
  util::Rng rng(0);
  workload::TraceArrivals t({1_s, 5_s, 9_s});
  EXPECT_DOUBLE_EQ(t.next(rng)->get(), 1.0);
  EXPECT_DOUBLE_EQ(t.next(rng)->get(), 5.0);
  EXPECT_DOUBLE_EQ(t.next(rng)->get(), 9.0);
  EXPECT_FALSE(t.next(rng).has_value());
}

// --- Demand trace ------------------------------------------------------------------

TEST(DemandTrace, ConstantRate) {
  const workload::DemandTrace t(24.0);
  EXPECT_DOUBLE_EQ(t.rate_at(0_s), 24.0);
  EXPECT_DOUBLE_EQ(t.rate_at(1e6_s), 24.0);
}

TEST(DemandTrace, PiecewiseSteps) {
  workload::DemandTrace t;
  t.add(0_s, 10.0);
  t.add(100_s, 20.0);
  t.add(200_s, 5.0);
  EXPECT_DOUBLE_EQ(t.rate_at(0_s), 10.0);
  EXPECT_DOUBLE_EQ(t.rate_at(99_s), 10.0);
  EXPECT_DOUBLE_EQ(t.rate_at(100_s), 20.0);
  EXPECT_DOUBLE_EQ(t.rate_at(250_s), 5.0);
  EXPECT_DOUBLE_EQ(t.peak_rate(), 20.0);
  EXPECT_EQ(t.change_times().size(), 3u);
}

TEST(DemandTrace, RejectsNegativeRateAndBackwardsTime) {
  workload::DemandTrace t;
  t.add(10_s, 1.0);
  EXPECT_THROW(t.add(5_s, 2.0), std::invalid_argument);
  EXPECT_THROW(t.add(20_s, -1.0), std::invalid_argument);
}

TEST(DemandTrace, EmptyTraceIsZero) {
  const workload::DemandTrace t;
  EXPECT_DOUBLE_EQ(t.rate_at(0_s), 0.0);
  EXPECT_TRUE(t.empty());
}

TEST(DemandTrace, ScaledMultipliesEveryRate) {
  workload::DemandTrace t;
  t.add(0_s, 10.0);
  t.add(100_s, 20.0);
  const auto half = t.scaled(0.5);
  EXPECT_DOUBLE_EQ(half.rate_at(0_s), 5.0);
  EXPECT_DOUBLE_EQ(half.rate_at(150_s), 10.0);
  EXPECT_EQ(half.change_times().size(), 2u);
  // Factor 1 reproduces the trace exactly (the federation's 1-domain case).
  const auto same = t.scaled(1.0);
  EXPECT_DOUBLE_EQ(same.rate_at(0_s), 10.0);
  EXPECT_DOUBLE_EQ(same.rate_at(100_s), 20.0);
  // Factor 0 drains the trace without dropping breakpoints.
  EXPECT_DOUBLE_EQ(t.scaled(0.0).rate_at(100_s), 0.0);
  EXPECT_THROW((void)t.scaled(-0.1), std::invalid_argument);
}

// --- TxApp ---------------------------------------------------------------------------

TEST(TxApp, OfferedLoadIsLambdaTimesDemand) {
  workload::TxAppSpec spec;
  spec.id = util::AppId{0};
  spec.service_demand = 5000.0;
  const workload::TxApp app(spec, workload::DemandTrace{24.0});
  EXPECT_DOUBLE_EQ(app.offered_load(0_s).get(), 120000.0);
}

// --- Job factory -------------------------------------------------------------------------

TEST(JobFactory, GeneratesIdenticalJobsFromTemplate) {
  util::Rng rng(42);
  workload::UniformArrivals arrivals(0_s, 260_s, 10);
  workload::JobTemplate tmpl;
  tmpl.work = util::MhzSeconds{4.8e7};
  tmpl.goal_stretch = 2.0;
  const auto jobs = workload::generate_jobs(arrivals, tmpl, rng);
  ASSERT_EQ(jobs.size(), 10u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].id.get(), i);
    EXPECT_DOUBLE_EQ(jobs[i].work.get(), 4.8e7);
    EXPECT_DOUBLE_EQ(jobs[i].completion_goal.get(), 2.0 * 16000.0);
    EXPECT_DOUBLE_EQ(jobs[i].submit_time.get(), 260.0 * (i + 1));
  }
}

TEST(JobFactory, VariableWorkHasRequestedSpread) {
  util::Rng rng(42);
  workload::UniformArrivals arrivals(0_s, 1_s, 4000);
  workload::JobTemplate tmpl;
  tmpl.work = util::MhzSeconds{1.0e6};
  tmpl.work_cv = 0.5;
  const auto jobs = workload::generate_jobs(arrivals, tmpl, rng);
  double sum = 0.0;
  double sq = 0.0;
  for (const auto& j : jobs) {
    sum += j.work.get();
    sq += j.work.get() * j.work.get();
  }
  const double mean = sum / jobs.size();
  const double cv = std::sqrt(sq / jobs.size() - mean * mean) / mean;
  EXPECT_NEAR(mean, 1.0e6, 0.05e6);
  EXPECT_NEAR(cv, 0.5, 0.05);
}

TEST(JobFactory, FirstIdOffset) {
  util::Rng rng(1);
  workload::UniformArrivals arrivals(0_s, 1_s, 3);
  const auto jobs = workload::generate_jobs(arrivals, workload::JobTemplate{}, rng, 100);
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].id.get(), 100u);
  EXPECT_EQ(jobs[2].id.get(), 102u);
}
