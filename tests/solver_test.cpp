// Tests for the discrete placement solver: feasibility, stability,
// urgency packing, instance sizing, eviction, and CPU water-filling.

#include "core/placement_solver.hpp"

#include <gtest/gtest.h>

#include <map>

#include "util/rng.hpp"

using namespace heteroplace;
using core::PlacementProblem;
using core::SolverApp;
using core::SolverConfig;
using core::SolverJob;
using core::SolverNode;
using util::CpuMhz;
using util::MemMb;
using util::NodeId;
using workload::JobPhase;

namespace {

PlacementProblem small_cluster(int nodes, double cpu = 12000.0, double mem = 4096.0) {
  PlacementProblem p;
  for (int i = 0; i < nodes; ++i) {
    p.nodes.push_back({NodeId{static_cast<unsigned>(i)}, CpuMhz{cpu}, MemMb{mem}});
  }
  return p;
}

SolverJob job(unsigned id, double target, double mem = 1300.0, double max_speed = 3000.0) {
  SolverJob j;
  j.id = util::JobId{id};
  j.memory = MemMb{mem};
  j.max_speed = CpuMhz{max_speed};
  j.target = CpuMhz{target};
  j.urgency = target;
  j.phase = JobPhase::kPending;
  j.remaining = util::MhzSeconds{1e9};  // far from completion
  return j;
}

SolverJob running_job(unsigned id, unsigned node, double target, double mem = 1300.0) {
  SolverJob j = job(id, target, mem);
  j.phase = JobPhase::kRunning;
  j.current_node = NodeId{node};
  j.movable = true;
  return j;
}

SolverApp app(unsigned id, double target, double inst_mem = 1024.0, int max_inst = 64) {
  SolverApp a;
  a.id = util::AppId{id};
  a.instance_memory = MemMb{inst_mem};
  a.min_instances = 1;
  a.max_instances = max_inst;
  a.max_cpu_per_instance = CpuMhz{12000.0};
  a.target = CpuMhz{target};
  return a;
}

/// Verify the plan respects node CPU and memory capacities.
void assert_feasible(const PlacementProblem& p, const cluster::PlacementPlan& plan) {
  std::map<NodeId, double> cpu_used;
  std::map<NodeId, double> mem_used;
  std::map<NodeId, const SolverNode*> nodes;
  for (const auto& n : p.nodes) nodes[n.id] = &n;

  std::map<util::JobId, const SolverJob*> jobs;
  for (const auto& j : p.jobs) jobs[j.id] = &j;

  for (const auto& jp : plan.jobs) {
    ASSERT_TRUE(nodes.count(jp.node)) << "job placed on unknown node";
    ASSERT_TRUE(jobs.count(jp.job)) << "unknown job in plan";
    cpu_used[jp.node] += jp.cpu.get();
    mem_used[jp.node] += jobs[jp.job]->memory.get();
    ASSERT_LE(jp.cpu.get(), jobs[jp.job]->max_speed.get() + 1e-6) << "job above max speed";
  }
  std::map<util::AppId, const SolverApp*> apps;
  for (const auto& a : p.apps) apps[a.id] = &a;
  std::map<std::pair<util::AppId::underlying_type, NodeId::underlying_type>, int> inst_count;
  for (const auto& ip : plan.instances) {
    ASSERT_TRUE(nodes.count(ip.node));
    cpu_used[ip.node] += ip.cpu.get();
    mem_used[ip.node] += apps[ip.app]->instance_memory.get();
    ++inst_count[{ip.app.get(), ip.node.get()}];
  }
  for (const auto& [key, count] : inst_count) {
    ASSERT_LE(count, 1) << "two instances of one app on one node";
  }
  for (const auto& [nid, used] : cpu_used) {
    ASSERT_LE(used, nodes[nid]->cpu_capacity.get() + 1e-6) << "node " << nid << " CPU";
  }
  for (const auto& [nid, used] : mem_used) {
    ASSERT_LE(used, nodes[nid]->mem_capacity.get() + 1e-6) << "node " << nid << " memory";
  }
  // No duplicate jobs.
  std::map<util::JobId, int> seen;
  for (const auto& jp : plan.jobs) {
    ASSERT_EQ(++seen[jp.job], 1) << "job placed twice";
  }
}

}  // namespace

TEST(Solver, EmptyProblemYieldsEmptyPlan) {
  const auto r = core::solve_placement(small_cluster(2));
  EXPECT_TRUE(r.plan.jobs.empty());
  EXPECT_TRUE(r.plan.instances.empty());
}

TEST(Solver, PlacesJobsUpToMemoryLimit) {
  auto p = small_cluster(1);
  for (unsigned i = 0; i < 5; ++i) p.jobs.push_back(job(i, 2000.0));
  const auto r = core::solve_placement(p);
  assert_feasible(p, r.plan);
  // Memory admits only 3 jobs of 1300 MB on one node.
  EXPECT_EQ(r.plan.jobs.size(), 3u);
  EXPECT_EQ(r.stats.jobs_waiting, 2);
}

TEST(Solver, MostUrgentJobsWinMemorySlots) {
  auto p = small_cluster(1);
  p.jobs.push_back(job(0, 500.0));
  p.jobs.push_back(job(1, 3000.0));
  p.jobs.push_back(job(2, 1500.0));
  p.jobs.push_back(job(3, 2500.0));
  const auto r = core::solve_placement(p);
  assert_feasible(p, r.plan);
  ASSERT_EQ(r.plan.jobs.size(), 3u);
  // Job 0 (lowest urgency) waits.
  for (const auto& jp : r.plan.jobs) EXPECT_NE(jp.job.get(), 0u);
}

TEST(Solver, RunningJobsKeepTheirNode) {
  auto p = small_cluster(3);
  p.jobs.push_back(running_job(0, 2, 2000.0));
  p.jobs.push_back(running_job(1, 1, 2000.0));
  const auto r = core::solve_placement(p);
  assert_feasible(p, r.plan);
  ASSERT_EQ(r.plan.jobs.size(), 2u);
  for (const auto& jp : r.plan.jobs) {
    if (jp.job.get() == 0) {
      EXPECT_EQ(jp.node.get(), 2u);
    }
    if (jp.job.get() == 1) {
      EXPECT_EQ(jp.node.get(), 1u);
    }
  }
  EXPECT_EQ(r.stats.jobs_evicted, 0);
}

TEST(Solver, CpuGrantsMatchTargetsWhenUncontended) {
  auto p = small_cluster(1);
  p.jobs.push_back(job(0, 2000.0));
  p.jobs.push_back(job(1, 1000.0));
  SolverConfig cfg;
  cfg.work_conserving = false;
  const auto r = core::solve_placement(p, cfg);
  for (const auto& jp : r.plan.jobs) {
    if (jp.job.get() == 0) {
      EXPECT_NEAR(jp.cpu.get(), 2000.0, 1e-6);
    }
    if (jp.job.get() == 1) {
      EXPECT_NEAR(jp.cpu.get(), 1000.0, 1e-6);
    }
  }
}

TEST(Solver, CpuScalesProportionallyWhenOverCommitted) {
  auto p = small_cluster(1, /*cpu=*/3000.0);
  p.jobs.push_back(job(0, 3000.0));
  p.jobs.push_back(job(1, 3000.0));
  const auto r = core::solve_placement(p);
  assert_feasible(p, r.plan);
  ASSERT_EQ(r.plan.jobs.size(), 2u);
  EXPECT_NEAR(r.plan.jobs[0].cpu.get(), 1500.0, 1e-6);
  EXPECT_NEAR(r.plan.jobs[1].cpu.get(), 1500.0, 1e-6);
}

TEST(Solver, WorkConservingGivesSlackToJobs) {
  auto p = small_cluster(1);
  p.jobs.push_back(job(0, 1000.0));  // target far below max speed
  const auto r = core::solve_placement(p);
  ASSERT_EQ(r.plan.jobs.size(), 1u);
  // Leftover node CPU tops the job up to its max speed.
  EXPECT_NEAR(r.plan.jobs[0].cpu.get(), 3000.0, 1e-6);
}

TEST(Solver, NonWorkConservingStopsAtTarget) {
  auto p = small_cluster(1);
  p.jobs.push_back(job(0, 1000.0));
  SolverConfig cfg;
  cfg.work_conserving = false;
  const auto r = core::solve_placement(p, cfg);
  ASSERT_EQ(r.plan.jobs.size(), 1u);
  EXPECT_NEAR(r.plan.jobs[0].cpu.get(), 1000.0, 1e-6);
}

TEST(Solver, InstanceCountScalesWithTarget) {
  auto p = small_cluster(4);
  p.apps.push_back(app(0, 30000.0));  // needs ≥ 3 nodes at 12000 each
  const auto r = core::solve_placement(p);
  assert_feasible(p, r.plan);
  EXPECT_GE(r.plan.instances.size(), 3u);
  EXPECT_LE(r.plan.instances.size(), 4u);
  // The app receives (close to) its target.
  double total = 0.0;
  for (const auto& ip : r.plan.instances) total += ip.cpu.get();
  EXPECT_NEAR(total, 30000.0, 1.0);
}

TEST(Solver, MinInstancesHonoredEvenAtZeroTarget) {
  auto p = small_cluster(2);
  p.apps.push_back(app(0, 0.0));
  const auto r = core::solve_placement(p);
  EXPECT_EQ(r.plan.instances.size(), 1u);
}

TEST(Solver, MaxInstancesBoundsGrowth) {
  auto p = small_cluster(6);
  p.apps.push_back(app(0, 70000.0, 1024.0, /*max_inst=*/2));
  const auto r = core::solve_placement(p);
  assert_feasible(p, r.plan);
  EXPECT_EQ(r.plan.instances.size(), 2u);
}

TEST(Solver, InstanceGrowthEvictsLeastUrgentJobs) {
  // One node, full of jobs; an app with a large target must reclaim memory.
  auto p = small_cluster(1);
  p.jobs.push_back(running_job(0, 0, 500.0));   // least urgent → evicted
  p.jobs.push_back(running_job(1, 0, 3000.0));
  p.jobs.push_back(running_job(2, 0, 2500.0));
  p.apps.push_back(app(0, 12000.0));
  const auto r = core::solve_placement(p);
  assert_feasible(p, r.plan);
  ASSERT_EQ(r.plan.instances.size(), 1u);
  EXPECT_GE(r.stats.jobs_evicted, 1);
  // Job 0 was the least urgent: it is not in the plan (suspended).
  for (const auto& jp : r.plan.jobs) EXPECT_NE(jp.job.get(), 0u);
}

TEST(Solver, NearCompletionJobsAreProtectedFromEviction) {
  auto p = small_cluster(1);
  auto j0 = running_job(0, 0, 500.0);
  j0.remaining = util::MhzSeconds{100.0};  // about to finish: protected
  p.jobs.push_back(j0);
  p.jobs.push_back(running_job(1, 0, 3000.0));
  p.jobs.push_back(running_job(2, 0, 2500.0));
  // App target leaves CPU for the surviving jobs (a target equal to the
  // whole cluster is not producible by the equalizer).
  p.apps.push_back(app(0, 9000.0));
  const auto r = core::solve_placement(p);
  assert_feasible(p, r.plan);
  // Job 0 would be the cheapest eviction (lowest urgency) but is
  // protected; the instance evicts an unprotected job instead.
  bool job0_placed = false;
  for (const auto& jp : r.plan.jobs) job0_placed |= (jp.job.get() == 0u);
  EXPECT_TRUE(job0_placed);
  EXPECT_GE(r.stats.jobs_evicted, 1);
}

TEST(Solver, EvictedJobMigratesWhenAnotherNodeHasRoom) {
  auto p = small_cluster(2);
  // Node 0 full of running jobs; node 1 empty. App grows onto node 0
  // (node 1 kept free? both are candidates — instance goes to the node
  // with most free memory, node 1). So instead fill node 1 too.
  p.jobs.push_back(running_job(0, 0, 500.0));
  p.jobs.push_back(running_job(1, 0, 3000.0));
  p.jobs.push_back(running_job(2, 0, 2500.0));
  p.jobs.push_back(running_job(3, 1, 2000.0));
  p.jobs.push_back(running_job(4, 1, 2000.0));
  // Node 1 has one free slot (2 jobs × 1300 = 2600, 1496 free > 1024).
  p.apps.push_back(app(0, 20000.0));  // wants 2+ instances
  const auto r = core::solve_placement(p);
  assert_feasible(p, r.plan);
  // All five jobs should still be placed or at worst one suspended;
  // key assertion: no capacity rule violated and evictions recorded
  // consistently.
  EXPECT_EQ(r.stats.jobs_evicted, r.stats.jobs_migrated + (5 - r.stats.jobs_placed));
}

TEST(Solver, MigrationDisabledSuspendsInstead) {
  auto p = small_cluster(2);
  p.jobs.push_back(running_job(0, 0, 500.0));
  p.jobs.push_back(running_job(1, 0, 3000.0));
  p.jobs.push_back(running_job(2, 0, 2500.0));
  p.apps.push_back(app(0, 24000.0));  // wants both nodes
  SolverConfig cfg;
  cfg.allow_migration = false;
  const auto r = core::solve_placement(p, cfg);
  assert_feasible(p, r.plan);
  EXPECT_EQ(r.stats.jobs_migrated, 0);
}

TEST(Solver, ImmovableJobStaysPut) {
  auto p = small_cluster(1);
  auto j = running_job(0, 0, 100.0);
  j.phase = JobPhase::kResuming;
  j.movable = false;
  p.jobs.push_back(j);
  // App wants the whole node; the resuming job cannot be evicted.
  p.apps.push_back(app(0, 12000.0));
  const auto r = core::solve_placement(p);
  assert_feasible(p, r.plan);
  bool placed = false;
  for (const auto& jp : r.plan.jobs) placed |= (jp.job.get() == 0u);
  EXPECT_TRUE(placed);
}

TEST(Solver, SuspendedJobResumedWhenRoomExists) {
  auto p = small_cluster(1);
  auto j = job(0, 2000.0);
  j.phase = JobPhase::kSuspended;
  p.jobs.push_back(j);
  const auto r = core::solve_placement(p);
  ASSERT_EQ(r.plan.jobs.size(), 1u);
}

TEST(Solver, DeterministicOutput) {
  auto p = small_cluster(4);
  for (unsigned i = 0; i < 8; ++i) p.jobs.push_back(job(i, 1000.0 + 100.0 * i));
  p.apps.push_back(app(0, 15000.0));
  const auto r1 = core::solve_placement(p);
  const auto r2 = core::solve_placement(p);
  ASSERT_EQ(r1.plan.jobs.size(), r2.plan.jobs.size());
  for (std::size_t i = 0; i < r1.plan.jobs.size(); ++i) {
    EXPECT_EQ(r1.plan.jobs[i].job, r2.plan.jobs[i].job);
    EXPECT_EQ(r1.plan.jobs[i].node, r2.plan.jobs[i].node);
    EXPECT_DOUBLE_EQ(r1.plan.jobs[i].cpu.get(), r2.plan.jobs[i].cpu.get());
  }
}

// Property: random problems always yield feasible plans.
class SolverFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverFuzz, RandomProblemsAreFeasible) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    const int n_nodes = 1 + static_cast<int>(rng.uniform_int(0, 7));
    auto p = small_cluster(n_nodes);
    const int n_jobs = static_cast<int>(rng.uniform_int(0, 30));
    for (int i = 0; i < n_jobs; ++i) {
      auto j = job(static_cast<unsigned>(i), rng.uniform(0.0, 3000.0),
                   rng.uniform(400.0, 2000.0));
      const double r = rng.uniform01();
      if (r < 0.4 && n_nodes > 0) {
        j.phase = JobPhase::kRunning;
        j.current_node = NodeId{static_cast<unsigned>(rng.uniform_int(0, n_nodes - 1))};
        j.movable = rng.chance(0.8);
        if (!j.movable) j.phase = JobPhase::kResuming;
      } else if (r < 0.55) {
        j.phase = JobPhase::kSuspended;
      }
      j.remaining = util::MhzSeconds{rng.uniform(1e3, 1e8)};
      p.jobs.push_back(j);
    }
    // Pre-existing placements must be memory-feasible: drop residents
    // that would overflow (mimics what a real cluster guarantees).
    std::map<unsigned, double> mem_used;
    for (auto& j : p.jobs) {
      if (j.current_node.valid()) {
        if (mem_used[j.current_node.get()] + j.memory.get() > 4096.0) {
          j.current_node = NodeId{};
          j.phase = JobPhase::kPending;
          j.movable = true;
        } else {
          mem_used[j.current_node.get()] += j.memory.get();
        }
      }
    }
    const int n_apps = static_cast<int>(rng.uniform_int(0, 2));
    for (int a = 0; a < n_apps; ++a) {
      p.apps.push_back(app(static_cast<unsigned>(a), rng.uniform(0.0, 40000.0)));
    }
    const auto r = core::solve_placement(p);
    assert_feasible(p, r.plan);
    // Every immovable memory-holding job must be in the plan.
    for (const auto& j : p.jobs) {
      if (!j.movable && j.current_node.valid()) {
        bool found = false;
        for (const auto& jp : r.plan.jobs) found |= (jp.job == j.id);
        ASSERT_TRUE(found) << "immovable job dropped from plan";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverFuzz, ::testing::Values(11u, 22u, 33u, 44u, 55u));

// ---- Edge paths the hot-path rewrite must preserve --------------------------

TEST(Solver, StarvationRescueRelocatesToNodeWithSlack) {
  // Node 0: a kept instance whose target consumes the whole node; the
  // collocated running job gets a zero grant and must be rescued to
  // node 1 (free memory, idle CPU) rather than starve in place.
  auto p = small_cluster(2);
  p.jobs.push_back(running_job(0, 0, 2000.0));
  auto a = app(0, 12000.0, 1024.0, /*max_inst=*/1);
  a.current.push_back({NodeId{0}, /*movable=*/true});
  p.apps.push_back(a);
  const auto r = core::solve_placement(p);
  assert_feasible(p, r.plan);
  ASSERT_EQ(r.plan.jobs.size(), 1u);
  EXPECT_EQ(r.plan.jobs[0].node.get(), 1u);
  EXPECT_GT(r.plan.jobs[0].cpu.get(), 1.0);
  EXPECT_GE(r.stats.jobs_evicted, 1);
  EXPECT_EQ(r.stats.jobs_migrated, 1);
}

TEST(Solver, StarvationRescueSuspendsWithoutDestination) {
  // Single node: the starved job has nowhere to go and is suspended
  // (dropped from the plan) instead of holding memory at zero speed.
  auto p = small_cluster(1);
  p.jobs.push_back(running_job(0, 0, 2000.0));
  auto a = app(0, 12000.0, 1024.0, /*max_inst=*/1);
  a.current.push_back({NodeId{0}, /*movable=*/true});
  p.apps.push_back(a);
  const auto r = core::solve_placement(p);
  assert_feasible(p, r.plan);
  EXPECT_TRUE(r.plan.jobs.empty());
  EXPECT_GE(r.stats.jobs_evicted, 1);
  EXPECT_EQ(r.stats.jobs_migrated, 0);
  EXPECT_GE(r.stats.jobs_waiting, 1);
}

TEST(Solver, StarvationRescueSuspendsWhenMigrationDisabled) {
  auto p = small_cluster(2);
  p.jobs.push_back(running_job(0, 0, 2000.0));
  auto a = app(0, 12000.0, 1024.0, /*max_inst=*/1);
  a.current.push_back({NodeId{0}, /*movable=*/true});
  p.apps.push_back(a);
  SolverConfig cfg;
  cfg.allow_migration = false;
  const auto r = core::solve_placement(p, cfg);
  assert_feasible(p, r.plan);
  EXPECT_TRUE(r.plan.jobs.empty());
  EXPECT_EQ(r.stats.jobs_migrated, 0);
  EXPECT_GE(r.stats.jobs_waiting, 1);
}

TEST(Solver, WorkConservingSpreadsLeftoverUpToEachJobsCap) {
  // Two jobs with different max speeds: the equal-share spread must stop
  // at each job's cap and re-spread the remainder to the open job.
  auto p = small_cluster(1);
  p.jobs.push_back(job(0, 500.0, 1300.0, /*max_speed=*/2000.0));
  p.jobs.push_back(job(1, 500.0, 1300.0, /*max_speed=*/3000.0));
  const auto r = core::solve_placement(p);
  assert_feasible(p, r.plan);
  ASSERT_EQ(r.plan.jobs.size(), 2u);
  for (const auto& jp : r.plan.jobs) {
    if (jp.job.get() == 0) {
      EXPECT_NEAR(jp.cpu.get(), 2000.0, 1e-6);
    }
    if (jp.job.get() == 1) {
      EXPECT_NEAR(jp.cpu.get(), 3000.0, 1e-6);
    }
  }
}

TEST(Solver, InstanceGrowthEvictsInUrgencyOrder) {
  // The instance needs two memory slots freed: the two least-urgent jobs
  // go (suspended — single node), the most urgent survives in place.
  auto p = small_cluster(1);
  p.jobs.push_back(running_job(0, 0, 500.0));
  p.jobs.push_back(running_job(1, 0, 1500.0));
  p.jobs.push_back(running_job(2, 0, 3000.0));
  p.apps.push_back(app(0, 6000.0, /*inst_mem=*/2500.0));
  const auto r = core::solve_placement(p);
  assert_feasible(p, r.plan);
  ASSERT_EQ(r.plan.instances.size(), 1u);
  EXPECT_EQ(r.stats.jobs_evicted, 2);
  ASSERT_EQ(r.plan.jobs.size(), 1u);
  EXPECT_EQ(r.plan.jobs[0].job.get(), 2u);  // highest urgency survives
  EXPECT_EQ(r.stats.jobs_waiting, 2);
}
