// LinkScheduler tests: the FIFO bandwidth-pool contention model.
//
// Covers the two tentpole guarantees: (1) an uncontended p2p submission
// delivers at exactly now + TransferModel::transfer_time — bit-identical
// to the PR 3 closed form the scheduler replaced; (2) N simultaneous
// transfers over one link serialize to the exact analytic finish times,
// so a K-way evacuation over a shared link takes at least K× the
// single-transfer wire time. Plus uplink-pool semantics and cross-run
// determinism (the scheduler has no randomness: identical submission
// programs produce identical grants under any seed).

#include "migration/link_scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "util/units.hpp"

using namespace heteroplace;
using namespace heteroplace::util::literals;
using migration::LinkMode;
using migration::LinkScheduler;
using migration::TransferModel;

TEST(LinkScheduler, UncontendedDeliveryIsBitIdenticalToClosedForm) {
  sim::Engine engine;
  engine.run_until(util::Seconds{123.456});  // arbitrary non-zero clock
  TransferModel model{100.0, 4.0};
  model.set_link(0, 1, 500.0, 1.0);
  LinkScheduler sched{engine, model, LinkMode::kP2p};

  bool delivered = false;
  const LinkScheduler::Grant g = sched.submit(0, 1, 777_mb, [&] { delivered = true; });

  // Exact floating-point equality, not NEAR: the idle-pool path must
  // reproduce the pre-scheduler sum now + (latency + image/bandwidth).
  EXPECT_EQ(g.delivery.get(), engine.now().get() + model.transfer_time(0, 1, 777_mb).get());
  EXPECT_EQ(g.wire_start.get(), engine.now().get());
  EXPECT_EQ(g.queue_wait_s, 0.0);
  EXPECT_EQ(g.transfer_s, model.transfer_time(0, 1, 777_mb).get());

  engine.run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(engine.now().get(), g.delivery.get());
  EXPECT_EQ(sched.active_transfers(), 0u);
  EXPECT_EQ(sched.queued_transfers(), 0u);
}

TEST(LinkScheduler, SimultaneousTransfersSerializeToAnalyticFinishTimes) {
  constexpr int kTransfers = 4;
  sim::Engine engine;
  TransferModel model{100.0, 4.0};  // wire = 10 s per 1000 MB, latency 4 s
  LinkScheduler sched{engine, model, LinkMode::kP2p};

  std::vector<double> delivered_at(kTransfers, -1.0);
  std::vector<LinkScheduler::Grant> grants;
  for (int i = 0; i < kTransfers; ++i) {
    grants.push_back(
        sched.submit(0, 1, 1000_mb, [&, i] { delivered_at[i] = engine.now().get(); }));
  }
  // One on the wire, the rest queued behind it. No wait has been served
  // yet — the counter accrues when each wire starts, not at submit.
  EXPECT_EQ(sched.active_transfers(), 1u);
  EXPECT_EQ(sched.queued_transfers(), 3u);
  EXPECT_EQ(sched.queued_from(0), 3u);
  EXPECT_EQ(sched.queued_from(1), 0u);
  EXPECT_DOUBLE_EQ(sched.total_queue_wait_s(), 0.0);

  // Strict FIFO: transfer i starts when i-1 leaves the wire and delivers
  // one propagation latency after its own wire time.
  const double wire = 1000.0 / 100.0;
  for (int i = 0; i < kTransfers; ++i) {
    EXPECT_DOUBLE_EQ(grants[i].wire_start.get(), i * wire) << "transfer " << i;
    EXPECT_DOUBLE_EQ(grants[i].delivery.get(), i * wire + (4.0 + wire)) << "transfer " << i;
    EXPECT_DOUBLE_EQ(grants[i].queue_wait_s, i * wire) << "transfer " << i;
  }
  // K-way contention over one link: the evacuation cannot finish faster
  // than K× the single-transfer wire time.
  EXPECT_GE(grants.back().delivery.get(), kTransfers * wire);

  engine.run();
  for (int i = 0; i < kTransfers; ++i) {
    EXPECT_DOUBLE_EQ(delivered_at[i], grants[i].delivery.get()) << "transfer " << i;
  }
  EXPECT_EQ(sched.queued_transfers(), 0u);
  EXPECT_EQ(sched.active_transfers(), 0u);
  EXPECT_DOUBLE_EQ(sched.total_queue_wait_s(), wire + 2 * wire + 3 * wire);
}

TEST(LinkScheduler, DistinctP2pLinksDoNotContend) {
  sim::Engine engine;
  TransferModel model{100.0, 0.0};
  LinkScheduler sched{engine, model, LinkMode::kP2p};

  const auto a = sched.submit(0, 1, 1000_mb, [] {});
  const auto b = sched.submit(0, 2, 1000_mb, [] {});  // different destination
  const auto c = sched.submit(2, 1, 1000_mb, [] {});  // different source
  for (const auto& g : {a, b, c}) {
    EXPECT_EQ(g.queue_wait_s, 0.0);
    EXPECT_DOUBLE_EQ(g.delivery.get(), 10.0);
  }
  EXPECT_EQ(sched.active_transfers(), 3u);
  engine.run();
}

TEST(LinkScheduler, UplinkModePoolsAllTransfersLeavingADomain) {
  sim::Engine engine;
  TransferModel model{100.0, 0.0};
  model.set_uplink_bandwidth(0, 50.0);  // wire = 20 s per 1000 MB
  // Per-pair bandwidth overrides do not apply in uplink mode — the pool
  // capacity governs; per-pair latency still does.
  model.set_link(0, 1, 1.0e6, 3.0);
  LinkScheduler sched{engine, model, LinkMode::kUplink};

  const auto a = sched.submit(0, 1, 1000_mb, [] {});
  const auto b = sched.submit(0, 2, 1000_mb, [] {});  // contends despite dest 2
  const auto c = sched.submit(1, 2, 1000_mb, [] {});  // other domain's uplink is free
  EXPECT_DOUBLE_EQ(a.delivery.get(), 3.0 + 20.0);
  EXPECT_DOUBLE_EQ(b.wire_start.get(), 20.0);
  EXPECT_DOUBLE_EQ(b.delivery.get(), 20.0 + 20.0);  // default latency 0 on 0→2
  EXPECT_DOUBLE_EQ(c.queue_wait_s, 0.0);
  EXPECT_DOUBLE_EQ(c.delivery.get(), 10.0);  // default uplink 100 MB/s
  EXPECT_EQ(sched.queued_from(0), 1u);
  engine.run();
}

TEST(LinkScheduler, DeterministicAcrossRuns) {
  // No randomness anywhere: replaying the same submission program gives
  // bit-identical grants, whatever seed the surrounding experiment uses.
  auto run_once = [] {
    sim::Engine engine;
    TransferModel model{125.0, 2.0};
    LinkScheduler sched{engine, model, LinkMode::kP2p};
    std::vector<double> deliveries;
    for (int i = 0; i < 5; ++i) {
      deliveries.push_back(sched.submit(0, 1, util::MemMb{300.0 + 100.0 * i}, [] {}).delivery.get());
    }
    engine.run();
    return deliveries;
  };
  const auto first = run_once();
  const auto second = run_once();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) EXPECT_EQ(first[i], second[i]);
}

TEST(LinkScheduler, CancelQueuedCompactsThePoolAndNeverDelivers) {
  sim::Engine engine;
  TransferModel model{100.0, 4.0};  // wire = 10 s per 1000 MB
  LinkScheduler sched{engine, model, LinkMode::kP2p};

  std::vector<double> delivered_at(3, -1.0);
  std::vector<LinkScheduler::Grant> grants;
  for (int i = 0; i < 3; ++i) {
    grants.push_back(
        sched.submit(0, 1, 1000_mb, [&, i] { delivered_at[i] = engine.now().get(); }));
  }
  ASSERT_EQ(sched.queued_transfers(), 2u);

  // The transfer on the wire cannot be recalled; a queued one can, and
  // the transfer behind it moves up a full wire slot.
  EXPECT_FALSE(sched.cancel_queued(grants[0].id));
  EXPECT_TRUE(sched.cancel_queued(grants[1].id));
  EXPECT_FALSE(sched.cancel_queued(grants[1].id));  // idempotent: already gone
  EXPECT_FALSE(sched.cancel_queued(9999));          // unknown id
  EXPECT_EQ(sched.queued_transfers(), 1u);
  EXPECT_EQ(sched.queued_from(0), 1u);

  engine.run();
  EXPECT_DOUBLE_EQ(delivered_at[0], grants[0].delivery.get());
  EXPECT_DOUBLE_EQ(delivered_at[1], -1.0) << "cancelled transfer delivered";
  // Transfer 2 starts when transfer 0 leaves the wire (t=10), not at its
  // predicted t=20 slot behind the cancelled transfer 1.
  EXPECT_DOUBLE_EQ(delivered_at[2], 10.0 + (4.0 + 10.0));
  EXPECT_EQ(sched.queued_transfers(), 0u);
  EXPECT_EQ(sched.active_transfers(), 0u);
  // Only transfer 2's actually-served wait is credited.
  EXPECT_DOUBLE_EQ(sched.total_queue_wait_s(), 10.0);
}

TEST(LinkScheduler, RejectsDegenerateSubmissions) {
  sim::Engine engine;
  LinkScheduler sched{engine, TransferModel{}, LinkMode::kP2p};
  EXPECT_THROW((void)sched.submit(1, 1, 100_mb, [] {}), std::invalid_argument);
  EXPECT_THROW((void)sched.submit(0, 1, 0_mb, [] {}), std::invalid_argument);
}
