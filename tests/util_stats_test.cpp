// Tests for util/stats: Welford accumulator, percentiles, histograms.

#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace hu = heteroplace::util;

TEST(RunningStats, EmptyIsZero) {
  hu::RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  hu::RunningStats s;
  s.add(7.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 7.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
}

TEST(RunningStats, MatchesClosedForm) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  hu::RunningStats s;
  for (double x : xs) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum((x-5)^2) = 32, 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  hu::RunningStats a;
  hu::RunningStats b;
  hu::RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10.0;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  hu::RunningStats a;
  a.add(3.0);
  a.add(5.0);
  hu::RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 4.0);
}

TEST(RunningStats, NumericallyStableOnOffsetData) {
  // Classic catastrophic-cancellation case: large offset, small variance.
  hu::RunningStats s;
  for (int i = 0; i < 1000; ++i) s.add(1e9 + (i % 2));
  EXPECT_NEAR(s.variance(), 0.25025, 1e-3);
}

TEST(Percentile, EmptyReturnsZero) {
  hu::PercentileEstimator p;
  EXPECT_DOUBLE_EQ(p.quantile(0.5), 0.0);
}

TEST(Percentile, MedianOfOddCount) {
  hu::PercentileEstimator p;
  for (double x : {5.0, 1.0, 3.0}) p.add(x);
  EXPECT_DOUBLE_EQ(p.median(), 3.0);
}

TEST(Percentile, InterpolatesBetweenOrderStatistics) {
  hu::PercentileEstimator p;
  for (double x : {0.0, 10.0}) p.add(x);
  EXPECT_DOUBLE_EQ(p.quantile(0.25), 2.5);
  EXPECT_DOUBLE_EQ(p.quantile(0.75), 7.5);
}

TEST(Percentile, ExtremesAndClamping) {
  hu::PercentileEstimator p;
  for (int i = 1; i <= 100; ++i) p.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(p.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(p.quantile(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(p.quantile(1.5), 100.0);
}

TEST(Percentile, AddAfterQueryStillSorts) {
  hu::PercentileEstimator p;
  p.add(10.0);
  EXPECT_DOUBLE_EQ(p.median(), 10.0);
  p.add(0.0);
  p.add(20.0);
  EXPECT_DOUBLE_EQ(p.median(), 10.0);
  EXPECT_DOUBLE_EQ(p.quantile(0.0), 0.0);
}

TEST(Histogram, BinsCorrectly) {
  hu::Histogram h(0.0, 10.0, 5);
  h.add(0.0);   // bin 0
  h.add(1.99);  // bin 0
  h.add(2.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderAndOverflow) {
  hu::Histogram h(0.0, 10.0, 2);
  h.add(-1.0);
  h.add(10.0);  // hi is exclusive
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinEdges) {
  hu::Histogram h(10.0, 20.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 12.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 17.5);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 20.0);
}

TEST(Histogram, ToStringMentionsCounts) {
  hu::Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  const std::string s = h.to_string();
  EXPECT_NE(s.find("0..1: 1"), std::string::npos);
  EXPECT_NE(s.find("1..2: 1"), std::string::npos);
}
