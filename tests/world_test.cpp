// Tests for core::World (job/app registry) and cluster::PlacementPlan
// helpers.

#include "core/world.hpp"

#include <gtest/gtest.h>

#include "cluster/actions.hpp"
#include "cluster/placement.hpp"

using namespace heteroplace;
using namespace heteroplace::util::literals;
using core::World;
using workload::JobPhase;
using workload::JobSpec;

namespace {
JobSpec spec(unsigned id, double submit = 0.0) {
  JobSpec s;
  s.id = util::JobId{id};
  s.work = util::MhzSeconds{1e6};
  s.max_speed = 3000_mhz;
  s.memory = 1300_mb;
  s.submit_time = util::Seconds{submit};
  s.completion_goal = 1000_s;
  return s;
}
}  // namespace

TEST(World, SubmitAndLookup) {
  World w;
  w.submit_job(spec(5));
  EXPECT_TRUE(w.job_exists(util::JobId{5}));
  EXPECT_FALSE(w.job_exists(util::JobId{6}));
  EXPECT_EQ(w.job(util::JobId{5}).id().get(), 5u);
  EXPECT_THROW((void)w.job(util::JobId{6}), std::out_of_range);
}

TEST(World, DuplicateSubmissionRejected) {
  World w;
  w.submit_job(spec(1));
  EXPECT_THROW(w.submit_job(spec(1)), std::invalid_argument);
}

TEST(World, ActiveJobsExcludeCompleted) {
  World w;
  w.submit_job(spec(1));
  auto& j2 = w.submit_job(spec(2));
  EXPECT_EQ(w.active_jobs().size(), 2u);
  j2.set_phase(0_s, JobPhase::kCompleted);
  EXPECT_EQ(w.active_jobs().size(), 1u);
  EXPECT_EQ(w.completed_count(), 1u);
  EXPECT_EQ(w.submitted_count(), 2u);
}

TEST(World, ActiveJobsPreserveSubmissionOrder) {
  World w;
  w.submit_job(spec(9, 10.0));
  w.submit_job(spec(2, 20.0));
  w.submit_job(spec(5, 30.0));
  const auto active = w.active_jobs();
  ASSERT_EQ(active.size(), 3u);
  EXPECT_EQ(active[0]->id().get(), 9u);
  EXPECT_EQ(active[1]->id().get(), 2u);
  EXPECT_EQ(active[2]->id().get(), 5u);
}

TEST(World, AppLookup) {
  World w;
  workload::TxAppSpec app;
  app.id = util::AppId{3};
  app.name = "web";
  w.add_app(workload::TxApp{app, workload::DemandTrace{5.0}});
  EXPECT_TRUE(w.app_exists(util::AppId{3}));
  EXPECT_FALSE(w.app_exists(util::AppId{9}));
  EXPECT_EQ(w.app(util::AppId{3}).spec().name, "web");
  EXPECT_THROW((void)w.app(util::AppId{9}), std::out_of_range);
}

TEST(World, AppLookupByIdNotByPosition) {
  // Ids are looked up through the index map, independent of insertion
  // order; duplicates are rejected like duplicate job ids.
  World w;
  for (unsigned id : {7u, 2u, 5u}) {
    workload::TxAppSpec app;
    app.id = util::AppId{id};
    app.name = "app" + std::to_string(id);
    w.add_app(workload::TxApp{app, workload::DemandTrace{1.0}});
  }
  EXPECT_EQ(w.app(util::AppId{2}).spec().name, "app2");
  EXPECT_EQ(w.app(util::AppId{7}).spec().name, "app7");
  EXPECT_EQ(w.app(util::AppId{5}).spec().name, "app5");
  workload::TxAppSpec dup;
  dup.id = util::AppId{2};
  EXPECT_THROW(w.add_app(workload::TxApp{dup, workload::DemandTrace{1.0}}),
               std::invalid_argument);
}

TEST(World, AppMutSwapsDemandTrace) {
  // The federation re-splits app demand mid-run through app_mut.
  World w;
  workload::TxAppSpec app;
  app.id = util::AppId{0};
  w.add_app(workload::TxApp{app, workload::DemandTrace{8.0}});
  w.app_mut(util::AppId{0}).set_trace(workload::DemandTrace{2.0});
  EXPECT_DOUBLE_EQ(w.app(util::AppId{0}).arrival_rate(0_s), 2.0);
  EXPECT_THROW((void)w.app_mut(util::AppId{1}), std::out_of_range);
}

TEST(PlacementPlan, FindJobAndTotals) {
  cluster::PlacementPlan p;
  p.jobs.push_back({util::JobId{1}, util::NodeId{0}, 2000_mhz});
  p.jobs.push_back({util::JobId{2}, util::NodeId{1}, 1000_mhz});
  p.instances.push_back({util::AppId{0}, util::NodeId{0}, 5000_mhz});
  p.instances.push_back({util::AppId{0}, util::NodeId{1}, 4000_mhz});
  p.instances.push_back({util::AppId{1}, util::NodeId{2}, 3000_mhz});

  ASSERT_TRUE(p.find_job(util::JobId{1}).has_value());
  EXPECT_EQ(p.find_job(util::JobId{1})->node.get(), 0u);
  EXPECT_FALSE(p.find_job(util::JobId{7}).has_value());
  EXPECT_DOUBLE_EQ(p.total_job_cpu().get(), 3000.0);
  EXPECT_DOUBLE_EQ(p.app_cpu(util::AppId{0}).get(), 9000.0);
  EXPECT_DOUBLE_EQ(p.app_cpu(util::AppId{1}).get(), 3000.0);
  EXPECT_DOUBLE_EQ(p.app_cpu(util::AppId{5}).get(), 0.0);
}

TEST(ActionCounts, RecordAndTotals) {
  cluster::ActionCounts c;
  c.record(cluster::ActionType::kSuspendJob);
  c.record(cluster::ActionType::kResumeJob);
  c.record(cluster::ActionType::kMigrateJob);
  c.record(cluster::ActionType::kStartJob);
  c.record(cluster::ActionType::kResizeCpu);
  EXPECT_EQ(c.total_disruptive(), 3);
  EXPECT_EQ(c.starts, 1);
  EXPECT_EQ(c.resizes, 1);
}

TEST(ActionLatencies, LatencyLookup) {
  cluster::ActionLatencies lat;
  EXPECT_DOUBLE_EQ(lat.latency_of(cluster::ActionType::kStartJob).get(), 60.0);
  EXPECT_DOUBLE_EQ(lat.latency_of(cluster::ActionType::kSuspendJob).get(), 15.0);
  EXPECT_DOUBLE_EQ(lat.latency_of(cluster::ActionType::kResumeJob).get(), 90.0);
  EXPECT_DOUBLE_EQ(lat.latency_of(cluster::ActionType::kMigrateJob).get(), 120.0);
  EXPECT_DOUBLE_EQ(lat.latency_of(cluster::ActionType::kResizeCpu).get(), 0.0);
}
