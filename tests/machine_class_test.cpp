// Machine classes & placement constraints.
//
// Four concerns, one file:
//   1. Bit-identity pins — a scalar (class-free) cluster must reproduce
//      the pre-class output digest exactly, single-world and federated,
//      at 1 and 4 engine threads.
//   2. Solver fuzz — across seeded heterogeneous class mixes, no control
//      cycle may ever place a VM on a node its owner's ConstraintSet
//      does not admit.
//   3. Equalizer class pricing — the class-aware delivered-speed cap on
//      JobConsumer follows the closed-form clamp semantics.
//   4. Config plumbing — classes / class.<name>.* / *.constraint.* keys
//      round-trip through the loader and fail loudly when malformed.

#include "cluster/machine_class.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/consumer.hpp"
#include "core/controller.hpp"
#include "core/equalizer.hpp"
#include "core/utility_policy.hpp"
#include "core/world.hpp"
#include "scenario/class_factory.hpp"
#include "scenario/config_loader.hpp"
#include "scenario/experiment.hpp"
#include "scenario/federation_experiment.hpp"
#include "scenario/result_digest.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "utility/job_utility.hpp"
#include "workload/job_factory.hpp"

using namespace heteroplace;

// ---------------------------------------------------------------------------
// 1. Bit-identity: scalar clusters take the exact pre-class code path.
// ---------------------------------------------------------------------------

namespace {

// The digests pinned here were captured on the commit that introduced
// machine classes, from a build where the class code was verified to
// leave scalar runs untouched. Any change to these values means the
// class layer perturbed legacy output — a regression, not a re-pin.
constexpr std::uint64_t kScalarSingleDigest = 0xae1574dc26d16f16ULL;
constexpr std::uint64_t kScalarFederatedDigest = 0x420aa998b801fcc2ULL;

scenario::Scenario scalar_single_scenario() {
  auto s = scenario::section3_scaled(0.15);
  s.seed = 7;
  s.horizon_s = 30000.0;
  s.power.enabled = true;
  return s;
}

scenario::FederatedScenario scalar_federated_scenario() {
  auto base = scenario::section3_scaled(0.2);
  base.seed = 42;
  base.horizon_s = 40000.0;
  scenario::FederatedScenario fs = scenario::federate(base, 3);
  for (auto& d : fs.domains) d.first_cycle_at_s = 0.0;
  fs.migration.enabled = true;
  fs.migration.policy = "drain+rebalance";
  fs.migration.check_interval_s = 300.0;
  fs.power.enabled = true;
  fs.power.policy = "idle-park";
  fs.power.idle_timeout_s = 1200.0;
  fs.faults.enabled = true;
  fs.faults.events.push_back({"node-crash", 1, 0, 0, 9000.0, 4000.0, 1.0});
  fs.faults.events.push_back({"blackout", 2, 0, 0, 15000.0, 2500.0, 1.0});
  fs.weight_events.push_back({0, 12000.0, 0.3});
  fs.weight_events.push_back({0, 24000.0, 1.0});
  return fs;
}

}  // namespace

TEST(MachineClassBitIdentity, ScalarSingleWorldDigestIsPinned) {
  scenario::ExperimentOptions opt;
  for (int threads : {1, 4}) {
    auto s = scalar_single_scenario();
    s.engine_threads = threads;
    EXPECT_EQ(scenario::digest(scenario::run_experiment(s, opt)), kScalarSingleDigest)
        << "threads=" << threads;
  }
}

TEST(MachineClassBitIdentity, ScalarFederatedDigestIsPinned) {
  scenario::ExperimentOptions opt;
  for (int threads : {1, 4}) {
    auto fs = scalar_federated_scenario();
    fs.engine_threads = threads;
    EXPECT_EQ(scenario::digest(scenario::run_federated_experiment(fs, opt)),
              kScalarFederatedDigest)
        << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// 2. Solver fuzz: constrained packing never violates a ConstraintSet.
// ---------------------------------------------------------------------------

namespace {

cluster::MachineClass make_class(const std::string& name, const std::string& arch, int cores,
                                 double core_mhz, double mem_mb, double speed_factor = 1.0,
                                 std::vector<std::string> accel = {}) {
  cluster::MachineClass c;
  c.name = name;
  c.arch = arch;
  c.cores = cores;
  c.core_mhz = core_mhz;
  c.mem_mb = mem_mb;
  c.speed_factor = speed_factor;
  c.accel = std::move(accel);
  return c;
}

}  // namespace

TEST(MachineClassSolverFuzz, NoCycleEverPlacesAVmOnAnInadmissibleNode) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    util::Rng rng(seed);

    // A randomized three-pool mix: general x86, dense-but-slower arm,
    // and a small accelerated pool. Every constraint profile used below
    // stays satisfiable by construction.
    scenario::ClusterSpec cluster_spec;
    const double x86_core = 2400.0 + 100.0 * static_cast<double>(rng.uniform_int(0, 6));
    cluster_spec.classes = {
        {make_class("x86", "x86_64", 4 + static_cast<int>(rng.uniform_int(0, 4)), x86_core,
                    8192.0),
         3 + static_cast<int>(rng.uniform_int(0, 2))},
        {make_class("arm", "arm64", 8, 2000.0, 12288.0,
                    0.8 + 0.05 * static_cast<double>(rng.uniform_int(0, 4))),
         2 + static_cast<int>(rng.uniform_int(0, 2))},
        {make_class("gpu", "x86_64", 8, 3000.0, 16384.0, 1.0, {"gpu"}),
         2},
    };
    scenario::validate_class_pools(cluster_spec);

    sim::Engine engine;
    core::World world;
    scenario::populate_cluster(world.cluster(), cluster_spec);
    const auto& registry = world.cluster().classes();
    ASSERT_TRUE(registry.explicit_classes());

    workload::JobTemplate tmpl;
    tmpl.work = util::MhzSeconds{1.5e6};
    tmpl.max_speed = util::CpuMhz{3000.0};
    tmpl.memory = util::MemMb{2048.0};
    tmpl.goal_stretch = 8.0;
    const long n_jobs = 24;
    workload::PoissonArrivals arrivals{util::Seconds{0.0}, util::Seconds{150.0}, n_jobs};
    std::vector<workload::JobSpec> jobs = workload::generate_jobs(arrivals, tmpl, rng);
    for (auto& spec : jobs) {
      switch (rng.uniform_int(0, 4)) {
        case 0: spec.constraint.accel = {"gpu"}; break;
        case 1: spec.constraint.arch = "arm64"; break;
        case 2: spec.constraint.min_core_mhz = 2400.0; break;  // excludes arm
        default: break;  // unconstrained
      }
    }
    for (const auto& spec : jobs) {
      engine.schedule_at(spec.submit_time, sim::EventPriority::kWorkloadArrival,
                         [&world, spec] { world.submit_job(spec); });
    }

    auto policy = std::make_unique<core::UtilityDrivenPolicy>(
        std::make_shared<utility::JobUtilityModel>(),
        std::make_shared<utility::TxUtilityModel>());
    core::PlacementController controller(engine, world, std::move(policy));

    long violations = 0;
    controller.set_observer([&](const core::CycleReport&) {
      const cluster::Cluster& cl = world.cluster();
      for (util::VmId vm_id : cl.vm_ids()) {
        const cluster::Vm& vm = cl.vm(vm_id);
        if (!vm.placed() || vm.kind != cluster::VmKind::kJobContainer) continue;
        const cluster::MachineClass& host = registry.at(cl.node(vm.node).klass());
        if (!world.job(vm.job).spec().constraint.admits(host)) ++violations;
      }
    });

    controller.start();
    while (world.completed_count() < static_cast<std::size_t>(n_jobs) &&
           engine.now().get() < 2.0e6) {
      engine.run_until(engine.now() + util::Seconds{6000.0});
    }

    EXPECT_EQ(violations, 0) << "seed " << seed;
    EXPECT_EQ(world.completed_count(), static_cast<std::size_t>(n_jobs)) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// 3. Equalizer class pricing: the delivered-speed cap in closed form.
// ---------------------------------------------------------------------------

namespace {

workload::JobSpec capped_job_spec() {
  // Work 3e6 at max_speed 3000 → 1000 s nominal; goal 2000 s. At full
  // speed the job finishes at the plateau edge (u = 1); at 1500 MHz it
  // finishes exactly on goal (u = 0.4). Same shape as job_utility_test.
  workload::JobSpec s;
  s.id = util::JobId{1};
  s.work = util::MhzSeconds{3.0e6};
  s.max_speed = util::CpuMhz{3000.0};
  s.memory = util::MemMb{1300.0};
  s.submit_time = util::Seconds{0.0};
  s.completion_goal = util::Seconds{2000.0};
  return s;
}

}  // namespace

TEST(MachineClassEqualizer, SpeedCapClampsDemandAndSaturatesUtility) {
  const utility::JobUtilityModel m;
  const workload::Job job{capped_job_spec()};
  const util::Seconds now{0.0};

  const core::JobConsumer uncapped(job, m, now);
  const core::JobConsumer capped(job, m, now, util::CpuMhz{1500.0});

  // Uncapped: demand saturates at the plateau-edge speed, utility 1.
  EXPECT_DOUBLE_EQ(uncapped.demand_max().get(), 3000.0);
  EXPECT_DOUBLE_EQ(uncapped.utility_max(), 1.0);

  // Capped at the best admitting class's delivered speed: demand is the
  // cap, and the achievable utility is what finishing at that speed
  // earns — on-goal completion, u = 0.4.
  EXPECT_DOUBLE_EQ(capped.demand_max().get(), 1500.0);
  EXPECT_DOUBLE_EQ(capped.utility_max(), 0.4);

  // The inverse clamps too: asking for more utility than the cap can
  // deliver returns the cap, never a speed the job cannot achieve.
  EXPECT_DOUBLE_EQ(capped.alloc_for_utility(1.0).get(), 1500.0);
  EXPECT_DOUBLE_EQ(uncapped.alloc_for_utility(1.0).get(), 3000.0);

  // Above the cap, extra allocation buys nothing.
  EXPECT_DOUBLE_EQ(capped.utility_at(util::CpuMhz{1500.0}),
                   capped.utility_at(util::CpuMhz{3000.0}));

  // The hot-loop curve params carry the same clamp.
  EXPECT_DOUBLE_EQ(capped.curve_params().max_speed, 1500.0);
  EXPECT_DOUBLE_EQ(uncapped.curve_params().max_speed, 3000.0);
}

TEST(MachineClassEqualizer, DefaultCapIsTheExactPreClassPath) {
  const utility::JobUtilityModel m;
  const workload::Job job{capped_job_spec()};
  const util::Seconds now{100.0};

  const core::JobConsumer plain(job, m, now);
  const core::JobConsumer huge_cap(job, m, now, util::CpuMhz{1.0e12});
  // A cap above the job's own max_speed never binds; both consumers give
  // bit-identical answers everywhere that matters to the equalizer.
  EXPECT_DOUBLE_EQ(plain.demand_max().get(), huge_cap.demand_max().get());
  EXPECT_DOUBLE_EQ(plain.utility_max(), huge_cap.utility_max());
  for (double u : {0.2, 0.4, 0.9, 1.0}) {
    EXPECT_DOUBLE_EQ(plain.alloc_for_utility(u).get(), huge_cap.alloc_for_utility(u).get());
  }
}

TEST(MachineClassEqualizer, EqualizePricesCappedConsumerAtItsCap) {
  const utility::JobUtilityModel m;
  const workload::Job job_a{capped_job_spec()};
  auto spec_b = capped_job_spec();
  spec_b.id = util::JobId{2};
  const workload::Job job_b{spec_b};
  const util::Seconds now{0.0};

  const core::JobConsumer fast(job_a, m, now);
  const core::JobConsumer slow(job_b, m, now, util::CpuMhz{1500.0});

  // Ample capacity: the uncapped twin takes its full 3000 MHz demand,
  // the capped one exactly its 1500 MHz achievable-speed ceiling.
  const auto r = core::equalize({&fast, &slow}, util::CpuMhz{10000.0});
  EXPECT_FALSE(r.contended);
  EXPECT_DOUBLE_EQ(r.allocations[0].alloc.get(), 3000.0);
  EXPECT_DOUBLE_EQ(r.allocations[1].alloc.get(), 1500.0);
  EXPECT_DOUBLE_EQ(r.total_demand.get(), 4500.0);
}

// ---------------------------------------------------------------------------
// 4. Config plumbing: round-trip and fail-loud.
// ---------------------------------------------------------------------------

namespace {

constexpr const char* kHeteroConfig =
    "classes = x86,arm,gpu\n"
    "class.x86.arch = x86_64\n"
    "class.x86.cores = 8\n"
    "class.x86.core_mhz = 2500\n"
    "class.x86.mem_mb = 8192\n"
    "class.x86.count = 4\n"
    "class.arm.arch = arm64\n"
    "class.arm.cores = 16\n"
    "class.arm.core_mhz = 2000\n"
    "class.arm.speed_factor = 0.9\n"
    "class.arm.mem_mb = 12288\n"
    "class.arm.count = 3\n"
    "class.gpu.arch = x86_64\n"
    "class.gpu.cores = 8\n"
    "class.gpu.core_mhz = 3000\n"
    "class.gpu.mem_mb = 16384\n"
    "class.gpu.accel = gpu\n"
    "class.gpu.count = 2\n";

constexpr const char* kConstraintKeys =
    "jobs.constraint.arch = x86_64\n"
    "jobs.constraint.min_core_mhz = 2500\n"
    "app.0.constraint.accel = gpu\n";

std::string hetero_config_text() {
  return std::string(kHeteroConfig) + kConstraintKeys;
}

}  // namespace

TEST(MachineClassConfig, ClassPoolsAndConstraintsParse) {
  const auto s =
      scenario::scenario_from_config(util::Config::from_string(hetero_config_text()));
  ASSERT_TRUE(s.cluster.heterogeneous());
  ASSERT_EQ(s.cluster.classes.size(), 3u);
  EXPECT_EQ(s.cluster.total_nodes(), 9);

  // `classes = x86,arm,gpu` is a tag list: pools come back sorted by
  // name (arm, gpu, x86) so the layout is declaration-order independent.
  const auto& arm = s.cluster.classes[0];
  EXPECT_EQ(arm.klass.name, "arm");
  EXPECT_EQ(arm.count, 3);
  EXPECT_DOUBLE_EQ(arm.klass.speed_factor, 0.9);
  EXPECT_DOUBLE_EQ(arm.klass.delivered_core_mhz(), 1800.0);
  EXPECT_DOUBLE_EQ(arm.klass.delivered_cpu_mhz(), 16.0 * 1800.0);

  const auto& x86 = s.cluster.classes[2];
  EXPECT_EQ(x86.klass.name, "x86");
  EXPECT_EQ(x86.klass.arch, "x86_64");
  EXPECT_EQ(x86.klass.cores, 8);
  EXPECT_DOUBLE_EQ(x86.klass.core_mhz, 2500.0);
  EXPECT_EQ(x86.count, 4);

  const auto& gpu = s.cluster.classes[1];
  EXPECT_EQ(gpu.klass.name, "gpu");
  EXPECT_EQ(gpu.count, 2);
  ASSERT_EQ(gpu.klass.accel.size(), 1u);
  EXPECT_EQ(gpu.klass.accel[0], "gpu");

  EXPECT_EQ(s.jobs.tmpl.constraint.arch, "x86_64");
  EXPECT_DOUBLE_EQ(s.jobs.tmpl.constraint.min_core_mhz, 2500.0);
  ASSERT_EQ(s.apps.size(), 1u);
  ASSERT_EQ(s.apps[0].spec.constraint.accel.size(), 1u);
  EXPECT_EQ(s.apps[0].spec.constraint.accel[0], "gpu");
}

TEST(MachineClassConfig, ScenarioToConfigRoundTripsClassesAndConstraints) {
  const auto s =
      scenario::scenario_from_config(util::Config::from_string(hetero_config_text()));
  const auto back = scenario::scenario_from_config(
      util::Config::from_string(scenario::scenario_to_config(s)));
  ASSERT_EQ(back.cluster.classes.size(), s.cluster.classes.size());
  for (std::size_t i = 0; i < s.cluster.classes.size(); ++i) {
    const auto& a = s.cluster.classes[i];
    const auto& b = back.cluster.classes[i];
    EXPECT_EQ(b.klass.name, a.klass.name);
    EXPECT_EQ(b.klass.arch, a.klass.arch);
    EXPECT_EQ(b.klass.cores, a.klass.cores);
    EXPECT_DOUBLE_EQ(b.klass.core_mhz, a.klass.core_mhz);
    EXPECT_DOUBLE_EQ(b.klass.mem_mb, a.klass.mem_mb);
    EXPECT_DOUBLE_EQ(b.klass.speed_factor, a.klass.speed_factor);
    EXPECT_EQ(b.klass.accel, a.klass.accel);
    EXPECT_EQ(b.count, a.count);
  }
  EXPECT_EQ(back.jobs.tmpl.constraint, s.jobs.tmpl.constraint);
  ASSERT_EQ(back.apps.size(), s.apps.size());
  EXPECT_EQ(back.apps[0].spec.constraint, s.apps[0].spec.constraint);
}

TEST(MachineClassConfig, ScalarAndPooledSpellingsAreMutuallyExclusive) {
  const auto cfg = util::Config::from_string(
      hetero_config_text() + "nodes = 5\n");
  EXPECT_THROW((void)scenario::scenario_from_config(cfg), util::ConfigError);
}

TEST(MachineClassConfig, MalformedClassPoolsRejected) {
  // speed_factor outside (0, 1].
  EXPECT_THROW((void)scenario::scenario_from_config(util::Config::from_string(
                   "classes = big\n"
                   "class.big.cores = 4\n"
                   "class.big.core_mhz = 2000\n"
                   "class.big.mem_mb = 4096\n"
                   "class.big.speed_factor = 1.5\n"
                   "class.big.count = 2\n")),
               util::ConfigError);
  // Missing cores.
  EXPECT_THROW((void)scenario::scenario_from_config(util::Config::from_string(
                   "classes = big\n"
                   "class.big.core_mhz = 2000\n"
                   "class.big.mem_mb = 4096\n"
                   "class.big.count = 2\n")),
               util::ConfigError);
  // Stray comma in an accel tag list.
  EXPECT_THROW((void)scenario::scenario_from_config(util::Config::from_string(
                   "classes = big\n"
                   "class.big.cores = 4\n"
                   "class.big.core_mhz = 2000\n"
                   "class.big.mem_mb = 4096\n"
                   "class.big.accel = gpu,,nvme\n"
                   "class.big.count = 2\n")),
               util::ConfigError);
}

TEST(MachineClassConfig, UnsatisfiableConstraintRejectedAtLoadTime) {
  // No pool is arch=sparc: the job stream could never place. Both the
  // job-stream and per-app constraint paths must fail loudly.
  EXPECT_THROW((void)scenario::scenario_from_config(util::Config::from_string(
                   std::string(kHeteroConfig) + "jobs.constraint.arch = sparc\n")),
               util::ConfigError);
  EXPECT_THROW((void)scenario::scenario_from_config(util::Config::from_string(
                   std::string(kHeteroConfig) + "app.0.constraint.accel = tpu\n")),
               util::ConfigError);
  // min_core_mhz above every pool's delivered per-core speed.
  EXPECT_THROW(
      (void)scenario::scenario_from_config(util::Config::from_string(
          std::string(kHeteroConfig) + "jobs.constraint.min_core_mhz = 5000\n")),
      util::ConfigError);
}

TEST(MachineClassConfig, FederatedDomainClassCountOverride) {
  // 2 domains; the gpu pool lives entirely in domain 0. The app (which
  // needs gpu) is satisfiable because *some* domain admits it.
  const auto cfg = util::Config::from_string(
      hetero_config_text() +
      "domains = 2\n"
      "domain.0.class.gpu.count = 2\n"
      "domain.1.class.gpu.count = 0\n");
  const auto fs = scenario::federated_scenario_from_config(cfg);
  ASSERT_EQ(fs.domains.size(), 2u);
  // Pools sort by name (arm, gpu, x86). Even split of arm (3 → 2+1) and
  // x86 (4 → 2+2); gpu placed entirely in domain 0 by the override.
  const auto& d0 = fs.domains[0].cluster.classes;
  const auto& d1 = fs.domains[1].cluster.classes;
  ASSERT_EQ(d0.size(), 3u);
  ASSERT_EQ(d1.size(), 3u);
  EXPECT_EQ(d0[0].count, 2);  // arm
  EXPECT_EQ(d1[0].count, 1);
  EXPECT_EQ(d0[1].count, 2);  // gpu
  EXPECT_EQ(d1[1].count, 0);
  EXPECT_EQ(d0[2].count, 2);  // x86
  EXPECT_EQ(d1[2].count, 2);
  // A zero-count pool still registers its class, so ClassIds align.
  EXPECT_EQ(d1[1].klass.name, "gpu");
}

TEST(MachineClassConfig, FederatedScalarDomainKeysRejectedWithClasses) {
  const auto cfg = util::Config::from_string(
      hetero_config_text() +
      "domains = 2\n"
      "domain.0.nodes = 3\n");
  EXPECT_THROW((void)scenario::federated_scenario_from_config(cfg),
               util::ConfigError);
}
