// Federation tests: the 1-domain equivalence pin (a federated run must
// reproduce the single-World trajectories exactly), the 3-domain
// integration behaviour (routing coverage, staggered cycles, aggregated
// metrics), and the router policies.

#include "federation/federation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/utility_policy.hpp"
#include "scenario/experiment.hpp"
#include "scenario/federation_experiment.hpp"
#include "utility/utility_fn.hpp"

using namespace heteroplace;
using namespace heteroplace::util::literals;

namespace {

scenario::Scenario mid_scenario() {
  auto s = scenario::section3_scaled(0.2);  // 5 nodes, 160 jobs
  s.seed = 42;
  return s;
}

std::unique_ptr<core::UtilityDrivenPolicy> make_policy() {
  return std::make_unique<core::UtilityDrivenPolicy>(
      std::make_shared<utility::JobUtilityModel>(), std::make_shared<utility::TxUtilityModel>());
}

workload::JobSpec make_job(unsigned id, double submit = 0.0) {
  workload::JobSpec s;
  s.id = util::JobId{id};
  s.work = util::MhzSeconds{3.0e6};
  s.max_speed = 3000_mhz;
  s.memory = 1300_mb;
  s.submit_time = util::Seconds{submit};
  s.completion_goal = util::Seconds{4000.0};
  return s;
}

workload::TxAppSpec make_app_spec(unsigned id) {
  workload::TxAppSpec spec;
  spec.id = util::AppId{id};
  spec.name = "app" + std::to_string(id);
  spec.rt_goal = util::Seconds{1.2};
  spec.service_demand = 5000.0;
  spec.instance_memory = 1024_mb;
  spec.max_instances = 8;
  spec.max_cpu_per_instance = 12000_mhz;
  return spec;
}

void require_same_series(const util::TimeSeriesSet& a, const util::TimeSeriesSet& b,
                         const std::string& name) {
  const auto* sa = a.find(name);
  const auto* sb = b.find(name);
  ASSERT_NE(sa, nullptr) << name;
  ASSERT_NE(sb, nullptr) << name;
  ASSERT_EQ(sa->size(), sb->size()) << name;
  for (std::size_t i = 0; i < sa->size(); ++i) {
    EXPECT_DOUBLE_EQ(sa->points()[i].t, sb->points()[i].t) << name << " point " << i;
    EXPECT_DOUBLE_EQ(sa->points()[i].v, sb->points()[i].v) << name << " point " << i;
  }
}

}  // namespace

// --- equivalence pin --------------------------------------------------------

// A 1-domain federation must reproduce the single-World experiment's
// trajectories exactly: identical per-cycle diagnostics, identical action
// counts, identical sampled utilities.
TEST(FederationEquivalence, OneDomainReproducesSingleWorldRunExactly) {
  scenario::ExperimentOptions opt;
  opt.validate_invariants = true;

  const scenario::ExperimentResult single = scenario::run_experiment(mid_scenario(), opt);
  const scenario::FederatedResult fed =
      scenario::run_federated_experiment(scenario::federate(mid_scenario(), 1), opt);

  ASSERT_EQ(fed.domains.size(), 1u);
  const scenario::ExperimentSummary& fs = fed.domains[0].result.summary;
  const scenario::ExperimentSummary& ss = single.summary;

  EXPECT_EQ(fs.jobs_submitted, ss.jobs_submitted);
  EXPECT_EQ(fs.jobs_completed, ss.jobs_completed);
  EXPECT_EQ(fs.cycles, ss.cycles);
  EXPECT_EQ(fs.invariant_violations, 0);
  EXPECT_DOUBLE_EQ(fs.sim_end_time_s, ss.sim_end_time_s);
  EXPECT_DOUBLE_EQ(fs.goal_met_fraction, ss.goal_met_fraction);
  EXPECT_DOUBLE_EQ(fs.tx_utility.mean(), ss.tx_utility.mean());
  EXPECT_DOUBLE_EQ(fs.lr_utility.mean(), ss.lr_utility.mean());
  EXPECT_DOUBLE_EQ(fs.equalization_gap.mean(), ss.equalization_gap.mean());
  EXPECT_DOUBLE_EQ(fs.job_utility.mean(), ss.job_utility.mean());
  EXPECT_DOUBLE_EQ(fs.completion_ratio.mean(), ss.completion_ratio.mean());
  EXPECT_EQ(fs.actions.starts, ss.actions.starts);
  EXPECT_EQ(fs.actions.suspends, ss.actions.suspends);
  EXPECT_EQ(fs.actions.resumes, ss.actions.resumes);
  EXPECT_EQ(fs.actions.migrations, ss.actions.migrations);
  EXPECT_EQ(fs.actions.instance_starts, ss.actions.instance_starts);
  EXPECT_EQ(fs.actions.instance_stops, ss.actions.instance_stops);
  EXPECT_EQ(fs.actions.resizes, ss.actions.resizes);

  // Every per-cycle and per-sample series must match point for point.
  for (const char* name :
       {"u_star", "lr_hyp_utility", "utility_gap", "tx_utility", "tx_alloc_mhz",
        "lr_alloc_mhz", "tx_demand_mhz", "lr_demand_mhz", "active_jobs", "jobs_waiting",
        "suspends", "migrations", "jobs_completed"}) {
    require_same_series(fed.domains[0].result.series, single.series, name);
  }

  // The merged federation summary of one domain is that domain's summary.
  EXPECT_EQ(fed.summary.jobs_completed, fs.jobs_completed);
  EXPECT_DOUBLE_EQ(fed.summary.tx_utility.mean(), fs.tx_utility.mean());
}

// The equivalence holds under noisy monitoring too (domain 0 reuses the
// single-cluster noise seed).
TEST(FederationEquivalence, OneDomainMatchesUnderNoisyMonitoring) {
  scenario::ExperimentOptions opt;
  opt.lambda_noise_cv = 0.3;
  opt.horizon_override_s = 30000.0;

  const scenario::ExperimentResult single = scenario::run_experiment(mid_scenario(), opt);
  const scenario::FederatedResult fed =
      scenario::run_federated_experiment(scenario::federate(mid_scenario(), 1), opt);
  require_same_series(fed.domains[0].result.series, single.series, "u_star");
  require_same_series(fed.domains[0].result.series, single.series, "tx_alloc_mhz");
}

// --- multi-domain integration ------------------------------------------------

namespace {

const scenario::FederatedResult& three_domain_run() {
  static const scenario::FederatedResult r = [] {
    // Skewed load: 3 unequal domains (the federate() split of 5 nodes is
    // 2/2/1) under the mid-scenario's crowding job stream.
    scenario::FederatedScenario fs = scenario::federate(mid_scenario(), 3);
    scenario::ExperimentOptions opt;
    opt.validate_invariants = true;
    opt.max_sim_time_s = 2.0e6;
    return scenario::run_federated_experiment(fs, opt);
  }();
  return r;
}

}  // namespace

TEST(FederationIntegration, EveryJobRoutedToExactlyOneDomain) {
  const auto& r = three_domain_run();
  ASSERT_EQ(r.domains.size(), 3u);
  long routed = 0;
  long submitted = 0;
  for (const auto& d : r.domains) {
    routed += d.jobs_routed;
    submitted += d.result.summary.jobs_submitted;
    EXPECT_EQ(d.jobs_routed, d.result.summary.jobs_submitted) << d.name;
    EXPECT_GT(d.jobs_routed, 0) << d.name << ": router starved a domain";
  }
  EXPECT_EQ(routed, 160);
  EXPECT_EQ(submitted, 160);
  EXPECT_EQ(r.summary.jobs_submitted, 160);
  EXPECT_EQ(r.summary.jobs_completed, 160);
  EXPECT_EQ(r.summary.invariant_violations, 0);
}

TEST(FederationIntegration, EveryAppDemandSplitAcrossDomainsSumsToWhole) {
  // Each domain sees the app with a scaled trace; the scales sum to 1, so
  // the per-domain demand-curve series must sum to the single-cluster
  // demand at every cycle the domains agree on... instead of comparing
  // cycles (they are staggered), check the registered traces directly.
  sim::Engine engine;
  federation::Federation fed(engine, federation::make_router("least-loaded"));
  for (int i = 0; i < 3; ++i) {
    auto& d = fed.add_domain("d" + std::to_string(i), make_policy());
    d.world().cluster().add_nodes(i + 1, cluster::Resources{12000_mhz, 4096_mb});
  }
  workload::DemandTrace trace;
  trace.add(util::Seconds{0.0}, 12.0);
  trace.add(util::Seconds{100.0}, 24.0);
  fed.add_app(make_app_spec(0), trace);

  for (double t : {0.0, 50.0, 100.0, 500.0}) {
    double total = 0.0;
    for (std::size_t i = 0; i < 3; ++i) {
      total += fed.domain(i).world().app(util::AppId{0}).arrival_rate(util::Seconds{t});
    }
    EXPECT_NEAR(total, trace.rate_at(util::Seconds{t}), 1e-12) << "t=" << t;
  }
  // Capacity-proportional split: domain 2 (3 nodes) gets 3× domain 0's.
  const double r0 = fed.domain(0).world().app(util::AppId{0}).arrival_rate(0_s);
  const double r2 = fed.domain(2).world().app(util::AppId{0}).arrival_rate(0_s);
  EXPECT_NEAR(r2, 3.0 * r0, 1e-12);
}

TEST(FederationIntegration, ControllersRunOnStaggeredCycles) {
  const auto& r = three_domain_run();
  // Domain i's first control cycle fires at i × cycle / 3; the "active_jobs"
  // series is recorded once per cycle, so its first timestamps expose the
  // phase offsets.
  const double cycle = mid_scenario().controller.cycle_s;
  std::set<double> first_cycle_times;
  for (std::size_t i = 0; i < r.domains.size(); ++i) {
    const auto* per_cycle = r.domains[i].result.series.find("active_jobs");
    ASSERT_NE(per_cycle, nullptr);
    ASSERT_FALSE(per_cycle->empty());
    const double first = per_cycle->points().front().t;
    EXPECT_DOUBLE_EQ(first, static_cast<double>(i) * cycle / 3.0) << "domain " << i;
    first_cycle_times.insert(first);
    // And the cadence stays at the configured period.
    if (per_cycle->size() >= 2) {
      EXPECT_DOUBLE_EQ(per_cycle->points()[1].t - per_cycle->points()[0].t, cycle);
    }
  }
  EXPECT_EQ(first_cycle_times.size(), 3u) << "domains fired in lockstep";
}

TEST(FederationIntegration, AggregatedMetricsEqualSumOfDomains) {
  const auto& r = three_domain_run();
  // Summary counters are sums of the per-domain summaries.
  long jobs = 0;
  long cycles = 0;
  long starts = 0;
  long suspends = 0;
  std::size_t tx_samples = 0;
  for (const auto& d : r.domains) {
    jobs += d.result.summary.jobs_completed;
    cycles += d.result.summary.cycles;
    starts += d.result.summary.actions.starts;
    suspends += d.result.summary.actions.suspends;
    tx_samples += d.result.summary.tx_utility.count();
  }
  EXPECT_EQ(r.summary.jobs_completed, jobs);
  EXPECT_EQ(r.summary.cycles, cycles);
  EXPECT_EQ(r.summary.actions.starts, starts);
  EXPECT_EQ(r.summary.actions.suspends, suspends);
  EXPECT_EQ(r.summary.tx_utility.count(), tx_samples);

  // The fed_* sampled series equal the sum of the per-domain sampled
  // series at every shared sample instant.
  const auto* fed_tx = r.series.find("fed_tx_alloc_mhz");
  const auto* fed_lr = r.series.find("fed_lr_alloc_mhz");
  ASSERT_NE(fed_tx, nullptr);
  ASSERT_NE(fed_lr, nullptr);
  for (const auto& point : fed_tx->points()) {
    double expected = 0.0;
    for (const auto& d : r.domains) {
      const auto* s = d.result.series.find("tx_alloc_mhz");
      ASSERT_NE(s, nullptr);
      expected += s->value_at(point.t);
    }
    EXPECT_NEAR(point.v, expected, 1e-9) << "t=" << point.t;
  }
  for (const auto& point : fed_lr->points()) {
    double expected = 0.0;
    for (const auto& d : r.domains) {
      const auto* s = d.result.series.find("lr_alloc_mhz");
      ASSERT_NE(s, nullptr);
      expected += s->value_at(point.t);
    }
    EXPECT_NEAR(point.v, expected, 1e-9) << "t=" << point.t;
  }
}

// --- federation core ---------------------------------------------------------

TEST(Federation, RoutesJobsUniquelyAndRemembersOwnership) {
  sim::Engine engine;
  federation::Federation fed(engine, federation::make_router("capacity-weighted"));
  for (int i = 0; i < 3; ++i) {
    auto& d = fed.add_domain("d" + std::to_string(i), make_policy());
    d.world().cluster().add_nodes(2, cluster::Resources{12000_mhz, 4096_mb});
  }
  for (unsigned id = 0; id < 12; ++id) fed.submit_job(make_job(id));

  EXPECT_EQ(fed.total_submitted(), 12u);
  for (unsigned id = 0; id < 12; ++id) {
    ASSERT_TRUE(fed.job_routed(util::JobId{id}));
    const std::size_t owner = fed.job_domain(util::JobId{id});
    // The job exists in its owner domain and nowhere else.
    for (std::size_t d = 0; d < fed.domain_count(); ++d) {
      EXPECT_EQ(fed.domain(d).world().job_exists(util::JobId{id}), d == owner);
    }
  }
  // Equal capacity ⇒ the weighted round-robin spreads jobs evenly.
  const auto counts = fed.jobs_per_domain();
  for (long c : counts) EXPECT_EQ(c, 4);
  EXPECT_THROW(fed.submit_job(make_job(0)), std::invalid_argument);
}

TEST(Federation, BrownoutReroutesJobsAndResplitsDemand) {
  sim::Engine engine;
  federation::Federation fed(engine, federation::make_router("least-loaded"));
  for (int i = 0; i < 2; ++i) {
    auto& d = fed.add_domain("d" + std::to_string(i), make_policy());
    d.world().cluster().add_nodes(2, cluster::Resources{12000_mhz, 4096_mb});
  }
  fed.add_app(make_app_spec(0), workload::DemandTrace{10.0});
  EXPECT_DOUBLE_EQ(fed.domain(0).world().app(util::AppId{0}).arrival_rate(0_s), 5.0);

  fed.set_domain_weight(0, 0.0);  // drain domain 0
  EXPECT_DOUBLE_EQ(fed.domain(0).world().app(util::AppId{0}).arrival_rate(0_s), 0.0);
  EXPECT_DOUBLE_EQ(fed.domain(1).world().app(util::AppId{0}).arrival_rate(0_s), 10.0);
  for (unsigned id = 0; id < 4; ++id) fed.submit_job(make_job(id));
  EXPECT_EQ(fed.jobs_per_domain()[0], 0);
  EXPECT_EQ(fed.jobs_per_domain()[1], 4);

  fed.set_domain_weight(0, 1.0);  // recover: demand re-splits evenly
  EXPECT_DOUBLE_EQ(fed.domain(0).world().app(util::AppId{0}).arrival_rate(0_s), 5.0);
}

TEST(Federation, LifecycleMisuseThrows) {
  sim::Engine engine;
  federation::Federation fed(engine, federation::make_router("least-loaded"));
  EXPECT_THROW(fed.submit_job(make_job(0)), std::logic_error);
  EXPECT_THROW(fed.add_app(make_app_spec(0), workload::DemandTrace{1.0}), std::logic_error);
  auto& d = fed.add_domain("d0", make_policy());
  d.world().cluster().add_nodes(1, cluster::Resources{12000_mhz, 4096_mb});
  fed.add_app(make_app_spec(0), workload::DemandTrace{1.0});
  EXPECT_THROW(fed.add_domain("late", make_policy()), std::logic_error);
  EXPECT_THROW(fed.set_domain_weight(0, 1.5), std::invalid_argument);
  fed.start();
  EXPECT_THROW(fed.start(), std::logic_error);
}

// --- routers -----------------------------------------------------------------

namespace {

std::vector<federation::DomainStatus> make_status(const std::vector<double>& capacities,
                                                  const std::vector<double>& loads) {
  std::vector<federation::DomainStatus> out;
  for (std::size_t i = 0; i < capacities.size(); ++i) {
    federation::DomainStatus s;
    s.index = i;
    s.capacity = util::CpuMhz{capacities[i]};
    s.effective = util::CpuMhz{capacities[i]};
    s.offered_load = util::CpuMhz{loads[i]};
    out.push_back(s);
  }
  return out;
}

}  // namespace

TEST(Routers, LeastLoadedPicksLowestRelativeLoad) {
  federation::LeastLoadedRouter router;
  // Domain 1 has more absolute load but more headroom relative to size.
  const auto status = make_status({10000.0, 40000.0}, {8000.0, 16000.0});
  EXPECT_EQ(router.route_job(make_job(0), status), 1u);
  const auto shares = router.demand_shares(make_app_spec(0), status);
  EXPECT_NEAR(shares[0], 0.2, 1e-12);
  EXPECT_NEAR(shares[1], 0.8, 1e-12);
}

TEST(Routers, LeastLoadedSkipsDrainedDomains) {
  federation::LeastLoadedRouter router;
  auto status = make_status({10000.0, 10000.0}, {0.0, 5000.0});
  status[0].effective = util::CpuMhz{0.0};  // drained
  EXPECT_EQ(router.route_job(make_job(0), status), 1u);
}

TEST(Routers, CapacityWeightedConvergesToWeights) {
  federation::CapacityWeightedRouter router;
  const auto status = make_status({30000.0, 10000.0}, {0.0, 0.0});
  std::vector<int> counts(2, 0);
  for (unsigned i = 0; i < 400; ++i) ++counts[router.route_job(make_job(i), status)];
  EXPECT_EQ(counts[0], 300);  // exactly 3:1 over any aligned window
  EXPECT_EQ(counts[1], 100);
}

TEST(Routers, CapacityWeightedForfeitsStaleCreditOnDrain) {
  // Regression: accumulated round-robin entitlement must not route jobs
  // to a domain after it is drained.
  federation::CapacityWeightedRouter router;
  auto status = make_status({10000.0, 10000.0, 10000.0}, {0.0, 0.0, 0.0});
  for (unsigned i = 0; i < 2; ++i) (void)router.route_job(make_job(i), status);
  status[2].effective = util::CpuMhz{0.0};  // drain the credit-rich domain
  for (unsigned i = 2; i < 20; ++i) {
    EXPECT_NE(router.route_job(make_job(i), status), 2u) << "job " << i;
  }
  status[2].effective = util::CpuMhz{10000.0};  // recovery: back in rotation
  std::set<std::size_t> seen;
  for (unsigned i = 20; i < 26; ++i) seen.insert(router.route_job(make_job(i), status));
  EXPECT_TRUE(seen.count(2));
}

TEST(FederationIntegration, ExplicitZeroPhaseOffsetIsHonored) {
  // first_cycle_at_s = 0 is an explicit phase request, not "unset": the
  // domain must fire at t=0 in phase with domain 0 instead of being
  // auto-staggered.
  scenario::FederatedScenario fs = scenario::federate(mid_scenario(), 3);
  fs.domains[1].first_cycle_at_s = 0.0;
  scenario::ExperimentOptions opt;
  opt.horizon_override_s = 5000.0;
  const auto r = scenario::run_federated_experiment(fs, opt);
  const double cycle = mid_scenario().controller.cycle_s;
  const std::vector<double> expected_first{0.0, 0.0, 2.0 * cycle / 3.0};
  for (std::size_t i = 0; i < 3; ++i) {
    const auto* per_cycle = r.domains[i].result.series.find("active_jobs");
    ASSERT_NE(per_cycle, nullptr);
    ASSERT_FALSE(per_cycle->empty());
    EXPECT_DOUBLE_EQ(per_cycle->points().front().t, expected_first[i]) << "domain " << i;
  }
}

TEST(Routers, StickyIsStableAndRespectsDrains) {
  federation::StickyRouter router;
  const auto status = make_status({10000.0, 10000.0, 10000.0}, {0.0, 0.0, 0.0});
  for (unsigned id = 0; id < 32; ++id) {
    const auto a = router.route_job(make_job(id), status);
    const auto b = router.route_job(make_job(id), status);
    EXPECT_EQ(a, b) << "routing not stable for job " << id;
  }
  // All of an app's demand lands on one home domain.
  const auto shares = router.demand_shares(make_app_spec(4), status);
  EXPECT_DOUBLE_EQ(shares[0] + shares[1] + shares[2], 1.0);
  EXPECT_DOUBLE_EQ(*std::max_element(shares.begin(), shares.end()), 1.0);
  // Draining the home domain moves the demand, deterministically.
  auto drained = status;
  drained[1].effective = util::CpuMhz{0.0};
  const auto shares2 = router.demand_shares(make_app_spec(1), drained);
  EXPECT_DOUBLE_EQ(shares2[1], 0.0);
  EXPECT_DOUBLE_EQ(shares2[2], 1.0);  // linear probe to the next healthy
}

TEST(Routers, FactoryRejectsUnknownNames) {
  EXPECT_THROW(federation::make_router("round-robin-2000"), std::invalid_argument);
  EXPECT_EQ(federation::make_router("sticky")->name(), "sticky");
}

// --- drain + re-route regression ---------------------------------------------

// Regression for the sticky-affinity drain interplay: once a drained
// (weight-0) domain's jobs are migrated away, it must receive no further
// sticky hits — not from new arrivals (the router probes past it), not
// from the migration manager (evacuees must never bounce back) — until
// it recovers, after which sticky homes flow there again.
TEST(FederationIntegration, DrainedStickyDomainHostsNothingUntilRecovery) {
  auto base = scenario::section3_scaled(0.2);
  base.seed = 42;
  scenario::FederatedScenario fs = scenario::federate(base, 3, "sticky");
  fs.weight_events.push_back({1, 12000.0, 0.0});
  fs.weight_events.push_back({1, 30000.0, 1.0});
  fs.migration.enabled = true;
  fs.migration.policy = "drain";
  fs.migration.check_interval_s = 120.0;

  scenario::ExperimentOptions opt;
  opt.validate_invariants = true;
  opt.max_sim_time_s = 2.0e6;
  const auto r = scenario::run_federated_experiment(fs, opt);

  EXPECT_EQ(r.summary.jobs_completed, 160);
  EXPECT_EQ(r.summary.invariant_violations, 0);
  EXPECT_GT(r.migration.started, 0);
  EXPECT_EQ(r.migration.started, r.migration.completed);

  // Inside the drain window (allowing the evacuation a couple of
  // manager ticks), the drained domain hosts nothing at all.
  const auto* running = r.domains[1].result.series.find("jobs_running");
  const auto* active = r.domains[1].result.series.find("active_jobs");
  ASSERT_NE(running, nullptr);
  ASSERT_NE(active, nullptr);
  for (const auto& p : running->points()) {
    if (p.t >= 14400.0 && p.t < 30000.0) {
      EXPECT_EQ(p.v, 0.0) << "sticky hit on a drained domain at t=" << p.t;
    }
  }
  for (const auto& p : active->points()) {
    if (p.t >= 14400.0 && p.t < 30000.0) {
      EXPECT_EQ(p.v, 0.0) << "job stuck in a drained domain at t=" << p.t;
    }
  }

  // After recovery the domain's sticky homes route there again.
  bool hosted_after_recovery = false;
  for (const auto& p : running->points()) {
    if (p.t > 30600.0 && p.v > 0.0) hosted_after_recovery = true;
  }
  EXPECT_TRUE(hosted_after_recovery) << "recovered domain never received work again";
}
