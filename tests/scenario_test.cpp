// Tests for scenario builders, the experiment runner, and reporting.

#include "scenario/experiment.hpp"
#include "scenario/report.hpp"
#include "scenario/scenario.hpp"

#include <gtest/gtest.h>

#include <sstream>

using namespace heteroplace;

TEST(ScenarioBuilders, Section3MatchesThePaper) {
  const auto s = scenario::section3_scenario();
  EXPECT_EQ(s.cluster.nodes, 25);
  EXPECT_DOUBLE_EQ(s.cluster.cpu_per_node_mhz, 12000.0);  // 4 × 3 GHz
  EXPECT_EQ(s.jobs.count, 800);
  EXPECT_DOUBLE_EQ(s.jobs.mean_interarrival_s, 260.0);
  EXPECT_DOUBLE_EQ(s.controller.cycle_s, 600.0);
  // Memory: exactly 3 job VMs fit per node (the paper's constraint).
  const int slots = static_cast<int>(s.cluster.mem_per_node_mb / s.jobs.tmpl.memory.get());
  EXPECT_EQ(slots, 3);
  // One constant transactional workload.
  ASSERT_EQ(s.apps.size(), 1u);
  EXPECT_DOUBLE_EQ(s.apps[0].trace.rate_at(util::Seconds{0.0}),
                   s.apps[0].trace.rate_at(util::Seconds{1e5}));
  // Each job's max speed is one processor.
  EXPECT_DOUBLE_EQ(s.jobs.tmpl.max_speed.get(), 3000.0);
}

TEST(ScenarioBuilders, ScaledKeepsStructure) {
  const auto s = scenario::section3_scaled(0.2);
  EXPECT_EQ(s.cluster.nodes, 5);
  EXPECT_EQ(s.jobs.count, 160);
  EXPECT_DOUBLE_EQ(s.cluster.cpu_per_node_mhz, 12000.0);
  const auto full = scenario::section3_scaled(1.0);
  EXPECT_EQ(full.cluster.nodes, 25);
}

TEST(ScenarioBuilders, ServiceDifferentiationHasTwoClasses) {
  const auto s = scenario::service_differentiation_scenario();
  ASSERT_EQ(s.apps.size(), 2u);
  EXPECT_GT(s.apps[0].spec.importance, s.apps[1].spec.importance);
  EXPECT_LT(s.apps[0].spec.rt_goal.get(), s.apps[1].spec.rt_goal.get());
}

TEST(PolicyNames, RoundTrip) {
  using scenario::PolicyKind;
  for (auto p : {PolicyKind::kUtilityDriven, PolicyKind::kStaticPartition,
                 PolicyKind::kProportionalEqual, PolicyKind::kProportionalDemand}) {
    EXPECT_EQ(scenario::policy_from_string(scenario::to_string(p)), p);
  }
  EXPECT_THROW((void)scenario::policy_from_string("bogus"), std::invalid_argument);
}

namespace {
scenario::Scenario tiny_scenario() {
  auto s = scenario::section3_scaled(0.12);  // 3 nodes
  s.name = "tiny";
  s.jobs.count = 12;
  s.seed = 11;
  return s;
}
}  // namespace

TEST(Experiment, TinyRunCompletesAllJobsWithCleanInvariants) {
  scenario::ExperimentOptions opt;
  opt.validate_invariants = true;
  const auto r = scenario::run_experiment(tiny_scenario(), opt);
  EXPECT_EQ(r.summary.jobs_submitted, 12);
  EXPECT_EQ(r.summary.jobs_completed, 12);
  EXPECT_EQ(r.summary.invariant_violations, 0);
  EXPECT_GT(r.summary.cycles, 0);
  EXPECT_GT(r.summary.sim_end_time_s, 0.0);
}

TEST(Experiment, SeriesContainTheFigureSignals) {
  const auto r = scenario::run_experiment(tiny_scenario());
  for (const char* name :
       {"tx_utility", "lr_hyp_utility", "u_star", "tx_alloc_mhz", "tx_demand_mhz",
        "lr_alloc_mhz", "lr_demand_mhz", "jobs_running", "jobs_pending"}) {
    const auto* s = r.series.find(name);
    ASSERT_NE(s, nullptr) << name;
    EXPECT_FALSE(s->empty()) << name;
  }
}

TEST(Experiment, HorizonOverrideStopsEarly) {
  scenario::ExperimentOptions opt;
  opt.horizon_override_s = 1800.0;
  const auto r = scenario::run_experiment(tiny_scenario(), opt);
  EXPECT_DOUBLE_EQ(r.summary.sim_end_time_s, 1800.0);
  EXPECT_LT(r.summary.jobs_completed, 12);
}

TEST(Experiment, DeterministicForSameSeed) {
  const auto a = scenario::run_experiment(tiny_scenario());
  const auto b = scenario::run_experiment(tiny_scenario());
  EXPECT_DOUBLE_EQ(a.summary.sim_end_time_s, b.summary.sim_end_time_s);
  EXPECT_DOUBLE_EQ(a.summary.job_utility.mean(), b.summary.job_utility.mean());
  EXPECT_EQ(a.summary.actions.suspends, b.summary.actions.suspends);
}

TEST(Experiment, DifferentSeedsDiffer) {
  auto s1 = tiny_scenario();
  auto s2 = tiny_scenario();
  s2.seed = 99;
  const auto a = scenario::run_experiment(s1);
  const auto b = scenario::run_experiment(s2);
  // Continuous outcome metrics differ (end time is quantized by the
  // run-to-completion chunking, so compare utilities instead).
  EXPECT_NE(a.summary.job_utility.mean(), b.summary.job_utility.mean());
}

TEST(Experiment, BaselinePoliciesRunToCompletion) {
  for (auto p : {scenario::PolicyKind::kStaticPartition,
                 scenario::PolicyKind::kProportionalEqual,
                 scenario::PolicyKind::kProportionalDemand}) {
    scenario::ExperimentOptions opt;
    opt.policy = p;
    opt.validate_invariants = true;
    const auto r = scenario::run_experiment(tiny_scenario(), opt);
    EXPECT_EQ(r.summary.invariant_violations, 0) << scenario::to_string(p);
    EXPECT_EQ(r.summary.jobs_completed, 12) << scenario::to_string(p);
  }
}

TEST(Report, SummaryCsvRowMatchesHeaderArity) {
  const auto r = scenario::run_experiment(tiny_scenario());
  const std::string header = scenario::summary_csv_header();
  const std::string row = scenario::summary_csv_row(r.summary);
  const auto count_commas = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  EXPECT_EQ(count_commas(header), count_commas(row));
}

TEST(Report, PrintSummaryMentionsKeyFields) {
  const auto r = scenario::run_experiment(tiny_scenario());
  std::ostringstream os;
  scenario::print_summary(os, r.summary);
  const std::string text = os.str();
  EXPECT_NE(text.find("jobs:"), std::string::npos);
  EXPECT_NE(text.find("equalization gap"), std::string::npos);
  EXPECT_NE(text.find("utility-driven"), std::string::npos);
}

TEST(Report, SeriesCsvThinning) {
  const auto r = scenario::run_experiment(tiny_scenario());
  std::ostringstream full;
  std::ostringstream thin;
  scenario::print_series_csv(full, r.series, {"tx_utility"}, 1);
  scenario::print_series_csv(thin, r.series, {"tx_utility"}, 4);
  const auto lines = [](const std::string& s) {
    return std::count(s.begin(), s.end(), '\n');
  };
  EXPECT_GT(lines(full.str()), lines(thin.str()));
}
