// Tests for the utility-function family: monotonicity, continuity,
// inversion — the properties the equalizer depends on.

#include "utility/utility_fn.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

using namespace heteroplace;
using utility::ExponentialUtility;
using utility::LinearUtility;
using utility::PiecewiseLinearUtility;
using utility::SigmoidUtility;
using utility::UtilityFunction;

// --- PiecewiseLinearUtility ------------------------------------------------------

TEST(Piecewise, DefaultJobShapeValues) {
  const auto fn = utility::default_job_utility();
  EXPECT_DOUBLE_EQ(fn->value(0.0), 1.0);   // saturated at best
  EXPECT_DOUBLE_EQ(fn->value(0.5), 1.0);   // plateau edge
  EXPECT_DOUBLE_EQ(fn->value(0.75), 0.7);  // midpoint of first slope
  EXPECT_DOUBLE_EQ(fn->value(1.0), 0.4);   // exactly on goal
  EXPECT_DOUBLE_EQ(fn->value(1.5), 0.0);   // 1.5× goal
  EXPECT_DOUBLE_EQ(fn->value(2.0), -0.4);  // extrapolated with last slope
  EXPECT_DOUBLE_EQ(fn->max_utility(), 1.0);
}

TEST(Piecewise, RejectsNonMonotonePoints) {
  using P = PiecewiseLinearUtility::Point;
  EXPECT_THROW(PiecewiseLinearUtility({P{1.0, 0.5}, P{0.5, 0.4}}), std::invalid_argument);
  EXPECT_THROW(PiecewiseLinearUtility({P{0.5, 0.4}, P{1.0, 0.6}}), std::invalid_argument);
  EXPECT_THROW(PiecewiseLinearUtility({}), std::invalid_argument);
}

TEST(Piecewise, SinglePointIsFlat) {
  const PiecewiseLinearUtility fn({{1.0, 0.7}});
  EXPECT_DOUBLE_EQ(fn.value(0.0), 0.7);
  EXPECT_DOUBLE_EQ(fn.value(100.0), 0.7);
}

TEST(Piecewise, AnalyticInverseMatchesDefinition) {
  const auto fn = utility::default_job_utility();
  // inverse(u) = sup{x : value(x) >= u}
  EXPECT_DOUBLE_EQ(fn->inverse(0.4), 1.0);
  EXPECT_DOUBLE_EQ(fn->inverse(1.0), 0.5);  // plateau: largest x at u=1
  EXPECT_DOUBLE_EQ(fn->inverse(0.0), 1.5);
  EXPECT_DOUBLE_EQ(fn->inverse(-0.4), 2.0);  // extrapolated tail
  EXPECT_DOUBLE_EQ(fn->inverse(2.0), 0.0);   // unreachable: clamps to x_lo
}

TEST(Piecewise, InverseRespectsBounds) {
  const auto fn = utility::default_job_utility();
  EXPECT_DOUBLE_EQ(fn->inverse(0.4, 0.0, 0.8), 0.8);  // clamped to hi
  EXPECT_DOUBLE_EQ(fn->inverse(1.0, 0.6, 10.0), 0.6); // clamped to lo
}

// --- LinearUtility ------------------------------------------------------------------

TEST(Linear, ValueAndInverse) {
  const LinearUtility fn(1.0, 0.5);
  EXPECT_DOUBLE_EQ(fn.value(0.0), 1.0);
  EXPECT_DOUBLE_EQ(fn.value(2.0), 0.0);
  EXPECT_DOUBLE_EQ(fn.inverse(0.5), 1.0);
  EXPECT_THROW(LinearUtility(1.0, -1.0), std::invalid_argument);
}

TEST(Linear, ZeroSlopeIsFlat) {
  const LinearUtility fn(0.8, 0.0);
  EXPECT_DOUBLE_EQ(fn.value(100.0), 0.8);
  EXPECT_DOUBLE_EQ(fn.inverse(0.5, 0.0, 50.0), 50.0);  // any x works: sup = hi
  EXPECT_DOUBLE_EQ(fn.inverse(0.9, 0.0, 50.0), 0.0);   // unreachable
}

// --- SigmoidUtility ------------------------------------------------------------------

TEST(Sigmoid, ShapeAndLimits) {
  const SigmoidUtility fn(0.0, 1.0, 1.0, 4.0);
  EXPECT_NEAR(fn.value(1.0), 0.5, 1e-12);   // midpoint
  EXPECT_GT(fn.value(0.0), 0.95);           // near hi
  EXPECT_LT(fn.value(3.0), 0.05);           // near lo
  EXPECT_THROW(SigmoidUtility(1.0, 0.5, 1.0, 4.0), std::invalid_argument);
  EXPECT_THROW(SigmoidUtility(0.0, 1.0, 1.0, 0.0), std::invalid_argument);
}

TEST(Sigmoid, InverseRoundTrips) {
  const SigmoidUtility fn(-0.5, 1.0, 1.0, 4.0);
  for (double u : {0.9, 0.5, 0.1, -0.2}) {
    const double x = fn.inverse(u, 0.0, 100.0);
    EXPECT_NEAR(fn.value(x), u, 1e-9) << "u=" << u;
  }
}

// --- ExponentialUtility ----------------------------------------------------------------

TEST(Exponential, ValueAndInverse) {
  const ExponentialUtility fn(1.0, 1.0);
  EXPECT_DOUBLE_EQ(fn.value(0.0), 1.0);
  EXPECT_NEAR(fn.value(1.0), std::exp(-1.0), 1e-12);
  EXPECT_NEAR(fn.inverse(0.5), std::log(2.0), 1e-12);
  EXPECT_THROW(ExponentialUtility(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ExponentialUtility(1.0, -1.0), std::invalid_argument);
}

// --- factory ------------------------------------------------------------------------------

TEST(Factory, KnownNames) {
  EXPECT_NE(utility::make_utility("piecewise"), nullptr);
  EXPECT_NE(utility::make_utility("linear"), nullptr);
  EXPECT_NE(utility::make_utility("sigmoid"), nullptr);
  EXPECT_NE(utility::make_utility("exponential"), nullptr);
  EXPECT_THROW(utility::make_utility("bogus"), std::invalid_argument);
}

// --- properties shared by every shape ---------------------------------------------------

class ShapeProperties : public ::testing::TestWithParam<const char*> {
 protected:
  std::shared_ptr<const UtilityFunction> fn() const { return utility::make_utility(GetParam()); }
};

TEST_P(ShapeProperties, MonotoneNonIncreasing) {
  const auto f = fn();
  double last = f->value(0.0);
  for (double x = 0.0; x <= 5.0; x += 0.01) {
    const double u = f->value(x);
    ASSERT_LE(u, last + 1e-12) << GetParam() << " not monotone at x=" << x;
    last = u;
  }
}

TEST_P(ShapeProperties, ContinuousOnDenseGrid) {
  const auto f = fn();
  // No jump bigger than what the steepest slope could produce over dx.
  const double dx = 1e-4;
  for (double x = 0.0; x <= 5.0; x += 0.05) {
    const double jump = std::fabs(f->value(x + dx) - f->value(x));
    ASSERT_LT(jump, 0.05) << GetParam() << " discontinuous near x=" << x;
  }
}

TEST_P(ShapeProperties, InverseIsGeneralizedInverse) {
  const auto f = fn();
  const double u_hi = f->max_utility();
  for (double frac : {0.9, 0.6, 0.3, 0.05}) {
    const double u = u_hi * frac;
    const double x = f->inverse(u, 0.0, 1e6);
    // value(x) >= u (within tolerance), value(x + ε) < u + small
    ASSERT_GE(f->value(x), u - 1e-6) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(AllShapes, ShapeProperties,
                         ::testing::Values("piecewise", "linear", "sigmoid", "exponential"));
