// Tests for the transactional utility model — the transactional side of
// the paper's common currency.

#include "utility/tx_utility.hpp"

#include <gtest/gtest.h>

#include <cmath>

using namespace heteroplace;
using util::CpuMhz;
using utility::TxUtilityModel;
using workload::TxAppSpec;

namespace {
TxAppSpec web_spec() {
  TxAppSpec s;
  s.id = util::AppId{0};
  s.name = "web";
  s.rt_goal = util::Seconds{1.2};
  s.service_demand = 5000.0;
  s.max_utilization = 0.9;
  s.throughput_exponent = 0.5;
  s.utility_cap = 0.9;
  return s;
}
}  // namespace

TEST(TxUtility, CapReachedWithAmpleCapacity) {
  TxUtilityModel m;
  const auto s = web_spec();
  const auto demand = m.demand_for_max_utility(s, 24.0);
  EXPECT_NEAR(m.utility(s, 24.0, demand), 0.9, 1e-6);
  // More capacity does not increase utility beyond the cap.
  EXPECT_NEAR(m.utility(s, 24.0, demand * 2.0), 0.9, 1e-9);
}

TEST(TxUtility, DemandForMaxUtilityClosedForm) {
  TxUtilityModel m;
  const auto s = web_spec();
  // ω = λ·d + d / (T(1-cap)) = 120000 + 5000/0.12
  EXPECT_NEAR(m.demand_for_max_utility(s, 24.0).get(), 120000.0 + 5000.0 / 0.12, 1e-6);
  EXPECT_DOUBLE_EQ(m.demand_for_max_utility(s, 0.0).get(), 0.0);
}

TEST(TxUtility, MonotoneNondecreasingInAllocation) {
  TxUtilityModel m;
  const auto s = web_spec();
  double last = -1e9;
  for (double w = 0.0; w <= 250000.0; w += 2500.0) {
    const double u = m.utility(s, 24.0, CpuMhz{w});
    ASSERT_GE(u, last - 1e-9) << "ω=" << w;
    last = u;
  }
}

TEST(TxUtility, StarvationIsStronglyNegative) {
  TxUtilityModel m;
  const auto s = web_spec();
  EXPECT_LT(m.utility(s, 24.0, CpuMhz{0.0}), -100.0);
}

TEST(TxUtility, ZeroLoadIsFullySatisfied) {
  TxUtilityModel m;
  const auto s = web_spec();
  EXPECT_DOUBLE_EQ(m.utility(s, 0.0, CpuMhz{0.0}), 0.9);
  EXPECT_DOUBLE_EQ(m.alloc_for_utility(s, 0.0, 0.9).get(), 0.0);
}

TEST(TxUtility, SaturatedRegimePenalizesShedding) {
  TxUtilityModel m;
  const auto s = web_spec();
  // ω=100000: μ=20, admit 18 of 24 ⇒ τ=0.75, RT=0.5.
  // u_raw = (1.2-0.5)/1.2 = 0.5833…, u = u_raw·τ^0.5.
  const double u = m.utility(s, 24.0, CpuMhz{100000.0});
  EXPECT_NEAR(u, (0.7 / 1.2) * std::sqrt(0.75), 1e-9);
}

TEST(TxUtility, ImportanceIsAnEqualizationWeight) {
  // Equalized quantity = raw/importance: a doubly-important app reports
  // half the weighted utility at the same raw performance, so at a common
  // equalized level it sustains twice the raw utility.
  TxUtilityModel m;
  auto s = web_spec();
  s.importance = 2.0;
  EXPECT_DOUBLE_EQ(m.max_utility(s), 0.45);
  const auto demand = m.demand_for_max_utility(s, 24.0);
  EXPECT_NEAR(m.utility(s, 24.0, demand), 0.45, 1e-6);
  // At a fixed weighted level u, the important app needs the allocation
  // that delivers raw utility 2u — more than the unit-importance app.
  const auto plain = web_spec();
  EXPECT_GT(m.alloc_for_utility(s, 24.0, 0.3).get(),
            m.alloc_for_utility(plain, 24.0, 0.3).get());
}

TEST(TxUtility, AllocForUtilityRoundTrips) {
  TxUtilityModel m;
  const auto s = web_spec();
  for (double u : {0.8, 0.5, 0.2, 0.0, -0.5}) {
    const auto w = m.alloc_for_utility(s, 24.0, u);
    EXPECT_NEAR(m.utility(s, 24.0, w), u, 1e-3) << "u=" << u;
  }
}

TEST(TxUtility, AllocForUtilityAboveCapReturnsDemand) {
  TxUtilityModel m;
  const auto s = web_spec();
  const auto demand = m.demand_for_max_utility(s, 24.0);
  EXPECT_DOUBLE_EQ(m.alloc_for_utility(s, 24.0, 5.0).get(), demand.get());
}

TEST(TxUtility, AllocMonotoneInTargetUtility) {
  TxUtilityModel m;
  const auto s = web_spec();
  double last = -1.0;
  for (double u = -1.0; u <= 0.9; u += 0.05) {
    const auto w = m.alloc_for_utility(s, 24.0, u);
    ASSERT_GE(w.get(), last - 1e-6);
    last = w.get();
  }
}

// Property: round-trip holds across load levels.
class TxRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(TxRoundTrip, InverseForwardConsistency) {
  TxUtilityModel m;
  const auto s = web_spec();
  const double lambda = GetParam();
  for (double u : {0.85, 0.6, 0.3, 0.05}) {
    const auto w = m.alloc_for_utility(s, lambda, u);
    EXPECT_NEAR(m.utility(s, lambda, w), u, 5e-3) << "λ=" << lambda << " u=" << u;
  }
}

INSTANTIATE_TEST_SUITE_P(Loads, TxRoundTrip, ::testing::Values(4.0, 12.0, 24.0, 48.0, 96.0));

TEST(TxUtility, TighterGoalNeedsMoreCapacity) {
  TxUtilityModel m;
  auto tight = web_spec();
  tight.rt_goal = util::Seconds{0.6};
  const auto loose = web_spec();
  const double u = 0.5;
  EXPECT_GT(m.alloc_for_utility(tight, 24.0, u).get(),
            m.alloc_for_utility(loose, 24.0, u).get());
}
