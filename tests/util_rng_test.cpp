// Tests for util/rng: determinism and distribution sanity.

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace hu = heteroplace::util;

TEST(Rng, SameSeedSameStream) {
  hu::Rng a(123);
  hu::Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  hu::Rng a(1);
  hu::Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsTheStream) {
  hu::Rng a(77);
  const auto x0 = a();
  const auto x1 = a();
  a.reseed(77);
  EXPECT_EQ(a(), x0);
  EXPECT_EQ(a(), x1);
}

TEST(Rng, Uniform01StaysInRange) {
  hu::Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeWithoutBias) {
  hu::Rng rng(9);
  int counts[6] = {0};
  for (int i = 0; i < 60000; ++i) {
    const auto v = rng.uniform_int(10, 15);
    ASSERT_GE(v, 10u);
    ASSERT_LE(v, 15u);
    ++counts[v - 10];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 10000, 600);  // ~6 sigma
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  hu::Rng a(42);
  hu::Rng child = a.split();
  // Child stream differs from the parent's continuation.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == child()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ChanceIsCalibrated) {
  hu::Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

// Distribution moments, swept over seeds so one unlucky stream cannot
// mask a bias bug.
class RngMoments : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngMoments, ExponentialMeanMatches) {
  hu::Rng rng(GetParam());
  const double mean = 260.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential_mean(mean);
  EXPECT_NEAR(sum / n, mean, mean * 0.02);
}

TEST_P(RngMoments, NormalMeanAndStddevMatch) {
  hu::Rng rng(GetParam());
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST_P(RngMoments, LognormalMedianMatches) {
  hu::Rng rng(GetParam());
  // Median of lognormal(mu, sigma) is exp(mu).
  const double mu = 1.0;
  int below = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.lognormal(mu, 0.8) < std::exp(mu)) ++below;
  }
  EXPECT_NEAR(below / static_cast<double>(n), 0.5, 0.01);
}

TEST_P(RngMoments, BoundedParetoStaysInBounds) {
  hu::Rng rng(GetParam());
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.bounded_pareto(1.5, 1.0, 100.0);
    ASSERT_GE(x, 1.0 - 1e-9);
    ASSERT_LE(x, 100.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngMoments, ::testing::Values(1u, 42u, 1234u, 987654321u));
