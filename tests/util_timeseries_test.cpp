// Tests for util/time_series.

#include "util/time_series.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace hu = heteroplace::util;

TEST(TimeSeries, ValueAtUsesZeroOrderHold) {
  hu::TimeSeries s("x");
  s.add(10.0, 1.0);
  s.add(20.0, 2.0);
  EXPECT_DOUBLE_EQ(s.value_at(5.0), 0.0);   // before first sample
  EXPECT_DOUBLE_EQ(s.value_at(10.0), 1.0);  // exactly at sample
  EXPECT_DOUBLE_EQ(s.value_at(15.0), 1.0);  // held
  EXPECT_DOUBLE_EQ(s.value_at(20.0), 2.0);
  EXPECT_DOUBLE_EQ(s.value_at(99.0), 2.0);  // held after last
}

TEST(TimeSeries, MeanOverWindow) {
  hu::TimeSeries s("x");
  for (int i = 0; i < 10; ++i) s.add(i * 10.0, static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.mean_over(20.0, 40.0), 3.0);  // samples 2,3,4
  EXPECT_DOUBLE_EQ(s.mean_over(1000.0, 2000.0), 0.0);
}

TEST(TimeSeries, SummaryStats) {
  hu::TimeSeries s("x");
  s.add(0.0, 1.0);
  s.add(1.0, 3.0);
  const auto stats = s.summary();
  EXPECT_EQ(stats.count(), 2u);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.0);
}

TEST(TimeSeriesSet, SeriesAreCreatedOnDemandAndKeepOrder) {
  hu::TimeSeriesSet set;
  set.add("b", 0.0, 1.0);
  set.add("a", 0.0, 2.0);
  set.add("b", 1.0, 3.0);
  const auto names = set.names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "b");  // insertion order, not alphabetical
  EXPECT_EQ(names[1], "a");
  EXPECT_EQ(set.series("b").size(), 2u);
}

TEST(TimeSeriesSet, FindReturnsNullForUnknown) {
  hu::TimeSeriesSet set;
  EXPECT_EQ(set.find("nope"), nullptr);
  set.add("x", 0.0, 0.0);
  EXPECT_NE(set.find("x"), nullptr);
}

TEST(TimeSeriesSet, CsvUnionOfTimesWithHold) {
  hu::TimeSeriesSet set;
  set.add("a", 0.0, 1.0);
  set.add("a", 10.0, 2.0);
  set.add("b", 5.0, 7.0);
  const std::string csv = set.to_csv();
  std::istringstream in(csv);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "t,a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "0,1,0");  // b not yet sampled -> 0
  std::getline(in, line);
  EXPECT_EQ(line, "5,1,7");  // a held at 1
  std::getline(in, line);
  EXPECT_EQ(line, "10,2,7");  // b held at 7
}

TEST(TimeSeriesSet, SaveCsvWritesFile) {
  hu::TimeSeriesSet set;
  set.add("v", 1.0, 42.0);
  const std::string path = ::testing::TempDir() + "/ts_test.csv";
  ASSERT_TRUE(set.save_csv(path));
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "t,v");
}

TEST(TimeSeriesSet, SaveCsvFailsOnBadPath) {
  hu::TimeSeriesSet set;
  set.add("v", 1.0, 42.0);
  EXPECT_FALSE(set.save_csv("/nonexistent-dir-xyz/out.csv"));
}
