// Power & energy subsystem tests: the power model / P-state ladder, node
// sleep states vs. placement, exact energy metering (closed-form
// park/wake arithmetic), the PowerManager state machine (park after idle
// timeout, wake on demand with wake latency, cap-driven throttling),
// determinism pins (identical seeds → identical energy_* series), and
// the bit-identity pin that power-disabled and power-enabled-but-idle
// runs reproduce the pre-power runner output exactly.

#include "power/manager.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/utility_policy.hpp"
#include "power/energy_meter.hpp"
#include "power/policy.hpp"
#include "power/power_model.hpp"
#include "scenario/config_loader.hpp"
#include "scenario/experiment.hpp"
#include "scenario/federation_experiment.hpp"
#include "scenario/power_factory.hpp"
#include "util/config.hpp"

using namespace heteroplace;
using namespace heteroplace::util::literals;
using cluster::PowerState;

namespace {

workload::JobSpec make_job(unsigned id, double submit = 0.0) {
  workload::JobSpec s;
  s.id = util::JobId{id};
  s.work = util::MhzSeconds{3.0e6};
  s.max_speed = 3000_mhz;
  s.memory = 1300_mb;
  s.submit_time = util::Seconds{submit};
  s.completion_goal = util::Seconds{8000.0};
  return s;
}

/// Two-day diurnal scenario on 10 nodes with power metering enabled
/// (consolidation policy chosen by the caller).
scenario::Scenario diurnal_scenario(const std::string& power_policy) {
  scenario::Scenario s = scenario::section3_scaled(0.4);
  s.name = "power-test";
  s.seed = 11;
  workload::DemandTrace diurnal;
  for (int day = 0; day < 2; ++day) {
    const double t0 = day * 86400.0;
    diurnal.add(util::Seconds{t0}, 1.5);
    diurnal.add(util::Seconds{t0 + 28800.0}, 14.0);
    diurnal.add(util::Seconds{t0 + 64800.0}, 1.5);
  }
  s.apps[0].trace = diurnal;
  s.jobs.count = 30;
  s.jobs.mean_interarrival_s = 700.0;
  s.jobs.tmpl.work = util::MhzSeconds{6.0e6};
  s.horizon_s = 2.0 * 86400.0;
  s.power.enabled = true;
  s.power.policy = power_policy;
  s.power.idle_timeout_s = 1800.0;
  s.power.wake_latency_s = 120.0;
  s.power.park_latency_s = 30.0;
  s.power.min_active_nodes = 2;
  return s;
}

void expect_same_series(const util::TimeSeriesSet& a, const util::TimeSeriesSet& b,
                        const std::string& name) {
  const auto* sa = a.find(name);
  const auto* sb = b.find(name);
  ASSERT_NE(sa, nullptr) << name;
  ASSERT_NE(sb, nullptr) << name;
  ASSERT_EQ(sa->size(), sb->size()) << name;
  for (std::size_t i = 0; i < sa->size(); ++i) {
    EXPECT_DOUBLE_EQ(sa->points()[i].t, sb->points()[i].t) << name << " point " << i;
    EXPECT_DOUBLE_EQ(sa->points()[i].v, sb->points()[i].v) << name << " point " << i;
  }
}

}  // namespace

// --- power model -------------------------------------------------------------

TEST(PowerModel, DefaultLadderValidatesAndScales) {
  power::PowerModel m;
  EXPECT_NO_THROW(m.validate());
  EXPECT_DOUBLE_EQ(m.speed_at(0), 1.0);
  EXPECT_DOUBLE_EQ(m.active_w(0), 220.0);
  EXPECT_EQ(m.deepest_pstate(), 3);
  // Clamped outside the ladder.
  EXPECT_DOUBLE_EQ(m.active_w(99), m.pstates.back().watts);
  EXPECT_DOUBLE_EQ(m.speed_at(-1), 1.0);

  const power::PowerModel scaled = power::PowerModel::ladder(100.0, 2);
  EXPECT_EQ(scaled.pstates.size(), 2u);
  EXPECT_DOUBLE_EQ(scaled.active_w(0), 100.0);
  EXPECT_DOUBLE_EQ(scaled.speed_at(1), 0.85);
  EXPECT_NO_THROW(scaled.validate());
}

TEST(PowerModel, RejectsDegenerateTables) {
  power::PowerModel m;
  m.pstates.clear();
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m = power::PowerModel{};
  m.pstates[0].speed_factor = 0.9;  // P0 must be full speed
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m = power::PowerModel{};
  m.pstates[2].speed_factor = 0.9;  // non-monotone
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m = power::PowerModel{};
  m.pstates[1].watts = 0.0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m = power::PowerModel{};
  m.standby_w = -1.0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m = power::PowerModel{};
  m.off_w = 20.0;  // off drawing more than standby
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m = power::PowerModel{};
  m.wake_latency_s = -1.0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
  EXPECT_THROW(power::PowerModel::ladder(-5.0), std::invalid_argument);
  EXPECT_THROW(power::PowerModel::ladder(100.0, 9), std::invalid_argument);
  EXPECT_THROW(power::park_depth_from_string("hibernate"), std::invalid_argument);
}

// --- node sleep states vs. placement ----------------------------------------

TEST(NodePower, ParkedNodesAdmitNothingAndHostingNodesCannotPark) {
  cluster::Cluster cl;
  cl.add_nodes(2, cluster::Resources{12000_mhz, 4096_mb});
  const util::VmId vm = cl.create_job_vm(util::JobId{0}, 1024_mb);

  cl.node(util::NodeId{1}).set_power_state(PowerState::kParked);
  EXPECT_FALSE(cl.node(util::NodeId{1}).placeable());
  EXPECT_FALSE(cl.node(util::NodeId{1}).can_host(cluster::Resources{0_mhz, 1_mb}));
  EXPECT_FALSE(cl.place_vm(vm, util::NodeId{1}));
  EXPECT_DOUBLE_EQ(cl.node(util::NodeId{1}).placeable_cpu().get(), 0.0);

  ASSERT_TRUE(cl.place_vm(vm, util::NodeId{0}));
  cl.set_vm_state(vm, cluster::VmState::kStarting);
  EXPECT_THROW(cl.node(util::NodeId{0}).set_power_state(PowerState::kParking),
               std::logic_error);

  // Waking: still not placeable until the manager flips it active.
  cl.node(util::NodeId{1}).set_power_state(PowerState::kWaking);
  EXPECT_FALSE(cl.node(util::NodeId{1}).placeable());
  cl.node(util::NodeId{1}).set_power_state(PowerState::kActive);
  EXPECT_TRUE(cl.node(util::NodeId{1}).placeable());

  EXPECT_THROW(cl.node(util::NodeId{1}).set_speed_factor(0.0), std::invalid_argument);
  EXPECT_THROW(cl.node(util::NodeId{1}).set_speed_factor(1.5), std::invalid_argument);
  cl.node(util::NodeId{1}).set_speed_factor(0.5);
  EXPECT_DOUBLE_EQ(cl.node(util::NodeId{1}).placeable_cpu().get(), 6000.0);
  EXPECT_TRUE(cl.validate().empty());
}

TEST(NodePower, PlaceableCapacityMatchesTotalAtFullPower) {
  cluster::Cluster cl;
  cl.add_nodes(7, cluster::Resources{12000_mhz, 4096_mb});
  // Bit-identical, not just close: the power-disabled hot path hangs off
  // this equality.
  EXPECT_EQ(cl.placeable_capacity().cpu.get(), cl.total_capacity().cpu.get());
  EXPECT_EQ(cl.placeable_capacity().mem.get(), cl.total_capacity().mem.get());

  cl.node(util::NodeId{3}).set_power_state(PowerState::kParked);
  EXPECT_DOUBLE_EQ(cl.placeable_capacity().cpu.get(), 6 * 12000.0);
}

TEST(NodePower, ProblemSkeletonExcludesUnplaceableNodesAndScalesThrottledOnes) {
  core::World world;
  world.cluster().add_nodes(4, cluster::Resources{12000_mhz, 4096_mb});
  world.cluster().node(util::NodeId{1}).set_power_state(PowerState::kParked);
  world.cluster().node(util::NodeId{2}).set_power_state(PowerState::kWaking);
  world.cluster().node(util::NodeId{3}).set_speed_factor(0.7);

  const core::PlacementProblem problem = core::build_problem_skeleton(world);
  ASSERT_EQ(problem.nodes.size(), 2u);  // nodes 0 and 3 only
  EXPECT_EQ(problem.nodes[0].id, util::NodeId{0});
  EXPECT_DOUBLE_EQ(problem.nodes[0].cpu_capacity.get(), 12000.0);
  EXPECT_EQ(problem.nodes[1].id, util::NodeId{3});
  EXPECT_DOUBLE_EQ(problem.nodes[1].cpu_capacity.get(), 12000.0 * 0.7);
}

// --- energy meter ------------------------------------------------------------

TEST(EnergyMeter, IntegratesPiecewiseConstantDrawExactly) {
  power::EnergyMeter meter{2, 200.0, 0_s};
  EXPECT_DOUBLE_EQ(meter.total_draw_w(), 400.0);
  EXPECT_DOUBLE_EQ(meter.total_energy_wh(0_s), 0.0);

  // Node 0 drops to 10 W at t=1800; node 1 stays at 200 W.
  meter.set_draw(0, 10.0, util::Seconds{1800.0});
  // Non-mutating read mid-interval.
  const double expect_3600 = (200.0 * 1800.0 + 10.0 * 1800.0) / 3600.0 + 200.0 * 3600.0 / 3600.0;
  EXPECT_DOUBLE_EQ(meter.total_energy_wh(util::Seconds{3600.0}), expect_3600);
  EXPECT_DOUBLE_EQ(meter.node_energy_wh(0, util::Seconds{3600.0}),
                   (200.0 * 1800.0 + 10.0 * 1800.0) / 3600.0);
  EXPECT_DOUBLE_EQ(meter.node_draw_w(0), 10.0);

  EXPECT_THROW(meter.set_draw(0, -1.0, util::Seconds{4000.0}), std::invalid_argument);
  EXPECT_THROW(meter.set_draw(0, 5.0, util::Seconds{100.0}), std::invalid_argument);
}

// --- manager state machine ---------------------------------------------------

TEST(PowerManager, ParksAfterIdleTimeoutWithClosedFormEnergy) {
  sim::Engine engine;
  core::World world;
  world.cluster().add_nodes(1, cluster::Resources{12000_mhz, 4096_mb});

  power::PowerModel model = power::PowerModel::ladder(200.0, 1);
  model.standby_w = 10.0;
  model.park_latency_s = 50.0;
  model.wake_latency_s = 80.0;

  power::PowerOptions opts;
  opts.check_interval = util::Seconds{100.0};
  opts.min_active_nodes = 0;
  power::PowerManager mgr(engine, world, model,
                          power::make_consolidation_policy(
                              "idle-park", power::IdleParkConfig{150.0, 1.25}),
                          opts);
  mgr.start();

  // Ticks at 100 (idle clock starts), 200 (idle 100 < 150), 300 (idle
  // 200 ≥ 150 → park). Parked at 300 + 50 park latency.
  engine.run_until(util::Seconds{299.0});
  EXPECT_EQ(world.cluster().nodes()[0].power_state(), PowerState::kActive);
  engine.run_until(util::Seconds{300.0});
  EXPECT_EQ(world.cluster().nodes()[0].power_state(), PowerState::kParking);
  EXPECT_EQ(mgr.stats().parks, 1);
  engine.run_until(util::Seconds{349.0});
  EXPECT_EQ(world.cluster().nodes()[0].power_state(), PowerState::kParking);
  engine.run_until(util::Seconds{350.0});
  EXPECT_EQ(world.cluster().nodes()[0].power_state(), PowerState::kParked);
  EXPECT_EQ(mgr.parked_count(), 1u);

  // Closed form: active 200 W through t=350 (the parking transition
  // draws active power), standby 10 W afterwards.
  engine.run_until(util::Seconds{1000.0});
  const double expected_wh = (200.0 * 350.0 + 10.0 * 650.0) / 3600.0;
  EXPECT_DOUBLE_EQ(mgr.energy_wh(util::Seconds{1000.0}), expected_wh);
  EXPECT_DOUBLE_EQ(mgr.current_draw_w(), 10.0);
}

TEST(PowerManager, WakesOnDemandAndNodeRejoinsAfterWakeLatency) {
  sim::Engine engine;
  core::World world;
  world.cluster().add_nodes(2, cluster::Resources{12000_mhz, 4096_mb});

  power::PowerModel model = power::PowerModel::ladder(200.0, 1);
  model.standby_w = 10.0;
  model.park_latency_s = 0.0;
  model.wake_latency_s = 80.0;

  power::PowerOptions opts;
  opts.check_interval = util::Seconds{100.0};
  opts.min_active_nodes = 1;
  power::PowerManager mgr(engine, world, model,
                          power::make_consolidation_policy(
                              "idle-park", power::IdleParkConfig{150.0, 1.0}),
                          opts);
  mgr.start();

  // With nothing offered, node 1 parks (node 0 is the active floor).
  engine.run_until(util::Seconds{400.0});
  EXPECT_EQ(world.cluster().nodes()[0].power_state(), PowerState::kActive);
  EXPECT_EQ(world.cluster().nodes()[1].power_state(), PowerState::kParked);

  // Demand that outruns one node: five 3000-MHz jobs → 15000 MHz offered
  // against 12000 MHz active.
  for (unsigned id = 0; id < 5; ++id) world.submit_job(make_job(id, 450.0));
  engine.run_until(util::Seconds{500.0});  // tick at 500 sees the demand
  EXPECT_EQ(world.cluster().nodes()[1].power_state(), PowerState::kWaking);
  EXPECT_EQ(mgr.stats().wakes, 1);
  // Provably excluded from placement until the wake latency elapses.
  EXPECT_FALSE(world.cluster().nodes()[1].placeable());
  EXPECT_EQ(core::build_problem_skeleton(world).nodes.size(), 1u);

  engine.run_until(util::Seconds{580.0});  // 500 + 80 wake latency
  EXPECT_EQ(world.cluster().nodes()[1].power_state(), PowerState::kActive);
  EXPECT_EQ(core::build_problem_skeleton(world).nodes.size(), 2u);

  // Spin-up energy: node 1 drew active power from the wake decision, not
  // from the moment it became placeable. Its idle clock started at the
  // first tick (t=100), so the park landed at the t=300 tick (idle 200 s
  // ≥ the 150 s timeout; park latency 0).
  const double expected_wh =
      (200.0 * 300.0      // node 1 active until parked at t=300
       + 10.0 * 200.0     // parked 300 → 500
       + 200.0 * 100.0)   // waking + active 500 → 600
          / 3600.0 +
      200.0 * 600.0 / 3600.0;  // node 0, always on
  engine.run_until(util::Seconds{600.0});
  EXPECT_DOUBLE_EQ(mgr.energy_wh(util::Seconds{600.0}), expected_wh);
}

TEST(PowerManager, MemoryBlockedPendingJobWakesAParkedNode) {
  // CPU headroom is not enough: a pending job whose image fits no awake
  // node's free memory must trigger a wake, or a run-to-completion
  // experiment starves forever.
  sim::Engine engine;
  core::World world;
  world.cluster().add_nodes(2, cluster::Resources{12000_mhz, 4096_mb});
  // Node 0 keeps a 4000 MB resident, leaving 96 MB free (and keeping the
  // node non-empty so it never parks).
  const util::VmId hog = world.cluster().create_job_vm(util::JobId{99}, 4000_mb);
  ASSERT_TRUE(world.cluster().place_vm(hog, util::NodeId{0}));
  world.cluster().set_vm_state(hog, cluster::VmState::kStarting);

  power::PowerModel model = power::PowerModel::ladder(200.0, 1);
  model.park_latency_s = 0.0;
  model.wake_latency_s = 80.0;
  power::PowerOptions opts;
  opts.check_interval = util::Seconds{100.0};
  opts.min_active_nodes = 1;
  power::PowerManager mgr(engine, world, model,
                          power::make_consolidation_policy(
                              "idle-park", power::IdleParkConfig{150.0, 1.25}),
                          opts);
  mgr.start();

  engine.run_until(util::Seconds{400.0});
  ASSERT_EQ(world.cluster().nodes()[1].power_state(), PowerState::kParked);

  // A job needing 1300 MB but almost no CPU: the CPU trigger stays
  // quiet (100 × 1.25 ≪ 12000 active), only the memory path can wake.
  workload::JobSpec tiny = make_job(0, 450.0);
  tiny.max_speed = util::CpuMhz{100.0};
  world.submit_job(tiny);

  engine.run_until(util::Seconds{500.0});
  EXPECT_EQ(world.cluster().nodes()[1].power_state(), PowerState::kWaking);
  engine.run_until(util::Seconds{580.0});
  EXPECT_EQ(world.cluster().nodes()[1].power_state(), PowerState::kActive);
  // And the policy does not re-park the node out from under the blocked
  // job on the next tick (it is the only big-enough host).
  engine.run_until(util::Seconds{900.0});
  EXPECT_EQ(world.cluster().nodes()[1].power_state(), PowerState::kActive);
}

TEST(PowerManager, PowerCapForcesPStateThrottlingAndLiftsWithLoad) {
  sim::Engine engine;
  core::World world;
  world.cluster().add_nodes(4, cluster::Resources{12000_mhz, 4096_mb});

  power::PowerModel model;  // default 4-point ladder, 220 W at P0
  power::PowerOptions opts;
  opts.check_interval = util::Seconds{100.0};
  opts.cap_w = 700.0;  // 4 × 220 = 880 W > cap; 4 × 158 (P2) = 632 ≤ cap
  // Keep every node busy so parking never kicks in.
  power::PowerManager mgr(engine, world, model,
                          power::make_consolidation_policy(
                              "idle-park", power::IdleParkConfig{1.0e9, 1.25}),
                          opts);
  mgr.start();

  engine.run_until(util::Seconds{100.0});
  EXPECT_EQ(mgr.pstate(), 2);
  EXPECT_LE(mgr.current_draw_w(), 700.0);
  for (const auto& node : world.cluster().nodes()) {
    EXPECT_DOUBLE_EQ(node.speed_factor(), model.speed_at(2));
  }
  // The solver sees the throttled capacity.
  const core::PlacementProblem problem = core::build_problem_skeleton(world);
  for (const auto& n : problem.nodes) {
    EXPECT_DOUBLE_EQ(n.cpu_capacity.get(), 12000.0 * model.speed_at(2));
  }
  EXPECT_GE(mgr.stats().pstate_changes, 1);
}

// --- scenario integration ----------------------------------------------------

TEST(PowerScenario, DisabledAndEnabledIdleRunsAreBitIdentical) {
  // A power-enabled run whose policy never acts ("none") must reproduce
  // the power-disabled run exactly: manager ticks meter but never
  // mutate. This pins "power disabled == pre-power output" from the
  // other side.
  scenario::Scenario off = scenario::section3_scaled(0.2);
  off.seed = 42;
  scenario::Scenario idle = off;
  idle.power.enabled = true;
  idle.power.policy = "none";

  scenario::ExperimentOptions opt;
  opt.max_sim_time_s = 2.0e6;
  const auto r_off = scenario::run_experiment(off, opt);
  const auto r_idle = scenario::run_experiment(idle, opt);

  // Disabled runs carry no power series at all; idle runs carry a flat
  // full-power draw.
  EXPECT_EQ(r_off.series.find("power_w"), nullptr);
  ASSERT_NE(r_idle.series.find("power_w"), nullptr);
  for (const auto& p : r_idle.series.find("power_w")->points()) {
    EXPECT_DOUBLE_EQ(p.v, 5 * 220.0);
  }

  for (const char* name : {"u_star", "tx_alloc_mhz", "lr_alloc_mhz", "active_jobs",
                           "jobs_completed", "tx_utility", "lr_hyp_utility"}) {
    expect_same_series(r_off.series, r_idle.series, name);
  }
  EXPECT_EQ(r_off.summary.jobs_completed, r_idle.summary.jobs_completed);
  EXPECT_DOUBLE_EQ(r_off.summary.tx_utility.mean(), r_idle.summary.tx_utility.mean());
  EXPECT_DOUBLE_EQ(r_off.summary.job_utility.mean(), r_idle.summary.job_utility.mean());
  EXPECT_EQ(r_off.summary.sim_end_time_s, r_idle.summary.sim_end_time_s);
}

TEST(PowerScenario, FederatedDisabledAndEnabledIdleRunsAreBitIdentical) {
  auto base = scenario::section3_scaled(0.2);
  base.seed = 42;
  scenario::FederatedScenario off = scenario::federate(base, 3);
  scenario::FederatedScenario idle = off;
  idle.power.enabled = true;
  idle.power.policy = "none";

  scenario::ExperimentOptions opt;
  opt.max_sim_time_s = 2.0e6;
  const auto r_off = scenario::run_federated_experiment(off, opt);
  const auto r_idle = scenario::run_federated_experiment(idle, opt);

  EXPECT_EQ(r_off.series.find("fed_power_w"), nullptr);
  ASSERT_NE(r_idle.series.find("fed_power_w"), nullptr);
  ASSERT_NE(r_idle.series.find("power_w_dc0"), nullptr);
  ASSERT_NE(r_idle.series.find("energy_wh_dc1"), nullptr);

  for (const char* name :
       {"fed_tx_alloc_mhz", "fed_lr_alloc_mhz", "fed_jobs_running", "fed_jobs_completed"}) {
    expect_same_series(r_off.series, r_idle.series, name);
  }
  ASSERT_EQ(r_off.domains.size(), r_idle.domains.size());
  for (std::size_t d = 0; d < r_off.domains.size(); ++d) {
    for (const char* name : {"u_star", "tx_alloc_mhz", "lr_alloc_mhz", "jobs_completed"}) {
      expect_same_series(r_off.domains[d].result.series, r_idle.domains[d].result.series, name);
    }
  }
}

TEST(PowerScenario, IdenticalSeedsGiveIdenticalEnergySeries) {
  const scenario::Scenario s = diurnal_scenario("idle-park");
  scenario::ExperimentOptions opt;
  opt.validate_invariants = true;
  const auto first = scenario::run_experiment(s, opt);
  const auto second = scenario::run_experiment(s, opt);

  for (const char* name : {"power_w", "energy_wh", "power_parked_nodes", "tx_utility",
                           "jobs_completed"}) {
    expect_same_series(first.series, second.series, name);
  }
  EXPECT_EQ(first.summary.invariant_violations, 0);
}

TEST(PowerScenario, ParkedEnergyStrictlyBelowAlwaysOnWithSlaHeld) {
  // The acceptance pin: idle-park spends strictly less energy than the
  // always-on baseline while the SLA outcome stays within tolerance.
  scenario::ExperimentOptions opt;
  opt.validate_invariants = true;
  const auto always_on = scenario::run_experiment(diurnal_scenario("none"), opt);
  const auto parked = scenario::run_experiment(diurnal_scenario("idle-park"), opt);

  const double base_wh = always_on.series.find("energy_wh")->points().back().v;
  const double green_wh = parked.series.find("energy_wh")->points().back().v;
  EXPECT_LT(green_wh, base_wh);
  EXPECT_GT(base_wh, 0.0);

  // Nodes actually parked overnight.
  const auto* parked_series = parked.series.find("power_parked_nodes");
  ASSERT_NE(parked_series, nullptr);
  double max_parked = 0.0;
  for (const auto& p : parked_series->points()) max_parked = std::max(max_parked, p.v);
  EXPECT_GE(max_parked, 1.0);

  // SLA within tolerance: every job still completes and the mean
  // transactional utility moves by < 0.05.
  EXPECT_EQ(parked.summary.jobs_completed, always_on.summary.jobs_completed);
  EXPECT_NEAR(parked.summary.tx_utility.mean(), always_on.summary.tx_utility.mean(), 0.05);
  EXPECT_EQ(parked.summary.invariant_violations, 0);
}

TEST(PowerScenario, DomainStatusCarriesLivePowerDraw) {
  sim::Engine engine;
  federation::Federation fed(engine, federation::make_router("least-loaded"));
  auto& d0 = fed.add_domain("d0", std::make_unique<core::UtilityDrivenPolicy>(
                                      std::make_shared<utility::JobUtilityModel>(),
                                      std::make_shared<utility::TxUtilityModel>()));
  d0.world().cluster().add_nodes(2, cluster::Resources{12000_mhz, 4096_mb});

  power::PowerManager mgr(engine, d0.world(), power::PowerModel::ladder(150.0, 1),
                          power::make_consolidation_policy("none"));
  // Without a probe the field is zero; with one it reports the meter.
  EXPECT_DOUBLE_EQ(fed.status(0_s)[0].power_draw_w, 0.0);
  fed.set_power_probe([&mgr](std::size_t) { return mgr.current_draw_w(); });
  EXPECT_DOUBLE_EQ(fed.status(0_s)[0].power_draw_w, 300.0);

  // Parked capacity is invisible to routers: capacity stays raw, but
  // effective drops to the placeable share so a consolidated domain does
  // not masquerade as headroom.
  EXPECT_DOUBLE_EQ(fed.status(0_s)[0].effective.get(), 24000.0);
  d0.world().cluster().node(util::NodeId{1}).set_power_state(PowerState::kParked);
  EXPECT_DOUBLE_EQ(fed.status(0_s)[0].capacity.get(), 24000.0);
  EXPECT_DOUBLE_EQ(fed.status(0_s)[0].effective.get(), 12000.0);
}

// --- config loader -----------------------------------------------------------

TEST(PowerConfig, KeysRoundTripThroughLoader) {
  util::Config cfg;
  cfg.set("power.enabled", "true");
  cfg.set("power.policy", "idle-park");
  cfg.set("power.idle_timeout_s", "900");
  cfg.set("power.headroom_factor", "1.5");
  cfg.set("power.min_active_nodes", "2");
  cfg.set("power.cap_w", "4000");
  cfg.set("power.park_state", "off");
  cfg.set("power.active_w", "300");
  cfg.set("power.standby_w", "12");
  cfg.set("power.park_latency_s", "20");
  cfg.set("power.wake_latency_s", "90");
  cfg.set("power.pstates", "3");
  const scenario::Scenario s = scenario::scenario_from_config(cfg);
  EXPECT_TRUE(s.power.enabled);
  EXPECT_EQ(s.power.policy, "idle-park");
  EXPECT_DOUBLE_EQ(s.power.idle_timeout_s, 900.0);
  EXPECT_DOUBLE_EQ(s.power.headroom_factor, 1.5);
  EXPECT_EQ(s.power.min_active_nodes, 2);
  EXPECT_DOUBLE_EQ(s.power.cap_w, 4000.0);
  EXPECT_EQ(s.power.park_state, "off");
  EXPECT_DOUBLE_EQ(s.power.active_w, 300.0);
  EXPECT_DOUBLE_EQ(s.power.wake_latency_s, 90.0);
  EXPECT_EQ(s.power.pstates, 3);

  // Same keys flow into the federated loader, plus per-domain caps.
  cfg.set("domains", "2");
  cfg.set("domain.1.power_cap_w", "1500");
  const scenario::FederatedScenario fs = scenario::federated_scenario_from_config(cfg);
  EXPECT_TRUE(fs.power.enabled);
  EXPECT_DOUBLE_EQ(fs.power.active_w, 300.0);
  EXPECT_DOUBLE_EQ(fs.domains[0].power_cap_w, -1.0);  // inherit
  EXPECT_DOUBLE_EQ(fs.domains[1].power_cap_w, 1500.0);
}

TEST(PowerConfig, RejectsInvalidValues) {
  auto reject = [](const std::string& key, const std::string& value) {
    util::Config cfg;
    cfg.set(key, value);
    EXPECT_THROW(scenario::scenario_from_config(cfg), util::ConfigError)
        << key << " = " << value;
  };
  reject("power.policy", "teleport");
  reject("power.park_state", "hibernate");
  reject("power.headroom_factor", "0.5");
  reject("power.cap_w", "-100");
  reject("power.active_w", "0");
  reject("power.pstates", "9");
  reject("power.wake_latency_s", "-5");
  reject("power.min_active_nodes", "-1");
  reject("power.standby_w", "-2");

  util::Config cfg;
  cfg.set("power.unknown_knob", "1");
  EXPECT_THROW(scenario::scenario_from_config(cfg), util::ConfigError);
}
