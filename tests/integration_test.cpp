// End-to-end integration tests: a scaled version of the paper's Section-3
// experiment must display the documented qualitative behaviour, and the
// utility-driven controller must beat the utility-blind baselines on the
// metrics the paper optimizes.

#include <gtest/gtest.h>

#include "scenario/experiment.hpp"
#include "scenario/scenario.hpp"

using namespace heteroplace;

namespace {

scenario::Scenario mid_scenario() {
  auto s = scenario::section3_scaled(0.2);  // 5 nodes, 160 jobs
  s.seed = 42;
  return s;
}

const scenario::ExperimentResult& utility_run() {
  static const scenario::ExperimentResult r = [] {
    scenario::ExperimentOptions opt;
    opt.validate_invariants = true;
    return scenario::run_experiment(mid_scenario(), opt);
  }();
  return r;
}

}  // namespace

TEST(Section3Shape, AllJobsCompleteWithoutInvariantViolations) {
  const auto& r = utility_run();
  EXPECT_EQ(r.summary.jobs_completed, r.summary.jobs_submitted);
  EXPECT_EQ(r.summary.invariant_violations, 0);
}

TEST(Section3Shape, EarlyPhaseTransactionalGetsItsDemand) {
  const auto& r = utility_run();
  const auto* alloc = r.series.find("tx_alloc_mhz");
  const auto* demand = r.series.find("tx_demand_mhz");
  ASSERT_NE(alloc, nullptr);
  ASSERT_NE(demand, nullptr);
  // During the first few cycles contention is low: the app receives most
  // of its maximum-utility demand. (Window ends before job arrivals crowd
  // the scaled cluster.)
  const double a = alloc->mean_over(600.0, 2400.0);
  const double d = demand->mean_over(600.0, 2400.0);
  EXPECT_GT(a, 0.7 * d);
}

TEST(Section3Shape, UtilitiesEqualizeWhenContended) {
  const auto& r = utility_run();
  EXPECT_GT(r.summary.equalization_gap.count(), 10u);
  EXPECT_LT(r.summary.equalization_gap.mean(), 0.2);
}

TEST(Section3Shape, LongRunningUtilityFallsAsSystemCrowds) {
  const auto& r = utility_run();
  const auto* lr = r.series.find("lr_hyp_utility");
  ASSERT_NE(lr, nullptr);
  const double t_end = r.summary.sim_end_time_s;
  const double early = lr->mean_over(0.0, 0.15 * t_end);
  const double mid = lr->mean_over(0.5 * t_end, 0.75 * t_end);
  EXPECT_LT(mid, early);
}

TEST(Section3Shape, TransactionalAllocationRecoversAtTheEnd) {
  const auto& r = utility_run();
  const auto* alloc = r.series.find("tx_alloc_mhz");
  const auto* demand = r.series.find("tx_demand_mhz");
  ASSERT_NE(alloc, nullptr);
  const double t_end = r.summary.sim_end_time_s;
  const double mid = alloc->mean_over(0.5 * t_end, 0.7 * t_end);
  const double late = alloc->value_at(t_end);
  EXPECT_GT(late, mid);
  // Fully recovered: allocation ≈ demand at the end.
  EXPECT_GT(late, 0.9 * demand->value_at(t_end));
}

TEST(Section3Shape, UnevenCpuEvenUtility) {
  // The paper's headline: CPU split is uneven while utility is even.
  const auto& r = utility_run();
  const auto* tx_alloc = r.series.find("tx_alloc_mhz");
  const auto* lr_alloc = r.series.find("lr_alloc_mhz");
  const auto* gap = r.series.find("utility_gap");
  ASSERT_NE(tx_alloc, nullptr);
  ASSERT_NE(lr_alloc, nullptr);
  ASSERT_NE(gap, nullptr);
  const double t_end = r.summary.sim_end_time_s;
  // Mid-experiment: allocations differ by >25% while utilities differ by
  // far less in absolute terms.
  const double tx = tx_alloc->mean_over(0.45 * t_end, 0.7 * t_end);
  const double lr = lr_alloc->mean_over(0.45 * t_end, 0.7 * t_end);
  const double g = gap->mean_over(0.45 * t_end, 0.7 * t_end);
  EXPECT_GT(std::fabs(tx - lr) / std::max(tx, lr), 0.25);
  EXPECT_LT(g, 0.15);
}

TEST(Section3Shape, ControllerUsesTheWholeCluster) {
  const auto& r = utility_run();
  const auto* tx = r.series.find("tx_alloc_mhz");
  const auto* lr = r.series.find("lr_alloc_mhz");
  const double t_end = r.summary.sim_end_time_s;
  const double capacity = 5 * 12000.0;
  // In the crowded phase most capacity is allocated. (Some CPU is
  // physically strandable: a node packed with 3 single-processor jobs can
  // use at most 9000 of its 12000 MHz, so 100% is not reachable.)
  const double used = tx->mean_over(0.4 * t_end, 0.7 * t_end) +
                      lr->mean_over(0.4 * t_end, 0.7 * t_end);
  EXPECT_GT(used, 0.70 * capacity);
}

// --- policy comparison ------------------------------------------------------------

namespace {
scenario::ExperimentResult run_policy(scenario::PolicyKind p) {
  scenario::ExperimentOptions opt;
  opt.policy = p;
  opt.max_sim_time_s = 1.0e6;
  return scenario::run_experiment(mid_scenario(), opt);
}
}  // namespace

TEST(PolicyComparison, UtilityDrivenBalancesBetterThanStatic) {
  const auto& util_run = utility_run();
  const auto stat = run_policy(scenario::PolicyKind::kStaticPartition);
  // The utility-driven controller should achieve a higher *minimum* of
  // (mean tx utility, mean job utility) — that is what equalization buys.
  const double util_min =
      std::min(util_run.summary.tx_utility.mean(), util_run.summary.job_utility.mean());
  const double stat_min =
      std::min(stat.summary.tx_utility.mean(), stat.summary.job_utility.mean());
  EXPECT_GT(util_min, stat_min);
}

TEST(PolicyComparison, UtilityDrivenBalancesBetterThanEqualShare) {
  // Equal-share is utility-blind: with 160 jobs vs 1 app it hands the job
  // class nearly everything and starves the app (it trivially meets all
  // job goals, which is why goal-met is the wrong metric here). The
  // utility-driven controller keeps the worst-off class far better off.
  const auto& util_run = utility_run();
  const auto prop = run_policy(scenario::PolicyKind::kProportionalEqual);
  const double util_min =
      std::min(util_run.summary.tx_utility.mean(), util_run.summary.job_utility.mean());
  const double prop_min =
      std::min(prop.summary.tx_utility.mean(), prop.summary.job_utility.mean());
  EXPECT_GT(util_min, prop_min + 0.1);
}

TEST(PolicyComparison, AllPoliciesKeepClusterFeasible) {
  for (auto p : {scenario::PolicyKind::kStaticPartition,
                 scenario::PolicyKind::kProportionalEqual,
                 scenario::PolicyKind::kProportionalDemand}) {
    scenario::ExperimentOptions opt;
    opt.policy = p;
    opt.validate_invariants = true;
    opt.horizon_override_s = 30000.0;  // bounded: some baselines strand jobs
    const auto r = scenario::run_experiment(mid_scenario(), opt);
    EXPECT_EQ(r.summary.invariant_violations, 0) << scenario::to_string(p);
  }
}

TEST(ServiceDifferentiation, GoldOutperformsSilver) {
  auto s = scenario::service_differentiation_scenario();
  // Scale down for test speed; loosen RT goals so the combined TX demand
  // fits the smaller cluster (≈94% of 72000 MHz) and the equalized level
  // stays positive — importance priorities are defined on positive
  // utility.
  s.cluster.nodes = 6;
  s.jobs.count = 40;
  s.jobs.tmpl.work = util::MhzSeconds{1.0e7};
  s.apps[0].trace = workload::DemandTrace{3.0};
  s.apps[0].spec.rt_goal = util::Seconds{2.0};
  s.apps[1].trace = workload::DemandTrace{3.0};
  s.apps[1].spec.rt_goal = util::Seconds{4.0};
  for (auto& app : s.apps) app.spec.max_instances = 6;
  scenario::ExperimentOptions opt;
  opt.validate_invariants = true;
  const auto r = scenario::run_experiment(s, opt);
  EXPECT_EQ(r.summary.invariant_violations, 0);

  const auto* gold = r.series.find("tx_utility_gold");
  const auto* silver = r.series.find("tx_utility_silver");
  ASSERT_NE(gold, nullptr);
  ASSERT_NE(silver, nullptr);
  const double t_end = r.summary.sim_end_time_s;
  // With higher importance, gold's weighted utility stays at or above
  // silver's through the contended phase.
  EXPECT_GE(gold->mean_over(0.3 * t_end, 0.8 * t_end),
            silver->mean_over(0.3 * t_end, 0.8 * t_end) - 0.05);
}
