// Parallel engine tests: batch formation across shards, same-shard
// ordering, serial fallback for untagged events, deterministic staged-
// push replay, the fail-loud guards (past/lower-priority staged pushes,
// handle ops on an executing batch slot), the cross-thread handle
// liveness registry (handles created on one thread, probed/cancelled
// from another, and handles outliving their queue), a determinism
// stress comparing threads ∈ {2, 4, 8} against the serial reference,
// and the end-to-end bit-identity pins: single-world and federated runs
// with migration + power + faults + weight events must produce digest-
// identical output at every thread count.

#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "scenario/config_loader.hpp"
#include "scenario/experiment.hpp"
#include "scenario/federation_experiment.hpp"
#include "scenario/result_digest.hpp"
#include "sim/event_queue.hpp"
#include "util/config.hpp"

using namespace heteroplace;

namespace {

constexpr auto kCtrl = sim::EventPriority::kController;
constexpr auto kState = sim::EventPriority::kStateTransition;
constexpr auto kPower = sim::EventPriority::kPower;

}  // namespace

// --- batch formation ---------------------------------------------------------

TEST(ParallelEngine, BatchFormsAcrossShards) {
  sim::Engine engine;
  engine.set_threads(4);
  std::atomic<int> ran{0};
  for (sim::ShardId s = 0; s < 4; ++s) {
    engine.schedule_at(util::Seconds{10.0}, kCtrl, s, [&] { ran.fetch_add(1); });
  }
  engine.run();
  EXPECT_EQ(ran.load(), 4);
  EXPECT_EQ(engine.parallel_batches(), 1u);
  EXPECT_EQ(engine.batched_events(), 4u);
}

TEST(ParallelEngine, DifferentKeysDoNotBatch) {
  sim::Engine engine;
  engine.set_threads(4);
  int ran = 0;
  // Same time, different priorities: two separate batches (of one each,
  // which take the plain serial path — no batch counted).
  engine.schedule_at(util::Seconds{5.0}, kCtrl, 0, [&] { ++ran; });
  engine.schedule_at(util::Seconds{5.0}, kPower, 1, [&] { ++ran; });
  // Different times.
  engine.schedule_at(util::Seconds{6.0}, kCtrl, 0, [&] { ++ran; });
  engine.run();
  EXPECT_EQ(ran, 3);
  EXPECT_EQ(engine.batched_events(), 0u);
}

TEST(ParallelEngine, SameShardKeepsPushOrder) {
  // All events on one shard at one key: they form a batch but the group
  // runs sequentially on one worker, in push (= serial pop) order.
  sim::Engine engine;
  engine.set_threads(4);
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    engine.schedule_at(util::Seconds{1.0}, kCtrl, 7, [&order, i] { order.push_back(i); });
  }
  engine.run();
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ParallelEngine, UnshardedEventSplitsTheBatch) {
  // sharded, sharded, UNSHARDED, sharded at one key: the untagged event
  // must run serially, alone, between two batches — and overall
  // execution must follow strict queue order.
  sim::Engine engine;
  engine.set_threads(4);
  std::mutex mu;
  std::vector<int> order;
  auto log = [&](int i) {
    std::lock_guard<std::mutex> lk(mu);
    order.push_back(i);
  };
  engine.schedule_at(util::Seconds{1.0}, kCtrl, 0, [&] { log(0); });
  engine.schedule_at(util::Seconds{1.0}, kCtrl, 0, [&] { log(1); });
  engine.schedule_at(util::Seconds{1.0}, kCtrl, [&] { log(2); });  // kNoShard
  engine.schedule_at(util::Seconds{1.0}, kCtrl, 1, [&] { log(3); });
  engine.run();
  ASSERT_EQ(order.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(engine.events_executed(), 4u);
}

// --- staged pushes -----------------------------------------------------------

namespace {

/// Shared harness: `shards` independent counters, each shard's event
/// reschedules itself with a data-dependent delay and bumps its counter.
/// Returns (final counters, total events) for digest comparison.
std::pair<std::vector<long>, std::uint64_t> run_storm(unsigned threads, int shards, double until) {
  sim::Engine engine;
  engine.set_threads(threads);
  std::vector<long> counters(static_cast<std::size_t>(shards), 0);
  std::vector<std::function<void()>> loops(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    loops[static_cast<std::size_t>(s)] = [&, s] {
      long& c = counters[static_cast<std::size_t>(s)];
      ++c;
      // Data-dependent fan-out: every third tick schedules an extra
      // same-time lower... no — strictly future event at a *different*
      // priority, exercising mixed-priority staged pushes.
      if (c % 3 == 0) {
        engine.schedule_in(util::Seconds{5.0}, kState, static_cast<sim::ShardId>(s),
                           [&counters, s] { counters[static_cast<std::size_t>(s)] += 10; });
      }
      // Re-arm on a lattice so distinct shards keep colliding at shared
      // timestamps (that is what forms batches).
      const double dt = 10.0 + static_cast<double>(c % 2) * 10.0;
      engine.schedule_in(util::Seconds{dt}, kCtrl, static_cast<sim::ShardId>(s),
                         loops[static_cast<std::size_t>(s)]);
    };
    engine.schedule_at(util::Seconds{10.0}, kCtrl, static_cast<sim::ShardId>(s),
                       loops[static_cast<std::size_t>(s)]);
  }
  engine.run_until(util::Seconds{until});
  return {counters, engine.events_executed()};
}

}  // namespace

TEST(ParallelEngine, StagedPushesReplayDeterministically) {
  const auto ref = run_storm(1, 6, 2000.0);
  for (unsigned threads : {2u, 4u, 8u}) {
    const auto got = run_storm(threads, 6, 2000.0);
    EXPECT_EQ(got.first, ref.first) << "threads=" << threads;
    EXPECT_EQ(got.second, ref.second) << "threads=" << threads;
  }
  // The parallel run must actually have batched (distinct shards collide
  // at t = 10, 30, 50, ... by construction).
  sim::Engine engine;
  engine.set_threads(4);
  // (re-run inline to observe counters on a live engine)
  std::atomic<int> n{0};
  for (sim::ShardId s = 0; s < 6; ++s) {
    engine.schedule_at(util::Seconds{10.0}, kCtrl, s, [&] { n.fetch_add(1); });
  }
  engine.run();
  EXPECT_GE(engine.parallel_batches(), 1u);
}

TEST(ParallelEngine, StagedPushIntoPastThrows) {
  sim::Engine engine;
  engine.set_threads(2);
  for (sim::ShardId s = 0; s < 2; ++s) {
    engine.schedule_at(util::Seconds{10.0}, kCtrl, s, [&engine] {
      // now == 10 inside the batch; scheduling before the batch time is
      // unreproducible in serial order and must fail loudly.
      engine.schedule_at(util::Seconds{10.0}, kState, 0, [] {});
    });
  }
  EXPECT_THROW(engine.run(), std::logic_error);
}

TEST(ParallelEngine, SameTimeSamePriorityStagedPushIsAllowed) {
  sim::Engine engine;
  engine.set_threads(2);
  std::atomic<int> ran{0};
  for (sim::ShardId s = 0; s < 2; ++s) {
    engine.schedule_at(util::Seconds{10.0}, kCtrl, s, [&, s] {
      // Equal (time, priority) staged pushes land after the batch in
      // replay order — legal and deterministic.
      engine.schedule_at(util::Seconds{10.0}, kCtrl, s, [&] { ran.fetch_add(1); });
    });
  }
  engine.run();
  EXPECT_EQ(ran.load(), 2);
}

TEST(ParallelEngine, HandleOpsOnExecutingBatchEventThrow) {
  sim::Engine engine;
  engine.set_threads(2);
  sim::EventHandle h0;
  std::atomic<bool> tried{false};
  h0 = engine.schedule_at(util::Seconds{10.0}, kCtrl, 0, [] {});
  engine.schedule_at(util::Seconds{10.0}, kCtrl, 1, [&] {
    tried.store(true);
    h0.cancel();  // h0's slot is mid-execution in this very batch
  });
  try {
    engine.run();
    // Batch of 2 required for the guard to engage; if the events did not
    // land in one batch the cancel is a benign no-op. They do land in one
    // batch (same time, same priority, both sharded), so:
    FAIL() << "expected std::logic_error from cancelling an executing batch event";
  } catch (const std::logic_error&) {
    EXPECT_TRUE(tried.load());
  }
}

// --- cross-thread handle liveness (the registry bugfix) ----------------------

TEST(ParallelEngine, HandleCreatedOnMainUsableFromWorker) {
  // A handle captured on the main thread must be pend-able and
  // cancellable from inside a worker-thread batch item. The old
  // thread_local live-queue registry said "dead queue" for any queue not
  // registered on the *current* thread, silently misreporting liveness
  // on workers.
  sim::Engine engine;
  engine.set_threads(4);
  std::atomic<bool> future_ran{false};
  std::atomic<bool> was_pending{false};
  sim::EventHandle future =
      engine.schedule_at(util::Seconds{99.0}, kState, 2, [&] { future_ran.store(true); });
  for (sim::ShardId s = 0; s < 4; ++s) {
    engine.schedule_at(util::Seconds{10.0}, kCtrl, s, [&, s] {
      if (s == 2) {  // same shard as the target event: ordered access
        was_pending.store(future.pending());
        future.cancel();
      }
    });
  }
  engine.run();
  EXPECT_TRUE(was_pending.load());
  EXPECT_FALSE(future_ran.load());
}

TEST(ParallelEngine, HandleOutlivesQueueCrossThread) {
  sim::EventHandle h;
  {
    sim::EventQueue q;
    h = q.push(5.0, kCtrl, [] {});
    EXPECT_TRUE(h.pending());
    // Probe from a different thread while the queue is alive.
    bool seen = false;
    std::thread t([&] { seen = h.pending(); });
    t.join();
    EXPECT_TRUE(seen);
  }
  // Queue destroyed: the handle must answer false (not crash), from any
  // thread.
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(h.cancel());
  bool dead = true;
  std::thread t([&] { dead = h.pending(); });
  t.join();
  EXPECT_FALSE(dead);
}

TEST(ParallelEngine, QueueIdsNeverRecycleLiveness) {
  // A new queue reusing the old one's registry cell must not revive
  // stale handles (ids are monotonic, cells compare by id).
  sim::EventHandle stale;
  {
    sim::EventQueue q;
    stale = q.push(1.0, kCtrl, [] {});
  }
  sim::EventQueue fresh;
  (void)fresh.push(1.0, kCtrl, [] {});
  EXPECT_FALSE(stale.pending());
  EXPECT_FALSE(stale.cancel());
}

// --- end-to-end bit-identity pins -------------------------------------------

namespace {

scenario::FederatedScenario everything_on_scenario() {
  auto base = scenario::section3_scaled(0.2);  // 5 nodes, 160 jobs
  base.seed = 42;
  base.horizon_s = 40000.0;
  scenario::FederatedScenario fs = scenario::federate(base, 3);
  // Align every domain's control phase so same-timestamp cycles collide
  // — aligned phases are what the parallel engine batches. (The default
  // stagger would leave nothing concurrent and the pin vacuous.)
  for (auto& d : fs.domains) d.first_cycle_at_s = 0.0;
  fs.migration.enabled = true;
  fs.migration.policy = "drain+rebalance";
  fs.migration.check_interval_s = 300.0;
  fs.power.enabled = true;
  fs.power.policy = "idle-park";
  fs.power.idle_timeout_s = 1200.0;
  fs.faults.enabled = true;
  fs.faults.events.push_back({"node-crash", 1, 0, 0, 9000.0, 4000.0, 1.0});
  fs.faults.events.push_back({"blackout", 2, 0, 0, 15000.0, 2500.0, 1.0});
  fs.weight_events.push_back({0, 12000.0, 0.3});
  fs.weight_events.push_back({0, 24000.0, 1.0});
  return fs;
}

}  // namespace

TEST(ParallelEnginePin, AlignedFederationActuallyBatches) {
  // Direct engine probe: three aligned controller domains must produce
  // parallel batches (this is what makes the federated digest pin a real
  // statement about the parallel path, not a vacuous serial rerun).
  auto fs = everything_on_scenario();
  fs.engine_threads = 4;
  // run_federated_experiment hides its engine, so assert on a hand-built
  // equivalent: three shard-tagged no-op cycle loops on one clock.
  sim::Engine engine;
  engine.set_threads(4);
  std::vector<std::function<void()>> loops(3);
  for (sim::ShardId s = 0; s < 3; ++s) {
    loops[s] = [&engine, &loops, s] {
      engine.schedule_in(util::Seconds{600.0}, kCtrl, s, loops[s]);
    };
    engine.schedule_at(util::Seconds{0.0}, kCtrl, s, loops[s]);
  }
  engine.run_until(util::Seconds{6000.0});
  EXPECT_GE(engine.parallel_batches(), 10u);
  EXPECT_GE(engine.batched_events(), 30u);
}

TEST(ParallelEnginePin, SingleWorldBitIdentical) {
  auto s = scenario::section3_scaled(0.15);
  s.seed = 7;
  s.horizon_s = 30000.0;
  s.power.enabled = true;
  scenario::ExperimentOptions opt;
  s.engine_threads = 1;
  const auto ref = scenario::digest(scenario::run_experiment(s, opt));
  s.engine_threads = 4;
  const auto par = scenario::digest(scenario::run_experiment(s, opt));
  EXPECT_EQ(par, ref);
}

TEST(ParallelEnginePin, FederatedEverythingOnBitIdentical) {
  auto fs = everything_on_scenario();
  scenario::ExperimentOptions opt;
  fs.engine_threads = 1;
  const auto ref = scenario::digest(scenario::run_federated_experiment(fs, opt));
  for (int threads : {2, 4, 8}) {
    fs.engine_threads = threads;
    const auto par = scenario::digest(scenario::run_federated_experiment(fs, opt));
    EXPECT_EQ(par, ref) << "threads=" << threads;
  }
}

// --- config surface ----------------------------------------------------------

TEST(ParallelEngineConfig, ThreadsKeyParsesIntoBothLoaders) {
  const auto cfg = util::Config::from_string("engine.threads = 4\n");
  EXPECT_EQ(scenario::scenario_from_config(cfg).engine_threads, 4);
  const auto fcfg = util::Config::from_string("engine.threads = 8\ndomains = 2\n");
  EXPECT_EQ(scenario::federated_scenario_from_config(fcfg).engine_threads, 8);
  EXPECT_EQ(scenario::scenario_from_config(util::Config{}).engine_threads, 1);
}

TEST(ParallelEngineConfig, ZeroThreadsRejected) {
  EXPECT_THROW(
      (void)scenario::scenario_from_config(util::Config::from_string("engine.threads = 0\n")),
      util::ConfigError);
}
