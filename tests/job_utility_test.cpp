// Tests for the job utility model: hypothetical utility and its inverse —
// the job side of the paper's common currency.

#include "utility/job_utility.hpp"

#include <gtest/gtest.h>

#include <cmath>

using namespace heteroplace;
using namespace heteroplace::util::literals;
using utility::JobUtilityModel;
using workload::Job;
using workload::JobSpec;

namespace {
JobSpec spec_with(double work, double max_speed, double submit, double goal,
                  double importance = 1.0) {
  JobSpec s;
  s.id = util::JobId{1};
  s.work = util::MhzSeconds{work};
  s.max_speed = util::CpuMhz{max_speed};
  s.memory = 1300_mb;
  s.submit_time = util::Seconds{submit};
  s.completion_goal = util::Seconds{goal};
  s.importance = importance;
  return s;
}
}  // namespace

TEST(JobUtility, UtilityAtCompletionFollowsTheShape) {
  JobUtilityModel m;
  // Goal 1000 s: finishing at +500 s is the plateau edge (u=1), at
  // +1000 s exactly on goal (u=0.4), at +1500 s u=0.
  const auto s = spec_with(3.0e6, 3000.0, 100.0, 1000.0);
  EXPECT_DOUBLE_EQ(m.utility_at_completion(s, util::Seconds{600.0}), 1.0);
  EXPECT_DOUBLE_EQ(m.utility_at_completion(s, util::Seconds{1100.0}), 0.4);
  EXPECT_DOUBLE_EQ(m.utility_at_completion(s, util::Seconds{1600.0}), 0.0);
  EXPECT_LT(m.utility_at_completion(s, util::Seconds{3000.0}), 0.0);
}

TEST(JobUtility, ImportanceIsAnEqualizationWeight) {
  JobUtilityModel m;
  const auto s = spec_with(3.0e6, 3000.0, 0.0, 1000.0, 2.0);
  // Weighted utility = raw / importance: raw 0.4 on-goal → 0.2 weighted.
  EXPECT_DOUBLE_EQ(m.utility_at_completion(s, util::Seconds{1000.0}), 0.2);
  // To reach the same weighted level, the important job needs more speed
  // than a unit-importance twin.
  Job important{s};
  Job plain{spec_with(3.0e6, 3000.0, 0.0, 1000.0, 1.0)};
  EXPECT_GT(m.speed_for_utility(important, util::Seconds{0.0}, 0.3).get(),
            m.speed_for_utility(plain, util::Seconds{0.0}, 0.3).get());
}

TEST(JobUtility, HypotheticalUtilityAtFullSpeedImmediately) {
  JobUtilityModel m;
  // Work 3e6 at 3000 → 1000 s nominal; goal 2000 s ⇒ ratio 0.5 ⇒ u=1.
  const auto s = spec_with(3.0e6, 3000.0, 0.0, 2000.0);
  Job j(s);
  EXPECT_DOUBLE_EQ(m.hypothetical_utility(j, 0_s, 3000_mhz), 1.0);
}

TEST(JobUtility, HypotheticalUtilityFallsWithWaiting) {
  JobUtilityModel m;
  const auto s = spec_with(3.0e6, 3000.0, 0.0, 2000.0);
  Job j(s);
  const double u0 = m.hypothetical_utility(j, 0_s, 3000_mhz);
  j.advance_to(1500_s);  // pending all along
  const double u1 = m.hypothetical_utility(j, 1500_s, 3000_mhz);
  j.advance_to(4000_s);
  const double u2 = m.hypothetical_utility(j, 4000_s, 3000_mhz);
  EXPECT_GT(u0, u1);
  EXPECT_GT(u1, u2);
  EXPECT_LT(u2, 0.0);  // goal blown even at max speed
}

TEST(JobUtility, HypotheticalUtilityMonotoneInSpeed) {
  JobUtilityModel m;
  const auto s = spec_with(3.0e6, 3000.0, 0.0, 2000.0);
  Job j(s);
  j.advance_to(500_s);
  double last = -1e9;
  for (double w = 100.0; w <= 3000.0; w += 100.0) {
    const double u = m.hypothetical_utility(j, 500_s, util::CpuMhz{w});
    ASSERT_GE(u, last - 1e-12);
    last = u;
  }
}

TEST(JobUtility, ZeroSpeedWithWorkLeftIsVeryNegative) {
  JobUtilityModel m;
  const auto s = spec_with(3.0e6, 3000.0, 0.0, 2000.0);
  Job j(s);
  EXPECT_LT(m.hypothetical_utility(j, 0_s, 0_mhz), -100.0);
}

TEST(JobUtility, FinishedJobUsesCompletionSemantics) {
  JobUtilityModel m;
  const auto s = spec_with(3.0e6, 3000.0, 0.0, 2000.0);
  Job j(s);
  j.set_phase(0_s, workload::JobPhase::kStarting);
  j.set_phase(0_s, workload::JobPhase::kRunning);
  j.set_speed(0_s, 3000_mhz);
  j.advance_to(1000_s);
  ASSERT_TRUE(j.finished());
  // Hypothetical utility of a finished job = utility at "now".
  EXPECT_DOUBLE_EQ(m.hypothetical_utility(j, 1000_s, 0_mhz), 1.0);
}

TEST(JobUtility, SpeedForUtilityRoundTrips) {
  JobUtilityModel m;
  const auto s = spec_with(3.0e6, 3000.0, 0.0, 4000.0);
  Job j(s);
  j.advance_to(200_s);
  for (double u : {0.9, 0.7, 0.4, 0.1}) {
    const util::CpuMhz w = m.speed_for_utility(j, 200_s, u);
    if (w.get() > 0.0 && w.get() < 3000.0) {
      EXPECT_NEAR(m.hypothetical_utility(j, 200_s, w), u, 1e-6) << "u=" << u;
    }
  }
}

TEST(JobUtility, SpeedForUnreachableUtilityIsMaxSpeed) {
  JobUtilityModel m;
  const auto s = spec_with(3.0e6, 3000.0, 0.0, 2000.0);
  Job j(s);
  j.advance_to(1800_s);  // even instant completion ⇒ ratio 0.9 ⇒ u≈0.46 max
  EXPECT_DOUBLE_EQ(m.speed_for_utility(j, 1800_s, 0.9).get(), 3000.0);
}

TEST(JobUtility, SpeedForVeryLowUtilityIsTiny) {
  JobUtilityModel m;
  const auto s = spec_with(3.0e6, 3000.0, 0.0, 2000.0);
  Job j(s);
  const util::CpuMhz w = m.speed_for_utility(j, 0_s, -5.0);
  EXPECT_LT(w.get(), 500.0);
  EXPECT_GT(w.get(), 0.0);
}

TEST(JobUtility, MaxAchievableUtilityDecaysOverTime) {
  JobUtilityModel m;
  const auto s = spec_with(3.0e6, 3000.0, 0.0, 2000.0);
  Job j(s);
  EXPECT_DOUBLE_EQ(m.max_achievable_utility(j, 0_s), 1.0);
  j.advance_to(3000_s);
  EXPECT_LT(m.max_achievable_utility(j, 3000_s), 0.4);
}

TEST(JobUtility, DemandForMaxUtility) {
  JobUtilityModel m;
  const auto s = spec_with(3.0e6, 3000.0, 0.0, 2000.0);
  Job j(s);
  // At t=0 the plateau (ratio 0.5 ⇒ finish by 1000 s) needs exactly
  // 3e6/1000 = 3000 MHz.
  EXPECT_DOUBLE_EQ(m.demand_for_max_utility(j, 0_s).get(), 3000.0);
  // Half the work done with plenty of time: needs less.
  Job j2(s);
  j2.set_phase(0_s, workload::JobPhase::kStarting);
  j2.set_phase(0_s, workload::JobPhase::kRunning);
  j2.set_speed(0_s, 3000_mhz);
  j2.advance_to(500_s);
  j2.set_speed(500_s, 0_mhz);
  EXPECT_NEAR(m.demand_for_max_utility(j2, 500_s).get(), 1.5e6 / 500.0, 1e-9);
  // Finished job demands nothing.
  Job j3(s);
  j3.set_phase(0_s, workload::JobPhase::kStarting);
  j3.set_phase(0_s, workload::JobPhase::kRunning);
  j3.set_speed(0_s, 3000_mhz);
  j3.advance_to(1000_s);
  EXPECT_DOUBLE_EQ(m.demand_for_max_utility(j3, 1000_s).get(), 0.0);
}

// Property sweep: inverse/forward consistency across waiting times.
class JobUtilityRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(JobUtilityRoundTrip, SpeedForUtilityIsConsistent) {
  JobUtilityModel m;
  const auto s = spec_with(3.0e6, 3000.0, 0.0, 4000.0);
  Job j(s);
  const double wait = GetParam();
  j.advance_to(util::Seconds{wait});
  const double u_max = m.max_achievable_utility(j, util::Seconds{wait});
  for (double frac : {0.95, 0.7, 0.4}) {
    const double u = u_max * frac - (1.0 - frac);  // spans below u_max
    const auto w = m.speed_for_utility(j, util::Seconds{wait}, u);
    const double achieved = m.hypothetical_utility(j, util::Seconds{wait}, w);
    // Achieved utility at the returned speed is at least u (or the speed
    // is clamped at max and u is unreachable).
    if (w.get() < 3000.0 - 1e-9) {
      ASSERT_GE(achieved, u - 1e-6) << "wait=" << wait << " u=" << u;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(WaitTimes, JobUtilityRoundTrip,
                         ::testing::Values(0.0, 500.0, 1500.0, 3000.0, 6000.0));
