// The hot-path overhaul (incremental node aggregates, presence bitsets,
// swap-removal, flat indices) must not change what the solver decides.
// These tests pin the optimized solver against the verbatim seed
// implementation preserved in bench/legacy/ — identical plans (same
// job→node assignments, same instance sets, same grants) and identical
// stats on structured fixtures and on randomized problems.

#include <gtest/gtest.h>

#include <vector>

#include "core/placement_solver.hpp"
#include "legacy/legacy_placement_solver.hpp"
#include "util/rng.hpp"

using namespace heteroplace;
using core::PlacementProblem;
using core::SolverApp;
using core::SolverConfig;
using core::SolverJob;
using core::SolverResult;
using util::CpuMhz;
using util::MemMb;
using util::NodeId;
using workload::JobPhase;

namespace {

void expect_same_result(const SolverResult& legacy, const SolverResult& opt,
                        const char* what) {
  EXPECT_EQ(legacy.stats.jobs_placed, opt.stats.jobs_placed) << what;
  EXPECT_EQ(legacy.stats.jobs_waiting, opt.stats.jobs_waiting) << what;
  EXPECT_EQ(legacy.stats.jobs_evicted, opt.stats.jobs_evicted) << what;
  EXPECT_EQ(legacy.stats.jobs_migrated, opt.stats.jobs_migrated) << what;
  EXPECT_EQ(legacy.stats.instances_total, opt.stats.instances_total) << what;
  EXPECT_EQ(legacy.stats.instances_added, opt.stats.instances_added) << what;
  EXPECT_EQ(legacy.stats.instances_dropped, opt.stats.instances_dropped) << what;

  ASSERT_EQ(legacy.plan.jobs.size(), opt.plan.jobs.size()) << what;
  for (std::size_t i = 0; i < legacy.plan.jobs.size(); ++i) {
    EXPECT_EQ(legacy.plan.jobs[i].job, opt.plan.jobs[i].job) << what << " job#" << i;
    EXPECT_EQ(legacy.plan.jobs[i].node, opt.plan.jobs[i].node) << what << " job#" << i;
    EXPECT_NEAR(legacy.plan.jobs[i].cpu.get(), opt.plan.jobs[i].cpu.get(), 1e-6)
        << what << " job#" << i;
  }
  ASSERT_EQ(legacy.plan.instances.size(), opt.plan.instances.size()) << what;
  for (std::size_t i = 0; i < legacy.plan.instances.size(); ++i) {
    EXPECT_EQ(legacy.plan.instances[i].app, opt.plan.instances[i].app) << what << " inst#" << i;
    EXPECT_EQ(legacy.plan.instances[i].node, opt.plan.instances[i].node) << what << " inst#" << i;
    EXPECT_NEAR(legacy.plan.instances[i].cpu.get(), opt.plan.instances[i].cpu.get(), 1e-6)
        << what << " inst#" << i;
  }
}

void expect_equivalent(const PlacementProblem& p, const SolverConfig& cfg, const char* what) {
  expect_same_result(bench::legacy::solve_placement_legacy(p, cfg), core::solve_placement(p, cfg),
                     what);
}

PlacementProblem make_cluster(int nodes, double cpu = 12000.0, double mem = 4096.0) {
  PlacementProblem p;
  for (int i = 0; i < nodes; ++i) {
    p.nodes.push_back({NodeId{static_cast<unsigned>(i)}, CpuMhz{cpu}, MemMb{mem}});
  }
  return p;
}

SolverJob make_job(unsigned id, double target, double mem = 1300.0) {
  SolverJob j;
  j.id = util::JobId{id};
  j.memory = MemMb{mem};
  j.max_speed = CpuMhz{3000.0};
  j.target = CpuMhz{target};
  j.urgency = target;
  j.phase = JobPhase::kPending;
  j.remaining = util::MhzSeconds{1e9};
  return j;
}

SolverApp make_app(unsigned id, double target, double inst_mem = 1024.0, int max_inst = 64) {
  SolverApp a;
  a.id = util::AppId{id};
  a.instance_memory = MemMb{inst_mem};
  a.max_instances = max_inst;
  a.max_cpu_per_instance = CpuMhz{12000.0};
  a.target = CpuMhz{target};
  return a;
}

}  // namespace

TEST(SolverLegacyEquivalence, StructuredFixtures) {
  {
    // Urgency-ordered packing under memory pressure.
    auto p = make_cluster(2);
    for (unsigned i = 0; i < 8; ++i) p.jobs.push_back(make_job(i, 400.0 + 330.0 * i));
    expect_equivalent(p, {}, "packing");
  }
  {
    // Instance growth with job eviction (two victims needed).
    auto p = make_cluster(1);
    for (unsigned i = 0; i < 3; ++i) {
      auto j = make_job(i, 500.0 + 1000.0 * i);
      j.phase = JobPhase::kRunning;
      j.current_node = NodeId{0};
      p.jobs.push_back(j);
    }
    p.apps.push_back(make_app(0, 6000.0, 2500.0));
    expect_equivalent(p, {}, "eviction");
  }
  {
    // Starvation rescue: relocation destination available.
    auto p = make_cluster(2);
    auto j = make_job(0, 2000.0);
    j.phase = JobPhase::kRunning;
    j.current_node = NodeId{0};
    p.jobs.push_back(j);
    auto a = make_app(0, 12000.0, 1024.0, 1);
    a.current.push_back({NodeId{0}, true});
    p.apps.push_back(a);
    expect_equivalent(p, {}, "rescue-relocate");
    SolverConfig no_mig;
    no_mig.allow_migration = false;
    expect_equivalent(p, no_mig, "rescue-suspend");
  }
  {
    // Multi-app shortfall fixup across a crowded cluster.
    auto p = make_cluster(4);
    for (unsigned i = 0; i < 10; ++i) {
      auto j = make_job(i, 800.0 + 217.0 * i);
      if (i < 6) {
        j.phase = JobPhase::kRunning;
        j.current_node = NodeId{i % 4};
      }
      p.jobs.push_back(j);
    }
    p.apps.push_back(make_app(0, 20000.0));
    p.apps.push_back(make_app(1, 9000.0, 512.0));
    expect_equivalent(p, {}, "shortfall");
    SolverConfig non_wc;
    non_wc.work_conserving = false;
    expect_equivalent(p, non_wc, "shortfall-nonwc");
  }
}

// Randomized equivalence. Urgencies are continuous random draws, so
// eviction-order ties (where the seed's unstable sort makes the choice
// arbitrary) almost surely do not occur.
class SolverLegacyFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverLegacyFuzz, RandomProblemsMatchSeedSolver) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 15; ++round) {
    const int n_nodes = 1 + static_cast<int>(rng.uniform_int(0, 7));
    auto p = make_cluster(n_nodes);
    const int n_jobs = static_cast<int>(rng.uniform_int(0, 30));
    for (int i = 0; i < n_jobs; ++i) {
      auto j = make_job(static_cast<unsigned>(i), rng.uniform(0.0, 3000.0),
                        rng.uniform(400.0, 2000.0));
      const double r = rng.uniform01();
      if (r < 0.4) {
        j.phase = JobPhase::kRunning;
        j.current_node = NodeId{static_cast<unsigned>(rng.uniform_int(0, n_nodes - 1))};
        j.movable = rng.chance(0.8);
        if (!j.movable) j.phase = JobPhase::kResuming;
      } else if (r < 0.55) {
        j.phase = JobPhase::kSuspended;
      }
      j.remaining = util::MhzSeconds{rng.uniform(1e3, 1e8)};
      p.jobs.push_back(j);
    }
    // Keep pre-existing placements memory-feasible (what a real cluster
    // guarantees) — same normalization as the solver fuzz test.
    std::vector<double> mem_used(static_cast<std::size_t>(n_nodes), 0.0);
    for (auto& j : p.jobs) {
      if (j.current_node.valid()) {
        auto& used = mem_used[j.current_node.get()];
        if (used + j.memory.get() > 4096.0) {
          j.current_node = NodeId{};
          j.phase = JobPhase::kPending;
          j.movable = true;
        } else {
          used += j.memory.get();
        }
      }
    }
    const int n_apps = static_cast<int>(rng.uniform_int(0, 2));
    for (int a = 0; a < n_apps; ++a) {
      p.apps.push_back(make_app(static_cast<unsigned>(a), rng.uniform(0.0, 40000.0)));
    }
    SolverConfig cfg;
    cfg.allow_migration = rng.chance(0.8);
    cfg.work_conserving = rng.chance(0.8);
    expect_equivalent(p, cfg, "fuzz");
    if (::testing::Test::HasFailure()) return;  // one divergent round is enough output
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverLegacyFuzz,
                         ::testing::Values(3u, 17u, 29u, 71u, 101u, 555u));
