// Tests for the queueing performance model, including the request-level
// DES validation of the analytic formulas.

#include "perfmodel/mm1.hpp"
#include "perfmodel/request_sim.hpp"
#include "perfmodel/tx_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

using namespace heteroplace;
using util::CpuMhz;
using util::Seconds;

// --- M/M/1 formulas -------------------------------------------------------------

TEST(Mm1, KnownValues) {
  // λ=8, μ=10: ρ=0.8, RT=1/(10-8)=0.5, L=4, Wq=0.4.
  EXPECT_DOUBLE_EQ(perfmodel::mm1_utilization(8.0, 10.0), 0.8);
  EXPECT_DOUBLE_EQ(perfmodel::mm1_response_time(8.0, 10.0), 0.5);
  EXPECT_DOUBLE_EQ(perfmodel::mm1_number_in_system(8.0, 10.0), 4.0);
  EXPECT_DOUBLE_EQ(perfmodel::mm1_wait_time(8.0, 10.0), 0.4);
}

TEST(Mm1, SaturationIsInfinite) {
  EXPECT_TRUE(std::isinf(perfmodel::mm1_response_time(10.0, 10.0)));
  EXPECT_TRUE(std::isinf(perfmodel::mm1_response_time(12.0, 10.0)));
  EXPECT_TRUE(std::isinf(perfmodel::mm1_number_in_system(10.0, 10.0)));
}

TEST(Mm1, InverseRelationsRoundTrip) {
  const double mu = 10.0;
  const double rt = perfmodel::mm1_response_time(6.0, mu);
  EXPECT_NEAR(perfmodel::mm1_lambda_for_response_time(mu, rt), 6.0, 1e-12);
  EXPECT_NEAR(perfmodel::mm1_mu_for_response_time(6.0, rt), mu, 1e-12);
}

// --- Transactional model ----------------------------------------------------------

TEST(TxModel, UnsaturatedMatchesMm1) {
  // d=5000 MHz·s, ω=150000 ⇒ μ=30 req/s; λ=24 ⇒ RT=1/6.
  const auto r = perfmodel::evaluate_tx(24.0, 5000.0, CpuMhz{150000.0}, 0.9);
  EXPECT_FALSE(r.saturated);
  EXPECT_DOUBLE_EQ(r.admitted_rate, 24.0);
  EXPECT_DOUBLE_EQ(r.throughput_ratio, 1.0);
  EXPECT_NEAR(r.response_time.get(), 1.0 / 6.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.utilization, 0.8);
}

TEST(TxModel, FlowControlCapsAdmission) {
  // ω=100000 ⇒ μ=20; cap 0.9 ⇒ admit 18 < λ=24.
  const auto r = perfmodel::evaluate_tx(24.0, 5000.0, CpuMhz{100000.0}, 0.9);
  EXPECT_TRUE(r.saturated);
  EXPECT_DOUBLE_EQ(r.admitted_rate, 18.0);
  EXPECT_DOUBLE_EQ(r.throughput_ratio, 0.75);
  EXPECT_NEAR(r.response_time.get(), 1.0 / 2.0, 1e-12);  // 1/(20-18)
  EXPECT_NEAR(r.utilization, 0.9, 1e-12);
}

TEST(TxModel, ZeroCapacityShedsEverything) {
  const auto r = perfmodel::evaluate_tx(24.0, 5000.0, CpuMhz{0.0}, 0.9);
  EXPECT_TRUE(r.saturated);
  EXPECT_DOUBLE_EQ(r.admitted_rate, 0.0);
  EXPECT_TRUE(std::isinf(r.response_time.get()));
}

TEST(TxModel, ZeroLoadIsInstantaneous) {
  const auto r = perfmodel::evaluate_tx(0.0, 5000.0, CpuMhz{50000.0}, 0.9);
  EXPECT_FALSE(r.saturated);
  EXPECT_DOUBLE_EQ(r.throughput_ratio, 1.0);
  EXPECT_DOUBLE_EQ(r.response_time.get(), 5000.0 / 50000.0);  // bare service time
}

TEST(TxModel, CapacityForResponseTimeRoundTrips) {
  const auto cap = perfmodel::capacity_for_response_time(24.0, 5000.0, Seconds{0.25});
  const auto r = perfmodel::evaluate_tx(24.0, 5000.0, cap, 1.0);
  EXPECT_NEAR(r.response_time.get(), 0.25, 1e-9);
}

// Property: response time is monotone decreasing in capacity across the
// flow-control boundary, and continuous at it.
class TxMonotone : public ::testing::TestWithParam<double> {};

TEST_P(TxMonotone, ResponseTimeDecreasesWithCapacity) {
  const double lambda = GetParam();
  double last_rt = 1e300;
  for (double w = 20000.0; w <= 400000.0; w += 5000.0) {
    const auto r = perfmodel::evaluate_tx(lambda, 5000.0, CpuMhz{w}, 0.9);
    ASSERT_LE(r.response_time.get(), last_rt + 1e-9)
        << "RT must not increase with capacity at ω=" << w;
    last_rt = r.response_time.get();
  }
}

TEST_P(TxMonotone, ThroughputRatioNondecreasingWithCapacity) {
  const double lambda = GetParam();
  double last = -1.0;
  for (double w = 20000.0; w <= 400000.0; w += 5000.0) {
    const auto r = perfmodel::evaluate_tx(lambda, 5000.0, CpuMhz{w}, 0.9);
    ASSERT_GE(r.throughput_ratio, last - 1e-12);
    last = r.throughput_ratio;
  }
}

INSTANTIATE_TEST_SUITE_P(Lambdas, TxMonotone, ::testing::Values(4.0, 12.0, 24.0, 48.0));

// --- Request-level DES validation ----------------------------------------------------
// The discrete-event M/M/1 simulation must agree with the closed form.
// This validates both the analytic plant model and the sim engine.

struct Mm1Case {
  double lambda;
  double capacity;
};

class RequestSimMatchesFormula : public ::testing::TestWithParam<Mm1Case> {};

TEST_P(RequestSimMatchesFormula, MeanResponseTime) {
  const auto [lambda, capacity] = GetParam();
  perfmodel::RequestSimConfig cfg;
  cfg.lambda = lambda;
  cfg.service_demand = 600.0;
  cfg.capacity_mhz = capacity;
  cfg.rho_cap = 1.0;  // no admission control
  cfg.horizon_s = 60000.0;
  cfg.warmup_s = 2000.0;
  cfg.seed = 1234;
  const auto res = perfmodel::run_request_sim(cfg);

  const double mu = capacity / 600.0;
  const double expected = perfmodel::mm1_response_time(lambda, mu);
  ASSERT_GT(res.response_time.count(), 1000u);
  // 10% tolerance: M/M/1 RT estimators have heavy tails.
  EXPECT_NEAR(res.response_time.mean(), expected, 0.10 * expected)
      << "λ=" << lambda << " ω=" << capacity;
  EXPECT_EQ(res.shed, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Loads, RequestSimMatchesFormula,
    ::testing::Values(Mm1Case{5.0, 12000.0},   // ρ=0.25
                      Mm1Case{10.0, 12000.0},  // ρ=0.5
                      Mm1Case{15.0, 12000.0},  // ρ=0.75
                      Mm1Case{10.0, 24000.0}   // ρ=0.25, faster server
                      ));

TEST(RequestSim, AdmissionControlShedsUnderOverload) {
  perfmodel::RequestSimConfig cfg;
  cfg.lambda = 40.0;           // demand 40 > μ=20: heavily overloaded
  cfg.service_demand = 600.0;
  cfg.capacity_mhz = 12000.0;
  cfg.rho_cap = 0.9;
  cfg.horizon_s = 20000.0;
  cfg.seed = 7;
  const auto res = perfmodel::run_request_sim(cfg);
  EXPECT_GT(res.shed, 0);
  // Completed throughput is near the admission cap, not the offered rate.
  EXPECT_LT(res.throughput_ratio(), 0.65);
  // Response times stay finite and bounded by the queue cap.
  EXPECT_LT(res.response_time.mean(), 5.0);
}

TEST(RequestSim, DeterministicForSeed) {
  perfmodel::RequestSimConfig cfg;
  cfg.horizon_s = 5000.0;
  const auto a = perfmodel::run_request_sim(cfg);
  const auto b = perfmodel::run_request_sim(cfg);
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.response_time.mean(), b.response_time.mean());
}
