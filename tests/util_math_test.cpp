// Tests for util/math: bisection root finding and monotone inversion.

#include "util/math.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace hu = heteroplace::util;

TEST(AlmostEqual, ExactAndNear) {
  EXPECT_TRUE(hu::almost_equal(1.0, 1.0));
  EXPECT_TRUE(hu::almost_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(hu::almost_equal(1.0, 1.1));
}

TEST(AlmostEqual, RelativeToleranceForLargeNumbers) {
  EXPECT_TRUE(hu::almost_equal(1e12, 1e12 * (1.0 + 1e-10)));
  EXPECT_FALSE(hu::almost_equal(1e12, 1.001e12));
}

TEST(Bisect, FindsRootOfLinearFunction) {
  const auto r = hu::bisect_increasing([](double x) { return x - 3.0; }, 0.0, 10.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 3.0, 1e-8);
}

TEST(Bisect, FindsRootOfNonlinearFunction) {
  const auto r = hu::bisect_increasing([](double x) { return x * x * x - 8.0; }, 0.0, 10.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 2.0, 1e-7);
}

TEST(Bisect, RootBelowIntervalClampsToLo) {
  const auto r = hu::bisect_increasing([](double x) { return x + 5.0; }, 0.0, 10.0);
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.x, 0.0);
}

TEST(Bisect, RootAboveIntervalClampsToHi) {
  const auto r = hu::bisect_increasing([](double x) { return x - 50.0; }, 0.0, 10.0);
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.x, 10.0);
}

TEST(Bisect, HandlesFlatRegions) {
  // Piecewise: -1 below 2, 0 on [2,4], +1 above 4 — any x in [2,4] is a root.
  const auto f = [](double x) { return x < 2.0 ? -1.0 : (x > 4.0 ? 1.0 : 0.0); };
  const auto r = hu::bisect_increasing(f, 0.0, 10.0);
  EXPECT_TRUE(r.converged);
  EXPECT_GE(r.x, 2.0 - 1e-6);
  EXPECT_LE(r.x, 4.0 + 1e-6);
}

TEST(InvertIncreasing, RoundTripsThroughTheFunction) {
  const auto g = [](double x) { return std::sqrt(x); };
  const double x = hu::invert_increasing(g, 1.5, 0.0, 100.0);
  EXPECT_NEAR(g(x), 1.5, 1e-6);
}

TEST(InvertIncreasing, TargetBelowRangeReturnsLo) {
  const auto g = [](double x) { return x; };
  EXPECT_DOUBLE_EQ(hu::invert_increasing(g, -5.0, 0.0, 10.0), 0.0);
}

TEST(InvertIncreasing, TargetAboveRangeReturnsHi) {
  const auto g = [](double x) { return x; };
  EXPECT_DOUBLE_EQ(hu::invert_increasing(g, 25.0, 0.0, 10.0), 10.0);
}

TEST(InvertDecreasing, RoundTripsThroughTheFunction) {
  const auto g = [](double x) { return 10.0 - 2.0 * x; };
  const double x = hu::invert_decreasing(g, 4.0, 0.0, 10.0);
  EXPECT_NEAR(x, 3.0, 1e-7);
}

TEST(InvertDecreasing, ClampsOutOfRangeTargets) {
  const auto g = [](double x) { return 10.0 - x; };
  EXPECT_DOUBLE_EQ(hu::invert_decreasing(g, 100.0, 0.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(hu::invert_decreasing(g, -100.0, 0.0, 10.0), 10.0);
}

TEST(LerpAt, InterpolatesAndExtrapolates) {
  EXPECT_DOUBLE_EQ(hu::lerp_at(0.0, 0.0, 10.0, 100.0, 5.0), 50.0);
  EXPECT_DOUBLE_EQ(hu::lerp_at(0.0, 0.0, 10.0, 100.0, 20.0), 200.0);  // extrapolation
  EXPECT_DOUBLE_EQ(hu::lerp_at(1.0, 7.0, 1.0, 9.0, 1.0), 7.0);        // degenerate segment
}

// Property sweep: inversion round-trips for a family of monotone functions.
class InvertRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(InvertRoundTrip, ExpCurve) {
  const double k = GetParam();
  const auto g = [k](double x) { return 1.0 - std::exp(-k * x); };
  for (double target : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double x = hu::invert_increasing(g, target, 0.0, 1000.0, 1e-10);
    EXPECT_NEAR(g(x), target, 1e-6) << "k=" << k << " target=" << target;
  }
}

INSTANTIATE_TEST_SUITE_P(Steepness, InvertRoundTrip,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0, 5.0, 10.0));
