// Brute-force comparison for the placement solver.
//
// On instances small enough to enumerate every job→node assignment, the
// heuristic's plan must come close to the best achievable "target
// satisfaction" (total CPU granted toward the equalized targets, the
// quantity the discrete stage tries to realize). The packing problem is
// NP-hard and the heuristic is greedy and stability-oriented, so we allow
// a documented optimality gap (worst observed across the seeds below:
// ~88% of optimal; the bound asserts 85%).

#include "core/placement_solver.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

using namespace heteroplace;
using core::PlacementProblem;
using core::SolverJob;
using core::SolverNode;
using util::CpuMhz;
using util::MemMb;
using util::NodeId;

namespace {

/// Best achievable Σ min(grant, target) over all assignments of jobs to
/// nodes (node index -1 = not placed), honoring memory, with per-node CPU
/// distributed optimally for this objective (grant = target when the node
/// can cover all local targets, else proportional — matching the solver's
/// fill discipline).
double brute_force_best(const PlacementProblem& p) {
  const std::size_t n_jobs = p.jobs.size();
  const std::size_t n_nodes = p.nodes.size();
  std::vector<int> assign(n_jobs, -1);
  double best = 0.0;

  const auto evaluate = [&]() -> double {
    std::vector<double> mem(n_nodes, 0.0);
    std::vector<double> want(n_nodes, 0.0);
    for (std::size_t j = 0; j < n_jobs; ++j) {
      if (assign[j] < 0) continue;
      const auto ni = static_cast<std::size_t>(assign[j]);
      mem[ni] += p.jobs[j].memory.get();
      if (mem[ni] > p.nodes[ni].mem_capacity.get() + 1e-9) return -1.0;  // infeasible
      want[ni] += p.jobs[j].target.get();
    }
    double satisfied = 0.0;
    for (std::size_t ni = 0; ni < n_nodes; ++ni) {
      satisfied += std::min(want[ni], p.nodes[ni].cpu_capacity.get());
    }
    return satisfied;
  };

  // Odometer enumeration over (n_nodes + 1)^n_jobs assignments.
  while (true) {
    const double v = evaluate();
    if (v > best) best = v;
    std::size_t pos = 0;
    while (pos < n_jobs) {
      if (++assign[pos] < static_cast<int>(n_nodes)) break;
      assign[pos] = -1;
      ++pos;
    }
    if (pos == n_jobs) break;
  }
  return best;
}

double plan_satisfaction(const PlacementProblem& p, const cluster::PlacementPlan& plan) {
  double satisfied = 0.0;
  for (const auto& jp : plan.jobs) {
    for (const auto& j : p.jobs) {
      if (j.id == jp.job) {
        satisfied += std::min(jp.cpu.get(), j.target.get());
        break;
      }
    }
  }
  return satisfied;
}

}  // namespace

class SolverVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverVsBruteForce, WithinTenPercentOfOptimal) {
  util::Rng rng(GetParam());
  for (int round = 0; round < 15; ++round) {
    PlacementProblem p;
    const int n_nodes = 2 + static_cast<int>(rng.uniform_int(0, 1));  // 2..3
    for (int i = 0; i < n_nodes; ++i) {
      p.nodes.push_back({NodeId{static_cast<unsigned>(i)}, CpuMhz{rng.uniform(4000.0, 12000.0)},
                         MemMb{rng.uniform(2000.0, 4200.0)}});
    }
    const int n_jobs = 3 + static_cast<int>(rng.uniform_int(0, 2));  // 3..5
    for (int i = 0; i < n_jobs; ++i) {
      SolverJob j;
      j.id = util::JobId{static_cast<unsigned>(i)};
      j.memory = MemMb{rng.uniform(600.0, 1600.0)};
      j.max_speed = CpuMhz{3000.0};
      j.target = CpuMhz{rng.uniform(300.0, 3000.0)};
      j.urgency = j.target.get();
      j.phase = workload::JobPhase::kPending;
      j.remaining = util::MhzSeconds{1e9};
      p.jobs.push_back(j);
    }

    core::SolverConfig cfg;
    cfg.work_conserving = false;  // compare pure target satisfaction
    const auto result = core::solve_placement(p, cfg);
    const double heuristic = plan_satisfaction(p, result.plan);
    const double optimal = brute_force_best(p);
    ASSERT_GE(optimal, heuristic - 1e-6) << "brute force must dominate";
    if (optimal > 0.0) {
      EXPECT_GE(heuristic, 0.85 * optimal)
          << "seed " << GetParam() << " round " << round << ": heuristic " << heuristic
          << " vs optimal " << optimal;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverVsBruteForce, ::testing::Values(2u, 19u, 101u, 777u));
