// Migration subsystem tests: checkpoint/restore fidelity, the transfer
// cost model, drain/rebalance policy proposals, the end-to-end drain of
// a domain (suspend → checkpoint → transfer → resume elsewhere, zero
// work lost), migration determinism across reruns, and the pin that a
// migration-disabled federated run is bit-identical to the
// pre-migration runner output.

#include "migration/manager.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "core/utility_policy.hpp"
#include "migration/checkpoint.hpp"
#include "migration/policy.hpp"
#include "migration/transfer_model.hpp"
#include "scenario/config_loader.hpp"
#include "scenario/federation_experiment.hpp"
#include "util/config.hpp"
#include "utility/utility_fn.hpp"

using namespace heteroplace;
using namespace heteroplace::util::literals;

namespace {

std::unique_ptr<core::UtilityDrivenPolicy> make_policy() {
  return std::make_unique<core::UtilityDrivenPolicy>(
      std::make_shared<utility::JobUtilityModel>(), std::make_shared<utility::TxUtilityModel>());
}

workload::JobSpec make_job(unsigned id, double submit = 0.0) {
  workload::JobSpec s;
  s.id = util::JobId{id};
  s.work = util::MhzSeconds{3.0e6};  // 1000 s at full speed
  s.max_speed = 3000_mhz;
  s.memory = 1300_mb;
  s.submit_time = util::Seconds{submit};
  s.completion_goal = util::Seconds{8000.0};
  return s;
}

workload::JobSpec make_sized_job(unsigned id, double work_mhz_s, double memory_mb) {
  workload::JobSpec s = make_job(id);
  s.work = util::MhzSeconds{work_mhz_s};
  s.memory = util::MemMb{memory_mb};
  return s;
}

void add_nodes(federation::Domain& d, int n) {
  d.world().cluster().add_nodes(n, cluster::Resources{12000_mhz, 4096_mb});
}

}  // namespace

// --- transfer model ----------------------------------------------------------

TEST(TransferModel, DefaultsAndOverrides) {
  migration::TransferModel m{100.0, 4.0};
  // Default link: latency + size / bandwidth.
  EXPECT_DOUBLE_EQ(m.transfer_time(0, 1, 1000_mb).get(), 4.0 + 10.0);
  // Directed override applies one way only.
  m.set_link(0, 1, 500.0, 1.0);
  EXPECT_DOUBLE_EQ(m.transfer_time(0, 1, 1000_mb).get(), 1.0 + 2.0);
  EXPECT_DOUBLE_EQ(m.transfer_time(1, 0, 1000_mb).get(), 4.0 + 10.0);
  // Partial override through the single-component setters: the other
  // component keeps the default.
  m.set_link_latency(1, 2, 0.5);
  EXPECT_DOUBLE_EQ(m.transfer_time(1, 2, 200_mb).get(), 0.5 + 2.0);
  m.set_link_bandwidth(2, 0, 50.0);
  EXPECT_DOUBLE_EQ(m.transfer_time(2, 0, 200_mb).get(), 4.0 + 4.0);
}

TEST(TransferModel, UplinkCapacityDefaultsAndOverrides) {
  migration::TransferModel m{100.0, 4.0};
  EXPECT_DOUBLE_EQ(m.uplink_bandwidth_mb_per_s(0), 100.0);
  m.set_uplink_bandwidth(0, 40.0);
  EXPECT_DOUBLE_EQ(m.uplink_bandwidth_mb_per_s(0), 40.0);
  EXPECT_DOUBLE_EQ(m.uplink_bandwidth_mb_per_s(1), 100.0);
  EXPECT_THROW(m.set_uplink_bandwidth(1, 0.0), std::invalid_argument);
  EXPECT_THROW(m.set_uplink_bandwidth(1, -5.0), std::invalid_argument);
}

TEST(TransferModel, IntraDomainAndEmptyImagesAreFree) {
  migration::TransferModel m;
  EXPECT_DOUBLE_EQ(m.transfer_time(2, 2, 4096_mb).get(), 0.0);
  EXPECT_DOUBLE_EQ(m.transfer_time(0, 1, 0_mb).get(), 0.0);
}

TEST(TransferModel, RejectsBadParameters) {
  EXPECT_THROW(migration::TransferModel(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(migration::TransferModel(-10.0, 1.0), std::invalid_argument);
  EXPECT_THROW(migration::TransferModel(10.0, -1.0), std::invalid_argument);
  migration::TransferModel m;
  EXPECT_THROW(m.set_link(1, 1, 10.0, 0.0), std::invalid_argument);
  // Regression: negative components used to be accepted at set time and
  // silently fell back to the defaults at read time. They must fail loud.
  EXPECT_THROW(m.set_link(0, 1, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(m.set_link(0, 1, -400.0, 1.0), std::invalid_argument);
  EXPECT_THROW(m.set_link(0, 1, 100.0, -0.5), std::invalid_argument);
  EXPECT_THROW(m.set_link_bandwidth(0, 1, -1.0), std::invalid_argument);
  EXPECT_THROW(m.set_link_latency(0, 1, -1.0), std::invalid_argument);
  EXPECT_THROW(m.set_link_bandwidth(1, 1, 10.0), std::invalid_argument);
  EXPECT_THROW(m.set_link_latency(1, 1, 1.0), std::invalid_argument);
  // Nothing stuck: the rejected sets left the model untouched.
  EXPECT_DOUBLE_EQ(m.transfer_time(0, 1, 125_mb).get(), 2.0 + 1.0);
}

// --- checkpoint/restore ------------------------------------------------------

TEST(Checkpoint, RoundTripPreservesProgressAndBookkeeping) {
  workload::Job job{make_job(7)};
  job.set_phase(0_s, workload::JobPhase::kRunning);
  job.set_speed(0_s, 3000_mhz);
  job.advance_to(util::Seconds{400.0});  // 1.2e6 MHz·s done
  job.set_phase(util::Seconds{400.0}, workload::JobPhase::kSuspended);
  job.count_suspend();

  const auto ckpt = migration::checkpoint_job(job, /*from_domain=*/1, util::Seconds{415.0});
  EXPECT_TRUE(ckpt.has_image);
  EXPECT_DOUBLE_EQ(ckpt.image_size.get(), 1300.0);
  EXPECT_DOUBLE_EQ(ckpt.done.get(), 1.2e6);
  EXPECT_EQ(ckpt.from_domain, 1u);

  workload::Job restored = migration::restore_job(ckpt, util::Seconds{500.0});
  EXPECT_EQ(restored.phase(), workload::JobPhase::kSuspended);
  EXPECT_DOUBLE_EQ(restored.done().get(), job.done().get());
  EXPECT_DOUBLE_EQ(restored.remaining().get(), job.remaining().get());
  EXPECT_EQ(restored.suspend_count(), 1);
  EXPECT_EQ(restored.id(), job.id());
  // No phantom progress accrues over the dead time.
  restored.advance_to(util::Seconds{2000.0});
  EXPECT_DOUBLE_EQ(restored.done().get(), 1.2e6);
}

TEST(Checkpoint, PendingJobHasNoImage) {
  workload::Job job{make_job(3)};
  const auto ckpt = migration::checkpoint_job(job, 0, 0_s);
  EXPECT_FALSE(ckpt.has_image);
  EXPECT_DOUBLE_EQ(ckpt.image_size.get(), 0.0);
  workload::Job restored = migration::restore_job(ckpt, 10_s);
  EXPECT_EQ(restored.phase(), workload::JobPhase::kPending);
}

TEST(Checkpoint, RejectsTransitioningJobs) {
  workload::Job job{make_job(4)};
  job.set_phase(0_s, workload::JobPhase::kStarting);
  EXPECT_THROW((void)migration::checkpoint_job(job, 0, 0_s), std::logic_error);
}

// --- policies ----------------------------------------------------------------

namespace {

/// Federation with three 2-node domains and `jobs` pending jobs routed in.
struct PolicyFixture {
  sim::Engine engine;
  federation::Federation fed;

  explicit PolicyFixture(int jobs) : fed(engine, federation::make_router("capacity-weighted")) {
    for (int i = 0; i < 3; ++i) {
      add_nodes(fed.add_domain("d" + std::to_string(i), make_policy()), 2);
    }
    for (int id = 0; id < jobs; ++id) fed.submit_job(make_job(static_cast<unsigned>(id)));
  }
};

}  // namespace

TEST(DrainPolicy, EvacuatesOnlyDrainedDomainsToHealthyOnes) {
  PolicyFixture fx{9};  // 3 jobs per domain (equal capacity round-robin)
  fx.fed.set_domain_weight(1, 0.0);

  migration::DrainPolicy policy;
  const auto status = fx.fed.status(0_s);
  const auto moves = policy.propose(fx.fed, status, 0_s, /*budget=*/100);

  ASSERT_EQ(moves.size(), 3u);  // exactly domain 1's jobs
  for (const auto& mv : moves) {
    EXPECT_EQ(mv.from, 1u);
    EXPECT_NE(mv.to, 1u);
    EXPECT_GT(fx.fed.domain(mv.to).weight(), 0.0) << "moved into a drained domain";
    EXPECT_EQ(fx.fed.job_domain(mv.job), 1u);
  }
  // Assignments spread over both healthy destinations.
  std::set<std::size_t> dests;
  for (const auto& mv : moves) dests.insert(mv.to);
  EXPECT_EQ(dests.size(), 2u);
}

TEST(DrainPolicy, RespectsBudgetAndHealthyFederationIsQuiet) {
  PolicyFixture fx{9};
  migration::DrainPolicy policy;
  EXPECT_TRUE(policy.propose(fx.fed, fx.fed.status(0_s), 0_s, 100).empty());

  fx.fed.set_domain_weight(0, 0.0);
  EXPECT_EQ(policy.propose(fx.fed, fx.fed.status(0_s), 0_s, 2).size(), 2u);
}

TEST(DrainPolicy, NoHealthyDestinationProposesNothing) {
  PolicyFixture fx{6};
  for (int i = 0; i < 3; ++i) fx.fed.set_domain_weight(i, 0.0);
  migration::DrainPolicy policy;
  EXPECT_TRUE(policy.propose(fx.fed, fx.fed.status(0_s), 0_s, 100).empty());
}

TEST(RebalancePolicy, MovesFromOverloadedToUnderloadedOnly) {
  // Lopsided: all 9 jobs in domain 0 (route before others exist is not
  // possible through the router, so craft via sticky... simpler: three
  // domains, drain 1 and 2 while submitting so everything lands on 0).
  sim::Engine engine;
  federation::Federation fed(engine, federation::make_router("least-loaded"));
  for (int i = 0; i < 3; ++i) add_nodes(fed.add_domain("d" + std::to_string(i), make_policy()), 2);
  fed.set_domain_weight(1, 0.0);
  fed.set_domain_weight(2, 0.0);
  for (unsigned id = 0; id < 9; ++id) fed.submit_job(make_job(id));
  fed.set_domain_weight(1, 1.0);
  fed.set_domain_weight(2, 1.0);

  // Domain 0: 9 × 3000 MHz offered on 24000 MHz effective → 1.125 > 1.1.
  migration::PolicyConfig cfg;
  const auto moves =
      migration::RebalancePolicy{cfg}.propose(fed, fed.status(0_s), 0_s, /*budget=*/100);
  ASSERT_FALSE(moves.empty());
  for (const auto& mv : moves) {
    EXPECT_EQ(mv.from, 0u);
    EXPECT_NE(mv.to, 0u);
  }
  // It stops once the source dips below the high watermark: moving one
  // job leaves 8 × 3000 / 24000 = 1.0 < 1.1.
  EXPECT_EQ(moves.size(), 1u);
}

TEST(DrainPolicy, CostSelectionRanksByImagePerRemainingWork) {
  // One drained domain, one healthy destination. Jobs differ in image
  // size and remaining work; a pending job rides along for free.
  sim::Engine engine;
  federation::Federation fed(engine, federation::make_router("least-loaded"));
  for (int i = 0; i < 2; ++i) add_nodes(fed.add_domain("d" + std::to_string(i), make_policy()), 2);
  fed.set_domain_weight(1, 0.0);
  // cost = image MB / remaining seconds at full speed:
  fed.submit_job(make_sized_job(0, 3.0e6, 2000.0));  // 2000 / 1000 s → 2.0
  fed.submit_job(make_sized_job(1, 1.5e6, 500.0));   // 500 / 500 s   → 1.0
  fed.submit_job(make_sized_job(2, 3.0e6, 1500.0));  // 1500 / 1000 s → 1.5
  fed.submit_job(make_sized_job(3, 3.0e6, 4000.0));  // pending: no image → 0
  fed.set_domain_weight(1, 1.0);
  ASSERT_EQ(fed.jobs_per_domain()[0], 4);
  // Jobs 0-2 "run" (they would carry a VM image); job 3 stays pending.
  for (unsigned id = 0; id < 3; ++id) {
    fed.domain(0).world().job(util::JobId{id}).set_phase(0_s, workload::JobPhase::kRunning);
  }
  fed.set_domain_weight(0, 0.0);  // drain the hosting domain

  migration::PolicyConfig fifo_cfg;
  const auto fifo =
      migration::DrainPolicy{fifo_cfg}.propose(fed, fed.status(0_s), 0_s, /*budget=*/100);
  ASSERT_EQ(fifo.size(), 4u);
  for (unsigned i = 0; i < 4; ++i) EXPECT_EQ(fifo[i].job, util::JobId{i}) << "fifo order";

  migration::PolicyConfig cost_cfg;
  cost_cfg.selection = migration::SelectionMode::kCost;
  const auto cost =
      migration::DrainPolicy{cost_cfg}.propose(fed, fed.status(0_s), 0_s, /*budget=*/100);
  ASSERT_EQ(cost.size(), 4u);
  EXPECT_EQ(cost[0].job, util::JobId{3});  // free pending move leads
  EXPECT_EQ(cost[1].job, util::JobId{1});
  EXPECT_EQ(cost[2].job, util::JobId{2});
  EXPECT_EQ(cost[3].job, util::JobId{0});
}

TEST(RebalancePolicy, CostSelectionPicksCheapestMoveFirst) {
  sim::Engine engine;
  federation::Federation fed(engine, federation::make_router("least-loaded"));
  for (int i = 0; i < 2; ++i) add_nodes(fed.add_domain("d" + std::to_string(i), make_policy()), 2);
  fed.set_domain_weight(1, 0.0);
  fed.submit_job(make_sized_job(0, 3.0e6, 2000.0));  // cost 2.0
  fed.submit_job(make_sized_job(1, 3.0e6, 800.0));   // cost 0.8
  for (unsigned id = 0; id < 2; ++id) fed.submit_job(make_job(10 + id));  // load filler
  fed.set_domain_weight(1, 1.0);
  for (util::JobId id : fed.domain(0).world().job_order()) {
    fed.domain(0).world().job(id).set_phase(0_s, workload::JobPhase::kRunning);
  }
  // d0: 4 × 3000 MHz on 24000 effective → 0.5… not overloaded; shrink
  // the watermarks so d0 counts as overloaded and d1 as underloaded.
  migration::PolicyConfig cfg;
  cfg.high_watermark = 0.4;
  cfg.low_watermark = 0.2;

  const auto fifo = migration::RebalancePolicy{cfg}.propose(fed, fed.status(0_s), 0_s, 1);
  ASSERT_EQ(fifo.size(), 1u);
  EXPECT_EQ(fifo[0].job, util::JobId{0});  // list order

  cfg.selection = migration::SelectionMode::kCost;
  const auto cost = migration::RebalancePolicy{cfg}.propose(fed, fed.status(0_s), 0_s, 1);
  ASSERT_EQ(cost.size(), 1u);
  EXPECT_EQ(cost[0].job, util::JobId{1});  // cheapest image per remaining second
}

TEST(DrainPolicy, TwoDrainedDomainsBothEvacuateInOnePass) {
  // Pins the loop structure: one pass must propose every drained
  // domain's jobs, not stop at the first domain (the proposal loop used
  // to `return` on a no-destination job mid-pass — equivalent today
  // because destination eligibility is source-independent, but a
  // landmine once destination choice becomes job-aware).
  PolicyFixture fx{9};  // 3 jobs per domain
  fx.fed.set_domain_weight(0, 0.0);
  fx.fed.set_domain_weight(1, 0.0);

  migration::DrainPolicy policy;
  const auto moves = policy.propose(fx.fed, fx.fed.status(0_s), 0_s, /*budget=*/100);
  ASSERT_EQ(moves.size(), 6u);  // all of d0's and d1's jobs
  std::size_t from_d0 = 0;
  std::size_t from_d1 = 0;
  for (const auto& mv : moves) {
    EXPECT_EQ(mv.to, 2u) << "only healthy destination";
    if (mv.from == 0) ++from_d0;
    if (mv.from == 1) ++from_d1;
  }
  EXPECT_EQ(from_d0, 3u);
  EXPECT_EQ(from_d1, 3u);
}

TEST(MigrationPolicyFactory, NamesAndComposite) {
  EXPECT_EQ(migration::make_migration_policy("drain")->name(), "drain");
  EXPECT_EQ(migration::make_migration_policy("rebalance")->name(), "rebalance");
  EXPECT_EQ(migration::make_migration_policy("drain+rebalance")->name(), "drain+rebalance");
  EXPECT_THROW(migration::make_migration_policy("teleport"), std::invalid_argument);
}

// --- end-to-end drain (direct federation) ------------------------------------

TEST(MigrationIntegration, DrainEvacuatesRunningJobsWithZeroWorkLost) {
  sim::Engine engine;
  federation::Federation fed(engine, federation::make_router("least-loaded"));
  for (int i = 0; i < 3; ++i) add_nodes(fed.add_domain("d" + std::to_string(i), make_policy()), 2);

  migration::MigrationOptions opts;
  opts.check_interval = util::Seconds{60.0};
  migration::MigrationManager mgr(fed, migration::TransferModel{},
                                  migration::make_migration_policy("drain"), opts);

  for (unsigned id = 0; id < 6; ++id) {
    const auto spec = make_job(id);
    engine.schedule_at(0_s, sim::EventPriority::kWorkloadArrival,
                       [&fed, spec] { fed.submit_job(spec); });
  }
  // Drain whatever domain owns job 0 mid-execution (jobs run from ~60 s
  // to ~1060 s at full speed).
  std::size_t drained = 99;
  engine.schedule_at(util::Seconds{500.0}, sim::EventPriority::kWorkloadArrival, [&] {
    drained = fed.job_domain(util::JobId{0});
    fed.set_domain_weight(drained, 0.0);
  });

  fed.start();
  mgr.start();
  while (fed.total_completed() < 6 && engine.now().get() < 1.0e5) {
    engine.run_until(engine.now() + util::Seconds{1000.0});
  }

  ASSERT_EQ(fed.total_completed(), 6u);
  ASSERT_LT(drained, 3u);

  // The drained domain evacuated everything it was running.
  EXPECT_GT(mgr.stats().started, 0);
  EXPECT_EQ(mgr.stats().started, mgr.stats().completed);
  EXPECT_EQ(mgr.stats().in_flight, 0);
  // Exact checkpoints: nothing beyond the modeled suspend/transfer cost.
  EXPECT_DOUBLE_EQ(mgr.stats().work_lost_mhz_s, 0.0);
  EXPECT_GT(mgr.stats().bytes_moved_mb, 0.0);
  EXPECT_GT(mgr.stats().transfer_seconds, 0.0);

  // Registry ↔ world consistency: every job completed inside the domain
  // the registry points at, and nowhere else.
  std::size_t migrated = 0;
  for (unsigned id = 0; id < 6; ++id) {
    const std::size_t owner = fed.job_domain(util::JobId{id});
    for (std::size_t d = 0; d < 3; ++d) {
      EXPECT_EQ(fed.domain(d).world().job_exists(util::JobId{id}), d == owner);
    }
    const auto& job = fed.domain(owner).world().job(util::JobId{id});
    EXPECT_EQ(job.phase(), workload::JobPhase::kCompleted);
    EXPECT_GE(job.done().get(), job.spec().work.get() - 1e-6) << "work lost for job " << id;
    if (job.migrate_count() > 0) ++migrated;
    EXPECT_NE(owner, drained) << "job " << id << " finished inside the drained domain";
  }
  EXPECT_GT(migrated, 0u);
  EXPECT_EQ(fed.domain(drained).world().active_jobs().size(), 0u);

  // Cluster invariants hold everywhere after the handoffs.
  for (std::size_t d = 0; d < 3; ++d) {
    EXPECT_TRUE(fed.domain(d).world().cluster().validate().empty()) << "domain " << d;
  }

  // Satellite pin: the incrementally maintained router aggregates match
  // a from-scratch recomputation after submissions, completions and
  // cross-domain handoffs.
  for (std::size_t d = 0; d < 3; ++d) {
    EXPECT_DOUBLE_EQ(fed.domain(d).offered_cpu_load(engine.now()).get(),
                     fed.domain(d).offered_cpu_load_recomputed(engine.now()).get())
        << "domain " << d;
    std::size_t recount = 0;
    for (util::JobId id : fed.domain(d).world().job_order()) {
      if (fed.domain(d).world().job(id).phase() != workload::JobPhase::kCompleted) ++recount;
    }
    EXPECT_EQ(fed.domain(d).active_job_count(), recount) << "domain " << d;
  }
}

namespace {

struct DrainRun {
  migration::MigrationStats stats;
  /// Max DomainStatus::outbound_transfers_queued observed on the drained
  /// domain while the evacuation was in flight (the Federation status
  /// plumbing fed by the manager's transfer-queue probe).
  std::size_t max_status_queue{0};
};

/// Drive a 3-domain federation to t=500 with 6 running jobs, then drain
/// the domain owning job 0 and run to completion under the given link
/// mode, sampling Federation::status each second around the evacuation.
DrainRun drain_with_link_mode(migration::LinkMode mode) {
  sim::Engine engine;
  federation::Federation fed(engine, federation::make_router("least-loaded"));
  for (int i = 0; i < 3; ++i) add_nodes(fed.add_domain("d" + std::to_string(i), make_policy()), 2);

  migration::MigrationOptions opts;
  opts.check_interval = util::Seconds{60.0};
  opts.link_mode = mode;
  migration::MigrationManager mgr(fed, migration::TransferModel{},
                                  migration::make_migration_policy("drain"), opts);

  for (unsigned id = 0; id < 6; ++id) {
    const auto spec = make_job(id);
    engine.schedule_at(0_s, sim::EventPriority::kWorkloadArrival,
                       [&fed, spec] { fed.submit_job(spec); });
  }
  std::size_t drained = 99;
  engine.schedule_at(util::Seconds{500.0}, sim::EventPriority::kWorkloadArrival, [&] {
    drained = fed.job_domain(util::JobId{0});
    fed.set_domain_weight(drained, 0.0);
  });
  DrainRun run;
  for (int t = 501; t < 700; ++t) {
    engine.schedule_at(util::Seconds{static_cast<double>(t)}, sim::EventPriority::kSampling, [&] {
      const auto status = fed.status(engine.now());
      run.max_status_queue =
          std::max(run.max_status_queue, status.at(drained).outbound_transfers_queued);
    });
  }
  fed.start();
  mgr.start();
  while (fed.total_completed() < 6 && engine.now().get() < 1.0e5) {
    engine.run_until(engine.now() + util::Seconds{1000.0});
  }
  EXPECT_EQ(fed.total_completed(), 6u);
  EXPECT_EQ(mgr.stats().started, mgr.stats().completed);
  EXPECT_DOUBLE_EQ(mgr.stats().work_lost_mhz_s, 0.0);
  run.stats = mgr.stats();
  return run;
}

}  // namespace

TEST(MigrationIntegration, UplinkModeSerializesAnEvacuationP2pDoesNot) {
  // The drained domain evacuates two running jobs to two different
  // destinations. In p2p mode the two pairs are independent pools —
  // nothing waits. In uplink mode both transfers leave through the
  // source's single uplink: the second waits exactly one wire time
  // (1300 MB at the 125 MB/s default = 10.4 s).
  const auto p2p = drain_with_link_mode(migration::LinkMode::kP2p);
  EXPECT_EQ(p2p.stats.started, 2);
  EXPECT_DOUBLE_EQ(p2p.stats.queue_wait_seconds, 0.0);
  EXPECT_EQ(p2p.max_status_queue, 0u);  // independent pairs: nothing waits

  const auto uplink = drain_with_link_mode(migration::LinkMode::kUplink);
  EXPECT_EQ(uplink.stats.started, 2);
  const double wire = 1300.0 / 125.0;
  EXPECT_NEAR(uplink.stats.queue_wait_seconds, wire, 1e-6);
  // The queued transfer was visible through Federation::status while it
  // waited (the manager's transfer-queue probe).
  EXPECT_EQ(uplink.max_status_queue, 1u);
  // Same images, same modeled uncontended time — contention only queues.
  EXPECT_DOUBLE_EQ(uplink.stats.bytes_moved_mb, p2p.stats.bytes_moved_mb);
  EXPECT_DOUBLE_EQ(uplink.stats.transfer_seconds, p2p.stats.transfer_seconds);
}

// --- runner-level scenarios --------------------------------------------------

namespace {

scenario::FederatedScenario drain_scenario() {
  auto base = scenario::section3_scaled(0.2);  // 5 nodes, 160 jobs
  base.seed = 42;
  scenario::FederatedScenario fs = scenario::federate(base, 3);
  fs.weight_events.push_back({0, 15000.0, 0.0});
  fs.weight_events.push_back({0, 35000.0, 1.0});
  fs.migration.enabled = true;
  fs.migration.policy = "drain";
  fs.migration.check_interval_s = 120.0;
  return fs;
}

const scenario::FederatedResult& drain_run() {
  static const scenario::FederatedResult r = [] {
    scenario::ExperimentOptions opt;
    opt.validate_invariants = true;
    opt.max_sim_time_s = 2.0e6;
    return scenario::run_federated_experiment(drain_scenario(), opt);
  }();
  return r;
}

void expect_same_series(const util::TimeSeriesSet& a, const util::TimeSeriesSet& b,
                        const std::string& name) {
  const auto* sa = a.find(name);
  const auto* sb = b.find(name);
  ASSERT_NE(sa, nullptr) << name;
  ASSERT_NE(sb, nullptr) << name;
  ASSERT_EQ(sa->size(), sb->size()) << name;
  for (std::size_t i = 0; i < sa->size(); ++i) {
    EXPECT_DOUBLE_EQ(sa->points()[i].t, sb->points()[i].t) << name << " point " << i;
    EXPECT_DOUBLE_EQ(sa->points()[i].v, sb->points()[i].v) << name << " point " << i;
  }
}

}  // namespace

TEST(MigrationScenario, DrainScenarioCompletesEverythingAndMigStatsAreConsistent) {
  const auto& r = drain_run();
  EXPECT_EQ(r.summary.jobs_completed, 160);
  EXPECT_EQ(r.summary.invariant_violations, 0);

  EXPECT_GT(r.migration.started, 0);
  EXPECT_EQ(r.migration.started, r.migration.completed);
  EXPECT_EQ(r.migration.in_flight, 0);
  EXPECT_DOUBLE_EQ(r.migration.work_lost_mhz_s, 0.0);

  // End-of-run ownership is consistent: the registry count equals the
  // jobs each world actually holds, federation-wide.
  long routed = 0;
  long submitted = 0;
  for (const auto& d : r.domains) {
    routed += d.jobs_routed;
    submitted += d.result.summary.jobs_submitted;
    EXPECT_EQ(d.jobs_routed, d.result.summary.jobs_submitted) << d.name;
  }
  EXPECT_EQ(routed, 160);
  EXPECT_EQ(submitted, 160);

  // The sampled mig_* series are cumulative and end at the summary values.
  const auto* started = r.series.find("mig_started");
  const auto* completed = r.series.find("mig_completed");
  const auto* lost = r.series.find("mig_work_lost_mhz_s");
  ASSERT_NE(started, nullptr);
  ASSERT_NE(completed, nullptr);
  ASSERT_NE(lost, nullptr);
  EXPECT_DOUBLE_EQ(started->points().back().v, static_cast<double>(r.migration.started));
  EXPECT_DOUBLE_EQ(completed->points().back().v, static_cast<double>(r.migration.completed));
  for (std::size_t i = 1; i < started->size(); ++i) {
    EXPECT_GE(started->points()[i].v, started->points()[i - 1].v) << "not cumulative";
    EXPECT_GE(started->points()[i].v, completed->points()[i].v) << "completed before started";
  }
  for (const auto& p : lost->points()) EXPECT_DOUBLE_EQ(p.v, 0.0);
}

TEST(MigrationScenario, IdenticalSeedsGiveIdenticalMigSeries) {
  // Determinism: a fresh rerun of the same scenario reproduces every
  // mig_* sample and summary counter bit for bit.
  scenario::ExperimentOptions opt;
  opt.validate_invariants = true;
  opt.max_sim_time_s = 2.0e6;
  const auto rerun = scenario::run_federated_experiment(drain_scenario(), opt);
  const auto& first = drain_run();

  EXPECT_EQ(rerun.migration.started, first.migration.started);
  EXPECT_EQ(rerun.migration.completed, first.migration.completed);
  EXPECT_DOUBLE_EQ(rerun.migration.bytes_moved_mb, first.migration.bytes_moved_mb);
  EXPECT_DOUBLE_EQ(rerun.migration.transfer_seconds, first.migration.transfer_seconds);
  for (const char* name : {"mig_started", "mig_completed", "mig_in_flight", "mig_bytes_mb",
                           "mig_transfer_s", "mig_work_lost_mhz_s", "mig_queue_depth",
                           "mig_queue_wait_s", "mig_active_transfers", "fed_jobs_running",
                           "fed_jobs_completed"}) {
    expect_same_series(rerun.series, first.series, name);
  }
  EXPECT_EQ(rerun.summary.jobs_completed, first.summary.jobs_completed);
  EXPECT_DOUBLE_EQ(rerun.summary.tx_utility.mean(), first.summary.tx_utility.mean());
  EXPECT_DOUBLE_EQ(rerun.summary.job_utility.mean(), first.summary.job_utility.mean());
}

TEST(MigrationScenario, DisabledRunsAreBitIdenticalToEnabledIdleRuns) {
  // A migration-enabled run whose policy never proposes anything (drain
  // policy, no drained domains) must reproduce the migration-disabled
  // run exactly: manager ticks observe but never mutate. This pins
  // "migration disabled == pre-migration output" from the other side.
  auto base = scenario::section3_scaled(0.2);
  base.seed = 42;
  scenario::FederatedScenario off = scenario::federate(base, 3);
  scenario::FederatedScenario idle = off;
  idle.migration.enabled = true;
  idle.migration.policy = "drain";

  scenario::ExperimentOptions opt;
  opt.max_sim_time_s = 2.0e6;
  const auto r_off = scenario::run_federated_experiment(off, opt);
  const auto r_idle = scenario::run_federated_experiment(idle, opt);

  // Disabled runs carry no mig_* series at all; idle runs carry flat zeros.
  EXPECT_EQ(r_off.series.find("mig_started"), nullptr);
  ASSERT_NE(r_idle.series.find("mig_started"), nullptr);
  EXPECT_EQ(r_idle.migration.started, 0);

  ASSERT_EQ(r_off.domains.size(), r_idle.domains.size());
  for (const char* name :
       {"fed_tx_alloc_mhz", "fed_lr_alloc_mhz", "fed_jobs_running", "fed_jobs_completed"}) {
    expect_same_series(r_off.series, r_idle.series, name);
  }
  for (std::size_t d = 0; d < r_off.domains.size(); ++d) {
    for (const char* name : {"u_star", "tx_alloc_mhz", "lr_alloc_mhz", "active_jobs",
                             "suspends", "migrations", "jobs_completed"}) {
      expect_same_series(r_off.domains[d].result.series, r_idle.domains[d].result.series, name);
    }
    EXPECT_EQ(r_off.domains[d].result.summary.jobs_completed,
              r_idle.domains[d].result.summary.jobs_completed);
    EXPECT_DOUBLE_EQ(r_off.domains[d].result.summary.tx_utility.mean(),
                     r_idle.domains[d].result.summary.tx_utility.mean());
  }
}

TEST(MigrationScenario, ConfigKeysRoundTripThroughLoader) {
  util::Config cfg;
  cfg.set("domains", "3");
  cfg.set("migration.enabled", "true");
  cfg.set("migration.policy", "drain+rebalance");
  cfg.set("migration.check_interval_s", "45");
  cfg.set("migration.max_moves_per_tick", "3");
  cfg.set("migration.default_bandwidth_mb_per_s", "250");
  cfg.set("migration.selection", "cost");
  cfg.set("migration.align_attach", "true");
  cfg.set("bandwidth.0.1", "500");
  cfg.set("link_latency.2.0", "9.5");
  const auto fs = scenario::federated_scenario_from_config(cfg);
  EXPECT_TRUE(fs.migration.enabled);
  EXPECT_EQ(fs.migration.policy, "drain+rebalance");
  EXPECT_TRUE(fs.migration.align_attach);
  EXPECT_DOUBLE_EQ(fs.migration.check_interval_s, 45.0);
  EXPECT_EQ(fs.migration.max_moves_per_tick, 3);
  EXPECT_DOUBLE_EQ(fs.migration.default_bandwidth_mb_per_s, 250.0);
  EXPECT_EQ(fs.migration.link_mode, "p2p");
  EXPECT_EQ(fs.migration.selection, "cost");
  ASSERT_EQ(fs.migration.links.size(), 2u);
  EXPECT_EQ(fs.migration.links[0].from, 0u);
  EXPECT_EQ(fs.migration.links[0].to, 1u);
  EXPECT_DOUBLE_EQ(fs.migration.links[0].bandwidth_mb_per_s, 500.0);
  EXPECT_DOUBLE_EQ(fs.migration.links[0].latency_s, -1.0);
  EXPECT_EQ(fs.migration.links[1].from, 2u);
  EXPECT_EQ(fs.migration.links[1].to, 0u);
  EXPECT_DOUBLE_EQ(fs.migration.links[1].latency_s, 9.5);

  // Uplink-mode round trip: pool capacities plus per-pair latencies.
  util::Config up;
  up.set("domains", "3");
  up.set("migration.link_mode", "uplink");
  up.set("uplink_bandwidth.1", "75");
  up.set("link_latency.1.0", "3.5");
  const auto ufs = scenario::federated_scenario_from_config(up);
  EXPECT_EQ(ufs.migration.link_mode, "uplink");
  ASSERT_EQ(ufs.migration.uplinks.size(), 1u);
  EXPECT_EQ(ufs.migration.uplinks[0].domain, 1u);
  EXPECT_DOUBLE_EQ(ufs.migration.uplinks[0].bandwidth_mb_per_s, 75.0);
  ASSERT_EQ(ufs.migration.links.size(), 1u);
  EXPECT_DOUBLE_EQ(ufs.migration.links[0].latency_s, 3.5);

  util::Config bad;
  bad.set("migration.policy", "teleport");
  EXPECT_THROW((void)scenario::federated_scenario_from_config(bad), util::ConfigError);
}

TEST(MigrationScenario, ModeInapplicableLinkKeysAreRejected) {
  // A link setting the selected mode never reads is a config mistake,
  // not a no-op: uplink capacities need uplink mode...
  util::Config up_in_p2p;
  up_in_p2p.set("domains", "2");
  up_in_p2p.set("uplink_bandwidth.0", "20");
  EXPECT_THROW((void)scenario::federated_scenario_from_config(up_in_p2p), util::ConfigError);

  // ...and per-pair bandwidth is meaningless against a shared pool
  // (per-pair latency remains valid there).
  util::Config pair_in_uplink;
  pair_in_uplink.set("domains", "2");
  pair_in_uplink.set("migration.link_mode", "uplink");
  pair_in_uplink.set("bandwidth.0.1", "500");
  EXPECT_THROW((void)scenario::federated_scenario_from_config(pair_in_uplink),
               util::ConfigError);
}

TEST(MigrationScenario, DeprecatedBandwidthKeyStillLoads) {
  // The value was always MB/s; the old *_mbps spelling keeps loading.
  util::Config cfg;
  cfg.set("migration.default_bandwidth_mbps", "250");
  EXPECT_DOUBLE_EQ(scenario::federated_scenario_from_config(cfg)
                       .migration.default_bandwidth_mb_per_s,
                   250.0);

  // Both spellings at once is ambiguous and rejected.
  util::Config both;
  both.set("migration.default_bandwidth_mb_per_s", "250");
  both.set("migration.default_bandwidth_mbps", "125");
  EXPECT_THROW((void)scenario::federated_scenario_from_config(both), util::ConfigError);

  // A bad value through the alias is diagnosed under the key the user
  // actually wrote.
  util::Config neg;
  neg.set("migration.default_bandwidth_mbps", "-5");
  try {
    (void)scenario::federated_scenario_from_config(neg);
    FAIL() << "negative bandwidth accepted";
  } catch (const util::ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("migration.default_bandwidth_mbps"), std::string::npos)
        << e.what();
  }
}

TEST(MigrationScenario, LinkModeAndSelectionKeysAreValidated) {
  util::Config mode;
  mode.set("migration.link_mode", "wormhole");
  EXPECT_THROW((void)scenario::federated_scenario_from_config(mode), util::ConfigError);

  util::Config sel;
  sel.set("migration.selection", "random");
  EXPECT_THROW((void)scenario::federated_scenario_from_config(sel), util::ConfigError);

  util::Config uplink;
  uplink.set("domains", "2");
  uplink.set("migration.link_mode", "uplink");
  uplink.set("uplink_bandwidth.0", "-10");
  EXPECT_THROW((void)scenario::federated_scenario_from_config(uplink), util::ConfigError);
}

TEST(MigrationIntegration, RebalanceMovesPendingJobsInstantly) {
  // Pending (never-started) jobs carry no VM image: a rebalance move
  // re-routes them synchronously — no suspend, no wire time, no bytes.
  sim::Engine engine;
  federation::Federation fed(engine, federation::make_router("least-loaded"));
  for (int i = 0; i < 3; ++i) add_nodes(fed.add_domain("d" + std::to_string(i), make_policy()), 2);
  fed.set_domain_weight(1, 0.0);
  fed.set_domain_weight(2, 0.0);
  for (unsigned id = 0; id < 9; ++id) fed.submit_job(make_job(id));  // all land on d0
  fed.set_domain_weight(1, 1.0);
  fed.set_domain_weight(2, 1.0);
  ASSERT_EQ(fed.jobs_per_domain()[0], 9);

  migration::MigrationManager mgr(fed, migration::TransferModel{},
                                  migration::make_migration_policy("rebalance"),
                                  migration::MigrationOptions{});
  mgr.tick();

  EXPECT_EQ(mgr.stats().started, 1);
  EXPECT_EQ(mgr.stats().completed, 1);  // instant: no image to ship
  EXPECT_EQ(mgr.stats().in_flight, 0);
  EXPECT_DOUBLE_EQ(mgr.stats().bytes_moved_mb, 0.0);
  EXPECT_DOUBLE_EQ(mgr.stats().transfer_seconds, 0.0);
  EXPECT_EQ(fed.jobs_per_domain()[0], 8);
  // The moved job lives in its new world, in phase pending, unheld.
  const std::size_t owner = fed.job_domain(util::JobId{0});
  EXPECT_NE(owner, 0u);
  const auto& job = fed.domain(owner).world().job(util::JobId{0});
  EXPECT_EQ(job.phase(), workload::JobPhase::kPending);
  EXPECT_FALSE(job.held());
  // Aggregates followed the move.
  for (std::size_t d = 0; d < 3; ++d) {
    EXPECT_DOUBLE_EQ(fed.domain(d).offered_cpu_load(engine.now()).get(),
                     fed.domain(d).offered_cpu_load_recomputed(engine.now()).get());
  }
}

TEST(MigrationScenario, NegativeLinkOverridesFailLoudly) {
  util::Config bw;
  bw.set("domains", "2");
  bw.set("bandwidth.0.1", "-400");  // sign typo must not read as "unset"
  EXPECT_THROW((void)scenario::federated_scenario_from_config(bw), util::ConfigError);

  util::Config lat;
  lat.set("domains", "2");
  lat.set("link_latency.1.0", "-3");
  EXPECT_THROW((void)scenario::federated_scenario_from_config(lat), util::ConfigError);
}

TEST(CompositePolicy, RebalanceSeesDrainStageLoadShifts) {
  // d0 drained with 2 jobs, d1 lightly loaded, d2 overloaded. The drain
  // wave lands on d1 and pushes it past the rebalance low watermark —
  // the rebalance stage must see that and stay quiet, instead of piling
  // d2's jobs onto d1 from the stale snapshot.
  sim::Engine engine;
  federation::Federation fed(engine, federation::make_router("least-loaded"));
  for (int i = 0; i < 3; ++i) add_nodes(fed.add_domain("d" + std::to_string(i), make_policy()), 2);
  unsigned id = 0;
  auto submit_to = [&](std::size_t target, int count) {
    for (std::size_t d = 0; d < 3; ++d) fed.set_domain_weight(d, d == target ? 1.0 : 0.0);
    for (int n = 0; n < count; ++n) fed.submit_job(make_job(id++));
  };
  submit_to(0, 2);  // 6000 MHz offered
  submit_to(1, 5);  // 15000 MHz on 24000 effective → 0.625
  submit_to(2, 9);  // 27000 MHz on 24000 effective → 1.125
  fed.set_domain_weight(0, 0.0);
  fed.set_domain_weight(1, 1.0);
  fed.set_domain_weight(2, 1.0);

  const auto status = fed.status(0_s);
  // The rebalance stage alone, on the raw snapshot, would move work to d1.
  const auto naive = migration::RebalancePolicy{}.propose(fed, status, 0_s, 100);
  ASSERT_FALSE(naive.empty());
  EXPECT_EQ(naive.front().to, 1u);

  // Composite: drain's two evacuees land on d1 (21000 → 0.875 > 0.8),
  // leaving the rebalance stage no destination.
  auto composite = migration::make_migration_policy("drain+rebalance");
  const auto moves = composite->propose(fed, status, 0_s, 100);
  ASSERT_EQ(moves.size(), 2u);
  for (const auto& mv : moves) {
    EXPECT_EQ(mv.from, 0u);
    EXPECT_EQ(mv.to, 1u);
  }
}

TEST(RebalancePolicy, CongestionGuardSkipsBackedUpSources) {
  // A source whose outbound uplink already has a queue proposes nothing
  // once the queue reaches migration.max_queued_transfers; below the
  // threshold (or with the guard off) behavior is unchanged.
  sim::Engine engine;
  federation::Federation fed(engine, federation::make_router("least-loaded"));
  for (int i = 0; i < 3; ++i) add_nodes(fed.add_domain("d" + std::to_string(i), make_policy()), 2);
  fed.set_domain_weight(1, 0.0);
  fed.set_domain_weight(2, 0.0);
  for (unsigned id = 0; id < 9; ++id) fed.submit_job(make_job(id));  // all land on d0
  fed.set_domain_weight(1, 1.0);
  fed.set_domain_weight(2, 1.0);

  auto status = fed.status(0_s);  // d0: 27000 / 24000 = 1.125 > 1.1
  status[0].outbound_transfers_queued = 4;

  migration::PolicyConfig cfg;  // guard off by default
  EXPECT_FALSE(migration::RebalancePolicy{cfg}.propose(fed, status, 0_s, 100).empty());

  cfg.max_queued_transfers = 5;  // queue (4) below threshold: still moves
  EXPECT_FALSE(migration::RebalancePolicy{cfg}.propose(fed, status, 0_s, 100).empty());

  cfg.max_queued_transfers = 4;  // at threshold: source skipped
  EXPECT_TRUE(migration::RebalancePolicy{cfg}.propose(fed, status, 0_s, 100).empty());

  // Drains ignore the guard: evacuation beats link tidiness.
  fed.set_domain_weight(0, 0.0);
  auto drained = fed.status(0_s);
  drained[0].outbound_transfers_queued = 100;
  migration::PolicyConfig drain_cfg;
  drain_cfg.max_queued_transfers = 4;
  EXPECT_FALSE(migration::DrainPolicy{drain_cfg}.propose(fed, drained, 0_s, 100).empty());
}

TEST(MigrationScenario, MaxQueuedTransfersKeyRoundTripsAndValidates) {
  util::Config cfg;
  cfg.set("migration.max_queued_transfers", "6");
  EXPECT_EQ(scenario::federated_scenario_from_config(cfg).migration.max_queued_transfers, 6);
  EXPECT_EQ(scenario::federated_scenario_from_config(util::Config{})
                .migration.max_queued_transfers,
            0);  // default: guard off

  util::Config bad;
  bad.set("migration.max_queued_transfers", "-1");
  EXPECT_THROW((void)scenario::federated_scenario_from_config(bad), util::ConfigError);
}

TEST(MigrationIntegration, RecoveryMidEvacuationCancelsQueuedTransfersAndJobsStayPut) {
  // A drained domain evacuates through a skinny shared uplink; the queue
  // is long when the domain recovers. Every grant still waiting for the
  // wire is cancelled — those jobs stay put (restored suspended into the
  // recovered domain and resumed by its own controller) — while images
  // already on the wire complete at their destinations.
  sim::Engine engine;
  federation::Federation fed(engine, federation::make_router("least-loaded"));
  for (int i = 0; i < 2; ++i) add_nodes(fed.add_domain("d" + std::to_string(i), make_policy()), 2);

  migration::TransferModel transfer;
  transfer.set_uplink_bandwidth(0, 10.0);  // 130 s per 1300 MB image
  migration::MigrationOptions opts;
  opts.check_interval = util::Seconds{60.0};
  opts.link_mode = migration::LinkMode::kUplink;
  migration::MigrationManager mgr(fed, std::move(transfer),
                                  migration::make_migration_policy("drain"), opts);

  // All six jobs land on d0 (d1 drained during submission), then d0
  // drains at t=500 and recovers at t=800 — mid-evacuation: the suspends
  // land ~t=555, so by 800 the uplink has shipped at most two images.
  for (unsigned id = 0; id < 6; ++id) {
    const auto spec = make_job(id);
    engine.schedule_at(0_s, sim::EventPriority::kWorkloadArrival,
                       [&fed, spec] { fed.submit_job(spec); });
  }
  engine.schedule_at(util::Seconds{100.0}, sim::EventPriority::kWorkloadArrival,
                     [&] { fed.set_domain_weight(1, 1.0); });
  fed.set_domain_weight(1, 0.0);
  engine.schedule_at(util::Seconds{500.0}, sim::EventPriority::kWorkloadArrival,
                     [&] { fed.set_domain_weight(0, 0.0); });
  std::size_t queued_at_recovery = 0;
  engine.schedule_at(util::Seconds{800.0}, sim::EventPriority::kWorkloadArrival, [&] {
    queued_at_recovery = mgr.link_scheduler().queued_transfers();
    fed.set_domain_weight(0, 1.0);
  });

  fed.start();
  mgr.start();
  while (fed.total_completed() < 6 && engine.now().get() < 1.0e5) {
    engine.run_until(engine.now() + util::Seconds{1000.0});
  }
  ASSERT_EQ(fed.total_completed(), 6u);

  // The recovery found a backlog and recalled all of it.
  EXPECT_GE(queued_at_recovery, 2u);
  const auto& stats = mgr.stats();
  EXPECT_EQ(stats.cancelled, static_cast<long>(queued_at_recovery));
  EXPECT_GE(stats.completed, 1);  // the wire-borne images still moved
  EXPECT_EQ(stats.started, stats.completed + stats.cancelled);
  EXPECT_EQ(stats.in_flight, 0);
  EXPECT_DOUBLE_EQ(stats.work_lost_mhz_s, 0.0);
  // Shipment accounting reports only what actually crossed the wire.
  EXPECT_DOUBLE_EQ(stats.bytes_moved_mb, 1300.0 * static_cast<double>(stats.completed));

  // The remaining jobs stayed put: exactly the cancelled ones completed
  // inside the recovered domain, with no work lost.
  long finished_at_home = 0;
  for (unsigned id = 0; id < 6; ++id) {
    const std::size_t owner = fed.job_domain(util::JobId{id});
    const auto& job = fed.domain(owner).world().job(util::JobId{id});
    EXPECT_EQ(job.phase(), workload::JobPhase::kCompleted);
    EXPECT_GE(job.done().get(), job.spec().work.get() - 1e-6) << "work lost for job " << id;
    if (owner == 0) {
      ++finished_at_home;
      EXPECT_EQ(job.migrate_count(), 0) << "a stay-put job was counted as migrated";
    }
  }
  EXPECT_EQ(finished_at_home, stats.cancelled);

  for (std::size_t d = 0; d < 2; ++d) {
    EXPECT_TRUE(fed.domain(d).world().cluster().validate().empty()) << "domain " << d;
    EXPECT_DOUBLE_EQ(fed.domain(d).offered_cpu_load(engine.now()).get(),
                     fed.domain(d).offered_cpu_load_recomputed(engine.now()).get());
  }
}

TEST(MigrationIntegration, RecoveryWithinSuspendWindowAbortsBeforeDetach) {
  // Recovery can land between the suspend decision and the checkpoint
  // (suspend latency window). Those flights abort at the checkpoint
  // step: the job was never detached, stays suspended in its home world
  // (unheld, executor bookkeeping intact), and the local controller
  // resumes it. Nothing reaches the wire.
  sim::Engine engine;
  federation::Federation fed(engine, federation::make_router("least-loaded"));
  for (int i = 0; i < 2; ++i) add_nodes(fed.add_domain("d" + std::to_string(i), make_policy()), 2);

  migration::MigrationOptions opts;
  opts.check_interval = util::Seconds{60.0};
  migration::MigrationManager mgr(fed, migration::TransferModel{},
                                  migration::make_migration_policy("drain"), opts);

  for (unsigned id = 0; id < 4; ++id) {
    const auto spec = make_job(id);
    engine.schedule_at(0_s, sim::EventPriority::kWorkloadArrival,
                       [&fed, spec] { fed.submit_job(spec); });
  }
  engine.schedule_at(util::Seconds{100.0}, sim::EventPriority::kWorkloadArrival,
                     [&] { fed.set_domain_weight(1, 1.0); });
  fed.set_domain_weight(1, 0.0);  // route everything to d0
  // Drain at t=500; the manager's t=540 tick suspends (latency 15 s, so
  // checkpoints land at t=555). Recover at t=550 — inside the window.
  engine.schedule_at(util::Seconds{500.0}, sim::EventPriority::kWorkloadArrival,
                     [&] { fed.set_domain_weight(0, 0.0); });
  engine.schedule_at(util::Seconds{550.0}, sim::EventPriority::kWorkloadArrival,
                     [&] { fed.set_domain_weight(0, 1.0); });

  fed.start();
  mgr.start();
  while (fed.total_completed() < 4 && engine.now().get() < 1.0e5) {
    engine.run_until(engine.now() + util::Seconds{1000.0});
  }
  ASSERT_EQ(fed.total_completed(), 4u);

  const auto& stats = mgr.stats();
  EXPECT_EQ(stats.started, 4);
  EXPECT_EQ(stats.cancelled, 4);  // every flight aborted in the window
  EXPECT_EQ(stats.completed, 0);
  EXPECT_EQ(stats.in_flight, 0);
  EXPECT_DOUBLE_EQ(stats.bytes_moved_mb, 0.0);
  EXPECT_DOUBLE_EQ(stats.transfer_seconds, 0.0);
  EXPECT_DOUBLE_EQ(stats.work_lost_mhz_s, 0.0);

  // Every job completed at home with its full work done.
  for (unsigned id = 0; id < 4; ++id) {
    EXPECT_EQ(fed.job_domain(util::JobId{id}), 0u);
    const auto& job = fed.domain(0).world().job(util::JobId{id});
    EXPECT_EQ(job.phase(), workload::JobPhase::kCompleted);
    EXPECT_FALSE(job.held());
    EXPECT_EQ(job.migrate_count(), 0);
    EXPECT_GE(job.done().get(), job.spec().work.get() - 1e-6);
  }
  EXPECT_TRUE(fed.domain(0).world().cluster().validate().empty());
}

TEST(MigrationIntegration, AlignAttachLandsAtDestinationCycleWithSameCompletion) {
  // align_attach parks an arrived image until the destination
  // controller's next periodic cycle and attaches at kWorkloadArrival —
  // ahead of kController at that shared timestamp — so the very cycle
  // that first *could* see the job actually plans it. Since an
  // immediately-attached job would have sat suspended until that same
  // cycle anyway, the completion timeline is unchanged; only the attach
  // instant moves onto the cycle boundary.
  struct Run {
    double attach_s{-1.0};      // first probe second with the move completed
    double completion_s{-1.0};  // first probe second with the job finished
  };
  const auto drive = [](bool align) {
    sim::Engine engine;
    federation::Federation fed(engine, federation::make_router("least-loaded"));
    for (int i = 0; i < 2; ++i) {
      add_nodes(fed.add_domain("d" + std::to_string(i), make_policy()), 2);
    }
    migration::MigrationOptions opts;
    opts.check_interval = util::Seconds{60.0};
    opts.align_attach = align;
    migration::MigrationManager mgr(fed, migration::TransferModel{},
                                    migration::make_migration_policy("drain"), opts);
    const auto spec = make_job(0);
    engine.schedule_at(0_s, sim::EventPriority::kWorkloadArrival,
                       [&fed, spec] { fed.submit_job(spec); });
    // Drain whichever domain hosts the job at t=500; the manager's t=540
    // tick ships it to the other domain.
    engine.schedule_at(util::Seconds{500.0}, sim::EventPriority::kWorkloadArrival,
                       [&] { fed.set_domain_weight(fed.job_domain(util::JobId{0}), 0.0); });
    Run run;
    for (int t = 500; t <= 4000; ++t) {
      engine.schedule_at(util::Seconds{static_cast<double>(t)}, sim::EventPriority::kSampling,
                         [&run, &mgr, &fed, t] {
                           if (run.attach_s < 0.0 && mgr.stats().completed == 1) {
                             run.attach_s = static_cast<double>(t);
                           }
                           if (run.completion_s < 0.0 && fed.total_completed() == 1) {
                             run.completion_s = static_cast<double>(t);
                           }
                         });
    }
    fed.start();
    mgr.start();
    engine.run_until(util::Seconds{4000.0});
    EXPECT_EQ(fed.total_completed(), 1u);
    EXPECT_EQ(mgr.stats().completed, 1);
    EXPECT_DOUBLE_EQ(mgr.stats().work_lost_mhz_s, 0.0);
    return run;
  };

  const Run immediate = drive(false);
  const Run aligned = drive(true);
  ASSERT_GT(immediate.attach_s, 0.0);
  ASSERT_GT(aligned.attach_s, 0.0);

  // Immediate attach lands mid-cycle, right after the ~12 s transfer that
  // the t=540 drain tick kicked off. The aligned attach waits for the
  // destination's next cycle: with two auto-staggered 600 s controllers
  // the destination fires at offset 300, so the boundary after the
  // transfer is t=900.
  EXPECT_LT(immediate.attach_s, 600.0);
  EXPECT_DOUBLE_EQ(aligned.attach_s, 900.0);

  // Deferring the attach costs nothing: the planning cycle — and hence
  // the completion timeline — is identical either way.
  EXPECT_DOUBLE_EQ(aligned.completion_s, immediate.completion_s);
}
