// Tests for the EWMA arrival-rate estimator used by noisy-monitoring
// experiments.

#include "perfmodel/rate_estimator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

using namespace heteroplace;
using perfmodel::RateEstimator;
using util::Seconds;

TEST(RateEstimator, EmptyEstimateIsZero) {
  RateEstimator e;
  EXPECT_DOUBLE_EQ(e.estimate(), 0.0);
  EXPECT_FALSE(e.has_observation());
}

TEST(RateEstimator, FirstObservationIsTakenVerbatim) {
  RateEstimator e{600.0};
  e.observe(Seconds{0.0}, 24.0);
  EXPECT_DOUBLE_EQ(e.estimate(), 24.0);
  EXPECT_EQ(e.observations(), 1u);
}

TEST(RateEstimator, HalfLifeSemantics) {
  RateEstimator e{600.0};
  e.observe(Seconds{0.0}, 10.0);
  // One half-life later: old value weighs 50%.
  e.observe(Seconds{600.0}, 20.0);
  EXPECT_NEAR(e.estimate(), 15.0, 1e-9);
  // Two half-lives later: old estimate weighs 25%.
  e.observe(Seconds{1800.0}, 30.0);
  EXPECT_NEAR(e.estimate(), 0.25 * 15.0 + 0.75 * 30.0, 1e-9);
}

TEST(RateEstimator, ZeroHalfLifeTracksLastSample) {
  RateEstimator e{0.0};
  e.observe(Seconds{0.0}, 5.0);
  e.observe(Seconds{1.0}, 50.0);
  EXPECT_DOUBLE_EQ(e.estimate(), 50.0);
}

TEST(RateEstimator, ConvergesToConstantSignal) {
  RateEstimator e{600.0};
  for (int i = 0; i < 100; ++i) e.observe(Seconds{i * 600.0}, 24.0);
  EXPECT_NEAR(e.estimate(), 24.0, 1e-9);
}

TEST(RateEstimator, SmoothsZeroMeanNoise) {
  util::Rng rng(99);
  RateEstimator slow{3000.0};
  double max_err = 0.0;
  double err_sum = 0.0;
  int counted = 0;
  for (int i = 0; i < 500; ++i) {
    const double noisy = 24.0 * rng.lognormal(-0.02, 0.2);  // ~cv 0.2
    slow.observe(Seconds{i * 600.0}, noisy);
    if (i > 50) {
      max_err = std::max(max_err, std::fabs(slow.estimate() - 24.0));
      err_sum += std::fabs(slow.estimate() - 24.0);
      ++counted;
    }
  }
  // Individual samples vary by ±20%; the EWMA (window ≈ 7 samples) keeps
  // excursions well below that and the average error small.
  EXPECT_LT(max_err, 24.0 * 0.20);
  EXPECT_LT(err_sum / counted, 24.0 * 0.06);
}

TEST(RateEstimator, TracksStepChange) {
  RateEstimator e{600.0};
  for (int i = 0; i < 20; ++i) e.observe(Seconds{i * 600.0}, 10.0);
  for (int i = 20; i < 40; ++i) e.observe(Seconds{i * 600.0}, 40.0);
  // After 20 half-lives at the new level the estimate is ~40.
  EXPECT_NEAR(e.estimate(), 40.0, 0.1);
}

TEST(RateEstimator, RejectsBadInput) {
  RateEstimator e{600.0};
  e.observe(Seconds{100.0}, 10.0);
  EXPECT_THROW(e.observe(Seconds{50.0}, 10.0), std::invalid_argument);
  EXPECT_THROW(e.observe(Seconds{200.0}, -1.0), std::invalid_argument);
}

TEST(RateEstimator, ResetClearsState) {
  RateEstimator e{600.0};
  e.observe(Seconds{0.0}, 10.0);
  e.reset();
  EXPECT_FALSE(e.has_observation());
  EXPECT_DOUBLE_EQ(e.estimate(), 0.0);
  e.observe(Seconds{0.0}, 33.0);  // time may restart after reset
  EXPECT_DOUBLE_EQ(e.estimate(), 33.0);
}

// Property: estimate is always within the [min, max] of observations.
class EstimatorBounds : public ::testing::TestWithParam<double> {};

TEST_P(EstimatorBounds, EstimateStaysWithinObservedRange) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam() * 1000));
  RateEstimator e{GetParam()};
  double lo = 1e300;
  double hi = -1e300;
  double t = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double r = rng.uniform(1.0, 100.0);
    lo = std::min(lo, r);
    hi = std::max(hi, r);
    t += rng.uniform(1.0, 900.0);
    e.observe(Seconds{t}, r);
    ASSERT_GE(e.estimate(), lo - 1e-9);
    ASSERT_LE(e.estimate(), hi + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(HalfLives, EstimatorBounds,
                         ::testing::Values(60.0, 600.0, 3600.0));
