// SLA attribution / audit / alerting tests: the LogHistogram's
// deterministic bucket quantiles, the SlaLedger's wake metering and tx
// sample accounting, the AlertEngine's multiwindow burn-rate open/close,
// the AuditLog ring and its JSON dump, slo.* / obs.audit* config parsing
// in both loaders, and the tentpole contracts — every completed job's
// attribution closes (asserted in-binary, re-checked here from the JSON),
// the SLA report and audit dump are byte-identical across engine thread
// counts, and a fully-instrumented run stays digest-identical to an
// obs-off run.

#include "obs/sla.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/alerts.hpp"
#include "obs/audit.hpp"
#include "obs/trace_check.hpp"
#include "scenario/config_loader.hpp"
#include "scenario/experiment.hpp"
#include "scenario/federation_experiment.hpp"
#include "scenario/obs_factory.hpp"
#include "scenario/result_digest.hpp"
#include "util/config.hpp"

using namespace heteroplace;

namespace {

std::string temp_path(const std::string& name) { return ::testing::TempDir() + name; }

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

double num(const obs::JsonValue* v) {
  return v != nullptr && v->type == obs::JsonValue::Type::kNumber ? v->number : 0.0;
}

}  // namespace

// --- log-bucket histogram ----------------------------------------------------

TEST(LogHistogram, QuantilesAreBucketBounds) {
  obs::LogHistogram h;
  for (int i = 0; i < 10; ++i) h.observe(1.0);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_DOUBLE_EQ(h.sum(), 10.0);
  // Every quantile of a point mass lands in the bucket holding 1.0:
  // the reported bound is the bucket's upper edge, within one growth
  // factor of the sample.
  for (double q : {0.1, 0.5, 0.99}) {
    const double b = h.quantile(q);
    EXPECT_GE(b, 1.0);
    EXPECT_LE(b, 1.0 * obs::LogHistogram::kGrowth);
  }
  // Underflow clamps to bucket 0, overflow (and inf) to the last bucket.
  obs::LogHistogram lo;
  lo.observe(0.0);
  EXPECT_DOUBLE_EQ(lo.quantile(0.5), obs::LogHistogram::bucket_bound(0));
  obs::LogHistogram hi;
  hi.observe(std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(hi.quantile(0.5),
                   obs::LogHistogram::bucket_bound(obs::LogHistogram::kBuckets - 1));
  EXPECT_DOUBLE_EQ(h.quantile(0.5), h.quantile(0.5));  // pure function of counts
}

TEST(LogHistogram, MergeMatchesPooledObservation) {
  obs::LogHistogram a, b, pooled;
  for (int i = 1; i <= 40; ++i) {
    const double v = 0.01 * i * i;
    (i % 2 == 0 ? a : b).observe(v);
    pooled.observe(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), pooled.count());
  EXPECT_DOUBLE_EQ(a.sum(), pooled.sum());
  EXPECT_EQ(a.buckets(), pooled.buckets());
  for (double q : {0.05, 0.5, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), pooled.quantile(q)) << "q=" << q;
  }
}

// --- ledger bookkeeping ------------------------------------------------------

TEST(SlaLedger, WakeMeteringAndForeignJobTolerance) {
  obs::SlaLedger ledger("dc0");
  // Nested wakes meter the union of [>=1 node waking], not the sum.
  ledger.on_wake_begin(10.0);
  ledger.on_wake_begin(15.0);
  ledger.on_wake_end(20.0);
  ledger.on_wake_end(30.0);
  EXPECT_DOUBLE_EQ(ledger.waking_integral(40.0), 20.0);
  // A job started here but admitted elsewhere (cross-domain migration
  // restore) finds no admit record and must be a no-op, not a throw.
  ledger.on_job_started(util::JobId{99}, 5.0);
  EXPECT_TRUE(ledger.jobs().empty());
}

TEST(SlaLedger, TxSamplesCountBreachesPerApp) {
  obs::SlaLedger ledger("dc0");
  ledger.on_tx_sample("web", 0.0, 0.5, 1.0);
  ledger.on_tx_sample("web", 10.0, 0.9, 1.0);
  ledger.on_tx_sample("web", 20.0, 2.0, 1.0);  // breach
  ledger.on_tx_sample("api", 20.0, 0.1, 0.5);
  const auto& web = ledger.tx_apps().at("web");
  EXPECT_EQ(web.samples, 3u);
  EXPECT_EQ(web.breaches, 1u);
  EXPECT_DOUBLE_EQ(web.goal_s, 1.0);
  EXPECT_EQ(ledger.tx_apps().at("api").breaches, 0u);
  const auto counts = ledger.slo_counts("web");
  EXPECT_EQ(counts.total, 3u);
  EXPECT_EQ(counts.bad, 1u);
  EXPECT_EQ(ledger.slo_counts("jobs").total, 0u);
}

// --- burn-rate alert engine --------------------------------------------------

TEST(AlertEngine, OpensOnSustainedBurnAndClosesAfterRecovery) {
  obs::SlaLedger ledger("dc0");
  obs::AlertEngine eng;
  eng.add_slo({"api", /*target=*/0.5, /*long_window_s=*/100.0, /*short_window_s=*/50.0,
               /*burn_threshold=*/1.0});
  eng.bind(nullptr, nullptr);
  const std::vector<const obs::SlaLedger*> ledgers{&ledger};

  double t = 0.0;
  const auto step = [&](double rt) {
    ledger.on_tx_sample("api", t, rt, 1.0);
    eng.evaluate(t, ledgers);
    t += 10.0;
  };

  for (int i = 0; i < 10; ++i) step(0.1);  // healthy: no alert
  EXPECT_EQ(eng.active(), 0);
  EXPECT_TRUE(eng.history().empty());

  for (int i = 0; i < 12; ++i) step(5.0);  // hard breach: burn >> threshold
  ASSERT_EQ(eng.history().size(), 1u);
  EXPECT_EQ(eng.active(), 1);
  EXPECT_EQ(eng.history().front().app, "api");
  EXPECT_LT(eng.history().front().closed_s, 0.0);  // still open

  for (int i = 0; i < 12; ++i) step(0.1);  // recovery drains the short window
  EXPECT_EQ(eng.active(), 0);
  ASSERT_EQ(eng.history().size(), 1u);
  EXPECT_GT(eng.history().front().closed_s, eng.history().front().opened_s);

  // Determinism: the same feed replayed gives byte-identical instants.
  obs::SlaLedger ledger2("dc0");
  obs::AlertEngine eng2;
  eng2.add_slo({"api", 0.5, 100.0, 50.0, 1.0});
  eng2.bind(nullptr, nullptr);
  const std::vector<const obs::SlaLedger*> ledgers2{&ledger2};
  double t2 = 0.0;
  const auto step2 = [&](double rt) {
    ledger2.on_tx_sample("api", t2, rt, 1.0);
    eng2.evaluate(t2, ledgers2);
    t2 += 10.0;
  };
  for (int i = 0; i < 10; ++i) step2(0.1);
  for (int i = 0; i < 12; ++i) step2(5.0);
  for (int i = 0; i < 12; ++i) step2(0.1);
  ASSERT_EQ(eng2.history().size(), 1u);
  EXPECT_EQ(eng2.history().front().opened_s, eng.history().front().opened_s);
  EXPECT_EQ(eng2.history().front().closed_s, eng.history().front().closed_s);
}

// --- audit ring --------------------------------------------------------------

TEST(AuditLog, RingBoundsDropsAndRendersJson) {
  EXPECT_THROW(obs::AuditLog("dc0", 0), std::invalid_argument);

  obs::AuditLog log("dc0", 4);
  for (int i = 0; i < 10; ++i) {
    obs::AuditRecord r;
    r.t = static_cast<double>(i);
    r.kind = 'J';
    r.verdict = "place";
    r.consumer = i;
    r.node = i % 3;
    log.record(r);
  }
  EXPECT_EQ(log.total(), 10u);
  EXPECT_EQ(log.dropped(), 6u);
  const std::vector<obs::AuditRecord> snap = log.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (int i = 0; i < 4; ++i) {  // oldest-first: survivors are 6..9
    EXPECT_DOUBLE_EQ(snap[static_cast<std::size_t>(i)].t, 6.0 + i);
  }

  const obs::JsonValue doc = obs::parse_json(obs::render_audit_json({&log}));
  ASSERT_EQ(doc.type, obs::JsonValue::Type::kObject);
  EXPECT_EQ(doc.find("schema")->string, "heteroplace-audit/v1");
  const obs::JsonValue* domains = doc.find("domains");
  ASSERT_NE(domains, nullptr);
  ASSERT_EQ(domains->array.size(), 1u);
  const obs::JsonValue& d0 = domains->array.front();
  EXPECT_EQ(d0.find("domain")->string, "dc0");
  EXPECT_DOUBLE_EQ(num(d0.find("total")), 10.0);
  EXPECT_DOUBLE_EQ(num(d0.find("dropped")), 6.0);
  ASSERT_EQ(d0.find("records")->array.size(), 4u);
  EXPECT_EQ(d0.find("records")->array.front().find("verdict")->string, "place");
}

// --- config surface ----------------------------------------------------------

TEST(SlaConfig, SloAndAuditKeysParseIntoBothLoaders) {
  const std::string sla_path = temp_path("cfg_sla.json");
  const std::string audit_path = temp_path("cfg_audit.json");
  const std::string cfg_text = "slos = web,jobs\n"
                               "slo.web.target = 0.95\n"
                               "slo.web.long_window_s = 3600\n"
                               "slo.web.short_window_s = 600\n"
                               "slo.web.burn_threshold = 2\n"
                               "obs.sla_report_path = " + sla_path + "\n"
                               "obs.audit = ring\n"
                               "obs.audit_ring_capacity = 512\n"
                               "obs.audit_path = " + audit_path + "\n";
  const auto s = scenario::scenario_from_config(util::Config::from_string(cfg_text));
  ASSERT_EQ(s.slos.size(), 2u);
  // parse_tag_list sorts the names, so look the SLOs up by app.
  const auto slo_named = [&](const std::string& app) -> const obs::SloSpec& {
    for (const obs::SloSpec& slo : s.slos) {
      if (slo.app == app) return slo;
    }
    throw std::logic_error("no slo named " + app);
  };
  const obs::SloSpec& web = slo_named("web");
  EXPECT_DOUBLE_EQ(web.target, 0.95);
  EXPECT_DOUBLE_EQ(web.long_window_s, 3600.0);
  EXPECT_DOUBLE_EQ(web.short_window_s, 600.0);
  EXPECT_DOUBLE_EQ(web.burn_threshold, 2.0);
  (void)slo_named("jobs");  // present, with defaults
  EXPECT_EQ(s.obs.sla_report_path, sla_path);
  EXPECT_TRUE(s.obs.sla_enabled());
  EXPECT_EQ(s.obs.audit, "ring");
  EXPECT_EQ(s.obs.audit_ring_capacity, 512);
  EXPECT_EQ(s.obs.audit_path, audit_path);

  const auto fs = scenario::federated_scenario_from_config(
      util::Config::from_string("domains = 2\n" + cfg_text));
  ASSERT_EQ(fs.slos.size(), 2u);
  EXPECT_EQ(fs.obs.audit, "ring");
}

TEST(SlaConfig, FailsLoudly) {
  const auto load = [](const std::string& text) {
    return scenario::scenario_from_config(util::Config::from_string(text));
  };
  // An SLO must name a tx app or the literal "jobs".
  EXPECT_THROW((void)load("slos = nosuchapp\n"), util::ConfigError);
  // Range checks.
  EXPECT_THROW((void)load("slos = jobs\nslo.jobs.target = 1.5\n"), util::ConfigError);
  EXPECT_THROW((void)load("slos = jobs\nslo.jobs.long_window_s = 100\n"
                          "slo.jobs.short_window_s = 200\n"),
               util::ConfigError);
  EXPECT_THROW((void)load("slos = jobs\nslo.jobs.burn_threshold = 0\n"), util::ConfigError);
  // Audit keys are dead without obs.audit=ring; bogus modes and absurd
  // capacities fail in validate_obs_spec.
  EXPECT_THROW((void)load("obs.audit_path = x.json\n"), util::ConfigError);
  EXPECT_THROW((void)load("obs.audit_ring_capacity = 64\n"), util::ConfigError);
  EXPECT_THROW((void)load("obs.audit = bogus\n"), util::ConfigError);
  EXPECT_THROW((void)load("obs.audit = ring\nobs.audit_ring_capacity = 0\n"),
               util::ConfigError);
  scenario::ObsSpec spec;
  spec.sla_report_path = "/nonexistent-dir-xyz/sla.json";
  EXPECT_THROW(scenario::validate_obs_spec(spec), util::ConfigError);
}

// --- end-to-end: report closure, byte identity, digest pin -------------------

namespace {

/// Same shape as obs_test's everything-on scenario (every subsystem live,
/// aligned phases so parallel batches really form), plus SLOs and audit.
scenario::FederatedScenario everything_on_sla_scenario() {
  auto base = scenario::section3_scaled(0.2);  // 5 nodes
  base.seed = 42;
  base.horizon_s = 30000.0;
  scenario::FederatedScenario fs = scenario::federate(base, 3);
  for (auto& d : fs.domains) d.first_cycle_at_s = 0.0;
  fs.migration.enabled = true;
  fs.migration.policy = "drain+rebalance";
  fs.migration.check_interval_s = 300.0;
  fs.power.enabled = true;
  fs.power.policy = "idle-park";
  fs.power.idle_timeout_s = 1200.0;
  fs.faults.enabled = true;
  fs.faults.events.push_back({"node-crash", 1, 0, 0, 9000.0, 4000.0, 1.0});
  fs.faults.events.push_back({"blackout", 2, 0, 0, 15000.0, 2500.0, 1.0});
  fs.weight_events.push_back({0, 12000.0, 0.3});
  fs.slos.push_back({"web", 0.9, 7200.0, 1200.0, 1.0});
  fs.slos.push_back({"jobs", 0.5, 14400.0, 3600.0, 1.5});
  return fs;
}

}  // namespace

TEST(SlaReport, SingleWorldAttributionClosesAndParses) {
  auto s = scenario::section3_scaled(0.15);
  s.seed = 7;
  s.horizon_s = 20000.0;
  s.power.enabled = true;  // wake-exclusion path live
  s.slos.push_back({"jobs", 0.5, 7200.0, 1200.0, 1.0});
  s.obs.sla_report_path = temp_path("single_sla.json");
  s.obs.sla_report_csv_path = temp_path("single_sla.csv");
  const auto res = scenario::run_experiment(s, scenario::ExperimentOptions{});
  ASSERT_GT(res.summary.jobs_completed, 0);

  const obs::JsonValue doc = obs::parse_json(read_file(s.obs.sla_report_path));
  ASSERT_EQ(doc.type, obs::JsonValue::Type::kObject);
  EXPECT_EQ(doc.find("schema")->string, "heteroplace-sla-report/v1");
  const obs::JsonValue* merged = doc.find("merged");
  ASSERT_NE(merged, nullptr);
  EXPECT_DOUBLE_EQ(num(merged->find("jobs_completed")),
                   static_cast<double>(res.summary.jobs_completed));

  // Re-verify per-job closure from the serialized record: the components
  // must sum to the wall lifetime within 1e-9 relative after the
  // round-trip through shortest-round-trip formatting.
  const obs::JsonValue* jobs = doc.find("jobs");
  ASSERT_NE(jobs, nullptr);
  ASSERT_EQ(jobs->array.size(), static_cast<std::size_t>(res.summary.jobs_completed));
  const char* const components[] = {"queue_wait_s", "wake_excluded_s", "startup_s",
                                    "run_full_s",   "contention_s",    "redo_s",
                                    "suspend_s",    "resume_s",        "migration_s"};
  for (const obs::JsonValue& j : jobs->array) {
    const double wall = num(j.find("completion_s")) - num(j.find("submit_s"));
    double sum = 0.0;
    for (const char* c : components) sum += num(j.find(c));
    EXPECT_NEAR(sum, wall, 1e-9 * std::max(1.0, std::abs(wall)))
        << "job " << num(j.find("id"));
  }

  const std::string csv = read_file(s.obs.sla_report_csv_path);
  ASSERT_FALSE(csv.empty());
  EXPECT_EQ(csv.rfind("kind,", 0), 0u);  // header row first
}

TEST(SlaReport, ByteIdenticalAcrossThreadCounts) {
  auto fs = everything_on_sla_scenario();
  scenario::ExperimentOptions opt;
  fs.obs.audit = "ring";
  fs.obs.audit_ring_capacity = 4096;

  fs.engine_threads = 1;
  fs.obs.sla_report_path = temp_path("sla_t1.json");
  fs.obs.sla_report_csv_path = temp_path("sla_t1.csv");
  fs.obs.audit_path = temp_path("audit_t1.json");
  (void)scenario::run_federated_experiment(fs, opt);

  fs.engine_threads = 4;
  fs.obs.sla_report_path = temp_path("sla_t4.json");
  fs.obs.sla_report_csv_path = temp_path("sla_t4.csv");
  fs.obs.audit_path = temp_path("audit_t4.json");
  const auto res = scenario::run_federated_experiment(fs, opt);
  EXPECT_GT(res.engine.parallel_batches, 0u);

  const std::string sla1 = read_file(temp_path("sla_t1.json"));
  ASSERT_FALSE(sla1.empty());
  EXPECT_EQ(sla1, read_file(temp_path("sla_t4.json")));
  EXPECT_EQ(read_file(temp_path("sla_t1.csv")), read_file(temp_path("sla_t4.csv")));
  const std::string audit1 = read_file(temp_path("audit_t1.json"));
  ASSERT_FALSE(audit1.empty());
  EXPECT_EQ(audit1, read_file(temp_path("audit_t4.json")));

  // The audit dump is real: every domain logged solver/executor records.
  const obs::JsonValue audit = obs::parse_json(audit1);
  EXPECT_EQ(audit.find("schema")->string, "heteroplace-audit/v1");
  const obs::JsonValue* domains = audit.find("domains");
  ASSERT_NE(domains, nullptr);
  ASSERT_EQ(domains->array.size(), 3u);
  for (const obs::JsonValue& d : domains->array) {
    EXPECT_GT(num(d.find("total")), 0.0) << d.find("domain")->string;
    EXPECT_FALSE(d.find("records")->array.empty());
  }

  // And the report carries all three domains plus the jobs SLO history.
  const obs::JsonValue sla = obs::parse_json(sla1);
  ASSERT_EQ(sla.find("domains")->array.size(), 3u);
  ASSERT_NE(sla.find("alerts"), nullptr);
  EXPECT_EQ(sla.find("alerts")->find("slos")->array.size(), 2u);
}

TEST(SlaReport, FullObsOnIsDigestIdentical) {
  auto fs = everything_on_sla_scenario();
  scenario::ExperimentOptions opt;

  for (int threads : {1, 4}) {
    fs.engine_threads = threads;
    fs.obs = {};
    fs.slos.clear();
    const auto off = scenario::digest(scenario::run_federated_experiment(fs, opt));

    fs = everything_on_sla_scenario();  // restore SLOs
    fs.engine_threads = threads;
    fs.obs.sla_report_path = temp_path("pin_sla.json");
    fs.obs.sla_report_csv_path = temp_path("pin_sla.csv");
    fs.obs.audit = "ring";
    fs.obs.audit_path = temp_path("pin_audit.json");
    const auto res = scenario::run_federated_experiment(fs, opt);
    EXPECT_EQ(scenario::digest(res), off) << "threads=" << threads;
  }
}
