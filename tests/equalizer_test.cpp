// Tests for the hypothetical-utility equalizer — the paper's core
// resource arbiter. Uses both synthetic consumers (closed-form checks)
// and real job/app consumers.

#include "core/equalizer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "util/rng.hpp"

using namespace heteroplace;
using core::ConsumerKind;
using core::EqualizeResult;
using core::UtilityConsumer;
using util::CpuMhz;

namespace {

/// Synthetic consumer with linear utility u = u_max − slope·(1 − ω/demand):
/// u(0) = u_max − slope, u(demand) = u_max. Closed-form inverse.
class LinearConsumer final : public UtilityConsumer {
 public:
  LinearConsumer(double demand, double u_max, double slope)
      : demand_(demand), u_max_(u_max), slope_(slope) {}

  double utility_at(CpuMhz alloc) const override {
    const double frac = std::min(alloc.get() / demand_, 1.0);
    return u_max_ - slope_ * (1.0 - frac);
  }
  CpuMhz alloc_for_utility(double u) const override {
    if (u >= u_max_) return CpuMhz{demand_};
    const double frac = 1.0 - (u_max_ - u) / slope_;
    return CpuMhz{std::clamp(frac, 0.0, 1.0) * demand_};
  }
  CpuMhz demand_max() const override { return CpuMhz{demand_}; }
  double utility_max() const override { return u_max_; }
  ConsumerKind kind() const override { return ConsumerKind::kJob; }

 private:
  double demand_, u_max_, slope_;
};

std::vector<const UtilityConsumer*> ptrs(const std::vector<LinearConsumer>& cs) {
  std::vector<const UtilityConsumer*> out;
  for (const auto& c : cs) out.push_back(&c);
  return out;
}

}  // namespace

TEST(Equalizer, EmptyConsumersIsEmptyResult) {
  const auto r = core::equalize({}, CpuMhz{1000.0});
  EXPECT_TRUE(r.allocations.empty());
  EXPECT_FALSE(r.contended);
}

TEST(Equalizer, UncontendedGivesEveryoneFullDemand) {
  std::vector<LinearConsumer> cs = {{1000.0, 0.9, 2.0}, {2000.0, 0.8, 2.0}};
  const auto r = core::equalize(ptrs(cs), CpuMhz{5000.0});
  EXPECT_FALSE(r.contended);
  EXPECT_DOUBLE_EQ(r.allocations[0].alloc.get(), 1000.0);
  EXPECT_DOUBLE_EQ(r.allocations[1].alloc.get(), 2000.0);
  EXPECT_DOUBLE_EQ(r.allocations[0].utility, 0.9);
  EXPECT_DOUBLE_EQ(r.allocations[1].utility, 0.8);
  EXPECT_DOUBLE_EQ(r.total_demand.get(), 3000.0);
}

TEST(Equalizer, ContendedEqualizesIdenticalConsumers) {
  std::vector<LinearConsumer> cs = {{2000.0, 1.0, 2.0}, {2000.0, 1.0, 2.0}};
  const auto r = core::equalize(ptrs(cs), CpuMhz{2000.0});
  EXPECT_TRUE(r.contended);
  // Symmetric: each gets half the capacity, utilities equal.
  EXPECT_NEAR(r.allocations[0].alloc.get(), 1000.0, 1.0);
  EXPECT_NEAR(r.allocations[1].alloc.get(), 1000.0, 1.0);
  EXPECT_NEAR(r.allocations[0].utility, r.allocations[1].utility, 1e-6);
  EXPECT_NEAR(r.u_star, 1.0 - 2.0 * 0.5, 1e-3);  // u at half demand
}

TEST(Equalizer, UtilitiesEqualizedAcrossAsymmetricConsumers) {
  // Different demands and slopes: at u*, each allocation is its inverse.
  std::vector<LinearConsumer> cs = {{3000.0, 0.9, 1.5}, {1000.0, 0.8, 3.0}, {2000.0, 1.0, 2.0}};
  const auto r = core::equalize(ptrs(cs), CpuMhz{3000.0});
  ASSERT_TRUE(r.contended);
  for (std::size_t i = 0; i < cs.size(); ++i) {
    if (r.allocations[i].alloc.get() < cs[i].demand_max().get() - 1.0) {
      EXPECT_NEAR(r.allocations[i].utility, r.u_star, 1e-3) << "consumer " << i;
    }
  }
  EXPECT_LE(r.total.get(), 3000.0 + 1e-6);
  EXPECT_GT(r.total.get(), 3000.0 * 0.999);  // uses all capacity
}

TEST(Equalizer, ConsumerThatCannotReachUStarIsClampedAtDemand) {
  // One consumer's max utility is below what the others reach.
  std::vector<LinearConsumer> cs = {{1000.0, 0.2, 1.0}, {2000.0, 1.0, 1.0}, {2000.0, 1.0, 1.0}};
  const auto r = core::equalize(ptrs(cs), CpuMhz{4200.0});
  ASSERT_TRUE(r.contended);
  EXPECT_GT(r.u_star, 0.2);
  // The weak consumer is clamped at its full demand and sits below u*.
  EXPECT_NEAR(r.allocations[0].alloc.get(), 1000.0, 1.0);
  EXPECT_NEAR(r.allocations[0].utility, 0.2, 1e-6);
  EXPECT_LT(r.allocations[0].utility, r.u_star);
}

TEST(Equalizer, MoreCapacityNeverLowersMinUtility) {
  // The max-min objective: the minimum achieved utility (not u*, which is
  // only defined up to clamping) is monotone in capacity and continuous
  // across the contended/uncontended boundary.
  std::vector<LinearConsumer> cs = {{3000.0, 0.9, 2.0}, {1500.0, 0.7, 1.0}, {2500.0, 1.0, 3.0}};
  double last = -1e9;
  for (double cap = 500.0; cap <= 8000.0; cap += 250.0) {
    const auto r = core::equalize(ptrs(cs), CpuMhz{cap});
    double min_u = 1e300;
    for (const auto& a : r.allocations) min_u = std::min(min_u, a.utility);
    ASSERT_GE(min_u, last - 1e-4) << "capacity " << cap;
    last = min_u;
  }
}

TEST(Equalizer, SingleConsumerGetsMinOfDemandAndCapacity) {
  std::vector<LinearConsumer> cs = {{2000.0, 0.9, 1.0}};
  const auto uncontended = core::equalize(ptrs(cs), CpuMhz{5000.0});
  EXPECT_DOUBLE_EQ(uncontended.allocations[0].alloc.get(), 2000.0);
  const auto contended = core::equalize(ptrs(cs), CpuMhz{800.0});
  EXPECT_NEAR(contended.allocations[0].alloc.get(), 800.0, 1.0);
}

TEST(Equalizer, StealingDirection) {
  // Paper: "continuously stealing resources from the more satisfied...
  // to be given to the less satisfied". Shrink capacity: the satisfied
  // (low-demand, high-utility) consumer's allocation shrinks first in
  // relative terms — both end at the same utility.
  std::vector<LinearConsumer> cs = {{1000.0, 1.0, 0.5},   // satisfied cheaply
                                    {4000.0, 1.0, 0.5}};  // needs a lot
  const auto r = core::equalize(ptrs(cs), CpuMhz{2500.0});
  ASSERT_TRUE(r.contended);
  EXPECT_NEAR(r.allocations[0].utility, r.allocations[1].utility, 1e-3);
  // Allocation is uneven (proportional to demand here) but utility even —
  // the paper's headline observation.
  EXPECT_NEAR(r.allocations[1].alloc.get() / r.allocations[0].alloc.get(), 4.0, 0.1);
}

// Property: random consumer populations — feasibility and equalization.
class EqualizerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EqualizerFuzz, FeasibleAndEqualized) {
  util::Rng rng(GetParam());
  std::vector<LinearConsumer> cs;
  const int n = 2 + static_cast<int>(rng.uniform_int(0, 40));
  double total_demand = 0.0;
  for (int i = 0; i < n; ++i) {
    const double demand = rng.uniform(100.0, 5000.0);
    cs.emplace_back(demand, rng.uniform(0.3, 1.0), rng.uniform(0.5, 4.0));
    total_demand += demand;
  }
  const double capacity = rng.uniform(0.2, 1.4) * total_demand;
  const auto r = core::equalize(ptrs(cs), CpuMhz{capacity});

  // Feasibility.
  ASSERT_LE(r.total.get(), capacity * (1.0 + 1e-6));
  // Per-consumer bounds.
  for (std::size_t i = 0; i < cs.size(); ++i) {
    ASSERT_GE(r.allocations[i].alloc.get(), -1e-9);
    ASSERT_LE(r.allocations[i].alloc.get(), cs[i].demand_max().get() + 1e-6);
  }
  if (r.contended) {
    // KKT-style equalization conditions: interior consumers sit at u*;
    // consumers clamped at full demand sit at or below u*; consumers
    // clamped at zero (already satisfied when starved) sit at or above.
    for (std::size_t i = 0; i < cs.size(); ++i) {
      const double alloc = r.allocations[i].alloc.get();
      const double u = r.allocations[i].utility;
      const bool at_demand = alloc >= cs[i].demand_max().get() * (1.0 - 1e-5);
      const bool at_zero = alloc <= 1e-6;
      if (at_demand) {
        ASSERT_LE(u, r.u_star + 5e-3) << "consumer " << i;
      } else if (at_zero) {
        ASSERT_GE(u, r.u_star - 5e-3) << "consumer " << i;
      } else {
        ASSERT_NEAR(u, r.u_star, 5e-3) << "consumer " << i;
      }
    }
    // Capacity essentially exhausted (equalization is water-tight).
    ASSERT_GT(r.total.get(), capacity * 0.995);
  } else {
    ASSERT_NEAR(r.total.get(), total_demand, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EqualizerFuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 42u));

// ---- Curve-cache vs. virtual-dispatch equivalence ---------------------------
// The flat-array hot loop (EqualizerOptions::use_curve_cache, the
// default) mirrors JobUtilityModel::speed_for_utility and
// TxUtilityModel::alloc_for_utility operation for operation, so with
// jobs preceding apps in the consumer vector the two paths sum in the
// same order and must agree exactly.

#include "utility/job_utility.hpp"
#include "utility/tx_utility.hpp"
#include "workload/job.hpp"
#include "workload/transactional.hpp"

namespace {

struct RealPopulation {
  std::vector<heteroplace::workload::Job> jobs;
  std::vector<heteroplace::workload::TxApp> apps;
  heteroplace::utility::JobUtilityModel job_model;
  heteroplace::utility::TxUtilityModel tx_model;
  std::vector<heteroplace::core::JobConsumer> jc;
  std::vector<heteroplace::core::TxConsumer> tc;
  std::vector<const UtilityConsumer*> consumers;

  RealPopulation(int n_jobs, int n_apps, std::uint64_t seed) {
    using namespace heteroplace;
    util::Rng rng(seed);
    const util::Seconds now{60000.0};
    for (int i = 0; i < n_jobs; ++i) {
      workload::JobSpec spec;
      spec.id = util::JobId{static_cast<unsigned>(i)};
      spec.work = util::MhzSeconds{rng.uniform(1.0e7, 6.0e7)};
      spec.max_speed = CpuMhz{3000.0};
      spec.importance = rng.chance(0.3) ? 2.0 : 1.0;
      spec.submit_time = util::Seconds{rng.uniform(0.0, 50000.0)};
      spec.completion_goal = util::Seconds{2.0 * spec.nominal_length().get()};
      jobs.emplace_back(std::move(spec));
    }
    for (int a = 0; a < n_apps; ++a) {
      workload::TxAppSpec spec;
      spec.id = util::AppId{static_cast<unsigned>(a)};
      spec.rt_goal = util::Seconds{rng.uniform(0.5, 2.0)};
      spec.service_demand = rng.uniform(2000.0, 8000.0);
      spec.importance = rng.chance(0.5) ? 1.5 : 1.0;
      apps.emplace_back(spec, workload::DemandTrace{rng.uniform(5.0, 40.0)});
    }
    jc.reserve(jobs.size());
    tc.reserve(apps.size());
    for (const auto& j : jobs) jc.emplace_back(j, job_model, now);
    for (const auto& app : apps) tc.emplace_back(app, tx_model, now);
    for (const auto& c : jc) consumers.push_back(&c);
    for (const auto& c : tc) consumers.push_back(&c);
  }
};

}  // namespace

TEST(EqualizerCurveCache, MatchesVirtualPathExactlyOnRealConsumers) {
  RealPopulation pop(/*n_jobs=*/60, /*n_apps=*/4, /*seed=*/91u);
  for (const double capacity : {20000.0, 60000.0, 120000.0}) {
    core::EqualizerOptions fast;
    fast.use_curve_cache = true;
    core::EqualizerOptions slow;
    slow.use_curve_cache = false;
    const auto rf = core::equalize(pop.consumers, CpuMhz{capacity}, fast);
    const auto rs = core::equalize(pop.consumers, CpuMhz{capacity}, slow);
    EXPECT_DOUBLE_EQ(rf.u_star, rs.u_star) << "capacity " << capacity;
    EXPECT_EQ(rf.contended, rs.contended);
    EXPECT_EQ(rf.iterations, rs.iterations);
    ASSERT_EQ(rf.allocations.size(), rs.allocations.size());
    for (std::size_t i = 0; i < rf.allocations.size(); ++i) {
      EXPECT_DOUBLE_EQ(rf.allocations[i].alloc.get(), rs.allocations[i].alloc.get())
          << "capacity " << capacity << " consumer " << i;
      EXPECT_DOUBLE_EQ(rf.allocations[i].utility, rs.allocations[i].utility)
          << "capacity " << capacity << " consumer " << i;
    }
    EXPECT_DOUBLE_EQ(rf.total.get(), rs.total.get());
  }
}

TEST(EqualizerCurveCache, GenericConsumersKeepVirtualSemantics) {
  // Consumers that export no closed form (like this file's
  // LinearConsumer) must behave identically under both flags.
  std::vector<LinearConsumer> cs = {{3000.0, 0.9, 1.5}, {1000.0, 0.8, 3.0}, {2000.0, 1.0, 2.0}};
  core::EqualizerOptions fast;
  fast.use_curve_cache = true;
  core::EqualizerOptions slow;
  slow.use_curve_cache = false;
  const auto rf = core::equalize(ptrs(cs), CpuMhz{3000.0}, fast);
  const auto rs = core::equalize(ptrs(cs), CpuMhz{3000.0}, slow);
  EXPECT_DOUBLE_EQ(rf.u_star, rs.u_star);
  for (std::size_t i = 0; i < cs.size(); ++i) {
    EXPECT_DOUBLE_EQ(rf.allocations[i].alloc.get(), rs.allocations[i].alloc.get());
  }
}

// --- warm start --------------------------------------------------------------

// Warm-starting the outer bisection from the previous cycle's u* must
// agree with the cold start to within the bisection tolerance and must
// converge in fewer iterations under slowly varying load.
TEST(EqualizerWarmStart, MatchesColdStartWithinToleranceAndConvergesFaster) {
  RealPopulation pop(/*n_jobs=*/60, /*n_apps=*/4, /*seed=*/91u);

  core::EqualizerOptions cold;
  core::EqualizerOptions warm;
  warm.warm_start = true;
  core::EqualizerState state;

  // A slowly drifting capacity sequence, as a stable cluster between
  // control cycles would see (small churn, per-mille scale shifts).
  const std::vector<double> capacities = {60000.0, 59950.0, 59900.0, 59980.0,
                                          60050.0, 60020.0, 60000.0};
  long cold_iters = 0;
  long warm_iters = 0;
  bool first = true;
  for (const double capacity : capacities) {
    const auto rc = core::equalize(pop.consumers, CpuMhz{capacity}, cold);
    const auto rw = core::equalize(pop.consumers, CpuMhz{capacity}, warm, &state);
    ASSERT_TRUE(rc.contended);
    EXPECT_TRUE(rw.contended);
    EXPECT_NEAR(rw.u_star, rc.u_star, 2.0 * cold.u_tolerance) << "capacity " << capacity;
    ASSERT_EQ(rw.allocations.size(), rc.allocations.size());
    for (std::size_t i = 0; i < rw.allocations.size(); ++i) {
      // Allocations move smoothly with u*; a tolerance-sized u* gap can
      // only produce a small allocation gap.
      EXPECT_NEAR(rw.allocations[i].alloc.get(), rc.allocations[i].alloc.get(),
                  1.0 + 1e-3 * rc.allocations[i].alloc.get())
          << "capacity " << capacity << " consumer " << i;
    }
    if (!first) {  // the first warm call has no previous u* and runs cold
      cold_iters += rc.iterations;
      warm_iters += rw.iterations;
    }
    first = false;
  }
  EXPECT_LT(warm_iters, cold_iters / 2) << "warm start did not pay off";
}

// The flag off is the cold path bit for bit, state threading or not.
TEST(EqualizerWarmStart, DisabledFlagIsBitIdenticalToColdPath) {
  RealPopulation pop(/*n_jobs=*/40, /*n_apps=*/3, /*seed=*/17u);
  core::EqualizerOptions opts;  // warm_start defaults to false
  core::EqualizerState state;
  for (const double capacity : {30000.0, 28000.0, 26000.0}) {
    const auto plain = core::equalize(pop.consumers, CpuMhz{capacity}, opts);
    const auto threaded = core::equalize(pop.consumers, CpuMhz{capacity}, opts, &state);
    EXPECT_DOUBLE_EQ(plain.u_star, threaded.u_star);
    EXPECT_EQ(plain.iterations, threaded.iterations);
    for (std::size_t i = 0; i < plain.allocations.size(); ++i) {
      EXPECT_DOUBLE_EQ(plain.allocations[i].alloc.get(), threaded.allocations[i].alloc.get());
    }
  }
}

// An uncontended cycle invalidates the carried u*: the next contended
// cycle must fall back to a cold bracket, not warm-start from stale data.
TEST(EqualizerWarmStart, UncontendedCycleInvalidatesCarriedState) {
  std::vector<LinearConsumer> cs = {{2000.0, 1.0, 2.0}, {2000.0, 1.0, 2.0}};
  core::EqualizerOptions warm;
  warm.warm_start = true;
  core::EqualizerState state;

  (void)core::equalize(ptrs(cs), CpuMhz{2000.0}, warm, &state);
  EXPECT_TRUE(state.valid);
  (void)core::equalize(ptrs(cs), CpuMhz{10000.0}, warm, &state);  // uncontended
  EXPECT_FALSE(state.valid);
  // And the next contended call still lands on the correct u*.
  const auto cold = core::equalize(ptrs(cs), CpuMhz{2000.0}, core::EqualizerOptions{});
  const auto rewarmed = core::equalize(ptrs(cs), CpuMhz{2000.0}, warm, &state);
  EXPECT_NEAR(rewarmed.u_star, cold.u_star, 2.0 * warm.u_tolerance);
}

// u_tolerance = 0 is legal (the cold path stops on max_iterations); the
// warm-start walks must not spin on a zero step.
TEST(EqualizerWarmStart, ZeroToleranceTerminates) {
  std::vector<LinearConsumer> cs = {{2000.0, 1.0, 2.0}, {2000.0, 1.0, 2.0}};
  core::EqualizerOptions opts;
  opts.warm_start = true;
  opts.u_tolerance = 0.0;
  core::EqualizerState state;
  const auto first = core::equalize(ptrs(cs), CpuMhz{2000.0}, opts, &state);
  const auto second = core::equalize(ptrs(cs), CpuMhz{2000.0}, opts, &state);
  EXPECT_LE(first.iterations, opts.max_iterations);
  EXPECT_LE(second.iterations, opts.max_iterations);
  EXPECT_NEAR(second.u_star, first.u_star, 1e-6);
}
