// Tests for the cluster substrate: nodes, VMs, placement bookkeeping.

#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

using namespace heteroplace;
using namespace heteroplace::util::literals;
using cluster::Cluster;
using cluster::Resources;
using cluster::VmKind;
using cluster::VmState;

namespace {
Resources res(double cpu, double mem) { return Resources{util::CpuMhz{cpu}, util::MemMb{mem}}; }
}  // namespace

// --- Resources ----------------------------------------------------------------

TEST(Resources, ArithmeticAndFits) {
  const Resources a = res(1000, 512);
  const Resources b = res(500, 256);
  EXPECT_EQ(a + b, res(1500, 768));
  EXPECT_EQ(a - b, res(500, 256));
  EXPECT_TRUE(b.fits_in(a));
  EXPECT_FALSE(a.fits_in(b));
  EXPECT_TRUE(a.fits_in(a));  // boundary
}

TEST(Resources, CpuEpsilonAbsorbsFloatNoise) {
  const Resources a = res(1000.0000001, 100);
  EXPECT_TRUE(a.fits_in(res(1000, 100)));
}

// --- Node -----------------------------------------------------------------------

TEST(Node, AdmitsAndReleasesVms) {
  cluster::Node n(util::NodeId{0}, res(12000, 4096));
  EXPECT_TRUE(n.add_vm(util::VmId{1}, res(0, 1300)));
  EXPECT_TRUE(n.add_vm(util::VmId{2}, res(0, 1300)));
  EXPECT_TRUE(n.add_vm(util::VmId{3}, res(0, 1300)));
  // Only 3 × 1300 MB fit in 4096 MB — the paper's memory constraint.
  EXPECT_FALSE(n.add_vm(util::VmId{4}, res(0, 1300)));
  EXPECT_EQ(n.resident_count(), 3u);
  EXPECT_TRUE(n.remove_vm(util::VmId{2}));
  EXPECT_TRUE(n.add_vm(util::VmId{4}, res(0, 1300)));
}

TEST(Node, RejectsDuplicateVm) {
  cluster::Node n(util::NodeId{0}, res(12000, 4096));
  EXPECT_TRUE(n.add_vm(util::VmId{1}, res(0, 100)));
  EXPECT_FALSE(n.add_vm(util::VmId{1}, res(0, 100)));
}

TEST(Node, RemoveUnknownVmFails) {
  cluster::Node n(util::NodeId{0}, res(12000, 4096));
  EXPECT_FALSE(n.remove_vm(util::VmId{9}));
}

TEST(Node, CpuShareAccounting) {
  cluster::Node n(util::NodeId{0}, res(12000, 4096));
  ASSERT_TRUE(n.add_vm(util::VmId{1}, res(0, 1000)));
  ASSERT_TRUE(n.add_vm(util::VmId{2}, res(0, 1000)));
  EXPECT_TRUE(n.set_vm_cpu(util::VmId{1}, 8000_mhz));
  EXPECT_TRUE(n.set_vm_cpu(util::VmId{2}, 4000_mhz));
  EXPECT_DOUBLE_EQ(n.cpu_free().get(), 0.0);
  // Over-commit rejected, state unchanged.
  EXPECT_FALSE(n.set_vm_cpu(util::VmId{2}, 4001_mhz));
  EXPECT_DOUBLE_EQ(n.used().cpu.get(), 12000.0);
  // Shrink then regrow.
  EXPECT_TRUE(n.set_vm_cpu(util::VmId{1}, 1000_mhz));
  EXPECT_TRUE(n.set_vm_cpu(util::VmId{2}, 11000_mhz));
}

TEST(Node, SetCpuOnNonResidentFails) {
  cluster::Node n(util::NodeId{0}, res(12000, 4096));
  EXPECT_FALSE(n.set_vm_cpu(util::VmId{1}, 100_mhz));
}

// --- VM state machine ------------------------------------------------------------

TEST(VmStateMachine, LegalLifecyclePath) {
  using cluster::vm_transition_allowed;
  EXPECT_TRUE(vm_transition_allowed(VmState::kPending, VmState::kStarting));
  EXPECT_TRUE(vm_transition_allowed(VmState::kStarting, VmState::kRunning));
  EXPECT_TRUE(vm_transition_allowed(VmState::kRunning, VmState::kSuspending));
  EXPECT_TRUE(vm_transition_allowed(VmState::kSuspending, VmState::kSuspended));
  EXPECT_TRUE(vm_transition_allowed(VmState::kSuspended, VmState::kResuming));
  EXPECT_TRUE(vm_transition_allowed(VmState::kResuming, VmState::kRunning));
  EXPECT_TRUE(vm_transition_allowed(VmState::kRunning, VmState::kMigrating));
  EXPECT_TRUE(vm_transition_allowed(VmState::kMigrating, VmState::kRunning));
  EXPECT_TRUE(vm_transition_allowed(VmState::kMigrating, VmState::kSuspended));
}

TEST(VmStateMachine, IllegalEdgesRejected) {
  using cluster::vm_transition_allowed;
  EXPECT_FALSE(vm_transition_allowed(VmState::kPending, VmState::kRunning));
  EXPECT_FALSE(vm_transition_allowed(VmState::kSuspended, VmState::kRunning));
  EXPECT_FALSE(vm_transition_allowed(VmState::kStopped, VmState::kStarting));
  EXPECT_FALSE(vm_transition_allowed(VmState::kRunning, VmState::kResuming));
}

TEST(VmStateMachine, MemoryAndExecutionSemantics) {
  EXPECT_TRUE(cluster::vm_state_holds_memory(VmState::kRunning));
  EXPECT_TRUE(cluster::vm_state_holds_memory(VmState::kSuspending));
  EXPECT_FALSE(cluster::vm_state_holds_memory(VmState::kSuspended));
  EXPECT_FALSE(cluster::vm_state_holds_memory(VmState::kPending));
  EXPECT_TRUE(cluster::vm_state_executes(VmState::kRunning));
  EXPECT_FALSE(cluster::vm_state_executes(VmState::kStarting));
}

// --- Cluster ----------------------------------------------------------------------

TEST(ClusterState, AddNodesAndCapacity) {
  Cluster c;
  c.add_nodes(25, res(12000, 4096));
  EXPECT_EQ(c.node_count(), 25u);
  EXPECT_DOUBLE_EQ(c.total_capacity().cpu.get(), 300000.0);  // the paper's cluster
  EXPECT_DOUBLE_EQ(c.total_capacity().mem.get(), 25.0 * 4096.0);
}

TEST(ClusterState, PlaceAndUnplaceVm) {
  Cluster c;
  const auto n0 = c.add_node(res(12000, 4096));
  const auto vm = c.create_job_vm(util::JobId{0}, 1300_mb);
  EXPECT_FALSE(c.vm(vm).placed());
  ASSERT_TRUE(c.place_vm(vm, n0));
  EXPECT_TRUE(c.vm(vm).placed());
  EXPECT_DOUBLE_EQ(c.node(n0).used().mem.get(), 1300.0);
  // Double placement fails.
  EXPECT_FALSE(c.place_vm(vm, n0));
  c.unplace_vm(vm);
  EXPECT_FALSE(c.vm(vm).placed());
  EXPECT_DOUBLE_EQ(c.node(n0).used().mem.get(), 0.0);
}

TEST(ClusterState, CpuShareRequiresPlacement) {
  Cluster c;
  const auto n0 = c.add_node(res(12000, 4096));
  const auto vm = c.create_job_vm(util::JobId{0}, 1300_mb);
  EXPECT_FALSE(c.set_cpu_share(vm, 100_mhz));
  ASSERT_TRUE(c.place_vm(vm, n0));
  EXPECT_TRUE(c.set_cpu_share(vm, 3000_mhz));
  EXPECT_FALSE(c.set_cpu_share(vm, 13000_mhz));  // exceeds node
  EXPECT_FALSE(c.set_cpu_share(vm, util::CpuMhz{-5.0}));
  c.unplace_vm(vm);
  EXPECT_DOUBLE_EQ(c.vm(vm).cpu_share.get(), 0.0);
}

TEST(ClusterState, IllegalTransitionThrows) {
  Cluster c;
  const auto vm = c.create_job_vm(util::JobId{0}, 1300_mb);
  EXPECT_THROW(c.set_vm_state(vm, VmState::kRunning), std::logic_error);
}

TEST(ClusterState, FreeMemorySlots) {
  Cluster c;
  const auto n0 = c.add_node(res(12000, 4096));
  EXPECT_EQ(c.free_memory_slots(n0, 1300_mb), 3);
  const auto vm = c.create_web_vm(util::AppId{0}, 1024_mb);
  ASSERT_TRUE(c.place_vm(vm, n0));
  EXPECT_EQ(c.free_memory_slots(n0, 1300_mb), 2);  // 3072 left → 2 jobs
  EXPECT_EQ(c.free_memory_slots(n0, 0_mb), 0);
}

TEST(ClusterState, AllocatedCpuByKind) {
  Cluster c;
  const auto n0 = c.add_node(res(12000, 4096));
  const auto job_vm = c.create_job_vm(util::JobId{0}, 1300_mb);
  const auto web_vm = c.create_web_vm(util::AppId{0}, 1024_mb);
  ASSERT_TRUE(c.place_vm(job_vm, n0));
  ASSERT_TRUE(c.place_vm(web_vm, n0));
  c.set_vm_state(job_vm, VmState::kStarting);
  c.set_vm_state(job_vm, VmState::kRunning);
  c.set_vm_state(web_vm, VmState::kStarting);
  c.set_vm_state(web_vm, VmState::kRunning);
  ASSERT_TRUE(c.set_cpu_share(job_vm, 3000_mhz));
  ASSERT_TRUE(c.set_cpu_share(web_vm, 5000_mhz));
  EXPECT_DOUBLE_EQ(c.allocated_cpu(VmKind::kJobContainer).get(), 3000.0);
  EXPECT_DOUBLE_EQ(c.allocated_cpu(VmKind::kWebInstance).get(), 5000.0);
}

TEST(ClusterState, VmsInStateFiltersAndOrders) {
  Cluster c;
  c.add_node(res(12000, 8192));
  const auto v1 = c.create_job_vm(util::JobId{1}, 100_mb);
  const auto v2 = c.create_job_vm(util::JobId{2}, 100_mb);
  const auto v3 = c.create_web_vm(util::AppId{0}, 100_mb);
  (void)v3;
  auto pending = c.vms_in_state(VmKind::kJobContainer, VmState::kPending);
  ASSERT_EQ(pending.size(), 2u);
  EXPECT_EQ(pending[0], v1);
  EXPECT_EQ(pending[1], v2);
}

TEST(ClusterState, ValidateCleanClusterHasNoIssues) {
  Cluster c;
  const auto n0 = c.add_node(res(12000, 4096));
  const auto vm = c.create_job_vm(util::JobId{0}, 1300_mb);
  ASSERT_TRUE(c.place_vm(vm, n0));
  c.set_vm_state(vm, VmState::kStarting);
  EXPECT_TRUE(c.validate().empty());
  c.set_vm_state(vm, VmState::kRunning);
  ASSERT_TRUE(c.set_cpu_share(vm, 1000_mhz));
  EXPECT_TRUE(c.validate().empty());
}

TEST(ClusterState, ValidateDetectsSuspendedVmHoldingMemory) {
  Cluster c;
  const auto n0 = c.add_node(res(12000, 4096));
  const auto vm = c.create_job_vm(util::JobId{0}, 1300_mb);
  ASSERT_TRUE(c.place_vm(vm, n0));
  c.set_vm_state(vm, VmState::kStarting);
  c.set_vm_state(vm, VmState::kRunning);
  c.set_vm_state(vm, VmState::kSuspending);
  c.set_vm_state(vm, VmState::kSuspended);
  // Forgot to unplace: the validator must flag it.
  EXPECT_FALSE(c.validate().empty());
  c.unplace_vm(vm);
  EXPECT_TRUE(c.validate().empty());
}

// Property: random legal operation sequences keep the cluster valid.
class ClusterFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClusterFuzz, RandomOpsPreserveInvariants) {
  util::Rng rng(GetParam());
  Cluster c;
  c.add_nodes(4, res(12000, 4096));
  std::vector<util::VmId> vms;
  for (int i = 0; i < 12; ++i) {
    vms.push_back(c.create_job_vm(util::JobId{static_cast<unsigned>(i)}, 1300_mb));
  }
  for (int step = 0; step < 400; ++step) {
    const auto vm_id = vms[rng.uniform_int(0, vms.size() - 1)];
    const auto& vm = c.vm(vm_id);
    switch (vm.state) {
      case VmState::kPending: {
        const util::NodeId n{static_cast<unsigned>(rng.uniform_int(0, 3))};
        if (c.place_vm(vm_id, n)) c.set_vm_state(vm_id, VmState::kStarting);
        break;
      }
      case VmState::kStarting:
        c.set_vm_state(vm_id, VmState::kRunning);
        break;
      case VmState::kRunning:
        if (rng.chance(0.5)) {
          (void)c.set_cpu_share(vm_id, util::CpuMhz{rng.uniform(0.0, 3000.0)});
        } else {
          (void)c.set_cpu_share(vm_id, util::CpuMhz{0.0});
          c.set_vm_state(vm_id, VmState::kSuspending);
        }
        break;
      case VmState::kSuspending:
        c.set_vm_state(vm_id, VmState::kSuspended);
        c.unplace_vm(vm_id);
        break;
      case VmState::kSuspended: {
        const util::NodeId n{static_cast<unsigned>(rng.uniform_int(0, 3))};
        if (c.place_vm(vm_id, n)) c.set_vm_state(vm_id, VmState::kResuming);
        break;
      }
      case VmState::kResuming:
        c.set_vm_state(vm_id, VmState::kRunning);
        break;
      default:
        break;
    }
    const auto issues = c.validate();
    ASSERT_TRUE(issues.empty()) << "step " << step << ": " << issues.front();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterFuzz, ::testing::Values(3u, 17u, 2024u));
