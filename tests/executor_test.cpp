// Tests for the action executor: VM lifecycle on the simulation clock,
// latencies, completion scheduling, suspend/resume/migrate mechanics.

#include "core/executor.hpp"

#include <gtest/gtest.h>

#include "core/world.hpp"
#include "sim/engine.hpp"

using namespace heteroplace;
using namespace heteroplace::util::literals;
using cluster::PlacementPlan;
using cluster::Resources;
using cluster::VmState;
using core::ActionExecutor;
using core::World;
using util::NodeId;
using util::Seconds;
using workload::JobPhase;
using workload::JobSpec;

namespace {

JobSpec make_spec(unsigned id, double work = 3.0e6) {
  JobSpec s;
  s.id = util::JobId{id};
  s.work = util::MhzSeconds{work};
  s.max_speed = 3000_mhz;
  s.memory = 1300_mb;
  s.submit_time = 0_s;
  s.completion_goal = 4000_s;
  return s;
}

struct Fixture {
  sim::Engine engine;
  World world;
  ActionExecutor executor{engine, world};
  std::vector<util::JobId> completed;

  Fixture(int nodes = 2) {
    world.cluster().add_nodes(nodes, Resources{12000_mhz, 4096_mb});
    executor.set_completion_callback(
        [this](const workload::Job& j) { completed.push_back(j.id()); });
  }

  PlacementPlan plan_one(unsigned job_id, unsigned node, double cpu) {
    PlacementPlan p;
    p.jobs.push_back({util::JobId{job_id}, NodeId{node}, util::CpuMhz{cpu}});
    return p;
  }
};

}  // namespace

TEST(Executor, StartsJobWithBootLatency) {
  Fixture f;
  f.world.submit_job(make_spec(0));
  f.executor.apply(f.plan_one(0, 0, 3000.0));
  auto& job = f.world.job(util::JobId{0});
  EXPECT_EQ(job.phase(), JobPhase::kStarting);
  // Memory reserved immediately; no CPU yet.
  EXPECT_DOUBLE_EQ(f.world.cluster().node(NodeId{0}).used().mem.get(), 1300.0);
  EXPECT_DOUBLE_EQ(f.world.cluster().node(NodeId{0}).used().cpu.get(), 0.0);

  f.engine.run_until(59_s);
  EXPECT_EQ(job.phase(), JobPhase::kStarting);
  f.engine.run_until(61_s);
  EXPECT_EQ(job.phase(), JobPhase::kRunning);
  EXPECT_DOUBLE_EQ(job.speed().get(), 3000.0);
  EXPECT_EQ(f.executor.counts().starts, 1);
}

TEST(Executor, JobCompletesOnSchedule) {
  Fixture f;
  f.world.submit_job(make_spec(0, /*work=*/3.0e6));  // 1000 s at 3000 MHz
  f.executor.apply(f.plan_one(0, 0, 3000.0));
  f.engine.run_until(1059_s);  // 60 s boot + 1000 s run = 1060
  EXPECT_TRUE(f.completed.empty());
  f.engine.run_until(1061_s);
  ASSERT_EQ(f.completed.size(), 1u);
  auto& job = f.world.job(util::JobId{0});
  EXPECT_EQ(job.phase(), JobPhase::kCompleted);
  EXPECT_NEAR(job.completion_time().get(), 1060.0, 1e-6);
  // Resources released.
  EXPECT_DOUBLE_EQ(f.world.cluster().node(NodeId{0}).used().mem.get(), 0.0);
  EXPECT_DOUBLE_EQ(f.world.cluster().node(NodeId{0}).used().cpu.get(), 0.0);
  EXPECT_TRUE(f.world.cluster().validate().empty());
}

TEST(Executor, ResizeReschedulesCompletion) {
  Fixture f;
  f.world.submit_job(make_spec(0, 3.0e6));
  f.executor.apply(f.plan_one(0, 0, 3000.0));
  f.engine.run_until(560_s);  // 500 s of running: 1.5e6 done
  // Halve the speed: remaining 1.5e6 at 1500 → 1000 s more.
  f.executor.apply(f.plan_one(0, 0, 1500.0));
  f.engine.run_until(5000_s);
  ASSERT_EQ(f.completed.size(), 1u);
  EXPECT_NEAR(f.world.job(util::JobId{0}).completion_time().get(), 1560.0, 1e-6);
}

TEST(Executor, SuspendFreesMemoryAfterLatency) {
  Fixture f;
  f.world.submit_job(make_spec(0));
  f.executor.apply(f.plan_one(0, 0, 3000.0));
  f.engine.run_until(600_s);
  // Empty plan: the running job must be suspended.
  f.executor.apply(PlacementPlan{});
  auto& job = f.world.job(util::JobId{0});
  EXPECT_EQ(job.phase(), JobPhase::kSuspending);
  EXPECT_DOUBLE_EQ(job.speed().get(), 0.0);
  // Memory still held during the suspend latency.
  EXPECT_DOUBLE_EQ(f.world.cluster().node(NodeId{0}).used().mem.get(), 1300.0);
  f.engine.run_until(616_s);
  EXPECT_EQ(job.phase(), JobPhase::kSuspended);
  EXPECT_DOUBLE_EQ(f.world.cluster().node(NodeId{0}).used().mem.get(), 0.0);
  EXPECT_EQ(f.executor.counts().suspends, 1);
  EXPECT_EQ(job.suspend_count(), 1);
  EXPECT_TRUE(f.world.cluster().validate().empty());
}

TEST(Executor, SuspendedJobMakesNoProgress) {
  Fixture f;
  f.world.submit_job(make_spec(0, 3.0e6));
  f.executor.apply(f.plan_one(0, 0, 3000.0));
  f.engine.run_until(560_s);  // 500 s run: half done
  f.executor.apply(PlacementPlan{});
  f.engine.run_until(2000_s);
  auto& job = f.world.job(util::JobId{0});
  job.advance_to(2000_s);
  EXPECT_NEAR(job.done().get(), 1.5e6, 1.0);
  EXPECT_TRUE(f.completed.empty());
}

TEST(Executor, ResumePlacesOnNewNodeWithLatency) {
  Fixture f;
  f.world.submit_job(make_spec(0, 3.0e6));
  f.executor.apply(f.plan_one(0, 0, 3000.0));
  f.engine.run_until(560_s);
  f.executor.apply(PlacementPlan{});  // suspend
  f.engine.run_until(700_s);
  f.executor.apply(f.plan_one(0, 1, 3000.0));  // resume on node 1
  auto& job = f.world.job(util::JobId{0});
  EXPECT_EQ(job.phase(), JobPhase::kResuming);
  EXPECT_EQ(job.node().get(), 1u);
  f.engine.run_until(800_s);  // resume latency 90 s
  EXPECT_EQ(job.phase(), JobPhase::kRunning);
  EXPECT_EQ(f.executor.counts().resumes, 1);
  // Remaining 1.5e6 at 3000 → completes 500 s after 790.
  f.engine.run_until(5000_s);
  ASSERT_EQ(f.completed.size(), 1u);
  EXPECT_NEAR(job.completion_time().get(), 1290.0, 1e-6);
}

TEST(Executor, MigrationMovesMemoryAndPausesProgress) {
  Fixture f;
  f.world.submit_job(make_spec(0, 3.0e6));
  f.executor.apply(f.plan_one(0, 0, 3000.0));
  f.engine.run_until(560_s);  // half done
  f.executor.apply(f.plan_one(0, 1, 3000.0));  // move to node 1
  auto& job = f.world.job(util::JobId{0});
  EXPECT_EQ(job.phase(), JobPhase::kMigrating);
  EXPECT_EQ(job.migrate_count(), 1);
  EXPECT_DOUBLE_EQ(f.world.cluster().node(NodeId{0}).used().mem.get(), 0.0);
  EXPECT_DOUBLE_EQ(f.world.cluster().node(NodeId{1}).used().mem.get(), 1300.0);
  f.engine.run_until(681_s);  // migrate latency 120 s
  EXPECT_EQ(job.phase(), JobPhase::kRunning);
  // 120 s of no progress: completion pushed to 560+120+500 = 1180.
  f.engine.run_until(5000_s);
  ASSERT_EQ(f.completed.size(), 1u);
  EXPECT_NEAR(job.completion_time().get(), 1180.0, 1e-6);
  EXPECT_EQ(f.executor.counts().migrations, 1);
}

TEST(Executor, MigrationChainResolvesViaFixpoint) {
  // Nodes sized so two jobs cannot coexist: each node fits one job.
  sim::Engine engine;
  World world;
  world.cluster().add_nodes(3, Resources{12000_mhz, 1500_mb});
  ActionExecutor executor{engine, world};
  world.submit_job(make_spec(0));
  world.submit_job(make_spec(1));
  {
    PlacementPlan p;
    p.jobs.push_back({util::JobId{0}, NodeId{0}, 3000_mhz});
    p.jobs.push_back({util::JobId{1}, NodeId{1}, 3000_mhz});
    executor.apply(p);
  }
  engine.run_until(100_s);
  // Chain: job0 → node 1 is blocked until job1 → node 2 frees it.
  PlacementPlan p2;
  p2.jobs.push_back({util::JobId{0}, NodeId{1}, 3000_mhz});
  p2.jobs.push_back({util::JobId{1}, NodeId{2}, 3000_mhz});
  executor.apply(p2);
  EXPECT_EQ(world.job(util::JobId{0}).node().get(), 1u);
  EXPECT_EQ(world.job(util::JobId{1}).node().get(), 2u);
  EXPECT_EQ(executor.counts().migrations, 2);
  EXPECT_TRUE(world.cluster().validate().empty());
}

TEST(Executor, StartRetriesWhenMemoryIsDraining) {
  // One node; 3 jobs fill its memory. Suspend one and immediately start
  // another: the start is blocked on the draining suspension, then the
  // retry succeeds.
  Fixture f(1);
  for (unsigned i = 0; i < 4; ++i) f.world.submit_job(make_spec(i));
  {
    PlacementPlan p;
    for (unsigned i = 0; i < 3; ++i) {
      p.jobs.push_back({util::JobId{i}, NodeId{0}, 3000_mhz});
    }
    f.executor.apply(p);
  }
  f.engine.run_until(600_s);
  // New plan: job 0 out, job 3 in.
  PlacementPlan p2;
  p2.jobs.push_back({util::JobId{1}, NodeId{0}, 3000_mhz});
  p2.jobs.push_back({util::JobId{2}, NodeId{0}, 3000_mhz});
  p2.jobs.push_back({util::JobId{3}, NodeId{0}, 3000_mhz});
  f.executor.apply(p2);
  // Immediately: job 3 could not be placed (memory still draining).
  EXPECT_EQ(f.world.job(util::JobId{3}).phase(), JobPhase::kPending);
  // After the suspend latency + retry margin, the start goes through.
  f.engine.run_until(620_s);
  EXPECT_EQ(f.world.job(util::JobId{3}).phase(), JobPhase::kStarting);
  EXPECT_TRUE(f.world.cluster().validate().empty());
}

TEST(Executor, InstanceLifecycle) {
  Fixture f;
  workload::TxAppSpec spec;
  spec.id = util::AppId{0};
  spec.name = "web";
  spec.instance_memory = 1024_mb;
  f.world.add_app(workload::TxApp{spec, workload::DemandTrace{10.0}});

  PlacementPlan p;
  p.instances.push_back({util::AppId{0}, NodeId{0}, 6000_mhz});
  f.executor.apply(p);
  EXPECT_EQ(f.executor.counts().instance_starts, 1);
  EXPECT_DOUBLE_EQ(f.world.cluster().node(NodeId{0}).used().mem.get(), 1024.0);
  EXPECT_DOUBLE_EQ(f.world.cluster().allocated_cpu(cluster::VmKind::kWebInstance).get(), 0.0);

  f.engine.run_until(121_s);  // instance start latency 120 s
  EXPECT_DOUBLE_EQ(f.world.cluster().allocated_cpu(cluster::VmKind::kWebInstance).get(), 6000.0);

  // Resize.
  PlacementPlan p2;
  p2.instances.push_back({util::AppId{0}, NodeId{0}, 9000_mhz});
  f.executor.apply(p2);
  EXPECT_DOUBLE_EQ(f.world.cluster().allocated_cpu(cluster::VmKind::kWebInstance).get(), 9000.0);

  // Stop.
  f.executor.apply(PlacementPlan{});
  EXPECT_EQ(f.executor.counts().instance_stops, 1);
  EXPECT_DOUBLE_EQ(f.world.cluster().node(NodeId{0}).used().mem.get(), 0.0);
  EXPECT_TRUE(f.world.cluster().validate().empty());
}

TEST(Executor, StoppingABootingInstanceCancelsItsStart) {
  Fixture f;
  workload::TxAppSpec spec;
  spec.id = util::AppId{0};
  spec.instance_memory = 1024_mb;
  f.world.add_app(workload::TxApp{spec, workload::DemandTrace{10.0}});

  PlacementPlan p;
  p.instances.push_back({util::AppId{0}, NodeId{0}, 6000_mhz});
  f.executor.apply(p);
  f.engine.run_until(50_s);  // mid-boot
  f.executor.apply(PlacementPlan{});
  f.engine.run_until(300_s);
  // The cancelled boot must not grant CPU later.
  EXPECT_DOUBLE_EQ(f.world.cluster().allocated_cpu(cluster::VmKind::kWebInstance).get(), 0.0);
  EXPECT_TRUE(f.world.cluster().validate().empty());
}

TEST(Executor, MidTransitionShareUpdateAppliedOnCompletion) {
  Fixture f;
  f.world.submit_job(make_spec(0));
  f.executor.apply(f.plan_one(0, 0, 3000.0));
  f.engine.run_until(30_s);  // still booting
  // Replan with a lower share while the job is starting.
  f.executor.apply(f.plan_one(0, 0, 1000.0));
  f.engine.run_until(100_s);
  EXPECT_EQ(f.world.job(util::JobId{0}).phase(), JobPhase::kRunning);
  EXPECT_DOUBLE_EQ(f.world.job(util::JobId{0}).speed().get(), 1000.0);
}

TEST(Executor, CountsDeltaResetsBetweenCycles) {
  Fixture f;
  f.world.submit_job(make_spec(0));
  f.executor.apply(f.plan_one(0, 0, 3000.0));
  auto d1 = f.executor.take_counts_delta();
  EXPECT_EQ(d1.starts, 1);
  auto d2 = f.executor.take_counts_delta();
  EXPECT_EQ(d2.starts, 0);
}
