// Observability layer tests: trace recorder ring bounding and Chrome
// JSON export, trace mode parsing, the metrics registry (counter /
// gauge / histogram semantics, Prometheus text round-trip, JSON
// snapshot), fail-loud obs.* spec validation in both config loaders,
// and the invariance contracts the tentpole promises — an obs-enabled
// run is digest-identical to an obs-off run (single-world and
// federated, serial and parallel), and the recorded trace file is
// byte-identical across engine thread counts.

#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace_check.hpp"
#include "scenario/config_loader.hpp"
#include "scenario/experiment.hpp"
#include "scenario/federation_experiment.hpp"
#include "scenario/obs_factory.hpp"
#include "scenario/result_digest.hpp"
#include "util/config.hpp"

using namespace heteroplace;

namespace {

std::string temp_path(const std::string& name) { return ::testing::TempDir() + name; }

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace

// --- trace recorder ----------------------------------------------------------

TEST(TraceRecorder, ModeParsing) {
  EXPECT_EQ(obs::trace_mode_from_string("off"), obs::TraceMode::kOff);
  EXPECT_EQ(obs::trace_mode_from_string("ring"), obs::TraceMode::kRing);
  EXPECT_EQ(obs::trace_mode_from_string("stream"), obs::TraceMode::kStream);
  EXPECT_THROW((void)obs::trace_mode_from_string("perfetto"), std::invalid_argument);
}

TEST(TraceRecorder, RingBoundsMemoryAndCountsDrops) {
  obs::TraceRecorder::Options opts;
  opts.mode = obs::TraceMode::kRing;
  opts.ring_capacity = 4;
  obs::TraceRecorder tr(opts);
  for (int i = 0; i < 10; ++i) {
    tr.instant(0, obs::Lane::kController, "tick", static_cast<double>(i));
  }
  EXPECT_EQ(tr.recorded(), 4u);
  EXPECT_EQ(tr.dropped(), 6u);
  // Oldest-first snapshot: the survivors are ticks 6..9.
  const std::vector<obs::TraceEvent> evs = tr.snapshot();
  ASSERT_EQ(evs.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(evs[static_cast<std::size_t>(i)].ts_s, 6.0 + i);
  }
}

TEST(TraceRecorder, WriteJsonIsValidChromeTrace) {
  obs::TraceRecorder::Options opts;
  opts.mode = obs::TraceMode::kRing;
  obs::TraceRecorder tr(opts);
  tr.set_process_name(0, "global");
  tr.set_process_name(1, "dc0");
  tr.begin(1, obs::Lane::kController, "cycle", 10.0, {{"apps", 2.0}});
  tr.instant(1, obs::Lane::kExecutor, "job_start", 10.0, {{"job", 7.0}});
  tr.end(1, obs::Lane::kController, "cycle", 10.5);
  tr.async_begin(0, obs::Lane::kMigration, "migration", 42, 11.0, {{"from", 0.0}, {"to", 1.0}});
  tr.async_end(0, obs::Lane::kMigration, "migration", 42, 15.0);
  std::ostringstream os;
  tr.write_json(os);
  const std::vector<std::string> problems = obs::validate_chrome_trace(os.str());
  EXPECT_TRUE(problems.empty()) << (problems.empty() ? "" : problems.front());
}

TEST(TraceRecorder, ValidatorRejectsUnbalancedSpans) {
  obs::TraceRecorder::Options opts;
  opts.mode = obs::TraceMode::kRing;
  obs::TraceRecorder tr(opts);
  tr.begin(0, obs::Lane::kController, "cycle", 1.0);  // never ended
  std::ostringstream os;
  tr.write_json(os);
  EXPECT_FALSE(obs::validate_chrome_trace(os.str()).empty());
}

// --- metrics registry --------------------------------------------------------

TEST(Metrics, CounterGaugeHistogramSemantics) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("jobs_total", "jobs seen");
  c.inc();
  c.inc(2);
  EXPECT_EQ(c.value(), 3u);
  // Re-registering the same (name, labels) returns the same instrument.
  EXPECT_EQ(&reg.counter("jobs_total", "jobs seen"), &c);
  // Same name, different type: fail loudly.
  EXPECT_THROW((void)reg.gauge("jobs_total", "oops"), std::invalid_argument);

  obs::Gauge& g = reg.gauge("queue_depth", "current depth");
  g.set(2.5);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);

  obs::Histogram& h = reg.histogram("rt_seconds", "response time", {1.0, 2.0, 4.0});
  h.observe(0.5);
  h.observe(3.0);
  h.observe(100.0);  // +Inf bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 103.5);
  const std::vector<std::uint64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 0u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);

  EXPECT_THROW((void)obs::Histogram({2.0, 2.0}), std::invalid_argument);
}

TEST(Metrics, PrometheusTextRoundTrips) {
  obs::MetricsRegistry reg;
  reg.counter("jobs_total", "jobs seen").inc(3);
  reg.counter("routed_total", "per-domain routes", "domain=\"dc0\"").inc(7);
  reg.gauge("queue_depth", "current depth").set(2.5);
  obs::Histogram& h = reg.histogram("rt_seconds", "response time", {1.0, 4.0});
  h.observe(0.5);
  h.observe(2.0);
  h.observe(9.0);

  const std::map<std::string, double> parsed = obs::parse_prometheus_text(reg.prometheus_text());
  EXPECT_DOUBLE_EQ(parsed.at("jobs_total"), 3.0);
  EXPECT_DOUBLE_EQ(parsed.at("routed_total{domain=\"dc0\"}"), 7.0);
  EXPECT_DOUBLE_EQ(parsed.at("queue_depth"), 2.5);
  // Histogram samples are cumulative, Prometheus-style.
  EXPECT_DOUBLE_EQ(parsed.at("rt_seconds_bucket{le=\"1\"}"), 1.0);
  EXPECT_DOUBLE_EQ(parsed.at("rt_seconds_bucket{le=\"4\"}"), 2.0);
  EXPECT_DOUBLE_EQ(parsed.at("rt_seconds_bucket{le=\"+Inf\"}"), 3.0);
  EXPECT_DOUBLE_EQ(parsed.at("rt_seconds_sum"), 11.5);
  EXPECT_DOUBLE_EQ(parsed.at("rt_seconds_count"), 3.0);

  EXPECT_THROW((void)obs::parse_prometheus_text("not a sample line\n"), std::invalid_argument);
}

TEST(Metrics, HelpTypeCommentsAndLabelEscaping) {
  obs::MetricsRegistry reg;
  // A hostile domain name: backslash, quote and newline must all be
  // escaped per the exposition spec, and survive the parse round-trip.
  const std::string nasty = "dc\\0\"east\nwing";
  reg.counter("routed_total", "per-domain routes", obs::prometheus_label("domain", nasty)).inc(5);
  reg.gauge("queue_depth", "current depth").set(1.0);

  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# HELP routed_total per-domain routes"), std::string::npos);
  EXPECT_NE(text.find("# TYPE routed_total counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE queue_depth gauge"), std::string::npos);
  // The raw newline must not appear inside the sample line.
  EXPECT_NE(text.find("\\n"), std::string::npos);

  const auto parsed = obs::parse_prometheus_text(text);
  EXPECT_DOUBLE_EQ(parsed.at("routed_total{domain=\"dc\\\\0\\\"east\\nwing\"}"), 5.0);
  EXPECT_EQ(obs::prometheus_label("k", "a\\b\"c\nd"), "k=\"a\\\\b\\\"c\\nd\"");
}

TEST(Metrics, JsonSnapshotParses) {
  obs::MetricsRegistry reg;
  reg.counter("jobs_total", "jobs seen").inc(3);
  reg.histogram("rt_seconds", "response time", {1.0}).observe(0.5);
  const obs::JsonValue doc = obs::parse_json(reg.json());
  ASSERT_EQ(doc.type, obs::JsonValue::Type::kObject);
  EXPECT_NE(doc.find("jobs_total"), nullptr);
  EXPECT_NE(doc.find("rt_seconds"), nullptr);
}

// --- trace validator: counters and async arcs --------------------------------

namespace {

std::string wrap_events(const std::string& events) {
  return "{\"traceEvents\":[" + events + "]}";
}

}  // namespace

TEST(TraceCheck, CounterEventsNeedNumericArgs) {
  const std::string good = wrap_events(
      "{\"name\":\"queue\",\"ph\":\"C\",\"ts\":0,\"pid\":0,\"tid\":0,"
      "\"args\":{\"depth\":3,\"inflight\":1.5}}");
  EXPECT_TRUE(obs::validate_chrome_trace(good).empty());

  const std::string no_args = wrap_events(
      "{\"name\":\"queue\",\"ph\":\"C\",\"ts\":0,\"pid\":0,\"tid\":0}");
  auto problems = obs::validate_chrome_trace(no_args);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("has no args object"), std::string::npos);

  const std::string bad_arg = wrap_events(
      "{\"name\":\"queue\",\"ph\":\"C\",\"ts\":0,\"pid\":0,\"tid\":0,"
      "\"args\":{\"depth\":\"three\"}}");
  problems = obs::validate_chrome_trace(bad_arg);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("is not numeric"), std::string::npos);
}

TEST(TraceCheck, AsyncArcsMustBalancePerIdAndCat) {
  // A second begin for the same (cat, id) before the end is an emission bug.
  const std::string overlap = wrap_events(
      "{\"name\":\"m\",\"ph\":\"b\",\"cat\":\"migration\",\"id\":7,\"ts\":0,\"pid\":0,\"tid\":0},"
      "{\"name\":\"m\",\"ph\":\"b\",\"cat\":\"migration\",\"id\":7,\"ts\":1,\"pid\":0,\"tid\":0}");
  auto problems = obs::validate_chrome_trace(overlap);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("overlapping async begin"), std::string::npos);

  const std::string dangling_end = wrap_events(
      "{\"name\":\"m\",\"ph\":\"e\",\"cat\":\"migration\",\"id\":7,\"ts\":0,\"pid\":0,\"tid\":0}");
  problems = obs::validate_chrome_trace(dangling_end);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("with no open begin"), std::string::npos);

  // Distinct ids (or cats) are independent arcs; an arc still open at the
  // horizon (migration in flight) is legitimate.
  const std::string ok = wrap_events(
      "{\"name\":\"m\",\"ph\":\"b\",\"cat\":\"migration\",\"id\":7,\"ts\":0,\"pid\":0,\"tid\":0},"
      "{\"name\":\"m\",\"ph\":\"b\",\"cat\":\"migration\",\"id\":8,\"ts\":1,\"pid\":0,\"tid\":0},"
      "{\"name\":\"m\",\"ph\":\"e\",\"cat\":\"migration\",\"id\":7,\"ts\":2,\"pid\":0,\"tid\":0}");
  EXPECT_TRUE(obs::validate_chrome_trace(ok).empty());
}

// --- profiler ----------------------------------------------------------------

TEST(Profiler, ReportsPhasesInEnumOrderWithCallCounts) {
  obs::Profiler p;
  p.add(obs::Phase::kPolicySolve, 500, 2);
  p.add(obs::Phase::kControllerCycle, 1000);
  p.add(obs::Phase::kPolicySolve, 250);
  const obs::ProfileReport rep = p.report();
  ASSERT_EQ(rep.size(), 2u);  // untouched phases are omitted
  EXPECT_EQ(rep[0].name, obs::phase_name(obs::Phase::kControllerCycle));
  EXPECT_EQ(rep[0].calls, 1u);
  EXPECT_EQ(rep[0].total_ns, 1000u);
  EXPECT_EQ(rep[1].name, obs::phase_name(obs::Phase::kPolicySolve));
  EXPECT_EQ(rep[1].calls, 3u);
  EXPECT_EQ(rep[1].total_ns, 750u);
}

// --- spec validation and config surface --------------------------------------

TEST(ObsSpecValidation, FailsLoudly) {
  scenario::ObsSpec spec;
  spec.trace = "chrome";
  EXPECT_THROW(scenario::validate_obs_spec(spec), util::ConfigError);

  spec = {};
  spec.trace = "ring";
  spec.trace_ring_capacity = 0;
  EXPECT_THROW(scenario::validate_obs_spec(spec), util::ConfigError);

  spec = {};
  spec.trace = "stream";  // no path
  EXPECT_THROW(scenario::validate_obs_spec(spec), util::ConfigError);

  spec = {};
  spec.metrics_path = "/nonexistent-dir-xyz/metrics.prom";
  EXPECT_THROW(scenario::validate_obs_spec(spec), util::ConfigError);

  // A default spec is valid and constructs an empty bundle.
  spec = {};
  scenario::validate_obs_spec(spec);
  EXPECT_FALSE(scenario::make_observability(spec).any());
}

TEST(ObsConfig, KeysParseIntoBothLoaders) {
  const std::string trace_path = temp_path("cfg_trace.json");
  const std::string cfg_text = "obs.trace = ring\nobs.trace_ring_capacity = 1024\n"
                               "obs.trace_path = " + trace_path + "\n"
                               "obs.trace_engine = true\nobs.profile = true\n";
  const auto s = scenario::scenario_from_config(util::Config::from_string(cfg_text));
  EXPECT_EQ(s.obs.trace, "ring");
  EXPECT_EQ(s.obs.trace_ring_capacity, 1024);
  EXPECT_EQ(s.obs.trace_path, trace_path);
  EXPECT_TRUE(s.obs.trace_engine);
  EXPECT_TRUE(s.obs.profile);

  const auto fs = scenario::federated_scenario_from_config(
      util::Config::from_string("domains = 2\n" + cfg_text));
  EXPECT_EQ(fs.obs.trace, "ring");
  EXPECT_TRUE(fs.obs.profile);

  // Defaults: everything off.
  EXPECT_FALSE(scenario::scenario_from_config(util::Config{}).obs.any());
}

TEST(ObsConfig, DeadKeysRejected) {
  // trace-dependent keys with obs.trace=off are configuration mistakes.
  EXPECT_THROW((void)scenario::scenario_from_config(
                   util::Config::from_string("obs.trace_path = x.json\n")),
               util::ConfigError);
  EXPECT_THROW((void)scenario::scenario_from_config(
                   util::Config::from_string("obs.trace_ring_capacity = 64\n")),
               util::ConfigError);
  const std::string stream_path = temp_path("cfg_stream.json");
  EXPECT_THROW((void)scenario::scenario_from_config(util::Config::from_string(
                   "obs.trace = stream\nobs.trace_path = " + stream_path +
                   "\nobs.trace_ring_capacity = 64\n")),
               util::ConfigError);
  EXPECT_THROW((void)scenario::scenario_from_config(
                   util::Config::from_string("obs.trace = bogus\n")),
               util::ConfigError);
}

// --- invariance contracts ----------------------------------------------------

namespace {

/// Small federated scenario with every subsystem on and aligned control
/// phases, so the parallel engine really batches and every trace lane
/// (controller, executor, router, migration, power, faults) emits.
scenario::FederatedScenario everything_on_scenario() {
  auto base = scenario::section3_scaled(0.2);  // 5 nodes
  base.seed = 42;
  base.horizon_s = 30000.0;
  scenario::FederatedScenario fs = scenario::federate(base, 3);
  for (auto& d : fs.domains) d.first_cycle_at_s = 0.0;
  fs.migration.enabled = true;
  fs.migration.policy = "drain+rebalance";
  fs.migration.check_interval_s = 300.0;
  fs.power.enabled = true;
  fs.power.policy = "idle-park";
  fs.power.idle_timeout_s = 1200.0;
  fs.faults.enabled = true;
  fs.faults.events.push_back({"node-crash", 1, 0, 0, 9000.0, 4000.0, 1.0});
  fs.faults.events.push_back({"blackout", 2, 0, 0, 15000.0, 2500.0, 1.0});
  fs.weight_events.push_back({0, 12000.0, 0.3});
  return fs;
}

}  // namespace

TEST(Profiler, FederatedRunAccumulatesAllPhasesAndEngineRows) {
  // One shared profiler accumulates across the three domains' controller
  // cycles (worker threads, relaxed atomics) plus the serial spine.
  auto fs = everything_on_scenario();
  fs.engine_threads = 4;
  fs.obs.profile = true;
  const auto res = scenario::run_federated_experiment(fs, scenario::ExperimentOptions{});
  ASSERT_FALSE(res.profile.empty());

  const auto calls_of = [&](const std::string& name) -> std::uint64_t {
    for (const auto& row : res.profile) {
      if (row.name == name) return row.calls;
    }
    return 0;
  };
  // Three domains x (horizon / cycle) control cycles all fold into one row.
  EXPECT_GT(calls_of(obs::phase_name(obs::Phase::kControllerCycle)), 100u);
  EXPECT_GT(calls_of(obs::phase_name(obs::Phase::kPolicySolve)), 0u);
  EXPECT_GT(calls_of(obs::phase_name(obs::Phase::kMigrationTick)), 0u);
  EXPECT_GT(calls_of(obs::phase_name(obs::Phase::kPowerTick)), 0u);
  EXPECT_GT(calls_of(obs::phase_name(obs::Phase::kFaultEvent)), 0u);
  EXPECT_GT(calls_of(obs::phase_name(obs::Phase::kSampling)), 0u);
  // The runner appends engine/* rows from sim::EngineTiming.
  EXPECT_GT(calls_of("engine/serial_spine"), 0u);
  EXPECT_GT(calls_of("engine/batch_exec"), 0u);
}

TEST(ObsInvariance, SingleWorldObsOnIsDigestIdentical) {
  auto s = scenario::section3_scaled(0.15);
  s.seed = 7;
  s.horizon_s = 20000.0;
  s.power.enabled = true;
  scenario::ExperimentOptions opt;

  for (int threads : {1, 4}) {
    s.engine_threads = threads;
    s.obs = {};
    const auto off = scenario::digest(scenario::run_experiment(s, opt));
    s.obs.trace = "ring";
    s.obs.profile = true;
    s.obs.metrics_json_path = temp_path("single_metrics.json");
    const auto res = scenario::run_experiment(s, opt);
    EXPECT_EQ(scenario::digest(res), off) << "threads=" << threads;
    // The profile actually measured something and stayed out of the digest.
    EXPECT_FALSE(res.profile.empty());
  }
}

TEST(ObsInvariance, FederatedObsOnIsDigestIdentical) {
  auto fs = everything_on_scenario();
  scenario::ExperimentOptions opt;

  for (int threads : {1, 4}) {
    fs.engine_threads = threads;
    fs.obs = {};
    const auto off = scenario::digest(scenario::run_federated_experiment(fs, opt));
    fs.obs.trace = "ring";
    fs.obs.profile = true;
    fs.obs.metrics_path = temp_path("fed_metrics.prom");
    const auto res = scenario::run_federated_experiment(fs, opt);
    EXPECT_EQ(scenario::digest(res), off) << "threads=" << threads;
  }

  // The exported snapshot is real Prometheus text with live instruments.
  const auto parsed = obs::parse_prometheus_text(read_file(temp_path("fed_metrics.prom")));
  EXPECT_GT(parsed.at("federation_routed_jobs_total"), 0.0);
  EXPECT_GT(parsed.at("run_jobs_completed"), 0.0);
}

TEST(ObsInvariance, TraceFileByteIdenticalAcrossThreadCounts) {
  auto fs = everything_on_scenario();
  scenario::ExperimentOptions opt;
  fs.obs.trace = "ring";  // trace_engine stays off: that lane is exempt

  fs.engine_threads = 1;
  fs.obs.trace_path = temp_path("trace_t1.json");
  (void)scenario::run_federated_experiment(fs, opt);

  fs.engine_threads = 4;
  fs.obs.trace_path = temp_path("trace_t4.json");
  const auto res = scenario::run_federated_experiment(fs, opt);
  // The parallel run must actually have exercised the staging/merge path.
  EXPECT_GT(res.engine.parallel_batches, 0u);

  const std::string t1 = read_file(temp_path("trace_t1.json"));
  const std::string t4 = read_file(temp_path("trace_t4.json"));
  ASSERT_FALSE(t1.empty());
  EXPECT_EQ(t1, t4);
  EXPECT_TRUE(obs::validate_chrome_trace(t1).empty());
}

TEST(ObsInvariance, StreamedTraceValidates) {
  auto s = scenario::section3_scaled(0.15);
  s.seed = 7;
  s.horizon_s = 15000.0;
  s.obs.trace = "stream";
  s.obs.trace_path = temp_path("stream_trace.json");
  const auto res = scenario::run_experiment(s, scenario::ExperimentOptions{});
  EXPECT_GT(res.summary.jobs_completed, 0);
  const std::vector<std::string> problems =
      obs::validate_chrome_trace_file(s.obs.trace_path);
  EXPECT_TRUE(problems.empty()) << (problems.empty() ? "" : problems.front());
}
