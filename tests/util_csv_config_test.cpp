// Tests for util/csv and util/config.

#include "util/config.hpp"
#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace hu = heteroplace::util;

// --- CSV ---------------------------------------------------------------------

TEST(CsvEscape, PlainFieldUnchanged) { EXPECT_EQ(hu::csv_escape("hello"), "hello"); }

TEST(CsvEscape, QuotesFieldsWithCommas) { EXPECT_EQ(hu::csv_escape("a,b"), "\"a,b\""); }

TEST(CsvEscape, DoublesEmbeddedQuotes) { EXPECT_EQ(hu::csv_escape("say \"hi\""), "\"say \"\"hi\"\"\""); }

TEST(CsvEscape, QuotesNewlines) { EXPECT_EQ(hu::csv_escape("a\nb"), "\"a\nb\""); }

TEST(CsvWriter, WritesRowsWithMixedTypes) {
  std::ostringstream os;
  hu::CsvWriter w(os);
  w.cell("name").cell(3.5).cell(7).cell(static_cast<std::size_t>(2));
  w.row();
  w.cell("x,y").cell(1e-9);
  w.row();
  EXPECT_EQ(os.str(), "name,3.5,7,2\n\"x,y\",1e-09\n");
}

TEST(CsvWriter, DoubleRoundTripPrecision) {
  std::ostringstream os;
  hu::CsvWriter w(os);
  w.cell(0.1 + 0.2);
  w.row();
  const double parsed = std::stod(os.str());
  EXPECT_DOUBLE_EQ(parsed, 0.1 + 0.2);
}

TEST(CsvWriter, RowOfStrings) {
  std::ostringstream os;
  hu::CsvWriter w(os);
  w.row({"a", "b", "c"});
  EXPECT_EQ(os.str(), "a,b,c\n");
}

// --- Config -------------------------------------------------------------------

TEST(Config, ParsesKeyValueLines) {
  const auto cfg = hu::Config::from_string("a = 1\nb= hello\n# comment\n\nc =2.5 # tail\n");
  EXPECT_EQ(cfg.get_int("a", 0), 1);
  EXPECT_EQ(cfg.get_string("b", ""), "hello");
  EXPECT_DOUBLE_EQ(cfg.get_double("c", 0.0), 2.5);
}

TEST(Config, LaterAssignmentWins) {
  const auto cfg = hu::Config::from_string("x=1\nx=2\n");
  EXPECT_EQ(cfg.get_int("x", 0), 2);
}

TEST(Config, MissingKeyGivesDefault) {
  const hu::Config cfg;
  EXPECT_EQ(cfg.get_int("nope", 42), 42);
  EXPECT_EQ(cfg.get_string("nope", "d"), "d");
  EXPECT_FALSE(cfg.has("nope"));
}

TEST(Config, MalformedLineThrows) {
  EXPECT_THROW(hu::Config::from_string("just a line\n"), hu::ConfigError);
  EXPECT_THROW(hu::Config::from_string("= value\n"), hu::ConfigError);
}

TEST(Config, TypeErrorsThrow) {
  const auto cfg = hu::Config::from_string("x=abc\ny=1.5\n");
  EXPECT_THROW((void)cfg.get_int("x", 0), hu::ConfigError);
  EXPECT_THROW((void)cfg.get_double("x", 0.0), hu::ConfigError);
  EXPECT_THROW((void)cfg.get_int("y", 0), hu::ConfigError);  // not an integer
  EXPECT_THROW((void)cfg.get_bool("x", false), hu::ConfigError);
}

TEST(Config, BooleanSpellings) {
  const auto cfg = hu::Config::from_string("a=true\nb=0\nc=YES\nd=off\n");
  EXPECT_TRUE(cfg.get_bool("a", false));
  EXPECT_FALSE(cfg.get_bool("b", true));
  EXPECT_TRUE(cfg.get_bool("c", false));
  EXPECT_FALSE(cfg.get_bool("d", true));
}

TEST(Config, FromArgsParsesFlags) {
  const char* argv[] = {"prog", "--nodes=25", "--policy=utility", "--verbose"};
  const auto cfg = hu::Config::from_args(4, argv);
  EXPECT_EQ(cfg.get_int("nodes", 0), 25);
  EXPECT_EQ(cfg.get_string("policy", ""), "utility");
  EXPECT_TRUE(cfg.get_bool("verbose", false));
}

TEST(Config, FromArgsRejectsPositional) {
  const char* argv[] = {"prog", "oops"};
  EXPECT_THROW(hu::Config::from_args(2, argv), hu::ConfigError);
}

TEST(Config, MergeOverrides) {
  auto base = hu::Config::from_string("a=1\nb=2\n");
  const auto over = hu::Config::from_string("b=3\nc=4\n");
  base.merge(over);
  EXPECT_EQ(base.get_int("a", 0), 1);
  EXPECT_EQ(base.get_int("b", 0), 3);
  EXPECT_EQ(base.get_int("c", 0), 4);
}

TEST(Config, KeysAreSorted) {
  const auto cfg = hu::Config::from_string("z=1\na=2\n");
  const auto keys = cfg.keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[1], "z");
}
