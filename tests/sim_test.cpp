// Tests for the discrete-event engine: ordering, priorities, cancellation.

#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace hs = heteroplace::sim;
namespace hu = heteroplace::util;
using hu::Seconds;

TEST(Engine, StartsAtZero) {
  hs::Engine e;
  EXPECT_DOUBLE_EQ(e.now().get(), 0.0);
}

TEST(Engine, EventsFireInTimeOrder) {
  hs::Engine e;
  std::vector<int> order;
  e.schedule_at(Seconds{30.0}, hs::EventPriority::kStateTransition, [&] { order.push_back(3); });
  e.schedule_at(Seconds{10.0}, hs::EventPriority::kStateTransition, [&] { order.push_back(1); });
  e.schedule_at(Seconds{20.0}, hs::EventPriority::kStateTransition, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now().get(), 30.0);
}

TEST(Engine, PriorityBreaksTimestampTies) {
  hs::Engine e;
  std::vector<std::string> order;
  e.schedule_at(Seconds{5.0}, hs::EventPriority::kSampling, [&] { order.push_back("sample"); });
  e.schedule_at(Seconds{5.0}, hs::EventPriority::kController, [&] { order.push_back("control"); });
  e.schedule_at(Seconds{5.0}, hs::EventPriority::kWorkloadArrival,
                [&] { order.push_back("arrival"); });
  e.run();
  EXPECT_EQ(order, (std::vector<std::string>{"arrival", "control", "sample"}));
}

TEST(Engine, FifoWithinSamePriorityAndTime) {
  hs::Engine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    e.schedule_at(Seconds{1.0}, hs::EventPriority::kStateTransition,
                  [&order, i] { order.push_back(i); });
  }
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, SchedulingInThePastThrows) {
  hs::Engine e;
  e.schedule_at(Seconds{10.0}, hs::EventPriority::kStateTransition, [] {});
  e.run();
  EXPECT_THROW(e.schedule_at(Seconds{5.0}, hs::EventPriority::kStateTransition, [] {}),
               std::invalid_argument);
}

TEST(Engine, CancelPreventsExecution) {
  hs::Engine e;
  bool fired = false;
  auto h = e.schedule_at(Seconds{1.0}, hs::EventPriority::kStateTransition,
                         [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  EXPECT_TRUE(h.cancel());
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(h.cancel());  // idempotent
  e.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelAfterFiringIsNoop) {
  hs::Engine e;
  auto h = e.schedule_at(Seconds{1.0}, hs::EventPriority::kStateTransition, [] {});
  e.run();
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(h.cancel());
}

TEST(Engine, CallbackCanScheduleMoreEvents) {
  hs::Engine e;
  std::vector<double> times;
  std::function<void()> tick = [&] {
    times.push_back(e.now().get());
    if (times.size() < 3) {
      e.schedule_in(Seconds{10.0}, hs::EventPriority::kStateTransition, tick);
    }
  };
  e.schedule_at(Seconds{0.0}, hs::EventPriority::kStateTransition, tick);
  e.run();
  EXPECT_EQ(times, (std::vector<double>{0.0, 10.0, 20.0}));
}

TEST(Engine, CallbackCanCancelAnotherEvent) {
  hs::Engine e;
  bool second_fired = false;
  auto victim = e.schedule_at(Seconds{2.0}, hs::EventPriority::kStateTransition,
                              [&] { second_fired = true; });
  e.schedule_at(Seconds{1.0}, hs::EventPriority::kStateTransition, [&] { victim.cancel(); });
  e.run();
  EXPECT_FALSE(second_fired);
}

TEST(Engine, RunUntilStopsAtBoundaryInclusive) {
  hs::Engine e;
  int fired = 0;
  e.schedule_at(Seconds{10.0}, hs::EventPriority::kStateTransition, [&] { ++fired; });
  e.schedule_at(Seconds{20.0}, hs::EventPriority::kStateTransition, [&] { ++fired; });
  e.schedule_at(Seconds{30.0}, hs::EventPriority::kStateTransition, [&] { ++fired; });
  e.run_until(Seconds{20.0});
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(e.now().get(), 20.0);
  e.run_until(Seconds{100.0});
  EXPECT_EQ(fired, 3);
  EXPECT_DOUBLE_EQ(e.now().get(), 100.0);  // clock advances to the horizon
}

TEST(Engine, RunUntilFiresEventExactlyAtBoundary) {
  hs::Engine e;
  std::vector<double> fired;
  e.schedule_at(Seconds{20.0}, hs::EventPriority::kStateTransition,
                [&] { fired.push_back(20.0); });
  // An event scheduled *by a boundary event* at the same boundary time
  // must also fire within the same run_until call.
  e.schedule_at(Seconds{10.0}, hs::EventPriority::kStateTransition, [&] {
    fired.push_back(10.0);
    e.schedule_at(Seconds{20.0}, hs::EventPriority::kStateTransition,
                  [&] { fired.push_back(20.5); });
  });
  e.run_until(Seconds{20.0});
  EXPECT_EQ(fired, (std::vector<double>{10.0, 20.0, 20.5}));
  EXPECT_DOUBLE_EQ(e.now().get(), 20.0);
  // An event just past the boundary stays pending and the clock still
  // lands exactly on t_end.
  e.schedule_at(Seconds{20.0 + 1e-9}, hs::EventPriority::kStateTransition,
                [&] { fired.push_back(21.0); });
  e.run_until(Seconds{20.0});
  EXPECT_EQ(fired.size(), 3u);
  EXPECT_EQ(e.events_pending(), 1u);
}

TEST(Engine, StopInsideCallbackHaltsRunUntil) {
  hs::Engine e;
  std::vector<double> fired;
  e.schedule_at(Seconds{10.0}, hs::EventPriority::kStateTransition, [&] {
    fired.push_back(10.0);
    e.stop();
  });
  e.schedule_at(Seconds{20.0}, hs::EventPriority::kStateTransition,
                [&] { fired.push_back(20.0); });
  e.run_until(Seconds{100.0});
  // The run halts after the stopping callback: the later event is still
  // pending and the clock does NOT jump to the horizon.
  EXPECT_EQ(fired, (std::vector<double>{10.0}));
  EXPECT_DOUBLE_EQ(e.now().get(), 10.0);
  EXPECT_EQ(e.events_pending(), 1u);
  // A subsequent run_until resumes cleanly.
  e.run_until(Seconds{100.0});
  EXPECT_EQ(fired, (std::vector<double>{10.0, 20.0}));
  EXPECT_DOUBLE_EQ(e.now().get(), 100.0);
}

TEST(Engine, TwoInterleavedPeriodicLoopsKeepTheirPhases) {
  // The federation's usage pattern: N self-rescheduling control loops
  // with staggered phase offsets on one engine. Each must keep its own
  // cadence exactly, interleaved in time order.
  hs::Engine e;
  std::vector<std::pair<char, double>> fired;
  std::function<void()> loop_a = [&] {
    fired.push_back({'a', e.now().get()});
    e.schedule_in(Seconds{600.0}, hs::EventPriority::kController, loop_a);
  };
  std::function<void()> loop_b = [&] {
    fired.push_back({'b', e.now().get()});
    e.schedule_in(Seconds{600.0}, hs::EventPriority::kController, loop_b);
  };
  e.schedule_at(Seconds{0.0}, hs::EventPriority::kController, loop_a);
  e.schedule_at(Seconds{200.0}, hs::EventPriority::kController, loop_b);
  e.run_until(Seconds{1500.0});
  const std::vector<std::pair<char, double>> expected{
      {'a', 0.0}, {'b', 200.0}, {'a', 600.0}, {'b', 800.0}, {'a', 1200.0}, {'b', 1400.0}};
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(e.events_pending(), 2u);  // both loops still alive
}

TEST(Engine, StopAbortsRun) {
  hs::Engine e;
  int fired = 0;
  e.schedule_at(Seconds{1.0}, hs::EventPriority::kStateTransition, [&] {
    ++fired;
    e.stop();
  });
  e.schedule_at(Seconds{2.0}, hs::EventPriority::kStateTransition, [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
  e.run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Engine, StepExecutesExactlyOne) {
  hs::Engine e;
  int fired = 0;
  e.schedule_at(Seconds{1.0}, hs::EventPriority::kStateTransition, [&] { ++fired; });
  e.schedule_at(Seconds{2.0}, hs::EventPriority::kStateTransition, [&] { ++fired; });
  EXPECT_TRUE(e.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(e.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(e.step());
}

TEST(Engine, CountsExecutedAndPending) {
  hs::Engine e;
  e.schedule_at(Seconds{1.0}, hs::EventPriority::kStateTransition, [] {});
  e.schedule_at(Seconds{2.0}, hs::EventPriority::kStateTransition, [] {});
  EXPECT_EQ(e.events_pending(), 2u);
  e.run();
  EXPECT_EQ(e.events_executed(), 2u);
}

// Property: random schedule/cancel workloads always execute in
// nondecreasing time order and never run cancelled events.
class EngineStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineStress, OrderAndCancellationInvariants) {
  hu::Rng rng(GetParam());
  hs::Engine e;
  std::vector<double> fire_times;
  std::vector<hs::EventHandle> handles;
  for (int i = 0; i < 500; ++i) {
    const double t = rng.uniform(0.0, 1000.0);
    handles.push_back(e.schedule_at(Seconds{t}, hs::EventPriority::kStateTransition,
                                    [&fire_times, &e] { fire_times.push_back(e.now().get()); }));
  }
  // Cancel ~30%.
  int cancelled = 0;
  for (auto& h : handles) {
    if (rng.chance(0.3) && h.cancel()) ++cancelled;
  }
  e.run();
  EXPECT_EQ(fire_times.size(), 500u - cancelled);
  EXPECT_TRUE(std::is_sorted(fire_times.begin(), fire_times.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineStress, ::testing::Values(1u, 7u, 99u, 12345u));

// Regression: the pre-pool queue never decremented the live count on
// cancellation, so events_pending() over-reported after any reschedule.
TEST(Engine, PendingCountDropsOnCancel) {
  hs::Engine e;
  e.schedule_at(Seconds{1.0}, hs::EventPriority::kStateTransition, [] {});
  auto victim = e.schedule_at(Seconds{2.0}, hs::EventPriority::kStateTransition, [] {});
  e.schedule_at(Seconds{3.0}, hs::EventPriority::kStateTransition, [] {});
  EXPECT_EQ(e.events_pending(), 3u);
  EXPECT_TRUE(victim.cancel());
  EXPECT_EQ(e.events_pending(), 2u);
  EXPECT_FALSE(victim.cancel());  // idempotent: no double decrement
  EXPECT_EQ(e.events_pending(), 2u);
  e.run();
  EXPECT_EQ(e.events_pending(), 0u);
  EXPECT_EQ(e.events_executed(), 2u);
}

TEST(Engine, PendingCountStableUnderReschedule) {
  // The controller's completion-event pattern: cancel + re-push every
  // cycle. The live count must stay at one throughout.
  hs::Engine e;
  int fired = 0;
  auto h = e.schedule_at(Seconds{1000.0}, hs::EventPriority::kStateTransition,
                         [&fired] { ++fired; });
  for (int i = 1; i <= 200; ++i) {
    EXPECT_EQ(e.events_pending(), 1u) << "iteration " << i;
    h.cancel();
    h = e.schedule_at(Seconds{1000.0 + i}, hs::EventPriority::kStateTransition,
                      [&fired] { ++fired; });
  }
  EXPECT_EQ(e.events_pending(), 1u);
  e.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.events_pending(), 0u);
}

TEST(Engine, HandleIsSafeAfterEngineDestruction) {
  hs::EventHandle h;
  {
    hs::Engine e;
    h = e.schedule_at(Seconds{1.0}, hs::EventPriority::kStateTransition, [] {});
    EXPECT_TRUE(h.pending());
  }
  // The queue (and its record pool) are gone; the handle must degrade
  // to "not pending" rather than touch freed memory.
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(h.cancel());
}

TEST(Engine, StaleHandleCannotTouchRecycledSlot) {
  hs::Engine e;
  bool first_fired = false;
  auto h1 = e.schedule_at(Seconds{1.0}, hs::EventPriority::kStateTransition,
                          [&first_fired] { first_fired = true; });
  e.run();  // fires h1; its pool slot is recycled for the next push
  EXPECT_TRUE(first_fired);
  bool second_fired = false;
  auto h2 = e.schedule_at(Seconds{2.0}, hs::EventPriority::kStateTransition,
                          [&second_fired] { second_fired = true; });
  // The stale handle points at the recycled slot but carries the old
  // generation: it must not cancel the new event.
  EXPECT_FALSE(h1.pending());
  EXPECT_FALSE(h1.cancel());
  EXPECT_TRUE(h2.pending());
  e.run();
  EXPECT_TRUE(second_fired);
}
