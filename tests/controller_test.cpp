// Tests for the control loop: periodic evaluation, observer reports,
// utility policy wiring, determinism.

#include "core/controller.hpp"

#include <gtest/gtest.h>

#include "core/utility_policy.hpp"
#include "utility/utility_fn.hpp"

using namespace heteroplace;
using namespace heteroplace::util::literals;
using cluster::Resources;
using core::CycleReport;
using core::PlacementController;
using core::World;
using util::Seconds;
using workload::JobPhase;
using workload::JobSpec;

namespace {

JobSpec make_spec(unsigned id, double submit, double work = 3.0e6) {
  JobSpec s;
  s.id = util::JobId{id};
  s.work = util::MhzSeconds{work};
  s.max_speed = 3000_mhz;
  s.memory = 1300_mb;
  s.submit_time = Seconds{submit};
  s.completion_goal = Seconds{4000.0};
  return s;
}

std::unique_ptr<core::UtilityDrivenPolicy> make_policy() {
  return std::make_unique<core::UtilityDrivenPolicy>(
      std::make_shared<utility::JobUtilityModel>(), std::make_shared<utility::TxUtilityModel>());
}

workload::TxApp make_app(double lambda = 4.0) {
  workload::TxAppSpec spec;
  spec.id = util::AppId{0};
  spec.name = "web";
  spec.rt_goal = Seconds{1.2};
  spec.service_demand = 5000.0;
  spec.instance_memory = 1024_mb;
  spec.max_instances = 4;
  spec.max_cpu_per_instance = 12000_mhz;
  return workload::TxApp{spec, workload::DemandTrace{lambda}};
}

}  // namespace

TEST(Controller, RunsCyclesAtConfiguredPeriod) {
  sim::Engine engine;
  World world;
  world.cluster().add_nodes(2, Resources{12000_mhz, 4096_mb});
  core::ControllerConfig cfg;
  cfg.cycle = 600_s;
  PlacementController ctrl(engine, world, make_policy(), {}, cfg);
  std::vector<double> cycle_times;
  ctrl.set_observer([&](const CycleReport& r) { cycle_times.push_back(r.t.get()); });
  ctrl.start();
  engine.run_until(2500_s);
  EXPECT_EQ(cycle_times, (std::vector<double>{0.0, 600.0, 1200.0, 1800.0, 2400.0}));
  EXPECT_EQ(ctrl.cycles_run(), 5);
}

TEST(Controller, FirstCycleAtIsHonoredAsPhaseOffset) {
  // The federation staggers domains through first_cycle_at; a nonzero
  // offset must shift the whole cadence, not just the first evaluation.
  sim::Engine engine;
  World world;
  world.cluster().add_nodes(2, Resources{12000_mhz, 4096_mb});
  core::ControllerConfig cfg;
  cfg.cycle = 600_s;
  cfg.first_cycle_at = 250_s;
  PlacementController ctrl(engine, world, make_policy(), {}, cfg);
  std::vector<double> cycle_times;
  ctrl.set_observer([&](const CycleReport& r) { cycle_times.push_back(r.t.get()); });
  ctrl.start();
  engine.run_until(2500_s);
  EXPECT_EQ(cycle_times, (std::vector<double>{250.0, 850.0, 1450.0, 2050.0}));
}

TEST(Controller, FirstCycleAtInThePastClampsToNow) {
  sim::Engine engine;
  engine.schedule_at(1000_s, sim::EventPriority::kStateTransition, [] {});
  engine.run();  // now = 1000
  World world;
  world.cluster().add_nodes(1, Resources{12000_mhz, 4096_mb});
  core::ControllerConfig cfg;
  cfg.cycle = 600_s;
  cfg.first_cycle_at = 400_s;  // already in the past
  PlacementController ctrl(engine, world, make_policy(), {}, cfg);
  std::vector<double> cycle_times;
  ctrl.set_observer([&](const CycleReport& r) { cycle_times.push_back(r.t.get()); });
  ctrl.start();
  engine.run_until(2300_s);
  EXPECT_EQ(cycle_times, (std::vector<double>{1000.0, 1600.0, 2200.0}));
}

TEST(Controller, StartRejectsInvalidConfig) {
  sim::Engine engine;
  World world;
  world.cluster().add_nodes(1, Resources{12000_mhz, 4096_mb});
  core::ControllerConfig bad_cycle;
  bad_cycle.cycle = 0_s;
  PlacementController c1(engine, world, make_policy(), {}, bad_cycle);
  EXPECT_THROW(c1.start(), std::invalid_argument);
  core::ControllerConfig bad_first;
  bad_first.first_cycle_at = util::Seconds{-1.0};
  PlacementController c2(engine, world, make_policy(), {}, bad_first);
  EXPECT_THROW(c2.start(), std::invalid_argument);
}

TEST(Controller, PendingJobGetsStartedOnNextCycle) {
  sim::Engine engine;
  World world;
  world.cluster().add_nodes(2, Resources{12000_mhz, 4096_mb});
  PlacementController ctrl(engine, world, make_policy());
  ctrl.start();
  engine.schedule_at(700_s, sim::EventPriority::kWorkloadArrival,
                     [&] { world.submit_job(make_spec(0, 700.0)); });
  engine.run_until(1100_s);
  // Cycle at 1200 has not run yet: job still pending.
  EXPECT_EQ(world.job(util::JobId{0}).phase(), JobPhase::kPending);
  engine.run_until(1210_s);  // cycle at 1200 started the boot (60 s long)
  EXPECT_EQ(world.job(util::JobId{0}).phase(), JobPhase::kStarting);
  engine.run_until(5000_s);
  EXPECT_EQ(world.job(util::JobId{0}).phase(), JobPhase::kCompleted);
}

TEST(Controller, ReportContainsEqualizerDiagnostics) {
  sim::Engine engine;
  World world;
  world.cluster().add_nodes(2, Resources{12000_mhz, 4096_mb});
  world.add_app(make_app(4.0));
  world.submit_job(make_spec(0, 0.0));
  PlacementController ctrl(engine, world, make_policy());
  CycleReport last;
  ctrl.set_observer([&](const CycleReport& r) { last = r; });
  ctrl.run_cycle();
  EXPECT_EQ(last.diag.active_jobs, 1);
  ASSERT_EQ(last.diag.apps.size(), 1u);
  EXPECT_DOUBLE_EQ(last.diag.apps[0].lambda, 4.0);
  EXPECT_GT(last.diag.apps[0].demand.get(), 0.0);
  EXPECT_GT(last.diag.jobs_demand.get(), 0.0);
  EXPECT_FALSE(std::isnan(last.diag.u_star));
  EXPECT_EQ(last.actions.starts, 1);
  EXPECT_GE(last.actions.instance_starts, 1);  // contended: may need several
}

TEST(Controller, UncontendedClusterGivesEveryoneDemand) {
  sim::Engine engine;
  World world;
  // 6 nodes = 72000 MHz; app demand at λ=1 is 5000 + 5000/0.12 ≈ 46667,
  // job demand 1500 ⇒ comfortably uncontended.
  world.cluster().add_nodes(6, Resources{12000_mhz, 4096_mb});
  world.add_app(make_app(1.0));
  world.submit_job(make_spec(0, 0.0));
  PlacementController ctrl(engine, world, make_policy());
  CycleReport last;
  ctrl.set_observer([&](const CycleReport& r) { last = r; });
  ctrl.run_cycle();
  EXPECT_FALSE(last.diag.contended);
  // The job's target equals its demand (= its max speed at t=0 here).
  EXPECT_NEAR(last.diag.jobs_target.get(), last.diag.jobs_demand.get(), 1e-6);
}

TEST(Controller, DeterministicAcrossRuns) {
  auto run_once = [] {
    sim::Engine engine;
    World world;
    world.cluster().add_nodes(3, Resources{12000_mhz, 4096_mb});
    world.add_app(make_app(6.0));
    for (unsigned i = 0; i < 8; ++i) {
      const double t = 100.0 * (i + 1);
      engine.schedule_at(Seconds{t}, sim::EventPriority::kWorkloadArrival,
                         [&world, i, t] { world.submit_job(make_spec(i, t)); });
    }
    PlacementController ctrl(engine, world, make_policy());
    std::vector<double> u_stars;
    ctrl.set_observer([&](const CycleReport& r) { u_stars.push_back(r.diag.u_star); });
    ctrl.start();
    engine.run_until(20000_s);
    return std::make_pair(u_stars, world.completed_count());
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.second, b.second);
  ASSERT_EQ(a.first.size(), b.first.size());
  for (std::size_t i = 0; i < a.first.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.first[i], b.first[i]) << "cycle " << i;
  }
}

TEST(Controller, InvariantsHoldEveryCycleUnderChurn) {
  sim::Engine engine;
  World world;
  world.cluster().add_nodes(3, Resources{12000_mhz, 4096_mb});
  world.add_app(make_app(10.0));  // sizable TX demand forces contention
  for (unsigned i = 0; i < 15; ++i) {
    const double t = 150.0 * i + 1.0;
    engine.schedule_at(Seconds{t}, sim::EventPriority::kWorkloadArrival,
                       [&world, i, t] { world.submit_job(make_spec(i, t, 2.0e6)); });
  }
  PlacementController ctrl(engine, world, make_policy());
  long violations = 0;
  ctrl.set_observer([&](const CycleReport&) {
    violations += static_cast<long>(world.cluster().validate().size());
  });
  ctrl.start();
  engine.run_until(30000_s);
  EXPECT_EQ(violations, 0);
  EXPECT_EQ(world.completed_count(), 15u);
}
