// Tests for the config-driven scenario loader.

#include "scenario/config_loader.hpp"

#include <gtest/gtest.h>

#include "scenario/experiment.hpp"

using namespace heteroplace;

TEST(ConfigLoader, EmptyConfigYieldsSection3Defaults) {
  const auto s = scenario::scenario_from_config(util::Config{});
  const auto ref = scenario::section3_scenario();
  EXPECT_EQ(s.cluster.nodes, ref.cluster.nodes);
  EXPECT_DOUBLE_EQ(s.cluster.cpu_per_node_mhz, ref.cluster.cpu_per_node_mhz);
  EXPECT_EQ(s.jobs.count, ref.jobs.count);
  EXPECT_DOUBLE_EQ(s.jobs.mean_interarrival_s, ref.jobs.mean_interarrival_s);
  EXPECT_DOUBLE_EQ(s.controller.cycle_s, ref.controller.cycle_s);
  ASSERT_EQ(s.apps.size(), 1u);
  EXPECT_DOUBLE_EQ(s.apps[0].trace.rate_at(util::Seconds{0.0}), 24.0);
}

TEST(ConfigLoader, OverridesApply) {
  const auto cfg = util::Config::from_string(
      "nodes = 10\n"
      "cycle_s = 300\n"
      "jobs.count = 50\n"
      "jobs.work_mhz_s = 1.2e7\n"
      "jobs.utility_shape = sigmoid\n"
      "app.0.lambda = 12\n"
      "app.0.rt_goal_s = 0.5\n");
  const auto s = scenario::scenario_from_config(cfg);
  EXPECT_EQ(s.cluster.nodes, 10);
  EXPECT_DOUBLE_EQ(s.controller.cycle_s, 300.0);
  EXPECT_EQ(s.jobs.count, 50);
  EXPECT_DOUBLE_EQ(s.jobs.tmpl.work.get(), 1.2e7);
  EXPECT_EQ(s.jobs.utility_shape, "sigmoid");
  EXPECT_DOUBLE_EQ(s.apps[0].trace.rate_at(util::Seconds{0.0}), 12.0);
  EXPECT_DOUBLE_EQ(s.apps[0].spec.rt_goal.get(), 0.5);
}

TEST(ConfigLoader, MultipleApps) {
  const auto cfg = util::Config::from_string(
      "apps = 2\n"
      "app.0.name = gold\n"
      "app.0.importance = 2\n"
      "app.1.name = silver\n"
      "app.1.lambda = 6\n");
  const auto s = scenario::scenario_from_config(cfg);
  ASSERT_EQ(s.apps.size(), 2u);
  EXPECT_EQ(s.apps[0].spec.name, "gold");
  EXPECT_DOUBLE_EQ(s.apps[0].spec.importance, 2.0);
  EXPECT_EQ(s.apps[1].spec.name, "silver");
  EXPECT_DOUBLE_EQ(s.apps[1].trace.rate_at(util::Seconds{0.0}), 6.0);
  EXPECT_EQ(s.apps[0].spec.id.get(), 0u);
  EXPECT_EQ(s.apps[1].spec.id.get(), 1u);
}

TEST(ConfigLoader, ZeroAppsAllowed) {
  const auto cfg = util::Config::from_string("apps = 0\n");
  const auto s = scenario::scenario_from_config(cfg);
  EXPECT_TRUE(s.apps.empty());
}

TEST(ConfigLoader, UnknownKeyRejected) {
  const auto cfg = util::Config::from_string("nodez = 10\n");
  EXPECT_THROW((void)scenario::scenario_from_config(cfg), util::ConfigError);
}

TEST(ConfigLoader, UnknownAppKeyRejected) {
  const auto cfg = util::Config::from_string("app.0.lamda = 10\n");  // typo
  EXPECT_THROW((void)scenario::scenario_from_config(cfg), util::ConfigError);
}

TEST(ConfigLoader, MalformedValueRejected) {
  const auto cfg = util::Config::from_string("nodes = many\n");
  EXPECT_THROW((void)scenario::scenario_from_config(cfg), util::ConfigError);
}

TEST(ConfigLoader, AppCountOutOfRangeRejected) {
  EXPECT_THROW(
      (void)scenario::scenario_from_config(util::Config::from_string("apps = 1000\n")),
      util::ConfigError);
}

TEST(ConfigLoader, RoundTripsThroughConfigText) {
  const auto cfg = util::Config::from_string(
      "name = roundtrip\n"
      "nodes = 7\n"
      "apps = 2\n"
      "app.0.lambda = 9\n"
      "app.1.rt_goal_s = 3\n");
  const auto s1 = scenario::scenario_from_config(cfg);
  const std::string text = scenario::scenario_to_config(s1);
  const auto s2 = scenario::scenario_from_config(util::Config::from_string(text));
  EXPECT_EQ(s2.name, "roundtrip");
  EXPECT_EQ(s2.cluster.nodes, 7);
  ASSERT_EQ(s2.apps.size(), 2u);
  EXPECT_DOUBLE_EQ(s2.apps[0].trace.rate_at(util::Seconds{0.0}), 9.0);
  EXPECT_DOUBLE_EQ(s2.apps[1].spec.rt_goal.get(), 3.0);
}

TEST(ConfigLoader, LoadedScenarioActuallyRuns) {
  const auto cfg = util::Config::from_string(
      "name = mini\n"
      "nodes = 3\n"
      "jobs.count = 6\n"
      "jobs.work_mhz_s = 3e6\n"
      "app.0.lambda = 2\n"
      "app.0.rt_goal_s = 6\n");
  const auto s = scenario::scenario_from_config(cfg);
  scenario::ExperimentOptions opt;
  opt.validate_invariants = true;
  const auto r = scenario::run_experiment(s, opt);
  EXPECT_EQ(r.summary.jobs_completed, 6);
  EXPECT_EQ(r.summary.invariant_violations, 0);
}

TEST(ConfigLoader, FederatedDefaultsToOneDomain) {
  const auto fs = scenario::federated_scenario_from_config(util::Config{});
  ASSERT_EQ(fs.domains.size(), 1u);
  EXPECT_EQ(fs.domains[0].cluster.nodes, scenario::section3_scenario().cluster.nodes);
  EXPECT_EQ(fs.router, "least-loaded");
  EXPECT_DOUBLE_EQ(fs.domains[0].first_cycle_at_s, -1.0);  // auto-stagger
}

TEST(ConfigLoader, FederatedDomainsSplitAndOverride) {
  const auto cfg = util::Config::from_string(
      "nodes = 10\n"
      "domains = 3\n"
      "router = sticky\n"
      "domain.0.name = primary\n"
      "domain.0.nodes = 6\n"
      "domain.1.cpu_per_node_mhz = 6000\n"
      "domain.2.first_cycle_at_s = 150\n");
  const auto fs = scenario::federated_scenario_from_config(cfg);
  ASSERT_EQ(fs.domains.size(), 3u);
  EXPECT_EQ(fs.router, "sticky");
  EXPECT_EQ(fs.domains[0].name, "primary");
  EXPECT_EQ(fs.domains[0].cluster.nodes, 6);
  // Unoverridden domains keep the even split of the global pool (10 → 4/3/3).
  EXPECT_EQ(fs.domains[1].cluster.nodes, 3);
  EXPECT_DOUBLE_EQ(fs.domains[1].cluster.cpu_per_node_mhz, 6000.0);
  EXPECT_EQ(fs.domains[2].cluster.nodes, 3);
  EXPECT_DOUBLE_EQ(fs.domains[2].first_cycle_at_s, 150.0);
}

TEST(ConfigLoader, FederatedExplicitNodesBeatTheEvenSplit) {
  // Regression: 2 global nodes over 4 domains is fine when every domain
  // gets an explicit node count — the even-split default must not be
  // validated before the overrides apply.
  const auto fs = scenario::federated_scenario_from_config(util::Config::from_string(
      "nodes = 2\n"
      "domains = 4\n"
      "domain.0.nodes = 1\n"
      "domain.1.nodes = 1\n"
      "domain.2.nodes = 1\n"
      "domain.3.nodes = 1\n"));
  ASSERT_EQ(fs.domains.size(), 4u);
  for (const auto& d : fs.domains) EXPECT_EQ(d.cluster.nodes, 1);
  // And a domain left at zero nodes fails loudly, as a ConfigError.
  EXPECT_THROW((void)scenario::federated_scenario_from_config(
                   util::Config::from_string("nodes = 2\ndomains = 4\n")),
               util::ConfigError);
}

TEST(ConfigLoader, FederatedRejectsUnknownRouterAtLoadTime) {
  EXPECT_THROW((void)scenario::federated_scenario_from_config(
                   util::Config::from_string("domains = 2\nrouter = stickyy\n")),
               util::ConfigError);
}

TEST(ConfigLoader, FederatedRejectsBadDomainKeys) {
  EXPECT_THROW((void)scenario::federated_scenario_from_config(
                   util::Config::from_string("domains = 0\n")),
               util::ConfigError);
  EXPECT_THROW((void)scenario::federated_scenario_from_config(
                   util::Config::from_string("domains = 2\ndomain.0.nodez = 1\n")),
               util::ConfigError);
  // Domain keys are not part of the single-cluster schema.
  EXPECT_THROW((void)scenario::scenario_from_config(
                   util::Config::from_string("domains = 2\n")),
               util::ConfigError);
}

TEST(ConfigLoader, FederatedScenarioActuallyRuns) {
  const auto cfg = util::Config::from_string(
      "name = mini-fed\n"
      "nodes = 4\n"
      "domains = 2\n"
      "jobs.count = 6\n"
      "jobs.work_mhz_s = 3e6\n"
      "app.0.lambda = 2\n"
      "app.0.rt_goal_s = 6\n");
  const auto fs = scenario::federated_scenario_from_config(cfg);
  scenario::ExperimentOptions opt;
  opt.validate_invariants = true;
  const auto r = scenario::run_federated_experiment(fs, opt);
  EXPECT_EQ(r.summary.jobs_completed, 6);
  EXPECT_EQ(r.summary.invariant_violations, 0);
}

TEST(NoisyMonitoring, EqualizationSurvivesMeasurementNoise) {
  // The controller sees λ through a noisy monitor + EWMA; equalization
  // quality degrades gracefully rather than collapsing.
  auto s = scenario::section3_scaled(0.12);
  s.jobs.count = 20;
  scenario::ExperimentOptions noisy;
  noisy.lambda_noise_cv = 0.3;
  noisy.validate_invariants = true;
  const auto r = scenario::run_experiment(s, noisy);
  EXPECT_EQ(r.summary.jobs_completed, 20);
  EXPECT_EQ(r.summary.invariant_violations, 0);
  EXPECT_LT(r.summary.equalization_gap.mean(), 0.25);
}

TEST(NoisyMonitoring, NoiseChangesTheTrajectoryDeterministically) {
  auto s = scenario::section3_scaled(0.12);
  s.jobs.count = 15;
  scenario::ExperimentOptions noisy;
  noisy.lambda_noise_cv = 0.5;
  const auto a = scenario::run_experiment(s, noisy);
  const auto b = scenario::run_experiment(s, noisy);
  // Same seed ⇒ identical even with noise (noise stream is seeded).
  EXPECT_DOUBLE_EQ(a.summary.tx_utility.mean(), b.summary.tx_utility.mean());
  // And the noisy run differs from the clean one.
  const auto clean = scenario::run_experiment(s, {});
  EXPECT_NE(a.summary.tx_utility.mean(), clean.summary.tx_utility.mean());
}
