// trace_check: validate Chrome trace-event JSON files written by the obs
// layer (obs.trace = ring|stream). Checks that each file parses as JSON,
// that every event record is well-formed, that timestamps are monotone
// non-decreasing per (pid, tid) lane, and that B/E span nesting is
// balanced. Exit status 0 = all files clean, 1 = problems found (each
// printed to stderr), 2 = usage error.
//
//   trace_check trace.json [more.json ...]

#include <cstdio>
#include <exception>

#include "obs/trace_check.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <trace.json> [more.json ...]\n", argv[0]);
    return 2;
  }
  int bad = 0;
  for (int i = 1; i < argc; ++i) {
    try {
      const std::vector<std::string> problems =
          heteroplace::obs::validate_chrome_trace_file(argv[i]);
      if (problems.empty()) {
        std::printf("%s: OK\n", argv[i]);
        continue;
      }
      ++bad;
      for (const std::string& p : problems) {
        std::fprintf(stderr, "%s: %s\n", argv[i], p.c_str());
      }
    } catch (const std::exception& e) {
      ++bad;
      std::fprintf(stderr, "%s: %s\n", argv[i], e.what());
    }
  }
  return bad == 0 ? 0 : 1;
}
