// sla_report: validate and pretty-print SLA report JSON files written by
// the obs layer (obs.sla_report_path / --sla_report). Checks that each
// file parses, carries the heteroplace-sla-report/v1 schema tag, and that
// every per-job attribution closes (components sum to the wall lifetime
// within 1e-9 relative), then prints a human summary: completion-ratio
// quantiles, per-app response-time quantiles, the attributed component
// totals, and the burn-rate alert history. Exit status 0 = all files
// clean, 1 = problems found, 2 = usage error.
//
//   sla_report report.json [more.json ...]

#include <cmath>
#include <cstdio>
#include <exception>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/trace_check.hpp"

namespace {

using heteroplace::obs::JsonValue;

double num(const JsonValue* v) {
  return v != nullptr && v->type == JsonValue::Type::kNumber ? v->number : 0.0;
}

std::string str(const JsonValue* v) {
  return v != nullptr && v->type == JsonValue::Type::kString ? v->string : std::string();
}

void print_quantiles(const char* label, const JsonValue* q) {
  if (q == nullptr) return;
  std::printf("  %-24s n=%-7.0f p50=%-12g p95=%-12g p99=%g\n", label, num(q->find("count")),
              num(q->find("p50")), num(q->find("p95")), num(q->find("p99")));
}

const char* const kComponents[] = {"queue_wait_s", "wake_excluded_s", "startup_s",
                                   "run_full_s",   "contention_s",    "redo_s",
                                   "suspend_s",    "resume_s",        "migration_s"};

int check_and_print(const std::string& path, const JsonValue& doc,
                    std::vector<std::string>& problems) {
  if (doc.type != JsonValue::Type::kObject) {
    problems.push_back("top level is not an object");
    return 1;
  }
  if (str(doc.find("schema")) != "heteroplace-sla-report/v1") {
    problems.push_back("missing or unknown schema tag (want heteroplace-sla-report/v1)");
    return 1;
  }

  // Per-job attribution closure: the ledger asserts this in-process, so a
  // failure here means the file was edited or produced by a broken build.
  if (const JsonValue* jobs = doc.find("jobs"); jobs != nullptr) {
    for (const JsonValue& j : jobs->array) {
      const double wall = num(j.find("completion_s")) - num(j.find("submit_s"));
      double sum = 0.0;
      for (const char* c : kComponents) sum += num(j.find(c));
      if (std::abs(sum - wall) > 1e-9 * std::max(1.0, std::abs(wall))) {
        problems.push_back("job " + std::to_string(static_cast<long long>(num(j.find("id")))) +
                           ": components sum " + std::to_string(sum) + " != wall " +
                           std::to_string(wall));
      }
    }
  }

  const JsonValue* merged = doc.find("merged");
  if (merged == nullptr) {
    problems.push_back("missing 'merged' section");
    return 1;
  }

  std::printf("%s:\n", path.c_str());
  std::printf("  jobs completed=%.0f missed=%.0f\n", num(merged->find("jobs_completed")),
              num(merged->find("jobs_missed")));
  print_quantiles("completion ratio", merged->find("ratio_quantiles"));
  if (const JsonValue* by_class = merged->find("ratio_by_class"); by_class != nullptr) {
    for (const JsonValue& c : by_class->array) {
      const std::string label = "ratio[" + str(c.find("class")) + "]";
      print_quantiles(label.c_str(), c.find("quantiles"));
    }
  }
  if (const JsonValue* tx = merged->find("tx_apps"); tx != nullptr) {
    for (const JsonValue& a : tx->array) {
      const std::string label = "rt[" + str(a.find("app")) + "]";
      print_quantiles(label.c_str(), a.find("rt_quantiles"));
      std::printf("  %-24s samples=%.0f breaches=%.0f goal=%gs\n", "", num(a.find("samples")),
                  num(a.find("breaches")), num(a.find("goal_s")));
    }
  }
  if (const JsonValue* comp = merged->find("components"); comp != nullptr) {
    std::printf("  attributed components (s):\n");
    for (const char* c : kComponents) {
      std::printf("    %-18s %g\n", c, num(comp->find(c)));
    }
  }
  if (const JsonValue* domains = doc.find("domains"); domains != nullptr) {
    for (const JsonValue& d : domains->array) {
      std::printf("  domain %-12s jobs=%.0f missed=%.0f\n", str(d.find("domain")).c_str(),
                  num(d.find("jobs_completed")), num(d.find("jobs_missed")));
    }
  }
  if (const JsonValue* alerts = doc.find("alerts");
      alerts != nullptr && alerts->type == JsonValue::Type::kObject) {
    std::printf("  alerts active=%.0f\n", num(alerts->find("active")));
    if (const JsonValue* events = alerts->find("events"); events != nullptr) {
      for (const JsonValue& e : events->array) {
        const JsonValue* closed = e.find("closed_s");
        if (closed != nullptr && closed->type == JsonValue::Type::kNumber) {
          std::printf("    %-12s opened=%gs closed=%gs\n", str(e.find("app")).c_str(),
                      num(e.find("opened_s")), closed->number);
        } else {
          std::printf("    %-12s opened=%gs still open\n", str(e.find("app")).c_str(),
                      num(e.find("opened_s")));
        }
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <report.json> [more.json ...]\n", argv[0]);
    return 2;
  }
  int bad = 0;
  for (int i = 1; i < argc; ++i) {
    std::vector<std::string> problems;
    try {
      std::string text;
      {
        std::FILE* f = std::fopen(argv[i], "rb");
        if (f == nullptr) throw std::invalid_argument("cannot open file");
        char buf[65536];
        std::size_t n = 0;
        while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
        std::fclose(f);
      }
      const JsonValue doc = heteroplace::obs::parse_json(text);
      check_and_print(argv[i], doc, problems);
    } catch (const std::exception& e) {
      problems.push_back(e.what());
    }
    if (!problems.empty()) {
      ++bad;
      for (const std::string& p : problems) {
        std::fprintf(stderr, "%s: %s\n", argv[i], p.c_str());
      }
    }
  }
  return bad == 0 ? 0 : 1;
}
