// Micro-benchmarks (google-benchmark) for the simulation substrate:
// event-engine throughput and the request-level M/M/1 simulator.

#include <benchmark/benchmark.h>

#include <vector>

#include "perfmodel/request_sim.hpp"
#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace {

using namespace heteroplace;

void BM_EventQueuePushPop(benchmark::State& state) {
  // Raw queue throughput, no engine bookkeeping: the slab pool's
  // zero-allocation push/pop against BENCH_eventqueue.json's seed column
  // (bench/perf_baseline.cpp measures the retired shared_ptr queue).
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    util::Rng rng(3);
    long fired = 0;
    for (int i = 0; i < n; ++i) {
      q.push(rng.uniform(0.0, 1e6), sim::EventPriority::kStateTransition, [&fired] { ++fired; });
    }
    while (!q.empty()) {
      auto popped = q.pop();
      popped.callback();
    }
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_EventQueuePushPop)->RangeMultiplier(8)->Range(1024, 262144);

void BM_EventQueueCancelChurn(benchmark::State& state) {
  // The controller's reschedule pattern at queue scale: every pending
  // completion is cancelled and re-pushed, then the queue drains.
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    util::Rng rng(13);
    long fired = 0;
    std::vector<sim::EventHandle> handles;
    handles.reserve(n);
    for (int i = 0; i < n; ++i) {
      handles.push_back(q.push(rng.uniform(0.0, 1e6), sim::EventPriority::kStateTransition,
                               [&fired] { ++fired; }));
    }
    for (auto& h : handles) {
      h.cancel();
      h = q.push(rng.uniform(0.0, 1e6), sim::EventPriority::kStateTransition,
                 [&fired] { ++fired; });
    }
    while (!q.empty()) q.pop();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 4 * n);
}
BENCHMARK(BM_EventQueueCancelChurn)->RangeMultiplier(4)->Range(4096, 65536);

void BM_EngineScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    util::Rng rng(5);
    long fired = 0;
    for (int i = 0; i < n; ++i) {
      engine.schedule_at(util::Seconds{rng.uniform(0.0, 1e6)},
                         sim::EventPriority::kStateTransition, [&fired] { ++fired; });
    }
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineScheduleRun)->RangeMultiplier(8)->Range(1024, 262144);

void BM_EngineCancellationHeavy(benchmark::State& state) {
  // The controller cancels/reschedules job completions constantly; this
  // measures the lazy-deletion path.
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    util::Rng rng(9);
    long fired = 0;
    std::vector<sim::EventHandle> handles;
    handles.reserve(n);
    for (int i = 0; i < n; ++i) {
      handles.push_back(engine.schedule_at(util::Seconds{rng.uniform(0.0, 1e6)},
                                           sim::EventPriority::kStateTransition,
                                           [&fired] { ++fired; }));
    }
    for (int i = 0; i < n; i += 2) handles[i].cancel();  // half cancelled
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineCancellationHeavy)->Arg(16384)->Arg(65536);

void BM_RequestLevelMm1(benchmark::State& state) {
  perfmodel::RequestSimConfig cfg;
  cfg.lambda = 10.0;
  cfg.service_demand = 600.0;
  cfg.capacity_mhz = 12000.0;
  cfg.horizon_s = 5000.0;
  for (auto _ : state) {
    const auto r = perfmodel::run_request_sim(cfg);
    benchmark::DoNotOptimize(r.completed);
  }
}
BENCHMARK(BM_RequestLevelMm1);

}  // namespace

BENCHMARK_MAIN();
