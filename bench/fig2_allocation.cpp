// Reproduces Figure 2 of Carrera et al., HPDC'08: CPU power (MHz)
// allocated to each workload over time, together with each workload's
// *demand* — the CPU that would give it maximum utility.
//
// Headline claim checked here: the controller makes an *uneven
// distribution of CPU capacity* that results in an *even level of
// utility* across the workloads.

#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace heteroplace;
  const auto cfg = bench::parse_args(
      argc, argv, "fig2_allocation [--scale=F] [--seed=N] [--out=DIR] [--every=N]");

  const double scale = cfg.get_double("scale", 1.0);
  scenario::Scenario s = scale >= 1.0 ? scenario::section3_scenario()
                                      : scenario::section3_scaled(scale);
  s.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  scenario::ExperimentOptions options;
  options.policy = scenario::PolicyKind::kUtilityDriven;

  std::cout << "=== Figure 2: CPU allocated vs demand (" << s.name << ", " << s.cluster.nodes
            << " nodes x " << s.cluster.cpu_per_node_mhz << " MHz) ===\n";
  const auto result = scenario::run_experiment(s, options);

  const int every = static_cast<int>(cfg.get_int("every", 10));
  scenario::print_series_csv(
      std::cout, result.series,
      {"tx_alloc_mhz", "tx_demand_mhz", "lr_alloc_mhz", "lr_demand_mhz"}, every);
  std::cout << "\n";
  scenario::print_summary(std::cout, result.summary);

  // ---- shape checks ---------------------------------------------------------
  const auto* tx_alloc = result.series.find("tx_alloc_mhz");
  const auto* tx_demand = result.series.find("tx_demand_mhz");
  const auto* lr_alloc = result.series.find("lr_alloc_mhz");
  const auto* lr_demand = result.series.find("lr_demand_mhz");
  const auto* gap = result.series.find("utility_gap");
  const double t_end = result.summary.sim_end_time_s;
  const double capacity = s.cluster.nodes * s.cluster.cpu_per_node_mhz;
  const double arrivals_end =
      static_cast<double>(s.jobs.count) * s.jobs.mean_interarrival_s;

  std::cout << "\nPaper-shape checks:\n";
  bool all_ok = true;

  // (1) Early: transactional allocation ≈ its demand (no contention).
  const double cyc = s.controller.cycle_s;
  all_ok &= bench::check(
      "early transactional allocation ~ demand",
      tx_alloc->mean_over(cyc, 6 * cyc) > 0.7 * tx_demand->mean_over(cyc, 6 * cyc));

  // (2) Long-running demand grows past cluster capacity (crowding), while
  //     its satisfied allocation is capped by capacity and memory.
  const double lr_peak_demand = lr_demand->summary().max();
  all_ok &= bench::check("long-running demand exceeds cluster capacity at peak",
                         lr_peak_demand > capacity);

  // (3) Mid-run: transactional allocation falls below its demand (CPU is
  //     being shifted to jobs)...
  const double mid0 = 0.5 * arrivals_end;
  const double mid1 = 0.9 * arrivals_end;
  const double tx_mid_alloc = tx_alloc->mean_over(mid0, mid1);
  const double tx_mid_demand = tx_demand->mean_over(mid0, mid1);
  all_ok &= bench::check("mid-run transactional allocation below demand",
                         tx_mid_alloc < 0.9 * tx_mid_demand);

  // (4) ...while the CPU split is uneven and utility stays even.
  const double lr_mid_alloc = lr_alloc->mean_over(mid0, mid1);
  const double split_ratio =
      std::fabs(tx_mid_alloc - lr_mid_alloc) / std::max(tx_mid_alloc, lr_mid_alloc);
  const double mid_gap = gap != nullptr ? gap->mean_over(mid0, mid1) : 1.0;
  all_ok &= bench::check("uneven CPU split (>25% difference between workloads)",
                         split_ratio > 0.25);
  all_ok &= bench::check("even utility (mean |u_tx - u_lr| < 0.1 mid-run)", mid_gap < 0.1);

  // (5) Recovery: transactional allocation returns toward demand.
  const double tx_late = tx_alloc->value_at(t_end);
  all_ok &= bench::check("transactional allocation recovers to ~demand at the end",
                         tx_late > 0.9 * tx_demand->value_at(t_end));

  bench::save_series(result, bench::output_dir(cfg) + "/fig2_allocation.csv");
  return all_ok ? 0 : 1;
}
