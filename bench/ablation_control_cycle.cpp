// Ablation A: control-cycle sensitivity.
//
// The paper fixes the control cycle at 600 s. This ablation sweeps the
// cycle length and reports how reactivity trades off against churn:
// shorter cycles track load better (smaller equalization gap) at the cost
// of more placement actions; very long cycles leave jobs queued and
// utility unbalanced.

#include <iostream>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace heteroplace;
  const auto cfg = bench::parse_args(
      argc, argv, "ablation_control_cycle [--scale=F] [--seed=N] [--out=DIR]");
  const double scale = cfg.get_double("scale", 0.2);

  const std::vector<double> cycles = {150.0, 300.0, 600.0, 1200.0, 2400.0};
  std::cout << "=== Ablation: control-cycle length (section3 scaled x" << scale << ") ===\n";
  std::cout << "cycle_s,tx_utility_mean,lr_utility_mean,equalization_gap,goal_met,"
               "completion_ratio_mean,disruptive_actions,instance_changes,cycles\n";

  std::vector<scenario::ExperimentResult> results(cycles.size());
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic)
#endif
  for (std::size_t i = 0; i < cycles.size(); ++i) {
    scenario::Scenario s = scenario::section3_scaled(scale);
    s.controller.cycle_s = cycles[i];
    s.sample_interval_s = cycles[i];
    s.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
    results[i] = scenario::run_experiment(s, {});
  }

  bool all_ok = true;
  double gap_600 = 0.0;
  double gap_2400 = 0.0;
  for (std::size_t i = 0; i < cycles.size(); ++i) {
    const auto& sum = results[i].summary;
    std::cout << cycles[i] << "," << sum.tx_utility.mean() << "," << sum.lr_utility.mean()
              << "," << sum.equalization_gap.mean() << "," << sum.goal_met_fraction << ","
              << sum.completion_ratio.mean() << "," << sum.actions.total_disruptive() << ","
              << sum.actions.instance_starts + sum.actions.instance_stops << "," << sum.cycles
              << "\n";
    if (cycles[i] == 600.0) gap_600 = sum.equalization_gap.mean();
    if (cycles[i] == 2400.0) gap_2400 = sum.equalization_gap.mean();
    all_ok &= sum.jobs_completed == sum.jobs_submitted;
  }

  std::cout << "\nChecks:\n";
  all_ok &= bench::check("all runs complete every job", all_ok);
  all_ok &= bench::check("slower control (2400 s) tracks utility worse than 600 s",
                         gap_2400 > gap_600);
  return all_ok ? 0 : 1;
}
