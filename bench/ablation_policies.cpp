// Ablation C: placement-policy comparison.
//
// Runs the Section-3 workload under the paper's utility-driven controller
// and under three utility-blind baselines:
//   static-partition    — fixed node split, FCFS jobs at full speed
//   proportional-equal  — every workload entity gets an equal CPU share
//   proportional-demand — CPU proportional to raw demand
// The comparison isolates the paper's contribution: only the
// utility-driven policy balances the *worst-off* class.

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace heteroplace;
  const auto cfg = bench::parse_args(
      argc, argv, "ablation_policies [--scale=F] [--seed=N] [--out=DIR]");
  const double scale = cfg.get_double("scale", 0.2);

  const std::vector<scenario::PolicyKind> policies = {
      scenario::PolicyKind::kUtilityDriven, scenario::PolicyKind::kStaticPartition,
      scenario::PolicyKind::kProportionalEqual, scenario::PolicyKind::kProportionalDemand};

  std::cout << "=== Ablation: placement policies (section3 scaled x" << scale << ") ===\n";
  std::cout << scenario::summary_csv_header() << ",min_class_utility\n";

  std::vector<scenario::ExperimentResult> results(policies.size());
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic)
#endif
  for (std::size_t i = 0; i < policies.size(); ++i) {
    scenario::Scenario s = scenario::section3_scaled(scale);
    s.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
    scenario::ExperimentOptions opt;
    opt.policy = policies[i];
    opt.max_sim_time_s = 2.0e6;
    results[i] = scenario::run_experiment(s, opt);
  }

  std::vector<double> min_class(policies.size());
  for (std::size_t i = 0; i < policies.size(); ++i) {
    const auto& sum = results[i].summary;
    min_class[i] = std::min(sum.tx_utility.mean(), sum.job_utility.mean());
    std::cout << scenario::summary_csv_row(sum) << "," << min_class[i] << "\n";
  }

  std::cout << "\nChecks:\n";
  bool all_ok = true;
  for (std::size_t i = 1; i < policies.size(); ++i) {
    all_ok &= bench::check(std::string("utility-driven min-class utility beats ") +
                               scenario::to_string(policies[i]),
                           min_class[0] > min_class[i]);
  }
  all_ok &= bench::check("utility-driven completes every job",
                         results[0].summary.jobs_completed ==
                             results[0].summary.jobs_submitted);
  return all_ok ? 0 : 1;
}
