#pragma once

// Shared placement-problem generator for the solver benches. Both the
// google-benchmark micro bench (micro_solver.cpp) and the committed
// perf baseline (perf_baseline.cpp) must time the exact same problems,
// or their numbers stop being comparable — keep the generator here and
// nowhere else.

#include "core/placement_problem.hpp"
#include "util/rng.hpp"

namespace heteroplace::bench {

inline core::PlacementProblem make_placement_problem(int nodes, int jobs_n) {
  util::Rng rng(11);
  core::PlacementProblem problem;
  for (int i = 0; i < nodes; ++i) {
    problem.nodes.push_back(
        {util::NodeId{static_cast<unsigned>(i)}, util::CpuMhz{12000.0}, util::MemMb{4096.0}});
  }
  for (int i = 0; i < jobs_n; ++i) {
    core::SolverJob j;
    j.id = util::JobId{static_cast<unsigned>(i)};
    j.memory = util::MemMb{1300.0};
    j.max_speed = util::CpuMhz{3000.0};
    j.target = util::CpuMhz{rng.uniform(500.0, 3000.0)};
    j.urgency = j.target.get();
    j.remaining = util::MhzSeconds{1e8};
    if (i < nodes * 2) {  // some candidates are already running
      j.phase = workload::JobPhase::kRunning;
      j.current_node = util::NodeId{static_cast<unsigned>(i % nodes)};
    }
    problem.jobs.push_back(j);
  }
  core::SolverApp app;
  app.id = util::AppId{0};
  app.instance_memory = util::MemMb{1024.0};
  app.max_instances = nodes;
  app.max_cpu_per_instance = util::CpuMhz{12000.0};
  app.target = util::CpuMhz{nodes * 4000.0};
  problem.apps.push_back(app);
  return problem;
}

}  // namespace heteroplace::bench
