#pragma once

// Shared helpers for the figure-reproduction benches: argument parsing,
// output locations, and the paper-claim check printer.

#include <filesystem>
#include <iostream>
#include <string>

#include "scenario/experiment.hpp"
#include "scenario/report.hpp"
#include "util/config.hpp"

namespace heteroplace::bench {

/// Parse --key=value args; on error print usage and exit.
inline util::Config parse_args(int argc, char** argv, const std::string& usage) {
  try {
    return util::Config::from_args(argc, argv);
  } catch (const util::ConfigError& e) {
    std::cerr << "usage: " << usage << "\n" << e.what() << "\n";
    std::exit(1);
  }
}

/// Directory for full-resolution CSV dumps (default ./bench_out).
inline std::string output_dir(const util::Config& cfg) {
  const std::string dir = cfg.get_string("out", "bench_out");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

/// Print a PASS/FAIL shape-check line (the benches verify the *shape* of
/// the paper's figures, not absolute numbers).
inline bool check(const std::string& what, bool ok) {
  std::cout << (ok ? "  [PASS] " : "  [FAIL] ") << what << "\n";
  return ok;
}

inline void save_series(const scenario::ExperimentResult& result, const std::string& path) {
  if (result.series.save_csv(path)) {
    std::cout << "full series written to " << path << "\n";
  } else {
    std::cout << "WARNING: could not write " << path << "\n";
  }
}

}  // namespace heteroplace::bench
