// Ablation B: job arrival-rate sweep.
//
// The paper's evaluation uses a mean inter-arrival of 260 s, which makes
// the system "increasingly crowded". This sweep shows the load crossover:
// at low rates every goal is met and the transactional tier keeps its
// demand; past the crossover, completion ratios and both utilities sag
// and the equalizer pushes the transactional allocation down.

#include <iostream>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace heteroplace;
  const auto cfg = bench::parse_args(
      argc, argv, "ablation_arrival_rate [--scale=F] [--seed=N] [--out=DIR]");
  const double scale = cfg.get_double("scale", 0.2);

  const std::vector<double> inter_arrivals = {1040.0, 520.0, 390.0, 260.0, 195.0, 130.0};
  std::cout << "=== Ablation: mean job inter-arrival (section3 scaled x" << scale << ") ===\n";
  std::cout << "mean_interarrival_s,goal_met,completion_ratio_mean,tx_utility_mean,"
               "lr_utility_mean,tx_alloc_mid_frac,jobs_completed\n";

  std::vector<scenario::ExperimentResult> results(inter_arrivals.size());
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic)
#endif
  for (std::size_t i = 0; i < inter_arrivals.size(); ++i) {
    scenario::Scenario s = scenario::section3_scaled(scale);
    s.jobs.mean_interarrival_s = inter_arrivals[i];
    s.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
    scenario::ExperimentOptions opt;
    opt.max_sim_time_s = 2.0e6;
    results[i] = scenario::run_experiment(s, opt);
  }

  std::vector<double> goal_met(inter_arrivals.size());
  for (std::size_t i = 0; i < inter_arrivals.size(); ++i) {
    const auto& r = results[i];
    const auto* tx_alloc = r.series.find("tx_alloc_mhz");
    const auto* tx_demand = r.series.find("tx_demand_mhz");
    const double t_end = r.summary.sim_end_time_s;
    const double tx_frac = tx_demand->mean_over(0.3 * t_end, 0.7 * t_end) > 0
                               ? tx_alloc->mean_over(0.3 * t_end, 0.7 * t_end) /
                                     tx_demand->mean_over(0.3 * t_end, 0.7 * t_end)
                               : 1.0;
    goal_met[i] = r.summary.goal_met_fraction;
    std::cout << inter_arrivals[i] << "," << r.summary.goal_met_fraction << ","
              << r.summary.completion_ratio.mean() << "," << r.summary.tx_utility.mean()
              << "," << r.summary.lr_utility.mean() << "," << tx_frac << ","
              << r.summary.jobs_completed << "\n";
  }

  std::cout << "\nChecks:\n";
  bool all_ok = true;
  all_ok &= bench::check("lightly loaded system meets nearly all goals",
                         goal_met.front() > 0.9);
  all_ok &= bench::check("goal attainment degrades with arrival rate",
                         goal_met.back() < goal_met.front());
  return all_ok ? 0 : 1;
}
