// Reproduces Figure 1 of Carrera et al., HPDC'08: actual utility of the
// transactional workload and average hypothetical utility of the
// long-running workload over the Section-3 experiment.
//
// The paper's qualitative claims, each checked against the run:
//   (1) initially the transactional app gets all the CPU it can consume
//       and sits at its maximum utility;
//   (2) as jobs crowd the system, the long-running hypothetical utility
//       falls; once it crosses below the transactional utility the
//       controller shifts CPU until the two utilities equalize;
//   (3) when submissions stop, CPU flows back and transactional utility
//       recovers toward its maximum.

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace heteroplace;
  const auto cfg = bench::parse_args(
      argc, argv, "fig1_utility [--scale=F] [--seed=N] [--out=DIR] [--every=N]");

  const double scale = cfg.get_double("scale", 1.0);
  scenario::Scenario s = scale >= 1.0 ? scenario::section3_scenario()
                                      : scenario::section3_scaled(scale);
  s.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));

  scenario::ExperimentOptions options;
  options.policy = scenario::PolicyKind::kUtilityDriven;

  std::cout << "=== Figure 1: utility over time (" << s.name << ", " << s.cluster.nodes
            << " nodes, " << s.jobs.count << " jobs, cycle " << s.controller.cycle_s
            << " s) ===\n";
  const auto result = scenario::run_experiment(s, options);

  const int every = static_cast<int>(cfg.get_int("every", 10));
  scenario::print_series_csv(std::cout, result.series,
                             {"tx_utility", "lr_hyp_utility", "u_star", "active_jobs"}, every);
  std::cout << "\n";
  scenario::print_summary(std::cout, result.summary);

  // ---- shape checks ---------------------------------------------------------
  const auto* tx = result.series.find("tx_utility");
  const auto* lr = result.series.find("lr_hyp_utility");
  const auto* active = result.series.find("active_jobs");
  const double t_end = result.summary.sim_end_time_s;
  const double arrivals_end =
      static_cast<double>(s.jobs.count) * s.jobs.mean_interarrival_s;

  std::cout << "\nPaper-shape checks:\n";
  bool all_ok = true;
  if (tx != nullptr && lr != nullptr && active != nullptr) {
    // (1) Early phase: transactional utility at/near its cap.
    const double u_cap = s.apps[0].spec.utility_cap;
    const double tx_early = tx->mean_over(s.controller.cycle_s, 6 * s.controller.cycle_s);
    all_ok &= bench::check("early transactional utility near its maximum", tx_early > 0.8 * u_cap);

    // (2) Crowded phase: utilities equalize.
    all_ok &= bench::check("equalization gap small in contended phase",
                           result.summary.equalization_gap.mean() < 0.2);

    // (2b) lr utility decreases while the system crowds.
    const double lr_early = lr->mean_over(0.0, 0.1 * arrivals_end);
    const double lr_mid = lr->mean_over(0.6 * arrivals_end, 0.9 * arrivals_end);
    all_ok &= bench::check("long-running utility decreases as system crowds",
                           lr_mid < lr_early);

    // (3) Recovery: after submissions end, transactional utility rises again.
    const double tx_mid = tx->mean_over(0.6 * arrivals_end, 0.9 * arrivals_end);
    const double tx_late = tx->mean_over(std::max(arrivals_end, 0.9 * t_end), t_end);
    all_ok &= bench::check("transactional utility recovers after submissions stop",
                           tx_late > tx_mid);
  }
  all_ok &= bench::check("all submitted jobs completed",
                         result.summary.jobs_completed == result.summary.jobs_submitted);

  bench::save_series(result, bench::output_dir(cfg) + "/fig1_utility.csv");
  return all_ok ? 0 : 1;
}
