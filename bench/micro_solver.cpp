// Micro-benchmarks (google-benchmark) for the controller's two solve
// stages: hypothetical-utility equalization and discrete placement.
//
// The paper's controller must finish well within its 600 s control cycle;
// these benchmarks document the actual cost and its scaling in the number
// of jobs and nodes (the paper notes the naive schedule-enumeration
// alternative is exponential — this shows the approximation is cheap).

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/equalizer.hpp"
#include "core/placement_solver.hpp"
#include "util/rng.hpp"
#include "utility/job_utility.hpp"
#include "utility/tx_utility.hpp"
#include "workload/job.hpp"
#include "workload/transactional.hpp"

namespace {

using namespace heteroplace;

std::vector<workload::Job> make_jobs(int n, util::Rng& rng) {
  std::vector<workload::Job> jobs;
  jobs.reserve(n);
  for (int i = 0; i < n; ++i) {
    workload::JobSpec spec;
    spec.id = util::JobId{static_cast<unsigned>(i)};
    spec.work = util::MhzSeconds{rng.uniform(1.0e7, 6.0e7)};
    spec.max_speed = util::CpuMhz{3000.0};
    spec.memory = util::MemMb{1300.0};
    spec.submit_time = util::Seconds{rng.uniform(0.0, 50000.0)};
    spec.completion_goal = util::Seconds{2.0 * spec.nominal_length().get()};
    jobs.emplace_back(std::move(spec));
  }
  return jobs;
}

workload::TxApp make_app() {
  workload::TxAppSpec spec;
  spec.id = util::AppId{0};
  spec.name = "web";
  spec.rt_goal = util::Seconds{1.2};
  spec.service_demand = 5000.0;
  return workload::TxApp{spec, workload::DemandTrace{24.0}};
}

void BM_EqualizeJobs(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(7);
  const auto jobs = make_jobs(n, rng);
  const auto app = make_app();
  const utility::JobUtilityModel job_model;
  const utility::TxUtilityModel tx_model;
  const util::Seconds now{60000.0};

  std::vector<core::JobConsumer> jc;
  jc.reserve(jobs.size());
  for (const auto& j : jobs) jc.emplace_back(j, job_model, now);
  core::TxConsumer tc(app, tx_model, now);
  std::vector<const core::UtilityConsumer*> consumers;
  for (const auto& c : jc) consumers.push_back(&c);
  consumers.push_back(&tc);

  const util::CpuMhz capacity{300000.0};
  for (auto _ : state) {
    auto result = core::equalize(consumers, capacity);
    benchmark::DoNotOptimize(result.u_star);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_EqualizeJobs)->RangeMultiplier(4)->Range(16, 1024)->Complexity();

void BM_SolvePlacement(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const int jobs_n = nodes * 4;  // oversubscribed: 4 candidates per node
  util::Rng rng(11);

  core::PlacementProblem problem;
  for (int i = 0; i < nodes; ++i) {
    problem.nodes.push_back(
        {util::NodeId{static_cast<unsigned>(i)}, util::CpuMhz{12000.0}, util::MemMb{4096.0}});
  }
  for (int i = 0; i < jobs_n; ++i) {
    core::SolverJob j;
    j.id = util::JobId{static_cast<unsigned>(i)};
    j.memory = util::MemMb{1300.0};
    j.max_speed = util::CpuMhz{3000.0};
    j.target = util::CpuMhz{rng.uniform(500.0, 3000.0)};
    j.urgency = j.target.get();
    j.remaining = util::MhzSeconds{1e8};
    if (i < nodes * 2) {  // half the candidates are already running
      j.phase = workload::JobPhase::kRunning;
      j.current_node = util::NodeId{static_cast<unsigned>(i % nodes)};
    }
    problem.jobs.push_back(j);
  }
  core::SolverApp app;
  app.id = util::AppId{0};
  app.instance_memory = util::MemMb{1024.0};
  app.max_instances = nodes;
  app.max_cpu_per_instance = util::CpuMhz{12000.0};
  app.target = util::CpuMhz{nodes * 4000.0};
  problem.apps.push_back(app);

  for (auto _ : state) {
    auto result = core::solve_placement(problem);
    benchmark::DoNotOptimize(result.plan.jobs.size());
  }
  state.SetComplexityN(nodes);
}
BENCHMARK(BM_SolvePlacement)->RangeMultiplier(2)->Range(25, 400)->Complexity();

void BM_TxInverse(benchmark::State& state) {
  const utility::TxUtilityModel model;
  workload::TxAppSpec spec;
  spec.rt_goal = util::Seconds{1.2};
  spec.service_demand = 5000.0;
  double u = -1.0;
  for (auto _ : state) {
    u += 0.01;
    if (u > 0.89) u = -1.0;
    benchmark::DoNotOptimize(model.alloc_for_utility(spec, 24.0, u));
  }
}
BENCHMARK(BM_TxInverse);

}  // namespace

BENCHMARK_MAIN();
