// Micro-benchmarks (google-benchmark) for the controller's two solve
// stages: hypothetical-utility equalization and discrete placement.
//
// The paper's controller must finish well within its 600 s control cycle;
// these benchmarks document the actual cost and its scaling in the number
// of jobs and nodes (the paper notes the naive schedule-enumeration
// alternative is exponential — this shows the approximation is cheap).

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/equalizer.hpp"
#include "core/placement_solver.hpp"
#include "solver_shapes.hpp"
#include "util/rng.hpp"
#include "utility/job_utility.hpp"
#include "utility/tx_utility.hpp"
#include "workload/job.hpp"
#include "workload/transactional.hpp"

namespace {

using namespace heteroplace;

std::vector<workload::Job> make_jobs(int n, util::Rng& rng) {
  std::vector<workload::Job> jobs;
  jobs.reserve(n);
  for (int i = 0; i < n; ++i) {
    workload::JobSpec spec;
    spec.id = util::JobId{static_cast<unsigned>(i)};
    spec.work = util::MhzSeconds{rng.uniform(1.0e7, 6.0e7)};
    spec.max_speed = util::CpuMhz{3000.0};
    spec.memory = util::MemMb{1300.0};
    spec.submit_time = util::Seconds{rng.uniform(0.0, 50000.0)};
    spec.completion_goal = util::Seconds{2.0 * spec.nominal_length().get()};
    jobs.emplace_back(std::move(spec));
  }
  return jobs;
}

workload::TxApp make_app() {
  workload::TxAppSpec spec;
  spec.id = util::AppId{0};
  spec.name = "web";
  spec.rt_goal = util::Seconds{1.2};
  spec.service_demand = 5000.0;
  return workload::TxApp{spec, workload::DemandTrace{24.0}};
}

void BM_EqualizeJobs(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(7);
  const auto jobs = make_jobs(n, rng);
  const auto app = make_app();
  const utility::JobUtilityModel job_model;
  const utility::TxUtilityModel tx_model;
  const util::Seconds now{60000.0};

  std::vector<core::JobConsumer> jc;
  jc.reserve(jobs.size());
  for (const auto& j : jobs) jc.emplace_back(j, job_model, now);
  core::TxConsumer tc(app, tx_model, now);
  std::vector<const core::UtilityConsumer*> consumers;
  for (const auto& c : jc) consumers.push_back(&c);
  consumers.push_back(&tc);

  const util::CpuMhz capacity{300000.0};
  for (auto _ : state) {
    auto result = core::equalize(consumers, capacity);
    benchmark::DoNotOptimize(result.u_star);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_EqualizeJobs)->RangeMultiplier(4)->Range(16, 4096)->Complexity();

void BM_EqualizeJobsVirtualPath(benchmark::State& state) {
  // The seed equalizer loop (per-consumer virtual dispatch, no curve
  // cache), for the BENCH_equalizer.json trajectory.
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(7);
  const auto jobs = make_jobs(n, rng);
  const auto app = make_app();
  const utility::JobUtilityModel job_model;
  const utility::TxUtilityModel tx_model;
  const util::Seconds now{60000.0};

  std::vector<core::JobConsumer> jc;
  jc.reserve(jobs.size());
  for (const auto& j : jobs) jc.emplace_back(j, job_model, now);
  core::TxConsumer tc(app, tx_model, now);
  std::vector<const core::UtilityConsumer*> consumers;
  for (const auto& c : jc) consumers.push_back(&c);
  consumers.push_back(&tc);

  core::EqualizerOptions opts;
  opts.use_curve_cache = false;
  const util::CpuMhz capacity{300000.0};
  for (auto _ : state) {
    auto result = core::equalize(consumers, capacity, opts);
    benchmark::DoNotOptimize(result.u_star);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_EqualizeJobsVirtualPath)->RangeMultiplier(4)->Range(16, 4096)->Complexity();

void BM_SolvePlacement(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const int jobs_n = static_cast<int>(state.range(1));
  const auto problem = bench::make_placement_problem(nodes, jobs_n);
  for (auto _ : state) {
    auto result = core::solve_placement(problem);
    benchmark::DoNotOptimize(result.plan.jobs.size());
  }
  state.SetComplexityN(nodes);
}
// Oversubscribed scaling: 4 job candidates per node (the seed shapes).
// One shape family per benchmark — the Complexity() fit is only
// meaningful when jobs grow proportionally with N.
BENCHMARK(BM_SolvePlacement)
    ->Args({25, 100})
    ->Args({50, 200})
    ->Args({100, 400})
    ->Args({200, 800})
    ->Args({400, 1600})
    ->Complexity();

void BM_SolvePlacementDenseQueue(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const int jobs_n = static_cast<int>(state.range(1));
  const auto problem = bench::make_placement_problem(nodes, jobs_n);
  for (auto _ : state) {
    auto result = core::solve_placement(problem);
    benchmark::DoNotOptimize(result.plan.jobs.size());
  }
}
// Dense queues (~31 candidates per node, up to 128 nodes / 4000 jobs):
// the waiting list dwarfs the slot count and admission dominates.
// Same shapes as BENCH_solver.json (bench/perf_baseline.cpp).
BENCHMARK(BM_SolvePlacementDenseQueue)
    ->Args({16, 500})
    ->Args({64, 2000})
    ->Args({128, 4000});

void BM_TxInverse(benchmark::State& state) {
  const utility::TxUtilityModel model;
  workload::TxAppSpec spec;
  spec.rt_goal = util::Seconds{1.2};
  spec.service_demand = 5000.0;
  double u = -1.0;
  for (auto _ : state) {
    u += 0.01;
    if (u > 0.89) u = -1.0;
    benchmark::DoNotOptimize(model.alloc_for_utility(spec, 24.0, u));
  }
}
BENCHMARK(BM_TxInverse);

}  // namespace

BENCHMARK_MAIN();
