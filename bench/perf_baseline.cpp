// Perf-regression baseline for the control-cycle hot paths.
//
// Measures each optimized hot path against the seed implementation it
// replaced — the shared_ptr event queue and the seed placement solver
// are preserved verbatim under bench/legacy/, and the seed equalizer
// loop survives behind EqualizerOptions::use_curve_cache=false — and
// emits machine-readable BENCH_eventqueue.json / BENCH_equalizer.json /
// BENCH_solver.json. The committed copies at the repo root are the perf
// trajectory: future PRs rerun this tool and compare.
//
//   perf_baseline [--out=DIR] [--quick]
//
// --quick shrinks shapes and repetitions for CI smoke runs (the JSON is
// still valid; the numbers are just noisier). Timings take the minimum
// of `reps` runs, which is robust to scheduler noise on shared runners.
//
// The solver section also re-verifies plan equivalence (seed vs.
// optimized) on every shape it times and fails loudly on divergence, so
// the perf numbers can never silently come from a solver that changed
// behavior.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <limits>
#include <utility>
#include <iostream>
#include <string>
#include <vector>

#include "core/equalizer.hpp"
#include "core/placement_solver.hpp"
#include "legacy/legacy_event_queue.hpp"
#include "legacy/legacy_placement_solver.hpp"
#include "sim/event_queue.hpp"
#include "solver_shapes.hpp"
#include "util/rng.hpp"
#include "utility/job_utility.hpp"
#include "utility/tx_utility.hpp"
#include "workload/job.hpp"
#include "workload/transactional.hpp"

namespace {

using namespace heteroplace;
using Clock = std::chrono::steady_clock;

volatile long g_sink = 0;  // defeats dead-code elimination across runs

/// Best-of-`reps` wall time of `fn`, in nanoseconds.
double time_best_ns(int reps, const std::function<void()>& fn) {
  double best = std::numeric_limits<double>::max();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    const auto t1 = Clock::now();
    best = std::min(best,
                    static_cast<double>(
                        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()));
  }
  return best;
}

struct Case {
  std::string name;
  double ops;  // per run, for ns/op normalization
  double seed_ns;
  double optimized_ns;
};

void write_json(const std::string& path, const std::string& component, bool quick,
                const std::vector<Case>& cases) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"schema\": \"heteroplace-perf-baseline/v1\",\n"
      << "  \"component\": \"" << component << "\",\n"
      << "  \"mode\": \"" << (quick ? "quick" : "full") << "\",\n"
      << "  \"seed_impl\": \"bench/legacy (pre-overhaul implementation)\",\n"
      << "  \"cases\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Case& c = cases[i];
    const double seed_per_op = c.seed_ns / c.ops;
    const double opt_per_op = c.optimized_ns / c.ops;
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"ops\": %.0f, \"seed_ns_per_op\": %.2f, "
                  "\"optimized_ns_per_op\": %.2f, \"speedup\": %.2f}%s\n",
                  c.name.c_str(), c.ops, seed_per_op, opt_per_op, seed_per_op / opt_per_op,
                  i + 1 < cases.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << path << "\n";
}

void print_case(const Case& c) {
  std::printf("  %-28s seed %9.1f ns/op   optimized %9.1f ns/op   speedup %5.2fx\n",
              c.name.c_str(), c.seed_ns / c.ops, c.optimized_ns / c.ops,
              c.seed_ns / c.optimized_ns);
}

// ---- event queue ------------------------------------------------------------

std::vector<Case> bench_eventqueue(bool quick) {
  std::vector<Case> cases;

  // The 1M-event shape is the production-scale regime the ROADMAP
  // targets; it is also where the seed's per-record allocations and
  // pointer-chasing comparisons hurt the most.
  const auto shapes =
      quick ? std::vector<int>{16384} : std::vector<int>{16384, 65536, 262144, 1048576};
  for (const int n : shapes) {
    const int reps = quick ? 3 : (n >= 262144 ? 3 : 7);
    // Event times are pregenerated so the measurement covers the queue,
    // not the RNG; both implementations consume identical sequences.
    util::Rng rng(3);
    std::vector<double> times(static_cast<std::size_t>(2 * n));
    for (auto& t : times) t = rng.uniform(0.0, 1e6);

    // push_pop: schedule n at random times, drain.
    const auto seed_pp = time_best_ns(reps, [n, &times] {
      bench::legacy::LegacyEventQueue q;
      for (int i = 0; i < n; ++i) {
        q.push(times[i], sim::EventPriority::kStateTransition, [] { g_sink = g_sink + 1; });
      }
      while (!q.empty()) q.pop().callback();
    });
    const auto opt_pp = time_best_ns(reps, [n, &times] {
      sim::EventQueue q;
      for (int i = 0; i < n; ++i) {
        q.push(times[i], sim::EventPriority::kStateTransition, [] { g_sink = g_sink + 1; });
      }
      while (!q.empty()) q.pop().callback();
    });
    cases.push_back({"push_pop_" + std::to_string(n), 2.0 * n, seed_pp, opt_pp});

    // cancel churn: the controller's reschedule pattern — every handle
    // cancelled and re-pushed once, then drain.
    const auto seed_cc = time_best_ns(reps, [n, &times] {
      bench::legacy::LegacyEventQueue q;
      std::vector<bench::legacy::LegacyEventHandle> handles;
      handles.reserve(n);
      for (int i = 0; i < n; ++i) {
        handles.push_back(
            q.push(times[i], sim::EventPriority::kStateTransition, [] { g_sink = g_sink + 1; }));
      }
      for (int i = 0; i < n; ++i) {
        handles[i].cancel();
        handles[i] =
            q.push(times[n + i], sim::EventPriority::kStateTransition, [] { g_sink = g_sink + 1; });
      }
      while (!q.empty()) q.pop();
    });
    const auto opt_cc = time_best_ns(reps, [n, &times] {
      sim::EventQueue q;
      std::vector<sim::EventHandle> handles;
      handles.reserve(n);
      for (int i = 0; i < n; ++i) {
        handles.push_back(
            q.push(times[i], sim::EventPriority::kStateTransition, [] { g_sink = g_sink + 1; }));
      }
      for (int i = 0; i < n; ++i) {
        handles[i].cancel();
        handles[i] =
            q.push(times[n + i], sim::EventPriority::kStateTransition, [] { g_sink = g_sink + 1; });
      }
      while (!q.empty()) q.pop();
    });
    cases.push_back({"cancel_churn_" + std::to_string(n), 4.0 * n, seed_cc, opt_cc});
  }
  return cases;
}

// ---- equalizer --------------------------------------------------------------

std::vector<Case> bench_equalizer(bool quick) {
  const int reps = quick ? 3 : 5;
  std::vector<Case> cases;
  const auto shapes = quick ? std::vector<int>{256} : std::vector<int>{256, 1024, 4096};

  for (const int n_jobs : shapes) {
    util::Rng rng(7);
    std::vector<workload::Job> jobs;
    jobs.reserve(n_jobs);
    for (int i = 0; i < n_jobs; ++i) {
      workload::JobSpec spec;
      spec.id = util::JobId{static_cast<unsigned>(i)};
      spec.work = util::MhzSeconds{rng.uniform(1.0e7, 6.0e7)};
      spec.max_speed = util::CpuMhz{3000.0};
      spec.importance = rng.chance(0.25) ? 2.0 : 1.0;
      spec.submit_time = util::Seconds{rng.uniform(0.0, 50000.0)};
      spec.completion_goal = util::Seconds{2.0 * spec.nominal_length().get()};
      jobs.emplace_back(std::move(spec));
    }
    std::vector<workload::TxApp> apps;
    for (int a = 0; a < 4; ++a) {
      workload::TxAppSpec spec;
      spec.id = util::AppId{static_cast<unsigned>(a)};
      spec.rt_goal = util::Seconds{1.2};
      spec.service_demand = 5000.0;
      apps.emplace_back(spec, workload::DemandTrace{12.0 + 8.0 * a});
    }
    const utility::JobUtilityModel job_model;
    const utility::TxUtilityModel tx_model;
    const util::Seconds now{60000.0};
    std::vector<core::JobConsumer> jc;
    std::vector<core::TxConsumer> tc;
    jc.reserve(jobs.size());
    tc.reserve(apps.size());
    for (const auto& j : jobs) jc.emplace_back(j, job_model, now);
    for (const auto& app : apps) tc.emplace_back(app, tx_model, now);
    std::vector<const core::UtilityConsumer*> consumers;
    for (const auto& c : jc) consumers.push_back(&c);
    for (const auto& c : tc) consumers.push_back(&c);

    // ~30% of total demand: firmly in the contended regime.
    const util::CpuMhz capacity{n_jobs * 550.0};

    core::EqualizerOptions slow;
    slow.use_curve_cache = false;
    core::EqualizerOptions fast;
    fast.use_curve_cache = true;
    const auto seed_ns = time_best_ns(reps, [&] {
      const auto r = core::equalize(consumers, capacity, slow);
      g_sink = g_sink + r.iterations;
    });
    const auto opt_ns = time_best_ns(reps, [&] {
      const auto r = core::equalize(consumers, capacity, fast);
      g_sink = g_sink + r.iterations;
    });
    cases.push_back({"equalize_" + std::to_string(n_jobs) + "j_4a",
                     static_cast<double>(consumers.size()), seed_ns, opt_ns});
  }
  return cases;
}

// ---- placement solver -------------------------------------------------------

bool plans_equal(const core::SolverResult& a, const core::SolverResult& b) {
  if (a.plan.jobs.size() != b.plan.jobs.size()) return false;
  if (a.plan.instances.size() != b.plan.instances.size()) return false;
  for (std::size_t i = 0; i < a.plan.jobs.size(); ++i) {
    if (a.plan.jobs[i].job != b.plan.jobs[i].job) return false;
    if (a.plan.jobs[i].node != b.plan.jobs[i].node) return false;
    if (std::fabs(a.plan.jobs[i].cpu.get() - b.plan.jobs[i].cpu.get()) > 1e-6) return false;
  }
  for (std::size_t i = 0; i < a.plan.instances.size(); ++i) {
    if (a.plan.instances[i].app != b.plan.instances[i].app) return false;
    if (a.plan.instances[i].node != b.plan.instances[i].node) return false;
    if (std::fabs(a.plan.instances[i].cpu.get() - b.plan.instances[i].cpu.get()) > 1e-6) {
      return false;
    }
  }
  return true;
}

std::vector<Case> bench_solver(bool quick, bool& plans_ok) {
  const int reps = quick ? 3 : 5;
  std::vector<Case> cases;
  plans_ok = true;
  const auto shapes = quick
                          ? std::vector<std::pair<int, int>>{{16, 500}}
                          : std::vector<std::pair<int, int>>{{16, 500}, {64, 2000}, {128, 4000}};
  for (const auto& [nodes, jobs_n] : shapes) {
    const auto problem = bench::make_placement_problem(nodes, jobs_n);
    if (!plans_equal(bench::legacy::solve_placement_legacy(problem),
                     core::solve_placement(problem))) {
      std::cerr << "FATAL: optimized solver diverges from seed at " << nodes << "n/" << jobs_n
                << "j\n";
      plans_ok = false;
    }
    const auto seed_ns = time_best_ns(reps, [&] {
      const auto r = bench::legacy::solve_placement_legacy(problem);
      g_sink = g_sink + r.stats.jobs_placed;
    });
    const auto opt_ns = time_best_ns(reps, [&] {
      const auto r = core::solve_placement(problem);
      g_sink = g_sink + r.stats.jobs_placed;
    });
    cases.push_back({"solve_" + std::to_string(nodes) + "n_" + std::to_string(jobs_n) + "j",
                     1.0, seed_ns, opt_ns});
  }
  return cases;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir = ".";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_dir = arg.substr(6);
    } else if (arg == "--quick") {
      quick = true;
    } else {
      std::cerr << "usage: perf_baseline [--out=DIR] [--quick]\n";
      return 2;
    }
  }
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);

  std::cout << "== event queue (seed = bench/legacy shared_ptr queue) ==\n";
  const auto eq_cases = bench_eventqueue(quick);
  for (const auto& c : eq_cases) print_case(c);
  write_json(out_dir + "/BENCH_eventqueue.json", "eventqueue", quick, eq_cases);

  std::cout << "== equalizer (seed = virtual-dispatch loop) ==\n";
  const auto eqz_cases = bench_equalizer(quick);
  for (const auto& c : eqz_cases) print_case(c);
  write_json(out_dir + "/BENCH_equalizer.json", "equalizer", quick, eqz_cases);

  std::cout << "== placement solver (seed = bench/legacy solver) ==\n";
  bool plans_ok = false;
  const auto sol_cases = bench_solver(quick, plans_ok);
  for (const auto& c : sol_cases) print_case(c);
  write_json(out_dir + "/BENCH_solver.json", "solver", quick, sol_cases);

  if (!plans_ok) return 1;
  return 0;
}
