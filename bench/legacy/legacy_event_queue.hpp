#pragma once

// Verbatim snapshot of the seed (pre-optimization) event queue: a
// std::priority_queue of shared_ptr records with weak_ptr handles.
// Kept ONLY so perf_baseline can measure the optimized queue against the
// implementation it replaced — the BENCH_eventqueue.json speedup column
// is computed from this code, not from numbers copied out of an old run.
//
// Do not use outside bench/.

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/event_queue.hpp"  // EventPriority

namespace heteroplace::bench::legacy {

using EventCallback = std::function<void()>;

namespace detail {
struct EventRecord {
  double time;
  int priority;
  std::uint64_t seq;
  EventCallback callback;
  bool cancelled{false};
};
}  // namespace detail

class LegacyEventHandle {
 public:
  LegacyEventHandle() = default;

  [[nodiscard]] bool pending() const {
    auto rec = record_.lock();
    return rec && !rec->cancelled;
  }

  bool cancel() {
    auto rec = record_.lock();
    if (!rec || rec->cancelled) return false;
    rec->cancelled = true;
    rec->callback = nullptr;
    return true;
  }

 private:
  friend class LegacyEventQueue;
  explicit LegacyEventHandle(std::weak_ptr<detail::EventRecord> rec) : record_(std::move(rec)) {}
  std::weak_ptr<detail::EventRecord> record_;
};

class LegacyEventQueue {
 public:
  LegacyEventHandle push(double time, sim::EventPriority priority, EventCallback cb) {
    auto rec = std::make_shared<detail::EventRecord>();
    rec->time = time;
    rec->priority = static_cast<int>(priority);
    rec->seq = next_seq_++;
    rec->callback = std::move(cb);
    LegacyEventHandle handle{std::weak_ptr<detail::EventRecord>{rec}};
    heap_.push(std::move(rec));
    ++live_;
    return handle;
  }

  [[nodiscard]] bool empty() const {
    drop_dead();
    return heap_.empty();
  }

  [[nodiscard]] double next_time() const {
    drop_dead();
    assert(!heap_.empty());
    return heap_.top()->time;
  }

  struct Popped {
    double time;
    EventCallback callback;
  };

  Popped pop() {
    drop_dead();
    assert(!heap_.empty());
    auto rec = heap_.top();
    heap_.pop();
    --live_;
    return Popped{rec->time, std::move(rec->callback)};
  }

  [[nodiscard]] std::size_t live_size() const { return live_; }

 private:
  struct Cmp {
    bool operator()(const std::shared_ptr<detail::EventRecord>& a,
                    const std::shared_ptr<detail::EventRecord>& b) const {
      if (a->time != b->time) return a->time > b->time;
      if (a->priority != b->priority) return a->priority > b->priority;
      return a->seq > b->seq;
    }
  };

  void drop_dead() const {
    while (!heap_.empty() && heap_.top()->cancelled) {
      heap_.pop();
    }
  }

  mutable std::priority_queue<std::shared_ptr<detail::EventRecord>,
                              std::vector<std::shared_ptr<detail::EventRecord>>, Cmp>
      heap_;
  mutable std::size_t live_{0};
  std::uint64_t next_seq_{0};
};

}  // namespace heteroplace::bench::legacy
