// Seed solver snapshot — see legacy_placement_solver.hpp for why this
// copy exists. Verbatim from src/core/placement_solver.cpp at the time
// the hot-path overhaul landed, except for the namespace and entry name.

#include "legacy/legacy_placement_solver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>
#include <vector>

namespace heteroplace::bench::legacy {

using namespace heteroplace::core;

namespace {

constexpr double kEps = 1e-9;

/// Mutable per-node ledger used while the solver assembles the placement.
struct NodeScratch {
  util::NodeId id{};
  double cpu_cap{0.0};
  double mem_cap{0.0};
  double mem_free{0.0};

  struct Resident {
    bool is_job{true};
    std::size_t index{0};  // into problem.jobs or problem.apps
    double target{0.0};
    double cap{0.0};
    double grant{0.0};
    double urgency{0.0};       // jobs only: eviction ranking
    bool evictable{false};     // jobs only
    double memory{0.0};
  };
  std::vector<Resident> residents;

  [[nodiscard]] double target_headroom() const {
    double t = 0.0;
    for (const auto& r : residents) t += r.target;
    return cpu_cap - t;
  }
};

/// Proportional-to-target fill of `members` within `budget`, respecting
/// per-resident caps (peeling off capped residents). Returns the budget
/// left over.
double proportional_fill(std::vector<NodeScratch::Resident*> active, double budget) {
  while (!active.empty() && budget > kEps) {
    double total_target = 0.0;
    for (const auto* r : active) total_target += r->target;
    if (total_target <= budget + kEps) {
      // Everyone gets their full target (cap can bind below target only
      // if the caller passed target > cap; clamp defensively).
      for (auto* r : active) {
        r->grant = std::min(r->target, r->cap);
        budget -= r->grant;
      }
      return budget;
    }
    const double scale = budget / total_target;
    bool any_capped = false;
    for (std::size_t i = 0; i < active.size();) {
      NodeScratch::Resident* r = active[i];
      if (scale * r->target >= r->cap - kEps) {
        r->grant = r->cap;
        budget -= r->cap;
        active[i] = active.back();
        active.pop_back();
        any_capped = true;
      } else {
        ++i;
      }
    }
    if (!any_capped) {
      for (auto* r : active) {
        r->grant = scale * r->target;
      }
      return 0.0;
    }
  }
  return budget;
}

/// Distribute a node's CPU among its residents in two tiers: web
/// instances first (up to their targets — the transactional middleware
/// tier is capacity-guaranteed, mirroring the flow-controlled app servers
/// of the paper's prototype), then job containers share the remainder.
/// Without tiering, a proportional squeeze on a crowded node hits the
/// steep transactional utility curve far harder than the jobs' shallow
/// one and breaks the equalization that the continuous stage computed.
void waterfill_node(NodeScratch& node, bool work_conserving) {
  for (auto& r : node.residents) r.grant = 0.0;
  std::vector<NodeScratch::Resident*> instances;
  std::vector<NodeScratch::Resident*> jobs;
  for (auto& r : node.residents) {
    if (r.target <= kEps) continue;
    (r.is_job ? jobs : instances).push_back(&r);
  }
  const double after_instances = proportional_fill(std::move(instances), node.cpu_cap);
  proportional_fill(std::move(jobs), after_instances);
  (void)work_conserving;
}

/// Work conservation: spread a node's unallocated CPU equally among *job*
/// residents with headroom (batch work soaks idle cycles up to max
/// speed). Instances stay at their equalized targets — granting beyond
/// target would push the app's utility above the equalized level and
/// defeat the arbitration.
void spread_leftover_to_jobs(NodeScratch& node) {
  double granted = 0.0;
  for (const auto& r : node.residents) granted += r.grant;
  double remaining = node.cpu_cap - granted;
  for (int pass = 0; pass < 64 && remaining > kEps; ++pass) {
    std::vector<NodeScratch::Resident*> open;
    for (auto& r : node.residents) {
      if (r.is_job && r.cap - r.grant > kEps) open.push_back(&r);
    }
    if (open.empty()) break;
    const double share = remaining / static_cast<double>(open.size());
    for (auto* r : open) {
      const double add = std::min(share, r->cap - r->grant);
      r->grant += add;
      remaining -= add;
    }
  }
}

[[nodiscard]] bool job_holds_memory(workload::JobPhase p) {
  switch (p) {
    case workload::JobPhase::kStarting:
    case workload::JobPhase::kRunning:
    case workload::JobPhase::kResuming:
    case workload::JobPhase::kMigrating:
      return true;
    case workload::JobPhase::kPending:
    case workload::JobPhase::kSuspending:  // memory drains mid-cycle
    case workload::JobPhase::kSuspended:
    case workload::JobPhase::kCompleted:
      return false;
  }
  return false;
}

}  // namespace

core::SolverResult solve_placement_legacy(const PlacementProblem& problem, const SolverConfig& config) {
  SolverResult result;
  auto& stats = result.stats;

  // ---- scratch construction ----------------------------------------------
  std::vector<NodeScratch> nodes(problem.nodes.size());
  std::map<util::NodeId, std::size_t> node_index;
  double max_node_cpu = 0.0;
  for (std::size_t i = 0; i < problem.nodes.size(); ++i) {
    const auto& n = problem.nodes[i];
    nodes[i].id = n.id;
    nodes[i].cpu_cap = n.cpu_capacity.get();
    nodes[i].mem_cap = n.mem_capacity.get();
    nodes[i].mem_free = n.mem_capacity.get();
    node_index.emplace(n.id, i);
    max_node_cpu = std::max(max_node_cpu, n.cpu_capacity.get());
  }

  auto scratch_of = [&](util::NodeId id) -> NodeScratch& {
    auto it = node_index.find(id);
    if (it == node_index.end()) {
      throw std::invalid_argument("solve_placement: VM references unknown node");
    }
    return nodes[it->second];
  };

  // ---- Phase 1: decide per-app instance counts -----------------------------
  struct AppScratch {
    std::size_t index;
    double per_inst_cap;
    int desired;
    std::vector<util::NodeId> kept_nodes;   // instances we keep
    int to_add{0};
  };
  std::vector<AppScratch> app_scratch;
  app_scratch.reserve(problem.apps.size());

  for (std::size_t ai = 0; ai < problem.apps.size(); ++ai) {
    const SolverApp& app = problem.apps[ai];
    AppScratch as;
    as.index = ai;
    as.per_inst_cap = std::min(app.max_cpu_per_instance.get(), max_node_cpu);
    if (as.per_inst_cap <= 0.0) as.per_inst_cap = max_node_cpu;

    const int max_by_nodes = static_cast<int>(problem.nodes.size());
    const int hard_max = std::min(app.max_instances, max_by_nodes);
    // Size the cluster assuming an instance only obtains a fraction of its
    // node (it shares the node with collocated jobs).
    const double effective_per_inst =
        as.per_inst_cap * std::clamp(config.instance_capacity_factor, 0.05, 1.0);
    int needed = static_cast<int>(std::ceil(app.target.get() / effective_per_inst - 1e-9));
    needed = std::clamp(needed, std::max(app.min_instances, 1), std::max(hard_max, 1));

    const int current = static_cast<int>(app.current.size());
    int keep;
    if (needed > current) {
      keep = current;
      as.to_add = needed - current;
    } else {
      // Shrink hysteresis: drop instances only when the target is served
      // comfortably by fewer.
      const double comfortable =
          (static_cast<double>(current) - 1.0) * effective_per_inst *
          (1.0 - config.instance_grow_headroom);
      if (current > needed && app.target.get() < comfortable) {
        keep = std::max({needed, app.min_instances, 1});
      } else {
        keep = current;
      }
    }
    as.desired = keep + as.to_add;

    // Keep immovable (booting) instances unconditionally, then movable
    // ones in node-id order until `keep` is reached.
    std::vector<SolverAppInstance> sorted = app.current;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const SolverAppInstance& a, const SolverAppInstance& b) {
                       if (a.movable != b.movable) return !a.movable;  // immovable first
                       return a.node < b.node;
                     });
    for (const auto& inst : sorted) {
      if (static_cast<int>(as.kept_nodes.size()) < keep || !inst.movable) {
        as.kept_nodes.push_back(inst.node);
      } else {
        ++stats.instances_dropped;
      }
    }
    app_scratch.push_back(std::move(as));
  }

  // ---- Phase 2: reserve memory for everything currently placed -------------
  // Kept instances. Give each a provisional CPU target (the app's target
  // split over the planned instance count) so the job-packing phase sees
  // realistic per-node headroom; phase 5 recomputes the exact split.
  for (const auto& as : app_scratch) {
    const SolverApp& app = problem.apps[as.index];
    const double provisional_target =
        app.target.get() / static_cast<double>(std::max(as.desired, 1));
    for (util::NodeId nid : as.kept_nodes) {
      NodeScratch& ns = scratch_of(nid);
      ns.mem_free -= app.instance_memory.get();
      NodeScratch::Resident r;
      r.is_job = false;
      r.index = as.index;
      r.target = provisional_target;
      r.cap = as.per_inst_cap;
      r.memory = app.instance_memory.get();
      ns.residents.push_back(r);
    }
  }
  // Currently-placed jobs (memory holders).
  for (std::size_t ji = 0; ji < problem.jobs.size(); ++ji) {
    const SolverJob& job = problem.jobs[ji];
    if (!job.current_node.valid() || !job_holds_memory(job.phase)) continue;
    NodeScratch& ns = scratch_of(job.current_node);
    ns.mem_free -= job.memory.get();
    NodeScratch::Resident r;
    r.is_job = true;
    r.index = ji;
    r.target = job.target.get();
    r.cap = job.max_speed.get();
    r.urgency = job.urgency;
    r.memory = job.memory.get();
    const bool protected_near_done =
        job.remaining.get() <= job.max_speed.get() * config.protect_completion_horizon_s;
    r.evictable = job.movable && !protected_near_done;
    ns.residents.push_back(r);
  }

  std::vector<std::size_t> displaced;  // running jobs pushed off their node

  auto evict_job_from = [&](NodeScratch& ns, std::size_t resident_pos) {
    NodeScratch::Resident r = ns.residents[resident_pos];
    assert(r.is_job);
    ns.mem_free += r.memory;
    ns.residents.erase(ns.residents.begin() + static_cast<std::ptrdiff_t>(resident_pos));
    displaced.push_back(r.index);
    ++stats.jobs_evicted;
  };

  // ---- Phase 3: grow instance clusters, evicting jobs when needed ----------
  for (auto& as : app_scratch) {
    const SolverApp& app = problem.apps[as.index];
    for (int k = 0; k < as.to_add; ++k) {
      // Candidate nodes: no instance of this app yet.
      auto has_instance = [&](const NodeScratch& ns) {
        for (const auto& r : ns.residents) {
          if (!r.is_job && r.index == as.index) return true;
        }
        return false;
      };

      // First choice: free memory, most of it.
      NodeScratch* best = nullptr;
      for (auto& ns : nodes) {
        if (has_instance(ns)) continue;
        if (ns.mem_free + kEps < app.instance_memory.get()) continue;
        if (best == nullptr || ns.mem_free > best->mem_free) best = &ns;
      }

      if (best == nullptr) {
        // Reclaim memory from the least-urgent evictable jobs: pick the
        // node where the evicted urgency mass is smallest.
        double best_cost = std::numeric_limits<double>::max();
        NodeScratch* best_node = nullptr;
        std::vector<std::size_t> best_victims;
        for (auto& ns : nodes) {
          if (has_instance(ns)) continue;
          // Greedily evict lowest-urgency jobs until the instance fits.
          std::vector<std::size_t> order;  // resident positions, jobs only
          for (std::size_t p = 0; p < ns.residents.size(); ++p) {
            if (ns.residents[p].is_job && ns.residents[p].evictable) order.push_back(p);
          }
          std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
            return ns.residents[a].urgency < ns.residents[b].urgency;
          });
          double freed = ns.mem_free;
          double cost = 0.0;
          std::vector<std::size_t> victims;
          for (std::size_t p : order) {
            if (freed + kEps >= app.instance_memory.get()) break;
            freed += ns.residents[p].memory;
            cost += ns.residents[p].urgency + 1.0;  // +1: churn penalty per job
            victims.push_back(p);
          }
          if (freed + kEps < app.instance_memory.get()) continue;  // still no room
          if (cost < best_cost) {
            best_cost = cost;
            best_node = &ns;
            best_victims = std::move(victims);
          }
        }
        if (best_node != nullptr) {
          // Evict from highest position first so indices stay valid.
          std::sort(best_victims.rbegin(), best_victims.rend());
          for (std::size_t p : best_victims) evict_job_from(*best_node, p);
          best = best_node;
        }
      }

      if (best == nullptr) continue;  // cluster simply cannot host more

      best->mem_free -= app.instance_memory.get();
      NodeScratch::Resident r;
      r.is_job = false;
      r.index = as.index;
      r.target = app.target.get() / static_cast<double>(std::max(as.desired, 1));
      r.cap = as.per_inst_cap;
      r.memory = app.instance_memory.get();
      best->residents.push_back(r);
      as.kept_nodes.push_back(best->id);
      ++stats.instances_added;
    }
  }

  // ---- Phase 4: pack waiting jobs by urgency --------------------------------
  struct Waiting {
    std::size_t index;
    bool was_running;  // displaced mid-run → migrate if re-placed
  };
  std::vector<Waiting> waiting;
  for (std::size_t ji = 0; ji < problem.jobs.size(); ++ji) {
    const SolverJob& job = problem.jobs[ji];
    if (job.phase == workload::JobPhase::kPending ||
        job.phase == workload::JobPhase::kSuspended) {
      waiting.push_back({ji, false});
    }
  }
  for (std::size_t ji : displaced) waiting.push_back({ji, true});

  std::stable_sort(waiting.begin(), waiting.end(), [&](const Waiting& a, const Waiting& b) {
    const SolverJob& ja = problem.jobs[a.index];
    const SolverJob& jb = problem.jobs[b.index];
    if (ja.urgency != jb.urgency) return ja.urgency > jb.urgency;
    return ja.id < jb.id;
  });

  for (const Waiting& w : waiting) {
    const SolverJob& job = problem.jobs[w.index];
    if (w.was_running && !config.allow_migration) {
      ++stats.jobs_waiting;  // becomes a suspension downstream
      continue;
    }
    NodeScratch* best = nullptr;
    double best_headroom = -std::numeric_limits<double>::max();
    for (auto& ns : nodes) {
      if (ns.mem_free + kEps < job.memory.get()) continue;
      const double headroom = ns.target_headroom();
      if (best == nullptr || headroom > best_headroom) {
        best = &ns;
        best_headroom = headroom;
      }
    }
    if (best == nullptr) {
      ++stats.jobs_waiting;
      continue;
    }
    best->mem_free -= job.memory.get();
    NodeScratch::Resident r;
    r.is_job = true;
    r.index = w.index;
    r.target = job.target.get();
    r.cap = job.max_speed.get();
    r.urgency = job.urgency;
    r.memory = job.memory.get();
    const bool protected_near_done =
        job.remaining.get() <= job.max_speed.get() * config.protect_completion_horizon_s;
    r.evictable = job.movable && !protected_near_done;
    best->residents.push_back(r);
    // Landing back on its own node is not a migration (plan diff is a
    // plain resize there).
    if (w.was_running && best->id != job.current_node) ++stats.jobs_migrated;
  }

  // ---- Phase 5: per-node CPU distribution ----------------------------------
  // Instance targets: split each app's target equally across its placed
  // instances.
  std::vector<int> placed_instances(problem.apps.size(), 0);
  for (const auto& ns : nodes) {
    for (const auto& r : ns.residents) {
      if (!r.is_job) ++placed_instances[r.index];
    }
  }
  for (auto& ns : nodes) {
    for (auto& r : ns.residents) {
      if (!r.is_job) {
        const int n = std::max(placed_instances[r.index], 1);
        r.target = problem.apps[r.index].target.get() / static_cast<double>(n);
      }
    }
    waterfill_node(ns, config.work_conserving);
  }

  // Instance shortfall fixup: instances squeezed on crowded nodes leave
  // their app short of its target even when sibling instances sit next to
  // idle CPU. Raise sibling shares (never beyond the per-instance cap)
  // until the target is met or slack runs out.
  for (std::size_t ai = 0; ai < problem.apps.size(); ++ai) {
    double granted = 0.0;
    for (const auto& ns : nodes) {
      for (const auto& r : ns.residents) {
        if (!r.is_job && r.index == ai) granted += r.grant;
      }
    }
    double shortfall = problem.apps[ai].target.get() - granted;
    if (shortfall <= kEps) continue;
    for (auto& ns : nodes) {
      if (shortfall <= kEps) break;
      double node_granted = 0.0;
      for (const auto& r : ns.residents) node_granted += r.grant;
      double leftover = ns.cpu_cap - node_granted;
      if (leftover <= kEps) continue;
      for (auto& r : ns.residents) {
        if (r.is_job || r.index != ai) continue;
        const double add = std::min({leftover, shortfall, r.cap - r.grant});
        if (add > kEps) {
          r.grant += add;
          leftover -= add;
          shortfall -= add;
        }
      }
    }
  }

  if (config.work_conserving) {
    for (auto& ns : nodes) spread_leftover_to_jobs(ns);
  }

  // ---- Phase 5.5: starvation rescue ------------------------------------------
  // A running job kept in place for stability can end up with a zero CPU
  // grant when a collocated instance's target consumes the whole node.
  // Left alone it would hold its memory slot forever without progressing.
  // Relocate it to a node with CPU leftover and a free memory slot, else
  // suspend it (dropping it from the plan) so a later cycle resumes it
  // where it can actually run.
  for (auto& ns : nodes) {
    for (std::size_t p = 0; p < ns.residents.size();) {
      NodeScratch::Resident& r = ns.residents[p];
      const bool starved = r.is_job && r.grant <= 1.0 &&
                           problem.jobs[r.index].movable &&
                           problem.jobs[r.index].remaining.get() > 0.0;
      if (!starved) {
        ++p;
        continue;
      }
      const SolverJob& job = problem.jobs[r.index];
      // Find a destination with spare CPU and memory.
      NodeScratch* dest = nullptr;
      double best_leftover = 1.0;  // require strictly useful CPU
      for (auto& cand : nodes) {
        if (&cand == &ns) continue;
        if (cand.mem_free + kEps < job.memory.get()) continue;
        double granted = 0.0;
        for (const auto& cr : cand.residents) granted += cr.grant;
        const double leftover = cand.cpu_cap - granted;
        if (leftover > best_leftover) {
          best_leftover = leftover;
          dest = &cand;
        }
      }
      NodeScratch::Resident moved = r;
      ns.mem_free += moved.memory;
      ns.residents.erase(ns.residents.begin() + static_cast<std::ptrdiff_t>(p));
      ++stats.jobs_evicted;
      if (dest != nullptr && config.allow_migration) {
        moved.grant = std::min(best_leftover, moved.cap);
        dest->mem_free -= moved.memory;
        dest->residents.push_back(moved);
        if (dest->id != job.current_node) ++stats.jobs_migrated;
      } else {
        ++stats.jobs_waiting;  // suspended by the executor
      }
      // Do not advance p: the erase shifted the next resident into place.
    }
  }

  // ---- Emit the plan ---------------------------------------------------------
  for (const auto& ns : nodes) {
    for (const auto& r : ns.residents) {
      if (r.is_job) {
        const SolverJob& job = problem.jobs[r.index];
        result.plan.jobs.push_back({job.id, ns.id, util::CpuMhz{r.grant}});
        ++stats.jobs_placed;
      } else {
        const SolverApp& app = problem.apps[r.index];
        result.plan.instances.push_back({app.id, ns.id, util::CpuMhz{r.grant}});
      }
    }
  }
  stats.instances_total = static_cast<int>(result.plan.instances.size());

  // Deterministic output order.
  std::sort(result.plan.jobs.begin(), result.plan.jobs.end(),
            [](const cluster::DesiredJobPlacement& a, const cluster::DesiredJobPlacement& b) {
              return a.job < b.job;
            });
  std::sort(result.plan.instances.begin(), result.plan.instances.end(),
            [](const cluster::DesiredWebInstance& a, const cluster::DesiredWebInstance& b) {
              if (a.app != b.app) return a.app < b.app;
              return a.node < b.node;
            });
  return result;
}

}  // namespace heteroplace::bench::legacy
