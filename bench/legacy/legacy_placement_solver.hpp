#pragma once

// Verbatim snapshot of the seed (pre-optimization) placement solver.
// Kept so that (a) perf_baseline measures the optimized solver against
// the exact code it replaced, and (b) solver tests can assert the
// optimized plans match the seed plans on shared fixtures.
//
// Do not use outside bench/ and tests/.

#include "core/placement_solver.hpp"

namespace heteroplace::bench::legacy {

[[nodiscard]] core::SolverResult solve_placement_legacy(const core::PlacementProblem& problem,
                                                        const core::SolverConfig& config = {});

}  // namespace heteroplace::bench::legacy
