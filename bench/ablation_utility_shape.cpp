// Ablation D: utility-function shape.
//
// The paper uses monotonic continuous utility functions but does not
// prescribe a shape. This ablation swaps the job utility family
// (piecewise-linear / linear / sigmoid / exponential) and shows the
// controller equalizes under all of them — the mechanism is
// shape-agnostic, while absolute utility levels and the CPU split shift
// with the shape's steepness around the goal.

#include <iostream>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace heteroplace;
  const auto cfg = bench::parse_args(
      argc, argv, "ablation_utility_shape [--scale=F] [--seed=N] [--out=DIR]");
  const double scale = cfg.get_double("scale", 0.2);

  const std::vector<std::string> shapes = {"piecewise", "linear", "sigmoid", "exponential"};
  std::cout << "=== Ablation: job utility-function shape (section3 scaled x" << scale
            << ") ===\n";
  std::cout << "shape,equalization_gap,tx_utility_mean,lr_utility_mean,goal_met,"
               "completion_ratio_mean,tx_alloc_mid_mhz\n";

  std::vector<scenario::ExperimentResult> results(shapes.size());
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic)
#endif
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    scenario::Scenario s = scenario::section3_scaled(scale);
    s.jobs.utility_shape = shapes[i];
    s.seed = static_cast<std::uint64_t>(cfg.get_int("seed", 42));
    results[i] = scenario::run_experiment(s, {});
  }

  bool all_ok = true;
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    const auto& r = results[i];
    const auto* tx_alloc = r.series.find("tx_alloc_mhz");
    const double t_end = r.summary.sim_end_time_s;
    std::cout << shapes[i] << "," << r.summary.equalization_gap.mean() << ","
              << r.summary.tx_utility.mean() << "," << r.summary.lr_utility.mean() << ","
              << r.summary.goal_met_fraction << "," << r.summary.completion_ratio.mean()
              << "," << tx_alloc->mean_over(0.4 * t_end, 0.7 * t_end) << "\n";
    all_ok &= r.summary.jobs_completed == r.summary.jobs_submitted;
  }

  std::cout << "\nChecks:\n";
  all_ok &= bench::check("every shape completes all jobs", all_ok);
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    all_ok &= bench::check("equalization works under shape '" + shapes[i] + "'",
                           results[i].summary.equalization_gap.mean() < 0.2);
  }
  return all_ok ? 0 : 1;
}
