// Macro-scale end-to-end benchmark for the parallel engine
// (ISSUE: perf_macro; results committed as BENCH_macro.json).
//
// Shape: 100 controller domains × 50 nodes, ~1M batch jobs arriving over
// one simulated week, four diurnal transactional apps split across the
// federation, power metering + idle-park per domain. All domains run
// their control cycle at the same phase (first_cycle_at_s = 0), so each
// 600 s boundary produces 100 same-timestamp kController events on
// distinct shards — exactly the batch the parallel engine dispatches to
// its worker pool. Executor passes and power ticks batch the same way.
//
// The sweep runs the identical scenario at engine.threads ∈ {1, 2, 4, 8}
// and asserts the full-result digest (scenario/result_digest: every
// series point + summary counter, folded bit-exactly) is identical
// across all thread counts. A digest mismatch is a hard failure — this
// benchmark doubles as the macro-scale determinism pin.
//
// Methodology notes (see also bench/README.md):
//  - wall_s is best-of-1: a run is minutes long and self-averaging
//    (~100k control cycles); run-to-run noise is well under the
//    thread-scaling effects being measured.
//  - OpenMP inside the solver is pinned to one thread so the sweep
//    isolates engine-thread scaling from intra-solve parallelism.
//  - hardware_threads is recorded in the JSON: speedups are only
//    meaningful where threads <= hardware_threads. On a 1-core host the
//    sweep still validates bit-identity and batch formation, and the
//    wall-clock columns quantify the (small) barrier overhead instead.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "obs/profile.hpp"
#include "scenario/federation_experiment.hpp"
#include "scenario/result_digest.hpp"
#include "scenario/scenario.hpp"
#include "util/units.hpp"
#include "workload/transactional.hpp"

namespace {

using namespace heteroplace;

struct Shape {
  const char* mode;
  int domains;
  int nodes_per_domain;
  long jobs;
  double horizon_s;
  std::vector<int> threads;
};

Shape full_shape() { return {"full", 100, 50, 1'000'000, 604800.0, {1, 2, 4, 8}}; }
Shape smoke_shape() { return {"smoke", 8, 10, 20'000, 86400.0, {1, 2}}; }

/// Four transactional classes with phase-shifted diurnal demand. Hourly
/// breakpoints over the horizon; aggregate offered CPU ≈ 10% of the
/// federation's capacity so the batch tier stays the dominant load (the
/// paper's regime) while the equalizer still has real multi-app work
/// every cycle in every domain.
std::vector<scenario::TxAppScenario> make_apps(const Shape& sh) {
  const double total_cpu_mhz =
      static_cast<double>(sh.domains) * sh.nodes_per_domain * 12000.0;
  const double service_demand = 5000.0;  // MHz·s per request
  const double per_app_cpu = 0.025 * total_cpu_mhz;
  const double base_rate = per_app_cpu / service_demand;  // req/s

  std::vector<scenario::TxAppScenario> apps;
  for (int a = 0; a < 4; ++a) {
    scenario::TxAppScenario app;
    app.spec.id = util::AppId{static_cast<util::AppId::underlying_type>(a)};
    app.spec.name = "svc" + std::to_string(a);
    // Demand is split ~1/domains per domain, so the per-domain RT floor
    // must stay modest: a loose goal keeps required instances small
    // (mirrors how section3_scaled loosens rt_goal when scaling down).
    app.spec.rt_goal = util::Seconds{120.0};
    app.spec.service_demand = service_demand;
    app.spec.max_utilization = 0.9;
    app.spec.throughput_exponent = 0.5;
    app.spec.utility_cap = 0.9;
    app.spec.importance = 1.0 + 0.25 * a;  // distinct service classes
    app.spec.instance_memory = util::MemMb{1024.0};
    app.spec.min_instances = 1;
    app.spec.max_instances = sh.nodes_per_domain;
    app.spec.max_cpu_per_instance = util::CpuMhz{12000.0};

    // Diurnal sine, ±40% around base, phase-shifted per class.
    workload::DemandTrace trace;
    const double phase = 0.25 * a * 2.0 * 3.14159265358979323846;
    for (double t = 0.0; t < sh.horizon_s; t += 3600.0) {
      const double x = 2.0 * 3.14159265358979323846 * t / 86400.0 + phase;
      trace.add(util::Seconds{t}, base_rate * (1.0 + 0.4 * std::sin(x)));
    }
    app.trace = std::move(trace);
    apps.push_back(std::move(app));
  }
  return apps;
}

scenario::FederatedScenario macro_scenario(const Shape& sh) {
  scenario::FederatedScenario fs;
  fs.name = std::string("perf-macro-") + sh.mode;

  for (int i = 0; i < sh.domains; ++i) {
    scenario::DomainSpec d;
    d.name = "dc" + std::to_string(i);
    d.cluster.nodes = sh.nodes_per_domain;
    d.cluster.cpu_per_node_mhz = 12000.0;
    d.cluster.mem_per_node_mb = 4096.0;
    // Aligned control phases: the whole point of the macro benchmark.
    // The default (< 0) auto-stagger would leave one controller event
    // per timestamp and no batches to parallelize.
    d.first_cycle_at_s = 0.0;
    fs.domains.push_back(std::move(d));
  }

  // Batch tier: identical single-processor jobs (the paper's stream),
  // sized for ~55% CPU / ~70% memory steady-state so the backlog stays
  // bounded while phases 3–4 of the solver see real contention.
  const double total_cpu_mhz =
      static_cast<double>(sh.domains) * sh.nodes_per_domain * 12000.0;
  fs.jobs.count = sh.jobs;
  fs.jobs.mean_interarrival_s = 0.9 * sh.horizon_s / static_cast<double>(sh.jobs);
  const double lambda = 1.0 / fs.jobs.mean_interarrival_s;
  fs.jobs.tmpl.name_prefix = "batch";
  fs.jobs.tmpl.work = util::MhzSeconds{0.55 * total_cpu_mhz / lambda};
  fs.jobs.tmpl.work_cv = 0.0;
  fs.jobs.tmpl.max_speed = util::CpuMhz{3000.0};
  fs.jobs.tmpl.memory = util::MemMb{1300.0};
  fs.jobs.tmpl.goal_stretch = 2.0;
  fs.jobs.utility_shape = "piecewise";

  fs.apps = make_apps(sh);

  fs.controller.cycle_s = 600.0;
  // Default (nonzero) action latencies: starts/suspends/resumes land as
  // future sharded events, exercising the staged-push replay path.
  fs.router = "least-loaded";

  fs.power.enabled = true;
  fs.power.policy = "idle-park";
  fs.power.idle_timeout_s = 1800.0;

  fs.horizon_s = sh.horizon_s;
  fs.sample_interval_s = 3600.0;
  fs.seed = 20080625;  // fixed: the sweep must replay one trajectory
  return fs;
}

struct CaseResult {
  int threads{0};
  double wall_s{0.0};
  std::uint64_t digest{0};
  scenario::EngineStats engine;
  long jobs_completed{0};
};

bool write_json(const std::string& path, const Shape& sh,
                const std::vector<CaseResult>& cases) {
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  std::ofstream out(path);
  out << "{\n";
  out << "  \"schema\": \"heteroplace-perf-macro/v1\",\n";
  out << "  \"component\": \"parallel_engine\",\n";
  out << "  \"mode\": \"" << sh.mode << "\",\n";
  out << "  \"hardware_threads\": " << std::thread::hardware_concurrency() << ",\n";
  out << "  \"scenario\": {\n";
  out << "    \"domains\": " << sh.domains << ",\n";
  out << "    \"nodes_per_domain\": " << sh.nodes_per_domain << ",\n";
  out << "    \"jobs\": " << sh.jobs << ",\n";
  out << "    \"horizon_s\": " << sh.horizon_s << ",\n";
  out << "    \"tx_apps\": 4,\n";
  out << "    \"cycle_s\": 600.0\n";
  out << "  },\n";
  char dig[32];
  std::snprintf(dig, sizeof(dig), "0x%016llx",
                static_cast<unsigned long long>(cases.front().digest));
  out << "  \"digest\": \"" << dig << "\",\n";
  out << "  \"bit_identical\": true,\n";
  out << "  \"events_executed\": " << cases.front().engine.events_executed << ",\n";
  out << "  \"jobs_completed\": " << cases.front().jobs_completed << ",\n";
  out << "  \"cases\": [\n";
  const double base = cases.front().wall_s;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const CaseResult& c = cases[i];
    out << "    {\"threads\": " << c.threads << ", \"wall_s\": " << c.wall_s
        << ", \"speedup_vs_1\": " << (c.wall_s > 0.0 ? base / c.wall_s : 0.0)
        << ", \"parallel_batches\": " << c.engine.parallel_batches
        << ", \"batched_events\": " << c.engine.batched_events << "}"
        << (i + 1 < cases.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir = ".";
  bool smoke = false;
  bool profile = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--out=", 6) == 0) {
      out_dir = arg + 6;
    } else if (std::strcmp(arg, "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(arg, "--profile") == 0) {
      profile = true;
    } else {
      std::fprintf(stderr, "usage: perf_macro [--out=DIR] [--smoke] [--profile]\n");
      return 2;
    }
  }

#ifdef _OPENMP
  // Isolate engine-thread scaling: the solver must not also fan out.
  omp_set_num_threads(1);
#endif

  const Shape sh = smoke ? smoke_shape() : full_shape();
  const scenario::FederatedScenario base = macro_scenario(sh);
  std::printf("perf_macro [%s]: %d domains x %d nodes, %ld jobs over %.0f s\n", sh.mode,
              sh.domains, sh.nodes_per_domain, sh.jobs, sh.horizon_s);

  std::vector<CaseResult> cases;
  for (int threads : sh.threads) {
    scenario::FederatedScenario fs = base;
    fs.engine_threads = threads;
    // Per-phase wall-clock attribution (obs layer). Digest-excluded, so
    // the bit-identity sweep below still holds with profiling on; the
    // table answers where the serial spine's time goes at each width.
    fs.obs.profile = profile;
    const auto t0 = std::chrono::steady_clock::now();
    const scenario::FederatedResult res = scenario::run_federated_experiment(fs);
    const auto t1 = std::chrono::steady_clock::now();

    CaseResult c;
    c.threads = threads;
    c.wall_s = std::chrono::duration<double>(t1 - t0).count();
    c.digest = scenario::digest(res);
    c.engine = res.engine;
    c.jobs_completed = res.summary.jobs_completed;
    std::printf(
        "  threads=%d  wall=%.2fs  events=%llu  batches=%llu (%llu events)  "
        "completed=%ld  digest=0x%016llx\n",
        c.threads, c.wall_s, static_cast<unsigned long long>(c.engine.events_executed),
        static_cast<unsigned long long>(c.engine.parallel_batches),
        static_cast<unsigned long long>(c.engine.batched_events), c.jobs_completed,
        static_cast<unsigned long long>(c.digest));
    if (profile) {
      std::printf("%s", obs::format_profile_report(res.profile).c_str());
    }
    cases.push_back(c);

    if (c.digest != cases.front().digest) {
      std::fprintf(stderr,
                   "FAIL: digest diverged at threads=%d (0x%016llx vs 0x%016llx) — "
                   "threads=N is NOT bit-identical to threads=1\n",
                   threads, static_cast<unsigned long long>(c.digest),
                   static_cast<unsigned long long>(cases.front().digest));
      return 1;
    }
    if (threads > 1 && c.engine.parallel_batches == 0) {
      std::fprintf(stderr,
                   "FAIL: threads=%d executed zero parallel batches — the aligned "
                   "macro scenario must batch; the sweep is vacuous\n",
                   threads);
      return 1;
    }
  }

  // Sanity: the calibrated shape must keep the backlog bounded — a run
  // where almost nothing completes would benchmark queue churn, not
  // placement.
  if (cases.front().jobs_completed < sh.jobs / 2) {
    std::fprintf(stderr, "FAIL: only %ld of %ld jobs completed — shape miscalibrated\n",
                 cases.front().jobs_completed, sh.jobs);
    return 1;
  }

  const std::string path = out_dir + "/BENCH_macro.json";
  if (!write_json(path, sh, cases)) {
    std::fprintf(stderr, "FAIL: could not write %s\n", path.c_str());
    return 1;
  }
  std::printf("PASS: bit-identical across %zu thread counts; wrote %s\n", cases.size(),
              path.c_str());
  return 0;
}
