#pragma once

// Placement actions and their latency model.
//
// The paper's controller "dynamically modifies workload placement by
// leveraging control mechanisms such as suspension and migration". Each
// mechanism takes real time during which the affected VM makes no
// progress — these latencies are what make churn costly and why the
// placement solver prefers stable placements.

#include <ostream>

#include "util/ids.hpp"
#include "util/units.hpp"

namespace heteroplace::cluster {

enum class ActionType {
  kStartJob,       // place + boot a job container
  kSuspendJob,     // suspend to disk, freeing CPU and memory
  kResumeJob,      // bring a suspended job back (possibly on another node)
  kMigrateJob,     // move a running job between nodes
  kStartInstance,  // boot a new web instance for an app
  kStopInstance,   // retire a web instance
  kResizeCpu,      // change a VM's CPU share (effectively instantaneous)
};

[[nodiscard]] const char* to_string(ActionType t);

struct Action {
  ActionType type{ActionType::kResizeCpu};
  util::VmId vm{};       // target VM (invalid for kStartInstance until created)
  util::JobId job{};     // set for job actions
  util::AppId app{};     // set for instance actions
  util::NodeId from{};   // source node (migrations, stops)
  util::NodeId to{};     // destination node (starts, resumes, migrations)
  util::CpuMhz cpu{0.0};  // CPU share to grant on completion

  friend std::ostream& operator<<(std::ostream& os, const Action& a);
};

/// Durations of each mechanism. Defaults are in the range reported for
/// VM suspend/resume/migrate in the virtualization literature of the
/// paper's era; all configurable per scenario.
struct ActionLatencies {
  util::Seconds start_job{60.0};
  util::Seconds suspend_job{15.0};
  util::Seconds resume_job{90.0};
  util::Seconds migrate_job{120.0};
  util::Seconds start_instance{120.0};
  util::Seconds stop_instance{0.0};

  [[nodiscard]] util::Seconds latency_of(ActionType t) const {
    switch (t) {
      case ActionType::kStartJob:
        return start_job;
      case ActionType::kSuspendJob:
        return suspend_job;
      case ActionType::kResumeJob:
        return resume_job;
      case ActionType::kMigrateJob:
        return migrate_job;
      case ActionType::kStartInstance:
        return start_instance;
      case ActionType::kStopInstance:
        return stop_instance;
      case ActionType::kResizeCpu:
        return util::Seconds{0.0};
    }
    return util::Seconds{0.0};
  }
};

/// Counters of executed actions, for churn metrics and ablations.
struct ActionCounts {
  long starts{0};
  long suspends{0};
  long resumes{0};
  long migrations{0};
  long instance_starts{0};
  long instance_stops{0};
  long resizes{0};

  [[nodiscard]] long total_disruptive() const { return suspends + resumes + migrations; }

  void record(ActionType t) {
    switch (t) {
      case ActionType::kStartJob:
        ++starts;
        break;
      case ActionType::kSuspendJob:
        ++suspends;
        break;
      case ActionType::kResumeJob:
        ++resumes;
        break;
      case ActionType::kMigrateJob:
        ++migrations;
        break;
      case ActionType::kStartInstance:
        ++instance_starts;
        break;
      case ActionType::kStopInstance:
        ++instance_stops;
        break;
      case ActionType::kResizeCpu:
        ++resizes;
        break;
    }
  }
};

}  // namespace heteroplace::cluster
