#pragma once

// Machine classes and placement constraints.
//
// A MachineClass describes one hardware flavor in a heterogeneous
// cluster: architecture tag, core count, nominal per-core MHz, memory,
// an optional set of accelerator tags ("gpu", ...) and a delivered-speed
// factor. All CPU quantities downstream of the class (node capacities,
// solver headrooms, equalizer allocations) are *delivered reference MHz*:
// a class contributes cores × core_mhz × speed_factor, computed once when
// its nodes are added, so every layer that already reasons in MHz keeps
// working unchanged.
//
// A ConstraintSet is the job-side counterpart: required architecture,
// required accelerator tags, and a minimum delivered per-core speed. An
// empty constraint admits every class — the legacy scalar cluster is the
// degenerate case of one implicit default class and all-empty
// constraints, and reproduces pre-class output bit for bit (pinned by
// tests/machine_class_test.cpp).

#include <optional>
#include <string>
#include <vector>

#include "cluster/resources.hpp"

namespace heteroplace::cluster {

/// Index into a MachineClassRegistry. Class 0 is the implicit default
/// (the legacy scalar node flavor with no arch/accel/core information).
using ClassId = int;

struct MachineClass {
  std::string name{"default"};
  /// Architecture tag ("x86", "arm", "power", ...); empty = unspecified.
  std::string arch;
  /// Core count and nominal per-core MHz; 0 = unspecified (scalar node).
  int cores{0};
  double core_mhz{0.0};
  double mem_mb{0.0};
  /// Delivered fraction of nominal speed in (0, 1]; models
  /// microarchitecture efficiency, not a DVFS state.
  double speed_factor{1.0};
  /// Accelerator tags, kept sorted for deterministic comparison.
  std::vector<std::string> accel;

  [[nodiscard]] bool has_accel(const std::string& tag) const;

  /// Delivered per-core speed in reference MHz (what a single thread
  /// actually gets on this class).
  [[nodiscard]] double delivered_core_mhz() const { return core_mhz * speed_factor; }

  /// Delivered node capacity in reference MHz.
  [[nodiscard]] double delivered_cpu_mhz() const {
    return static_cast<double>(cores) * core_mhz * speed_factor;
  }

  [[nodiscard]] Resources capacity() const {
    return Resources{util::CpuMhz{delivered_cpu_mhz()}, util::MemMb{mem_mb}};
  }
};

/// Hard placement constraints a job or app imposes on the machines it
/// may run on. Empty fields are wildcards; the default-constructed set
/// admits everything.
struct ConstraintSet {
  /// Required architecture; empty = any.
  std::string arch;
  /// Required accelerator tags (all must be present); kept sorted.
  std::vector<std::string> accel;
  /// Minimum delivered per-core speed in reference MHz; 0 = any. A class
  /// with unspecified core_mhz fails any positive requirement (closed —
  /// an unknown machine cannot promise single-thread speed).
  double min_core_mhz{0.0};

  [[nodiscard]] bool empty() const {
    return arch.empty() && accel.empty() && min_core_mhz <= 0.0;
  }

  /// Does `c` satisfy every requirement? The empty set admits every
  /// class; a non-empty set fails closed against the underspecified
  /// default class.
  [[nodiscard]] bool admits(const MachineClass& c) const;

  [[nodiscard]] bool operator==(const ConstraintSet&) const = default;
};

/// Cluster-owned id <-> class table. Construction installs the implicit
/// default class at id 0; explicitly registered classes follow in
/// registration order (deterministic).
class MachineClassRegistry {
 public:
  MachineClassRegistry() { classes_.push_back(MachineClass{}); }

  /// Register a class; throws std::invalid_argument on a duplicate or
  /// empty name or a speed_factor outside (0, 1].
  ClassId add(MachineClass c);

  [[nodiscard]] const MachineClass& at(ClassId id) const;
  [[nodiscard]] std::optional<ClassId> find(const std::string& name) const;
  [[nodiscard]] std::size_t size() const { return classes_.size(); }
  [[nodiscard]] const std::vector<MachineClass>& classes() const { return classes_; }

  /// True once any class beyond the implicit default is registered —
  /// the gate for class-aware behavior (per-class obs series, equalizer
  /// speed caps) that must not perturb legacy scalar runs.
  [[nodiscard]] bool explicit_classes() const { return classes_.size() > 1; }

 private:
  std::vector<MachineClass> classes_;
};

}  // namespace heteroplace::cluster
