#pragma once

// A physical machine: CPU capacity (sum of its processors, in MHz) and
// memory capacity (MB). Tracks which VMs reside on it and their resource
// reservations; rejects over-commitment.
//
// Power: every node carries a sleep state (the S-state machine driven by
// power::PowerManager) and a DVFS speed factor (the current P-state's
// speed scaling). Only kActive nodes are placeable; a parked or
// transitioning node contributes zero capacity to placement. Both fields
// default to full-power values, so a run that never touches the power
// subsystem behaves exactly as before.

#include <map>
#include <vector>

#include "cluster/machine_class.hpp"
#include "cluster/resources.hpp"
#include "util/ids.hpp"

namespace heteroplace::cluster {

/// Node sleep states. kParking/kWaking are the modeled transition
/// windows: the node is off-limits to placement but still draws power.
enum class PowerState {
  kActive,   // powered, placeable
  kParking,  // entering a sleep state (park latency running)
  kParked,   // asleep (standby or off); zero capacity
  kWaking,   // powering back up (wake latency running); not yet placeable
  kFailed,   // crashed (fault injection); zero capacity, zero draw
};

[[nodiscard]] const char* to_string(PowerState s);

class Node {
 public:
  Node(util::NodeId id, Resources capacity, ClassId klass = 0)
      : id_(id), capacity_(capacity), klass_(klass) {}

  [[nodiscard]] util::NodeId id() const { return id_; }
  [[nodiscard]] Resources capacity() const { return capacity_; }

  /// Machine class this node belongs to (0 = the implicit default); the
  /// class table lives in the owning Cluster's registry.
  [[nodiscard]] ClassId klass() const { return klass_; }
  [[nodiscard]] Resources used() const { return used_; }
  [[nodiscard]] Resources available() const { return capacity_ - used_; }
  [[nodiscard]] util::CpuMhz cpu_free() const { return available().cpu; }
  [[nodiscard]] util::MemMb mem_free() const { return available().mem; }

  /// Could `r` be admitted right now? A node that is not active never
  /// admits anything, whatever its free capacity.
  [[nodiscard]] bool can_host(Resources r) const {
    return placeable() && r.fits_in(available());
  }

  // --- power ---------------------------------------------------------------

  [[nodiscard]] PowerState power_state() const { return power_state_; }

  /// Drive the sleep state machine. Transition legality is the
  /// PowerManager's business; the node only enforces the physical
  /// invariant that a machine hosting VMs cannot leave kActive
  /// (throws std::logic_error).
  void set_power_state(PowerState s);

  [[nodiscard]] bool placeable() const { return power_state_ == PowerState::kActive; }

  /// Current P-state speed scaling in (0, 1]; 1 = full speed.
  [[nodiscard]] double speed_factor() const { return speed_factor_; }

  /// Set the DVFS speed factor; throws std::invalid_argument outside (0, 1].
  void set_speed_factor(double f);

  /// CPU the placement layer may plan with: the capacity scaled by the
  /// current P-state while active, zero otherwise. At full speed this is
  /// bit-identical to capacity().cpu (power-disabled runs see no change).
  [[nodiscard]] util::CpuMhz placeable_cpu() const {
    if (!placeable()) return util::CpuMhz{0.0};
    return speed_factor_ == 1.0 ? capacity_.cpu : capacity_.cpu * speed_factor_;
  }

  /// Admit a VM with reservation `r`. Returns false (no change) if it
  /// does not fit or the VM is already resident.
  [[nodiscard]] bool add_vm(util::VmId vm, Resources r);

  /// Remove a resident VM, releasing its reservation. Returns false if
  /// the VM is not resident.
  bool remove_vm(util::VmId vm);

  /// Change a resident VM's CPU share; fails (false) if the node's CPU
  /// would be over-committed. Memory reservations never change in place.
  [[nodiscard]] bool set_vm_cpu(util::VmId vm, util::CpuMhz cpu);

  /// Change whether a resident VM's memory is counted (suspend-to-disk in
  /// progress etc. is handled by Cluster; Node just applies deltas).
  [[nodiscard]] bool set_vm_mem(util::VmId vm, util::MemMb mem);

  [[nodiscard]] bool hosts(util::VmId vm) const { return residents_.count(vm) > 0; }
  [[nodiscard]] const std::map<util::VmId, Resources>& residents() const { return residents_; }
  [[nodiscard]] std::size_t resident_count() const { return residents_.size(); }

 private:
  util::NodeId id_;
  Resources capacity_;
  ClassId klass_{0};
  Resources used_{};
  std::map<util::VmId, Resources> residents_;  // ordered for determinism
  PowerState power_state_{PowerState::kActive};
  double speed_factor_{1.0};
};

}  // namespace heteroplace::cluster
