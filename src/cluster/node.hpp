#pragma once

// A physical machine: CPU capacity (sum of its processors, in MHz) and
// memory capacity (MB). Tracks which VMs reside on it and their resource
// reservations; rejects over-commitment.

#include <map>
#include <vector>

#include "cluster/resources.hpp"
#include "util/ids.hpp"

namespace heteroplace::cluster {

class Node {
 public:
  Node(util::NodeId id, Resources capacity) : id_(id), capacity_(capacity) {}

  [[nodiscard]] util::NodeId id() const { return id_; }
  [[nodiscard]] Resources capacity() const { return capacity_; }
  [[nodiscard]] Resources used() const { return used_; }
  [[nodiscard]] Resources available() const { return capacity_ - used_; }
  [[nodiscard]] util::CpuMhz cpu_free() const { return available().cpu; }
  [[nodiscard]] util::MemMb mem_free() const { return available().mem; }

  /// Could `r` be admitted right now?
  [[nodiscard]] bool can_host(Resources r) const { return r.fits_in(available()); }

  /// Admit a VM with reservation `r`. Returns false (no change) if it
  /// does not fit or the VM is already resident.
  [[nodiscard]] bool add_vm(util::VmId vm, Resources r);

  /// Remove a resident VM, releasing its reservation. Returns false if
  /// the VM is not resident.
  bool remove_vm(util::VmId vm);

  /// Change a resident VM's CPU share; fails (false) if the node's CPU
  /// would be over-committed. Memory reservations never change in place.
  [[nodiscard]] bool set_vm_cpu(util::VmId vm, util::CpuMhz cpu);

  /// Change whether a resident VM's memory is counted (suspend-to-disk in
  /// progress etc. is handled by Cluster; Node just applies deltas).
  [[nodiscard]] bool set_vm_mem(util::VmId vm, util::MemMb mem);

  [[nodiscard]] bool hosts(util::VmId vm) const { return residents_.count(vm) > 0; }
  [[nodiscard]] const std::map<util::VmId, Resources>& residents() const { return residents_; }
  [[nodiscard]] std::size_t resident_count() const { return residents_.size(); }

 private:
  util::NodeId id_;
  Resources capacity_;
  Resources used_{};
  std::map<util::VmId, Resources> residents_;  // ordered for determinism
};

}  // namespace heteroplace::cluster
