#pragma once

// Two-dimensional resource vector: CPU power (MHz) and memory (MB).
// These are the two resources the paper's placement controller manages:
// CPU is fluid (arbitrarily divisible between collocated VMs), memory is
// a rigid per-VM reservation — which is exactly why "only three jobs fit
// on a node at once" in the paper's evaluation even though four would fit
// by CPU alone.

#include <ostream>

#include "util/units.hpp"

namespace heteroplace::cluster {

struct Resources {
  util::CpuMhz cpu{0.0};
  util::MemMb mem{0.0};

  friend constexpr Resources operator+(Resources a, Resources b) {
    return {a.cpu + b.cpu, a.mem + b.mem};
  }
  friend constexpr Resources operator-(Resources a, Resources b) {
    return {a.cpu - b.cpu, a.mem - b.mem};
  }
  constexpr Resources& operator+=(Resources b) {
    cpu += b.cpu;
    mem += b.mem;
    return *this;
  }
  constexpr Resources& operator-=(Resources b) {
    cpu -= b.cpu;
    mem -= b.mem;
    return *this;
  }
  friend constexpr bool operator==(Resources, Resources) = default;

  /// True if this fits within `avail` on both dimensions (with a small
  /// epsilon on the fluid CPU axis to absorb accumulated FP error).
  [[nodiscard]] constexpr bool fits_in(Resources avail, double cpu_eps = 1e-6) const {
    return cpu.get() <= avail.cpu.get() + cpu_eps && mem.get() <= avail.mem.get() + 1e-9;
  }

  friend std::ostream& operator<<(std::ostream& os, Resources r) {
    return os << "{cpu=" << r.cpu << "MHz, mem=" << r.mem << "MB}";
  }
};

}  // namespace heteroplace::cluster
