#include "cluster/actions.hpp"

namespace heteroplace::cluster {

const char* to_string(ActionType t) {
  switch (t) {
    case ActionType::kStartJob:
      return "start-job";
    case ActionType::kSuspendJob:
      return "suspend-job";
    case ActionType::kResumeJob:
      return "resume-job";
    case ActionType::kMigrateJob:
      return "migrate-job";
    case ActionType::kStartInstance:
      return "start-instance";
    case ActionType::kStopInstance:
      return "stop-instance";
    case ActionType::kResizeCpu:
      return "resize-cpu";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const Action& a) {
  os << to_string(a.type) << "{vm=" << a.vm;
  if (a.job.valid()) os << ", job=" << a.job;
  if (a.app.valid()) os << ", app=" << a.app;
  if (a.from.valid()) os << ", from=" << a.from;
  if (a.to.valid()) os << ", to=" << a.to;
  os << ", cpu=" << a.cpu << "}";
  return os;
}

}  // namespace heteroplace::cluster
