#include "cluster/cluster.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace heteroplace::cluster {

util::NodeId Cluster::add_node(Resources capacity, ClassId klass) {
  (void)classes_.at(klass);  // validate the id against the registry
  const util::NodeId id{static_cast<util::NodeId::underlying_type>(nodes_.size())};
  nodes_.emplace_back(id, capacity, klass);
  return id;
}

void Cluster::add_nodes(int count, Resources per_node, ClassId klass) {
  for (int i = 0; i < count; ++i) add_node(per_node, klass);
}

void Cluster::add_class_nodes(ClassId klass, int count) {
  const MachineClass& c = classes_.at(klass);
  if (c.cores <= 0 || c.core_mhz <= 0.0 || c.mem_mb <= 0.0) {
    throw std::invalid_argument("Cluster::add_class_nodes: class '" + c.name +
                                "' needs cores, core_mhz and mem_mb to instantiate nodes");
  }
  add_nodes(count, c.capacity(), klass);
}

std::vector<Resources> Cluster::placeable_capacity_by_class() const {
  std::vector<Resources> per_class(classes_.size());
  for (const auto& n : nodes_) {
    if (!n.placeable()) continue;
    per_class[static_cast<std::size_t>(n.klass())] +=
        Resources{n.placeable_cpu(), n.capacity().mem};
  }
  return per_class;
}

Node& Cluster::node(util::NodeId id) {
  if (!id.valid() || id.get() >= nodes_.size()) {
    throw std::out_of_range("Cluster::node: bad node id");
  }
  return nodes_[id.get()];
}

const Node& Cluster::node(util::NodeId id) const {
  return const_cast<Cluster*>(this)->node(id);
}

Resources Cluster::total_capacity() const {
  Resources total{};
  for (const auto& n : nodes_) total += n.capacity();
  return total;
}

Resources Cluster::placeable_capacity() const {
  Resources total{};
  for (const auto& n : nodes_) {
    if (!n.placeable()) continue;
    total += Resources{n.placeable_cpu(), n.capacity().mem};
  }
  return total;
}

Resources Cluster::total_used() const {
  Resources total{};
  for (const auto& n : nodes_) total += n.used();
  return total;
}

util::VmId Cluster::create_job_vm(util::JobId job, util::MemMb memory) {
  const util::VmId id{next_vm_++};
  Vm vm;
  vm.id = id;
  vm.kind = VmKind::kJobContainer;
  vm.memory = memory;
  vm.job = job;
  vms_.emplace(id, vm);
  vm_order_.push_back(id);
  return id;
}

util::VmId Cluster::create_web_vm(util::AppId app, util::MemMb memory) {
  const util::VmId id{next_vm_++};
  Vm vm;
  vm.id = id;
  vm.kind = VmKind::kWebInstance;
  vm.memory = memory;
  vm.app = app;
  vms_.emplace(id, vm);
  vm_order_.push_back(id);
  return id;
}

const Vm& Cluster::vm(util::VmId id) const {
  auto it = vms_.find(id);
  if (it == vms_.end()) throw std::out_of_range("Cluster::vm: unknown vm id");
  return it->second;
}

Vm& Cluster::vm_mut(util::VmId id) {
  auto it = vms_.find(id);
  if (it == vms_.end()) throw std::out_of_range("Cluster::vm: unknown vm id");
  return it->second;
}

std::vector<util::VmId> Cluster::vm_ids() const { return vm_order_; }

bool Cluster::place_vm(util::VmId id, util::NodeId node_id) {
  Vm& v = vm_mut(id);
  if (v.placed()) return false;
  Node& n = node(node_id);
  if (!n.add_vm(id, Resources{util::CpuMhz{0.0}, v.memory})) return false;
  v.node = node_id;
  v.cpu_share = util::CpuMhz{0.0};
  return true;
}

void Cluster::unplace_vm(util::VmId id) {
  Vm& v = vm_mut(id);
  if (!v.placed()) return;
  node(v.node).remove_vm(id);
  v.node = util::NodeId{};
  v.cpu_share = util::CpuMhz{0.0};
}

void Cluster::set_vm_state(util::VmId id, VmState state) {
  Vm& v = vm_mut(id);
  if (!vm_transition_allowed(v.state, state)) {
    std::ostringstream os;
    os << "illegal VM transition " << to_string(v.state) << " -> " << to_string(state)
       << " for vm " << id;
    throw std::logic_error(os.str());
  }
  v.state = state;
}

bool Cluster::set_cpu_share(util::VmId id, util::CpuMhz cpu) {
  Vm& v = vm_mut(id);
  if (!v.placed()) return false;
  if (cpu.get() < 0.0) return false;
  if (!node(v.node).set_vm_cpu(id, cpu)) return false;
  v.cpu_share = cpu;
  return true;
}

util::CpuMhz Cluster::allocated_cpu(VmKind kind) const {
  util::CpuMhz total{0.0};
  for (const auto& [_, v] : vms_) {
    if (v.kind == kind) total += v.cpu_share;
  }
  return total;
}

std::vector<util::VmId> Cluster::vms_in_state(VmKind kind, VmState state) const {
  std::vector<util::VmId> out;
  for (util::VmId id : vm_order_) {
    const Vm& v = vms_.at(id);
    if (v.kind == kind && v.state == state) out.push_back(id);
  }
  return out;
}

int Cluster::free_memory_slots(util::NodeId node_id, util::MemMb memory) const {
  if (memory.get() <= 0.0) return 0;
  const double free = node(node_id).mem_free().get();
  return static_cast<int>(std::floor(free / memory.get() + 1e-9));
}

std::vector<std::string> Cluster::validate() const {
  std::vector<std::string> issues;
  auto complain = [&](const std::string& msg) { issues.push_back(msg); };

  for (const auto& n : nodes_) {
    if (!n.placeable() && n.resident_count() > 0) {
      complain("non-active node still hosts VMs");
    }
    Resources sum{};
    for (const auto& [vm_id, r] : n.residents()) {
      sum += r;
      auto it = vms_.find(vm_id);
      if (it == vms_.end()) {
        complain("node hosts unknown vm");
        continue;
      }
      const Vm& v = it->second;
      if (v.node != n.id()) complain("vm back-pointer disagrees with node resident list");
      if (!vm_state_holds_memory(v.state) && r.mem.get() > 0.0) {
        complain("vm in state " + std::string(to_string(v.state)) + " still reserves memory");
      }
      if (v.state != VmState::kRunning && r.cpu.get() > 1e-9) {
        complain("non-running vm holds a CPU share");
      }
      if (std::fabs(v.cpu_share.get() - r.cpu.get()) > 1e-6) {
        complain("vm cpu_share disagrees with node reservation");
      }
    }
    if (sum.cpu.get() > n.capacity().cpu.get() + 1e-6) complain("node CPU over-committed");
    if (sum.mem.get() > n.capacity().mem.get() + 1e-9) complain("node memory over-committed");
    if (std::fabs(sum.cpu.get() - n.used().cpu.get()) > 1e-6 ||
        std::fabs(sum.mem.get() - n.used().mem.get()) > 1e-6) {
      complain("node aggregate usage out of sync with residents");
    }
  }

  for (const auto& [id, v] : vms_) {
    if (v.placed()) {
      if (v.node.get() >= nodes_.size()) {
        complain("vm placed on nonexistent node");
        continue;
      }
      if (!nodes_[v.node.get()].hosts(id)) complain("placed vm missing from node resident list");
      if (!vm_state_holds_memory(v.state)) {
        complain("vm placed while in non-resident state " + std::string(to_string(v.state)));
      }
    } else {
      if (vm_state_holds_memory(v.state)) {
        complain("vm holds memory-bearing state but is not placed");
      }
      if (v.cpu_share.get() > 0.0) complain("unplaced vm has a CPU share");
    }
  }
  return issues;
}

}  // namespace heteroplace::cluster
