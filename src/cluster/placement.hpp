#pragma once

// Desired-placement descriptions produced by placement policies and
// consumed by the action executor.
//
// A PlacementPlan is declarative: "job J should be running on node N with
// CPU share c", "app A should have an instance on node N with share c".
// The executor diffs the plan against cluster reality and emits actions
// (start/suspend/resume/migrate/resize) to converge.

#include <map>
#include <optional>
#include <ostream>
#include <vector>

#include "util/ids.hpp"
#include "util/units.hpp"

namespace heteroplace::cluster {

struct DesiredJobPlacement {
  util::JobId job{};
  util::NodeId node{};
  util::CpuMhz cpu{0.0};
};

struct DesiredWebInstance {
  util::AppId app{};
  util::NodeId node{};
  util::CpuMhz cpu{0.0};
};

struct PlacementPlan {
  /// Jobs that should be executing. Jobs absent from this list should be
  /// left pending (if never started) or suspended (if running).
  std::vector<DesiredJobPlacement> jobs;

  /// Web instances that should exist, at most one per (app, node) pair.
  /// Existing instances on nodes not listed are stopped.
  std::vector<DesiredWebInstance> instances;

  [[nodiscard]] std::optional<DesiredJobPlacement> find_job(util::JobId id) const {
    for (const auto& j : jobs) {
      if (j.job == id) return j;
    }
    return std::nullopt;
  }

  /// Total CPU the plan grants each app / the job workload.
  [[nodiscard]] util::CpuMhz total_job_cpu() const {
    util::CpuMhz total{0.0};
    for (const auto& j : jobs) total += j.cpu;
    return total;
  }
  [[nodiscard]] util::CpuMhz app_cpu(util::AppId app) const {
    util::CpuMhz total{0.0};
    for (const auto& i : instances) {
      if (i.app == app) total += i.cpu;
    }
    return total;
  }

  friend std::ostream& operator<<(std::ostream& os, const PlacementPlan& p) {
    os << "plan{jobs=" << p.jobs.size() << ", instances=" << p.instances.size() << "}";
    return os;
  }
};

}  // namespace heteroplace::cluster
