#include "cluster/machine_class.hpp"

#include <algorithm>
#include <stdexcept>

namespace heteroplace::cluster {

bool MachineClass::has_accel(const std::string& tag) const {
  return std::find(accel.begin(), accel.end(), tag) != accel.end();
}

bool ConstraintSet::admits(const MachineClass& c) const {
  if (!arch.empty() && c.arch != arch) return false;
  for (const std::string& tag : accel) {
    if (!c.has_accel(tag)) return false;
  }
  if (min_core_mhz > 0.0 && c.delivered_core_mhz() < min_core_mhz) return false;
  return true;
}

ClassId MachineClassRegistry::add(MachineClass c) {
  if (c.name.empty()) {
    throw std::invalid_argument("MachineClassRegistry: class name must be nonempty");
  }
  if (find(c.name).has_value()) {
    throw std::invalid_argument("MachineClassRegistry: duplicate class name '" + c.name + "'");
  }
  if (c.speed_factor <= 0.0 || c.speed_factor > 1.0) {
    throw std::invalid_argument("MachineClassRegistry: speed_factor must be in (0, 1]");
  }
  std::sort(c.accel.begin(), c.accel.end());
  const ClassId id = static_cast<ClassId>(classes_.size());
  classes_.push_back(std::move(c));
  return id;
}

const MachineClass& MachineClassRegistry::at(ClassId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= classes_.size()) {
    throw std::out_of_range("MachineClassRegistry::at: bad class id");
  }
  return classes_[static_cast<std::size_t>(id)];
}

std::optional<ClassId> MachineClassRegistry::find(const std::string& name) const {
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    if (classes_[i].name == name) return static_cast<ClassId>(i);
  }
  return std::nullopt;
}

}  // namespace heteroplace::cluster
