#pragma once

// Virtual machine records.
//
// Every workload runs inside a VM: long-running jobs in job containers,
// transactional applications in web instances (one instance per node at
// most, clustered across nodes). The VM is the unit of placement and of
// the control actions the paper leverages (start, stop, suspend to disk,
// resume, live-migrate).

#include <string>

#include "cluster/resources.hpp"
#include "util/ids.hpp"

namespace heteroplace::cluster {

enum class VmKind {
  kJobContainer,  // hosts exactly one long-running job
  kWebInstance,   // one member of a transactional app's instance cluster
};

enum class VmState {
  kPending,     // defined but never started
  kStarting,    // boot in progress (holds memory, no useful work yet)
  kRunning,     // placed and executing
  kSuspending,  // suspend-to-disk in progress (still holds memory)
  kSuspended,   // image on disk: consumes neither CPU nor memory
  kResuming,    // resume in progress (holds memory, no useful work yet)
  kMigrating,   // move in progress (holds memory at destination)
  kStopped,     // terminal
};

[[nodiscard]] const char* to_string(VmState s);
[[nodiscard]] const char* to_string(VmKind k);

/// Legal lifecycle edges (enforced by Cluster::set_vm_state).
[[nodiscard]] bool vm_transition_allowed(VmState from, VmState to);

/// True if a VM in this state occupies memory on a node.
[[nodiscard]] constexpr bool vm_state_holds_memory(VmState s) {
  switch (s) {
    case VmState::kStarting:
    case VmState::kRunning:
    case VmState::kSuspending:
    case VmState::kResuming:
    case VmState::kMigrating:
      return true;
    case VmState::kPending:
    case VmState::kSuspended:
    case VmState::kStopped:
      return false;
  }
  return false;
}

/// True if a VM in this state can make progress / serve load.
[[nodiscard]] constexpr bool vm_state_executes(VmState s) { return s == VmState::kRunning; }

struct Vm {
  util::VmId id{};
  VmKind kind{VmKind::kJobContainer};
  VmState state{VmState::kPending};
  util::MemMb memory{0.0};

  /// Exactly one of these identifies the owner, depending on `kind`.
  util::JobId job{};
  util::AppId app{};

  /// Node currently hosting the VM; invalid when pending/suspended/stopped.
  util::NodeId node{};

  /// CPU share currently granted by the controller (0 unless running).
  util::CpuMhz cpu_share{0.0};

  [[nodiscard]] bool placed() const { return node.valid(); }
  [[nodiscard]] Resources footprint() const {
    return Resources{cpu_share, vm_state_holds_memory(state) ? memory : util::MemMb{0.0}};
  }
};

}  // namespace heteroplace::cluster
