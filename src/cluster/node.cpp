#include "cluster/node.hpp"

namespace heteroplace::cluster {

bool Node::add_vm(util::VmId vm, Resources r) {
  if (residents_.count(vm) > 0) return false;
  if (!r.fits_in(available())) return false;
  residents_.emplace(vm, r);
  used_ += r;
  return true;
}

bool Node::remove_vm(util::VmId vm) {
  auto it = residents_.find(vm);
  if (it == residents_.end()) return false;
  used_ -= it->second;
  residents_.erase(it);
  return true;
}

bool Node::set_vm_cpu(util::VmId vm, util::CpuMhz cpu) {
  auto it = residents_.find(vm);
  if (it == residents_.end()) return false;
  const util::CpuMhz others = used_.cpu - it->second.cpu;
  if (others.get() + cpu.get() > capacity_.cpu.get() + 1e-6) return false;
  used_.cpu = others + cpu;
  it->second.cpu = cpu;
  return true;
}

bool Node::set_vm_mem(util::VmId vm, util::MemMb mem) {
  auto it = residents_.find(vm);
  if (it == residents_.end()) return false;
  const util::MemMb others = used_.mem - it->second.mem;
  if (others.get() + mem.get() > capacity_.mem.get() + 1e-9) return false;
  used_.mem = others + mem;
  it->second.mem = mem;
  return true;
}

}  // namespace heteroplace::cluster
