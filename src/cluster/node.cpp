#include "cluster/node.hpp"

#include <stdexcept>

namespace heteroplace::cluster {

const char* to_string(PowerState s) {
  switch (s) {
    case PowerState::kActive:
      return "active";
    case PowerState::kParking:
      return "parking";
    case PowerState::kParked:
      return "parked";
    case PowerState::kWaking:
      return "waking";
    case PowerState::kFailed:
      return "failed";
  }
  return "?";
}

void Node::set_power_state(PowerState s) {
  if (s != PowerState::kActive && !residents_.empty()) {
    throw std::logic_error("Node::set_power_state: node hosts VMs and cannot leave active");
  }
  power_state_ = s;
}

void Node::set_speed_factor(double f) {
  if (!(f > 0.0) || f > 1.0) {
    throw std::invalid_argument("Node::set_speed_factor: factor must be in (0, 1]");
  }
  speed_factor_ = f;
}

bool Node::add_vm(util::VmId vm, Resources r) {
  if (!placeable()) return false;  // parked / transitioning nodes admit nothing
  if (residents_.count(vm) > 0) return false;
  if (!r.fits_in(available())) return false;
  residents_.emplace(vm, r);
  used_ += r;
  return true;
}

bool Node::remove_vm(util::VmId vm) {
  auto it = residents_.find(vm);
  if (it == residents_.end()) return false;
  used_ -= it->second;
  residents_.erase(it);
  return true;
}

bool Node::set_vm_cpu(util::VmId vm, util::CpuMhz cpu) {
  auto it = residents_.find(vm);
  if (it == residents_.end()) return false;
  const util::CpuMhz others = used_.cpu - it->second.cpu;
  if (others.get() + cpu.get() > capacity_.cpu.get() + 1e-6) return false;
  used_.cpu = others + cpu;
  it->second.cpu = cpu;
  return true;
}

bool Node::set_vm_mem(util::VmId vm, util::MemMb mem) {
  auto it = residents_.find(vm);
  if (it == residents_.end()) return false;
  const util::MemMb others = used_.mem - it->second.mem;
  if (others.get() + mem.get() > capacity_.mem.get() + 1e-9) return false;
  used_.mem = others + mem;
  it->second.mem = mem;
  return true;
}

}  // namespace heteroplace::cluster
