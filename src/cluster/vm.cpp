#include "cluster/vm.hpp"

namespace heteroplace::cluster {

const char* to_string(VmState s) {
  switch (s) {
    case VmState::kPending:
      return "pending";
    case VmState::kStarting:
      return "starting";
    case VmState::kRunning:
      return "running";
    case VmState::kSuspending:
      return "suspending";
    case VmState::kSuspended:
      return "suspended";
    case VmState::kResuming:
      return "resuming";
    case VmState::kMigrating:
      return "migrating";
    case VmState::kStopped:
      return "stopped";
  }
  return "?";
}

const char* to_string(VmKind k) {
  switch (k) {
    case VmKind::kJobContainer:
      return "job-container";
    case VmKind::kWebInstance:
      return "web-instance";
  }
  return "?";
}

bool vm_transition_allowed(VmState from, VmState to) {
  switch (from) {
    case VmState::kPending:
      // kSuspended: the VM is defined directly from a checkpoint image
      // landed on disk (cross-domain migration restore).
      return to == VmState::kStarting || to == VmState::kSuspended || to == VmState::kStopped;
    case VmState::kStarting:
      return to == VmState::kRunning || to == VmState::kStopped;
    case VmState::kRunning:
      return to == VmState::kSuspending || to == VmState::kMigrating || to == VmState::kStopped;
    case VmState::kSuspending:
      return to == VmState::kSuspended || to == VmState::kStopped;
    case VmState::kSuspended:
      return to == VmState::kResuming || to == VmState::kStopped;
    case VmState::kResuming:
      return to == VmState::kRunning || to == VmState::kStopped;
    case VmState::kMigrating:
      // kSuspended: migration aborted, image parked on disk instead.
      return to == VmState::kRunning || to == VmState::kStopped || to == VmState::kSuspended;
    case VmState::kStopped:
      return false;
  }
  return false;
}

}  // namespace heteroplace::cluster
