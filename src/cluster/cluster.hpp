#pragma once

// Cluster state: the set of nodes and VMs, with placement bookkeeping.
//
// The Cluster is the "plant" that the placement controller manipulates.
// It enforces the physical invariants (no CPU or memory over-commitment,
// legal VM lifecycle transitions); policy lives elsewhere.

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/machine_class.hpp"
#include "cluster/node.hpp"
#include "cluster/vm.hpp"
#include "util/ids.hpp"

namespace heteroplace::cluster {

class Cluster {
 public:
  Cluster() = default;

  // --- topology -----------------------------------------------------------

  util::NodeId add_node(Resources capacity, ClassId klass = 0);

  /// Homogeneous convenience: `count` nodes of `per_node` capacity.
  void add_nodes(int count, Resources per_node, ClassId klass = 0);

  // --- machine classes ------------------------------------------------------

  /// Register a machine class; nodes reference classes by the returned
  /// id. The registry always holds the implicit default class at id 0.
  ClassId add_class(MachineClass c) { return classes_.add(std::move(c)); }

  /// Add `count` nodes of class `klass`, capacity taken from the class
  /// definition (delivered MHz × memory). Throws on a bad id or a class
  /// without cores/core_mhz/mem_mb.
  void add_class_nodes(ClassId klass, int count);

  [[nodiscard]] const MachineClassRegistry& classes() const { return classes_; }

  /// Placeable capacity aggregated per class id (vector indexed by
  /// ClassId, sized classes().size()): active nodes only, CPU scaled by
  /// each node's P-state — the per-class analogue of placeable_capacity.
  [[nodiscard]] std::vector<Resources> placeable_capacity_by_class() const;

  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] Node& node(util::NodeId id);
  [[nodiscard]] const Node& node(util::NodeId id) const;
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  [[nodiscard]] Resources total_capacity() const;
  [[nodiscard]] Resources total_used() const;

  /// Capacity placement may use right now: active nodes only, CPU scaled
  /// by each node's P-state. With every node active at full speed this is
  /// bit-identical to total_capacity() (the power-disabled invariant).
  [[nodiscard]] Resources placeable_capacity() const;

  // --- VM lifecycle --------------------------------------------------------

  /// Define a job-container VM (state kPending, not placed).
  util::VmId create_job_vm(util::JobId job, util::MemMb memory);

  /// Define a web-instance VM for a transactional app.
  util::VmId create_web_vm(util::AppId app, util::MemMb memory);

  [[nodiscard]] const Vm& vm(util::VmId id) const;
  [[nodiscard]] bool vm_exists(util::VmId id) const { return vms_.count(id) > 0; }
  [[nodiscard]] std::vector<util::VmId> vm_ids() const;

  /// Reserve the VM's memory on `node` (CPU share starts at 0) and record
  /// the VM as hosted there. Fails if the VM is already placed or memory
  /// does not fit. Does NOT change the VM state.
  [[nodiscard]] bool place_vm(util::VmId id, util::NodeId node);

  /// Release the VM's reservation and clear its node. CPU share drops to 0.
  void unplace_vm(util::VmId id);

  /// Lifecycle transition; throws std::logic_error on an illegal edge.
  void set_vm_state(util::VmId id, VmState state);

  /// Grant a CPU share to a placed VM; fails on node CPU over-commitment.
  [[nodiscard]] bool set_cpu_share(util::VmId id, util::CpuMhz cpu);

  // --- aggregate queries ---------------------------------------------------

  /// Total CPU currently granted to VMs of the given kind.
  [[nodiscard]] util::CpuMhz allocated_cpu(VmKind kind) const;

  /// VMs of a kind in a given state (deterministic id order).
  [[nodiscard]] std::vector<util::VmId> vms_in_state(VmKind kind, VmState state) const;

  /// How many additional VMs with `memory` each could be packed on `node`
  /// given its current free memory.
  [[nodiscard]] int free_memory_slots(util::NodeId node, util::MemMb memory) const;

  /// Invariant check: returns human-readable violations (empty == healthy).
  /// Checked invariants: per-node resource sums within capacity; node
  /// resident sets consistent with VM back-pointers; memory reservations
  /// consistent with VM states; CPU shares only on running VMs.
  [[nodiscard]] std::vector<std::string> validate() const;

 private:
  [[nodiscard]] Vm& vm_mut(util::VmId id);

  std::vector<Node> nodes_;
  MachineClassRegistry classes_;
  std::unordered_map<util::VmId, Vm> vms_;
  std::vector<util::VmId> vm_order_;  // insertion order for deterministic iteration
  util::VmId::underlying_type next_vm_{0};
};

}  // namespace heteroplace::cluster
