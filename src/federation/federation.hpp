#pragma once

// Federation: N controller domains on one shared deterministic engine.
//
// The federation owns the global registries a multi-datacenter deployment
// needs — which domain hosts each job, and how each transactional app's
// demand is split — while each Domain keeps the full single-cluster
// control stack (World, controller, executor) unchanged. Incoming work is
// assigned by a pluggable DomainRouter; controller cycles are staggered
// across domains by default so N control loops do not fire in lockstep on
// the shared clock.
//
// A 1-domain federation is behaviorally identical to the plain
// single-World path (pinned by tests/federation_test.cpp): the router has
// one choice, the demand split is the identity, and the stagger offset of
// domain 0 is zero.

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "federation/domain.hpp"
#include "federation/router.hpp"
#include "obs/context.hpp"

namespace heteroplace::federation {

class Federation {
 public:
  /// Observer of every domain's control cycles (metrics aggregation).
  using CycleObserver = std::function<void(const Domain&, const core::CycleReport&)>;

  Federation(sim::Engine& engine, std::unique_ptr<DomainRouter> router);

  /// Create a domain (before add_app/submit_job/start). The returned
  /// reference is stable for the federation's lifetime; populate its
  /// cluster through domain.world().cluster(). Pass auto_stagger = false
  /// to pin the controller phase to config.first_cycle_at exactly
  /// (including an explicit zero); otherwise start() may stagger it.
  Domain& add_domain(std::string name, std::unique_ptr<core::PlacementPolicy> policy,
                     cluster::ActionLatencies latencies = {}, core::ControllerConfig config = {},
                     bool auto_stagger = true);

  [[nodiscard]] std::size_t domain_count() const { return domains_.size(); }
  [[nodiscard]] Domain& domain(std::size_t i) { return *domains_.at(i); }
  [[nodiscard]] const Domain& domain(std::size_t i) const { return *domains_.at(i); }

  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] const DomainRouter& router() const { return *router_; }

  /// Register a transactional app federation-wide: the router's demand
  /// shares split its offered load into one scaled trace per domain.
  /// Every domain receives the app (possibly with a zero-rate trace) so
  /// local controllers and metrics see a consistent app registry.
  void add_app(workload::TxAppSpec spec, workload::DemandTrace trace);

  /// Route `spec` to exactly one domain's world; returns that domain.
  /// Throws if the job id was already submitted anywhere in the federation.
  Domain& submit_job(workload::JobSpec spec);

  [[nodiscard]] bool job_routed(util::JobId id) const { return job_domain_.count(id) > 0; }
  /// Domain index owning a previously submitted job.
  [[nodiscard]] std::size_t job_domain(util::JobId id) const;
  /// Jobs routed to each domain so far.
  [[nodiscard]] std::vector<long> jobs_per_domain() const;

  // --- cross-domain job handoff (migration subsystem) -----------------------
  //
  // detach_job removes a job from its owner domain's world and updates
  // that domain's load aggregates; the job stays in the global registry
  // (pointing at the source) until attach_job lands it elsewhere. The
  // caller (migration::MigrationManager) is responsible for the VM-level
  // bookkeeping — retiring the source VM image and cancelling executor
  // events — before detaching.

  /// Remove a routed job from its current domain and return its state.
  [[nodiscard]] workload::Job detach_job(util::JobId id);

  /// Insert a job (typically restored from a checkpoint) into domain `to`
  /// and repoint the global registry at it.
  void attach_job(std::size_t to, workload::Job job);

  /// Update a domain's health weight (brownout/drain/recovery) and
  /// re-split every app's demand under the new weights. Safe mid-run:
  /// traces are piecewise by absolute time, and consumers only query
  /// rates at or after the current time.
  void set_domain_weight(std::size_t i, double weight);

  /// Re-split every app's demand under the current weights and capacity
  /// — without changing any weight. The fault injector calls this when a
  /// node crash (or recovery) moves a domain's placeable capacity, so
  /// transactional demand drains away from (or returns to) the domain.
  void resplit_demand();

  /// Start every domain's control loop. Domains added with
  /// auto_stagger = false (or with a nonzero first_cycle_at) keep their
  /// configured phase; the rest are staggered at index × cycle /
  /// domain_count (domain 0 keeps phase 0).
  void start();

  void set_cycle_observer(CycleObserver observer) { observer_ = std::move(observer); }

  /// Attach observability to the federation's own (serial, cross-domain)
  /// decision points: job routing, weight changes, demand re-splits. The
  /// context's pid should be the global lane (0); per-domain controller
  /// contexts are attached separately by the experiment runner.
  void set_obs(const obs::ObsContext& ctx);

  /// Probe for per-domain outbound migration-transfer queue depth,
  /// registered by the migration manager (its LinkScheduler owns the
  /// link pools). When set, status() fills
  /// DomainStatus::outbound_transfers_queued from it.
  using TransferQueueProbe = std::function<std::size_t(std::size_t domain)>;
  void set_transfer_queue_probe(TransferQueueProbe probe) {
    transfer_queue_probe_ = std::move(probe);
  }

  /// Probe for per-domain live power draw (W), registered by the
  /// experiment runner when the power subsystem is enabled (each domain's
  /// PowerManager owns its EnergyMeter). When set, status() fills
  /// DomainStatus::power_draw_w from it.
  using PowerProbe = std::function<double(std::size_t domain)>;
  void set_power_probe(PowerProbe probe) { power_probe_ = std::move(probe); }

  /// Observer of domain weight changes (old weight, new weight), invoked
  /// after the weight is applied and demand re-split. The migration
  /// manager uses it to cancel queued evacuation transfers when a
  /// drained domain recovers.
  using WeightObserver = std::function<void(std::size_t domain, double old_w, double new_w)>;
  void set_weight_observer(WeightObserver observer) { weight_observer_ = std::move(observer); }

  // --- federation-wide aggregates -------------------------------------------

  [[nodiscard]] std::size_t total_submitted() const;
  [[nodiscard]] std::size_t total_completed() const;
  [[nodiscard]] util::CpuMhz total_capacity() const;

  /// Router-facing snapshot of every domain at time `now`.
  [[nodiscard]] std::vector<DomainStatus> status(util::Seconds now) const;

 private:
  /// Normalized demand shares for `spec` given a status snapshot.
  [[nodiscard]] std::vector<double> normalized_shares(const workload::TxAppSpec& spec,
                                                      const std::vector<DomainStatus>& st);

  struct FederatedApp {
    workload::TxAppSpec spec;
    workload::DemandTrace trace;  // the global, unsplit offered load
    std::vector<double> shares;   // current per-domain split (sums to 1)
  };

  sim::Engine& engine_;
  std::unique_ptr<DomainRouter> router_;
  std::vector<std::unique_ptr<Domain>> domains_;
  std::vector<FederatedApp> apps_;
  std::map<util::JobId, std::size_t> job_domain_;  // global job registry
  CycleObserver observer_;
  obs::ObsContext obs_;
  obs::Counter* routed_jobs_metric_{nullptr};
  TransferQueueProbe transfer_queue_probe_;
  PowerProbe power_probe_;
  WeightObserver weight_observer_;
  bool started_{false};
};

}  // namespace heteroplace::federation
