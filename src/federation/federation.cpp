#include "federation/federation.hpp"

#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace heteroplace::federation {

void Federation::set_obs(const obs::ObsContext& ctx) {
  obs_ = ctx;
  if (obs_.metrics != nullptr) {
    routed_jobs_metric_ =
        &obs_.metrics->counter("federation_routed_jobs_total", "Jobs routed to any domain");
  }
}

Federation::Federation(sim::Engine& engine, std::unique_ptr<DomainRouter> router)
    : engine_(engine), router_(std::move(router)) {
  if (!router_) throw std::invalid_argument("Federation: router must not be null");
}

Domain& Federation::add_domain(std::string name, std::unique_ptr<core::PlacementPolicy> policy,
                               cluster::ActionLatencies latencies, core::ControllerConfig config,
                               bool auto_stagger) {
  if (started_) throw std::logic_error("Federation::add_domain: federation already started");
  if (!apps_.empty()) {
    throw std::logic_error("Federation::add_domain: add all domains before apps");
  }
  const std::size_t index = domains_.size();
  domains_.push_back(std::make_unique<Domain>(index, std::move(name), engine_, std::move(policy),
                                              latencies, config, auto_stagger));
  Domain& d = *domains_.back();
  // Every effect of a domain's control cycle is confined to its own
  // World, so tag its controller (and executor) with the domain index:
  // same-timestamp cycles of distinct domains may then run concurrently
  // under engine.threads>1. Cross-domain paths (migration manager,
  // routing, faults) schedule their own events untagged and stay serial.
  d.controller().set_shard(static_cast<sim::ShardId>(index));
  d.controller().set_observer([this, &d](const core::CycleReport& report) {
    if (observer_) observer_(d, report);
  });
  // The federation owns the executor's completion slot: it keeps the
  // per-domain load aggregates current, then forwards to whatever the
  // experiment driver registered on the domain.
  d.controller().executor().set_completion_callback([&d](const workload::Job& job) {
    d.account_job_removed(job.spec().max_speed);
    if (d.user_completion_) d.user_completion_(job);
  });
  return d;
}

std::vector<double> Federation::normalized_shares(const workload::TxAppSpec& spec,
                                                  const std::vector<DomainStatus>& st) {
  std::vector<double> shares = router_->demand_shares(spec, st);
  if (shares.size() != domains_.size()) {
    throw std::logic_error("DomainRouter::demand_shares: wrong share count");
  }
  double total = 0.0;
  for (double s : shares) {
    if (s < 0.0) throw std::logic_error("DomainRouter::demand_shares: negative share");
    total += s;
  }
  if (total <= 0.0) {
    // Every domain drained: fall back to an even split so demand is
    // never silently dropped.
    shares.assign(domains_.size(), 1.0 / static_cast<double>(domains_.size()));
    return shares;
  }
  for (double& s : shares) s /= total;
  return shares;
}

void Federation::add_app(workload::TxAppSpec spec, workload::DemandTrace trace) {
  if (domains_.empty()) throw std::logic_error("Federation::add_app: no domains");
  std::vector<double> shares = normalized_shares(spec, status(engine_.now()));
  FederatedApp app{std::move(spec), std::move(trace), std::move(shares)};
  for (auto& domain : domains_) {
    domain->world().add_app(
        workload::TxApp{app.spec, app.trace.scaled(app.shares[domain->index()])});
  }
  apps_.push_back(std::move(app));
}

Domain& Federation::submit_job(workload::JobSpec spec) {
  if (domains_.empty()) throw std::logic_error("Federation::submit_job: no domains");
  if (job_domain_.count(spec.id) > 0) {
    throw std::invalid_argument("Federation::submit_job: duplicate job id");
  }
  std::size_t index = router_->route_job(spec, status(engine_.now()));
  if (index >= domains_.size()) {
    throw std::logic_error("DomainRouter::route_job: index out of range");
  }
  const util::JobId id = spec.id;
  const util::CpuMhz max_speed = spec.max_speed;
  Domain& d = *domains_[index];
  d.world().submit_job(std::move(spec));
  d.account_job_added(max_speed);
  job_domain_.emplace(id, index);
  if (obs_.trace != nullptr) {
    obs_.trace->instant(obs_.pid, obs::Lane::kRouter, "route_job", engine_.now().get(),
                        {{"job", static_cast<double>(id.get())},
                         {"domain", static_cast<double>(index)},
                         {"demand_mhz", max_speed.get()}});
  }
  if (routed_jobs_metric_ != nullptr) routed_jobs_metric_->inc();
  return d;
}

workload::Job Federation::detach_job(util::JobId id) {
  const std::size_t from = job_domain(id);
  Domain& d = *domains_[from];
  workload::Job job = d.world().extract_job(id);
  d.account_job_removed(job.spec().max_speed);
  return job;
}

void Federation::attach_job(std::size_t to, workload::Job job) {
  if (to >= domains_.size()) {
    throw std::out_of_range("Federation::attach_job: domain index out of range");
  }
  const util::JobId id = job.id();
  const util::CpuMhz max_speed = job.spec().max_speed;
  Domain& d = *domains_[to];
  d.world().adopt_job(std::move(job));
  d.account_job_added(max_speed);
  job_domain_[id] = to;
}

std::size_t Federation::job_domain(util::JobId id) const {
  auto it = job_domain_.find(id);
  if (it == job_domain_.end()) {
    throw std::out_of_range("Federation::job_domain: unknown job id");
  }
  return it->second;
}

std::vector<long> Federation::jobs_per_domain() const {
  std::vector<long> counts(domains_.size(), 0);
  for (const auto& kv : job_domain_) ++counts[kv.second];
  return counts;
}

void Federation::set_domain_weight(std::size_t i, double weight) {
  if (weight < 0.0 || weight > 1.0) {
    throw std::invalid_argument("Federation::set_domain_weight: weight must be in [0, 1]");
  }
  const double old_weight = domain(i).weight();
  domain(i).set_weight(weight);
  if (obs_.trace != nullptr) {
    obs_.trace->instant(obs_.pid, obs::Lane::kRouter, "domain_weight", engine_.now().get(),
                        {{"domain", static_cast<double>(i)},
                         {"old", old_weight},
                         {"new", weight}});
  }
  // Local controllers pick the re-split up at their next cycle, each at
  // its own phase.
  resplit_demand();
  if (weight_observer_) weight_observer_(i, old_weight, weight);
}

void Federation::resplit_demand() {
  // Re-split every app's demand under the current weights (one status
  // snapshot serves all apps). Diffed: a domain whose share did not move
  // keeps its trace view untouched — an identical-factor replacement
  // would alias the same breakpoints anyway — so a weight event costs
  // only the splits it actually changed. The scaled() views themselves
  // are O(1) (shared breakpoints), not deep copies.
  const std::vector<DomainStatus> st = status(engine_.now());
  if (obs_.trace != nullptr) {
    obs_.trace->instant(obs_.pid, obs::Lane::kRouter, "resplit_demand", engine_.now().get(),
                        {{"apps", static_cast<double>(apps_.size())}});
  }
  for (auto& app : apps_) {
    std::vector<double> shares = normalized_shares(app.spec, st);
    for (auto& d : domains_) {
      const std::size_t i = d->index();
      if (shares[i] == app.shares[i]) continue;
      d->world().app_mut(app.spec.id).set_trace(app.trace.scaled(shares[i]));
    }
    app.shares = std::move(shares);
  }
}

void Federation::start() {
  if (started_) throw std::logic_error("Federation::start: already started");
  started_ = true;
  const auto n = static_cast<double>(domains_.size());
  for (auto& d : domains_) {
    core::PlacementController& ctrl = d->controller();
    if (d->auto_stagger() && ctrl.config().first_cycle_at.get() == 0.0 && d->index() > 0) {
      const util::Seconds offset =
          ctrl.config().cycle * (static_cast<double>(d->index()) / n);
      ctrl.set_first_cycle_at(engine_.now() + offset);
    }
    ctrl.start();
  }
}

std::size_t Federation::total_submitted() const {
  std::size_t n = 0;
  for (const auto& d : domains_) n += d->world().submitted_count();
  return n;
}

std::size_t Federation::total_completed() const {
  std::size_t n = 0;
  for (const auto& d : domains_) n += d->world().completed_count();
  return n;
}

util::CpuMhz Federation::total_capacity() const {
  util::CpuMhz total{0.0};
  for (const auto& d : domains_) total += d->total_cpu();
  return total;
}

std::vector<DomainStatus> Federation::status(util::Seconds now) const {
  std::vector<DomainStatus> out;
  out.reserve(domains_.size());
  for (const auto& d : domains_) {
    DomainStatus s;
    s.index = d->index();
    s.weight = d->weight();
    s.capacity = d->total_cpu();
    s.effective = d->effective_cpu();
    s.offered_load = d->offered_cpu_load(now);
    s.active_jobs = d->active_job_count();
    if (transfer_queue_probe_) s.outbound_transfers_queued = transfer_queue_probe_(d->index());
    if (power_probe_) s.power_draw_w = power_probe_(d->index());
    // Per-class headroom for constraint-aware routing; scalar domains
    // leave both vectors empty and routers fall back to `effective`.
    const auto& reg = d->world().cluster().classes();
    if (reg.explicit_classes()) {
      s.classes = reg.classes();
      const auto by_class = d->world().cluster().placeable_capacity_by_class();
      s.class_headroom.reserve(by_class.size());
      for (const auto& r : by_class) s.class_headroom.push_back(r.cpu * d->weight());
    }
    out.push_back(s);
  }
  return out;
}

}  // namespace heteroplace::federation
