#include "federation/router.hpp"

#include <cstdint>
#include <limits>
#include <stdexcept>

namespace heteroplace::federation {

util::CpuMhz DomainStatus::effective_for(const cluster::ConstraintSet& c) const {
  if (c.empty() || classes.empty()) return effective;
  util::CpuMhz sum{0.0};
  for (std::size_t i = 0; i < classes.size(); ++i) {
    if (c.admits(classes[i])) sum += class_headroom[i];
  }
  return sum;
}

namespace {

/// Constraint-weighted capacity shares: proportional to each domain's
/// effective capacity on admitting machine classes; all-zero when every
/// domain is drained or incompatible (the federation's normalizer then
/// falls back to an even split). An empty constraint reproduces the
/// pre-class shares exactly.
std::vector<double> capacity_shares(const std::vector<DomainStatus>& domains,
                                    const cluster::ConstraintSet& c) {
  std::vector<double> shares(domains.size(), 0.0);
  double total = 0.0;
  for (const auto& d : domains) total += d.effective_for(c).get();
  if (total <= 0.0) return shares;
  for (std::size_t i = 0; i < domains.size(); ++i) {
    shares[i] = domains[i].effective_for(c).get() / total;
  }
  return shares;
}

/// SplitMix64 finalizer: a stable, well-mixed hash of a job id.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

std::size_t LeastLoadedRouter::route_job(const workload::JobSpec& spec,
                                         const std::vector<DomainStatus>& domains) {
  std::size_t best = 0;
  double best_load = std::numeric_limits<double>::infinity();
  bool any_healthy = false;
  for (const auto& d : domains) {
    // Drained or constraint-incompatible: skip unless all are.
    const double eligible = d.effective_for(spec.constraint).get();
    if (eligible <= 0.0) continue;
    any_healthy = true;
    const double load = d.offered_load.get() / eligible;
    if (load < best_load) {
      best_load = load;
      best = d.index;
    }
  }
  if (!any_healthy) return 0;  // everything drained: keep determinism
  return best;
}

std::vector<double> LeastLoadedRouter::demand_shares(const workload::TxAppSpec& app,
                                                     const std::vector<DomainStatus>& domains) {
  return capacity_shares(domains, app.constraint);
}

std::size_t CapacityWeightedRouter::route_job(const workload::JobSpec& spec,
                                              const std::vector<DomainStatus>& domains) {
  credit_.resize(domains.size(), 0.0);
  const auto shares = capacity_shares(domains, spec.constraint);
  double total_share = 0.0;
  for (double s : shares) total_share += s;
  if (total_share <= 0.0) return 0;  // everything drained
  std::size_t best = domains.size();
  for (std::size_t i = 0; i < domains.size(); ++i) {
    if (shares[i] <= 0.0) {
      // Drained: forfeit any accumulated entitlement so stale credit
      // cannot route work here, and start fresh on recovery.
      credit_[i] = 0.0;
      continue;
    }
    credit_[i] += shares[i];
    if (best == domains.size() || credit_[i] > credit_[best]) best = i;
  }
  credit_[best] -= 1.0;
  return best;
}

std::vector<double> CapacityWeightedRouter::demand_shares(
    const workload::TxAppSpec& app, const std::vector<DomainStatus>& domains) {
  return capacity_shares(domains, app.constraint);
}

std::size_t StickyRouter::route_job(const workload::JobSpec& spec,
                                    const std::vector<DomainStatus>& domains) {
  const std::size_t n = domains.size();
  const std::size_t home = static_cast<std::size_t>(mix(spec.id.get()) % n);
  // Linear probe from the home index so a drained (or incompatible)
  // domain's jobs land on a stable fallback rather than scattering.
  for (std::size_t probe = 0; probe < n; ++probe) {
    const std::size_t i = (home + probe) % n;
    if (domains[i].effective_for(spec.constraint).get() > 0.0) return i;
  }
  return home;  // everything drained
}

std::vector<double> StickyRouter::demand_shares(const workload::TxAppSpec& app,
                                                const std::vector<DomainStatus>& domains) {
  const std::size_t n = domains.size();
  std::vector<double> shares(n, 0.0);
  const std::size_t home = static_cast<std::size_t>(app.id.get() % n);
  for (std::size_t probe = 0; probe < n; ++probe) {
    const std::size_t i = (home + probe) % n;
    if (domains[i].effective_for(app.constraint).get() > 0.0) {
      shares[i] = 1.0;
      return shares;
    }
  }
  shares[home] = 1.0;  // everything drained
  return shares;
}

std::unique_ptr<DomainRouter> make_router(const std::string& name) {
  if (name == "least-loaded") return std::make_unique<LeastLoadedRouter>();
  if (name == "capacity-weighted") return std::make_unique<CapacityWeightedRouter>();
  if (name == "sticky") return std::make_unique<StickyRouter>();
  throw std::invalid_argument("unknown domain router: " + name);
}

}  // namespace heteroplace::federation
