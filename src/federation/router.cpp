#include "federation/router.hpp"

#include <cstdint>
#include <limits>
#include <stdexcept>

namespace heteroplace::federation {

namespace {

/// Effective-capacity-proportional shares; all-zero when every domain is
/// drained (the federation's normalizer then falls back to an even split).
std::vector<double> capacity_shares(const std::vector<DomainStatus>& domains) {
  std::vector<double> shares(domains.size(), 0.0);
  double total = 0.0;
  for (const auto& d : domains) total += d.effective.get();
  if (total <= 0.0) return shares;
  for (std::size_t i = 0; i < domains.size(); ++i) {
    shares[i] = domains[i].effective.get() / total;
  }
  return shares;
}

/// SplitMix64 finalizer: a stable, well-mixed hash of a job id.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

std::size_t LeastLoadedRouter::route_job(const workload::JobSpec&,
                                         const std::vector<DomainStatus>& domains) {
  std::size_t best = 0;
  double best_load = std::numeric_limits<double>::infinity();
  bool any_healthy = false;
  for (const auto& d : domains) {
    if (d.effective.get() <= 0.0) continue;  // drained: skip unless all are
    any_healthy = true;
    const double load = d.offered_load.get() / d.effective.get();
    if (load < best_load) {
      best_load = load;
      best = d.index;
    }
  }
  if (!any_healthy) return 0;  // everything drained: keep determinism
  return best;
}

std::vector<double> LeastLoadedRouter::demand_shares(const workload::TxAppSpec&,
                                                     const std::vector<DomainStatus>& domains) {
  return capacity_shares(domains);
}

std::size_t CapacityWeightedRouter::route_job(const workload::JobSpec&,
                                              const std::vector<DomainStatus>& domains) {
  credit_.resize(domains.size(), 0.0);
  const auto shares = capacity_shares(domains);
  double total_share = 0.0;
  for (double s : shares) total_share += s;
  if (total_share <= 0.0) return 0;  // everything drained
  std::size_t best = domains.size();
  for (std::size_t i = 0; i < domains.size(); ++i) {
    if (shares[i] <= 0.0) {
      // Drained: forfeit any accumulated entitlement so stale credit
      // cannot route work here, and start fresh on recovery.
      credit_[i] = 0.0;
      continue;
    }
    credit_[i] += shares[i];
    if (best == domains.size() || credit_[i] > credit_[best]) best = i;
  }
  credit_[best] -= 1.0;
  return best;
}

std::vector<double> CapacityWeightedRouter::demand_shares(
    const workload::TxAppSpec&, const std::vector<DomainStatus>& domains) {
  return capacity_shares(domains);
}

std::size_t StickyRouter::route_job(const workload::JobSpec& spec,
                                    const std::vector<DomainStatus>& domains) {
  const std::size_t n = domains.size();
  const std::size_t home = static_cast<std::size_t>(mix(spec.id.get()) % n);
  // Linear probe from the home index so a drained domain's jobs land on a
  // stable fallback rather than scattering.
  for (std::size_t probe = 0; probe < n; ++probe) {
    const std::size_t i = (home + probe) % n;
    if (domains[i].effective.get() > 0.0) return i;
  }
  return home;  // everything drained
}

std::vector<double> StickyRouter::demand_shares(const workload::TxAppSpec& app,
                                                const std::vector<DomainStatus>& domains) {
  const std::size_t n = domains.size();
  std::vector<double> shares(n, 0.0);
  const std::size_t home = static_cast<std::size_t>(app.id.get() % n);
  for (std::size_t probe = 0; probe < n; ++probe) {
    const std::size_t i = (home + probe) % n;
    if (domains[i].effective.get() > 0.0) {
      shares[i] = 1.0;
      return shares;
    }
  }
  shares[home] = 1.0;  // everything drained
  return shares;
}

std::unique_ptr<DomainRouter> make_router(const std::string& name) {
  if (name == "least-loaded") return std::make_unique<LeastLoadedRouter>();
  if (name == "capacity-weighted") return std::make_unique<CapacityWeightedRouter>();
  if (name == "sticky") return std::make_unique<StickyRouter>();
  throw std::invalid_argument("unknown domain router: " + name);
}

}  // namespace heteroplace::federation
