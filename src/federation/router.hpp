#pragma once

// Cross-domain workload routing.
//
// A federated cluster receives one workload stream (job arrivals plus
// transactional demand) but runs several independent controller domains.
// The DomainRouter decides, per arriving job, which domain hosts it, and,
// per transactional app, how the app's offered load is split into the
// per-domain demand traces the local controllers see.
//
// Routers are deterministic: given the same status sequence they make the
// same decisions, so federated experiments replay exactly.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "cluster/machine_class.hpp"
#include "util/units.hpp"
#include "workload/job.hpp"
#include "workload/transactional.hpp"

namespace heteroplace::federation {

/// Read-only per-domain signals routers decide on. `weight` is the
/// operator-set health multiplier (1 = healthy, 0 = drained); routers see
/// capacity both raw and weight-scaled.
struct DomainStatus {
  std::size_t index{0};
  double weight{1.0};
  util::CpuMhz capacity{0.0};      // raw cluster CPU (parked nodes included)
  /// Placeable capacity × weight: parked/transitioning nodes excluded
  /// and P-state scaling applied, so a consolidated domain does not
  /// masquerade as headroom. Equals capacity × weight at full power.
  util::CpuMhz effective{0.0};
  util::CpuMhz offered_load{0.0};  // active-job speed caps + tx offered CPU
  std::size_t active_jobs{0};
  /// Outbound migration transfers queued behind this domain's contended
  /// links (0 when migration is off; see Federation::set_transfer_queue_probe).
  std::size_t outbound_transfers_queued{0};
  /// Live power draw of the domain's cluster in watts (0 when the power
  /// subsystem is off; see Federation::set_power_probe). Energy-aware
  /// routers can prefer domains with headroom under their power caps.
  double power_draw_w{0.0};
  /// Machine-class table and per-class weight-scaled placeable CPU
  /// (parallel vectors indexed by ClassId). Both empty when the domain's
  /// cluster has no explicit classes — the scalar case pays nothing and
  /// routers fall back to `effective` unchanged.
  std::vector<cluster::MachineClass> classes;
  std::vector<util::CpuMhz> class_headroom;

  /// Weight-scaled placeable CPU on machines admitted by `c`. Equals
  /// `effective` for an empty constraint or a scalar domain, so
  /// unconstrained routing is bit-identical to before classes existed.
  [[nodiscard]] util::CpuMhz effective_for(const cluster::ConstraintSet& c) const;
};

class DomainRouter {
 public:
  virtual ~DomainRouter() = default;

  /// Pick the domain that hosts `spec`. `domains` is never empty; the
  /// returned index must be < domains.size().
  [[nodiscard]] virtual std::size_t route_job(const workload::JobSpec& spec,
                                              const std::vector<DomainStatus>& domains) = 0;

  /// Per-domain fractions of a transactional app's demand. Entries must
  /// be nonnegative; the federation normalizes them to sum to 1 (an
  /// all-zero vector falls back to an even split).
  [[nodiscard]] virtual std::vector<double> demand_shares(
      const workload::TxAppSpec& app, const std::vector<DomainStatus>& domains) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Jobs go to the domain with the most effective headroom relative to its
/// capacity (lowest offered_load / effective); transactional demand is
/// split proportionally to effective capacity. Ties break toward the
/// lowest index.
class LeastLoadedRouter final : public DomainRouter {
 public:
  [[nodiscard]] std::size_t route_job(const workload::JobSpec& spec,
                                      const std::vector<DomainStatus>& domains) override;
  [[nodiscard]] std::vector<double> demand_shares(
      const workload::TxAppSpec& app, const std::vector<DomainStatus>& domains) override;
  [[nodiscard]] std::string name() const override { return "least-loaded"; }
};

/// Smooth weighted round-robin: over any window, each domain receives a
/// job count proportional to its effective capacity, without consulting
/// load feedback. Transactional demand is split proportionally to
/// effective capacity.
class CapacityWeightedRouter final : public DomainRouter {
 public:
  [[nodiscard]] std::size_t route_job(const workload::JobSpec& spec,
                                      const std::vector<DomainStatus>& domains) override;
  [[nodiscard]] std::vector<double> demand_shares(
      const workload::TxAppSpec& app, const std::vector<DomainStatus>& domains) override;
  [[nodiscard]] std::string name() const override { return "capacity-weighted"; }

 private:
  std::vector<double> credit_;  // accumulated fractional entitlement
};

/// Sticky affinity: a job is pinned to a domain by a stable hash of its
/// id, and an app's demand goes entirely to its home domain (id modulo
/// domain count) — data-gravity placement. Drained domains (weight 0)
/// fall through to the next healthy index.
class StickyRouter final : public DomainRouter {
 public:
  [[nodiscard]] std::size_t route_job(const workload::JobSpec& spec,
                                      const std::vector<DomainStatus>& domains) override;
  [[nodiscard]] std::vector<double> demand_shares(
      const workload::TxAppSpec& app, const std::vector<DomainStatus>& domains) override;
  [[nodiscard]] std::string name() const override { return "sticky"; }
};

/// Factory by config name: "least-loaded", "capacity-weighted", "sticky".
/// Throws std::invalid_argument on an unknown name.
[[nodiscard]] std::unique_ptr<DomainRouter> make_router(const std::string& name);

}  // namespace heteroplace::federation
