#pragma once

// A controller domain: one shard of a federated cluster.
//
// A domain is a datacenter / availability zone with its own World (node
// pool, locally-routed jobs, locally-split transactional demand) and its
// own PlacementController + executor, all sharing the federation's single
// deterministic engine. The per-domain control path — equalizer, solver,
// executor — is exactly the single-cluster code, unchanged; the federation
// only decides which domain each unit of work lands in.

#include <map>
#include <memory>
#include <string>
#include <utility>

#include "core/controller.hpp"
#include "core/world.hpp"
#include "sim/engine.hpp"

namespace heteroplace::federation {

class Domain {
 public:
  Domain(std::size_t index, std::string name, sim::Engine& engine,
         std::unique_ptr<core::PlacementPolicy> policy, cluster::ActionLatencies latencies = {},
         core::ControllerConfig config = {}, bool auto_stagger = true)
      : index_(index),
        name_(std::move(name)),
        auto_stagger_(auto_stagger),
        controller_(std::make_unique<core::PlacementController>(engine, world_, std::move(policy),
                                                                latencies, config)) {}

  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;

  [[nodiscard]] std::size_t index() const { return index_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  [[nodiscard]] core::World& world() { return world_; }
  [[nodiscard]] const core::World& world() const { return world_; }
  [[nodiscard]] core::PlacementController& controller() { return *controller_; }
  [[nodiscard]] const core::PlacementController& controller() const { return *controller_; }

  /// Router health multiplier in [0, 1]: 1 = healthy, 0 = drained.
  /// Brownouts are modeled by lowering it (see Federation::set_domain_weight).
  [[nodiscard]] double weight() const { return weight_; }
  void set_weight(double w) { weight_ = w; }

  /// Raw cluster CPU capacity (parked nodes included).
  [[nodiscard]] util::CpuMhz total_cpu() const { return world_.cluster().total_capacity().cpu; }
  /// CPU placement can actually use right now: active nodes only,
  /// P-state-scaled. Bit-identical to total_cpu() while the power
  /// subsystem is idle or disabled.
  [[nodiscard]] util::CpuMhz placeable_cpu() const {
    return world_.cluster().placeable_capacity().cpu;
  }
  /// Weight-scaled placeable capacity — what routers treat as available.
  /// Parked capacity is excluded: a mostly-asleep domain must not look
  /// like headroom to the router or the rebalance policy (its wake
  /// latency is the consolidation policy's business, not theirs).
  [[nodiscard]] util::CpuMhz effective_cpu() const { return placeable_cpu() * weight_; }

  /// CPU the domain's current workload could consume: active jobs at
  /// their speed caps plus the transactional offered load λ(t)·d. The
  /// job part is answered from incrementally maintained aggregates
  /// (updated on submit / completion / cross-domain handoff) so the
  /// router's per-arrival status snapshot does not rescan every job.
  [[nodiscard]] util::CpuMhz offered_cpu_load(util::Seconds now) const;

  /// Same quantity recomputed from scratch over the job population —
  /// the reference the incremental aggregates are pinned against in
  /// tests (and nothing else should call; it is O(jobs)).
  [[nodiscard]] util::CpuMhz offered_cpu_load_recomputed(util::Seconds now) const;

  [[nodiscard]] std::size_t active_job_count() const {
    return static_cast<std::size_t>(active_jobs_);
  }

  /// Completion hook for experiment drivers. The executor's raw callback
  /// slot is owned by the federation (it maintains the load aggregates);
  /// user callbacks register here and are forwarded synchronously.
  void set_completion_callback(core::ActionExecutor::JobCompletionCallback cb) {
    user_completion_ = std::move(cb);
  }

  // --- incremental load accounting (maintained by Federation) ---------------

  /// A job entered this domain's world (routed arrival or migration attach).
  void account_job_added(util::CpuMhz max_speed);
  /// A job left this domain's world (completion or migration detach).
  void account_job_removed(util::CpuMhz max_speed);

  /// Whether Federation::start may assign this domain its default phase
  /// offset. False when the caller fixed first_cycle_at explicitly
  /// (including an explicit zero).
  [[nodiscard]] bool auto_stagger() const { return auto_stagger_; }

 private:
  friend class Federation;  // wires the executor completion slot

  std::size_t index_;
  std::string name_;
  double weight_{1.0};
  bool auto_stagger_;
  core::World world_;  // must outlive controller_ (which holds a reference)
  std::unique_ptr<core::PlacementController> controller_;
  core::ActionExecutor::JobCompletionCallback user_completion_;

  // Incrementally maintained job-load aggregates. The speed histogram
  // (distinct max_speed → active count) makes the offered-load sum exact
  // — removing a job cannot perturb the low-order bits of the remaining
  // sum the way running subtraction on a double accumulator would.
  long active_jobs_{0};
  std::map<double, long> speed_hist_;
};

}  // namespace heteroplace::federation
