#include "federation/domain.hpp"

#include <stdexcept>

namespace heteroplace::federation {

util::CpuMhz Domain::offered_cpu_load(util::Seconds now) const {
  double jobs = 0.0;
  for (const auto& [speed, count] : speed_hist_) {
    jobs += speed * static_cast<double>(count);
  }
  util::CpuMhz load{jobs};
  for (const workload::TxApp& app : world_.apps()) {
    load += app.offered_load(now);
  }
  return load;
}

util::CpuMhz Domain::offered_cpu_load_recomputed(util::Seconds now) const {
  // Reference implementation (the seed's per-arrival rescan). Counts held
  // jobs too: they still occupy this world until the handoff detaches
  // them, matching when account_job_removed fires.
  util::CpuMhz load{0.0};
  for (util::JobId id : world_.job_order()) {
    const workload::Job& job = world_.job(id);
    if (job.phase() != workload::JobPhase::kCompleted) load += job.spec().max_speed;
  }
  for (const workload::TxApp& app : world_.apps()) {
    load += app.offered_load(now);
  }
  return load;
}

void Domain::account_job_added(util::CpuMhz max_speed) {
  ++active_jobs_;
  ++speed_hist_[max_speed.get()];
}

void Domain::account_job_removed(util::CpuMhz max_speed) {
  auto it = speed_hist_.find(max_speed.get());
  if (it == speed_hist_.end() || active_jobs_ <= 0) {
    throw std::logic_error("Domain::account_job_removed: aggregate underflow");
  }
  --active_jobs_;
  if (--it->second == 0) speed_hist_.erase(it);
}

}  // namespace heteroplace::federation
