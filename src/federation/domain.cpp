#include "federation/domain.hpp"

namespace heteroplace::federation {

util::CpuMhz Domain::offered_cpu_load(util::Seconds now) const {
  util::CpuMhz load{0.0};
  for (const workload::Job* job : world_.active_jobs()) {
    load += job->spec().max_speed;
  }
  for (const workload::TxApp& app : world_.apps()) {
    load += app.offered_load(now);
  }
  return load;
}

std::size_t Domain::active_job_count() const {
  return world_.submitted_count() - world_.completed_count();
}

}  // namespace heteroplace::federation
