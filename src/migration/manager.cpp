#include "migration/manager.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace heteroplace::migration {

namespace {
using workload::JobPhase;
}  // namespace

void MigrationManager::set_obs(const obs::ObsContext& ctx) {
  obs_ = ctx;
  if (obs_.metrics != nullptr) {
    started_metric_ = &obs_.metrics->counter("migration_moves_started_total",
                                             "Cross-domain moves initiated");
    completed_metric_ = &obs_.metrics->counter("migration_moves_completed_total",
                                               "Cross-domain moves attached at destination");
  }
}

void MigrationManager::trace_flight_end(util::JobId id, const char* outcome) {
  if (obs_.trace == nullptr) return;
  const double t = fed_.engine().now().get();
  obs_.trace->instant(obs_.pid, obs::Lane::kMigration, outcome, t,
                      {{"job", static_cast<double>(id.get())}});
  obs_.trace->async_end(obs_.pid, obs::Lane::kMigration, "migration", id.get(), t);
}

MigrationManager::MigrationManager(federation::Federation& fed, TransferModel model,
                                   std::unique_ptr<MigrationPolicy> policy,
                                   MigrationOptions options)
    : fed_(fed),
      scheduler_(fed.engine(), std::move(model), options.link_mode),
      policy_(std::move(policy)),
      options_(options) {
  if (!policy_) throw std::invalid_argument("MigrationManager: policy must not be null");
  if (options_.check_interval.get() <= 0.0) {
    throw std::invalid_argument("MigrationManager: check_interval must be positive");
  }
  if (options_.max_moves_per_tick < 1) {
    throw std::invalid_argument("MigrationManager: max_moves_per_tick must be >= 1");
  }
  if (options_.max_transfer_retries < 0) {
    throw std::invalid_argument("MigrationManager: max_transfer_retries must be nonnegative");
  }
  if (options_.retry_backoff_s <= 0.0) {
    throw std::invalid_argument("MigrationManager: retry_backoff_s must be positive");
  }
  if (options_.retry_backoff_max_s < options_.retry_backoff_s) {
    throw std::invalid_argument("MigrationManager: retry_backoff_max_s must be >= retry_backoff_s");
  }
  // Surface per-domain outbound transfer queues in Federation::status so
  // routers/policies (and the fed_* samplers) can observe congestion.
  fed_.set_transfer_queue_probe(
      [this](std::size_t domain) { return scheduler_.queued_from(domain); });
  // A drained domain that recovers keeps its not-yet-shipped jobs: every
  // queued outbound grant is cancelled and those jobs stay put.
  fed_.set_weight_observer([this](std::size_t domain, double old_w, double new_w) {
    if (old_w <= 0.0 && new_w > 0.0) on_domain_recovered(domain);
  });
}

MigrationManager::~MigrationManager() {
  fed_.set_transfer_queue_probe(nullptr);
  fed_.set_weight_observer(nullptr);
}

void MigrationManager::start() {
  if (started_) throw std::logic_error("MigrationManager::start: already started");
  started_ = true;
  // Perpetual evaluation loop, running after the controllers at each
  // shared timestamp (kMigration > kController).
  tick_loop_ = [this] {
    tick();
    fed_.engine().schedule_in(options_.check_interval, sim::EventPriority::kMigration,
                              tick_loop_);
  };
  fed_.engine().schedule_in(options_.check_interval, sim::EventPriority::kMigration, tick_loop_);
}

void MigrationManager::tick() {
  const obs::ScopedTimer tick_timer(obs_.profiler, obs::Phase::kMigrationTick);
  const util::Seconds now = fed_.engine().now();
  // Congestion re-scoring (opt-in): when a pool has a backlog, let cheap
  // images overtake expensive ones — the queue analog of kCost selection.
  if (options_.rescore_queued_transfers) {
    stats_.transfers_rescored += static_cast<long>(
        scheduler_.rescore_queued(2, [this](LinkScheduler::TransferId tid) {
          auto it = transfer_jobs_.find(tid);
          if (it == transfer_jobs_.end()) return std::numeric_limits<double>::infinity();
          return flights_.at(it->second).ckpt.image_size.get();
        }));
  }
  const int budget = options_.max_moves_per_tick - static_cast<int>(flights_.size());
  if (budget <= 0) return;
  const auto status = fed_.status(now);
  for (const MigrationRequest& req : policy_->propose(fed_, status, now, budget)) {
    execute(req);
  }
}

void MigrationManager::execute(const MigrationRequest& req) {
  // Re-validate everything: the policy proposed against a snapshot, and
  // eligibility is the manager's responsibility.
  if (flights_.count(req.job) > 0) return;
  if (req.from == req.to || req.to >= fed_.domain_count()) return;
  if (!fed_.job_routed(req.job) || fed_.job_domain(req.job) != req.from) return;
  if (fed_.domain(req.to).weight() <= 0.0) return;  // never move into a drained domain
  if (!scheduler_.link_up(req.from, req.to)) return;  // link down: re-propose once it heals

  core::World& world = fed_.domain(req.from).world();
  if (!world.job_exists(req.job)) return;
  workload::Job& job = world.job(req.job);
  if (job.held()) return;

  const util::Seconds now = fed_.engine().now();
  const auto trace_start = [&] {
    if (started_metric_ != nullptr) started_metric_->inc();
    if (obs_.trace != nullptr) {
      obs_.trace->async_begin(obs_.pid, obs::Lane::kMigration, "migration", req.job.get(),
                              now.get(),
                              {{"from", static_cast<double>(req.from)},
                               {"to", static_cast<double>(req.to)}});
    }
  };
  switch (job.phase()) {
    case JobPhase::kPending: {
      // Never started: nothing to checkpoint, re-route instantly.
      ++stats_.started;
      ++stats_.in_flight;
      trace_start();
      job.set_held(true);
      flights_.emplace(req.job, Flight{req.from, req.to, MigrationStage::kCheckpointed,
                                       checkpoint_job(job, req.from, now)});
      begin_transfer(req.job);
      break;
    }
    case JobPhase::kRunning: {
      // Hold first so no controller pass resumes or replans the job,
      // then suspend through the source executor (normal latency and
      // action accounting — the modeled checkpoint cost).
      ++stats_.started;
      ++stats_.in_flight;
      trace_start();
      job.set_held(true);
      core::ActionExecutor& exec = fed_.domain(req.from).controller().executor();
      exec.suspend_job_for_migration(req.job);
      flights_.emplace(req.job, Flight{req.from, req.to, MigrationStage::kSuspending, {}});
      const util::JobId id = req.job;
      fed_.engine().schedule_in(exec.latencies().suspend_job, sim::EventPriority::kMigration,
                                [this, id] { begin_transfer(id); });
      break;
    }
    case JobPhase::kSuspended: {
      ++stats_.started;
      ++stats_.in_flight;
      trace_start();
      job.set_held(true);
      flights_.emplace(req.job, Flight{req.from, req.to, MigrationStage::kCheckpointed,
                                       checkpoint_job(job, req.from, now)});
      begin_transfer(req.job);
      break;
    }
    default:
      // Mid-transition: a later tick will re-propose once stable.
      break;
  }
}

void MigrationManager::begin_transfer(util::JobId id) {
  auto it = flights_.find(id);
  if (it == flights_.end()) return;
  Flight& flight = it->second;
  core::World& world = fed_.domain(flight.from).world();
  if (!world.job_exists(id)) {
    flights_.erase(it);
    trace_flight_end(id, "move_orphaned");
    return;
  }
  workload::Job& job = world.job(id);

  if (flight.stage == MigrationStage::kSuspending) {
    if (flight.abort_requested) {
      // The drained source recovered while the suspend was landing:
      // nothing has been detached, so the job simply stays — suspended in
      // its (healthy again) home world, resumed by the local controller's
      // next cycle.
      job.set_held(false);
      ++stats_.cancelled;
      --stats_.in_flight;
      flights_.erase(it);
      trace_flight_end(id, "move_aborted");
      return;
    }
    if (job.phase() != JobPhase::kSuspended) {
      // A node crash tore the job down mid-suspend (it is back in
      // kPending awaiting a restart) — a normal abort, not a bug. Any
      // other phase means a suspend silently failed, which cannot happen.
      if (job.phase() == JobPhase::kPending) {
        ++stats_.cancelled;
      } else {
        util::log_warn() << "migration: job " << id
                         << " not suspended at checkpoint time, abort";
      }
      job.set_held(false);
      --stats_.in_flight;
      flights_.erase(it);
      trace_flight_end(id, "move_aborted");
      return;
    }
    flight.ckpt = checkpoint_job(job, flight.from, fed_.engine().now());
  }
  flight.stage = MigrationStage::kTransferring;

  // Progress-fidelity accounting: exact checkpointing loses nothing, but
  // the metric keeps the claim honest.
  stats_.work_lost_mhz_s += job.done().get() - flight.ckpt.done.get();

  // Retire the source-side VM image and executor bookkeeping, then
  // detach the job from the source world.
  if (job.vm().valid()) {
    world.cluster().set_vm_state(job.vm(), cluster::VmState::kStopped);
  }
  fed_.domain(flight.from).controller().executor().forget_job(id);
  (void)fed_.detach_job(id);  // state travels via the checkpoint

  if (flight.ckpt.image_size.get() <= 0.0) {
    // Never-started jobs ship no image: re-routed synchronously, exactly
    // as the closed-form model priced them (transfer time zero).
    complete_transfer(id);
  } else if (!scheduler_.link_up(flight.from, flight.to)) {
    // The link went down while the suspend landed: the checkpoint is
    // taken and the job detached, so park the flight in retry-wait like
    // any killed transfer (nothing was credited to ship yet).
    schedule_retry(id);
  } else {
    submit_flight(id);
  }
}

void MigrationManager::submit_flight(util::JobId id) {
  Flight& flight = flights_.at(id);
  flight.stage = MigrationStage::kTransferring;
  const LinkScheduler::Grant grant = scheduler_.submit(
      flight.from, flight.to, flight.ckpt.image_size, [this, id] { complete_transfer(id); });
  stats_.bytes_moved_mb += flight.ckpt.image_size.get();
  stats_.transfer_seconds += grant.transfer_s;
  flight.transfer_id = grant.id;
  flight.transfer_s = grant.transfer_s;
  transfer_jobs_.emplace(grant.id, id);
  if (obs_.trace != nullptr) {
    obs_.trace->instant(obs_.pid, obs::Lane::kMigration, "transfer_submit",
                        fed_.engine().now().get(),
                        {{"job", static_cast<double>(id.get())},
                         {"image_mb", flight.ckpt.image_size.get()},
                         {"transfer_s", grant.transfer_s}});
  }
}

void MigrationManager::on_domain_recovered(std::size_t domain) {
  // Collect first: land_back_at_source mutates flights_.
  std::vector<std::pair<util::JobId, bool>> recalls;  // (job, roll_back_stats)
  for (auto& [id, flight] : flights_) {
    if (flight.from != domain) continue;
    switch (flight.stage) {
      case MigrationStage::kSuspending:
        // Abort at the checkpoint step (begin_transfer), where the job
        // is still attached to the source world.
        flight.abort_requested = true;
        break;
      case MigrationStage::kTransferring:
        // Only grants that never reached the wire can be recalled; an
        // image already moving completes at its destination as planned.
        if (flight.transfer_id != 0 && scheduler_.cancel_queued(flight.transfer_id)) {
          recalls.emplace_back(id, true);
        }
        break;
      case MigrationStage::kRetryWait:
        // The healthy-again source is a better home than another backoff
        // round: drop the retry and keep the job (stats were rolled back
        // when the link fault killed the transfer).
        flight.retry.cancel();
        recalls.emplace_back(id, false);
        break;
      case MigrationStage::kCheckpointed:
        break;  // transient within execute(); never observable here
    }
  }
  for (const auto& [id, roll_back] : recalls) land_back_at_source(id, roll_back);
}

void MigrationManager::land_back_at_source(util::JobId id, bool roll_back_stats) {
  auto it = flights_.find(id);
  const Flight flight = it->second;
  flights_.erase(it);
  transfer_jobs_.erase(flight.transfer_id);

  // The image never shipped: roll the shipment accounting back so the
  // stats report what actually crossed the wire.
  if (roll_back_stats) {
    stats_.bytes_moved_mb -= flight.ckpt.image_size.get();
    stats_.transfer_seconds -= flight.transfer_s;
  }

  // Land the checkpoint back on the source's disk — the same restore path
  // a completed transfer takes at its destination, minus the migration
  // count (the job never left home).
  const util::Seconds now = fed_.engine().now();
  workload::Job job = restore_job(flight.ckpt, now);
  core::World& world = fed_.domain(flight.from).world();
  const util::VmId vm = world.cluster().create_job_vm(id, flight.ckpt.spec.memory);
  world.cluster().set_vm_state(vm, cluster::VmState::kSuspended);
  job.bind_vm(vm);
  fed_.attach_job(flight.from, std::move(job));
  ++stats_.cancelled;
  --stats_.in_flight;
  trace_flight_end(id, "move_landed_back");
}

void MigrationManager::schedule_retry(util::JobId id) {
  Flight& flight = flights_.at(id);
  if (flight.attempts >= options_.max_transfer_retries) {
    ++stats_.transfer_failbacks;
    land_back_at_source(id, /*roll_back_stats=*/false);
    return;
  }
  flight.stage = MigrationStage::kRetryWait;
  flight.transfer_id = 0;
  flight.transfer_s = 0.0;
  const double backoff = std::min(
      options_.retry_backoff_s * std::pow(2.0, static_cast<double>(flight.attempts)),
      options_.retry_backoff_max_s);
  ++flight.attempts;
  if (obs_.trace != nullptr) {
    obs_.trace->instant(obs_.pid, obs::Lane::kMigration, "transfer_retry_wait",
                        fed_.engine().now().get(),
                        {{"job", static_cast<double>(id.get())},
                         {"attempt", static_cast<double>(flight.attempts)},
                         {"backoff_s", backoff}});
  }
  flight.retry = fed_.engine().schedule_in(util::Seconds{backoff}, sim::EventPriority::kMigration,
                                           [this, id] { retry_transfer(id); });
}

void MigrationManager::retry_transfer(util::JobId id) {
  auto it = flights_.find(id);
  if (it == flights_.end()) return;
  Flight& flight = it->second;
  if (fed_.domain(flight.to).weight() <= 0.0) {
    // Destination went dark while we backed off: the source keeps the job.
    land_back_at_source(id, /*roll_back_stats=*/false);
    return;
  }
  if (!scheduler_.link_up(flight.from, flight.to)) {
    schedule_retry(id);  // still down: next backoff step, or failback
    return;
  }
  ++stats_.transfer_retries;
  submit_flight(id);
}

std::size_t MigrationManager::apply_link_fault(std::size_t from, std::size_t to,
                                               double bandwidth_factor) {
  const std::vector<LinkScheduler::TransferId> killed =
      scheduler_.fail_link(from, to, bandwidth_factor);
  for (LinkScheduler::TransferId tid : killed) {
    auto jt = transfer_jobs_.find(tid);
    if (jt == transfer_jobs_.end()) continue;
    const util::JobId id = jt->second;
    transfer_jobs_.erase(jt);
    Flight& flight = flights_.at(id);
    // Nothing (fully) crossed the wire: undo the shipment accounting
    // credited at submission, then back off and retry.
    stats_.bytes_moved_mb -= flight.ckpt.image_size.get();
    stats_.transfer_seconds -= flight.transfer_s;
    schedule_retry(id);
  }
  return killed.size();
}

void MigrationManager::clear_link_fault(std::size_t from, std::size_t to) {
  scheduler_.restore_link(from, to);
}

void MigrationManager::complete_transfer(util::JobId id) {
  auto it = flights_.find(id);
  if (it == flights_.end()) return;
  if (options_.align_attach) {
    // Park the arrived image until just before the destination
    // controller's next cycle: the attach fires at kWorkloadArrival,
    // ahead of kController at that timestamp, so the cycle plans the job
    // immediately instead of it sitting suspended until the cycle after.
    // On re-entry at that instant next_cycle_at() == now and we fall
    // through to the attach below. Cross-domain event: unsharded.
    const util::Seconds cycle_at =
        fed_.domain(it->second.to).controller().next_cycle_at();
    if (cycle_at.get() > fed_.engine().now().get()) {
      fed_.engine().schedule_at(cycle_at, sim::EventPriority::kWorkloadArrival,
                                [this, id] { complete_transfer(id); });
      return;
    }
  }
  const Flight flight = it->second;
  flights_.erase(it);
  transfer_jobs_.erase(flight.transfer_id);

  const util::Seconds now = fed_.engine().now();
  workload::Job job = restore_job(flight.ckpt, now);
  if (flight.ckpt.has_image) {
    // Land the image on the destination's disk: a suspended VM record
    // the destination controller resumes through its ordinary path.
    core::World& world = fed_.domain(flight.to).world();
    const util::VmId vm = world.cluster().create_job_vm(id, flight.ckpt.spec.memory);
    world.cluster().set_vm_state(vm, cluster::VmState::kSuspended);
    job.bind_vm(vm);
    job.count_migrate();
  }
  fed_.attach_job(flight.to, std::move(job));
  ++stats_.completed;
  --stats_.in_flight;
  if (completed_metric_ != nullptr) completed_metric_->inc();
  trace_flight_end(id, "move_completed");
}

}  // namespace heteroplace::migration
