#include "migration/manager.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

#include "util/log.hpp"

namespace heteroplace::migration {

namespace {
using workload::JobPhase;
}  // namespace

MigrationManager::MigrationManager(federation::Federation& fed, TransferModel model,
                                   std::unique_ptr<MigrationPolicy> policy,
                                   MigrationOptions options)
    : fed_(fed),
      scheduler_(fed.engine(), std::move(model), options.link_mode),
      policy_(std::move(policy)),
      options_(options) {
  if (!policy_) throw std::invalid_argument("MigrationManager: policy must not be null");
  if (options_.check_interval.get() <= 0.0) {
    throw std::invalid_argument("MigrationManager: check_interval must be positive");
  }
  if (options_.max_moves_per_tick < 1) {
    throw std::invalid_argument("MigrationManager: max_moves_per_tick must be >= 1");
  }
  // Surface per-domain outbound transfer queues in Federation::status so
  // routers/policies (and the fed_* samplers) can observe congestion.
  fed_.set_transfer_queue_probe(
      [this](std::size_t domain) { return scheduler_.queued_from(domain); });
  // A drained domain that recovers keeps its not-yet-shipped jobs: every
  // queued outbound grant is cancelled and those jobs stay put.
  fed_.set_weight_observer([this](std::size_t domain, double old_w, double new_w) {
    if (old_w <= 0.0 && new_w > 0.0) on_domain_recovered(domain);
  });
}

MigrationManager::~MigrationManager() {
  fed_.set_transfer_queue_probe(nullptr);
  fed_.set_weight_observer(nullptr);
}

void MigrationManager::start() {
  if (started_) throw std::logic_error("MigrationManager::start: already started");
  started_ = true;
  // Perpetual evaluation loop, running after the controllers at each
  // shared timestamp (kMigration > kController).
  tick_loop_ = [this] {
    tick();
    fed_.engine().schedule_in(options_.check_interval, sim::EventPriority::kMigration,
                              tick_loop_);
  };
  fed_.engine().schedule_in(options_.check_interval, sim::EventPriority::kMigration, tick_loop_);
}

void MigrationManager::tick() {
  const util::Seconds now = fed_.engine().now();
  const int budget = options_.max_moves_per_tick - static_cast<int>(flights_.size());
  if (budget <= 0) return;
  const auto status = fed_.status(now);
  for (const MigrationRequest& req : policy_->propose(fed_, status, now, budget)) {
    execute(req);
  }
}

void MigrationManager::execute(const MigrationRequest& req) {
  // Re-validate everything: the policy proposed against a snapshot, and
  // eligibility is the manager's responsibility.
  if (flights_.count(req.job) > 0) return;
  if (req.from == req.to || req.to >= fed_.domain_count()) return;
  if (!fed_.job_routed(req.job) || fed_.job_domain(req.job) != req.from) return;
  if (fed_.domain(req.to).weight() <= 0.0) return;  // never move into a drained domain

  core::World& world = fed_.domain(req.from).world();
  if (!world.job_exists(req.job)) return;
  workload::Job& job = world.job(req.job);
  if (job.held()) return;

  const util::Seconds now = fed_.engine().now();
  switch (job.phase()) {
    case JobPhase::kPending: {
      // Never started: nothing to checkpoint, re-route instantly.
      ++stats_.started;
      ++stats_.in_flight;
      job.set_held(true);
      flights_.emplace(req.job, Flight{req.from, req.to, MigrationStage::kCheckpointed,
                                       checkpoint_job(job, req.from, now)});
      begin_transfer(req.job);
      break;
    }
    case JobPhase::kRunning: {
      // Hold first so no controller pass resumes or replans the job,
      // then suspend through the source executor (normal latency and
      // action accounting — the modeled checkpoint cost).
      ++stats_.started;
      ++stats_.in_flight;
      job.set_held(true);
      core::ActionExecutor& exec = fed_.domain(req.from).controller().executor();
      exec.suspend_job_for_migration(req.job);
      flights_.emplace(req.job, Flight{req.from, req.to, MigrationStage::kSuspending, {}});
      const util::JobId id = req.job;
      fed_.engine().schedule_in(exec.latencies().suspend_job, sim::EventPriority::kMigration,
                                [this, id] { begin_transfer(id); });
      break;
    }
    case JobPhase::kSuspended: {
      ++stats_.started;
      ++stats_.in_flight;
      job.set_held(true);
      flights_.emplace(req.job, Flight{req.from, req.to, MigrationStage::kCheckpointed,
                                       checkpoint_job(job, req.from, now)});
      begin_transfer(req.job);
      break;
    }
    default:
      // Mid-transition: a later tick will re-propose once stable.
      break;
  }
}

void MigrationManager::begin_transfer(util::JobId id) {
  auto it = flights_.find(id);
  if (it == flights_.end()) return;
  Flight& flight = it->second;
  core::World& world = fed_.domain(flight.from).world();
  if (!world.job_exists(id)) {
    flights_.erase(it);
    return;
  }
  workload::Job& job = world.job(id);

  if (flight.stage == MigrationStage::kSuspending) {
    if (flight.abort_requested) {
      // The drained source recovered while the suspend was landing:
      // nothing has been detached, so the job simply stays — suspended in
      // its (healthy again) home world, resumed by the local controller's
      // next cycle.
      job.set_held(false);
      ++stats_.cancelled;
      --stats_.in_flight;
      flights_.erase(it);
      return;
    }
    if (job.phase() != JobPhase::kSuspended) {
      // Suspend did not land (should not happen: suspends cannot fail).
      util::log_warn() << "migration: job " << id << " not suspended at checkpoint time, abort";
      job.set_held(false);
      --stats_.in_flight;
      flights_.erase(it);
      return;
    }
    flight.ckpt = checkpoint_job(job, flight.from, fed_.engine().now());
  }
  flight.stage = MigrationStage::kTransferring;

  // Progress-fidelity accounting: exact checkpointing loses nothing, but
  // the metric keeps the claim honest.
  stats_.work_lost_mhz_s += job.done().get() - flight.ckpt.done.get();

  // Retire the source-side VM image and executor bookkeeping, then
  // detach the job from the source world.
  if (job.vm().valid()) {
    world.cluster().set_vm_state(job.vm(), cluster::VmState::kStopped);
  }
  fed_.domain(flight.from).controller().executor().forget_job(id);
  (void)fed_.detach_job(id);  // state travels via the checkpoint

  stats_.bytes_moved_mb += flight.ckpt.image_size.get();
  if (flight.ckpt.image_size.get() <= 0.0) {
    // Never-started jobs ship no image: re-routed synchronously, exactly
    // as the closed-form model priced them (transfer time zero).
    complete_transfer(id);
  } else {
    const LinkScheduler::Grant grant = scheduler_.submit(
        flight.from, flight.to, flight.ckpt.image_size, [this, id] { complete_transfer(id); });
    stats_.transfer_seconds += grant.transfer_s;
    flight.transfer_id = grant.id;
    flight.transfer_s = grant.transfer_s;
  }
}

void MigrationManager::on_domain_recovered(std::size_t domain) {
  // Collect first: cancel_transfer_to_source mutates flights_.
  std::vector<util::JobId> cancelled_transfers;
  for (auto& [id, flight] : flights_) {
    if (flight.from != domain) continue;
    switch (flight.stage) {
      case MigrationStage::kSuspending:
        // Abort at the checkpoint step (begin_transfer), where the job
        // is still attached to the source world.
        flight.abort_requested = true;
        break;
      case MigrationStage::kTransferring:
        // Only grants that never reached the wire can be recalled; an
        // image already moving completes at its destination as planned.
        if (flight.transfer_id != 0 && scheduler_.cancel_queued(flight.transfer_id)) {
          cancelled_transfers.push_back(id);
        }
        break;
      case MigrationStage::kCheckpointed:
        break;  // transient within execute(); never observable here
    }
  }
  for (util::JobId id : cancelled_transfers) cancel_transfer_to_source(id);
}

void MigrationManager::cancel_transfer_to_source(util::JobId id) {
  auto it = flights_.find(id);
  const Flight flight = it->second;
  flights_.erase(it);

  // The image never shipped: roll the shipment accounting back so the
  // stats report what actually crossed the wire.
  stats_.bytes_moved_mb -= flight.ckpt.image_size.get();
  stats_.transfer_seconds -= flight.transfer_s;

  // Land the checkpoint back on the source's disk — the same restore path
  // a completed transfer takes at its destination, minus the migration
  // count (the job never left home).
  const util::Seconds now = fed_.engine().now();
  workload::Job job = restore_job(flight.ckpt, now);
  core::World& world = fed_.domain(flight.from).world();
  const util::VmId vm = world.cluster().create_job_vm(id, flight.ckpt.spec.memory);
  world.cluster().set_vm_state(vm, cluster::VmState::kSuspended);
  job.bind_vm(vm);
  fed_.attach_job(flight.from, std::move(job));
  ++stats_.cancelled;
  --stats_.in_flight;
}

void MigrationManager::complete_transfer(util::JobId id) {
  auto it = flights_.find(id);
  if (it == flights_.end()) return;
  const Flight flight = it->second;
  flights_.erase(it);

  const util::Seconds now = fed_.engine().now();
  workload::Job job = restore_job(flight.ckpt, now);
  if (flight.ckpt.has_image) {
    // Land the image on the destination's disk: a suspended VM record
    // the destination controller resumes through its ordinary path.
    core::World& world = fed_.domain(flight.to).world();
    const util::VmId vm = world.cluster().create_job_vm(id, flight.ckpt.spec.memory);
    world.cluster().set_vm_state(vm, cluster::VmState::kSuspended);
    job.bind_vm(vm);
    job.count_migrate();
  }
  fed_.attach_job(flight.to, std::move(job));
  ++stats_.completed;
  --stats_.in_flight;
}

}  // namespace heteroplace::migration
