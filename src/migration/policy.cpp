#include "migration/policy.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace heteroplace::migration {

SelectionMode selection_from_string(const std::string& name) {
  if (name == "fifo") return SelectionMode::kFifo;
  if (name == "cost") return SelectionMode::kCost;
  throw std::invalid_argument("unknown selection mode: " + name + " (expected fifo|cost)");
}

namespace {

/// Movable phases: anything stable. Transitioning jobs (starting,
/// suspending, resuming, migrating) are left for a later tick.
bool movable_phase(workload::JobPhase p) {
  return p == workload::JobPhase::kPending || p == workload::JobPhase::kRunning ||
         p == workload::JobPhase::kSuspended;
}

/// Ortigoza-style migration cost ranking. The wire occupancy of a move is
/// proportional to the VM image (≈ the memory reservation; pending jobs
/// have no image and move for free), while the benefit of moving early
/// scales with the work left to run at the destination — so the primary
/// key is image MB per remaining second of full-speed work, ascending.
/// Ties break toward the job with the least SLA slack (it can least
/// afford to wait for a later tick), then toward the lower id so the
/// ranking is a strict total order and proposals replay exactly.
struct CostKey {
  double cost_per_benefit{0.0};
  double slack_s{0.0};
  util::JobId id{};

  bool operator<(const CostKey& o) const {
    if (cost_per_benefit != o.cost_per_benefit) return cost_per_benefit < o.cost_per_benefit;
    if (slack_s != o.slack_s) return slack_s < o.slack_s;
    return id < o.id;
  }
};

CostKey cost_key(const workload::Job& job, util::Seconds now) {
  CostKey key;
  key.id = job.id();
  const double remaining_s =
      job.spec().max_speed.get() > 0.0 ? job.remaining().get() / job.spec().max_speed.get() : 0.0;
  const double image_mb =
      job.phase() == workload::JobPhase::kPending ? 0.0 : job.spec().memory.get();
  key.cost_per_benefit = image_mb / std::max(remaining_s, 1e-9);
  key.slack_s = job.goal_time().get() - now.get() - remaining_s;
  return key;
}

/// A source domain's movable jobs in proposal order: active-job list
/// order for fifo, cost-ranked for cost.
std::vector<const workload::Job*> movable_jobs(const federation::Federation& fed,
                                               std::size_t domain, SelectionMode selection,
                                               util::Seconds now) {
  std::vector<const workload::Job*> jobs;
  for (const workload::Job* job : fed.domain(domain).world().active_jobs()) {
    if (movable_phase(job->phase())) jobs.push_back(job);
  }
  if (selection == SelectionMode::kCost) {
    // Decorate-sort-undecorate: one key per job, not one per comparison.
    std::vector<std::pair<CostKey, const workload::Job*>> ranked;
    ranked.reserve(jobs.size());
    for (const workload::Job* job : jobs) ranked.emplace_back(cost_key(*job, now), job);
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (std::size_t i = 0; i < ranked.size(); ++i) jobs[i] = ranked[i].second;
  }
  return jobs;
}

/// Destination with the most absolute headroom (effective − projected
/// load) among healthy domains, excluding `avoid`; ties break toward the
/// lowest index. Headroom may go negative — a domain already at or over
/// capacity is still accepted, since only weight/effective gate
/// eligibility (evacuation beats staying in a drained domain). Returns
/// status.size() when every candidate is drained or has no effective
/// capacity.
std::size_t best_destination(const std::vector<federation::DomainStatus>& status,
                             const std::vector<double>& projected, std::size_t avoid) {
  std::size_t best = status.size();
  double best_headroom = -std::numeric_limits<double>::infinity();
  for (const auto& d : status) {
    if (d.index == avoid) continue;
    if (d.weight <= 0.0 || d.effective.get() <= 0.0) continue;  // never a drained domain
    const double headroom = d.effective.get() - projected[d.index];
    if (headroom > best_headroom) {
      best_headroom = headroom;
      best = d.index;
    }
  }
  return best;
}

}  // namespace

std::vector<MigrationRequest> DrainPolicy::propose(
    const federation::Federation& fed, const std::vector<federation::DomainStatus>& status,
    util::Seconds now, int budget) {
  std::vector<MigrationRequest> out;
  // Projected offered loads, updated per assignment so one tick's
  // evacuees spread across destinations instead of piling on one.
  std::vector<double> projected(status.size(), 0.0);
  for (const auto& d : status) projected[d.index] = d.offered_load.get();

  for (const auto& d : status) {
    if (d.weight > 0.0) continue;  // only fully drained domains evacuate
    for (const workload::Job* job : movable_jobs(fed, d.index, config_.selection, now)) {
      if (static_cast<int>(out.size()) >= budget) return out;
      const std::size_t to = best_destination(status, projected, d.index);
      // Nowhere healthy for this domain's jobs: give up on this domain
      // only, not the whole pass. Today destination eligibility is
      // source-independent (drained sources are never candidates), so
      // this is equivalent to returning — the break keeps later drained
      // domains from being starved if destination choice ever becomes
      // job- or source-dependent (e.g. memory-fit or per-link gating).
      if (to >= status.size()) break;
      out.push_back({job->id(), d.index, to});
      projected[to] += job->spec().max_speed.get();
      projected[d.index] -= job->spec().max_speed.get();
    }
  }
  return out;
}

std::vector<MigrationRequest> RebalancePolicy::propose(
    const federation::Federation& fed, const std::vector<federation::DomainStatus>& status,
    util::Seconds now, int budget) {
  std::vector<MigrationRequest> out;
  std::vector<double> projected(status.size(), 0.0);
  for (const auto& d : status) projected[d.index] = d.offered_load.get();

  // Per-domain cursor over the (stable) per-source candidate ranking so
  // repeated source picks walk forward instead of re-proposing the same
  // job. Fifo keeps the raw active-job order; cost walks the ranking.
  std::vector<std::vector<const workload::Job*>> jobs(status.size());
  std::vector<bool> jobs_filled(status.size(), false);
  std::vector<std::size_t> cursor(status.size(), 0);

  auto rel_load = [&](std::size_t i) {
    const double eff = status[i].effective.get();
    return eff > 0.0 ? projected[i] / eff : std::numeric_limits<double>::infinity();
  };

  while (static_cast<int>(out.size()) < budget) {
    // Most-overloaded healthy source above the high watermark.
    std::size_t src = status.size();
    double src_load = config_.high_watermark;
    for (const auto& d : status) {
      if (d.weight <= 0.0 || d.effective.get() <= 0.0) continue;  // drain policy's business
      // Congestion guard: a backed-up uplink means moves out of this
      // domain would only queue behind the images already waiting.
      if (config_.max_queued_transfers > 0 &&
          d.outbound_transfers_queued >= config_.max_queued_transfers) {
        continue;
      }
      const double load = rel_load(d.index);
      if (load > src_load) {
        src_load = load;
        src = d.index;
      }
    }
    if (src >= status.size()) break;

    // Least-loaded destination below the low watermark.
    std::size_t dst = status.size();
    double dst_load = config_.low_watermark;
    for (const auto& d : status) {
      if (d.index == src || d.weight <= 0.0 || d.effective.get() <= 0.0) continue;
      const double load = rel_load(d.index);
      if (load < dst_load) {
        dst_load = load;
        dst = d.index;
      }
    }
    if (dst >= status.size()) break;

    if (!jobs_filled[src]) {
      jobs[src] = movable_jobs(fed, src, config_.selection, now);
      jobs_filled[src] = true;
    }
    if (cursor[src] >= jobs[src].size()) break;  // source exhausted; stop rather than thrash
    const workload::Job* pick = jobs[src][cursor[src]++];

    out.push_back({pick->id(), src, dst});
    projected[src] -= pick->spec().max_speed.get();
    projected[dst] += pick->spec().max_speed.get();
  }
  return out;
}

std::vector<MigrationRequest> CompositePolicy::propose(
    const federation::Federation& fed, const std::vector<federation::DomainStatus>& status,
    util::Seconds now, int budget) {
  std::vector<MigrationRequest> out = first_->propose(fed, status, now, budget);
  const int remaining = budget - static_cast<int>(out.size());
  if (remaining <= 0) return out;

  // Reflect the first stage's moves in the snapshot (and skip its jobs)
  // so the second stage does not double-book destination headroom — a
  // drain wave landing on a below-watermark domain would otherwise look
  // like untouched capacity and attract rebalance moves on top, only to
  // be rebalanced away again next tick.
  std::vector<federation::DomainStatus> adjusted = status;
  for (const auto& req : out) {
    const core::World& world = fed.domain(req.from).world();
    if (!world.job_exists(req.job)) continue;
    const util::CpuMhz speed = world.job(req.job).spec().max_speed;
    adjusted[req.from].offered_load -= speed;
    adjusted[req.to].offered_load += speed;
  }
  for (auto& req : second_->propose(fed, adjusted, now, remaining)) {
    bool duplicate = false;
    for (const auto& first_req : out) {
      if (first_req.job == req.job) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) out.push_back(req);
  }
  return out;
}

std::unique_ptr<MigrationPolicy> make_migration_policy(const std::string& name,
                                                       PolicyConfig config) {
  if (name == "drain") return std::make_unique<DrainPolicy>(config);
  if (name == "rebalance") return std::make_unique<RebalancePolicy>(config);
  if (name == "drain+rebalance") {
    return std::make_unique<CompositePolicy>(std::make_unique<DrainPolicy>(config),
                                             std::make_unique<RebalancePolicy>(config));
  }
  throw std::invalid_argument("unknown migration policy: " + name);
}

}  // namespace heteroplace::migration
