#include "migration/policy.hpp"

#include <limits>
#include <stdexcept>

namespace heteroplace::migration {

namespace {

/// Movable phases: anything stable. Transitioning jobs (starting,
/// suspending, resuming, migrating) are left for a later tick.
bool movable_phase(workload::JobPhase p) {
  return p == workload::JobPhase::kPending || p == workload::JobPhase::kRunning ||
         p == workload::JobPhase::kSuspended;
}

/// Destination with the most absolute headroom (effective − projected
/// load) among healthy domains, excluding `avoid`. Ties break toward the
/// lowest index. Returns status.size() when every candidate is drained
/// or already at/over capacity would still be accepted — headroom may go
/// negative; only weight/effective gate eligibility.
std::size_t best_destination(const std::vector<federation::DomainStatus>& status,
                             const std::vector<double>& projected, std::size_t avoid) {
  std::size_t best = status.size();
  double best_headroom = -std::numeric_limits<double>::infinity();
  for (const auto& d : status) {
    if (d.index == avoid) continue;
    if (d.weight <= 0.0 || d.effective.get() <= 0.0) continue;  // never a drained domain
    const double headroom = d.effective.get() - projected[d.index];
    if (headroom > best_headroom) {
      best_headroom = headroom;
      best = d.index;
    }
  }
  return best;
}

}  // namespace

std::vector<MigrationRequest> DrainPolicy::propose(
    const federation::Federation& fed, const std::vector<federation::DomainStatus>& status,
    util::Seconds /*now*/, int budget) {
  std::vector<MigrationRequest> out;
  // Projected offered loads, updated per assignment so one tick's
  // evacuees spread across destinations instead of piling on one.
  std::vector<double> projected(status.size(), 0.0);
  for (const auto& d : status) projected[d.index] = d.offered_load.get();

  for (const auto& d : status) {
    if (d.weight > 0.0) continue;  // only fully drained domains evacuate
    for (const workload::Job* job : fed.domain(d.index).world().active_jobs()) {
      if (static_cast<int>(out.size()) >= budget) return out;
      if (!movable_phase(job->phase())) continue;
      const std::size_t to = best_destination(status, projected, d.index);
      if (to >= status.size()) return out;  // nowhere healthy to go
      out.push_back({job->id(), d.index, to});
      projected[to] += job->spec().max_speed.get();
      projected[d.index] -= job->spec().max_speed.get();
    }
  }
  return out;
}

std::vector<MigrationRequest> RebalancePolicy::propose(
    const federation::Federation& fed, const std::vector<federation::DomainStatus>& status,
    util::Seconds /*now*/, int budget) {
  std::vector<MigrationRequest> out;
  std::vector<double> projected(status.size(), 0.0);
  for (const auto& d : status) projected[d.index] = d.offered_load.get();

  // Per-domain cursor over the (stable) active-job list so repeated
  // source picks walk forward instead of re-proposing the same job.
  std::vector<std::vector<const workload::Job*>> jobs(status.size());
  std::vector<std::size_t> cursor(status.size(), 0);

  auto rel_load = [&](std::size_t i) {
    const double eff = status[i].effective.get();
    return eff > 0.0 ? projected[i] / eff : std::numeric_limits<double>::infinity();
  };

  while (static_cast<int>(out.size()) < budget) {
    // Most-overloaded healthy source above the high watermark.
    std::size_t src = status.size();
    double src_load = config_.high_watermark;
    for (const auto& d : status) {
      if (d.weight <= 0.0 || d.effective.get() <= 0.0) continue;  // drain policy's business
      const double load = rel_load(d.index);
      if (load > src_load) {
        src_load = load;
        src = d.index;
      }
    }
    if (src >= status.size()) break;

    // Least-loaded destination below the low watermark.
    std::size_t dst = status.size();
    double dst_load = config_.low_watermark;
    for (const auto& d : status) {
      if (d.index == src || d.weight <= 0.0 || d.effective.get() <= 0.0) continue;
      const double load = rel_load(d.index);
      if (load < dst_load) {
        dst_load = load;
        dst = d.index;
      }
    }
    if (dst >= status.size()) break;

    if (jobs[src].empty()) jobs[src] = fed.domain(src).world().active_jobs();
    const workload::Job* pick = nullptr;
    while (cursor[src] < jobs[src].size()) {
      const workload::Job* candidate = jobs[src][cursor[src]++];
      if (movable_phase(candidate->phase())) {
        pick = candidate;
        break;
      }
    }
    if (pick == nullptr) break;  // source exhausted; stop rather than thrash

    out.push_back({pick->id(), src, dst});
    projected[src] -= pick->spec().max_speed.get();
    projected[dst] += pick->spec().max_speed.get();
  }
  return out;
}

std::vector<MigrationRequest> CompositePolicy::propose(
    const federation::Federation& fed, const std::vector<federation::DomainStatus>& status,
    util::Seconds now, int budget) {
  std::vector<MigrationRequest> out = first_->propose(fed, status, now, budget);
  const int remaining = budget - static_cast<int>(out.size());
  if (remaining <= 0) return out;

  // Reflect the first stage's moves in the snapshot (and skip its jobs)
  // so the second stage does not double-book destination headroom — a
  // drain wave landing on a below-watermark domain would otherwise look
  // like untouched capacity and attract rebalance moves on top, only to
  // be rebalanced away again next tick.
  std::vector<federation::DomainStatus> adjusted = status;
  for (const auto& req : out) {
    const core::World& world = fed.domain(req.from).world();
    if (!world.job_exists(req.job)) continue;
    const util::CpuMhz speed = world.job(req.job).spec().max_speed;
    adjusted[req.from].offered_load -= speed;
    adjusted[req.to].offered_load += speed;
  }
  for (auto& req : second_->propose(fed, adjusted, now, remaining)) {
    bool duplicate = false;
    for (const auto& first_req : out) {
      if (first_req.job == req.job) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) out.push_back(req);
  }
  return out;
}

std::unique_ptr<MigrationPolicy> make_migration_policy(const std::string& name,
                                                       PolicyConfig config) {
  if (name == "drain") return std::make_unique<DrainPolicy>(config);
  if (name == "rebalance") return std::make_unique<RebalancePolicy>(config);
  if (name == "drain+rebalance") {
    return std::make_unique<CompositePolicy>(std::make_unique<DrainPolicy>(config),
                                             std::make_unique<RebalancePolicy>(config));
  }
  throw std::invalid_argument("unknown migration policy: " + name);
}

}  // namespace heteroplace::migration
