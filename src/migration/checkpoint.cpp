#include "migration/checkpoint.hpp"

#include <stdexcept>

namespace heteroplace::migration {

JobCheckpoint checkpoint_job(const workload::Job& job, std::size_t from_domain,
                             util::Seconds now) {
  const workload::JobPhase phase = job.phase();
  if (phase != workload::JobPhase::kSuspended && phase != workload::JobPhase::kPending) {
    throw std::logic_error("checkpoint_job: job must be suspended or pending");
  }
  JobCheckpoint ckpt;
  ckpt.spec = job.spec();
  ckpt.done = job.done();
  ckpt.suspend_count = job.suspend_count();
  ckpt.migrate_count = job.migrate_count();
  ckpt.has_image = phase == workload::JobPhase::kSuspended;
  ckpt.image_size = ckpt.has_image ? job.spec().memory : util::MemMb{0.0};
  ckpt.taken_at = now;
  ckpt.from_domain = from_domain;
  ckpt.phase_s = job.phase_seconds_all();
  ckpt.gross = job.gross();
  ckpt.hold_s = job.hold_seconds();
  ckpt.accounted_until = job.accounted_until();
  return ckpt;
}

workload::Job restore_job(const JobCheckpoint& ckpt, util::Seconds now) {
  workload::Job job{ckpt.spec};
  job.restore_progress(ckpt.done, ckpt.suspend_count, ckpt.migrate_count, now);
  if (ckpt.has_image) job.set_phase(now, workload::JobPhase::kSuspended);
  // Re-applied after set_phase so the fresh job's [submit, now) gap never
  // leaks into a phase bucket; the in-flight window becomes hold time.
  job.restore_accounting(ckpt.phase_s, ckpt.gross,
                         ckpt.hold_s + (now - ckpt.accounted_until).get());
  return job;
}

}  // namespace heteroplace::migration
