#pragma once

// Link parameters for cross-domain job handoff.
//
// Moving a checkpointed job between controller domains costs (a) the
// suspend/checkpoint latency charged by the source executor and (b) wire
// time derived from this model: a per-link propagation latency plus the
// VM image size over the link bandwidth. Links are configured as a sparse
// matrix over domain-index pairs; unset pairs fall back to the model
// defaults. Bandwidth is in MB/s throughout (images are util::MemMb and
// divide directly by it).
//
// The model itself is stateless — it only answers "what does this link
// look like". Contention between concurrent transfers lives in
// migration::LinkScheduler, which consumes these parameters.

#include <cstddef>
#include <map>
#include <utility>

#include "util/units.hpp"

namespace heteroplace::migration {

class TransferModel {
 public:
  TransferModel() = default;
  TransferModel(double default_bandwidth_mb_per_s, double default_latency_s);

  /// Override one directed link's characteristics (from ≠ to). Both
  /// components are validated at set time: bandwidth must be positive,
  /// latency nonnegative — a negative value is a configuration error,
  /// never an implicit "keep the default". Use the single-component
  /// setters to override only one side of a link.
  void set_link(std::size_t from, std::size_t to, double bandwidth_mb_per_s, double latency_s);
  void set_link_bandwidth(std::size_t from, std::size_t to, double bandwidth_mb_per_s);
  void set_link_latency(std::size_t from, std::size_t to, double latency_s);

  /// Shared per-domain uplink capacity (MB/s), used by LinkScheduler in
  /// uplink mode where every transfer leaving `domain` contends for one
  /// pool. Defaults to the model default bandwidth when unset.
  void set_uplink_bandwidth(std::size_t domain, double bandwidth_mb_per_s);
  [[nodiscard]] double uplink_bandwidth_mb_per_s(std::size_t domain) const;

  [[nodiscard]] double bandwidth_mb_per_s(std::size_t from, std::size_t to) const;
  [[nodiscard]] double latency_s(std::size_t from, std::size_t to) const;

  /// Closed-form wall-clock seconds to move an `image_size` checkpoint
  /// image from domain `from` to domain `to` over an otherwise idle
  /// link. Zero for an intra-domain "move" and for an empty image
  /// (never-started jobs have no VM state to ship). This is the
  /// uncontended reference the LinkScheduler is equivalence-pinned
  /// against in tests/link_scheduler_test.cpp.
  [[nodiscard]] util::Seconds transfer_time(std::size_t from, std::size_t to,
                                            util::MemMb image_size) const;

 private:
  // Unset components use a negative sentinel internally; the setters
  // reject negative user values, so a sentinel can only mean "never set".
  struct Link {
    double bandwidth_mb_per_s{-1.0};
    double latency_s{-1.0};
  };

  double default_bandwidth_mb_per_s_{125.0};  // ~1 Gbit/s in MB/s
  double default_latency_s_{2.0};             // checkpoint registration + RTTs
  std::map<std::pair<std::size_t, std::size_t>, Link> links_;
  std::map<std::size_t, double> uplinks_;
};

}  // namespace heteroplace::migration
