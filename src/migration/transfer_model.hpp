#pragma once

// Deterministic cost model for cross-domain job handoff.
//
// Moving a checkpointed job between controller domains costs (a) the
// suspend/checkpoint latency charged by the source executor and (b) wire
// time from this model: a per-link propagation latency plus the VM image
// size over the link bandwidth. Links are configured as a sparse matrix
// over domain-index pairs; unset pairs fall back to the model defaults.
// The dynamic-VM-placement literature treats this term as first-class in
// the placement objective — policies here read it the same way.

#include <cstddef>
#include <map>
#include <utility>

#include "util/units.hpp"

namespace heteroplace::migration {

class TransferModel {
 public:
  TransferModel() = default;
  TransferModel(double default_bandwidth_mbps, double default_latency_s);

  /// Override one directed link's characteristics (from ≠ to). Negative
  /// values keep the model default for that component.
  void set_link(std::size_t from, std::size_t to, double bandwidth_mbps, double latency_s);

  [[nodiscard]] double bandwidth_mbps(std::size_t from, std::size_t to) const;
  [[nodiscard]] double latency_s(std::size_t from, std::size_t to) const;

  /// Wall-clock seconds to move an `image_size` checkpoint image from
  /// domain `from` to domain `to`. Zero for an intra-domain "move" and
  /// for an empty image (never-started jobs have no VM state to ship).
  [[nodiscard]] util::Seconds transfer_time(std::size_t from, std::size_t to,
                                            util::MemMb image_size) const;

 private:
  struct Link {
    double bandwidth_mbps{-1.0};
    double latency_s{-1.0};
  };

  double default_bandwidth_mbps_{125.0};  // ~1 Gbit/s in MB/s
  double default_latency_s_{2.0};         // checkpoint registration + RTTs
  std::map<std::pair<std::size_t, std::size_t>, Link> links_;
};

}  // namespace heteroplace::migration
