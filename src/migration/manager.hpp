#pragma once

// MigrationManager: executes cross-domain job moves on the shared engine.
//
// Per-job lifecycle of a move (the checkpoint/suspend/resume machine):
//
//   running ──suspend (source executor, suspend latency)──▶ suspending
//   suspending ──image parked on disk──▶ checkpointed (detached from the
//       source World; the source controller no longer sees the job)
//   checkpointed ──LinkScheduler grant (FIFO bandwidth pool)──▶ transferring
//   transferring ──attach: restored kSuspended in the destination──▶
//       resuming (the destination controller resumes it in its next
//       cycle through the ordinary executor path) ──▶ running
//
// Pending (never-started) jobs short-circuit: no image, no wire time —
// they are simply re-routed. All scheduling runs at EventPriority::
// kMigration, so at a shared timestamp the manager observes completed
// state transitions and finished controller cycles, and samplers observe
// the manager's effects.

#include <cstddef>
#include <functional>
#include <map>
#include <memory>

#include "migration/checkpoint.hpp"
#include "migration/link_scheduler.hpp"
#include "migration/policy.hpp"
#include "migration/transfer_model.hpp"
#include "obs/context.hpp"

namespace heteroplace::migration {

struct MigrationOptions {
  /// Policy evaluation period.
  util::Seconds check_interval{60.0};
  /// Max moves initiated per evaluation (bounds churn per tick).
  int max_moves_per_tick{8};
  /// Link contention granularity (see LinkScheduler): per ordered domain
  /// pair (p2p) or one shared uplink pool per source domain.
  LinkMode link_mode{LinkMode::kP2p};
  /// Transfers killed by a link fault are retried with capped exponential
  /// backoff: attempt k waits min(retry_backoff_s * 2^k,
  /// retry_backoff_max_s). After max_transfer_retries failed attempts the
  /// job lands back at its source (restore-at-source failback).
  int max_transfer_retries{3};
  double retry_backoff_s{30.0};
  double retry_backoff_max_s{480.0};
  /// Re-rank queued transfers by checkpoint image size (cheapest first)
  /// whenever a link pool backs up — the congestion counterpart of the
  /// kCost selection rule. Off by default: FIFO order is part of the
  /// pinned pre-fault behavior.
  bool rescore_queued_transfers{false};
  /// Defer each destination attach to just before the destination
  /// controller's next periodic cycle (kWorkloadArrival beats
  /// kController at the shared timestamp), so that very cycle plans the
  /// arriving job instead of it waiting suspended for most of a cycle.
  /// Off by default: immediate attach is part of the pinned behavior.
  bool align_attach{false};
};

/// Cumulative counters, sampled into the mig_* metric series.
struct MigrationStats {
  long started{0};     // moves initiated (including instant pending moves)
  long completed{0};   // moves attached at their destination
  /// Moves aborted because their drained source recovered before the
  /// image reached the wire: the job stays put (suspended in the source,
  /// resumed by its local controller) instead of shipping pointlessly.
  long cancelled{0};
  long in_flight{0};   // started − completed − cancelled
  double bytes_moved_mb{0.0};     // checkpoint images shipped
  double transfer_seconds{0.0};   // cumulative modeled uncontended wire time
  /// Cumulative seconds transfers spent waiting for a contended link
  /// pool before reaching the wire (0 when links are never contended).
  /// The LinkScheduler owns this count; stats() copies it in so the two
  /// can never diverge.
  double queue_wait_seconds{0.0};
  /// Progress lost across handoffs: work done at suspend time minus work
  /// restored at the destination. Exact checkpointing keeps this at zero
  /// — the only SLA cost is the modeled suspend + transfer dead time.
  double work_lost_mhz_s{0.0};
  /// Transfers resubmitted after a link fault killed them.
  long transfer_retries{0};
  /// Jobs restored at their source after exhausting their retry budget
  /// (also counted in `cancelled`).
  long transfer_failbacks{0};
  /// Queued transfers moved to a cheaper slot by congestion re-scoring.
  long transfers_rescored{0};
};

/// Per-move stage, exposed for tests and diagnostics.
enum class MigrationStage {
  kSuspending,    // waiting for the source executor's suspend to land
  kCheckpointed,  // detached, image about to ship
  kTransferring,  // queued for or on the wire
  kRetryWait,     // killed by a link fault; backoff timer running
};

class MigrationManager {
 public:
  MigrationManager(federation::Federation& fed, TransferModel model,
                   std::unique_ptr<MigrationPolicy> policy, MigrationOptions options = {});
  ~MigrationManager();

  MigrationManager(const MigrationManager&) = delete;
  MigrationManager& operator=(const MigrationManager&) = delete;

  /// Schedule the periodic policy evaluation. Call once, after
  /// Federation::start().
  void start();

  /// One policy evaluation right now (tests / manual stepping).
  void tick();

  /// Attach observability: one async trace span per move (suspend →
  /// checkpoint → transfer → attach arc, keyed by job id on the global
  /// pid's migration lane), instants for retries/failbacks, tick timing,
  /// and started/completed counters.
  void set_obs(const obs::ObsContext& ctx);

  [[nodiscard]] MigrationStats stats() const {
    MigrationStats out = stats_;
    out.queue_wait_seconds = scheduler_.total_queue_wait_s();
    return out;
  }
  [[nodiscard]] const MigrationPolicy& policy() const { return *policy_; }
  [[nodiscard]] const TransferModel& transfer_model() const { return scheduler_.model(); }
  [[nodiscard]] const LinkScheduler& link_scheduler() const { return scheduler_; }
  [[nodiscard]] bool job_in_flight(util::JobId id) const { return flights_.count(id) > 0; }

  /// Fault-injection entry points (see faults::FaultInjector). Forwards
  /// to LinkScheduler::fail_link and moves every killed transfer into
  /// retry-wait with capped exponential backoff. Returns how many
  /// transfers the fault killed.
  std::size_t apply_link_fault(std::size_t from, std::size_t to, double bandwidth_factor);
  void clear_link_fault(std::size_t from, std::size_t to);

 private:
  struct Flight {
    std::size_t from{0};
    std::size_t to{0};
    MigrationStage stage{MigrationStage::kSuspending};
    JobCheckpoint ckpt;
    /// Link grant handle while kTransferring (0 for free pending moves).
    LinkScheduler::TransferId transfer_id{0};
    /// Modeled uncontended transfer time credited to stats at submission
    /// (rolled back if the transfer is cancelled before the wire).
    double transfer_s{0.0};
    /// Source recovered while the suspend was still landing: abort at
    /// the checkpoint step instead of detaching.
    bool abort_requested{false};
    /// Link-fault retry bookkeeping: resubmissions performed so far and
    /// the pending backoff event while kRetryWait.
    int attempts{0};
    sim::EventHandle retry;
  };

  void execute(const MigrationRequest& req);
  /// Suspend landed (or should have): checkpoint, detach, ship.
  void begin_transfer(util::JobId id);
  /// Hand the (detached) flight's image to the link pool.
  void submit_flight(util::JobId id);
  /// Image arrived: restore into the destination world.
  void complete_transfer(util::JobId id);
  /// A drained source recovered: cancel every queued (not-yet-on-wire)
  /// outbound grant and land those jobs back in the source; transfers
  /// already on the wire complete normally.
  void on_domain_recovered(std::size_t domain);
  /// Undo a detach whose transfer never crossed the wire: restore the
  /// checkpoint into the source world (the job "stays put").
  /// `roll_back_stats` undoes the shipment accounting credited at
  /// submission — false when a link-fault kill already rolled it back.
  void land_back_at_source(util::JobId id, bool roll_back_stats);
  /// Park a killed (or link-down) flight in retry-wait, or fail it back
  /// to the source once its retry budget is spent.
  void schedule_retry(util::JobId id);
  void retry_transfer(util::JobId id);

  /// Close a flight's async trace span ("migration", keyed by job id).
  void trace_flight_end(util::JobId id, const char* outcome);

  federation::Federation& fed_;
  LinkScheduler scheduler_;
  obs::ObsContext obs_;
  obs::Counter* started_metric_{nullptr};
  obs::Counter* completed_metric_{nullptr};
  std::unique_ptr<MigrationPolicy> policy_;
  MigrationOptions options_;
  MigrationStats stats_;
  std::map<util::JobId, Flight> flights_;
  /// Live link grants → the jobs riding them (kill → retry routing).
  std::map<LinkScheduler::TransferId, util::JobId> transfer_jobs_;
  std::function<void()> tick_loop_;  // self-rescheduling periodic evaluation
  bool started_{false};
};

}  // namespace heteroplace::migration
