#pragma once

// Job checkpoint/restore: the detachable representation of job-VM state.
//
// A checkpoint captures everything another controller domain needs to
// continue a long-running job — the immutable spec (work, SLA goal,
// importance: the utility bookkeeping), the progress made so far, churn
// counters, and the size of the VM image that must cross the wire. It is
// deliberately a plain value type: once taken, it has no pointers into
// the source World, so the source can forget the job while the image is
// in flight and the destination can rebuild it wholesale.

#include <array>
#include <cstddef>

#include "util/units.hpp"
#include "workload/job.hpp"

namespace heteroplace::migration {

struct JobCheckpoint {
  workload::JobSpec spec;
  util::MhzSeconds done{0.0};  // progress preserved across the handoff
  int suspend_count{0};
  int migrate_count{0};
  /// True when the job had a VM image on disk (it ran at least once);
  /// the transfer then moves `image_size` bytes. A never-started job has
  /// no image and moves for free.
  bool has_image{false};
  util::MemMb image_size{0.0};
  util::Seconds taken_at{0.0};
  std::size_t from_domain{0};
  /// SLA-attribution state carried across the handoff: per-phase wall-time
  /// buckets, the monotone gross-work accumulator, accumulated transfer
  /// hold, and the instant up to which the buckets were folded. The
  /// restore adds (now - accounted_until) to hold so the attribution of a
  /// migrated job still partitions its full wall lifetime.
  std::array<double, workload::kJobPhaseCount> phase_s{};
  util::MhzSeconds gross{0.0};
  double hold_s{0.0};
  util::Seconds accounted_until{0.0};
};

/// Capture a checkpoint of `job` (which must be kSuspended — image parked
/// on disk — or kPending — never started). Throws std::logic_error for
/// any other phase: running/transitioning state cannot be detached.
[[nodiscard]] JobCheckpoint checkpoint_job(const workload::Job& job, std::size_t from_domain,
                                           util::Seconds now);

/// Rebuild a job from its checkpoint at time `now`, in phase kPending
/// (no image) or kSuspended (image landed on the destination's disk).
/// The caller binds a destination VM record for suspended restores.
[[nodiscard]] workload::Job restore_job(const JobCheckpoint& ckpt, util::Seconds now);

}  // namespace heteroplace::migration
