#include "migration/link_scheduler.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace heteroplace::migration {

LinkMode link_mode_from_string(const std::string& name) {
  if (name == "p2p") return LinkMode::kP2p;
  if (name == "uplink") return LinkMode::kUplink;
  throw std::invalid_argument("unknown link mode: " + name + " (expected p2p|uplink)");
}

LinkScheduler::LinkScheduler(sim::Engine& engine, TransferModel model, LinkMode mode)
    : engine_(engine), model_(std::move(model)), mode_(mode) {}

LinkScheduler::PoolKey LinkScheduler::pool_key(std::size_t from, std::size_t to) const {
  return mode_ == LinkMode::kUplink ? PoolKey{from, std::numeric_limits<std::size_t>::max()}
                                    : PoolKey{from, to};
}

LinkScheduler::Grant LinkScheduler::submit(std::size_t from, std::size_t to,
                                           util::MemMb image_size,
                                           sim::EventCallback on_delivered) {
  if (from == to) throw std::invalid_argument("LinkScheduler::submit: from == to");
  if (image_size.get() <= 0.0) {
    throw std::invalid_argument("LinkScheduler::submit: empty image never reaches the wire");
  }

  const double bandwidth = mode_ == LinkMode::kUplink
                               ? model_.uplink_bandwidth_mb_per_s(from)
                               : model_.bandwidth_mb_per_s(from, to);
  const double wire = image_size.get() / bandwidth;
  const double latency = model_.latency_s(from, to);

  const double now = engine_.now().get();
  const PoolKey key = pool_key(from, to);
  Pool& pool = pools_[key];

  Grant grant;
  grant.id = next_transfer_++;
  grant.transfer_s = latency + wire;
  Waiting entry{key, from, wire, latency, now, std::move(on_delivered)};

  if (!pool.busy) {
    // Idle pool ⇒ empty queue (the wire-done handler starts the next
    // waiter immediately): the wire starts now and delivery is
    // now + (latency + wire) — the exact floating-point sum the
    // closed-form model produced, keeping uncontended p2p runs
    // bit-identical to the pre-scheduler code.
    grant.wire_start = util::Seconds{now};
    grant.queue_wait_s = 0.0;
    grant.delivery = util::Seconds{now + (latency + wire)};
    start_wire(key, std::move(entry), now);
  } else {
    // Predicted schedule: chain the wire times of everything ahead, in
    // FIFO order (the same left-to-right accumulation the events will
    // perform, so the prediction is bit-exact absent cancellations).
    double start = pool.wire_free_at;
    for (TransferId qid : pool.waiting) start += waiting_.at(qid).wire_s;
    grant.wire_start = util::Seconds{start};
    grant.queue_wait_s = start - now;
    grant.delivery = util::Seconds{start + (latency + wire)};
    pool.waiting.push_back(grant.id);
    waiting_.emplace(grant.id, std::move(entry));
    ++queued_;
    ++queued_by_source_[from];
  }
  return grant;
}

void LinkScheduler::start_wire(PoolKey key, Waiting entry, double now) {
  Pool& pool = pools_[key];
  pool.busy = true;
  pool.wire_free_at = now + entry.wire_s;
  ++active_;
  engine_.schedule_at(util::Seconds{pool.wire_free_at}, sim::EventPriority::kMigration,
                      [this, key] { on_wire_done(key); });
  engine_.schedule_at(util::Seconds{now + (entry.latency_s + entry.wire_s)},
                      sim::EventPriority::kMigration, std::move(entry.on_delivered));
}

void LinkScheduler::on_wire_done(PoolKey key) {
  Pool& pool = pools_[key];
  --active_;
  pool.busy = false;
  if (pool.waiting.empty()) return;
  const TransferId id = pool.waiting.front();
  pool.waiting.pop_front();
  auto node = waiting_.extract(id);
  Waiting entry = std::move(node.mapped());
  --queued_;
  --queued_by_source_[entry.from];
  // The wait is credited when it has actually been served (the wire
  // starts), so samples mid-run never report time that has not elapsed
  // yet and a transfer still queued at the horizon counts nothing.
  const double now = engine_.now().get();
  total_queue_wait_s_ += now - entry.submitted_at;
  start_wire(key, std::move(entry), now);
}

bool LinkScheduler::cancel_queued(TransferId id) {
  auto it = waiting_.find(id);
  if (it == waiting_.end()) return false;  // unknown, on the wire, or delivered
  const Waiting& entry = it->second;
  Pool& pool = pools_.at(entry.key);
  auto pos = std::find(pool.waiting.begin(), pool.waiting.end(), id);
  pool.waiting.erase(pos);
  --queued_;
  --queued_by_source_[entry.from];
  waiting_.erase(it);
  return true;
}

std::size_t LinkScheduler::queued_from(std::size_t domain) const {
  auto it = queued_by_source_.find(domain);
  return it != queued_by_source_.end() ? it->second : 0;
}

}  // namespace heteroplace::migration
