#include "migration/link_scheduler.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace heteroplace::migration {

LinkMode link_mode_from_string(const std::string& name) {
  if (name == "p2p") return LinkMode::kP2p;
  if (name == "uplink") return LinkMode::kUplink;
  throw std::invalid_argument("unknown link mode: " + name + " (expected p2p|uplink)");
}

LinkScheduler::LinkScheduler(sim::Engine& engine, TransferModel model, LinkMode mode)
    : engine_(engine), model_(std::move(model)), mode_(mode) {}

LinkScheduler::Grant LinkScheduler::submit(std::size_t from, std::size_t to,
                                           util::MemMb image_size,
                                           sim::EventCallback on_delivered) {
  if (from == to) throw std::invalid_argument("LinkScheduler::submit: from == to");
  if (image_size.get() <= 0.0) {
    throw std::invalid_argument("LinkScheduler::submit: empty image never reaches the wire");
  }

  const double bandwidth = mode_ == LinkMode::kUplink
                               ? model_.uplink_bandwidth_mb_per_s(from)
                               : model_.bandwidth_mb_per_s(from, to);
  const double wire = image_size.get() / bandwidth;
  const double latency = model_.latency_s(from, to);

  const double now = engine_.now().get();
  Pool& pool =
      pools_[mode_ == LinkMode::kUplink
                 ? PoolKey{from, std::numeric_limits<std::size_t>::max()}
                 : PoolKey{from, to}];
  const double start = std::max(now, pool.busy_until);
  pool.busy_until = start + wire;

  Grant grant;
  grant.wire_start = util::Seconds{start};
  grant.queue_wait_s = start - now;
  grant.transfer_s = latency + wire;
  // An idle pool grants start == now, so delivery is now + (latency +
  // wire) — the exact floating-point sum the closed-form model produced,
  // keeping uncontended p2p runs bit-identical to the pre-scheduler code.
  grant.delivery = util::Seconds{start + (latency + wire)};

  if (start > now) {
    ++queued_;
    ++queued_by_source_[from];
    // The wait is credited when it has actually been served (the wire
    // starts), so samples mid-run never report time that has not
    // elapsed yet and a transfer still queued at the horizon counts
    // nothing.
    const double wait = grant.queue_wait_s;
    engine_.schedule_at(grant.wire_start, sim::EventPriority::kMigration, [this, from, wait] {
      --queued_;
      --queued_by_source_[from];
      ++active_;
      total_queue_wait_s_ += wait;
    });
  } else {
    ++active_;
  }
  engine_.schedule_at(util::Seconds{pool.busy_until}, sim::EventPriority::kMigration,
                      [this] { --active_; });
  engine_.schedule_at(grant.delivery, sim::EventPriority::kMigration, std::move(on_delivered));
  return grant;
}

std::size_t LinkScheduler::queued_from(std::size_t domain) const {
  auto it = queued_by_source_.find(domain);
  return it != queued_by_source_.end() ? it->second : 0;
}

}  // namespace heteroplace::migration
