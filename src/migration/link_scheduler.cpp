#include "migration/link_scheduler.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace heteroplace::migration {

LinkMode link_mode_from_string(const std::string& name) {
  if (name == "p2p") return LinkMode::kP2p;
  if (name == "uplink") return LinkMode::kUplink;
  throw std::invalid_argument("unknown link mode: " + name + " (expected p2p|uplink)");
}

LinkScheduler::LinkScheduler(sim::Engine& engine, TransferModel model, LinkMode mode)
    : engine_(engine), model_(std::move(model)), mode_(mode) {}

LinkScheduler::PoolKey LinkScheduler::pool_key(std::size_t from, std::size_t to) const {
  return mode_ == LinkMode::kUplink ? PoolKey{from, std::numeric_limits<std::size_t>::max()}
                                    : PoolKey{from, to};
}

LinkScheduler::Grant LinkScheduler::submit(std::size_t from, std::size_t to,
                                           util::MemMb image_size,
                                           sim::EventCallback on_delivered) {
  if (from == to) throw std::invalid_argument("LinkScheduler::submit: from == to");
  if (image_size.get() <= 0.0) {
    throw std::invalid_argument("LinkScheduler::submit: empty image never reaches the wire");
  }

  const PoolKey key = pool_key(from, to);
  Pool& pool = pools_[key];
  if (pool.down) {
    throw std::logic_error("LinkScheduler::submit: link is down (check link_up first)");
  }

  const double bandwidth = mode_ == LinkMode::kUplink
                               ? model_.uplink_bandwidth_mb_per_s(from)
                               : model_.bandwidth_mb_per_s(from, to);
  // degrade == 1.0 stays on the undivided path so fault-free runs remain
  // bit-identical to the pre-fault code.
  const double effective_bw = pool.degrade == 1.0 ? bandwidth : bandwidth * pool.degrade;
  const double wire = image_size.get() / effective_bw;
  const double latency = model_.latency_s(from, to);

  const double now = engine_.now().get();

  Grant grant;
  grant.id = next_transfer_++;
  grant.transfer_s = latency + wire;
  Waiting entry{key, grant.id, from, wire, latency, now, std::move(on_delivered)};

  if (!pool.busy) {
    // Idle pool ⇒ empty queue (the wire-done handler starts the next
    // waiter immediately): the wire starts now and delivery is
    // now + (latency + wire) — the exact floating-point sum the
    // closed-form model produced, keeping uncontended p2p runs
    // bit-identical to the pre-scheduler code.
    grant.wire_start = util::Seconds{now};
    grant.queue_wait_s = 0.0;
    grant.delivery = util::Seconds{now + (latency + wire)};
    start_wire(key, std::move(entry), now);
  } else {
    // Predicted schedule: chain the wire times of everything ahead, in
    // FIFO order (the same left-to-right accumulation the events will
    // perform, so the prediction is bit-exact absent cancellations).
    double start = pool.wire_free_at;
    for (TransferId qid : pool.waiting) start += waiting_.at(qid).wire_s;
    grant.wire_start = util::Seconds{start};
    grant.queue_wait_s = start - now;
    grant.delivery = util::Seconds{start + (latency + wire)};
    pool.waiting.push_back(grant.id);
    waiting_.emplace(grant.id, std::move(entry));
    ++queued_;
    ++queued_by_source_[from];
  }
  return grant;
}

void LinkScheduler::start_wire(PoolKey key, Waiting entry, double now) {
  Pool& pool = pools_[key];
  pool.busy = true;
  pool.wire_free_at = now + entry.wire_s;
  pool.on_wire = entry.id;
  ++active_;
  pool.wire_done = engine_.schedule_at(util::Seconds{pool.wire_free_at},
                                       sim::EventPriority::kMigration,
                                       [this, key] { on_wire_done(key); });
  pool.delivery = engine_.schedule_at(util::Seconds{now + (entry.latency_s + entry.wire_s)},
                                      sim::EventPriority::kMigration,
                                      std::move(entry.on_delivered));
}

void LinkScheduler::on_wire_done(PoolKey key) {
  Pool& pool = pools_[key];
  --active_;
  pool.busy = false;
  // Past this point only propagation remains; a link failure can no
  // longer kill the transfer, so the pool releases its handles (the
  // pending delivery fires on its own).
  pool.on_wire = 0;
  pool.delivery = sim::EventHandle{};
  if (pool.waiting.empty()) return;
  const TransferId id = pool.waiting.front();
  pool.waiting.pop_front();
  auto node = waiting_.extract(id);
  Waiting entry = std::move(node.mapped());
  --queued_;
  --queued_by_source_[entry.from];
  // The wait is credited when it has actually been served (the wire
  // starts), so samples mid-run never report time that has not elapsed
  // yet and a transfer still queued at the horizon counts nothing.
  const double now = engine_.now().get();
  total_queue_wait_s_ += now - entry.submitted_at;
  start_wire(key, std::move(entry), now);
}

bool LinkScheduler::cancel_queued(TransferId id) {
  auto it = waiting_.find(id);
  if (it == waiting_.end()) return false;  // unknown, on the wire, or delivered
  const Waiting& entry = it->second;
  Pool& pool = pools_.at(entry.key);
  auto pos = std::find(pool.waiting.begin(), pool.waiting.end(), id);
  pool.waiting.erase(pos);
  --queued_;
  --queued_by_source_[entry.from];
  waiting_.erase(it);
  return true;
}

std::size_t LinkScheduler::queued_from(std::size_t domain) const {
  auto it = queued_by_source_.find(domain);
  return it != queued_by_source_.end() ? it->second : 0;
}

std::vector<LinkScheduler::TransferId> LinkScheduler::fail_link(std::size_t from, std::size_t to,
                                                                double bandwidth_factor) {
  if (bandwidth_factor < 0.0 || bandwidth_factor >= 1.0) {
    throw std::invalid_argument("LinkScheduler::fail_link: bandwidth_factor must be in [0, 1)");
  }
  std::vector<TransferId> killed;
  Pool& pool = pools_[pool_key(from, to)];
  if (bandwidth_factor > 0.0) {
    // Degraded, not down: in-flight and queued transfers keep their
    // committed schedule; only new submissions pay the reduced bandwidth.
    pool.degrade = bandwidth_factor;
    return killed;
  }
  pool.down = true;
  pool.degrade = 1.0;
  if (pool.busy) {
    pool.wire_done.cancel();
    pool.delivery.cancel();
    pool.busy = false;
    --active_;
    killed.push_back(pool.on_wire);
    pool.on_wire = 0;
  }
  while (!pool.waiting.empty()) {
    const TransferId id = pool.waiting.front();
    pool.waiting.pop_front();
    auto it = waiting_.find(id);
    --queued_;
    --queued_by_source_[it->second.from];
    waiting_.erase(it);
    killed.push_back(id);
  }
  return killed;
}

void LinkScheduler::restore_link(std::size_t from, std::size_t to) {
  auto it = pools_.find(pool_key(from, to));
  if (it == pools_.end()) return;
  // The queue was flushed when the pool went down and submit() refuses a
  // down pool, so there is never parked work to restart here.
  it->second.down = false;
  it->second.degrade = 1.0;
}

bool LinkScheduler::link_up(std::size_t from, std::size_t to) const {
  auto it = pools_.find(pool_key(from, to));
  return it == pools_.end() || !it->second.down;
}

std::size_t LinkScheduler::rescore_queued(std::size_t min_waiting,
                                          const std::function<double(TransferId)>& score) {
  std::size_t moved = 0;
  for (auto& [key, pool] : pools_) {
    if (pool.waiting.size() < min_waiting || pool.waiting.size() < 2) continue;
    std::vector<TransferId> order(pool.waiting.begin(), pool.waiting.end());
    std::map<TransferId, double> cost;
    for (TransferId id : order) cost.emplace(id, score(id));
    std::stable_sort(order.begin(), order.end(),
                     [&cost](TransferId a, TransferId b) { return cost.at(a) < cost.at(b); });
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (pool.waiting[i] != order[i]) ++moved;
      pool.waiting[i] = order[i];
    }
  }
  return moved;
}

}  // namespace heteroplace::migration
