#include "migration/transfer_model.hpp"

#include <stdexcept>
#include <string>

namespace heteroplace::migration {

namespace {

void check_bandwidth(double bandwidth_mb_per_s, const char* where) {
  if (bandwidth_mb_per_s <= 0.0) {
    throw std::invalid_argument(std::string(where) + ": bandwidth must be positive, got " +
                                std::to_string(bandwidth_mb_per_s));
  }
}

void check_latency(double latency_s, const char* where) {
  if (latency_s < 0.0) {
    throw std::invalid_argument(std::string(where) + ": latency must be nonnegative, got " +
                                std::to_string(latency_s));
  }
}

}  // namespace

TransferModel::TransferModel(double default_bandwidth_mb_per_s, double default_latency_s)
    : default_bandwidth_mb_per_s_(default_bandwidth_mb_per_s),
      default_latency_s_(default_latency_s) {
  check_bandwidth(default_bandwidth_mb_per_s, "TransferModel");
  check_latency(default_latency_s, "TransferModel");
}

void TransferModel::set_link(std::size_t from, std::size_t to, double bandwidth_mb_per_s,
                             double latency_s) {
  if (from == to) throw std::invalid_argument("TransferModel::set_link: from == to");
  check_bandwidth(bandwidth_mb_per_s, "TransferModel::set_link");
  check_latency(latency_s, "TransferModel::set_link");
  links_[{from, to}] = Link{bandwidth_mb_per_s, latency_s};
}

void TransferModel::set_link_bandwidth(std::size_t from, std::size_t to,
                                       double bandwidth_mb_per_s) {
  if (from == to) throw std::invalid_argument("TransferModel::set_link_bandwidth: from == to");
  check_bandwidth(bandwidth_mb_per_s, "TransferModel::set_link_bandwidth");
  links_[{from, to}].bandwidth_mb_per_s = bandwidth_mb_per_s;
}

void TransferModel::set_link_latency(std::size_t from, std::size_t to, double latency_s) {
  if (from == to) throw std::invalid_argument("TransferModel::set_link_latency: from == to");
  check_latency(latency_s, "TransferModel::set_link_latency");
  links_[{from, to}].latency_s = latency_s;
}

void TransferModel::set_uplink_bandwidth(std::size_t domain, double bandwidth_mb_per_s) {
  check_bandwidth(bandwidth_mb_per_s, "TransferModel::set_uplink_bandwidth");
  uplinks_[domain] = bandwidth_mb_per_s;
}

double TransferModel::uplink_bandwidth_mb_per_s(std::size_t domain) const {
  auto it = uplinks_.find(domain);
  return it != uplinks_.end() ? it->second : default_bandwidth_mb_per_s_;
}

double TransferModel::bandwidth_mb_per_s(std::size_t from, std::size_t to) const {
  auto it = links_.find({from, to});
  if (it != links_.end() && it->second.bandwidth_mb_per_s > 0.0) {
    return it->second.bandwidth_mb_per_s;
  }
  return default_bandwidth_mb_per_s_;
}

double TransferModel::latency_s(std::size_t from, std::size_t to) const {
  auto it = links_.find({from, to});
  if (it != links_.end() && it->second.latency_s >= 0.0) return it->second.latency_s;
  return default_latency_s_;
}

util::Seconds TransferModel::transfer_time(std::size_t from, std::size_t to,
                                           util::MemMb image_size) const {
  if (from == to || image_size.get() <= 0.0) return util::Seconds{0.0};
  return util::Seconds{latency_s(from, to) + image_size.get() / bandwidth_mb_per_s(from, to)};
}

}  // namespace heteroplace::migration
