#include "migration/transfer_model.hpp"

#include <stdexcept>

namespace heteroplace::migration {

TransferModel::TransferModel(double default_bandwidth_mbps, double default_latency_s)
    : default_bandwidth_mbps_(default_bandwidth_mbps), default_latency_s_(default_latency_s) {
  if (default_bandwidth_mbps <= 0.0) {
    throw std::invalid_argument("TransferModel: bandwidth must be positive");
  }
  if (default_latency_s < 0.0) {
    throw std::invalid_argument("TransferModel: latency must be nonnegative");
  }
}

void TransferModel::set_link(std::size_t from, std::size_t to, double bandwidth_mbps,
                             double latency_s) {
  if (from == to) throw std::invalid_argument("TransferModel::set_link: from == to");
  if (bandwidth_mbps == 0.0) {
    throw std::invalid_argument("TransferModel::set_link: zero bandwidth");
  }
  links_[{from, to}] = Link{bandwidth_mbps, latency_s};
}

double TransferModel::bandwidth_mbps(std::size_t from, std::size_t to) const {
  auto it = links_.find({from, to});
  if (it != links_.end() && it->second.bandwidth_mbps > 0.0) return it->second.bandwidth_mbps;
  return default_bandwidth_mbps_;
}

double TransferModel::latency_s(std::size_t from, std::size_t to) const {
  auto it = links_.find({from, to});
  if (it != links_.end() && it->second.latency_s >= 0.0) return it->second.latency_s;
  return default_latency_s_;
}

util::Seconds TransferModel::transfer_time(std::size_t from, std::size_t to,
                                           util::MemMb image_size) const {
  if (from == to || image_size.get() <= 0.0) return util::Seconds{0.0};
  return util::Seconds{latency_s(from, to) + image_size.get() / bandwidth_mbps(from, to)};
}

}  // namespace heteroplace::migration
