#pragma once

// Contended inter-domain links: FIFO bandwidth pools on the sim engine.
//
// PR 3's transfer model priced every handoff with a closed-form divide,
// so N simultaneous transfers over one link each saw the full bandwidth
// and a mass drain finished unrealistically fast. The LinkScheduler
// makes link capacity a shared, contended resource (the
// workload-engineering treatment of WAN links): each bandwidth pool
// serves transfers strictly FIFO — a transfer occupies the wire for
// image/bandwidth seconds, queued transfers start when the wire frees,
// and per-link propagation latency rides on top of the wire time
// (pipelined, so it delays delivery but does not occupy the pool).
//
// Pool granularity is the link mode:
//   p2p    — every ordered domain pair (from, to) is its own pool, using
//            the pair's TransferModel bandwidth. Transfers on different
//            pairs never contend.
//   uplink — every transfer leaving a domain contends for that domain's
//            single uplink pool (TransferModel uplink bandwidth);
//            per-pair bandwidth overrides are ignored, per-pair latency
//            still applies.
//
// Queued (not-yet-on-wire) transfers can be cancelled: a drained domain
// that recovers mid-evacuation has no reason to keep shipping images
// (see MigrationManager). Only the transfer at the head of a pool holds
// engine events — queued entries hold none — so cancellation simply
// removes the entry and every transfer behind it moves up one slot,
// starting (and delivering) earlier than its Grant predicted. The wire
// is never left idle while work waits.
//
// Determinism: FIFO over submission order with known image sizes is
// fully predictable, so submit() computes the wire-start and delivery
// times analytically into the returned Grant (exact unless a later
// cancellation compacts the queue). An uncontended submission in p2p
// mode delivers at exactly now + TransferModel::transfer_time(from, to,
// image) — bit-identical to the PR 3 closed form (pinned in
// tests/link_scheduler_test.cpp).

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "migration/transfer_model.hpp"
#include "sim/engine.hpp"

namespace heteroplace::migration {

enum class LinkMode {
  kP2p,     // per ordered domain pair
  kUplink,  // shared per-source-domain pool
};

/// "p2p" | "uplink"; throws std::invalid_argument otherwise.
[[nodiscard]] LinkMode link_mode_from_string(const std::string& name);

class LinkScheduler {
 public:
  LinkScheduler(sim::Engine& engine, TransferModel model, LinkMode mode = LinkMode::kP2p);

  LinkScheduler(const LinkScheduler&) = delete;
  LinkScheduler& operator=(const LinkScheduler&) = delete;

  using TransferId = std::uint64_t;

  /// Everything the caller needs to account for one granted transfer,
  /// fixed at submission time. FIFO makes the schedule predictable, so
  /// the times are exact — unless a transfer queued ahead is later
  /// cancelled, in which case the real wire start and delivery happen
  /// earlier than predicted (never later).
  struct Grant {
    util::Seconds wire_start;  // when the image starts moving
    util::Seconds delivery;    // when on_delivered fires
    double transfer_s{0.0};    // modeled uncontended time: latency + image/bw
    double queue_wait_s{0.0};  // wire_start − submission time
    TransferId id{0};          // handle for cancel_queued
  };

  /// Queue an image transfer on the (from, to) link's pool; `on_delivered`
  /// fires at the delivery time (kMigration priority). Requires
  /// from ≠ to and a nonempty image — free moves never reach the wire
  /// (the MigrationManager completes them synchronously, as before).
  Grant submit(std::size_t from, std::size_t to, util::MemMb image_size,
               sim::EventCallback on_delivered);

  /// Abort a transfer that has not reached the wire. Its on_delivered
  /// never fires and the pool closes the gap (transfers queued behind it
  /// start earlier). Returns false — and does nothing — when the id is
  /// unknown, already on the wire, or already delivered.
  bool cancel_queued(TransferId id);

  // --- fault injection -------------------------------------------------------

  /// Fail the (from, to) link. bandwidth_factor == 0 takes the pool down:
  /// the on-wire transfer (if its delivery has not fired) and every
  /// queued transfer are killed — their on_delivered callbacks never fire
  /// — and their ids are returned so the MigrationManager can retry them.
  /// A transfer past its wire-done but before delivery survives (the
  /// bytes already crossed; only propagation remains). bandwidth_factor
  /// in (0, 1) degrades the link instead: nothing is killed, but new
  /// submissions see the scaled bandwidth until restore_link.
  std::vector<TransferId> fail_link(std::size_t from, std::size_t to, double bandwidth_factor);

  /// Clear a fault set by fail_link (full bandwidth, pool back up).
  void restore_link(std::size_t from, std::size_t to);

  /// False while the (from, to) pool is down. Callers must check before
  /// submit(): submitting into a down pool throws std::logic_error.
  [[nodiscard]] bool link_up(std::size_t from, std::size_t to) const;

  /// Re-rank the waiting queue of every pool holding at least
  /// `min_waiting` queued transfers: stable-sort ascending by
  /// `score(id)`, so cheap transfers overtake expensive ones when a link
  /// backs up (ties keep FIFO order). Returns how many transfers changed
  /// slots. Queued entries hold no engine events, so reordering is pure
  /// bookkeeping — the wire keeps serving head-of-queue.
  std::size_t rescore_queued(std::size_t min_waiting,
                             const std::function<double(TransferId)>& score);

  /// Transfers waiting for a pool (submitted, wire not started).
  [[nodiscard]] std::size_t queued_transfers() const { return queued_; }
  /// Waiting transfers whose source is `domain` (federation status plumbing).
  [[nodiscard]] std::size_t queued_from(std::size_t domain) const;
  /// Transfers currently occupying a wire.
  [[nodiscard]] std::size_t active_transfers() const { return active_; }
  /// Cumulative seconds of queue wait actually served so far: each
  /// transfer's wait is credited when its wire starts, so this never
  /// reports time that has not elapsed yet (and a cancelled transfer's
  /// never-served wait counts nothing).
  [[nodiscard]] double total_queue_wait_s() const { return total_queue_wait_s_; }

  [[nodiscard]] const TransferModel& model() const { return model_; }
  [[nodiscard]] LinkMode mode() const { return mode_; }

 private:
  /// Pool key: (from, to) in p2p mode, (from, npos) in uplink mode.
  using PoolKey = std::pair<std::size_t, std::size_t>;
  struct Pool {
    bool busy{false};          // a transfer occupies the wire
    double wire_free_at{0.0};  // when the on-wire transfer leaves it
    bool down{false};          // failed (fault injection); admits nothing
    double degrade{1.0};       // bandwidth factor for new submissions
    TransferId on_wire{0};     // id of the transfer occupying the wire
    sim::EventHandle wire_done;  // pending events of the on-wire transfer,
    sim::EventHandle delivery;   // held so fail_link can kill it
    std::deque<TransferId> waiting;  // FIFO, cancellable until wire start
  };
  struct Waiting {
    PoolKey key;
    TransferId id{0};
    std::size_t from{0};
    double wire_s{0.0};
    double latency_s{0.0};
    double submitted_at{0.0};
    sim::EventCallback on_delivered;
  };

  [[nodiscard]] PoolKey pool_key(std::size_t from, std::size_t to) const;
  /// Put a transfer on the wire at `now`: schedules its wire-done (pops
  /// the next waiter) and delivery events. Only on-wire transfers hold
  /// events; cancellation therefore never reschedules anything.
  void start_wire(PoolKey key, Waiting entry, double now);
  void on_wire_done(PoolKey key);

  sim::Engine& engine_;
  TransferModel model_;
  LinkMode mode_;
  std::map<PoolKey, Pool> pools_;
  std::map<TransferId, Waiting> waiting_;  // queued entries only
  TransferId next_transfer_{1};
  std::size_t queued_{0};
  std::size_t active_{0};
  std::map<std::size_t, std::size_t> queued_by_source_;
  double total_queue_wait_s_{0.0};
};

}  // namespace heteroplace::migration
