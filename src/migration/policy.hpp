#pragma once

// Pluggable migration policies: who moves, and where to.
//
// A policy turns a federation status snapshot into a list of migration
// requests; the MigrationManager then executes them (suspend →
// checkpoint → transfer → resume) and enforces eligibility. Policies are
// deterministic — same snapshot, same proposals — so migrated runs
// replay exactly.
//
//   drain      — weight-0 domains evacuate every job they still host
//                (brownout/maintenance: the MORPHOSYS-style reshape).
//   rebalance  — threshold-triggered moves from domains loaded above a
//                high watermark to domains below a low watermark.
//   drain+rebalance — drain first, rebalance with the leftover budget.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "federation/federation.hpp"

namespace heteroplace::migration {

struct MigrationRequest {
  util::JobId job{};
  std::size_t from{0};
  std::size_t to{0};
};

/// How a policy orders movable jobs when it cannot move them all.
enum class SelectionMode {
  /// Active-job list order — the pre-cost-aware behavior, preserved
  /// bit-identical for equivalence pins.
  kFifo,
  /// Ortigoza-style cost ranking: cheapest image per remaining second of
  /// work moves first, ties broken toward the least SLA slack, then the
  /// lower job id. Pending jobs (no image) are free and always lead.
  kCost,
};

/// "fifo" | "cost"; throws std::invalid_argument otherwise.
[[nodiscard]] SelectionMode selection_from_string(const std::string& name);

/// Tuning knobs shared by the built-in policies.
struct PolicyConfig {
  /// Rebalance source threshold: offered_load / effective above this
  /// marks a domain overloaded.
  double high_watermark{1.1};
  /// Rebalance destination threshold: only domains below this relative
  /// load receive moves.
  double low_watermark{0.8};
  /// Movable-job ordering within a source domain.
  SelectionMode selection{SelectionMode::kFifo};
  /// Congestion guard for rebalancing: a source whose outbound transfer
  /// queue (DomainStatus::outbound_transfers_queued) has reached this
  /// depth proposes no further moves — piling more images behind a
  /// backed-up uplink only delays everything already queued. 0 disables
  /// the guard (the pre-congestion-aware behavior). Drains ignore it:
  /// evacuating a dead domain beats link tidiness.
  std::size_t max_queued_transfers{0};
};

class MigrationPolicy {
 public:
  virtual ~MigrationPolicy() = default;

  /// Propose up to `budget` moves for the given snapshot. Must not
  /// propose a destination with weight 0 or no effective capacity —
  /// evacuated work must never bounce back into a drained domain.
  [[nodiscard]] virtual std::vector<MigrationRequest> propose(
      const federation::Federation& fed, const std::vector<federation::DomainStatus>& status,
      util::Seconds now, int budget) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

class DrainPolicy final : public MigrationPolicy {
 public:
  explicit DrainPolicy(PolicyConfig config = {}) : config_(config) {}
  [[nodiscard]] std::vector<MigrationRequest> propose(
      const federation::Federation& fed, const std::vector<federation::DomainStatus>& status,
      util::Seconds now, int budget) override;
  [[nodiscard]] std::string name() const override { return "drain"; }

 private:
  PolicyConfig config_;
};

class RebalancePolicy final : public MigrationPolicy {
 public:
  explicit RebalancePolicy(PolicyConfig config = {}) : config_(config) {}
  [[nodiscard]] std::vector<MigrationRequest> propose(
      const federation::Federation& fed, const std::vector<federation::DomainStatus>& status,
      util::Seconds now, int budget) override;
  [[nodiscard]] std::string name() const override { return "rebalance"; }

 private:
  PolicyConfig config_;
};

/// Runs `first` then `second`, splitting the per-tick budget.
class CompositePolicy final : public MigrationPolicy {
 public:
  CompositePolicy(std::unique_ptr<MigrationPolicy> first, std::unique_ptr<MigrationPolicy> second)
      : first_(std::move(first)), second_(std::move(second)) {}
  [[nodiscard]] std::vector<MigrationRequest> propose(
      const federation::Federation& fed, const std::vector<federation::DomainStatus>& status,
      util::Seconds now, int budget) override;
  [[nodiscard]] std::string name() const override {
    return first_->name() + "+" + second_->name();
  }

 private:
  std::unique_ptr<MigrationPolicy> first_;
  std::unique_ptr<MigrationPolicy> second_;
};

/// Factory by config name: "drain", "rebalance", "drain+rebalance".
/// Throws std::invalid_argument on an unknown name.
[[nodiscard]] std::unique_ptr<MigrationPolicy> make_migration_policy(const std::string& name,
                                                                     PolicyConfig config = {});

}  // namespace heteroplace::migration
