#include "perfmodel/request_sim.hpp"

#include <deque>

namespace heteroplace::perfmodel {

namespace {

/// Single FCFS server with Poisson arrivals and exponential service.
/// Admission control: an arrival is shed if the number of requests in
/// the system would push utilization-equivalent backlog beyond the cap —
/// approximated by shedding when in-system count >= K(rho_cap), the
/// M/M/1 occupancy at the cap (a practical token-bucket-style stand-in
/// for middleware flow control).
class Mm1System {
 public:
  Mm1System(const RequestSimConfig& cfg, sim::Engine& engine)
      : cfg_(cfg),
        engine_(engine),
        rng_(cfg.seed),
        mu_(cfg.capacity_mhz / cfg.service_demand) {
    if (cfg_.rho_cap < 1.0) {
      // Mean M/M/1 occupancy at rho_cap, plus slack: beyond this backlog
      // the admission controller sheds.
      const double l = cfg_.rho_cap / (1.0 - cfg_.rho_cap);
      admit_limit_ = static_cast<long>(l * 4.0) + 2;
    }
    schedule_arrival();
  }

  [[nodiscard]] RequestSimResult take_result() { return std::move(result_); }

 private:
  void schedule_arrival() {
    const double gap = rng_.exponential_mean(1.0 / cfg_.lambda);
    const double t = engine_.now().get() + gap;
    if (t > cfg_.horizon_s) return;
    engine_.schedule_at(util::Seconds{t}, sim::EventPriority::kWorkloadArrival,
                        [this] { on_arrival(); });
  }

  void on_arrival() {
    ++result_.arrivals;
    const long in_system = static_cast<long>(queue_.size()) + (busy_ ? 1 : 0);
    if (admit_limit_ >= 0 && in_system >= admit_limit_) {
      ++result_.shed;
    } else {
      ++result_.admitted;
      queue_.push_back(engine_.now().get());
      if (!busy_) start_service();
    }
    schedule_arrival();
  }

  void start_service() {
    busy_ = true;
    const double service = rng_.exponential_mean(1.0 / mu_);
    engine_.schedule_in(util::Seconds{service}, sim::EventPriority::kStateTransition,
                        [this] { on_departure(); });
  }

  void on_departure() {
    const double arrived_at = queue_.front();
    queue_.pop_front();
    ++result_.completed;
    if (arrived_at >= cfg_.warmup_s) {
      result_.response_time.add(engine_.now().get() - arrived_at);
    }
    if (!queue_.empty()) {
      start_service();
    } else {
      busy_ = false;
    }
  }

  RequestSimConfig cfg_;
  sim::Engine& engine_;
  util::Rng rng_;
  double mu_;
  long admit_limit_{-1};  // -1 = no admission control
  std::deque<double> queue_;  // arrival timestamps, FCFS
  bool busy_{false};
  RequestSimResult result_;
};

}  // namespace

RequestSimResult run_request_sim(const RequestSimConfig& cfg) {
  sim::Engine engine;
  Mm1System system(cfg, engine);
  engine.run();
  return system.take_result();
}

}  // namespace heteroplace::perfmodel
