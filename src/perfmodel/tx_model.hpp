#pragma once

// Transactional performance model with flow control.
//
// The app's middleware enforces a maximum utilization ρ_cap by shedding
// (or queueing outside the system) excess requests; admitted requests see
// an M/G/1-PS queue whose capacity is the total CPU granted by the
// placement controller. This is the analytic stand-in for the flow
// controller + queueing predictor of the paper's transactional framework
// ([2], NOMS 2008).

#include "util/units.hpp"
#include "workload/transactional.hpp"

namespace heteroplace::perfmodel {

struct TxPerfResult {
  double offered_rate{0.0};    // λ (req/s)
  double admitted_rate{0.0};   // λ_adm after flow control
  double throughput_ratio{1.0};  // λ_adm / λ (1 when nothing shed)
  double utilization{0.0};     // λ_adm·d / ω
  util::Seconds response_time{0.0};  // mean RT of admitted requests
  bool saturated{false};       // flow control engaged
};

/// Evaluate the model at arrival rate `lambda`, per-request demand `d`
/// (MHz·s), allocated capacity `capacity`, and flow-control cap `rho_cap`.
///
/// capacity <= 0 yields a fully-shed, infinitely slow result.
[[nodiscard]] TxPerfResult evaluate_tx(double lambda, double service_demand,
                                       util::CpuMhz capacity, double rho_cap);

/// Capacity that yields a target mean response time at the given load
/// (ignoring flow control — valid for rt below the flow-control regime):
///   ω = λ·d + d / RT.
[[nodiscard]] util::CpuMhz capacity_for_response_time(double lambda, double service_demand,
                                                      util::Seconds rt);

/// Convenience: evaluate using an app's spec and trace at time t.
[[nodiscard]] TxPerfResult evaluate_tx_app(const workload::TxApp& app, util::Seconds t,
                                           util::CpuMhz capacity);

}  // namespace heteroplace::perfmodel
