#include "perfmodel/rate_estimator.hpp"

#include <cmath>
#include <stdexcept>

namespace heteroplace::perfmodel {

void RateEstimator::observe(util::Seconds t, double rate) {
  if (rate < 0.0) throw std::invalid_argument("RateEstimator: negative rate");
  ++count_;
  if (!have_) {
    value_ = rate;
    last_t_ = t.get();
    have_ = true;
    return;
  }
  if (t.get() < last_t_) {
    throw std::invalid_argument("RateEstimator: observations must be time-ordered");
  }
  if (half_life_s_ <= 0.0) {
    value_ = rate;
    last_t_ = t.get();
    return;
  }
  // Weight of the old estimate decays with elapsed time: after one
  // half-life the old value contributes 50%.
  const double dt = t.get() - last_t_;
  const double keep = std::pow(0.5, dt / half_life_s_);
  value_ = keep * value_ + (1.0 - keep) * rate;
  last_t_ = t.get();
}

void RateEstimator::reset() {
  value_ = 0.0;
  last_t_ = 0.0;
  have_ = false;
  count_ = 0;
}

}  // namespace heteroplace::perfmodel
