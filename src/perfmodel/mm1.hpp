#pragma once

// Classic single-queue formulas (M/M/1 and M/G/1 processor sharing).
//
// For M/M/1-FCFS and M/G/1-PS the mean response time coincides:
//   RT = 1 / (μ - λ),   μ = capacity / service_demand.
// The transactional performance model builds on these; the request-level
// discrete-event simulator in tests validates them empirically.

#include <cmath>
#include <limits>

namespace heteroplace::perfmodel {

/// Utilization ρ = λ/μ. Unbounded above 1 (meaningful only as an
/// *offered* utilization in that regime).
[[nodiscard]] inline double mm1_utilization(double lambda, double mu) {
  if (mu <= 0.0) return std::numeric_limits<double>::infinity();
  return lambda / mu;
}

/// Mean response time (sojourn). Infinite at or beyond saturation.
[[nodiscard]] inline double mm1_response_time(double lambda, double mu) {
  if (mu <= lambda) return std::numeric_limits<double>::infinity();
  return 1.0 / (mu - lambda);
}

/// Mean number in system L = ρ / (1 - ρ); infinite at saturation.
[[nodiscard]] inline double mm1_number_in_system(double lambda, double mu) {
  const double rho = mm1_utilization(lambda, mu);
  if (rho >= 1.0) return std::numeric_limits<double>::infinity();
  return rho / (1.0 - rho);
}

/// Mean waiting time (excluding service) W_q = ρ / (μ - λ).
[[nodiscard]] inline double mm1_wait_time(double lambda, double mu) {
  if (mu <= lambda) return std::numeric_limits<double>::infinity();
  return mm1_utilization(lambda, mu) / (mu - lambda);
}

/// Arrival rate that produces a target mean response time: λ = μ - 1/RT.
[[nodiscard]] inline double mm1_lambda_for_response_time(double mu, double rt) {
  return mu - 1.0 / rt;
}

/// Service rate needed for a target mean response time at arrival rate λ.
[[nodiscard]] inline double mm1_mu_for_response_time(double lambda, double rt) {
  return lambda + 1.0 / rt;
}

}  // namespace heteroplace::perfmodel
