#pragma once

// Request-level discrete-event M/M/1 simulator.
//
// Exercises the sim::Engine substrate and serves as an empirical check of
// the analytic transactional model: tests drive Poisson arrivals with
// exponential service through a single FCFS server of configurable
// capacity and compare the measured mean response time against
// 1/(μ - λ). Also supports the flow-control admission cap so the
// saturated regime of evaluate_tx can be validated.

#include <cstdint>

#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace heteroplace::perfmodel {

struct RequestSimConfig {
  double lambda{10.0};           // arrival rate (req/s)
  double service_demand{600.0};  // mean demand per request (MHz·s)
  double capacity_mhz{12000.0};  // server capacity
  double rho_cap{1.0};           // admission cap on utilization (1 = none)
  double warmup_s{500.0};        // samples before this time are discarded
  double horizon_s{20000.0};     // simulated duration
  std::uint64_t seed{42};
};

struct RequestSimResult {
  util::RunningStats response_time;  // sojourn times of completed requests
  long arrivals{0};
  long admitted{0};
  long completed{0};
  long shed{0};

  [[nodiscard]] double throughput_ratio() const {
    return arrivals > 0 ? static_cast<double>(admitted) / static_cast<double>(arrivals) : 1.0;
  }
};

/// Run the request-level simulation to completion.
[[nodiscard]] RequestSimResult run_request_sim(const RequestSimConfig& cfg);

}  // namespace heteroplace::perfmodel
