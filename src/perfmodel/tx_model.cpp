#include "perfmodel/tx_model.hpp"

#include <algorithm>
#include <limits>

namespace heteroplace::perfmodel {

TxPerfResult evaluate_tx(double lambda, double service_demand, util::CpuMhz capacity,
                         double rho_cap) {
  TxPerfResult r;
  r.offered_rate = lambda;
  if (capacity.get() <= 0.0 || service_demand <= 0.0) {
    r.admitted_rate = 0.0;
    r.throughput_ratio = lambda > 0.0 ? 0.0 : 1.0;
    r.utilization = 0.0;
    r.response_time = util::Seconds{std::numeric_limits<double>::infinity()};
    r.saturated = lambda > 0.0;
    return r;
  }

  const double mu = capacity.get() / service_demand;  // service rate (req/s)
  const double admit_cap = rho_cap * mu;
  r.admitted_rate = std::min(lambda, admit_cap);
  r.saturated = lambda > admit_cap;
  r.throughput_ratio = lambda > 0.0 ? r.admitted_rate / lambda : 1.0;
  r.utilization = r.admitted_rate / mu;
  // M/G/1-PS mean response time on admitted traffic. Guaranteed finite:
  // admitted utilization <= rho_cap < 1.
  r.response_time = util::Seconds{1.0 / (mu - r.admitted_rate)};
  return r;
}

util::CpuMhz capacity_for_response_time(double lambda, double service_demand, util::Seconds rt) {
  if (rt.get() <= 0.0) return util::CpuMhz{std::numeric_limits<double>::infinity()};
  return util::CpuMhz{lambda * service_demand + service_demand / rt.get()};
}

TxPerfResult evaluate_tx_app(const workload::TxApp& app, util::Seconds t, util::CpuMhz capacity) {
  const auto& spec = app.spec();
  return evaluate_tx(app.arrival_rate(t), spec.service_demand, capacity, spec.max_utilization);
}

}  // namespace heteroplace::perfmodel
