#pragma once

// Arrival-rate estimation for the controller.
//
// The paper's controller observes the transactional request rate through
// monitoring, not as ground truth; real monitors deliver noisy
// per-interval counts. This module provides the standard estimator used
// by such controllers — an exponentially weighted moving average over
// interval rates — so experiments can study the control loop under
// measurement noise (see ExperimentOptions::lambda_noise_cv).

#include <cstddef>

#include "util/units.hpp"

namespace heteroplace::perfmodel {

/// EWMA over irregularly spaced rate observations. The smoothing factor
/// is expressed as a half-life in seconds, so irregular control cycles
/// weight observations consistently: an observation `h` seconds old
/// carries half the weight of a fresh one.
class RateEstimator {
 public:
  /// half_life <= 0 disables smoothing (estimator tracks the last sample).
  explicit RateEstimator(double half_life_s = 1200.0) : half_life_s_(half_life_s) {}

  /// Feed one observation: the measured average rate over the interval
  /// ending at `t`. Observations must arrive in nondecreasing t order.
  void observe(util::Seconds t, double rate);

  /// Current smoothed estimate (0 before any observation).
  [[nodiscard]] double estimate() const { return have_ ? value_ : 0.0; }
  [[nodiscard]] bool has_observation() const { return have_; }
  [[nodiscard]] std::size_t observations() const { return count_; }

  void reset();

 private:
  double half_life_s_;
  double value_{0.0};
  double last_t_{0.0};
  bool have_{false};
  std::size_t count_{0};
};

}  // namespace heteroplace::perfmodel
