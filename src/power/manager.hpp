#pragma once

// PowerManager: drives every node's sleep state machine on engine events
// and meters the cluster's energy.
//
// Per-node lifecycle (the S-state machine):
//
//   active ──park (policy; node empty past the idle timeout)──▶ parking
//   parking ──park latency elapsed──▶ parked (standby/off draw; the node
//       contributes zero capacity and the placement layers skip it)
//   parked ──wake (policy; offered load outruns awake capacity)──▶ waking
//       (active draw — the spin-up cost — but not yet placeable)
//   waking ──wake latency elapsed──▶ active (rejoins placement at the
//       current P-state speed)
//
// All scheduling runs at EventPriority::kPower: at a shared timestamp the
// manager observes finished controller cycles and migrations, and
// samplers observe the manager's effects. The manager never parks a node
// hosting VMs (Node enforces this physically) and never parks below the
// configured active floor; everything else is the pluggable
// ConsolidationPolicy's call.
//
// Energy: draw changes only on the transitions above (plus P-state
// moves), so the EnergyMeter integrates exactly — a power-enabled run
// whose policy never acts ("none") costs zero behavioral difference and
// its energy is node_count × active_w × elapsed, closed-form.

#include <functional>
#include <memory>
#include <vector>

#include "core/world.hpp"
#include "obs/context.hpp"
#include "power/energy_meter.hpp"
#include "power/policy.hpp"
#include "power/power_model.hpp"
#include "sim/engine.hpp"

namespace heteroplace::power {

struct PowerOptions {
  /// Policy evaluation period (runners default it to the control cycle).
  util::Seconds check_interval{600.0};
  ParkDepth park_depth{ParkDepth::kStandby};
  /// Cap on this world's total draw (W); <= 0 = uncapped. The built-in
  /// policy enforces it by P-state throttling.
  double cap_w{0.0};
  /// Never park below this many awake (active or waking) nodes.
  int min_active_nodes{1};
  /// Parallel-batch shard for this manager's events (ticks, park/wake
  /// completions). Federated runners set it to the domain index — all
  /// effects stay inside this manager's World. kNoShard = serial.
  sim::ShardId shard{sim::kNoShard};
};

/// Cumulative counters, sampled into the power_* metric series.
struct PowerStats {
  long parks{0};
  long wakes{0};
  long pstate_changes{0};
};

class PowerManager {
 public:
  /// The cluster must be fully populated (all nodes added) first: the
  /// meter is sized at construction and every node starts active at P0.
  PowerManager(sim::Engine& engine, core::World& world, PowerModel model,
               std::unique_ptr<ConsolidationPolicy> policy, PowerOptions options = {});

  PowerManager(const PowerManager&) = delete;
  PowerManager& operator=(const PowerManager&) = delete;

  /// Schedule the periodic policy evaluation. Call once, after the
  /// controllers are started.
  void start();

  /// One policy evaluation right now (tests / manual stepping).
  void tick();

  /// Attach observability: park/wake/P-state instants on this domain's
  /// power lane, tick timing, and park/wake counters.
  void set_obs(const obs::ObsContext& ctx);

  /// Reuse a controller-built PlacementProblem skeleton instead of
  /// rebuilding one per tick (see PlacementController::
  /// enable_problem_cache). The provider returns nullptr when it has
  /// nothing fresh for the queried timestamp; tick then falls back to
  /// building its own snapshot.
  using ProblemProvider = std::function<const core::PlacementProblem*(util::Seconds)>;
  void set_problem_provider(ProblemProvider provider) {
    problem_provider_ = std::move(provider);
  }

  /// Fault-injection hooks (see faults::FaultInjector). A crashed node
  /// draws zero power and sits outside the sleep-state machine until its
  /// recovery restores active draw at the current P-state.
  void on_node_failed(util::NodeId id);
  void on_node_recovered(util::NodeId id);

  [[nodiscard]] const EnergyMeter& meter() const { return meter_; }
  /// Instantaneous cluster draw (W).
  [[nodiscard]] double current_draw_w() const { return meter_.total_draw_w(); }
  /// Energy consumed through `now` (Wh).
  [[nodiscard]] double energy_wh(util::Seconds now) const { return meter_.total_energy_wh(now); }

  [[nodiscard]] const PowerStats& stats() const { return stats_; }
  [[nodiscard]] const PowerModel& model() const { return model_; }
  [[nodiscard]] const ConsolidationPolicy& policy() const { return *policy_; }
  /// Current P-state ladder position (0 = full speed).
  [[nodiscard]] int pstate() const { return pstate_; }
  /// Nodes currently out of the placement pool — parking *or* parked.
  /// A parking node still draws active power until its latency elapses,
  /// so this intentionally leads the draw drop in the power_w series.
  [[nodiscard]] std::size_t parked_count() const;

 private:
  void park_node(util::NodeId id);
  void wake_node(util::NodeId id);
  void apply_pstate(int p);

  sim::Engine& engine_;
  core::World& world_;
  PowerModel model_;
  std::unique_ptr<ConsolidationPolicy> policy_;
  PowerOptions options_;
  EnergyMeter meter_;
  PowerStats stats_;
  obs::ObsContext obs_;
  obs::Counter* parks_metric_{nullptr};
  obs::Counter* wakes_metric_{nullptr};
  int pstate_{0};
  /// Per-node time the node was first seen empty (tick granularity);
  /// negative while hosting or not active.
  std::vector<double> empty_since_;
  ProblemProvider problem_provider_;
  std::function<void()> tick_loop_;
  bool started_{false};
};

}  // namespace heteroplace::power
