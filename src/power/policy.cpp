#include "power/policy.hpp"

#include <algorithm>
#include <stdexcept>

namespace heteroplace::power {

namespace {
using cluster::PowerState;
}  // namespace

ConsolidationActions NoConsolidationPolicy::decide(const ConsolidationInput&, util::Seconds) {
  return {};
}

ConsolidationActions IdleParkPolicy::decide(const ConsolidationInput& in, util::Seconds) {
  ConsolidationActions out;
  const PowerModel& model = *in.model;
  const double scale = model.speed_at(in.pstate);
  const double needed = in.offered_cpu_mhz * config_.headroom_factor;
  double supply = in.active_cpu_mhz + in.waking_cpu_mhz;

  // Nodes that are (or will shortly be) serving placements.
  int active_like = 0;
  for (const NodePowerView& n : in.nodes) {
    if (n.state == PowerState::kActive || n.state == PowerState::kWaking) ++active_like;
  }

  // CPU headroom is not the only way placement can starve: a pending job
  // whose image fits no awake node's free memory needs a wake however
  // much CPU is spare. Track the largest such demand, ignoring jobs too
  // big for every node in the cluster (no wake can ever help those).
  double largest_node_mem = 0.0;
  for (const NodePowerView& n : in.nodes) {
    largest_node_mem = std::max(largest_node_mem, n.mem_capacity_mb);
  }
  double mem_need = 0.0;  // largest unplaced (pending or suspended) image
  for (const core::SolverJob& j : in.problem->jobs) {
    // Suspended jobs count too: their VM is unplaced and the executor's
    // resume needs a node with room, exactly like a first placement.
    const bool unplaced = (j.phase == workload::JobPhase::kPending ||
                           j.phase == workload::JobPhase::kSuspended) &&
                          !j.current_node.valid();
    if (!unplaced) continue;
    if (j.memory.get() > largest_node_mem) continue;
    mem_need = std::max(mem_need, j.memory.get());
  }
  auto mem_hosts = [&](double need) {
    int hosts = 0;
    for (const NodePowerView& n : in.nodes) {
      const bool arriving = n.state == PowerState::kWaking;  // empty when it lands
      if ((n.state == PowerState::kActive && n.mem_free_mb >= need) ||
          (arriving && n.mem_capacity_mb >= need)) {
        ++hosts;
      }
    }
    return hosts;
  };

  int hosts = mem_need > 0.0 ? mem_hosts(mem_need) : 0;
  if (mem_need > 0.0 && hosts == 0) {
    // Memory-blocked: wake the first parked node big enough.
    for (const NodePowerView& n : in.nodes) {
      if (n.state != PowerState::kParked || n.mem_capacity_mb < mem_need) continue;
      out.wake.push_back(n.id);
      supply += n.cpu_capacity_mhz * scale;
      ++active_like;
      ++hosts;
      break;
    }
  }

  if (supply < needed) {
    // Demand outruns the awake pool: wake parked nodes, lowest id first,
    // until projected capacity covers the load with headroom. Woken
    // capacity arrives after the wake latency, exactly like the waking
    // pool already counted in `supply`.
    for (const NodePowerView& n : in.nodes) {
      if (supply >= needed) break;
      if (n.state != PowerState::kParked) continue;
      if (!out.wake.empty() && out.wake.front() == n.id) continue;  // memory wake above
      out.wake.push_back(n.id);
      supply += n.cpu_capacity_mhz * scale;
      ++active_like;
    }
  } else if (out.wake.empty()) {
    // Surplus: park nodes that have sat empty past the idle timeout, as
    // long as the survivors still cover the load with headroom, the
    // active floor holds, and a memory-blocked pending job keeps at
    // least one big-enough host awake. Highest ids park first so the
    // low end of the cluster stays hot (deterministic, and placement
    // already prefers low indices on ties).
    for (auto it = in.nodes.rbegin(); it != in.nodes.rend(); ++it) {
      const NodePowerView& n = *it;
      if (n.state != PowerState::kActive || !n.empty) continue;
      if (n.idle_s < config_.idle_timeout_s) continue;
      if (active_like <= in.min_active_nodes) break;
      const double contribution = n.cpu_capacity_mhz * scale;
      if (supply - contribution < needed) continue;  // a smaller node may still fit
      const bool memory_host = mem_need > 0.0 && n.mem_free_mb >= mem_need;
      if (memory_host && hosts <= 1) continue;  // last node that fits the blocked image
      out.park.push_back(n.id);
      supply -= contribution;
      --active_like;
      if (memory_host) --hosts;
    }
  }

  // Power cap: walk the P-state ladder down until the projected steady
  // draw (post park/wake) fits under the cap; the deepest entry is the
  // floor. Uncapped runs pin P0 so a lifted cap un-throttles.
  if (in.cap_w > 0.0) {
    int awake = 0;   // drawing active power: active, parking, waking
    int parked = 0;
    for (const NodePowerView& n : in.nodes) {
      if (n.state == PowerState::kParked) {
        ++parked;
      } else {
        ++awake;
      }
    }
    awake -= static_cast<int>(out.park.size());
    parked += static_cast<int>(out.park.size());
    awake += static_cast<int>(out.wake.size());
    parked -= static_cast<int>(out.wake.size());

    int target = model.deepest_pstate();
    for (int p = 0; p <= model.deepest_pstate(); ++p) {
      const double projected = static_cast<double>(awake) * model.active_w(p) +
                               static_cast<double>(parked) * model.parked_w(in.park_depth);
      if (projected <= in.cap_w) {
        target = p;
        break;
      }
    }
    out.target_pstate = target;
  } else {
    out.target_pstate = 0;
  }
  return out;
}

std::unique_ptr<ConsolidationPolicy> make_consolidation_policy(const std::string& name,
                                                               IdleParkConfig config) {
  if (name == "none") return std::make_unique<NoConsolidationPolicy>();
  if (name == "idle-park") return std::make_unique<IdleParkPolicy>(config);
  throw std::invalid_argument("unknown consolidation policy: " + name +
                              " (expected none|idle-park)");
}

}  // namespace heteroplace::power
