#pragma once

// Pluggable consolidation policies: which nodes to park or wake, and how
// hard to throttle.
//
// Each control-ish cycle the PowerManager hands its policy the same
// PlacementProblem skeleton the placement solver sees (active nodes with
// their effective capacities, every live job with its memory and speed
// cap) plus the per-node power view. The policy returns park/wake
// proposals and a DVFS target; the manager validates and executes them.
// Policies are deterministic — same input, same actions — so
// power-managed runs replay exactly.
//
//   none       — never parks, never throttles (the metering-only policy;
//                a power-enabled run under it is bit-identical to a
//                power-disabled run, pinned in tests/power_test.cpp).
//   idle-park  — parks nodes that have been empty past an idle timeout
//                whenever the remaining active capacity still covers the
//                offered load with headroom; wakes parked nodes when it
//                no longer does. Under a power cap it walks the P-state
//                ladder down until the projected draw fits.

#include <memory>
#include <string>
#include <vector>

#include "cluster/node.hpp"
#include "core/placement_problem.hpp"
#include "power/power_model.hpp"
#include "util/units.hpp"

namespace heteroplace::power {

/// Per-node power signals the policy decides on.
struct NodePowerView {
  util::NodeId id{};
  cluster::PowerState state{cluster::PowerState::kActive};
  bool empty{true};
  /// Seconds continuously empty (tick granularity; 0 while hosting or
  /// not active).
  double idle_s{0.0};
  double cpu_capacity_mhz{0.0};  // raw, unscaled
  double mem_capacity_mb{0.0};
  /// Free memory right now (== capacity on an empty node).
  double mem_free_mb{0.0};
};

struct ConsolidationInput {
  /// What the placement solver would see right now (parked nodes absent,
  /// active capacities P-state-scaled).
  const core::PlacementProblem* problem{nullptr};
  const PowerModel* model{nullptr};
  std::vector<NodePowerView> nodes;
  /// CPU the current workload could consume: active-job speed caps plus
  /// the transactional offered load λ(t)·d.
  double offered_cpu_mhz{0.0};
  /// Placeable (active, scaled) capacity right now.
  double active_cpu_mhz{0.0};
  /// Capacity mid-wake: arriving within one wake latency.
  double waking_cpu_mhz{0.0};
  int pstate{0};          // current ladder position
  double draw_w{0.0};     // current total draw
  double cap_w{0.0};      // per-domain power cap; <= 0 = uncapped
  ParkDepth park_depth{ParkDepth::kStandby};
  int min_active_nodes{1};
};

struct ConsolidationActions {
  std::vector<util::NodeId> park;
  std::vector<util::NodeId> wake;
  /// Ladder position every active node should run at; -1 = keep current.
  int target_pstate{-1};
};

class ConsolidationPolicy {
 public:
  virtual ~ConsolidationPolicy() = default;

  [[nodiscard]] virtual ConsolidationActions decide(const ConsolidationInput& input,
                                                    util::Seconds now) = 0;

  /// False when decide() never proposes anything — the manager then
  /// skips building the (O(nodes + jobs)) snapshot entirely, so a
  /// metering-only run pays nothing per tick beyond the idle clocks.
  [[nodiscard]] virtual bool acts() const { return true; }

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Meter-only: no parking, no throttling.
class NoConsolidationPolicy final : public ConsolidationPolicy {
 public:
  [[nodiscard]] ConsolidationActions decide(const ConsolidationInput& input,
                                            util::Seconds now) override;
  [[nodiscard]] bool acts() const override { return false; }
  [[nodiscard]] std::string name() const override { return "none"; }
};

/// Tuning knobs for the idle-park policy.
struct IdleParkConfig {
  /// Park a node only after it has been empty this long.
  double idle_timeout_s{1800.0};
  /// Keep active capacity at or above offered load × this factor; wake
  /// when active + waking capacity falls below it.
  double headroom_factor{1.25};
};

class IdleParkPolicy final : public ConsolidationPolicy {
 public:
  explicit IdleParkPolicy(IdleParkConfig config = {}) : config_(config) {}
  [[nodiscard]] ConsolidationActions decide(const ConsolidationInput& input,
                                            util::Seconds now) override;
  [[nodiscard]] std::string name() const override { return "idle-park"; }

 private:
  IdleParkConfig config_;
};

/// Factory by config name: "none", "idle-park". Throws
/// std::invalid_argument on an unknown name.
[[nodiscard]] std::unique_ptr<ConsolidationPolicy> make_consolidation_policy(
    const std::string& name, IdleParkConfig config = {});

}  // namespace heteroplace::power
