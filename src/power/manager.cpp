#include "power/manager.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/utility_policy.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/sla.hpp"
#include "obs/trace.hpp"

namespace heteroplace::power {

namespace {
using cluster::PowerState;

/// The meter is initialized from model.active_w(0) in the member
/// initializer list, so the model must be validated before any member
/// reads it — a body-side validate() would run too late.
PowerModel validated(PowerModel model) {
  model.validate();
  return model;
}

}  // namespace

PowerManager::PowerManager(sim::Engine& engine, core::World& world, PowerModel model,
                           std::unique_ptr<ConsolidationPolicy> policy, PowerOptions options)
    : engine_(engine),
      world_(world),
      model_(validated(std::move(model))),
      policy_(std::move(policy)),
      options_(options),
      meter_(world.cluster().node_count(), model_.active_w(0), engine.now()),
      empty_since_(world.cluster().node_count(), -1.0) {
  if (!policy_) throw std::invalid_argument("PowerManager: policy must not be null");
  if (options_.check_interval.get() <= 0.0) {
    throw std::invalid_argument("PowerManager: check_interval must be positive");
  }
  if (options_.min_active_nodes < 0) {
    throw std::invalid_argument("PowerManager: min_active_nodes must be nonnegative");
  }
  if (world_.cluster().node_count() == 0) {
    throw std::invalid_argument("PowerManager: cluster has no nodes (populate it first)");
  }
}

void PowerManager::set_obs(const obs::ObsContext& ctx) {
  obs_ = ctx;
  if (obs_.metrics != nullptr) {
    parks_metric_ =
        &obs_.metrics->counter("power_parks_total", "Node park transitions begun", obs_.labels);
    wakes_metric_ =
        &obs_.metrics->counter("power_wakes_total", "Node wake transitions begun", obs_.labels);
  }
}

void PowerManager::start() {
  if (started_) throw std::logic_error("PowerManager::start: already started");
  started_ = true;
  // Perpetual evaluation loop, after the controllers (and the migration
  // manager) at each shared timestamp.
  tick_loop_ = [this] {
    tick();
    engine_.schedule_in(options_.check_interval, sim::EventPriority::kPower, options_.shard,
                        tick_loop_);
  };
  engine_.schedule_in(options_.check_interval, sim::EventPriority::kPower, options_.shard,
                      tick_loop_);
}

std::size_t PowerManager::parked_count() const {
  std::size_t n = 0;
  for (const auto& node : world_.cluster().nodes()) {
    if (node.power_state() == PowerState::kParking || node.power_state() == PowerState::kParked) {
      ++n;
    }
  }
  return n;
}

void PowerManager::tick() {
  const obs::ScopedTimer tick_timer(obs_.profiler, obs::Phase::kPowerTick);
  const util::Seconds now = engine_.now();
  auto& cl = world_.cluster();

  // Idle bookkeeping (tick granularity): a node's idle clock starts the
  // first tick that finds it active and empty, and resets the moment it
  // hosts anything — in-flight starts already hold a memory reservation,
  // so a node with work on the way never reads as idle.
  for (std::size_t i = 0; i < cl.node_count(); ++i) {
    const cluster::Node& node = cl.nodes()[i];
    if (node.placeable() && node.resident_count() == 0) {
      if (empty_since_[i] < 0.0) empty_since_[i] = now.get();
    } else {
      empty_since_[i] = -1.0;
    }
  }

  // A metering-only policy never reads the snapshot — skip the
  // O(nodes + jobs + apps) construction and the decide() call outright.
  if (!policy_->acts()) return;

  // Snapshot: the solver's view of the cluster plus the power state.
  // When a controller shares its same-timestamp skeleton, reuse it
  // instead of rebuilding the identical O(nodes + jobs + apps) snapshot.
  const core::PlacementProblem* shared =
      problem_provider_ ? problem_provider_(now) : nullptr;
  core::PlacementProblem local;
  if (shared == nullptr) local = core::build_problem_skeleton(world_);
  const core::PlacementProblem& problem = shared != nullptr ? *shared : local;
  ConsolidationInput in;
  in.problem = &problem;
  in.model = &model_;
  in.pstate = pstate_;
  in.draw_w = meter_.total_draw_w();
  in.cap_w = options_.cap_w;
  in.park_depth = options_.park_depth;
  in.min_active_nodes = options_.min_active_nodes;
  in.active_cpu_mhz = cl.placeable_capacity().cpu.get();
  double offered = 0.0;
  for (const core::SolverJob& j : problem.jobs) offered += j.max_speed.get();
  for (const auto& app : world_.apps()) offered += app.offered_load(now).get();
  in.offered_cpu_mhz = offered;
  in.nodes.reserve(cl.node_count());
  for (std::size_t i = 0; i < cl.node_count(); ++i) {
    const cluster::Node& node = cl.nodes()[i];
    NodePowerView view;
    view.id = node.id();
    view.state = node.power_state();
    view.empty = node.resident_count() == 0;
    view.idle_s = empty_since_[i] >= 0.0 ? now.get() - empty_since_[i] : 0.0;
    view.cpu_capacity_mhz = node.capacity().cpu.get();
    view.mem_capacity_mb = node.capacity().mem.get();
    view.mem_free_mb = node.mem_free().get();
    in.nodes.push_back(view);
    if (node.power_state() == PowerState::kWaking) {
      in.waking_cpu_mhz += node.capacity().cpu.get() * model_.speed_at(pstate_);
    }
  }

  const ConsolidationActions actions = policy_->decide(in, now);

  // Wakes first (they can only add capacity), then parks, re-validated
  // against live state: the policy proposed against a snapshot, and
  // eligibility is the manager's responsibility.
  for (util::NodeId id : actions.wake) {
    if (cl.node(id).power_state() == PowerState::kParked) wake_node(id);
  }
  int awake = 0;
  for (const auto& node : cl.nodes()) {
    if (node.power_state() == PowerState::kActive || node.power_state() == PowerState::kWaking) {
      ++awake;
    }
  }
  for (util::NodeId id : actions.park) {
    const cluster::Node& node = cl.node(id);
    if (node.power_state() != PowerState::kActive || node.resident_count() != 0) continue;
    if (awake <= options_.min_active_nodes) break;  // never park below the floor
    park_node(id);
    --awake;
  }

  if (actions.target_pstate >= 0) {
    const int target = std::min(actions.target_pstate, model_.deepest_pstate());
    if (target != pstate_) apply_pstate(target);
  }
}

void PowerManager::park_node(util::NodeId id) {
  world_.cluster().node(id).set_power_state(PowerState::kParking);
  ++stats_.parks;
  if (parks_metric_ != nullptr) parks_metric_->inc();
  if (obs_.trace != nullptr) {
    obs_.trace->instant(obs_.pid, obs::Lane::kPower, "park", engine_.now().get(),
                        {{"node", static_cast<double>(id.get())}});
  }
  // The node draws active power through the transition; the meter
  // switches to the sleep draw when the park latency elapses.
  const std::size_t idx = id.get();
  engine_.schedule_in(util::Seconds{model_.park_latency_s}, sim::EventPriority::kPower,
                      options_.shard, [this, id, idx] {
                        cluster::Node& node = world_.cluster().node(id);
                        // A crash (fault injection) may have pre-empted the
                        // transition; the injector owns the node until recovery.
                        if (node.power_state() != PowerState::kParking) return;
                        node.set_power_state(PowerState::kParked);
                        meter_.set_draw(idx, model_.parked_w(options_.park_depth), engine_.now());
                        if (obs_.trace != nullptr) {
                          obs_.trace->instant(obs_.pid, obs::Lane::kPower, "parked",
                                              engine_.now().get(),
                                              {{"node", static_cast<double>(id.get())}});
                        }
                      });
}

void PowerManager::wake_node(util::NodeId id) {
  world_.cluster().node(id).set_power_state(PowerState::kWaking);
  ++stats_.wakes;
  if (wakes_metric_ != nullptr) wakes_metric_->inc();
  if (obs_.sla != nullptr) obs_.sla->on_wake_begin(engine_.now().get());
  if (obs_.trace != nullptr) {
    obs_.trace->instant(obs_.pid, obs::Lane::kPower, "wake", engine_.now().get(),
                        {{"node", static_cast<double>(id.get())}});
  }
  // Spin-up draws active power immediately; capacity arrives only when
  // the wake latency elapses and the node rejoins placement.
  meter_.set_draw(id.get(), model_.active_w(pstate_), engine_.now());
  engine_.schedule_in(util::Seconds{model_.wake_latency_s}, sim::EventPriority::kPower,
                      options_.shard, [this, id] {
                        cluster::Node& node = world_.cluster().node(id);
                        // The wake interval ends here even when a crash
                        // mid-wake aborts the transition below — the ledger's
                        // begin/end metering must stay balanced.
                        if (obs_.sla != nullptr) obs_.sla->on_wake_end(engine_.now().get());
                        // See park_node: a crash mid-wake leaves the node to
                        // the fault injector.
                        if (node.power_state() != PowerState::kWaking) return;
                        node.set_power_state(PowerState::kActive);
                        node.set_speed_factor(model_.speed_at(pstate_));
                        meter_.set_draw(id.get(), model_.active_w(pstate_), engine_.now());
                        if (obs_.trace != nullptr) {
                          obs_.trace->instant(obs_.pid, obs::Lane::kPower, "woke",
                                              engine_.now().get(),
                                              {{"node", static_cast<double>(id.get())}});
                        }
                      });
}

// Throttling changes *planning* capacity: the solver's next plan fits
// the scaled cpu and the executor resizes shares down then. Shares
// already granted keep running untouched for up to one control cycle —
// clamping them here would need the executor's completion-rescheduling
// machinery (see the per-node DVFS follow-up in ROADMAP.md) — so during
// that window metered draw (throttled) understates delivered MHz.
void PowerManager::apply_pstate(int p) {
  pstate_ = p;
  ++stats_.pstate_changes;
  const util::Seconds now = engine_.now();
  if (obs_.trace != nullptr) {
    obs_.trace->instant(obs_.pid, obs::Lane::kPower, "pstate", now.get(),
                        {{"p", static_cast<double>(p)},
                         {"speed", model_.speed_at(p)},
                         {"active_w", model_.active_w(p)}});
  }
  const double factor = model_.speed_at(p);
  const double watts = model_.active_w(p);
  auto& cl = world_.cluster();
  for (std::size_t i = 0; i < cl.node_count(); ++i) {
    cluster::Node& node = cl.node(util::NodeId{static_cast<util::NodeId::underlying_type>(i)});
    switch (node.power_state()) {
      case PowerState::kActive:
        node.set_speed_factor(factor);
        meter_.set_draw(i, watts, now);
        break;
      case PowerState::kParking:
      case PowerState::kWaking:
        // Transitioning nodes draw active power; their speed factor is
        // (re)applied when the wake completes.
        meter_.set_draw(i, watts, now);
        break;
      case PowerState::kParked:
        break;  // sleep draw is P-state-independent
      case PowerState::kFailed:
        break;  // crashed nodes draw nothing until recovery
    }
  }
}

void PowerManager::on_node_failed(util::NodeId id) {
  meter_.set_draw(id.get(), 0.0, engine_.now());
  empty_since_[id.get()] = -1.0;  // no idle credit accrues while down
}

void PowerManager::on_node_recovered(util::NodeId id) {
  cluster::Node& node = world_.cluster().node(id);
  node.set_speed_factor(model_.speed_at(pstate_));
  meter_.set_draw(id.get(), model_.active_w(pstate_), engine_.now());
}

}  // namespace heteroplace::power
