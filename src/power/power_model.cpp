#include "power/power_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace heteroplace::power {

ParkDepth park_depth_from_string(const std::string& name) {
  if (name == "standby") return ParkDepth::kStandby;
  if (name == "off") return ParkDepth::kOff;
  throw std::invalid_argument("unknown park depth: " + name + " (expected standby|off)");
}

const char* to_string(ParkDepth d) {
  return d == ParkDepth::kStandby ? "standby" : "off";
}

PowerModel PowerModel::ladder(double active_w, int pstate_count) {
  if (active_w <= 0.0) {
    throw std::invalid_argument("PowerModel::ladder: active_w must be positive");
  }
  if (pstate_count < 1 || pstate_count > 4) {
    throw std::invalid_argument("PowerModel::ladder: pstate_count must be in [1, 4]");
  }
  // Speed drops linearly; wattage drops slower (platform/leakage floor).
  static constexpr double kSpeed[4] = {1.0, 0.85, 0.7, 0.55};
  static constexpr double kPowerFrac[4] = {1.0, 0.85, 0.72, 0.6};
  PowerModel m;
  m.pstates.clear();
  for (int i = 0; i < pstate_count; ++i) {
    m.pstates.push_back({kSpeed[i], active_w * kPowerFrac[i]});
  }
  return m;
}

double PowerModel::active_w(int p) const {
  if (pstates.empty()) throw std::invalid_argument("PowerModel: empty P-state ladder");
  const int i = std::clamp(p, 0, deepest_pstate());
  return pstates[static_cast<std::size_t>(i)].watts;
}

double PowerModel::speed_at(int p) const {
  if (pstates.empty()) throw std::invalid_argument("PowerModel: empty P-state ladder");
  const int i = std::clamp(p, 0, deepest_pstate());
  return pstates[static_cast<std::size_t>(i)].speed_factor;
}

void PowerModel::validate() const {
  if (pstates.empty()) throw std::invalid_argument("PowerModel: empty P-state ladder");
  if (pstates.front().speed_factor != 1.0) {
    throw std::invalid_argument("PowerModel: pstates[0] must run at full speed (factor 1)");
  }
  double prev_speed = 2.0;
  for (const PState& p : pstates) {
    if (!(p.speed_factor > 0.0) || p.speed_factor > 1.0) {
      throw std::invalid_argument("PowerModel: P-state speed factor must be in (0, 1]");
    }
    if (p.speed_factor >= prev_speed) {
      throw std::invalid_argument("PowerModel: P-state speeds must strictly decrease");
    }
    if (p.watts <= 0.0) {
      throw std::invalid_argument("PowerModel: active P-state wattage must be positive");
    }
    prev_speed = p.speed_factor;
  }
  if (standby_w < 0.0) throw std::invalid_argument("PowerModel: standby_w must be nonnegative");
  if (off_w < 0.0) throw std::invalid_argument("PowerModel: off_w must be nonnegative");
  if (standby_w < off_w) {
    throw std::invalid_argument("PowerModel: standby must not draw less than off");
  }
  if (park_latency_s < 0.0 || wake_latency_s < 0.0) {
    throw std::invalid_argument("PowerModel: transition latencies must be nonnegative");
  }
}

}  // namespace heteroplace::power
