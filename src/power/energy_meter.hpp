#pragma once

// EnergyMeter: exact integration of per-node power over simulated time.
//
// Draw is piecewise-constant between PowerManager transitions (see
// power_model.hpp), so the meter needs no sampling: every set_draw folds
// the elapsed rectangle (draw × dt) into the node's accumulator and
// switches the draw. Queries are non-mutating — energy_wh(now) adds the
// in-progress rectangle on the fly — so samplers can read mid-run
// without perturbing the integration state.

#include <cstddef>
#include <vector>

#include "util/units.hpp"

namespace heteroplace::power {

class EnergyMeter {
 public:
  /// Meter `node_count` nodes, all drawing `initial_draw_w` from `start`.
  EnergyMeter(std::size_t node_count, double initial_draw_w, util::Seconds start);

  /// Switch a node's draw at time `now` (>= the node's last event;
  /// throws std::invalid_argument on time going backwards).
  void set_draw(std::size_t node, double watts, util::Seconds now);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  /// Instantaneous draw (W), summed over nodes.
  [[nodiscard]] double total_draw_w() const;
  [[nodiscard]] double node_draw_w(std::size_t node) const;
  /// Energy consumed through `now` (Wh), summed over nodes.
  [[nodiscard]] double total_energy_wh(util::Seconds now) const;
  [[nodiscard]] double node_energy_wh(std::size_t node, util::Seconds now) const;

 private:
  struct NodeMeter {
    double draw_w{0.0};
    double energy_wh{0.0};  // accumulated through last_t
    double last_t{0.0};
  };
  std::vector<NodeMeter> nodes_;
};

}  // namespace heteroplace::power
