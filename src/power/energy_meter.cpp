#include "power/energy_meter.hpp"

#include <stdexcept>

namespace heteroplace::power {

namespace {
constexpr double kSecondsPerHour = 3600.0;
}

EnergyMeter::EnergyMeter(std::size_t node_count, double initial_draw_w, util::Seconds start) {
  if (initial_draw_w < 0.0) {
    throw std::invalid_argument("EnergyMeter: initial draw must be nonnegative");
  }
  nodes_.assign(node_count, NodeMeter{initial_draw_w, 0.0, start.get()});
}

void EnergyMeter::set_draw(std::size_t node, double watts, util::Seconds now) {
  if (watts < 0.0) throw std::invalid_argument("EnergyMeter::set_draw: negative draw");
  NodeMeter& m = nodes_.at(node);
  if (now.get() < m.last_t) {
    throw std::invalid_argument("EnergyMeter::set_draw: time went backwards");
  }
  m.energy_wh += m.draw_w * (now.get() - m.last_t) / kSecondsPerHour;
  m.last_t = now.get();
  m.draw_w = watts;
}

double EnergyMeter::total_draw_w() const {
  double total = 0.0;
  for (const NodeMeter& m : nodes_) total += m.draw_w;
  return total;
}

double EnergyMeter::node_draw_w(std::size_t node) const { return nodes_.at(node).draw_w; }

double EnergyMeter::total_energy_wh(util::Seconds now) const {
  double total = 0.0;
  for (const NodeMeter& m : nodes_) {
    total += m.energy_wh + m.draw_w * (now.get() - m.last_t) / kSecondsPerHour;
  }
  return total;
}

double EnergyMeter::node_energy_wh(std::size_t node, util::Seconds now) const {
  const NodeMeter& m = nodes_.at(node);
  return m.energy_wh + m.draw_w * (now.get() - m.last_t) / kSecondsPerHour;
}

}  // namespace heteroplace::power
