#pragma once

// Per-node power model: sleep-state draws, transition latencies, and a
// P-state (DVFS) ladder.
//
// The model follows the S/P-state vectors of datacenter energy
// simulators (cloudsim-eec and kin): a machine is either active —
// drawing its current P-state's wattage and running at that P-state's
// speed — or parked in a sleep state (standby keeps memory powered for a
// fast wake, off draws nothing but wakes slowly in real hardware; here
// both share one configured wake latency, they differ only in draw).
// Transitions are not free: parking and waking each take a deterministic
// latency during which the node draws active power and is off-limits to
// placement.
//
// Draw depends only on (power state, P-state) — never on instantaneous
// utilization — so a node's power is piecewise-constant between
// PowerManager transitions and the EnergyMeter integrates it exactly
// (closed-form testable, no sampling error).

#include <string>
#include <vector>

namespace heteroplace::power {

/// One DVFS operating point. Entry 0 is full speed; deeper entries trade
/// speed for wattage (the power-cap throttle walks down this ladder).
struct PState {
  double speed_factor{1.0};  // (0, 1]; scales node CPU capacity
  double watts{220.0};       // active draw at this operating point
};

/// How deep a parked node sleeps. Standby (suspend-to-RAM) keeps a small
/// draw; off draws off_w (typically 0).
enum class ParkDepth { kStandby, kOff };

/// "standby" | "off"; throws std::invalid_argument otherwise.
[[nodiscard]] ParkDepth park_depth_from_string(const std::string& name);
[[nodiscard]] const char* to_string(ParkDepth d);

struct PowerModel {
  /// P-state ladder; pstates[0] must have speed_factor == 1.
  std::vector<PState> pstates{{1.0, 220.0}, {0.85, 187.0}, {0.7, 158.0}, {0.55, 132.0}};
  double standby_w{15.0};
  double off_w{0.0};
  double park_latency_s{10.0};
  double wake_latency_s{60.0};

  /// Default four-point ladder scaled to a given full-power draw: speed
  /// factors {1, .85, .7, .55} with wattage falling sublinearly (leakage
  /// and platform power do not scale with frequency).
  [[nodiscard]] static PowerModel ladder(double active_w, int pstate_count = 4);

  /// Active draw at P-state `p` (clamped into the ladder).
  [[nodiscard]] double active_w(int p) const;
  /// Speed factor at P-state `p` (clamped into the ladder).
  [[nodiscard]] double speed_at(int p) const;
  [[nodiscard]] double parked_w(ParkDepth d) const {
    return d == ParkDepth::kStandby ? standby_w : off_w;
  }
  [[nodiscard]] int deepest_pstate() const { return static_cast<int>(pstates.size()) - 1; }

  /// Fail loud on an unusable model: empty ladder, pstates[0] not full
  /// speed, non-monotone speeds, nonpositive wattage at an active point,
  /// negative parked draws or latencies. Throws std::invalid_argument.
  void validate() const;
};

}  // namespace heteroplace::power
