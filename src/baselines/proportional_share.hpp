#pragma once

// Utility-unaware proportional-share baseline.
//
// Divides cluster CPU among workloads by static weight (or by raw
// demand), then reuses the same discrete placement machinery as the
// utility-driven policy. The contrast isolates the contribution of
// utility-shaped targets: this policy is "fair" in CPU but blind to SLAs,
// so it cannot trade response-time slack against job deadlines.

#include "core/policy.hpp"
#include "utility/job_utility.hpp"
#include "utility/tx_utility.hpp"

#include <memory>

namespace heteroplace::baselines {

enum class ShareMode {
  kEqualPerWorkload,   // every job and every app has weight 1
  kDemandProportional  // weight = CPU demand for max utility
};

struct ProportionalShareConfig {
  ShareMode mode{ShareMode::kEqualPerWorkload};
  core::SolverConfig solver;
};

class ProportionalSharePolicy final : public core::PlacementPolicy {
 public:
  ProportionalSharePolicy(std::shared_ptr<const utility::JobUtilityModel> job_model,
                          std::shared_ptr<const utility::TxUtilityModel> tx_model,
                          ProportionalShareConfig config = {})
      : job_model_(std::move(job_model)), tx_model_(std::move(tx_model)), config_(config) {}

  [[nodiscard]] core::PolicyOutput decide(const core::World& world, util::Seconds now) override;
  [[nodiscard]] std::string name() const override {
    return config_.mode == ShareMode::kEqualPerWorkload ? "proportional-equal"
                                                        : "proportional-demand";
  }

 private:
  std::shared_ptr<const utility::JobUtilityModel> job_model_;
  std::shared_ptr<const utility::TxUtilityModel> tx_model_;
  ProportionalShareConfig config_;
};

}  // namespace heteroplace::baselines
