#pragma once

// Static-partition baseline.
//
// The classic pre-virtualization arrangement the paper argues against
// (cf. its reference [6], static consolidation): a fixed fraction of the
// nodes is dedicated to the transactional tier, the rest run batch jobs
// FCFS at full speed, and nothing ever moves between the partitions.

#include "core/policy.hpp"

namespace heteroplace::baselines {

struct StaticPartitionConfig {
  /// Fraction of nodes dedicated to transactional apps (rounded up).
  double tx_node_fraction{0.4};
};

class StaticPartitionPolicy final : public core::PlacementPolicy {
 public:
  explicit StaticPartitionPolicy(StaticPartitionConfig config = {}) : config_(config) {}

  [[nodiscard]] core::PolicyOutput decide(const core::World& world, util::Seconds now) override;
  [[nodiscard]] std::string name() const override { return "static-partition"; }

 private:
  StaticPartitionConfig config_;
};

}  // namespace heteroplace::baselines
