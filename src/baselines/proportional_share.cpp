#include "baselines/proportional_share.hpp"

#include <algorithm>
#include <vector>

#include "core/utility_policy.hpp"

namespace heteroplace::baselines {

core::PolicyOutput ProportionalSharePolicy::decide(const core::World& world, util::Seconds now) {
  core::PolicyOutput out;
  core::PlacementProblem problem = core::build_problem_skeleton(world);

  const double capacity = world.cluster().placeable_capacity().cpu.get();
  const auto jobs = world.active_jobs();

  // --- weights ---------------------------------------------------------------
  std::vector<double> job_weight(problem.jobs.size(), 1.0);
  std::vector<double> app_weight(problem.apps.size(), 1.0);
  if (config_.mode == ShareMode::kDemandProportional) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      job_weight[i] = job_model_->demand_for_max_utility(*jobs[i], now).get();
    }
    for (std::size_t a = 0; a < world.apps().size(); ++a) {
      const auto& app = world.apps()[a];
      app_weight[a] =
          tx_model_->demand_for_max_utility(app.spec(), app.arrival_rate(now)).get();
    }
  }
  double total_weight = 0.0;
  for (double w : job_weight) total_weight += w;
  for (double w : app_weight) total_weight += w;
  if (total_weight <= 0.0) total_weight = 1.0;

  // --- targets: proportional share, capped at each consumer's demand --------
  double jobs_target = 0.0;
  double jobs_demand = 0.0;
  for (std::size_t i = 0; i < problem.jobs.size(); ++i) {
    const double share = capacity * job_weight[i] / total_weight;
    const double demand = job_model_->demand_for_max_utility(*jobs[i], now).get();
    problem.jobs[i].target = util::CpuMhz{std::min(share, demand)};
    // FCFS urgency: older submissions first.
    problem.jobs[i].urgency = 1.0e9 - jobs[i]->spec().submit_time.get();
    jobs_target += problem.jobs[i].target.get();
    jobs_demand += demand;
  }
  for (std::size_t a = 0; a < problem.apps.size(); ++a) {
    const auto& app = world.apps()[a];
    const double lambda = app.arrival_rate(now);
    const double share = capacity * app_weight[a] / total_weight;
    const double demand = tx_model_->demand_for_max_utility(app.spec(), lambda).get();
    problem.apps[a].target = util::CpuMhz{std::min(share, demand)};

    core::PolicyDiagnostics::AppDiag d;
    d.id = app.id();
    d.lambda = lambda;
    d.demand = util::CpuMhz{demand};
    d.target = problem.apps[a].target;
    out.diag.apps.push_back(d);
  }

  out.diag.jobs_target = util::CpuMhz{jobs_target};
  out.diag.jobs_demand = util::CpuMhz{jobs_demand};
  out.diag.active_jobs = static_cast<int>(jobs.size());

  // Hypothetical utility the proportional targets would yield (lets the
  // ablation compare utility outcomes across policies).
  double u_sum = 0.0;
  double u_min = 1e300;
  double u_max = -1e300;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const double u = job_model_->hypothetical_utility(*jobs[i], now, problem.jobs[i].target);
    u_sum += u;
    u_min = std::min(u_min, u);
    u_max = std::max(u_max, u);
  }
  out.diag.jobs_avg_hyp_utility = jobs.empty() ? 0.0 : u_sum / static_cast<double>(jobs.size());
  out.diag.jobs_min_hyp_utility = jobs.empty() ? 0.0 : u_min;
  out.diag.jobs_max_hyp_utility = jobs.empty() ? 0.0 : u_max;

  core::SolverResult solved = core::solve_placement(problem, config_.solver);
  out.plan = std::move(solved.plan);
  out.diag.solver = solved.stats;
  return out;
}

}  // namespace heteroplace::baselines
