#include "baselines/static_partition.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

namespace heteroplace::baselines {

core::PolicyOutput StaticPartitionPolicy::decide(const core::World& world, util::Seconds now) {
  core::PolicyOutput out;
  const auto& cl = world.cluster();
  const auto& nodes = cl.nodes();
  if (nodes.empty()) return out;

  const int n_nodes = static_cast<int>(nodes.size());
  const int n_tx =
      std::clamp(static_cast<int>(std::ceil(config_.tx_node_fraction * n_nodes)), 0, n_nodes);

  // --- transactional tier: one instance of every app on each TX node -----
  // (subject to memory), CPU split evenly among the apps on a node.
  const auto n_apps = world.apps().size();
  for (int ni = 0; ni < n_tx; ++ni) {
    const auto& node = nodes[ni];
    if (!node.placeable()) continue;  // parked by the power manager
    double mem_free = node.capacity().mem.get();
    std::size_t hosted = 0;
    for (const auto& app : world.apps()) {
      if (mem_free < app.spec().instance_memory.get()) continue;
      mem_free -= app.spec().instance_memory.get();
      ++hosted;
    }
    if (hosted == 0) continue;
    const double share = node.placeable_cpu().get() / static_cast<double>(hosted);
    double mem_check = node.capacity().mem.get();
    for (const auto& app : world.apps()) {
      if (mem_check < app.spec().instance_memory.get()) continue;
      mem_check -= app.spec().instance_memory.get();
      const double capped = std::min(share, app.spec().max_cpu_per_instance.get());
      out.plan.instances.push_back({app.id(), node.id(), util::CpuMhz{capped}});
    }
  }

  // --- batch tier: FCFS at full speed on the remaining nodes ---------------
  struct NodeScratch {
    util::NodeId id;
    double cpu_free;
    double mem_free;
  };
  std::vector<NodeScratch> job_nodes;
  for (int ni = n_tx; ni < n_nodes; ++ni) {
    if (!nodes[ni].placeable()) continue;  // parked by the power manager
    job_nodes.push_back({nodes[ni].id(), nodes[ni].placeable_cpu().get(),
                         nodes[ni].capacity().mem.get()});
  }
  auto scratch_of = [&](util::NodeId id) -> NodeScratch* {
    for (auto& ns : job_nodes) {
      if (ns.id == id) return &ns;
    }
    return nullptr;
  };

  // Keep currently-placed jobs in place (stability; also holds mid-action
  // jobs steady), then fill free slots FCFS by submit time.
  std::vector<const workload::Job*> placed;
  std::vector<const workload::Job*> waiting;
  for (const workload::Job* job : world.active_jobs()) {
    switch (job->phase()) {
      case workload::JobPhase::kStarting:
      case workload::JobPhase::kRunning:
      case workload::JobPhase::kResuming:
      case workload::JobPhase::kMigrating:
        placed.push_back(job);
        break;
      case workload::JobPhase::kPending:
      case workload::JobPhase::kSuspended:
        waiting.push_back(job);
        break;
      default:
        break;
    }
  }

  for (const workload::Job* job : placed) {
    NodeScratch* ns = scratch_of(job->node());
    if (ns == nullptr) continue;  // on a TX node somehow: let it be suspended
    const double speed = std::min(job->spec().max_speed.get(), ns->cpu_free);
    ns->cpu_free -= speed;
    ns->mem_free -= job->spec().memory.get();
    out.plan.jobs.push_back({job->id(), ns->id, util::CpuMhz{speed}});
  }

  std::stable_sort(waiting.begin(), waiting.end(),
                   [](const workload::Job* a, const workload::Job* b) {
                     if (a->spec().submit_time != b->spec().submit_time) {
                       return a->spec().submit_time < b->spec().submit_time;
                     }
                     return a->id() < b->id();
                   });
  for (const workload::Job* job : waiting) {
    // Full-speed slots only: this scheduler does not degrade job speed.
    for (auto& ns : job_nodes) {
      if (ns.mem_free >= job->spec().memory.get() &&
          ns.cpu_free >= job->spec().max_speed.get() - 1e-9) {
        ns.mem_free -= job->spec().memory.get();
        ns.cpu_free -= job->spec().max_speed.get();
        out.plan.jobs.push_back({job->id(), ns.id, job->spec().max_speed});
        break;
      }
    }
  }

  // --- diagnostics -----------------------------------------------------------
  out.diag.active_jobs = static_cast<int>(placed.size() + waiting.size());
  out.diag.jobs_target = out.plan.total_job_cpu();
  for (const auto& app : world.apps()) {
    core::PolicyDiagnostics::AppDiag d;
    d.id = app.id();
    d.lambda = app.arrival_rate(now);
    d.target = out.plan.app_cpu(app.id());
    out.diag.apps.push_back(d);
  }
  (void)n_apps;
  return out;
}

}  // namespace heteroplace::baselines
