#include "core/controller.hpp"

#include <algorithm>
#include <stdexcept>

namespace heteroplace::core {

void PlacementController::start() {
  if (config_.cycle.get() <= 0.0) {
    throw std::invalid_argument("PlacementController: cycle must be positive");
  }
  if (config_.first_cycle_at.get() < 0.0) {
    throw std::invalid_argument("PlacementController: first_cycle_at must be nonnegative");
  }
  const util::Seconds first = std::max(config_.first_cycle_at, engine_.now());
  engine_.schedule_at(first, sim::EventPriority::kController, [this] {
    run_cycle();
    schedule_next();
  });
}

void PlacementController::schedule_next() {
  engine_.schedule_in(config_.cycle, sim::EventPriority::kController, [this] {
    run_cycle();
    schedule_next();
  });
}

void PlacementController::run_cycle() {
  const util::Seconds now = engine_.now();

  // Fold elapsed progress into every job before the policy reads state.
  for (workload::Job* job : world_.active_jobs()) job->advance_to(now);

  PolicyOutput out = policy_->decide(world_, now);
  executor_.apply(out.plan);
  ++cycles_;

  if (observer_) {
    CycleReport report;
    report.t = now;
    report.diag = std::move(out.diag);
    report.actions = executor_.take_counts_delta();
    observer_(report);
  }
}

}  // namespace heteroplace::core
