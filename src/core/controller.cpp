#include "core/controller.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/utility_policy.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace heteroplace::core {

void PlacementController::set_obs(const obs::ObsContext& ctx) {
  obs_ = ctx;
  if (obs_.metrics != nullptr) {
    cycles_metric_ = &obs_.metrics->counter("controller_cycles_total",
                                            "Control cycles evaluated", obs_.labels);
    missed_cycles_metric_ = &obs_.metrics->counter(
        "controller_missed_cycles_total", "Cycles skipped while offline (blackout)", obs_.labels);
  }
  policy_->set_obs(obs_);
  executor_.set_obs(obs_);
}

void PlacementController::start() {
  if (config_.cycle.get() <= 0.0) {
    throw std::invalid_argument("PlacementController: cycle must be positive");
  }
  if (config_.first_cycle_at.get() < 0.0) {
    throw std::invalid_argument("PlacementController: first_cycle_at must be nonnegative");
  }
  const util::Seconds first = std::max(config_.first_cycle_at, engine_.now());
  next_cycle_at_ = first;
  engine_.schedule_at(first, sim::EventPriority::kController, config_.shard, [this] {
    run_cycle();
    schedule_next();
  });
}

void PlacementController::schedule_next() {
  next_cycle_at_ = engine_.now() + config_.cycle;
  engine_.schedule_in(config_.cycle, sim::EventPriority::kController, config_.shard, [this] {
    run_cycle();
    schedule_next();
  });
}

void PlacementController::run_cycle() {
  const util::Seconds now = engine_.now();

  // Blacked-out domains keep their schedule but evaluate nothing: the
  // control plane is down while the machines keep running.
  if (!online_) {
    ++missed_cycles_;
    if (missed_cycles_metric_ != nullptr) missed_cycles_metric_->inc();
    if (obs_.trace != nullptr) {
      obs_.trace->instant(obs_.pid, obs::Lane::kController, "cycle_skipped", now.get());
    }
    return;
  }

  const obs::ScopedTimer cycle_timer(obs_.profiler, obs::Phase::kControllerCycle);
  if (obs_.trace != nullptr) {
    obs_.trace->begin(obs_.pid, obs::Lane::kController, "cycle", now.get(),
                      {{"active_jobs", static_cast<double>(world_.active_jobs().size())}});
  }

  // Fold elapsed progress into every job before the policy reads state.
  for (workload::Job* job : world_.active_jobs()) job->advance_to(now);

  PolicyOutput out = policy_->decide(world_, now);
  executor_.apply(out.plan);
  ++cycles_;
  if (cycles_metric_ != nullptr) cycles_metric_->inc();
  if (obs_.trace != nullptr) {
    obs_.trace->end(obs_.pid, obs::Lane::kController, "cycle", now.get(),
                    {{"u_star", out.diag.u_star},
                     {"jobs_placed", static_cast<double>(out.diag.solver.jobs_placed)},
                     {"jobs_waiting", static_cast<double>(out.diag.solver.jobs_waiting)}});
  }

  // Post-apply snapshot for same-timestamp consumers (PowerManager runs
  // at kPower after this controller and would otherwise rebuild it).
  if (cache_enabled_) {
    cached_ = build_problem_skeleton(world_);
    cached_at_ = now;
    cache_valid_ = true;
  }

  if (observer_) {
    CycleReport report;
    report.t = now;
    report.diag = std::move(out.diag);
    report.actions = executor_.take_counts_delta();
    observer_(report);
  }
}

void PlacementController::set_online(bool online) {
  if (online == online_) return;
  online_ = online;
  if (!online_) {
    cache_valid_ = false;  // never share a pre-blackout snapshot
    return;
  }
  // Back online: the world changed arbitrarily while this controller was
  // blind, so drop policy warm-start state and run one resync cycle at
  // the recovery timestamp (after the fault event that triggered it).
  policy_->on_resync();
  engine_.schedule_at(engine_.now(), sim::EventPriority::kController, config_.shard,
                      [this] { run_cycle(); });
}

}  // namespace heteroplace::core
