#pragma once

// Utility consumers: the common currency abstraction.
//
// The equalizer sees every workload — each long-running job and each
// transactional application — as a "consumer" exposing a monotone
// non-decreasing utility-of-allocation curve and its inverse. This is the
// mechanism that makes the heterogeneous workloads' performance
// *comparable*, which is the paper's central idea.

#include <memory>
#include <vector>

#include "util/ids.hpp"
#include "util/units.hpp"
#include "utility/job_utility.hpp"
#include "utility/tx_utility.hpp"
#include "workload/job.hpp"
#include "workload/transactional.hpp"

namespace heteroplace::core {

enum class ConsumerKind { kJob, kTxApp };

class UtilityConsumer {
 public:
  virtual ~UtilityConsumer() = default;

  /// Hypothetical utility if granted `alloc` CPU from now on.
  /// Monotone non-decreasing in alloc.
  [[nodiscard]] virtual double utility_at(util::CpuMhz alloc) const = 0;

  /// Minimum CPU that achieves utility `u`, clamped to [0, demand_max()].
  /// (If `u` exceeds what demand_max() can deliver, returns demand_max().)
  [[nodiscard]] virtual util::CpuMhz alloc_for_utility(double u) const = 0;

  /// CPU beyond which utility no longer improves (the consumer's demand —
  /// the paper's Figure-2 "demand" series sums these).
  [[nodiscard]] virtual util::CpuMhz demand_max() const = 0;

  /// Utility achieved at demand_max().
  [[nodiscard]] virtual double utility_max() const = 0;

  [[nodiscard]] virtual ConsumerKind kind() const = 0;
  [[nodiscard]] virtual util::JobId job_id() const { return util::JobId{}; }
  [[nodiscard]] virtual util::AppId app_id() const { return util::AppId{}; }
};

/// Consumer view of a long-running job at a specific controller instant.
class JobConsumer final : public UtilityConsumer {
 public:
  JobConsumer(const workload::Job& job, const utility::JobUtilityModel& model, util::Seconds now)
      : job_(&job), model_(&model), now_(now) {}

  [[nodiscard]] double utility_at(util::CpuMhz alloc) const override {
    return model_->hypothetical_utility(*job_, now_, alloc);
  }
  [[nodiscard]] util::CpuMhz alloc_for_utility(double u) const override {
    return model_->speed_for_utility(*job_, now_, u);
  }
  [[nodiscard]] util::CpuMhz demand_max() const override {
    return model_->demand_for_max_utility(*job_, now_);
  }
  [[nodiscard]] double utility_max() const override {
    return model_->max_achievable_utility(*job_, now_);
  }
  [[nodiscard]] ConsumerKind kind() const override { return ConsumerKind::kJob; }
  [[nodiscard]] util::JobId job_id() const override { return job_->id(); }

  [[nodiscard]] const workload::Job& job() const { return *job_; }

 private:
  const workload::Job* job_;
  const utility::JobUtilityModel* model_;
  util::Seconds now_;
};

/// Consumer view of a transactional app at its current arrival rate.
class TxConsumer final : public UtilityConsumer {
 public:
  TxConsumer(const workload::TxApp& app, const utility::TxUtilityModel& model, util::Seconds now)
      : app_(&app), model_(&model), lambda_(app.arrival_rate(now)) {}

  /// Use an externally supplied arrival-rate estimate (e.g. a smoothed,
  /// noisy monitor reading) instead of the ground-truth trace.
  TxConsumer(const workload::TxApp& app, const utility::TxUtilityModel& model, double lambda)
      : app_(&app), model_(&model), lambda_(lambda) {}

  [[nodiscard]] double utility_at(util::CpuMhz alloc) const override {
    return model_->utility(app_->spec(), lambda_, alloc);
  }
  [[nodiscard]] util::CpuMhz alloc_for_utility(double u) const override {
    return model_->alloc_for_utility(app_->spec(), lambda_, u);
  }
  [[nodiscard]] util::CpuMhz demand_max() const override {
    return model_->demand_for_max_utility(app_->spec(), lambda_);
  }
  [[nodiscard]] double utility_max() const override { return model_->max_utility(app_->spec()); }
  [[nodiscard]] ConsumerKind kind() const override { return ConsumerKind::kTxApp; }
  [[nodiscard]] util::AppId app_id() const override { return app_->id(); }

  [[nodiscard]] double lambda() const { return lambda_; }

 private:
  const workload::TxApp* app_;
  const utility::TxUtilityModel* model_;
  double lambda_;
};

}  // namespace heteroplace::core
