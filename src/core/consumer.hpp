#pragma once

// Utility consumers: the common currency abstraction.
//
// The equalizer sees every workload — each long-running job and each
// transactional application — as a "consumer" exposing a monotone
// non-decreasing utility-of-allocation curve and its inverse. This is the
// mechanism that makes the heterogeneous workloads' performance
// *comparable*, which is the paper's central idea.

#include <memory>
#include <vector>

#include "util/ids.hpp"
#include "util/units.hpp"
#include "utility/job_utility.hpp"
#include "utility/tx_utility.hpp"
#include "workload/job.hpp"
#include "workload/transactional.hpp"

namespace heteroplace::core {

enum class ConsumerKind { kJob, kTxApp };

/// Flattened description of a consumer's CPU-for-utility curve.
///
/// The equalizer evaluates Σ alloc_for_utility(u) dozens of times per
/// control cycle over thousands of consumers; going through the virtual
/// interface each time (and, for transactional apps, re-running an inner
/// bisection through std::function) dominates the cycle cost. A consumer
/// that can describe its inverse curve in closed parameters exports them
/// here once per equalize() call, and the equalizer evaluates the curve
/// from flat arrays. `kGeneric` consumers simply keep the virtual path.
struct CurveParams {
  enum class Form {
    kGeneric,     // no closed form: call alloc_for_utility(u) virtually
    kZero,        // alloc_for_utility(u) == 0 for all u (finished / idle)
    kJobInverse,  // job curve: see JobUtilityModel::speed_for_utility
    kTxQueueing,  // transactional curve: see TxUtilityModel::alloc_for_utility
  };
  Form form{Form::kGeneric};

  // kJobInverse — alloc(u) = clamp(remaining / (submit + fn⁻¹(u·w)·goal − now),
  //                                0, max_speed), max_speed if the horizon
  // has passed. Consumers sharing (fn, importance) also share fn⁻¹(u·w),
  // which the equalizer therefore solves once per group per iteration.
  const utility::UtilityFunction* fn{nullptr};
  double importance{1.0};
  double remaining{0.0};
  double max_speed{0.0};
  double submit{0.0};
  double goal{0.0};
  double now{0.0};

  // kTxQueueing — inverse of the M/G/1-PS + flow-control utility, solved
  // by the same bisection as TxUtilityModel::alloc_for_utility but with
  // the model composition inlined and the demand ceiling precomputed.
  double lambda{0.0};
  double service_demand{0.0};
  double rt_goal{0.0};
  double utility_cap{0.0};
  double rho_cap{0.0};
  double throughput_exponent{0.0};
  double demand_hi{0.0};
};

class UtilityConsumer {
 public:
  virtual ~UtilityConsumer() = default;

  /// Hypothetical utility if granted `alloc` CPU from now on.
  /// Monotone non-decreasing in alloc.
  [[nodiscard]] virtual double utility_at(util::CpuMhz alloc) const = 0;

  /// Minimum CPU that achieves utility `u`, clamped to [0, demand_max()].
  /// (If `u` exceeds what demand_max() can deliver, returns demand_max().)
  [[nodiscard]] virtual util::CpuMhz alloc_for_utility(double u) const = 0;

  /// CPU beyond which utility no longer improves (the consumer's demand —
  /// the paper's Figure-2 "demand" series sums these).
  [[nodiscard]] virtual util::CpuMhz demand_max() const = 0;

  /// Utility achieved at demand_max().
  [[nodiscard]] virtual double utility_max() const = 0;

  [[nodiscard]] virtual ConsumerKind kind() const = 0;
  [[nodiscard]] virtual util::JobId job_id() const { return util::JobId{}; }
  [[nodiscard]] virtual util::AppId app_id() const { return util::AppId{}; }

  /// Flat curve parameters for the equalizer's hot loop. The default is
  /// the generic (virtual-dispatch) form. Per-consumer inverses must be
  /// identical either way — the params are a performance contract, not a
  /// policy — though the equalizer's totals may differ in the last ulp
  /// because the cache sums by consumer kind rather than input order
  /// (u* agrees within the bisection tolerance; see EqualizerOptions).
  [[nodiscard]] virtual CurveParams curve_params() const { return {}; }
};

/// Consumer view of a long-running job at a specific controller instant.
///
/// `speed_cap` is the class-aware delivered-speed term: the delivered
/// MHz of the largest machine the job's constraints admit. On a
/// heterogeneous cluster a job cannot progress faster than the best
/// compatible node delivers, so its utility curve saturates there and
/// the equalizer prices its demand against achievable speed, not the
/// nominal spec. The default (+inf) takes the exact pre-class code path.
class JobConsumer final : public UtilityConsumer {
 public:
  JobConsumer(const workload::Job& job, const utility::JobUtilityModel& model, util::Seconds now,
              util::CpuMhz speed_cap = util::CpuMhz{kUncapped})
      : job_(&job), model_(&model), now_(now), speed_cap_(speed_cap) {}

  [[nodiscard]] double utility_at(util::CpuMhz alloc) const override {
    if (capped() && alloc > speed_cap_) alloc = speed_cap_;
    return model_->hypothetical_utility(*job_, now_, alloc);
  }
  [[nodiscard]] util::CpuMhz alloc_for_utility(double u) const override {
    const util::CpuMhz a = model_->speed_for_utility(*job_, now_, u);
    return capped() && a > speed_cap_ ? speed_cap_ : a;
  }
  [[nodiscard]] util::CpuMhz demand_max() const override {
    const util::CpuMhz d = model_->demand_for_max_utility(*job_, now_);
    return capped() && d > speed_cap_ ? speed_cap_ : d;
  }
  [[nodiscard]] double utility_max() const override {
    if (capped()) return model_->hypothetical_utility(*job_, now_, demand_max());
    return model_->max_achievable_utility(*job_, now_);
  }
  [[nodiscard]] ConsumerKind kind() const override { return ConsumerKind::kJob; }
  [[nodiscard]] util::JobId job_id() const override { return job_->id(); }

  [[nodiscard]] CurveParams curve_params() const override {
    CurveParams p;
    if (job_->finished()) {  // speed_for_utility returns 0 for finished jobs
      p.form = CurveParams::Form::kZero;
      return p;
    }
    const auto& spec = job_->spec();
    p.form = CurveParams::Form::kJobInverse;
    p.fn = &model_->fn();
    p.importance = spec.importance > 0.0 ? spec.importance : 1.0;
    p.remaining = job_->remaining().get();
    p.max_speed =
        capped() && spec.max_speed > speed_cap_ ? speed_cap_.get() : spec.max_speed.get();
    p.submit = spec.submit_time.get();
    p.goal = spec.completion_goal.get();
    p.now = now_.get();
    return p;
  }

  [[nodiscard]] const workload::Job& job() const { return *job_; }
  [[nodiscard]] util::CpuMhz speed_cap() const { return speed_cap_; }

  static constexpr double kUncapped = 1.0e300;

 private:
  [[nodiscard]] bool capped() const { return speed_cap_.get() < kUncapped; }

  const workload::Job* job_;
  const utility::JobUtilityModel* model_;
  util::Seconds now_;
  util::CpuMhz speed_cap_;
};

/// Consumer view of a transactional app at its current arrival rate.
class TxConsumer final : public UtilityConsumer {
 public:
  TxConsumer(const workload::TxApp& app, const utility::TxUtilityModel& model, util::Seconds now)
      : app_(&app), model_(&model), lambda_(app.arrival_rate(now)) {}

  /// Use an externally supplied arrival-rate estimate (e.g. a smoothed,
  /// noisy monitor reading) instead of the ground-truth trace.
  TxConsumer(const workload::TxApp& app, const utility::TxUtilityModel& model, double lambda)
      : app_(&app), model_(&model), lambda_(lambda) {}

  [[nodiscard]] double utility_at(util::CpuMhz alloc) const override {
    return model_->utility(app_->spec(), lambda_, alloc);
  }
  [[nodiscard]] util::CpuMhz alloc_for_utility(double u) const override {
    return model_->alloc_for_utility(app_->spec(), lambda_, u);
  }
  [[nodiscard]] util::CpuMhz demand_max() const override {
    return model_->demand_for_max_utility(app_->spec(), lambda_);
  }
  [[nodiscard]] double utility_max() const override { return model_->max_utility(app_->spec()); }
  [[nodiscard]] ConsumerKind kind() const override { return ConsumerKind::kTxApp; }
  [[nodiscard]] util::AppId app_id() const override { return app_->id(); }

  [[nodiscard]] CurveParams curve_params() const override {
    CurveParams p;
    if (lambda_ <= 0.0) {  // unloaded app: alloc_for_utility returns 0
      p.form = CurveParams::Form::kZero;
      return p;
    }
    const auto& spec = app_->spec();
    p.form = CurveParams::Form::kTxQueueing;
    p.importance = spec.importance > 0.0 ? spec.importance : 1.0;
    p.lambda = lambda_;
    p.service_demand = spec.service_demand;
    p.rt_goal = spec.rt_goal.get();
    p.utility_cap = spec.utility_cap;
    p.rho_cap = spec.max_utilization;
    p.throughput_exponent = spec.throughput_exponent;
    p.demand_hi = model_->demand_for_max_utility(spec, lambda_).get();
    return p;
  }

  [[nodiscard]] double lambda() const { return lambda_; }

 private:
  const workload::TxApp* app_;
  const utility::TxUtilityModel* model_;
  double lambda_;
};

}  // namespace heteroplace::core
