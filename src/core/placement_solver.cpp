#include "core/placement_solver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

namespace heteroplace::core {

namespace {

constexpr double kEps = 1e-9;
constexpr std::size_t kNone = static_cast<std::size_t>(-1);

/// Mutable per-node ledger used while the solver assembles the placement.
///
/// The per-node aggregates (target_sum, granted_sum) are maintained
/// incrementally: the seed implementation re-summed residents inside
/// target_headroom(), the instance-shortfall fixup, and the starvation
/// rescue, which made those phases O(apps·nodes·residents) /
/// O(jobs·nodes·residents) — the dominant cost at cluster scale.
struct NodeScratch {
  util::NodeId id{};
  double cpu_cap{0.0};
  double mem_cap{0.0};
  double mem_free{0.0};
  double target_sum{0.0};   // Σ residents' targets
  double granted_sum{0.0};  // Σ residents' grants (valid from phase 5 on)

  struct Resident {
    bool is_job{true};
    std::size_t index{0};  // into problem.jobs or problem.apps
    double target{0.0};
    double cap{0.0};
    double grant{0.0};
    double urgency{0.0};       // jobs only: eviction ranking
    bool evictable{false};     // jobs only
    double memory{0.0};
    std::uint32_t seq{0};  // insertion order; survives swap-removal
  };
  std::vector<Resident> residents;

  [[nodiscard]] double target_headroom() const { return cpu_cap - target_sum; }

  void add_resident(Resident r) {
    mem_free -= r.memory;
    target_sum += r.target;
    residents.push_back(r);
  }

  /// Swap-remove the resident at `pos` (O(1); does not preserve position
  /// order — residents carry `seq` for the phases that need insertion
  /// order). Releases its memory and target from the aggregates.
  Resident take_resident(std::size_t pos) {
    Resident r = residents[pos];
    mem_free += r.memory;
    target_sum -= r.target;
    granted_sum -= r.grant;
    residents[pos] = residents.back();
    residents.pop_back();
    return r;
  }
};

/// Proportional-to-target fill of `members` within `budget`, respecting
/// per-resident caps (peeling off capped residents). Returns the budget
/// left over.
double proportional_fill(std::vector<NodeScratch::Resident*> active, double budget) {
  while (!active.empty() && budget > kEps) {
    double total_target = 0.0;
    for (const auto* r : active) total_target += r->target;
    if (total_target <= budget + kEps) {
      // Everyone gets their full target (cap can bind below target only
      // if the caller passed target > cap; clamp defensively).
      for (auto* r : active) {
        r->grant = std::min(r->target, r->cap);
        budget -= r->grant;
      }
      return budget;
    }
    const double scale = budget / total_target;
    bool any_capped = false;
    for (std::size_t i = 0; i < active.size();) {
      NodeScratch::Resident* r = active[i];
      if (scale * r->target >= r->cap - kEps) {
        r->grant = r->cap;
        budget -= r->cap;
        active[i] = active.back();
        active.pop_back();
        any_capped = true;
      } else {
        ++i;
      }
    }
    if (!any_capped) {
      for (auto* r : active) {
        r->grant = scale * r->target;
      }
      return 0.0;
    }
  }
  return budget;
}

/// Distribute a node's CPU among its residents in two tiers: web
/// instances first (up to their targets — the transactional middleware
/// tier is capacity-guaranteed, mirroring the flow-controlled app servers
/// of the paper's prototype), then job containers share the remainder.
/// Without tiering, a proportional squeeze on a crowded node hits the
/// steep transactional utility curve far harder than the jobs' shallow
/// one and breaks the equalization that the continuous stage computed.
/// Leaves granted_sum consistent with the assigned grants.
void waterfill_node(NodeScratch& node, bool work_conserving) {
  for (auto& r : node.residents) r.grant = 0.0;
  std::vector<NodeScratch::Resident*> instances;
  std::vector<NodeScratch::Resident*> jobs;
  for (auto& r : node.residents) {
    if (r.target <= kEps) continue;
    (r.is_job ? jobs : instances).push_back(&r);
  }
  const double after_instances = proportional_fill(std::move(instances), node.cpu_cap);
  proportional_fill(std::move(jobs), after_instances);
  node.granted_sum = 0.0;
  for (const auto& r : node.residents) node.granted_sum += r.grant;
  (void)work_conserving;
}

/// Work conservation: spread a node's unallocated CPU equally among *job*
/// residents with headroom (batch work soaks idle cycles up to max
/// speed). Instances stay at their equalized targets — granting beyond
/// target would push the app's utility above the equalized level and
/// defeat the arbitration.
void spread_leftover_to_jobs(NodeScratch& node) {
  double remaining = node.cpu_cap - node.granted_sum;
  for (int pass = 0; pass < 64 && remaining > kEps; ++pass) {
    std::vector<NodeScratch::Resident*> open;
    for (auto& r : node.residents) {
      if (r.is_job && r.cap - r.grant > kEps) open.push_back(&r);
    }
    if (open.empty()) break;
    const double share = remaining / static_cast<double>(open.size());
    for (auto* r : open) {
      const double add = std::min(share, r->cap - r->grant);
      r->grant += add;
      remaining -= add;
    }
  }
  node.granted_sum = node.cpu_cap - remaining;
}

[[nodiscard]] bool job_holds_memory(workload::JobPhase p) {
  switch (p) {
    case workload::JobPhase::kStarting:
    case workload::JobPhase::kRunning:
    case workload::JobPhase::kResuming:
    case workload::JobPhase::kMigrating:
      return true;
    case workload::JobPhase::kPending:
    case workload::JobPhase::kSuspending:  // memory drains mid-cycle
    case workload::JobPhase::kSuspended:
    case workload::JobPhase::kCompleted:
      return false;
  }
  return false;
}

}  // namespace

SolverResult solve_placement(const PlacementProblem& problem, const SolverConfig& config,
                             obs::AuditLog* audit, double now) {
  SolverResult result;
  auto& stats = result.stats;

  // ---- scratch construction ----------------------------------------------
  std::vector<NodeScratch> nodes(problem.nodes.size());
  for (std::size_t i = 0; i < problem.nodes.size(); ++i) {
    const auto& n = problem.nodes[i];
    nodes[i].id = n.id;
    nodes[i].cpu_cap = n.cpu_capacity.get();
    nodes[i].mem_cap = n.mem_capacity.get();
    nodes[i].mem_free = n.mem_capacity.get();
  }

  // ---- compatibility groups ------------------------------------------------
  // Jobs and apps sharing a ConstraintSet form one group with a fixed
  // node-eligibility set; every phase below filters candidates through
  // it, and the phase-4 argmax heaps are built per group so a pop can
  // never surface an incompatible node. Group 0 is the empty constraint:
  // a constraint-free problem has exactly that one group over every
  // node, and each per-group structure degenerates to the single global
  // one — preserving the pre-class solve bit for bit.
  std::vector<cluster::ConstraintSet> groups;
  groups.push_back(cluster::ConstraintSet{});
  auto group_of = [&](const cluster::ConstraintSet& c) -> std::size_t {
    for (std::size_t g = 0; g < groups.size(); ++g) {
      if (groups[g] == c) return g;
    }
    groups.push_back(c);
    return groups.size() - 1;
  };
  std::vector<std::size_t> job_group(problem.jobs.size());
  for (std::size_t ji = 0; ji < problem.jobs.size(); ++ji) {
    job_group[ji] = group_of(problem.jobs[ji].constraint);
  }
  std::vector<std::size_t> app_group(problem.apps.size());
  for (std::size_t ai = 0; ai < problem.apps.size(); ++ai) {
    app_group[ai] = group_of(problem.apps[ai].constraint);
  }
  const std::size_t n_groups = groups.size();

  std::vector<std::vector<char>> elig(n_groups, std::vector<char>(nodes.size(), 0));
  std::vector<double> group_max_cpu(n_groups, 0.0);
  std::vector<int> group_node_count(n_groups, 0);
  for (std::size_t g = 0; g < n_groups; ++g) {
    for (std::size_t ni = 0; ni < problem.nodes.size(); ++ni) {
      if (!problem.node_admits(groups[g], problem.nodes[ni].klass)) continue;
      elig[g][ni] = 1;
      group_max_cpu[g] = std::max(group_max_cpu[g], problem.nodes[ni].cpu_capacity.get());
      ++group_node_count[g];
    }
  }

  // Flat id→index map (sorted array + binary search; the seed's
  // std::map cost a red-black walk per residency lookup).
  std::vector<std::pair<util::NodeId, std::size_t>> node_index;
  node_index.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) node_index.emplace_back(nodes[i].id, i);
  std::sort(node_index.begin(), node_index.end());
  auto index_of = [&](util::NodeId id) -> std::size_t {
    const auto it = std::lower_bound(node_index.begin(), node_index.end(),
                                     std::make_pair(id, std::size_t{0}));
    if (it == node_index.end() || it->first != id) {
      throw std::invalid_argument("solve_placement: VM references unknown node");
    }
    return it->second;
  };

  std::uint32_t next_seq = 0;

  // The job-packing phase asks "does any node have room?" once per
  // waiting job; tracking the fleet-wide max free memory answers it in
  // O(1) instead of scanning every node (the bound is recomputed lazily,
  // only after a placement or eviction actually changes node memory).
  double fleet_max_mem_free = 0.0;
  bool fleet_mem_dirty = true;
  auto max_mem_free = [&]() {
    if (fleet_mem_dirty) {
      fleet_max_mem_free = 0.0;
      for (const auto& ns : nodes) fleet_max_mem_free = std::max(fleet_max_mem_free, ns.mem_free);
      fleet_mem_dirty = false;
    }
    return fleet_max_mem_free;
  };

  // ---- Phase 1: decide per-app instance counts -----------------------------
  struct AppScratch {
    std::size_t index;
    double per_inst_cap;
    int desired;
    std::vector<util::NodeId> kept_nodes;   // instances we keep
    int to_add{0};
  };
  std::vector<AppScratch> app_scratch;
  app_scratch.reserve(problem.apps.size());

  for (std::size_t ai = 0; ai < problem.apps.size(); ++ai) {
    const SolverApp& app = problem.apps[ai];
    AppScratch as;
    as.index = ai;
    // Sizing sees only the machines this app may run on: the biggest
    // compatible node caps an instance, the compatible node count caps
    // the cluster (one instance per node).
    const double app_max_cpu = group_max_cpu[app_group[ai]];
    const int max_by_nodes = group_node_count[app_group[ai]];
    if (max_by_nodes == 0) {
      // No machine satisfies the app's constraints: nothing new can be
      // placed, and movable instances are dropped (they should never
      // have been where they are). Booting instances ride out the cycle.
      as.per_inst_cap = 0.0;
      for (const auto& inst : app.current) {
        if (!inst.movable) {
          as.kept_nodes.push_back(inst.node);
        } else {
          ++stats.instances_dropped;
        }
      }
      as.desired = static_cast<int>(as.kept_nodes.size());
      app_scratch.push_back(std::move(as));
      continue;
    }
    as.per_inst_cap = std::min(app.max_cpu_per_instance.get(), app_max_cpu);
    if (as.per_inst_cap <= 0.0) as.per_inst_cap = app_max_cpu;

    const int hard_max = std::min(app.max_instances, max_by_nodes);
    // Size the cluster assuming an instance only obtains a fraction of its
    // node (it shares the node with collocated jobs).
    const double effective_per_inst =
        as.per_inst_cap * std::clamp(config.instance_capacity_factor, 0.05, 1.0);
    int needed = static_cast<int>(std::ceil(app.target.get() / effective_per_inst - 1e-9));
    needed = std::clamp(needed, std::max(app.min_instances, 1), std::max(hard_max, 1));

    const int current = static_cast<int>(app.current.size());
    int keep;
    if (needed > current) {
      keep = current;
      as.to_add = needed - current;
    } else {
      // Shrink hysteresis: drop instances only when the target is served
      // comfortably by fewer.
      const double comfortable =
          (static_cast<double>(current) - 1.0) * effective_per_inst *
          (1.0 - config.instance_grow_headroom);
      if (current > needed && app.target.get() < comfortable) {
        keep = std::max({needed, app.min_instances, 1});
      } else {
        keep = current;
      }
    }
    as.desired = keep + as.to_add;

    // Keep immovable (booting) instances unconditionally, then movable
    // ones in node-id order until `keep` is reached.
    std::vector<SolverAppInstance> sorted = app.current;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const SolverAppInstance& a, const SolverAppInstance& b) {
                       if (a.movable != b.movable) return !a.movable;  // immovable first
                       return a.node < b.node;
                     });
    for (const auto& inst : sorted) {
      if (static_cast<int>(as.kept_nodes.size()) < keep || !inst.movable) {
        as.kept_nodes.push_back(inst.node);
      } else {
        ++stats.instances_dropped;
      }
    }
    app_scratch.push_back(std::move(as));
  }

  // ---- Phase 2: reserve memory for everything currently placed -------------
  // Kept instances. Give each a provisional CPU target (the app's target
  // split over the planned instance count) so the job-packing phase sees
  // realistic per-node headroom; phase 5 recomputes the exact split.
  for (const auto& as : app_scratch) {
    const SolverApp& app = problem.apps[as.index];
    const double provisional_target =
        app.target.get() / static_cast<double>(std::max(as.desired, 1));
    for (util::NodeId nid : as.kept_nodes) {
      NodeScratch& ns = nodes[index_of(nid)];
      NodeScratch::Resident r;
      r.is_job = false;
      r.index = as.index;
      r.target = provisional_target;
      r.cap = as.per_inst_cap;
      r.memory = app.instance_memory.get();
      r.seq = next_seq++;
      ns.add_resident(r);
    }
  }
  // Currently-placed jobs (memory holders).
  for (std::size_t ji = 0; ji < problem.jobs.size(); ++ji) {
    const SolverJob& job = problem.jobs[ji];
    if (!job.current_node.valid() || !job_holds_memory(job.phase)) continue;
    NodeScratch& ns = nodes[index_of(job.current_node)];
    NodeScratch::Resident r;
    r.is_job = true;
    r.index = ji;
    r.target = job.target.get();
    r.cap = job.max_speed.get();
    r.urgency = job.urgency;
    r.memory = job.memory.get();
    const bool protected_near_done =
        job.remaining.get() <= job.max_speed.get() * config.protect_completion_horizon_s;
    r.evictable = job.movable && !protected_near_done;
    r.seq = next_seq++;
    ns.add_resident(r);
    if (audit != nullptr && job.phase == workload::JobPhase::kRunning) {
      obs::AuditRecord rec;
      rec.t = now;
      rec.kind = 'J';
      rec.verdict = "keep";
      rec.consumer = static_cast<std::int64_t>(job.id.get());
      rec.node = static_cast<int>(job.current_node.get());
      rec.group = static_cast<int>(job_group[ji]);
      rec.headroom = ns.target_headroom();
      audit->record(rec);
    }
  }
  fleet_mem_dirty = true;

  std::vector<std::size_t> displaced;  // running jobs pushed off their node

  auto evict_job_from = [&](NodeScratch& ns, std::size_t resident_pos) {
    const NodeScratch::Resident r = ns.take_resident(resident_pos);
    assert(r.is_job);
    displaced.push_back(r.index);
    ++stats.jobs_evicted;
    fleet_mem_dirty = true;
  };

  // ---- Phase 3: grow instance clusters, evicting jobs when needed ----------
  // Instance presence per app is a bitset over node indices, so the
  // "no instance of this app here yet" check is O(1) rather than a
  // rescan of the candidate node's residents per placement attempt.
  std::vector<std::uint64_t> presence((nodes.size() + 63) / 64);
  for (auto& as : app_scratch) {
    if (as.to_add == 0) continue;
    const SolverApp& app = problem.apps[as.index];
    const std::vector<char>& app_elig = elig[app_group[as.index]];
    std::fill(presence.begin(), presence.end(), 0);
    for (util::NodeId nid : as.kept_nodes) {
      const std::size_t ni = index_of(nid);
      presence[ni / 64] |= std::uint64_t{1} << (ni % 64);
    }
    auto has_instance = [&](std::size_t ni) {
      return (presence[ni / 64] >> (ni % 64)) & 1u;
    };

    for (int k = 0; k < as.to_add; ++k) {
      // First choice: free memory, most of it (compatible nodes only).
      std::size_t best = kNone;
      for (std::size_t ni = 0; ni < nodes.size(); ++ni) {
        if (!app_elig[ni]) continue;
        if (has_instance(ni)) continue;
        if (nodes[ni].mem_free + kEps < app.instance_memory.get()) continue;
        if (best == kNone || nodes[ni].mem_free > nodes[best].mem_free) best = ni;
      }

      if (best == kNone) {
        // Reclaim memory from the least-urgent evictable jobs: pick the
        // node where the evicted urgency mass is smallest.
        double best_cost = std::numeric_limits<double>::max();
        std::size_t best_node = kNone;
        std::vector<std::size_t> best_victims;
        for (std::size_t ni = 0; ni < nodes.size(); ++ni) {
          NodeScratch& ns = nodes[ni];
          if (!app_elig[ni]) continue;
          if (has_instance(ni)) continue;
          // Greedily evict lowest-urgency jobs until the instance fits.
          std::vector<std::size_t> order;  // resident positions, jobs only
          for (std::size_t p = 0; p < ns.residents.size(); ++p) {
            if (ns.residents[p].is_job && ns.residents[p].evictable) order.push_back(p);
          }
          // (urgency, insertion seq): deterministic regardless of how
          // swap-removal has permuted resident positions.
          std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
            if (ns.residents[a].urgency != ns.residents[b].urgency) {
              return ns.residents[a].urgency < ns.residents[b].urgency;
            }
            return ns.residents[a].seq < ns.residents[b].seq;
          });
          double freed = ns.mem_free;
          double cost = 0.0;
          std::vector<std::size_t> victims;
          for (std::size_t p : order) {
            if (freed + kEps >= app.instance_memory.get()) break;
            freed += ns.residents[p].memory;
            cost += ns.residents[p].urgency + 1.0;  // +1: churn penalty per job
            victims.push_back(p);
          }
          if (freed + kEps < app.instance_memory.get()) continue;  // still no room
          if (cost < best_cost) {
            best_cost = cost;
            best_node = ni;
            best_victims = std::move(victims);
          }
        }
        if (best_node != kNone) {
          // Evict from highest position first so swap-removal cannot
          // disturb the positions still queued for eviction.
          std::sort(best_victims.rbegin(), best_victims.rend());
          for (std::size_t p : best_victims) {
            if (audit != nullptr) {
              const NodeScratch::Resident& v = nodes[best_node].residents[p];
              obs::AuditRecord rec;
              rec.t = now;
              rec.kind = 'A';
              rec.verdict = "evict";
              rec.consumer = static_cast<std::int64_t>(app.id.get());
              rec.node = static_cast<int>(nodes[best_node].id.get());
              rec.group = static_cast<int>(app_group[as.index]);
              rec.headroom = nodes[best_node].target_headroom();
              rec.victim = static_cast<std::int64_t>(problem.jobs[v.index].id.get());
              rec.slack = v.urgency;
              audit->record(rec);
            }
            evict_job_from(nodes[best_node], p);
          }
          best = best_node;
        }
      }

      if (best == kNone) continue;  // cluster simply cannot host more

      NodeScratch::Resident r;
      r.is_job = false;
      r.index = as.index;
      r.target = app.target.get() / static_cast<double>(std::max(as.desired, 1));
      r.cap = as.per_inst_cap;
      r.memory = app.instance_memory.get();
      r.seq = next_seq++;
      nodes[best].add_resident(r);
      presence[best / 64] |= std::uint64_t{1} << (best % 64);
      as.kept_nodes.push_back(nodes[best].id);
      fleet_mem_dirty = true;
      ++stats.instances_added;
      if (audit != nullptr) {
        obs::AuditRecord rec;
        rec.t = now;
        rec.kind = 'A';
        rec.verdict = "place";
        rec.consumer = static_cast<std::int64_t>(app.id.get());
        rec.node = static_cast<int>(nodes[best].id.get());
        rec.group = static_cast<int>(app_group[as.index]);
        rec.headroom = nodes[best].target_headroom();
        audit->record(rec);
      }
    }
  }

  // ---- Phase 4: pack waiting jobs by urgency --------------------------------
  struct Waiting {
    std::size_t index;
    bool was_running;  // displaced mid-run → migrate if re-placed
  };
  std::vector<Waiting> waiting;
  for (std::size_t ji = 0; ji < problem.jobs.size(); ++ji) {
    const SolverJob& job = problem.jobs[ji];
    if (job.phase == workload::JobPhase::kPending ||
        job.phase == workload::JobPhase::kSuspended) {
      waiting.push_back({ji, false});
    }
  }
  for (std::size_t ji : displaced) waiting.push_back({ji, true});

  // Process in (urgency desc, id asc) order — a total order, so popping
  // a max-heap visits jobs in exactly the sequence a full sort would,
  // but the heap lets the loop stop as soon as no remaining job can fit:
  // phase 4 only ever consumes memory, so once the fleet-wide max free
  // falls below the smallest waiting footprint, every remaining job is
  // waiting. At scale the waiting list dwarfs the slot count and the
  // O(n log n) sort of it was the single largest cost of a solve.
  struct WaitingKey {
    double urgency;
    util::JobId id;
    std::uint32_t index;
    bool was_running;
  };
  std::vector<WaitingKey> heap;
  heap.reserve(waiting.size());
  // Admission bookkeeping is per compatibility group: a group's smallest
  // waiting footprint against the max free memory among *its* eligible
  // nodes (with one empty group these are the global min/max of before).
  std::vector<double> group_min_mem(n_groups, std::numeric_limits<double>::max());
  std::vector<int> group_heap_count(n_groups, 0);
  for (const Waiting& w : waiting) {
    const SolverJob& job = problem.jobs[w.index];
    heap.push_back({job.urgency, job.id, static_cast<std::uint32_t>(w.index), w.was_running});
    const std::size_t g = job_group[w.index];
    group_min_mem[g] = std::min(group_min_mem[g], job.memory.get());
    ++group_heap_count[g];
  }
  const auto heap_after = [](const WaitingKey& a, const WaitingKey& b) {
    if (a.urgency != b.urgency) return a.urgency < b.urgency;  // max-heap on urgency
    return a.id > b.id;                                        // then min on id
  };
  std::make_heap(heap.begin(), heap.end(), heap_after);

  // Per-job node selection used to be a linear max-headroom scan — at
  // macro scale (50+ nodes, thousands of placements per cycle) the
  // O(jobs·nodes) product was the last super-linear term in a solve.
  // Replace it with a lazy max-heap over (target_headroom desc, node
  // index asc): popping visits nodes in exactly the order the strict-`>`
  // index-order scan preferred them, so the first valid entry whose node
  // fits the job's memory is the scan's answer, bit for bit. Entries are
  // version-stamped; placing a job bumps its node's version and pushes a
  // fresh entry, so every node has exactly one live entry and stale ones
  // are discarded on pop. Valid-but-not-fitting pops are deferred to a
  // side list and re-pushed after the pick (their keys are unchanged —
  // only the chosen node mutates). Anyone who mutates a node's
  // target_sum or cpu_cap mid-phase must bump-and-repush the same way.
  struct SlotKey {
    double headroom;
    std::uint32_t index;
    std::uint32_t version;
  };
  const auto slot_after = [](const SlotKey& a, const SlotKey& b) {
    if (a.headroom != b.headroom) return a.headroom < b.headroom;  // max-heap on headroom
    return a.index > b.index;                                      // then min on node index
  };
  // One slot heap (and version array) per compatibility group, over the
  // group's eligible nodes only, so an argmax pop can never surface an
  // incompatible node. A placement stales the node's entry in *every*
  // group heap that contains it.
  std::vector<std::vector<SlotKey>> slot_heaps(n_groups);
  std::vector<std::vector<std::uint32_t>> slot_versions(
      n_groups, std::vector<std::uint32_t>(nodes.size(), 0));
  for (std::size_t g = 0; g < n_groups; ++g) {
    slot_heaps[g].reserve(static_cast<std::size_t>(group_node_count[g]) + 16);
    for (std::size_t ni = 0; ni < nodes.size(); ++ni) {
      if (!elig[g][ni]) continue;
      slot_heaps[g].push_back({nodes[ni].target_headroom(), static_cast<std::uint32_t>(ni), 0});
    }
    std::make_heap(slot_heaps[g].begin(), slot_heaps[g].end(), slot_after);
  }
  std::vector<SlotKey> deferred;  // valid pops that did not fit this job's memory

  // The admission checks below need the max free memory among a job's
  // compatible nodes; the shared lazy-rescan bound (max_mem_free above)
  // would rescan all nodes after every placement, reintroducing the
  // O(jobs·nodes) term. Phase 4 only ever *consumes* memory, so a lazy
  // max-heap keyed by mem-free-at-push works: a stale top is refreshed
  // in place (the smaller live value sinks) and each placement stales at
  // most one entry per group, making the query O(log nodes) amortized.
  std::vector<std::vector<std::pair<double, std::uint32_t>>>
      mem_heaps(n_groups);  // (mem_free at push, node index)
  const auto mem_after = [](const std::pair<double, std::uint32_t>& a,
                            const std::pair<double, std::uint32_t>& b) {
    return a.first < b.first;
  };
  for (std::size_t g = 0; g < n_groups; ++g) {
    mem_heaps[g].reserve(static_cast<std::size_t>(group_node_count[g]));
    for (std::size_t ni = 0; ni < nodes.size(); ++ni) {
      if (!elig[g][ni]) continue;
      mem_heaps[g].emplace_back(nodes[ni].mem_free, static_cast<std::uint32_t>(ni));
    }
    std::make_heap(mem_heaps[g].begin(), mem_heaps[g].end(), mem_after);
  }
  const auto phase4_max_mem_free = [&](std::size_t g) -> double {
    auto& mem_heap = mem_heaps[g];
    while (!mem_heap.empty()) {
      const auto top = mem_heap.front();
      const double live = nodes[top.second].mem_free;
      if (live == top.first) return live;
      std::pop_heap(mem_heap.begin(), mem_heap.end(), mem_after);
      mem_heap.back() = {live, top.second};
      std::push_heap(mem_heap.begin(), mem_heap.end(), mem_after);
    }
    return 0.0;
  };

  // Audit emission shared by the packing and rescue phases.
  auto audit_job = [&](const char* verdict, const SolverJob& job, std::size_t g, int node,
                       double headroom) {
    if (audit == nullptr) return;
    obs::AuditRecord rec;
    rec.t = now;
    rec.kind = 'J';
    rec.verdict = verdict;
    rec.consumer = static_cast<std::int64_t>(job.id.get());
    rec.node = node;
    rec.group = static_cast<int>(g);
    rec.headroom = headroom;
    audit->record(rec);
  };

  while (!heap.empty()) {
    bool any_admittable = false;
    for (std::size_t g = 0; g < n_groups; ++g) {
      if (group_heap_count[g] > 0 && phase4_max_mem_free(g) + kEps >= group_min_mem[g]) {
        any_admittable = true;
        break;
      }
    }
    if (!any_admittable) {
      // Nothing left can be admitted anywhere it may run.
      stats.jobs_waiting += static_cast<int>(heap.size());
      if (audit != nullptr) {
        for (const WaitingKey& wk : heap) {
          audit_job("reject", problem.jobs[wk.index], job_group[wk.index], -1,
                    phase4_max_mem_free(job_group[wk.index]));
        }
      }
      break;
    }
    std::pop_heap(heap.begin(), heap.end(), heap_after);
    const Waiting w{heap.back().index, heap.back().was_running};
    heap.pop_back();
    const SolverJob& job = problem.jobs[w.index];
    const std::size_t jg = job_group[w.index];
    --group_heap_count[jg];
    if (w.was_running && !config.allow_migration) {
      ++stats.jobs_waiting;  // becomes a suspension downstream
      audit_job("reject", job, jg, -1, 0.0);
      continue;
    }
    if (phase4_max_mem_free(jg) + kEps < job.memory.get()) {
      ++stats.jobs_waiting;  // no compatible node can hold it — skip the heap drain
      audit_job("reject", job, jg, -1, phase4_max_mem_free(jg));
      continue;
    }
    auto& slot_heap = slot_heaps[jg];
    const auto& slot_version = slot_versions[jg];
    NodeScratch* best = nullptr;
    std::uint32_t best_index = 0;
    deferred.clear();
    while (!slot_heap.empty()) {
      std::pop_heap(slot_heap.begin(), slot_heap.end(), slot_after);
      const SlotKey e = slot_heap.back();
      slot_heap.pop_back();
      if (e.version != slot_version[e.index]) continue;  // stale — drop for good
      NodeScratch& ns = nodes[e.index];
      if (ns.mem_free + kEps < job.memory.get()) {
        deferred.push_back(e);  // still valid; re-admit after the pick
        continue;
      }
      best = &ns;
      best_index = e.index;
      break;
    }
    for (const SlotKey& e : deferred) {
      slot_heap.push_back(e);
      std::push_heap(slot_heap.begin(), slot_heap.end(), slot_after);
    }
    if (best == nullptr) {  // unreachable unless the group's node set is empty
      ++stats.jobs_waiting;
      audit_job("reject", job, jg, -1, 0.0);
      continue;
    }
    NodeScratch::Resident r;
    r.is_job = true;
    r.index = w.index;
    r.target = job.target.get();
    r.cap = job.max_speed.get();
    r.urgency = job.urgency;
    r.memory = job.memory.get();
    const bool protected_near_done =
        job.remaining.get() <= job.max_speed.get() * config.protect_completion_horizon_s;
    r.evictable = job.movable && !protected_near_done;
    r.seq = next_seq++;
    best->add_resident(r);
    fleet_mem_dirty = true;
    // The placement changed this node's headroom (and memory): retire
    // its live entry in every group heap holding it and push fresh ones.
    // mem_heaps self-heal on the next query (a stale top refreshes in
    // place).
    for (std::size_t g = 0; g < n_groups; ++g) {
      if (!elig[g][best_index]) continue;
      ++slot_versions[g][best_index];
      slot_heaps[g].push_back(
          {best->target_headroom(), best_index, slot_versions[g][best_index]});
      std::push_heap(slot_heaps[g].begin(), slot_heaps[g].end(), slot_after);
    }
    // Landing back on its own node is not a migration (plan diff is a
    // plain resize there).
    if (w.was_running && best->id != job.current_node) ++stats.jobs_migrated;
    audit_job(!w.was_running ? "place" : (best->id != job.current_node ? "migrate" : "keep"),
              job, jg, static_cast<int>(best->id.get()), best->target_headroom());
  }

  // ---- Phase 5: per-node CPU distribution ----------------------------------
  // Instance targets: split each app's target equally across its placed
  // instances (kept_nodes tracks exactly the placed set after phase 3).
  std::vector<int> placed_instances(problem.apps.size(), 0);
  for (const auto& as : app_scratch) {
    placed_instances[as.index] = static_cast<int>(as.kept_nodes.size());
  }
  for (auto& ns : nodes) {
    for (auto& r : ns.residents) {
      if (!r.is_job) {
        const int n = std::max(placed_instances[r.index], 1);
        const double target = problem.apps[r.index].target.get() / static_cast<double>(n);
        ns.target_sum += target - r.target;
        r.target = target;
      }
    }
    waterfill_node(ns, config.work_conserving);
  }

  // Instance shortfall fixup: instances squeezed on crowded nodes leave
  // their app short of its target even when sibling instances sit next to
  // idle CPU. Raise sibling shares (never beyond the per-instance cap)
  // until the target is met or slack runs out. A single sweep collects
  // each app's granted total and its instance locations (node order), so
  // the fixup touches only the app's own instances instead of rescanning
  // every resident of every node per app.
  std::vector<double> app_granted(problem.apps.size(), 0.0);
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> app_sites(problem.apps.size());
  for (std::size_t ni = 0; ni < nodes.size(); ++ni) {
    for (std::size_t p = 0; p < nodes[ni].residents.size(); ++p) {
      const auto& r = nodes[ni].residents[p];
      if (r.is_job) continue;
      app_granted[r.index] += r.grant;
      app_sites[r.index].emplace_back(ni, p);
    }
  }
  for (std::size_t ai = 0; ai < problem.apps.size(); ++ai) {
    double shortfall = problem.apps[ai].target.get() - app_granted[ai];
    if (shortfall <= kEps) continue;
    for (const auto& [ni, p] : app_sites[ai]) {
      if (shortfall <= kEps) break;
      NodeScratch& ns = nodes[ni];
      const double leftover = ns.cpu_cap - ns.granted_sum;
      if (leftover <= kEps) continue;
      NodeScratch::Resident& r = ns.residents[p];
      const double add = std::min({leftover, shortfall, r.cap - r.grant});
      if (add > kEps) {
        r.grant += add;
        ns.granted_sum += add;
        shortfall -= add;
      }
    }
  }

  if (config.work_conserving) {
    for (auto& ns : nodes) spread_leftover_to_jobs(ns);
  }

  // ---- Phase 5.5: starvation rescue ------------------------------------------
  // A running job kept in place for stability can end up with a zero CPU
  // grant when a collocated instance's target consumes the whole node.
  // Left alone it would hold its memory slot forever without progressing.
  // Relocate it to a node with CPU leftover and a free memory slot, else
  // suspend it (dropping it from the plan) so a later cycle resumes it
  // where it can actually run. Starved residents are handled in insertion
  // (seq) order, matching the seed's positional scan.
  for (auto& ns : nodes) {
    for (;;) {
      std::size_t pos = kNone;
      for (std::size_t p = 0; p < ns.residents.size(); ++p) {
        const NodeScratch::Resident& r = ns.residents[p];
        const bool starved = r.is_job && r.grant <= 1.0 &&
                             problem.jobs[r.index].movable &&
                             problem.jobs[r.index].remaining.get() > 0.0;
        if (starved && (pos == kNone || r.seq < ns.residents[pos].seq)) pos = p;
      }
      if (pos == kNone) break;
      const SolverJob& job = problem.jobs[ns.residents[pos].index];
      const std::vector<char>& rescue_elig = elig[job_group[ns.residents[pos].index]];
      // Find a compatible destination with spare CPU and memory.
      NodeScratch* dest = nullptr;
      double best_leftover = 1.0;  // require strictly useful CPU
      for (std::size_t ci = 0; ci < nodes.size(); ++ci) {
        NodeScratch& cand = nodes[ci];
        if (&cand == &ns) continue;
        if (!rescue_elig[ci]) continue;
        if (cand.mem_free + kEps < job.memory.get()) continue;
        const double leftover = cand.cpu_cap - cand.granted_sum;
        if (leftover > best_leftover) {
          best_leftover = leftover;
          dest = &cand;
        }
      }
      NodeScratch::Resident moved = ns.take_resident(pos);
      fleet_mem_dirty = true;
      ++stats.jobs_evicted;
      if (dest != nullptr && config.allow_migration) {
        moved.grant = std::min(best_leftover, moved.cap);
        moved.seq = next_seq++;
        dest->add_resident(moved);
        dest->granted_sum += moved.grant;
        if (dest->id != job.current_node) ++stats.jobs_migrated;
        audit_job("relocate", job, job_group[moved.index], static_cast<int>(dest->id.get()),
                  dest->cpu_cap - dest->granted_sum);
      } else {
        ++stats.jobs_waiting;  // suspended by the executor
        audit_job("reject", job, job_group[moved.index], -1, 0.0);
      }
    }
  }

  // ---- Emit the plan ---------------------------------------------------------
  for (const auto& ns : nodes) {
    for (const auto& r : ns.residents) {
      if (r.is_job) {
        const SolverJob& job = problem.jobs[r.index];
        result.plan.jobs.push_back({job.id, ns.id, util::CpuMhz{r.grant}});
        ++stats.jobs_placed;
      } else {
        const SolverApp& app = problem.apps[r.index];
        result.plan.instances.push_back({app.id, ns.id, util::CpuMhz{r.grant}});
      }
    }
  }
  stats.instances_total = static_cast<int>(result.plan.instances.size());

  // Deterministic output order.
  std::sort(result.plan.jobs.begin(), result.plan.jobs.end(),
            [](const cluster::DesiredJobPlacement& a, const cluster::DesiredJobPlacement& b) {
              return a.job < b.job;
            });
  std::sort(result.plan.instances.begin(), result.plan.instances.end(),
            [](const cluster::DesiredWebInstance& a, const cluster::DesiredWebInstance& b) {
              if (a.app != b.app) return a.app < b.app;
              return a.node < b.node;
            });
  return result;
}

}  // namespace heteroplace::core
