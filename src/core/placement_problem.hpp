#pragma once

// Input snapshot for the discrete placement solver.
//
// The equalizer produces continuous per-consumer CPU targets; this
// structure carries those targets together with the physical state the
// solver must respect: node capacities, current residencies (for
// stability), memory footprints, and which VMs are mid-action and thus
// immovable this cycle.

#include <cstddef>
#include <vector>

#include "cluster/machine_class.hpp"
#include "util/ids.hpp"
#include "util/units.hpp"
#include "workload/job.hpp"

namespace heteroplace::core {

struct SolverNode {
  util::NodeId id{};
  /// Effective CPU the solver may plan with: the physical capacity scaled
  /// by the node's current P-state. Nodes parked by the power subsystem
  /// do not appear in the problem at all.
  util::CpuMhz cpu_capacity{0.0};
  util::MemMb mem_capacity{0.0};
  /// Machine class (index into PlacementProblem::classes; 0 = default).
  cluster::ClassId klass{0};
};

struct SolverJob {
  util::JobId id{};
  util::MemMb memory{0.0};
  util::CpuMhz max_speed{0.0};
  /// Equalized CPU target (0 if the equalizer starved it).
  util::CpuMhz target{0.0};
  /// Ranking key for memory slots; higher = placed first. The utility
  /// policy uses the equalized target (for identical jobs this orders by
  /// waiting time), baselines use arrival order.
  double urgency{0.0};
  /// Node currently holding this job's memory (invalid if none).
  util::NodeId current_node{};
  workload::JobPhase phase{workload::JobPhase::kPending};
  /// False while an action is in flight: the solver must keep the job
  /// exactly where it is.
  bool movable{true};
  /// Remaining work (used by the near-completion eviction guard).
  util::MhzSeconds remaining{0.0};
  /// Hard machine constraints; the empty set admits every node.
  cluster::ConstraintSet constraint{};
};

struct SolverAppInstance {
  util::NodeId node{};
  bool movable{true};  // false while the instance is booting
};

struct SolverApp {
  util::AppId id{};
  util::MemMb instance_memory{0.0};
  int min_instances{1};
  int max_instances{64};
  util::CpuMhz max_cpu_per_instance{0.0};
  /// Equalized CPU target across all instances.
  util::CpuMhz target{0.0};
  std::vector<SolverAppInstance> current;
  /// Hard machine constraints applied to every instance of this app.
  cluster::ConstraintSet constraint{};
};

struct PlacementProblem {
  std::vector<SolverNode> nodes;
  std::vector<SolverJob> jobs;
  std::vector<SolverApp> apps;
  /// Machine-class table (indexed by SolverNode::klass). Empty means the
  /// cluster never registered explicit classes: every node is the
  /// implicit default class and only empty constraints can be satisfied.
  std::vector<cluster::MachineClass> classes;

  /// Does the node's class satisfy `c`? The empty constraint admits
  /// every node; a non-empty constraint checked against a class-less
  /// problem fails closed (the default class is underspecified).
  [[nodiscard]] bool node_admits(const cluster::ConstraintSet& c, cluster::ClassId klass) const {
    if (c.empty()) return true;
    static const cluster::MachineClass kDefault{};
    const auto i = static_cast<std::size_t>(klass);
    return c.admits(i < classes.size() ? classes[i] : kDefault);
  }
};

struct SolverConfig {
  /// Permit moving a running job between nodes (vs. suspend-only).
  bool allow_migration{true};
  /// Give CPU left over after targets are met to residents that can use
  /// it (jobs up to max speed, instances up to their cap).
  bool work_conserving{true};
  /// Jobs with remaining work below max_speed × this horizon (seconds)
  /// are never evicted for an instance — they are about to finish and
  /// suspending them wastes nearly-complete work.
  double protect_completion_horizon_s{600.0};
  /// Hysteresis on growing the instance set: only add an instance when
  /// the app's achievable capacity falls short of its target by more
  /// than this fraction.
  double instance_grow_headroom{0.05};
  /// Fraction of a node's CPU an instance is assumed to obtain when
  /// collocated with jobs; used only to size the instance cluster
  /// (count = ceil(target / (per-instance cap × this factor))).
  double instance_capacity_factor{0.7};
};

}  // namespace heteroplace::core
