#pragma once

// Utility-driven incremental placement solver.
//
// Turns the equalizer's continuous CPU targets into a discrete placement
// under node CPU and memory constraints. Design goals, in order:
//   1. feasibility — never over-commit memory or CPU;
//   2. stability — keep currently-placed VMs where they are unless the
//      utility targets justify churn (suspend/resume/migrate are costly);
//   3. fidelity to targets — per-node CPU shares approach the equalized
//      targets, with work-conserving redistribution of slack.
//
// The algorithm is a deterministic multi-phase heuristic in the spirit of
// the placement middleware the paper builds on: reserve what is pinned,
// size and place web-instance clusters (evicting the least-urgent jobs
// when a growing transactional workload reclaims memory), pack waiting
// jobs by urgency, then water-fill each node's CPU.

#include "cluster/placement.hpp"
#include "core/placement_problem.hpp"
#include "obs/audit.hpp"

namespace heteroplace::core {

/// Diagnostics emitted alongside the plan (for metrics and tests).
struct SolverStats {
  int jobs_placed{0};
  int jobs_waiting{0};    // memory-constrained, left pending/suspended
  int jobs_evicted{0};    // running jobs displaced (migrated or suspended)
  int jobs_migrated{0};   // evicted jobs that found another node
  int instances_total{0};
  int instances_added{0};
  int instances_dropped{0};
};

struct SolverResult {
  cluster::PlacementPlan plan;
  SolverStats stats;
};

/// `audit` (optional) receives one structured record per placement
/// decision — job place/keep/reject/migrate, instance place, evictions
/// with the displaced victim and its urgency slack — stamped with the
/// decision-time headroom of the chosen node. `now` is the sim time the
/// records carry; both default to "no audit".
[[nodiscard]] SolverResult solve_placement(const PlacementProblem& problem,
                                           const SolverConfig& config = {},
                                           obs::AuditLog* audit = nullptr, double now = 0.0);

}  // namespace heteroplace::core
