#include "core/equalizer.hpp"

#include <algorithm>
#include <cstddef>

namespace heteroplace::core {

namespace {

/// Σ alloc_for_utility(u) over all consumers. OpenMP-parallel for large
/// consumer populations (each term may itself run a bisection).
double total_alloc_at(const std::vector<const UtilityConsumer*>& consumers, double u) {
  const auto n = static_cast<std::ptrdiff_t>(consumers.size());
  double total = 0.0;
#ifdef _OPENMP
#pragma omp parallel for reduction(+ : total) schedule(static) if (n > 256)
#endif
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    total += consumers[static_cast<std::size_t>(i)]->alloc_for_utility(u).get();
  }
  return total;
}

}  // namespace

EqualizeResult equalize(const std::vector<const UtilityConsumer*>& consumers,
                        util::CpuMhz capacity, const EqualizerOptions& opts) {
  EqualizeResult result;
  result.allocations.resize(consumers.size());
  if (consumers.empty()) return result;

  double total_demand = 0.0;
  double u_hi = opts.u_floor;
  double u_min_max = 1e300;
  for (const auto* c : consumers) {
    total_demand += c->demand_max().get();
    u_hi = std::max(u_hi, c->utility_max());
    u_min_max = std::min(u_min_max, c->utility_max());
  }
  result.total_demand = util::CpuMhz{total_demand};

  if (total_demand <= capacity.get()) {
    // Uncontended: everyone receives full demand.
    result.contended = false;
    result.u_star = u_min_max;
    double total = 0.0;
    for (std::size_t i = 0; i < consumers.size(); ++i) {
      const util::CpuMhz a = consumers[i]->demand_max();
      result.allocations[i] = {a, consumers[i]->utility_at(a)};
      total += a.get();
    }
    result.total = util::CpuMhz{total};
    return result;
  }

  result.contended = true;

  // Widen the floor if even the floor's allocations exceed capacity
  // (can happen with extreme importance weights).
  double u_lo = opts.u_floor;
  for (int widen = 0; widen < 16 && total_alloc_at(consumers, u_lo) > capacity.get(); ++widen) {
    u_lo *= 2.0;
  }

  // Bisect g(u) = total_alloc(u) − capacity, monotone non-decreasing.
  int iters = 0;
  while (u_hi - u_lo > opts.u_tolerance && iters < opts.max_iterations) {
    const double mid = 0.5 * (u_lo + u_hi);
    if (total_alloc_at(consumers, mid) <= capacity.get()) {
      u_lo = mid;
    } else {
      u_hi = mid;
    }
    ++iters;
  }
  result.iterations = iters;
  // Use the feasible side (total ≤ capacity).
  result.u_star = u_lo;

  double total = 0.0;
  for (std::size_t i = 0; i < consumers.size(); ++i) {
    const util::CpuMhz a = consumers[i]->alloc_for_utility(result.u_star);
    result.allocations[i] = {a, consumers[i]->utility_at(a)};
    total += a.get();
  }

  // The bisection leaves a small slack (or FP overshoot). Scale down if
  // infeasible; leave tiny slack alone (the placement layer rounds anyway).
  if (total > capacity.get() && total > 0.0) {
    const double scale = capacity.get() / total;
    total = 0.0;
    for (std::size_t i = 0; i < consumers.size(); ++i) {
      result.allocations[i].alloc *= scale;
      result.allocations[i].utility = consumers[i]->utility_at(result.allocations[i].alloc);
      total += result.allocations[i].alloc.get();
    }
  }
  result.total = util::CpuMhz{total};
  return result;
}

}  // namespace heteroplace::core
