#include "core/equalizer.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <utility>
#include <vector>

namespace heteroplace::core {

namespace {

/// Σ alloc_for_utility(u) over all consumers via the virtual interface —
/// the seed implementation, kept behind EqualizerOptions::use_curve_cache
/// so the curve-cache path can be benchmarked and regression-tested
/// against it. OpenMP-parallel for large consumer populations (each term
/// may itself run a bisection).
double total_alloc_at(const std::vector<const UtilityConsumer*>& consumers, double u) {
  const auto n = static_cast<std::ptrdiff_t>(consumers.size());
  double total = 0.0;
#ifdef _OPENMP
#pragma omp parallel for reduction(+ : total) schedule(static) if (n > 256)
#endif
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    total += consumers[static_cast<std::size_t>(i)]->alloc_for_utility(u).get();
  }
  return total;
}

/// Inline mirror of TxUtilityModel::utility (raw_utility ∘ evaluate_tx,
/// divided by importance). Operation order matches the model code so the
/// bisection below reproduces its results bit for bit.
double tx_utility_at(const CurveParams& p, double alloc) {
  double raw;
  if (alloc <= 0.0) {
    raw = -1e3;
  } else if (p.service_demand <= 0.0) {
    raw = -std::numeric_limits<double>::infinity();  // infinite response time
  } else {
    const double mu = alloc / p.service_demand;
    const double admit_cap = p.rho_cap * mu;
    const double admitted = std::min(p.lambda, admit_cap);
    const double ratio = admitted / p.lambda;
    const double rt = 1.0 / (mu - admitted);
    double u = (p.rt_goal - rt) / p.rt_goal;
    u = std::min(u, p.utility_cap);
    if (u > 0.0 && ratio < 1.0) u *= std::pow(ratio, p.throughput_exponent);
    raw = u;
  }
  return raw / p.importance;
}

/// Inline mirror of TxUtilityModel::alloc_for_utility: the same bisection
/// as util::invert_increasing (same bounds, tolerance, and iteration
/// cap), minus the std::function indirection and the per-call recompute
/// of the demand ceiling.
double tx_alloc_for_utility(const CurveParams& p, double u) {
  const double max_u = p.utility_cap / p.importance;
  if (u >= max_u) return p.demand_hi;
  double lo = 0.0;
  double hi = p.demand_hi;
  const double x_tol = 1e-6 * std::max(1.0, hi);
  if (tx_utility_at(p, lo) - u >= 0.0) return lo;
  if (tx_utility_at(p, hi) - u <= 0.0) return hi;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (tx_utility_at(p, mid) - u <= 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo <= x_tol) break;
  }
  return std::clamp(0.5 * (lo + hi), 0.0, p.demand_hi);
}

/// Flattened curve parameters for one equalize() call: SoA job arrays
/// (with fn⁻¹ shared across consumers that have the same utility function
/// and importance), transactional params, and a virtual-dispatch fallback
/// for consumers that export no closed form.
class CurveCache {
 public:
  explicit CurveCache(const std::vector<const UtilityConsumer*>& consumers) {
    refs_.reserve(consumers.size());
    std::map<std::pair<const void*, double>, std::uint32_t> group_ids;
    for (const auto* c : consumers) {
      CurveParams p = c->curve_params();
      switch (p.form) {
        case CurveParams::Form::kZero:
          refs_.push_back({Kind::kZero, 0});
          break;
        case CurveParams::Form::kJobInverse: {
          const auto key = std::make_pair(static_cast<const void*>(p.fn), p.importance);
          auto [it, inserted] = group_ids.emplace(key, static_cast<std::uint32_t>(groups_.size()));
          if (inserted) groups_.push_back({p.fn, p.importance});
          refs_.push_back({Kind::kJob, static_cast<std::uint32_t>(job_group_.size())});
          job_group_.push_back(it->second);
          job_submit_.push_back(p.submit);
          job_goal_.push_back(p.goal);
          job_now_.push_back(p.now);
          job_remaining_.push_back(p.remaining);
          job_max_speed_.push_back(p.max_speed);
          break;
        }
        case CurveParams::Form::kTxQueueing:
          refs_.push_back({Kind::kTx, static_cast<std::uint32_t>(tx_.size())});
          tx_.push_back(p);
          break;
        case CurveParams::Form::kGeneric:
          refs_.push_back({Kind::kGeneric, static_cast<std::uint32_t>(generic_.size())});
          generic_.push_back(c);
          break;
      }
    }
    group_x_.resize(groups_.size());
  }

  /// Σ alloc_for_utility(u) across all consumers.
  [[nodiscard]] double total_alloc_at(double u) const {
    solve_groups(u);
    const auto n = static_cast<std::ptrdiff_t>(job_group_.size());
    double total = 0.0;
#ifdef _OPENMP
#pragma omp parallel for reduction(+ : total) schedule(static) if (n > 256)
#endif
    for (std::ptrdiff_t i = 0; i < n; ++i) {
      total += job_alloc(static_cast<std::size_t>(i));
    }
    for (const auto& p : tx_) total += tx_alloc_for_utility(p, u);
    for (const auto* c : generic_) total += c->alloc_for_utility(u).get();
    return total;
  }

  /// alloc_for_utility(u) of the i-th consumer (input order).
  [[nodiscard]] double alloc_at(std::size_t i, double u) const {
    const Ref r = refs_[i];
    switch (r.kind) {
      case Kind::kZero:
        return 0.0;
      case Kind::kJob:
        solve_groups(u);
        return job_alloc(r.idx);
      case Kind::kTx:
        return tx_alloc_for_utility(tx_[r.idx], u);
      case Kind::kGeneric:
        break;
    }
    return generic_[r.idx]->alloc_for_utility(u).get();
  }

 private:
  enum class Kind : std::uint8_t { kZero, kJob, kTx, kGeneric };
  struct Ref {
    Kind kind;
    std::uint32_t idx;  // into the kind's own array
  };
  struct Group {
    const utility::UtilityFunction* fn;
    double importance;
  };

  /// Solve fn⁻¹(u·w) once per (fn, importance) group; every job in the
  /// group then needs only flat arithmetic.
  void solve_groups(double u) const {
    if (u == group_u_) return;
    for (std::size_t g = 0; g < groups_.size(); ++g) {
      group_x_[g] = groups_[g].fn->inverse(u * groups_[g].importance);
    }
    group_u_ = u;
  }

  /// Mirror of JobUtilityModel::speed_for_utility with the fn inversion
  /// hoisted into solve_groups().
  [[nodiscard]] double job_alloc(std::size_t j) const {
    const double x = group_x_[job_group_[j]];
    const double completion = job_submit_[j] + x * job_goal_[j];
    const double horizon = completion - job_now_[j];
    if (horizon <= 0.0) return job_max_speed_[j];
    return std::clamp(job_remaining_[j] / horizon, 0.0, job_max_speed_[j]);
  }

  std::vector<Ref> refs_;
  std::vector<Group> groups_;
  std::vector<std::uint32_t> job_group_;
  std::vector<double> job_submit_, job_goal_, job_now_, job_remaining_, job_max_speed_;
  std::vector<CurveParams> tx_;
  std::vector<const UtilityConsumer*> generic_;
  mutable std::vector<double> group_x_;
  mutable double group_u_{std::numeric_limits<double>::quiet_NaN()};
};

}  // namespace

EqualizeResult equalize(const std::vector<const UtilityConsumer*>& consumers,
                        util::CpuMhz capacity, const EqualizerOptions& opts,
                        EqualizerState* state) {
  EqualizeResult result;
  result.allocations.resize(consumers.size());
  if (consumers.empty()) {
    if (state != nullptr) state->valid = false;
    return result;
  }

  double total_demand = 0.0;
  double u_hi = opts.u_floor;
  double u_min_max = 1e300;
  for (const auto* c : consumers) {
    total_demand += c->demand_max().get();
    u_hi = std::max(u_hi, c->utility_max());
    u_min_max = std::min(u_min_max, c->utility_max());
  }
  result.total_demand = util::CpuMhz{total_demand};

  if (total_demand <= capacity.get()) {
    // Uncontended: everyone receives full demand.
    result.contended = false;
    result.u_star = u_min_max;
    double total = 0.0;
    for (std::size_t i = 0; i < consumers.size(); ++i) {
      const util::CpuMhz a = consumers[i]->demand_max();
      result.allocations[i] = {a, consumers[i]->utility_at(a)};
      total += a.get();
    }
    result.total = util::CpuMhz{total};
    // No bracket was searched, so there is nothing useful to warm-start
    // the next contended cycle from.
    if (state != nullptr) state->valid = false;
    return result;
  }

  result.contended = true;

  std::optional<CurveCache> cache;
  if (opts.use_curve_cache) cache.emplace(consumers);
  const auto total_at = [&](double u) {
    return cache ? cache->total_alloc_at(u) : total_alloc_at(consumers, u);
  };

  // Widen the floor if even the floor's allocations exceed capacity
  // (can happen with extreme importance weights).
  double u_lo = opts.u_floor;
  for (int widen = 0; widen < 16 && total_at(u_lo) > capacity.get(); ++widen) {
    u_lo *= 2.0;
  }

  int iters = 0;

  // Warm start: tighten [u_lo, u_hi] around the previous cycle's u* by
  // geometric expansion from it, preserving the bisection invariant
  // (total(u_lo) ≤ capacity < total(u_hi)). Every probe counts as an
  // iteration so the benefit is measurable.
  // Tolerance-scaled first step: geometric doubling reaches any drift
  // distance in O(log) probes, while small drifts (the common case)
  // leave a bracket only a few tolerances wide. A nonpositive step
  // (u_tolerance = 0 is legal — the cold path terminates on
  // max_iterations alone) would stall the walks, so it disables the
  // warm start instead.
  const double warm_step = 64.0 * opts.u_tolerance;
  if (opts.warm_start && state != nullptr && state->valid && warm_step > 0.0 &&
      state->u_star > u_lo && state->u_star < u_hi) {
    double step = warm_step;
    double probe = state->u_star;
    ++iters;
    if (total_at(probe) <= capacity.get()) {
      // Previous u* is feasible: it is the new lower bound; walk up
      // until infeasible (u_hi itself is infeasible in the contended
      // regime, so the walk terminates there at worst).
      u_lo = probe;
      while (probe < u_hi && iters < opts.max_iterations) {
        probe = std::min(u_hi, probe + step);
        step *= 2.0;
        if (probe >= u_hi) break;
        ++iters;
        if (total_at(probe) > capacity.get()) {
          u_hi = probe;
          break;
        }
        u_lo = probe;
      }
    } else {
      // Previous u* is infeasible: new upper bound; walk down.
      u_hi = probe;
      while (probe > u_lo && iters < opts.max_iterations) {
        probe = std::max(u_lo, probe - step);
        step *= 2.0;
        if (probe <= u_lo) break;
        ++iters;
        if (total_at(probe) <= capacity.get()) {
          u_lo = probe;
          break;
        }
        u_hi = probe;
      }
    }
  }

  // Bisect g(u) = total_alloc(u) − capacity, monotone non-decreasing.
  while (u_hi - u_lo > opts.u_tolerance && iters < opts.max_iterations) {
    const double mid = 0.5 * (u_lo + u_hi);
    if (total_at(mid) <= capacity.get()) {
      u_lo = mid;
    } else {
      u_hi = mid;
    }
    ++iters;
  }
  result.iterations = iters;
  // Use the feasible side (total ≤ capacity).
  result.u_star = u_lo;
  if (state != nullptr) {
    state->valid = true;
    state->u_star = result.u_star;
  }

  double total = 0.0;
  for (std::size_t i = 0; i < consumers.size(); ++i) {
    const util::CpuMhz a = cache ? util::CpuMhz{cache->alloc_at(i, result.u_star)}
                                 : consumers[i]->alloc_for_utility(result.u_star);
    result.allocations[i] = {a, consumers[i]->utility_at(a)};
    total += a.get();
  }

  // The bisection leaves a small slack (or FP overshoot). Scale down if
  // infeasible; leave tiny slack alone (the placement layer rounds anyway).
  if (total > capacity.get() && total > 0.0) {
    const double scale = capacity.get() / total;
    total = 0.0;
    for (std::size_t i = 0; i < consumers.size(); ++i) {
      result.allocations[i].alloc *= scale;
      result.allocations[i].utility = consumers[i]->utility_at(result.allocations[i].alloc);
      total += result.allocations[i].alloc.get();
    }
  }
  result.total = util::CpuMhz{total};
  return result;
}

}  // namespace heteroplace::core
