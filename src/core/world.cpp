#include "core/world.hpp"

#include <algorithm>

namespace heteroplace::core {

void World::add_app(workload::TxApp app) {
  const util::AppId id = app.id();
  if (app_index_.count(id) > 0) throw std::invalid_argument("World::add_app: duplicate app id");
  app_index_.emplace(id, apps_.size());
  apps_.push_back(std::move(app));
}

const workload::TxApp& World::app(util::AppId id) const {
  auto it = app_index_.find(id);
  if (it == app_index_.end()) throw std::out_of_range("World::app: unknown app id");
  return apps_[it->second];
}

workload::TxApp& World::app_mut(util::AppId id) {
  auto it = app_index_.find(id);
  if (it == app_index_.end()) throw std::out_of_range("World::app_mut: unknown app id");
  return apps_[it->second];
}

workload::Job& World::submit_job(workload::JobSpec spec) {
  const util::JobId id = spec.id;
  if (jobs_.count(id) > 0) throw std::invalid_argument("World::submit_job: duplicate job id");
  auto [it, _] = jobs_.emplace(id, workload::Job{std::move(spec)});
  job_order_.push_back(id);
  return it->second;
}

workload::Job& World::adopt_job(workload::Job job) {
  const util::JobId id = job.id();
  if (jobs_.count(id) > 0) throw std::invalid_argument("World::adopt_job: duplicate job id");
  auto [it, _] = jobs_.emplace(id, std::move(job));
  job_order_.push_back(id);
  return it->second;
}

workload::Job World::extract_job(util::JobId id) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) throw std::out_of_range("World::extract_job: unknown job id");
  workload::Job out = std::move(it->second);
  jobs_.erase(it);
  job_order_.erase(std::remove(job_order_.begin(), job_order_.end(), id), job_order_.end());
  return out;
}

workload::Job& World::job(util::JobId id) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) throw std::out_of_range("World::job: unknown job id");
  return it->second;
}

const workload::Job& World::job(util::JobId id) const {
  return const_cast<World*>(this)->job(id);
}

std::vector<workload::Job*> World::active_jobs() {
  std::vector<workload::Job*> out;
  for (util::JobId id : job_order_) {
    workload::Job& j = jobs_.at(id);
    if (j.phase() != workload::JobPhase::kCompleted && !j.held()) out.push_back(&j);
  }
  return out;
}

std::vector<const workload::Job*> World::active_jobs() const {
  std::vector<const workload::Job*> out;
  for (util::JobId id : job_order_) {
    const workload::Job& j = jobs_.at(id);
    if (j.phase() != workload::JobPhase::kCompleted && !j.held()) out.push_back(&j);
  }
  return out;
}

std::size_t World::completed_count() const {
  std::size_t n = 0;
  for (const auto& [_, j] : jobs_) {
    if (j.phase() == workload::JobPhase::kCompleted) ++n;
  }
  return n;
}

}  // namespace heteroplace::core
