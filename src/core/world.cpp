#include "core/world.hpp"

namespace heteroplace::core {

const workload::TxApp& World::app(util::AppId id) const {
  for (const auto& a : apps_) {
    if (a.id() == id) return a;
  }
  throw std::out_of_range("World::app: unknown app id");
}

workload::Job& World::submit_job(workload::JobSpec spec) {
  const util::JobId id = spec.id;
  if (jobs_.count(id) > 0) throw std::invalid_argument("World::submit_job: duplicate job id");
  auto [it, _] = jobs_.emplace(id, workload::Job{std::move(spec)});
  job_order_.push_back(id);
  return it->second;
}

workload::Job& World::job(util::JobId id) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) throw std::out_of_range("World::job: unknown job id");
  return it->second;
}

const workload::Job& World::job(util::JobId id) const {
  return const_cast<World*>(this)->job(id);
}

std::vector<workload::Job*> World::active_jobs() {
  std::vector<workload::Job*> out;
  for (util::JobId id : job_order_) {
    workload::Job& j = jobs_.at(id);
    if (j.phase() != workload::JobPhase::kCompleted) out.push_back(&j);
  }
  return out;
}

std::vector<const workload::Job*> World::active_jobs() const {
  std::vector<const workload::Job*> out;
  for (util::JobId id : job_order_) {
    const workload::Job& j = jobs_.at(id);
    if (j.phase() != workload::JobPhase::kCompleted) out.push_back(&j);
  }
  return out;
}

std::size_t World::completed_count() const {
  std::size_t n = 0;
  for (const auto& [_, j] : jobs_) {
    if (j.phase() == workload::JobPhase::kCompleted) ++n;
  }
  return n;
}

}  // namespace heteroplace::core
