#pragma once

// Placement-policy interface.
//
// The paper's utility-driven controller and all baseline schedulers
// implement this interface, so experiments can swap policies while the
// surrounding machinery (simulator, executor, metrics) stays identical.

#include <cmath>
#include <string>
#include <vector>

#include "cluster/placement.hpp"
#include "core/placement_solver.hpp"
#include "core/world.hpp"
#include "obs/context.hpp"
#include "util/units.hpp"

namespace heteroplace::core {

/// Per-decision diagnostics: everything the metric recorder needs to
/// reproduce the paper's Figures 1 and 2 plus churn ablations.
struct PolicyDiagnostics {
  /// Equalized utility level (NaN for policies that don't equalize).
  double u_star{std::nan("")};
  bool contended{false};

  struct AppDiag {
    util::AppId id{};
    double lambda{0.0};
    util::CpuMhz demand{0.0};  // CPU for maximum utility (Fig. 2 "demand")
    util::CpuMhz target{0.0};  // CPU the policy intends to grant
  };
  std::vector<AppDiag> apps;

  /// Long-running workload aggregates over active jobs.
  util::CpuMhz jobs_demand{0.0};
  util::CpuMhz jobs_target{0.0};
  double jobs_avg_hyp_utility{0.0};  // mean hypothetical utility at target
  double jobs_min_hyp_utility{0.0};
  double jobs_max_hyp_utility{0.0};
  int active_jobs{0};

  SolverStats solver;
};

struct PolicyOutput {
  cluster::PlacementPlan plan;
  PolicyDiagnostics diag;
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  /// Produce the desired placement for the current world state. Called
  /// once per control cycle; must not mutate the world.
  [[nodiscard]] virtual PolicyOutput decide(const World& world, util::Seconds now) = 0;

  /// The controller was offline (domain blackout) and is resuming from
  /// live cluster state: drop warm-start state carried across cycles —
  /// the world may have changed arbitrarily while the policy was blind.
  virtual void on_resync() {}

  /// Attach observability (forwarded by PlacementController::set_obs).
  /// Policies that trace their solve phases override this; the default
  /// keeps baselines emission-free.
  virtual void set_obs(const obs::ObsContext& /*ctx*/) {}

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace heteroplace::core
