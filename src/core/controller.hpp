#pragma once

// The placement controller: the paper's periodic control loop.
//
// Every `cycle` seconds (600 s in the paper's evaluation) the controller
// snapshots the world, asks its policy for a desired placement, and has
// the executor converge toward it. An observer receives a CycleReport
// after each cycle — the metric recorder uses it to reproduce Figures 1
// and 2.

#include <functional>
#include <memory>

#include "cluster/actions.hpp"
#include "core/executor.hpp"
#include "core/policy.hpp"
#include "core/world.hpp"
#include "obs/context.hpp"
#include "sim/engine.hpp"

namespace heteroplace::core {

struct ControllerConfig {
  util::Seconds cycle{600.0};
  /// Time of the first control evaluation (clamped up to now() at
  /// start()). Federated deployments stagger their domains through this
  /// hook so controllers do not fire in lockstep.
  util::Seconds first_cycle_at{0.0};
  /// Parallel-batch shard for this controller's events (and its
  /// executor's). The federation sets this to the domain index: all
  /// effects of a cycle are confined to the domain's world, so
  /// same-timestamp cycles of distinct domains may run concurrently
  /// when engine.threads>1. kNoShard keeps everything serial.
  sim::ShardId shard{sim::kNoShard};
};

struct CycleReport {
  util::Seconds t{0.0};
  PolicyDiagnostics diag;
  cluster::ActionCounts actions;  // actions initiated this cycle
};

class PlacementController {
 public:
  using CycleObserver = std::function<void(const CycleReport&)>;

  PlacementController(sim::Engine& engine, World& world,
                      std::unique_ptr<PlacementPolicy> policy,
                      cluster::ActionLatencies latencies = {}, ControllerConfig config = {})
      : engine_(engine),
        world_(world),
        policy_(std::move(policy)),
        executor_(engine, world, latencies),
        config_(config) {
    executor_.set_shard(config_.shard);
  }

  void set_observer(CycleObserver observer) { observer_ = std::move(observer); }

  /// Attach observability (trace spans, cycle metrics, phase timers);
  /// forwards to the policy and the executor. Call before start(); the
  /// default (no call) keeps every emission site a dead branch.
  void set_obs(const obs::ObsContext& ctx);

  [[nodiscard]] const ControllerConfig& config() const { return config_; }

  /// Adjust the first-evaluation time (phase offset). Must be called
  /// before start(); the federation layer uses it to stagger domains.
  void set_first_cycle_at(util::Seconds t) { config_.first_cycle_at = t; }

  /// Assign the parallel-batch shard (see ControllerConfig::shard).
  /// Must be called before start(); propagates to the executor.
  void set_shard(sim::ShardId shard) {
    config_.shard = shard;
    executor_.set_shard(shard);
  }

  /// Schedule the periodic control loop on the engine. Call once, before
  /// Engine::run(). Throws std::invalid_argument on a nonpositive cycle
  /// or a negative first_cycle_at.
  void start();

  /// Run one control evaluation immediately (tests / manual stepping).
  void run_cycle();

  [[nodiscard]] ActionExecutor& executor() { return executor_; }
  [[nodiscard]] PlacementPolicy& policy() { return *policy_; }
  [[nodiscard]] long cycles_run() const { return cycles_; }

  /// Time of the next scheduled periodic evaluation (the first one until
  /// start() fires, then always now + cycle of the latest run; resync
  /// cycles do not move it). The migration manager aligns deferred
  /// destination attaches to this instant.
  [[nodiscard]] util::Seconds next_cycle_at() const { return next_cycle_at_; }

  // --- fault tolerance -------------------------------------------------------

  /// Domain blackout support: while offline the periodic loop keeps its
  /// schedule but every evaluation is skipped (counted in
  /// missed_cycles). Going back online resyncs from live cluster state:
  /// the policy drops its warm-start state (PlacementPolicy::on_resync)
  /// and one extra control cycle runs at the recovery timestamp.
  void set_online(bool online);
  [[nodiscard]] bool online() const { return online_; }
  [[nodiscard]] long missed_cycles() const { return missed_cycles_; }

  /// Cache the post-apply PlacementProblem skeleton each cycle so
  /// same-timestamp consumers (PowerManager::tick) can reuse it instead
  /// of rebuilding. Off by default: a run without a consolidation policy
  /// should not pay for snapshots nobody reads.
  void enable_problem_cache() { cache_enabled_ = true; }

  /// The cached skeleton, iff one was built at exactly `now` (stale
  /// snapshots are never shared — callers fall back to building their
  /// own).
  [[nodiscard]] const PlacementProblem* cached_problem(util::Seconds now) const {
    return cache_enabled_ && cache_valid_ && cached_at_.get() == now.get() ? &cached_ : nullptr;
  }

 private:
  void schedule_next();

  sim::Engine& engine_;
  World& world_;
  std::unique_ptr<PlacementPolicy> policy_;
  ActionExecutor executor_;
  ControllerConfig config_;
  CycleObserver observer_;
  obs::ObsContext obs_;
  obs::Counter* cycles_metric_{nullptr};
  obs::Counter* missed_cycles_metric_{nullptr};
  long cycles_{0};
  long missed_cycles_{0};
  util::Seconds next_cycle_at_{0.0};
  bool online_{true};
  bool cache_enabled_{false};
  bool cache_valid_{false};
  util::Seconds cached_at_{-1.0};
  PlacementProblem cached_;
};

}  // namespace heteroplace::core
