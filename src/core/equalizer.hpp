#pragma once

// Hypothetical-utility equalization — the paper's core resource arbiter.
//
// Pretend all consumers can be served simultaneously and CPU is infinitely
// divisible. Find the common utility level u* such that giving every
// consumer exactly the CPU it needs to reach u* exhausts the cluster
// capacity. Consumers that cannot reach u* even at their maximum useful
// allocation are clamped there (and sit below u*); if total demand fits,
// everyone simply receives full demand (the uncontended regime).
//
// Because every consumer's CPU-for-utility curve is monotone, the excess
// function  g(u) = Σ alloc_for_utility(u) − capacity  is monotone in u and
// the fixed point is found by bisection. This is the formal version of
// "continuously stealing resources from the more satisfied applications
// to give to the less satisfied applications".

#include <vector>

#include "core/consumer.hpp"
#include "util/units.hpp"

namespace heteroplace::core {

struct EqualizerOptions {
  /// Lower bound of the utility search window. Must be below any utility
  /// a consumer can have under starvation.
  double u_floor{-1.0e4};
  /// Bisection tolerance on u*.
  double u_tolerance{1.0e-5};
  int max_iterations{120};
  /// Evaluate Σ alloc_for_utility(u) from flattened curve parameters
  /// (see CurveParams) instead of per-consumer virtual dispatch. Results
  /// agree to within the bisection tolerance; the flag exists so
  /// bench/perf_baseline can measure the seed path and tests can assert
  /// the equivalence.
  bool use_curve_cache{true};
  /// Start the outer bisection from a tight bracket around the previous
  /// cycle's u* (passed via the EqualizerState argument) instead of the
  /// full [u_floor, max utility] window. Under slowly varying load this
  /// cuts iterations roughly 3×; the result agrees with the cold start
  /// to within u_tolerance (pinned by tests/equalizer_test.cpp).
  bool warm_start{false};
};

/// Cross-cycle carry-over for warm starts. One instance per controller;
/// pass it to every equalize() call and it is refreshed automatically.
struct EqualizerState {
  bool valid{false};
  double u_star{0.0};
};

struct ConsumerAllocation {
  util::CpuMhz alloc{0.0};  // equalized CPU target
  double utility{0.0};      // hypothetical utility at that target
};

struct EqualizeResult {
  /// Common utility level (max achievable min-utility). In the
  /// uncontended regime this is the smallest utility_max() and no
  /// consumer is constrained.
  double u_star{0.0};
  /// True when capacity binds (some consumer is below its demand).
  bool contended{false};
  /// Per-consumer targets, parallel to the input vector.
  std::vector<ConsumerAllocation> allocations;
  /// Σ allocations (≤ capacity + tolerance).
  util::CpuMhz total{0.0};
  /// Σ demand_max across consumers (the "demand" curves of Figure 2).
  util::CpuMhz total_demand{0.0};
  int iterations{0};
};

/// Equalize hypothetical utility across `consumers` subject to `capacity`.
/// Consumers may be in any order; the result is order-independent up to
/// the bisection tolerance. `state`, when given, is refreshed with this
/// call's u* and consulted as the warm-start seed when
/// opts.warm_start is set.
[[nodiscard]] EqualizeResult equalize(const std::vector<const UtilityConsumer*>& consumers,
                                      util::CpuMhz capacity, const EqualizerOptions& opts = {},
                                      EqualizerState* state = nullptr);

}  // namespace heteroplace::core
