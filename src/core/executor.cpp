#include "core/executor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "obs/audit.hpp"
#include "obs/profile.hpp"
#include "obs/sla.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace heteroplace::core {

namespace {
using cluster::ActionType;
using cluster::VmKind;
using cluster::VmState;
using workload::JobPhase;

/// Executor lifecycle-action audit record ('X'); verdict must be a literal.
void audit_action(obs::AuditLog* audit, double now, const char* verdict,
                  const workload::Job& job, int node) {
  if (audit == nullptr) return;
  obs::AuditRecord rec;
  rec.t = now;
  rec.kind = 'X';
  rec.verdict = verdict;
  rec.consumer = static_cast<std::int64_t>(job.id().get());
  rec.node = node;
  audit->record(rec);
}
}  // namespace

cluster::ActionCounts ActionExecutor::take_counts_delta() {
  cluster::ActionCounts d;
  d.starts = counts_.starts - counts_at_last_delta_.starts;
  d.suspends = counts_.suspends - counts_at_last_delta_.suspends;
  d.resumes = counts_.resumes - counts_at_last_delta_.resumes;
  d.migrations = counts_.migrations - counts_at_last_delta_.migrations;
  d.instance_starts = counts_.instance_starts - counts_at_last_delta_.instance_starts;
  d.instance_stops = counts_.instance_stops - counts_at_last_delta_.instance_stops;
  d.resizes = counts_.resizes - counts_at_last_delta_.resizes;
  counts_at_last_delta_ = counts_;
  return d;
}

util::CpuMhz ActionExecutor::clamped_share(util::VmId vm_id, util::CpuMhz want) const {
  const auto& vm = world_.cluster().vm(vm_id);
  if (!vm.placed()) return util::CpuMhz{0.0};
  const auto& node = world_.cluster().node(vm.node);
  const double free = node.cpu_free().get() + vm.cpu_share.get();
  return util::CpuMhz{std::clamp(want.get(), 0.0, free)};
}

void ActionExecutor::schedule_completion(workload::Job& job) {
  JobRuntime& rt = job_rt_[job.id()];
  rt.completion.cancel();
  if (job.phase() != JobPhase::kRunning || job.speed().get() <= 0.0 || job.finished()) return;
  util::Seconds when = job.predicted_completion(engine_.now(), job.speed());
  // A tiny remaining/speed quotient can underflow the addition so that
  // when == now; nudge to the next representable instant. Completions
  // must stay strictly in the future: a same-timestamp lower-priority
  // event scheduled from inside a control cycle cannot be replayed
  // deterministically by the parallel batch mode.
  if (when.get() <= engine_.now().get()) {
    when = util::Seconds{std::nextafter(engine_.now().get(), std::numeric_limits<double>::infinity())};
  }
  const util::JobId id = job.id();
  rt.completion = engine_.schedule_at(when, sim::EventPriority::kStateTransition, shard_,
                                      [this, id] { on_job_finished(id); });
}

void ActionExecutor::on_job_finished(util::JobId job_id) {
  workload::Job& job = world_.job(job_id);
  job.set_phase(engine_.now(), JobPhase::kCompleted);
  job.mark_completed(engine_.now());
  if (job.vm().valid()) {
    world_.cluster().set_vm_state(job.vm(), VmState::kStopped);
    world_.cluster().unplace_vm(job.vm());
  }
  job.set_node(util::NodeId{});
  job_rt_.erase(job_id);
  if (obs_.trace != nullptr) {
    obs_.trace->instant(obs_.pid, obs::Lane::kExecutor, "job_completed", engine_.now().get(),
                        {{"job", static_cast<double>(job_id.get())}});
  }
  if (obs_.sla != nullptr) obs_.sla->on_job_completed(job, engine_.now().get());
  if (on_completion_) on_completion_(job);
}

void ActionExecutor::finish_transition_to_running(util::JobId job_id) {
  workload::Job& job = world_.job(job_id);
  JobRuntime& rt = job_rt_[job_id];
  world_.cluster().set_vm_state(job.vm(), VmState::kRunning);
  job.set_phase(engine_.now(), JobPhase::kRunning);
  const util::CpuMhz share = clamped_share(job.vm(), util::CpuMhz{rt.pending_share});
  if (!world_.cluster().set_cpu_share(job.vm(), share)) {
    util::log_warn() << "executor: failed to grant share to job " << job_id;
  }
  job.set_speed(engine_.now(), share);
  schedule_completion(job);
}

void ActionExecutor::start_job(workload::Job& job, util::NodeId node, util::CpuMhz cpu,
                               bool is_retry) {
  if (!job.vm().valid()) {
    job.bind_vm(world_.cluster().create_job_vm(job.id(), job.spec().memory));
  }
  if (!world_.cluster().place_vm(job.vm(), node)) {
    if (!is_retry) {
      // Memory may still be draining from a concurrent suspension; retry
      // shortly after the suspension latency has elapsed.
      const util::JobId id = job.id();
      const util::Seconds retry_at =
          engine_.now() + latencies_.suspend_job + util::Seconds{1.0};
      engine_.schedule_at(retry_at, sim::EventPriority::kStateTransition, shard_, [this, id, node, cpu] {
        if (!world_.job_exists(id)) return;  // handed off to another domain meanwhile
        workload::Job& j = world_.job(id);
        if (j.phase() == JobPhase::kPending && !j.held()) start_job(j, node, cpu, /*is_retry=*/true);
      });
    }
    return;
  }
  job.set_node(node);
  world_.cluster().set_vm_state(job.vm(), VmState::kStarting);
  job.set_phase(engine_.now(), JobPhase::kStarting);
  counts_.record(ActionType::kStartJob);
  if (obs_.sla != nullptr) obs_.sla->on_job_started(job.id(), engine_.now().get());
  audit_action(obs_.audit, engine_.now().get(), "start", job, static_cast<int>(node.get()));
  if (obs_.trace != nullptr) {
    obs_.trace->instant(obs_.pid, obs::Lane::kExecutor, "job_start", engine_.now().get(),
                        {{"job", static_cast<double>(job.id().get())},
                         {"node", static_cast<double>(node.get())}});
  }
  JobRuntime& rt = job_rt_[job.id()];
  rt.pending_share = cpu.get();
  const util::JobId id = job.id();
  rt.transition = engine_.schedule_in(latencies_.start_job, sim::EventPriority::kStateTransition,
                                      shard_, [this, id] { finish_transition_to_running(id); });
}

void ActionExecutor::resume_job(workload::Job& job, util::NodeId node, util::CpuMhz cpu,
                                bool is_retry) {
  if (!world_.cluster().place_vm(job.vm(), node)) {
    if (!is_retry) {
      const util::JobId id = job.id();
      const util::Seconds retry_at =
          engine_.now() + latencies_.suspend_job + util::Seconds{1.0};
      engine_.schedule_at(retry_at, sim::EventPriority::kStateTransition, shard_, [this, id, node, cpu] {
        if (!world_.job_exists(id)) return;  // handed off to another domain meanwhile
        workload::Job& j = world_.job(id);
        if (j.phase() == JobPhase::kSuspended && !j.held()) {
          resume_job(j, node, cpu, /*is_retry=*/true);
        }
      });
    }
    return;
  }
  job.set_node(node);
  world_.cluster().set_vm_state(job.vm(), VmState::kResuming);
  job.set_phase(engine_.now(), JobPhase::kResuming);
  counts_.record(ActionType::kResumeJob);
  audit_action(obs_.audit, engine_.now().get(), "resume", job, static_cast<int>(node.get()));
  if (obs_.trace != nullptr) {
    obs_.trace->instant(obs_.pid, obs::Lane::kExecutor, "job_resume", engine_.now().get(),
                        {{"job", static_cast<double>(job.id().get())},
                         {"node", static_cast<double>(node.get())}});
  }
  JobRuntime& rt = job_rt_[job.id()];
  rt.pending_share = cpu.get();
  const util::JobId id = job.id();
  rt.transition = engine_.schedule_in(latencies_.resume_job, sim::EventPriority::kStateTransition,
                                      shard_, [this, id] { finish_transition_to_running(id); });
}

bool ActionExecutor::migrate_job(workload::Job& job, util::NodeId node, util::CpuMhz cpu) {
  // Refuse (caller may retry after other moves free memory) when the
  // destination cannot take the VM's memory.
  const cluster::Resources need{util::CpuMhz{0.0}, job.spec().memory};
  if (!world_.cluster().node(node).can_host(need)) return false;

  JobRuntime& rt = job_rt_[job.id()];
  rt.completion.cancel();
  world_.cluster().set_vm_state(job.vm(), VmState::kMigrating);
  world_.cluster().unplace_vm(job.vm());
  if (!world_.cluster().place_vm(job.vm(), node)) {
    // Should not happen after can_host; park the image on disk.
    world_.cluster().set_vm_state(job.vm(), VmState::kSuspended);
    job.set_node(util::NodeId{});
    job.set_phase(engine_.now(), JobPhase::kSuspended);
    job.count_suspend();
    counts_.record(ActionType::kSuspendJob);
    audit_action(obs_.audit, engine_.now().get(), "suspend", job, -1);
    return true;
  }
  job.set_node(node);
  job.set_phase(engine_.now(), JobPhase::kMigrating);
  job.count_migrate();
  counts_.record(ActionType::kMigrateJob);
  audit_action(obs_.audit, engine_.now().get(), "migrate", job, static_cast<int>(node.get()));
  if (obs_.trace != nullptr) {
    obs_.trace->instant(obs_.pid, obs::Lane::kExecutor, "job_migrate", engine_.now().get(),
                        {{"job", static_cast<double>(job.id().get())},
                         {"node", static_cast<double>(node.get())}});
  }
  rt.pending_share = cpu.get();
  const util::JobId id = job.id();
  rt.transition = engine_.schedule_in(latencies_.migrate_job, sim::EventPriority::kStateTransition,
                                      shard_, [this, id] { finish_transition_to_running(id); });
  return true;
}

void ActionExecutor::suspend_job(workload::Job& job) {
  JobRuntime& rt = job_rt_[job.id()];
  rt.completion.cancel();
  if (!world_.cluster().set_cpu_share(job.vm(), util::CpuMhz{0.0})) {
    util::log_warn() << "executor: failed to zero share of job " << job.id();
  }
  job.set_speed(engine_.now(), util::CpuMhz{0.0});
  world_.cluster().set_vm_state(job.vm(), VmState::kSuspending);
  job.set_phase(engine_.now(), JobPhase::kSuspending);
  job.count_suspend();
  counts_.record(ActionType::kSuspendJob);
  audit_action(obs_.audit, engine_.now().get(),
               "suspend", job, job.node().valid() ? static_cast<int>(job.node().get()) : -1);
  if (obs_.trace != nullptr) {
    obs_.trace->instant(obs_.pid, obs::Lane::kExecutor, "job_suspend", engine_.now().get(),
                        {{"job", static_cast<double>(job.id().get())}});
  }
  const util::JobId id = job.id();
  rt.transition =
      engine_.schedule_in(latencies_.suspend_job, sim::EventPriority::kStateTransition,
                          shard_, [this, id] {
                            workload::Job& j = world_.job(id);
                            world_.cluster().set_vm_state(j.vm(), VmState::kSuspended);
                            world_.cluster().unplace_vm(j.vm());
                            j.set_node(util::NodeId{});
                            j.set_phase(engine_.now(), JobPhase::kSuspended);
                          });
}

void ActionExecutor::suspend_job_for_migration(util::JobId id) {
  workload::Job& job = world_.job(id);
  if (job.phase() != JobPhase::kRunning) return;
  suspend_job(job);
}

void ActionExecutor::forget_job(util::JobId id) {
  auto it = job_rt_.find(id);
  if (it == job_rt_.end()) return;
  it->second.completion.cancel();
  it->second.transition.cancel();
  job_rt_.erase(it);
}

void ActionExecutor::forget_instance(util::VmId vm) {
  auto it = instance_start_.find(vm);
  if (it != instance_start_.end()) {
    it->second.cancel();
    instance_start_.erase(it);
  }
  instance_pending_share_.erase(vm);
}

void ActionExecutor::apply(const cluster::PlacementPlan& plan) {
  const util::Seconds now = engine_.now();
  auto& cl = world_.cluster();
  const obs::ScopedTimer apply_timer(obs_.profiler, obs::Phase::kExecutorApply);
  obs::TraceRecorder* const tr = obs_.trace;
  const cluster::ActionCounts before = counts_;
  if (tr != nullptr) {
    tr->begin(obs_.pid, obs::Lane::kExecutor, "apply", now.get(),
              {{"planned_jobs", static_cast<double>(plan.jobs.size())},
               {"planned_instances", static_cast<double>(plan.instances.size())}});
  }

  // Index the desired state.
  std::map<util::JobId, cluster::DesiredJobPlacement> desired_jobs;
  for (const auto& j : plan.jobs) desired_jobs.emplace(j.job, j);
  std::map<std::pair<util::AppId, util::NodeId>, util::CpuMhz> desired_insts;
  for (const auto& i : plan.instances) desired_insts.emplace(std::make_pair(i.app, i.node), i.cpu);

  // Index existing web instances.
  std::map<std::pair<util::AppId, util::NodeId>, util::VmId> existing_insts;
  for (util::VmId vm_id : cl.vm_ids()) {
    const auto& vm = cl.vm(vm_id);
    if (vm.kind != VmKind::kWebInstance) continue;
    if (vm.state == VmState::kRunning || vm.state == VmState::kStarting) {
      existing_insts.emplace(std::make_pair(vm.app, vm.node), vm_id);
    }
  }

  // ---- Pass 1: suspends and instance stops --------------------------------
  if (tr != nullptr) tr->begin(obs_.pid, obs::Lane::kExecutor, "pass1_release", now.get());
  for (workload::Job* job : world_.active_jobs()) {
    if (job->phase() == JobPhase::kRunning && desired_jobs.count(job->id()) == 0) {
      suspend_job(*job);
    }
  }
  for (const auto& [key, vm_id] : existing_insts) {
    if (desired_insts.count(key) > 0) continue;
    const auto& vm = cl.vm(vm_id);
    if (vm.state == VmState::kStarting) {
      auto it = instance_start_.find(vm_id);
      if (it != instance_start_.end()) {
        it->second.cancel();
        instance_start_.erase(it);
      }
      instance_pending_share_.erase(vm_id);
    }
    cl.set_vm_state(vm_id, VmState::kStopped);
    cl.unplace_vm(vm_id);
    counts_.record(ActionType::kStopInstance);
  }
  if (tr != nullptr) {
    tr->end(obs_.pid, obs::Lane::kExecutor, "pass1_release", now.get());
    tr->begin(obs_.pid, obs::Lane::kExecutor, "pass2_resize", now.get());
  }

  // ---- Pass 2: resizes (shrink first, then grow) --------------------------
  struct Resize {
    util::VmId vm;
    util::CpuMhz cpu;
    util::JobId job;  // valid for job resizes
  };
  std::vector<Resize> shrinks;
  std::vector<Resize> grows;

  for (workload::Job* job : world_.active_jobs()) {
    auto it = desired_jobs.find(job->id());
    if (it == desired_jobs.end()) continue;
    const auto& want = it->second;
    switch (job->phase()) {
      case JobPhase::kRunning:
        if (job->node() == want.node) {
          const double cur = job->speed().get();
          if (want.cpu.get() < cur - 1e-9) {
            shrinks.push_back({job->vm(), want.cpu, job->id()});
          } else if (want.cpu.get() > cur + 1e-9) {
            grows.push_back({job->vm(), want.cpu, job->id()});
          }
        }
        break;
      case JobPhase::kStarting:
      case JobPhase::kResuming:
      case JobPhase::kMigrating:
        // Mid-transition: just update the share to grant on completion.
        job_rt_[job->id()].pending_share = want.cpu.get();
        break;
      default:
        break;
    }
  }
  for (const auto& [key, cpu] : desired_insts) {
    auto it = existing_insts.find(key);
    if (it == existing_insts.end()) continue;
    const auto& vm = cl.vm(it->second);
    if (vm.state == VmState::kStarting) {
      instance_pending_share_[it->second] = cpu.get();
      continue;
    }
    const double cur = vm.cpu_share.get();
    if (cpu.get() < cur - 1e-9) {
      shrinks.push_back({it->second, cpu, util::JobId{}});
    } else if (cpu.get() > cur + 1e-9) {
      grows.push_back({it->second, cpu, util::JobId{}});
    }
  }

  auto apply_resize = [&](const Resize& r) {
    const util::CpuMhz share = clamped_share(r.vm, r.cpu);
    if (!cl.set_cpu_share(r.vm, share)) {
      util::log_warn() << "executor: resize failed for vm " << r.vm;
      return;
    }
    counts_.record(ActionType::kResizeCpu);
    if (r.job.valid()) {
      workload::Job& job = world_.job(r.job);
      job.set_speed(now, share);
      schedule_completion(job);
    }
  };
  for (const auto& r : shrinks) apply_resize(r);
  for (const auto& r : grows) apply_resize(r);
  if (tr != nullptr) {
    tr->end(obs_.pid, obs::Lane::kExecutor, "pass2_resize", now.get(),
            {{"shrinks", static_cast<double>(shrinks.size())},
             {"grows", static_cast<double>(grows.size())}});
    tr->begin(obs_.pid, obs::Lane::kExecutor, "pass3_migrate", now.get());
  }

  // ---- Pass 3: migrations ---------------------------------------------------
  // Fixpoint loop: a move can be blocked on memory another move is about
  // to release, so iterate until no further move succeeds, then suspend
  // the rest (the next cycle resumes them wherever there is room).
  std::vector<util::JobId> moves;
  for (workload::Job* job : world_.active_jobs()) {
    auto it = desired_jobs.find(job->id());
    if (it == desired_jobs.end()) continue;
    if (job->phase() == JobPhase::kRunning && job->node() != it->second.node) {
      moves.push_back(job->id());
    }
  }
  bool progress = true;
  while (progress && !moves.empty()) {
    progress = false;
    for (auto it = moves.begin(); it != moves.end();) {
      workload::Job& job = world_.job(*it);
      const auto& want = desired_jobs.at(*it);
      if (migrate_job(job, want.node, want.cpu)) {
        it = moves.erase(it);
        progress = true;
      } else {
        ++it;
      }
    }
  }
  for (util::JobId id : moves) suspend_job(world_.job(id));
  if (tr != nullptr) {
    tr->end(obs_.pid, obs::Lane::kExecutor, "pass3_migrate", now.get(),
            {{"stranded", static_cast<double>(moves.size())}});
    tr->begin(obs_.pid, obs::Lane::kExecutor, "pass4_start", now.get());
  }

  // ---- Pass 4: starts and resumes -------------------------------------------
  for (workload::Job* job : world_.active_jobs()) {
    auto it = desired_jobs.find(job->id());
    if (it == desired_jobs.end()) continue;
    if (job->phase() == JobPhase::kPending) {
      start_job(*job, it->second.node, it->second.cpu, /*is_retry=*/false);
    } else if (job->phase() == JobPhase::kSuspended) {
      resume_job(*job, it->second.node, it->second.cpu, /*is_retry=*/false);
    }
  }
  for (const auto& [key, cpu] : desired_insts) {
    if (existing_insts.count(key) > 0) continue;
    const auto [app_id, node_id] = key;
    const workload::TxApp& app = world_.app(app_id);
    const util::VmId vm_id = cl.create_web_vm(app_id, app.spec().instance_memory);
    if (!cl.place_vm(vm_id, node_id)) {
      // Memory not free yet (draining suspension): drop this instance for
      // now; the next cycle will re-plan it.
      cl.set_vm_state(vm_id, VmState::kStopped);
      continue;
    }
    cl.set_vm_state(vm_id, VmState::kStarting);
    counts_.record(ActionType::kStartInstance);
    instance_pending_share_[vm_id] = cpu.get();
    instance_start_[vm_id] = engine_.schedule_in(
        latencies_.start_instance, sim::EventPriority::kStateTransition, shard_, [this, vm_id] {
          auto& cl2 = world_.cluster();
          cl2.set_vm_state(vm_id, VmState::kRunning);
          const double want = instance_pending_share_[vm_id];
          const util::CpuMhz share = clamped_share(vm_id, util::CpuMhz{want});
          if (!cl2.set_cpu_share(vm_id, share)) {
            util::log_warn() << "executor: failed to grant share to instance vm " << vm_id;
          }
          instance_start_.erase(vm_id);
          instance_pending_share_.erase(vm_id);
        });
  }
  if (tr != nullptr) {
    tr->end(obs_.pid, obs::Lane::kExecutor, "pass4_start", now.get());
    tr->end(obs_.pid, obs::Lane::kExecutor, "apply", now.get(),
            {{"suspends", static_cast<double>(counts_.suspends - before.suspends)},
             {"migrations", static_cast<double>(counts_.migrations - before.migrations)},
             {"starts", static_cast<double>(counts_.starts + counts_.resumes - before.starts -
                                            before.resumes)}});
  }
}

}  // namespace heteroplace::core
