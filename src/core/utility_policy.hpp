#pragma once

// The paper's policy: hypothetical-utility equalization followed by
// utility-driven discrete placement.

#include <functional>
#include <memory>

#include "core/equalizer.hpp"
#include "core/policy.hpp"
#include "utility/job_utility.hpp"
#include "utility/tx_utility.hpp"

namespace heteroplace::core {

class UtilityDrivenPolicy final : public PlacementPolicy {
 public:
  /// Supplies the controller's view of an app's arrival rate at decision
  /// time. Defaults to the ground-truth demand trace; experiments install
  /// noisy/smoothed monitors here (see perfmodel::RateEstimator).
  using LambdaProvider = std::function<double(const workload::TxApp&, util::Seconds)>;

  UtilityDrivenPolicy(std::shared_ptr<const utility::JobUtilityModel> job_model,
                      std::shared_ptr<const utility::TxUtilityModel> tx_model,
                      SolverConfig solver_config = {}, EqualizerOptions eq_options = {})
      : job_model_(std::move(job_model)),
        tx_model_(std::move(tx_model)),
        solver_config_(solver_config),
        eq_options_(eq_options) {}

  void set_lambda_provider(LambdaProvider provider) { lambda_provider_ = std::move(provider); }

  [[nodiscard]] PolicyOutput decide(const World& world, util::Seconds now) override;
  void on_resync() override { eq_state_ = EqualizerState{}; }
  void set_obs(const obs::ObsContext& ctx) override;
  [[nodiscard]] std::string name() const override { return "utility-driven"; }

  [[nodiscard]] const utility::JobUtilityModel& job_model() const { return *job_model_; }
  [[nodiscard]] const utility::TxUtilityModel& tx_model() const { return *tx_model_; }

 private:
  std::shared_ptr<const utility::JobUtilityModel> job_model_;
  std::shared_ptr<const utility::TxUtilityModel> tx_model_;
  SolverConfig solver_config_;
  EqualizerOptions eq_options_;
  EqualizerState eq_state_;  // previous-cycle u* for warm starts
  LambdaProvider lambda_provider_;
  obs::ObsContext obs_;
  obs::Histogram* eq_iterations_metric_{nullptr};
};

/// Build the solver's PlacementProblem from world state. Exposed for
/// baseline policies (they share the discrete machinery but provide
/// their own targets/urgencies) and for tests.
[[nodiscard]] PlacementProblem build_problem_skeleton(const World& world);

}  // namespace heteroplace::core
