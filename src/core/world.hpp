#pragma once

// World: the complete managed-system state — cluster, transactional apps,
// and the job population — shared by the controller, the executor, and
// the experiment driver.

#include <map>
#include <memory>
#include <stdexcept>
#include <vector>

#include "cluster/cluster.hpp"
#include "util/ids.hpp"
#include "workload/job.hpp"
#include "workload/transactional.hpp"

namespace heteroplace::core {

class World {
 public:
  World() = default;

  [[nodiscard]] cluster::Cluster& cluster() { return cluster_; }
  [[nodiscard]] const cluster::Cluster& cluster() const { return cluster_; }

  /// Register a transactional application (before the run starts).
  void add_app(workload::TxApp app);
  [[nodiscard]] const std::vector<workload::TxApp>& apps() const { return apps_; }
  [[nodiscard]] bool app_exists(util::AppId id) const { return app_index_.count(id) > 0; }
  [[nodiscard]] const workload::TxApp& app(util::AppId id) const;
  /// Mutable access, used by the federation layer to re-split an app's
  /// demand trace across domains (e.g. on a brownout).
  [[nodiscard]] workload::TxApp& app_mut(util::AppId id);

  /// Submit a job (typically from an arrival event). The job starts in
  /// phase kPending with no VM.
  workload::Job& submit_job(workload::JobSpec spec);

  /// Insert a job that already carries runtime state (progress, phase,
  /// churn counters) — the receiving half of a cross-domain handoff.
  workload::Job& adopt_job(workload::Job job);

  /// Remove a job from this world and hand its state to the caller — the
  /// sending half of a cross-domain handoff. The caller is responsible
  /// for retiring the job's VM and executor bookkeeping first.
  [[nodiscard]] workload::Job extract_job(util::JobId id);

  [[nodiscard]] bool job_exists(util::JobId id) const { return jobs_.count(id) > 0; }
  [[nodiscard]] workload::Job& job(util::JobId id);
  [[nodiscard]] const workload::Job& job(util::JobId id) const;

  /// All submitted jobs in submission order (completed ones included).
  [[nodiscard]] const std::vector<util::JobId>& job_order() const { return job_order_; }

  /// Jobs that are submitted and not yet completed, in submission order.
  /// Held jobs (mid-migration, see workload::Job::held) are excluded so
  /// every policy, executor pass and sampler treats them as already gone.
  [[nodiscard]] std::vector<workload::Job*> active_jobs();
  [[nodiscard]] std::vector<const workload::Job*> active_jobs() const;

  [[nodiscard]] std::size_t submitted_count() const { return jobs_.size(); }
  [[nodiscard]] std::size_t completed_count() const;

 private:
  cluster::Cluster cluster_;
  std::vector<workload::TxApp> apps_;
  std::map<util::AppId, std::size_t> app_index_;  // id → position in apps_
  std::map<util::JobId, workload::Job> jobs_;
  std::vector<util::JobId> job_order_;
};

}  // namespace heteroplace::core
