#pragma once

// Action executor: converges cluster reality toward a PlacementPlan.
//
// Diffs the desired placement against the current cluster state and
// performs the control mechanisms of the paper — start, stop, suspend,
// resume, migrate, resize — with realistic latencies on the simulation
// clock. During a transition the affected VM makes no progress, which is
// what makes placement churn costly.
//
// Apply order matters and is chosen to avoid transient over-commitment:
//   1. suspends and instance stops (release capacity),
//   2. CPU-share shrinks, then grows,
//   3. migrations (with fallback to suspension when memory is not yet free),
//   4. starts and resumes (with a short retry when blocked on memory that
//      a concurrent suspension is still draining).

#include <functional>
#include <map>
#include <utility>

#include "cluster/actions.hpp"
#include "cluster/placement.hpp"
#include "core/world.hpp"
#include "obs/context.hpp"
#include "sim/engine.hpp"

namespace heteroplace::core {

class ActionExecutor {
 public:
  using JobCompletionCallback = std::function<void(const workload::Job&)>;

  ActionExecutor(sim::Engine& engine, World& world, cluster::ActionLatencies latencies = {})
      : engine_(engine), world_(world), latencies_(latencies) {}

  ActionExecutor(const ActionExecutor&) = delete;
  ActionExecutor& operator=(const ActionExecutor&) = delete;

  /// Invoked (synchronously, on the simulation clock) whenever a job
  /// finishes its work.
  void set_completion_callback(JobCompletionCallback cb) { on_completion_ = std::move(cb); }

  /// Parallel-batch shard tag for every event this executor schedules
  /// (transitions, completions, retries). Set by the owning controller;
  /// all these events touch only this executor's World.
  void set_shard(sim::ShardId shard) { shard_ = shard; }

  /// Attach observability (apply-pass spans, per-action instants).
  /// Forwarded by PlacementController::set_obs.
  void set_obs(const obs::ObsContext& ctx) { obs_ = ctx; }

  /// Converge toward `plan`. Called once per control cycle.
  void apply(const cluster::PlacementPlan& plan);

  /// Begin suspending a running job outside the plan-convergence path —
  /// the migration manager's checkpoint step. No-op unless the job is
  /// currently running. Costs the normal suspend latency and counts as a
  /// suspend action.
  void suspend_job_for_migration(util::JobId id);

  /// Drop all runtime bookkeeping (pending completion / transition
  /// events) for a job leaving this world via cross-domain handoff.
  void forget_job(util::JobId id);

  /// Drop runtime bookkeeping (pending start event / share grant) for a
  /// web-app instance VM destroyed out-of-band — a node crash tears the
  /// VM down without the stop path that normally cancels these.
  void forget_instance(util::VmId vm);

  [[nodiscard]] const cluster::ActionLatencies& latencies() const { return latencies_; }

  [[nodiscard]] const cluster::ActionCounts& counts() const { return counts_; }

  /// Actions executed since the last call (per-cycle deltas for metrics).
  [[nodiscard]] cluster::ActionCounts take_counts_delta();

 private:
  struct JobRuntime {
    sim::EventHandle completion;   // pending completion event
    sim::EventHandle transition;   // pending start/resume/migrate/suspend end
    double pending_share{0.0};     // CPU share to grant when transition ends
  };

  void start_job(workload::Job& job, util::NodeId node, util::CpuMhz cpu, bool is_retry);
  void resume_job(workload::Job& job, util::NodeId node, util::CpuMhz cpu, bool is_retry);
  /// Returns false when the destination cannot take the job yet.
  bool migrate_job(workload::Job& job, util::NodeId node, util::CpuMhz cpu);
  void suspend_job(workload::Job& job);
  void finish_transition_to_running(util::JobId job_id);
  void schedule_completion(workload::Job& job);
  void on_job_finished(util::JobId job_id);

  /// Grant as much of `want` as the node can take right now.
  util::CpuMhz clamped_share(util::VmId vm, util::CpuMhz want) const;

  sim::Engine& engine_;
  World& world_;
  cluster::ActionLatencies latencies_;
  sim::ShardId shard_{sim::kNoShard};
  obs::ObsContext obs_;
  JobCompletionCallback on_completion_;
  cluster::ActionCounts counts_;
  cluster::ActionCounts counts_at_last_delta_;
  std::map<util::JobId, JobRuntime> job_rt_;
  std::map<util::VmId, sim::EventHandle> instance_start_;
  std::map<util::VmId, double> instance_pending_share_;
};

}  // namespace heteroplace::core
