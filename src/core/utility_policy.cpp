#include "core/utility_policy.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace heteroplace::core {

void UtilityDrivenPolicy::set_obs(const obs::ObsContext& ctx) {
  obs_ = ctx;
  if (obs_.metrics != nullptr) {
    eq_iterations_metric_ = &obs_.metrics->histogram(
        "controller_equalizer_iterations", "Bisection iterations per equalize call",
        {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}, obs_.labels);
  }
}

PlacementProblem build_problem_skeleton(const World& world) {
  PlacementProblem problem;
  const auto& cl = world.cluster();

  problem.nodes.reserve(cl.node_count());
  for (const auto& n : cl.nodes()) {
    // Parked and transitioning nodes are invisible to placement: zero
    // capacity would still attract zero-share placements, so they are
    // omitted outright. A waking node rejoins the problem only once its
    // wake latency has elapsed (PowerManager flips it back to active).
    if (!n.placeable()) continue;
    problem.nodes.push_back({n.id(), n.placeable_cpu(), n.capacity().mem, n.klass()});
  }
  // The class table rides along only when the cluster registered explicit
  // classes; a legacy scalar cluster leaves it empty (and every
  // constraint empty), keeping the problem bit-identical to before.
  if (cl.classes().explicit_classes()) {
    problem.classes = cl.classes().classes();
  }

  for (const workload::Job* job : world.active_jobs()) {
    SolverJob sj;
    sj.id = job->id();
    sj.memory = job->spec().memory;
    sj.max_speed = job->spec().max_speed;
    sj.current_node = job->node();
    sj.phase = job->phase();
    sj.movable = job->phase() == workload::JobPhase::kRunning;
    sj.remaining = job->remaining();
    sj.constraint = job->spec().constraint;
    problem.jobs.push_back(sj);
  }

  for (const auto& app : world.apps()) {
    SolverApp sa;
    sa.id = app.id();
    sa.instance_memory = app.spec().instance_memory;
    sa.min_instances = app.spec().min_instances;
    sa.max_instances = app.spec().max_instances;
    sa.max_cpu_per_instance = app.spec().max_cpu_per_instance;
    sa.constraint = app.spec().constraint;
    for (util::VmId vm_id : cl.vm_ids()) {
      const auto& vm = cl.vm(vm_id);
      if (vm.kind != cluster::VmKind::kWebInstance || vm.app != app.id()) continue;
      if (vm.state == cluster::VmState::kRunning) {
        sa.current.push_back({vm.node, /*movable=*/true});
      } else if (vm.state == cluster::VmState::kStarting) {
        sa.current.push_back({vm.node, /*movable=*/false});
      }
    }
    problem.apps.push_back(std::move(sa));
  }
  return problem;
}

PolicyOutput UtilityDrivenPolicy::decide(const World& world, util::Seconds now) {
  PolicyOutput out;
  obs::TraceRecorder* const tr = obs_.trace;
  const double t = now.get();

  // --- 1. consumers: one per active job, one per transactional app --------
  if (tr != nullptr) obs_.trace->begin(obs_.pid, obs::Lane::kController, "consumers", t);
  const auto jobs = world.active_jobs();
  std::vector<JobConsumer> job_consumers;
  job_consumers.reserve(jobs.size());
  // Class-aware delivered-speed caps: on a heterogeneous cluster a job's
  // achievable speed saturates at the delivered MHz of the largest node
  // its constraints admit, so the equalizer prices its curve there. A
  // scalar cluster (no explicit classes) skips this entirely and the
  // consumers take the exact pre-class path.
  const bool hetero = world.cluster().classes().explicit_classes();
  std::vector<std::pair<cluster::ConstraintSet, util::CpuMhz>> cap_cache;
  auto speed_cap_for = [&](const cluster::ConstraintSet& c) {
    for (const auto& [seen, cap] : cap_cache) {
      if (seen == c) return cap;
    }
    util::CpuMhz cap{0.0};
    for (const auto& n : world.cluster().nodes()) {
      if (!n.placeable()) continue;
      if (!c.admits(world.cluster().classes().at(n.klass()))) continue;
      cap = std::max(cap, n.placeable_cpu());
    }
    cap_cache.emplace_back(c, cap);
    return cap;
  };
  for (const workload::Job* job : jobs) {
    if (hetero) {
      job_consumers.emplace_back(*job, *job_model_, now, speed_cap_for(job->spec().constraint));
    } else {
      job_consumers.emplace_back(*job, *job_model_, now);
    }
  }
  std::vector<TxConsumer> tx_consumers;
  tx_consumers.reserve(world.apps().size());
  for (const auto& app : world.apps()) {
    if (lambda_provider_) {
      tx_consumers.emplace_back(app, *tx_model_, lambda_provider_(app, now));
    } else {
      tx_consumers.emplace_back(app, *tx_model_, now);
    }
  }

  std::vector<const UtilityConsumer*> consumers;
  consumers.reserve(job_consumers.size() + tx_consumers.size());
  for (const auto& c : job_consumers) consumers.push_back(&c);
  for (const auto& c : tx_consumers) consumers.push_back(&c);
  if (tr != nullptr) {
    tr->end(obs_.pid, obs::Lane::kController, "consumers", t,
            {{"consumers", static_cast<double>(consumers.size())}});
  }

  // --- 2. equalize hypothetical utility ------------------------------------
  // Parked capacity is not real capacity: the equalizer divides what the
  // solver can actually place (bit-identical to total_capacity when the
  // power subsystem is idle or disabled).
  if (tr != nullptr) tr->begin(obs_.pid, obs::Lane::kController, "equalize", t);
  const util::CpuMhz capacity = world.cluster().placeable_capacity().cpu;
  EqualizeResult eq;
  {
    const obs::ScopedTimer timer(obs_.profiler, obs::Phase::kPolicyEqualize);
    eq = equalize(consumers, capacity, eq_options_, &eq_state_);
  }
  if (tr != nullptr) {
    tr->end(obs_.pid, obs::Lane::kController, "equalize", t,
            {{"u_star", eq.u_star},
             {"iterations", static_cast<double>(eq.iterations)},
             {"contended", eq.contended ? 1.0 : 0.0}});
  }
  if (eq_iterations_metric_ != nullptr) {
    eq_iterations_metric_->observe(static_cast<double>(eq.iterations));
  }

  out.diag.u_star = eq.u_star;
  out.diag.contended = eq.contended;

  // --- 3. assemble the discrete problem ------------------------------------
  if (tr != nullptr) tr->begin(obs_.pid, obs::Lane::kController, "build_problem", t);
  PlacementProblem problem;
  {
    const obs::ScopedTimer timer(obs_.profiler, obs::Phase::kPolicyBuildProblem);
    problem = build_problem_skeleton(world);
  }

  double jobs_demand = 0.0;
  double jobs_target = 0.0;
  double u_sum = 0.0;
  double u_min = 1e300;
  double u_max = -1e300;
  for (std::size_t i = 0; i < job_consumers.size(); ++i) {
    const auto& alloc = eq.allocations[i];
    problem.jobs[i].target = alloc.alloc;
    problem.jobs[i].urgency = alloc.alloc.get();
    jobs_target += alloc.alloc.get();
    jobs_demand += job_consumers[i].demand_max().get();
    u_sum += alloc.utility;
    u_min = std::min(u_min, alloc.utility);
    u_max = std::max(u_max, alloc.utility);
  }
  out.diag.jobs_demand = util::CpuMhz{jobs_demand};
  out.diag.jobs_target = util::CpuMhz{jobs_target};
  out.diag.active_jobs = static_cast<int>(jobs.size());
  out.diag.jobs_avg_hyp_utility = jobs.empty() ? 0.0 : u_sum / static_cast<double>(jobs.size());
  out.diag.jobs_min_hyp_utility = jobs.empty() ? 0.0 : u_min;
  out.diag.jobs_max_hyp_utility = jobs.empty() ? 0.0 : u_max;

  for (std::size_t a = 0; a < tx_consumers.size(); ++a) {
    const auto& alloc = eq.allocations[job_consumers.size() + a];
    problem.apps[a].target = alloc.alloc;
    PolicyDiagnostics::AppDiag diag;
    diag.id = problem.apps[a].id;
    diag.lambda = tx_consumers[a].lambda();
    diag.demand = tx_consumers[a].demand_max();
    diag.target = alloc.alloc;
    out.diag.apps.push_back(diag);
  }

  if (tr != nullptr) {
    tr->end(obs_.pid, obs::Lane::kController, "build_problem", t,
            {{"nodes", static_cast<double>(problem.nodes.size())},
             {"jobs", static_cast<double>(problem.jobs.size())},
             {"apps", static_cast<double>(problem.apps.size())}});
  }

  // --- 4. discrete placement ------------------------------------------------
  if (tr != nullptr) tr->begin(obs_.pid, obs::Lane::kController, "solve", t);
  SolverResult solved;
  {
    const obs::ScopedTimer timer(obs_.profiler, obs::Phase::kPolicySolve);
    solved = solve_placement(problem, solver_config_, obs_.audit, t);
  }
  if (tr != nullptr) {
    tr->end(obs_.pid, obs::Lane::kController, "solve", t,
            {{"jobs_placed", static_cast<double>(solved.stats.jobs_placed)},
             {"jobs_migrated", static_cast<double>(solved.stats.jobs_migrated)},
             {"instances_added", static_cast<double>(solved.stats.instances_added)}});
  }
  out.plan = std::move(solved.plan);
  out.diag.solver = solved.stats;
  return out;
}

}  // namespace heteroplace::core
