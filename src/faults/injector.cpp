#include "faults/injector.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/controller.hpp"
#include "core/world.hpp"
#include "federation/federation.hpp"
#include "migration/manager.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "power/manager.hpp"
#include "sim/engine.hpp"

namespace heteroplace::faults {

void FaultInjector::set_obs(const obs::ObsContext& ctx) {
  obs_ = ctx;
  if (obs_.metrics != nullptr) {
    faults_metric_ =
        &obs_.metrics->counter("faults_injected_total", "Fault windows fired (not recoveries)");
  }
}

FaultInjector::FaultInjector(sim::Engine& engine, std::vector<DomainHooks> hooks,
                             FaultSchedule schedule, FaultOptions options)
    : engine_(engine),
      hooks_(std::move(hooks)),
      schedule_(std::move(schedule)),
      options_(options) {
  if (hooks_.empty()) throw std::invalid_argument("FaultInjector: no domains");
  for (const DomainHooks& h : hooks_) {
    if (h.world == nullptr || h.controller == nullptr) {
      throw std::invalid_argument("FaultInjector: every domain needs a world and a controller");
    }
  }
  if (options_.checkpoint_interval_s < 0.0) {
    throw std::invalid_argument("FaultInjector: checkpoint_interval_s must be nonnegative");
  }
  if (options_.max_concurrent_repairs < 0) {
    throw std::invalid_argument(
        "FaultInjector: max_concurrent_repairs must be nonnegative (0 = unlimited)");
  }
  state_.resize(hooks_.size());
}

void FaultInjector::start() {
  if (started_) throw std::logic_error("FaultInjector::start: already started");
  started_ = true;

  const double t0 = engine_.now().get();
  for (std::size_t d = 0; d < hooks_.size(); ++d) {
    state_[d].total_cpu = hooks_[d].world->cluster().total_capacity().cpu.get();
    state_[d].last_fold = t0;
  }

  const std::vector<FaultWindow> windows = schedule_.finalized();
  for (const FaultWindow& w : windows) {
    if (w.domain >= hooks_.size()) {
      throw std::invalid_argument("FaultInjector: fault targets domain " +
                                  std::to_string(w.domain) + " but only " +
                                  std::to_string(hooks_.size()) + " exist");
    }
    switch (w.kind) {
      case FaultKind::kNodeCrash:
        if (w.node >= hooks_[w.domain].world->cluster().node_count()) {
          throw std::invalid_argument("FaultInjector: crash targets node " +
                                      std::to_string(w.node) + " of domain " +
                                      std::to_string(w.domain) + ", which has only " +
                                      std::to_string(hooks_[w.domain].world->cluster().node_count()) +
                                      " nodes");
        }
        break;
      case FaultKind::kLinkFault:
        if (migration_ == nullptr) {
          throw std::invalid_argument(
              "FaultInjector: link faults need a MigrationManager (set_migration)");
        }
        if (w.to >= hooks_.size() || w.to == w.domain) {
          throw std::invalid_argument("FaultInjector: bad link fault target " +
                                      std::to_string(w.domain) + " -> " + std::to_string(w.to));
        }
        break;
      case FaultKind::kDomainBlackout:
        break;
    }
    if (w.start_s < t0) {
      throw std::invalid_argument("FaultInjector: fault window starts in the past");
    }
    // One-shot events, scheduled in finalized() order — the FIFO tiebreak
    // at equal (time, priority) is therefore deterministic.
    engine_.schedule_at(util::Seconds{w.start_s}, sim::EventPriority::kFault,
                        [this, w] { fire_fault(w); });
    // Crew-limited node repairs are scheduled from crash_node (when the
    // crash actually lands), so a queued repair can slip past end_s.
    // Everything else — and the unlimited default — keeps the upfront
    // recovery schedule, bit for bit.
    const bool crew_gated =
        w.kind == FaultKind::kNodeCrash && options_.max_concurrent_repairs > 0;
    if (!crew_gated) {
      engine_.schedule_at(util::Seconds{w.end_s}, sim::EventPriority::kFault,
                          [this, w] { fire_recovery(w); });
    }
  }

  if (options_.checkpoint_interval_s > 0.0) {
    checkpoint_loop_ = [this] {
      checkpoint_tick();
      engine_.schedule_in(util::Seconds{options_.checkpoint_interval_s},
                          sim::EventPriority::kFault, checkpoint_loop_);
    };
    engine_.schedule_in(util::Seconds{options_.checkpoint_interval_s},
                        sim::EventPriority::kFault, checkpoint_loop_);
  }
}

void FaultInjector::fire_fault(const FaultWindow& w) {
  const obs::ScopedTimer timer(obs_.profiler, obs::Phase::kFaultEvent);
  if (faults_metric_ != nullptr) faults_metric_->inc();
  if (obs_.trace != nullptr) {
    obs_.trace->instant(obs_.pid, obs::Lane::kFaults, to_string(w.kind), engine_.now().get(),
                        {{"domain", static_cast<double>(w.domain)},
                         {"node", static_cast<double>(w.node)},
                         {"severity", w.severity}});
  }
  switch (w.kind) {
    case FaultKind::kNodeCrash: crash_node(w); break;
    case FaultKind::kLinkFault: fail_link(w); break;
    case FaultKind::kDomainBlackout: blackout_domain(w); break;
  }
}

void FaultInjector::fire_recovery(const FaultWindow& w) {
  const obs::ScopedTimer timer(obs_.profiler, obs::Phase::kFaultEvent);
  if (obs_.trace != nullptr) {
    obs_.trace->instant(obs_.pid, obs::Lane::kFaults, "recovery", engine_.now().get(),
                        {{"domain", static_cast<double>(w.domain)},
                         {"node", static_cast<double>(w.node)},
                         {"kind", static_cast<double>(static_cast<int>(w.kind))}});
  }
  switch (w.kind) {
    case FaultKind::kNodeCrash: recover_node(w); break;
    case FaultKind::kLinkFault: restore_link(w); break;
    case FaultKind::kDomainBlackout: restore_domain(w); break;
  }
}

void FaultInjector::checkpoint_tick() {
  const util::Seconds now = engine_.now();
  for (DomainHooks& h : hooks_) {
    for (workload::Job* job : h.world->active_jobs()) {
      // Fold progress up to the checkpoint instant; the stored value is
      // exactly what a crash in the next interval will revert to.
      job->advance_to(now);
      checkpoints_[job->id()] = job->done().get();
    }
  }
}

void FaultInjector::crash_node(const FaultWindow& w) {
  DomainHooks& h = hooks_[w.domain];
  DomainState& st = state_[w.domain];
  core::World& world = *h.world;
  cluster::Cluster& cl = world.cluster();
  const util::NodeId nid = cl.nodes()[w.node].id();
  cluster::Node& node = cl.node(nid);
  if (node.power_state() == cluster::PowerState::kFailed) return;
  const util::Seconds now = engine_.now();

  // Destroy every resident VM. Copy the id list first — teardown mutates
  // the resident set.
  std::vector<util::VmId> residents;
  residents.reserve(node.resident_count());
  for (const auto& [vm_id, r] : node.residents()) residents.push_back(vm_id);
  for (util::VmId vm_id : residents) {
    const cluster::Vm& vm = cl.vm(vm_id);
    if (vm.kind == cluster::VmKind::kJobContainer) {
      const util::JobId jid = vm.job;
      // Drop every pending executor event for the job (start/suspend/
      // resume completions, the completion timer) before touching state.
      h.controller->executor().forget_job(jid);
      cl.set_vm_state(vm_id, cluster::VmState::kStopped);
      cl.unplace_vm(vm_id);
      workload::Job& job = world.job(jid);
      job.set_phase(now, workload::JobPhase::kPending);  // folds progress first
      const double at_crash = job.done().get();
      double restored = at_crash;  // continuous checkpointing: lossless
      if (options_.checkpoint_interval_s > 0.0) {
        auto it = checkpoints_.find(jid);
        restored = it != checkpoints_.end() ? std::min(it->second, at_crash) : 0.0;
      }
      job.restore_progress(util::MhzSeconds{restored}, job.suspend_count(), job.migrate_count(),
                           now);
      job.bind_vm(util::VmId{});
      job.set_node(util::NodeId{});
      st.stats.jobs_lost_progress_s += (at_crash - restored) / job.spec().max_speed.get();
      ++st.stats.jobs_reverted;
    } else {
      h.controller->executor().forget_instance(vm_id);
      cl.set_vm_state(vm_id, cluster::VmState::kStopped);
      cl.unplace_vm(vm_id);
    }
  }

  node.set_power_state(cluster::PowerState::kFailed);
  if (h.power != nullptr) h.power->on_node_failed(nid);

  st.failed_nodes.insert(w.node);
  refold(st, now.get());
  ++st.stats.node_crashes;

  // Shift transactional demand away from the shrunken domain.
  if (fed_ != nullptr) fed_->resplit_demand();

  // Finite repair crew: the recovery was not pre-scheduled, so claim a
  // crew slot (or queue for one) now that the crash actually landed.
  if (options_.max_concurrent_repairs > 0) request_repair(w);
}

void FaultInjector::request_repair(const FaultWindow& w) {
  if (active_repairs_ < options_.max_concurrent_repairs) {
    start_repair(w);
  } else {
    repair_queue_.push_back(w);  // failure order — crews work FIFO
  }
}

void FaultInjector::start_repair(const FaultWindow& w) {
  ++active_repairs_;
  // The window encodes the repair's hands-on duration; queue wait (if
  // any) already elapsed before this pickup.
  engine_.schedule_in(util::Seconds{w.end_s - w.start_s}, sim::EventPriority::kFault, [this, w] {
    fire_recovery(w);
    --active_repairs_;
    if (!repair_queue_.empty()) {
      const FaultWindow next = repair_queue_.front();
      repair_queue_.pop_front();
      start_repair(next);
    }
  });
}

void FaultInjector::recover_node(const FaultWindow& w) {
  DomainHooks& h = hooks_[w.domain];
  DomainState& st = state_[w.domain];
  cluster::Cluster& cl = h.world->cluster();
  const util::NodeId nid = cl.nodes()[w.node].id();
  cluster::Node& node = cl.node(nid);
  if (node.power_state() != cluster::PowerState::kFailed) return;

  node.set_power_state(cluster::PowerState::kActive);
  if (h.power != nullptr) h.power->on_node_recovered(nid);

  st.failed_nodes.erase(w.node);
  refold(st, engine_.now().get());
  ++st.stats.node_recoveries;
  credit_repair(st, w);

  if (fed_ != nullptr) fed_->resplit_demand();
}

void FaultInjector::fail_link(const FaultWindow& w) {
  // severity = fraction of bandwidth lost; the scheduler takes the
  // surviving fraction (0 = hard outage, kills in-flight transfers —
  // MigrationManager turns the kills into retry-wait flights).
  (void)migration_->apply_link_fault(w.domain, w.to, 1.0 - w.severity);
  ++state_[w.domain].stats.link_faults;
}

void FaultInjector::restore_link(const FaultWindow& w) {
  migration_->clear_link_fault(w.domain, w.to);
  DomainState& st = state_[w.domain];
  ++st.stats.link_recoveries;
  credit_repair(st, w);
}

void FaultInjector::blackout_domain(const FaultWindow& w) {
  DomainState& st = state_[w.domain];
  if (st.blackout) return;
  if (fed_ != nullptr) {
    st.saved_weight = fed_->domain(w.domain).weight();
    fed_->set_domain_weight(w.domain, 0.0);
  }
  hooks_[w.domain].controller->set_online(false);

  st.blackout = true;
  refold(st, engine_.now().get());
  ++st.stats.blackouts;
}

void FaultInjector::restore_domain(const FaultWindow& w) {
  DomainState& st = state_[w.domain];
  if (!st.blackout) return;
  // Weight first, so the controller's resync cycle (scheduled by
  // set_online at kController priority, later this same timestamp) sees
  // the restored demand split.
  if (fed_ != nullptr) fed_->set_domain_weight(w.domain, st.saved_weight);
  hooks_[w.domain].controller->set_online(true);

  st.blackout = false;
  refold(st, engine_.now().get());
  ++st.stats.blackout_recoveries;
  credit_repair(st, w);
}

void FaultInjector::refold(DomainState& st, double now_s) {
  st.stats.downtime_s += st.unavail * (now_s - st.last_fold);
  st.last_fold = now_s;
  if (st.blackout) {
    st.unavail = 1.0;
    return;
  }
  double failed_cpu = 0.0;
  // Recomputed from the set (not +=/-= deltas) so the fraction is exact
  // whatever the crash/recovery interleaving.
  const cluster::Cluster& cl = hooks_[&st - state_.data()].world->cluster();
  for (std::size_t n : st.failed_nodes) failed_cpu += cl.nodes()[n].capacity().cpu.get();
  st.unavail = st.total_cpu > 0.0 ? failed_cpu / st.total_cpu : 0.0;
}

void FaultInjector::credit_repair(DomainState& st, const FaultWindow& w) {
  ++st.stats.repairs;
  st.stats.repair_time_s += w.end_s - w.start_s;
}

double FaultInjector::availability(std::size_t d) const { return 1.0 - state_.at(d).unavail; }

double FaultInjector::downtime_s(std::size_t d, util::Seconds now) const {
  const DomainState& st = state_.at(d);
  return st.stats.downtime_s + st.unavail * (now.get() - st.last_fold);
}

std::size_t FaultInjector::failed_node_count(std::size_t d) const {
  return state_.at(d).failed_nodes.size();
}

bool FaultInjector::blacked_out(std::size_t d) const { return state_.at(d).blackout; }

DomainFaultStats FaultInjector::stats(std::size_t d, util::Seconds now) const {
  DomainFaultStats out = state_.at(d).stats;
  out.downtime_s = downtime_s(d, now);
  return out;
}

DomainFaultStats FaultInjector::totals(util::Seconds now) const {
  DomainFaultStats out;
  for (std::size_t d = 0; d < state_.size(); ++d) {
    const DomainFaultStats s = stats(d, now);
    out.node_crashes += s.node_crashes;
    out.node_recoveries += s.node_recoveries;
    out.link_faults += s.link_faults;
    out.link_recoveries += s.link_recoveries;
    out.blackouts += s.blackouts;
    out.blackout_recoveries += s.blackout_recoveries;
    out.jobs_reverted += s.jobs_reverted;
    out.jobs_lost_progress_s += s.jobs_lost_progress_s;
    out.downtime_s += s.downtime_s;
    out.repairs += s.repairs;
    out.repair_time_s += s.repair_time_s;
  }
  return out;
}

double FaultInjector::mttr_s() const {
  long repairs = 0;
  double repair_time = 0.0;
  for (const DomainState& st : state_) {
    repairs += st.stats.repairs;
    repair_time += st.stats.repair_time_s;
  }
  return repairs > 0 ? repair_time / static_cast<double>(repairs) : 0.0;
}

}  // namespace heteroplace::faults
