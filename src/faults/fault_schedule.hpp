#pragma once

// FaultSchedule: the deterministic plan of every failure a run will see.
//
// A schedule is a set of timed fault windows — node crashes, link faults,
// domain blackouts — each with a start (the fault fires) and an end (the
// repair lands). Windows come from two sources: explicit events written
// in the scenario config, and stochastic processes (per-target alternating
// exponential MTTF/MTTR draws on a dedicated seeded substream, so the
// fault pattern is independent of every other random stream in the run
// and reproducible from the fault seed alone).
//
// finalize() merges overlapping same-target windows (max severity, union
// extent) and sorts the result, so the injector never sees a crash for a
// node that is already down. The merged order — (start, kind, target) —
// is the order events are scheduled in, which pins the FIFO tiebreak at
// equal timestamps.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace heteroplace::faults {

enum class FaultKind {
  kNodeCrash,        // node loses power: VMs destroyed, capacity gone
  kLinkFault,        // inter-domain link degraded (severity < 1) or down
  kDomainBlackout,   // whole domain dark: controller offline, weight 0
};

[[nodiscard]] const char* to_string(FaultKind k);

struct FaultWindow {
  FaultKind kind{FaultKind::kNodeCrash};
  /// Node crash / blackout: the target domain. Link fault: source domain.
  std::size_t domain{0};
  /// Node crash: node index within the domain. Unused otherwise.
  std::size_t node{0};
  /// Link fault: destination domain. Unused otherwise.
  std::size_t to{0};
  double start_s{0.0};
  double end_s{0.0};  // repair time; must be > start_s
  /// Link faults: fraction of bandwidth lost, in (0, 1]. 1 = hard outage
  /// (in-flight transfers killed). Ignored for crashes and blackouts.
  double severity{1.0};
};

/// Mean-time-to-failure / mean-time-to-repair pairs for the stochastic
/// processes. A zero MTTF disables that process.
struct FaultRates {
  double node_mttf_s{0.0};
  double node_mttr_s{0.0};
  double link_mttf_s{0.0};
  double link_mttr_s{0.0};
  double domain_mttf_s{0.0};
  double domain_mttr_s{0.0};
};

class FaultSchedule {
 public:
  /// Add one window. Throws std::invalid_argument if end_s <= start_s,
  /// start_s < 0, or severity is outside (0, 1].
  void add(FaultWindow w);

  /// Generate stochastic windows for every enabled process up to
  /// `until_s`: one alternating exp(MTTF)/exp(MTTR) renewal process per
  /// node, per ordered domain pair, and per domain, each on its own
  /// substream of `seed` (so adding a node never shifts another node's
  /// fault pattern).
  void generate(const FaultRates& rates, std::uint64_t seed, double until_s,
                const std::vector<std::size_t>& nodes_per_domain);

  /// Merged windows: overlapping or touching same-target windows coalesce
  /// (union extent, max severity), sorted by (start, kind, target).
  [[nodiscard]] std::vector<FaultWindow> finalized() const;

  [[nodiscard]] const std::vector<FaultWindow>& raw() const { return windows_; }
  [[nodiscard]] bool empty() const { return windows_.empty(); }
  [[nodiscard]] std::size_t size() const { return windows_.size(); }

 private:
  std::vector<FaultWindow> windows_;
};

}  // namespace heteroplace::faults
