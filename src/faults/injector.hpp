#pragma once

// FaultInjector: plays a FaultSchedule against the live system.
//
// Every fault and every repair fires at EventPriority::kFault — after
// same-instant workload arrivals, before any controller, migration, power
// or sampling pass reacts — so the whole control stack observes a
// consistent post-fault world within the same timestamp.
//
// What each fault does:
//   node crash      every VM resident on the node is destroyed. Batch jobs
//                   fall back to their last periodic checkpoint (or to zero
//                   if none was taken) and re-enter kPending; web instances
//                   simply vanish (the controller re-provisions them next
//                   cycle). The node enters PowerState::kFailed: zero
//                   placeable capacity, zero power draw, placement refused
//                   until the timed repair flips it back to kActive. In a
//                   federation the transactional demand split is re-run so
//                   load drains away from the shrunken domain.
//   link fault      the LinkScheduler pool loses bandwidth (severity < 1)
//                   or goes down (severity == 1, killing in-flight
//                   transfers); the MigrationManager owns the retry/backoff
//                   machinery that follows.
//   blackout        the domain's health weight is forced to 0 (router
//                   failover + demand re-split) and its controller is taken
//                   offline — cycles are missed, not queued. Running work
//                   keeps running; only the control plane is dark. On
//                   repair the weight is restored and the controller
//                   resyncs from live cluster state (policy warm-state
//                   dropped, immediate catch-up cycle).
//
// The injector also integrates per-domain availability: unavailability is
// 1 during a blackout, else the failed fraction of the domain's CPU
// capacity. Downtime, MTTR and lost-progress counters feed the fault_*
// metric series and the experiment summary.

#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "faults/fault_schedule.hpp"
#include "obs/context.hpp"
#include "util/ids.hpp"
#include "util/units.hpp"

namespace heteroplace::sim {
class Engine;
}
namespace heteroplace::core {
class World;
class PlacementController;
}
namespace heteroplace::power {
class PowerManager;
}
namespace heteroplace::federation {
class Federation;
}
namespace heteroplace::migration {
class MigrationManager;
}

namespace heteroplace::faults {

/// Per-domain control-stack endpoints the injector drives. `power` is
/// null when the power subsystem is disabled.
struct DomainHooks {
  core::World* world{nullptr};
  core::PlacementController* controller{nullptr};
  power::PowerManager* power{nullptr};
};

struct FaultOptions {
  /// Periodic batch-job checkpoint interval. A crash reverts each lost
  /// job to its most recent checkpoint; 0 means continuous (lossless)
  /// checkpointing — crashed jobs restart pending but keep all progress.
  double checkpoint_interval_s{0.0};
  /// Repair-crew capacity for node crashes. 0 (default) = unlimited:
  /// every repair runs concurrently and each node recovers at its
  /// window's end_s, exactly the pre-crew behavior. A positive limit
  /// models a finite crew: at most this many node repairs run at once;
  /// excess crashes queue in failure order (FIFO) and each queued repair
  /// recovers at crew_pickup + (end_s − start_s). Link faults and
  /// blackouts are never gated — different crews fix them.
  int max_concurrent_repairs{0};
};

/// Cumulative per-domain fault accounting (also aggregated by totals()).
struct DomainFaultStats {
  long node_crashes{0};
  long node_recoveries{0};
  long link_faults{0};
  long link_recoveries{0};
  long blackouts{0};
  long blackout_recoveries{0};
  /// Jobs torn down by node crashes (each re-enters kPending).
  long jobs_reverted{0};
  /// Work destroyed by crashes, in seconds at each job's max speed:
  /// (progress at crash − progress restored) / max_speed, summed.
  double jobs_lost_progress_s{0.0};
  /// Integrated unavailability: ∫ unavail(t) dt (seconds of equivalent
  /// full-domain outage).
  double downtime_s{0.0};
  /// Completed repairs: count and summed repair-window durations (MTTR =
  /// repair_time_s / repairs).
  long repairs{0};
  double repair_time_s{0.0};
};

class FaultInjector {
 public:
  /// One hooks entry per domain (a single-world run passes exactly one).
  /// The schedule must target only domains/nodes that exist; start()
  /// validates and throws std::invalid_argument otherwise.
  FaultInjector(sim::Engine& engine, std::vector<DomainHooks> hooks, FaultSchedule schedule,
                FaultOptions options = {});

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Federated runs: lets crashes/blackouts re-split demand and flip
  /// domain weights. Set before start().
  void set_federation(federation::Federation* fed) { fed_ = fed; }
  /// Required when the schedule contains link faults. Set before start().
  void set_migration(migration::MigrationManager* migration) { migration_ = migration; }

  /// Attach observability: one instant per fault/recovery on the global
  /// pid's faults lane, per-event timing, and an injected-faults counter.
  void set_obs(const obs::ObsContext& ctx);

  /// Schedule every fault window (and the periodic checkpoint tick) on
  /// the engine. Call once, after the worlds are populated.
  void start();

  [[nodiscard]] std::size_t domain_count() const { return hooks_.size(); }

  /// Instantaneous availability of domain `d` in [0, 1].
  [[nodiscard]] double availability(std::size_t d) const;
  /// Integrated downtime of domain `d` up to `now`.
  [[nodiscard]] double downtime_s(std::size_t d, util::Seconds now) const;
  /// Nodes of domain `d` currently failed.
  [[nodiscard]] std::size_t failed_node_count(std::size_t d) const;
  /// Whether domain `d` is currently blacked out.
  [[nodiscard]] bool blacked_out(std::size_t d) const;

  /// Per-domain counters with downtime folded up to `now`.
  [[nodiscard]] DomainFaultStats stats(std::size_t d, util::Seconds now) const;
  /// Sum of stats() across domains.
  [[nodiscard]] DomainFaultStats totals(util::Seconds now) const;
  /// Mean time to repair over every completed repair, 0 if none completed.
  [[nodiscard]] double mttr_s() const;

 private:
  struct DomainState {
    double total_cpu{0.0};            // captured at start()
    std::set<std::size_t> failed_nodes;
    bool blackout{false};
    double saved_weight{1.0};         // weight to restore after a blackout
    double unavail{0.0};              // current instantaneous unavailability
    double last_fold{0.0};            // availability integration frontier
    DomainFaultStats stats;
  };

  void fire_fault(const FaultWindow& w);
  void fire_recovery(const FaultWindow& w);
  void crash_node(const FaultWindow& w);
  void recover_node(const FaultWindow& w);
  void fail_link(const FaultWindow& w);
  void restore_link(const FaultWindow& w);
  void blackout_domain(const FaultWindow& w);
  void restore_domain(const FaultWindow& w);
  void checkpoint_tick();

  /// Crew-limited node repairs (max_concurrent_repairs > 0): claim a
  /// crew slot or join the FIFO queue; a finishing repair hands its slot
  /// to the oldest waiting crash.
  void request_repair(const FaultWindow& w);
  void start_repair(const FaultWindow& w);

  /// Fold the availability integral up to `now_s` and refresh `unavail`.
  void refold(DomainState& st, double now_s);
  void credit_repair(DomainState& st, const FaultWindow& w);

  sim::Engine& engine_;
  std::vector<DomainHooks> hooks_;
  FaultSchedule schedule_;
  FaultOptions options_;
  federation::Federation* fed_{nullptr};
  migration::MigrationManager* migration_{nullptr};
  obs::ObsContext obs_;
  obs::Counter* faults_metric_{nullptr};
  std::vector<DomainState> state_;
  /// Last periodic checkpoint per job (MHz·s of completed work).
  std::map<util::JobId, double> checkpoints_;
  /// Crew-limited repair state (unused when max_concurrent_repairs == 0).
  int active_repairs_{0};
  std::deque<FaultWindow> repair_queue_;
  std::function<void()> checkpoint_loop_;
  bool started_{false};
};

}  // namespace heteroplace::faults
