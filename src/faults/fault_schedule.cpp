#include "faults/fault_schedule.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>

#include "util/rng.hpp"

namespace heteroplace::faults {

namespace {

/// Sort/merge key: windows of the same (kind, target) form one timeline.
[[nodiscard]] std::tuple<int, std::size_t, std::size_t, std::size_t> target_key(
    const FaultWindow& w) {
  return {static_cast<int>(w.kind), w.domain, w.node, w.to};
}

/// Independent substream seed for one stochastic process. Chained
/// splitmix64 mixing of (seed, kind, a, b): each level is fully mixed
/// before the next coordinate is folded in, so neighboring targets get
/// uncorrelated streams.
[[nodiscard]] std::uint64_t substream_seed(std::uint64_t seed, std::uint64_t kind,
                                           std::uint64_t a, std::uint64_t b) {
  std::uint64_t state = seed;
  std::uint64_t h = util::splitmix64_next(state);
  state = h ^ ((kind + 1) * 0x9E3779B97F4A7C15ULL);
  h = util::splitmix64_next(state);
  state = h ^ ((a + 1) * 0xBF58476D1CE4E5B9ULL);
  h = util::splitmix64_next(state);
  state = h ^ ((b + 1) * 0x94D049BB133111EBULL);
  return util::splitmix64_next(state);
}

}  // namespace

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kNodeCrash: return "node-crash";
    case FaultKind::kLinkFault: return "link-down";
    case FaultKind::kDomainBlackout: return "blackout";
  }
  return "?";
}

void FaultSchedule::add(FaultWindow w) {
  if (w.start_s < 0.0) {
    throw std::invalid_argument("FaultSchedule::add: start_s must be nonnegative");
  }
  if (w.end_s <= w.start_s) {
    throw std::invalid_argument("FaultSchedule::add: end_s must exceed start_s");
  }
  if (w.severity <= 0.0 || w.severity > 1.0) {
    throw std::invalid_argument("FaultSchedule::add: severity must be in (0, 1]");
  }
  windows_.push_back(w);
}

void FaultSchedule::generate(const FaultRates& rates, std::uint64_t seed, double until_s,
                             const std::vector<std::size_t>& nodes_per_domain) {
  const bool any = rates.node_mttf_s > 0.0 || rates.link_mttf_s > 0.0 ||
                   rates.domain_mttf_s > 0.0;
  if (!any) return;
  if (until_s <= 0.0) {
    throw std::invalid_argument("FaultSchedule::generate: until_s must be positive");
  }

  // One renewal process per target: alternate exp(MTTF) up-time and
  // exp(MTTR) repair windows until the horizon. Faults that start before
  // the horizon keep their full repair window (the injector simply never
  // reaches recoveries past the run's end).
  const auto renew = [&](FaultKind kind, std::size_t domain, std::size_t node, std::size_t to,
                         double mttf, double mttr) {
    util::Rng rng(substream_seed(seed, static_cast<std::uint64_t>(kind), domain,
                                 kind == FaultKind::kLinkFault ? to : node));
    double t = 0.0;
    while (true) {
      t += rng.exponential_mean(mttf);
      if (t >= until_s) return;
      const double repair = rng.exponential_mean(mttr);
      add({kind, domain, node, to, t, t + repair, 1.0});
      t += repair;
    }
  };

  const std::size_t n_domains = nodes_per_domain.size();
  if (rates.node_mttf_s > 0.0) {
    for (std::size_t d = 0; d < n_domains; ++d) {
      for (std::size_t n = 0; n < nodes_per_domain[d]; ++n) {
        renew(FaultKind::kNodeCrash, d, n, 0, rates.node_mttf_s, rates.node_mttr_s);
      }
    }
  }
  if (rates.link_mttf_s > 0.0) {
    for (std::size_t i = 0; i < n_domains; ++i) {
      for (std::size_t j = 0; j < n_domains; ++j) {
        if (i == j) continue;
        renew(FaultKind::kLinkFault, i, 0, j, rates.link_mttf_s, rates.link_mttr_s);
      }
    }
  }
  if (rates.domain_mttf_s > 0.0) {
    for (std::size_t d = 0; d < n_domains; ++d) {
      renew(FaultKind::kDomainBlackout, d, 0, 0, rates.domain_mttf_s, rates.domain_mttr_s);
    }
  }
}

std::vector<FaultWindow> FaultSchedule::finalized() const {
  std::vector<FaultWindow> out = windows_;
  // Group per target, then chronologically within the target so one pass
  // can coalesce overlaps.
  std::stable_sort(out.begin(), out.end(), [](const FaultWindow& a, const FaultWindow& b) {
    const auto ka = target_key(a);
    const auto kb = target_key(b);
    if (ka != kb) return ka < kb;
    return a.start_s < b.start_s;
  });
  std::vector<FaultWindow> merged;
  for (const FaultWindow& w : out) {
    if (!merged.empty() && target_key(merged.back()) == target_key(w) &&
        w.start_s <= merged.back().end_s) {
      merged.back().end_s = std::max(merged.back().end_s, w.end_s);
      merged.back().severity = std::max(merged.back().severity, w.severity);
      continue;
    }
    merged.push_back(w);
  }
  // Final order: chronological, target as the deterministic tiebreak.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const FaultWindow& a, const FaultWindow& b) {
                     if (a.start_s != b.start_s) return a.start_s < b.start_s;
                     return target_key(a) < target_key(b);
                   });
  return merged;
}

}  // namespace heteroplace::faults
