#include "scenario/federation_experiment.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "federation/federation.hpp"
#include "power/manager.hpp"
#include "scenario/class_factory.hpp"
#include "scenario/fault_factory.hpp"
#include "scenario/metrics.hpp"
#include "scenario/obs_factory.hpp"
#include "scenario/policy_factory.hpp"
#include "scenario/power_factory.hpp"
#include "sim/engine.hpp"
#include "util/config.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "utility/utility_fn.hpp"

namespace heteroplace::scenario {

void validate_migration_modes(const MigrationSpec& spec) {
  try {
    (void)migration::link_mode_from_string(spec.link_mode);
  } catch (const std::invalid_argument& e) {
    throw util::ConfigError(std::string("migration.link_mode: ") + e.what());
  }
  try {
    (void)migration::selection_from_string(spec.selection);
  } catch (const std::invalid_argument& e) {
    throw util::ConfigError(std::string("migration.selection: ") + e.what());
  }
}

FederatedScenario federate(const Scenario& single, int n_domains, const std::string& router) {
  if (n_domains < 1) throw std::invalid_argument("federate: need at least one domain");
  FederatedScenario fs;
  fs.name = n_domains == 1 ? single.name : single.name + "-federated";
  fs.apps = single.apps;
  fs.jobs = single.jobs;
  fs.controller = single.controller;
  fs.power = single.power;
  fs.faults = single.faults;
  fs.router = router;
  fs.horizon_s = single.horizon_s;
  fs.sample_interval_s = single.sample_interval_s;
  fs.seed = single.seed;
  fs.engine_threads = single.engine_threads;
  fs.obs = single.obs;

  const int base = single.cluster.nodes / n_domains;
  const int remainder = single.cluster.nodes % n_domains;
  for (int i = 0; i < n_domains; ++i) {
    DomainSpec d;
    d.name = "dc" + std::to_string(i);
    d.cluster = single.cluster;
    if (single.cluster.heterogeneous()) {
      // Split each class pool evenly, remainder to the earliest domains
      // (the same rule the scalar node split uses).
      for (ClassPoolSpec& pool : d.cluster.classes) {
        const int pool_base = pool.count / n_domains;
        const int pool_rem = pool.count % n_domains;
        pool.count = pool_base + (i < pool_rem ? 1 : 0);
      }
      if (d.cluster.total_nodes() < 1) {
        throw std::invalid_argument("federate: more domains than nodes");
      }
    } else {
      d.cluster.nodes = base + (i < remainder ? 1 : 0);
      if (d.cluster.nodes < 1) throw std::invalid_argument("federate: more domains than nodes");
    }
    fs.domains.push_back(std::move(d));
  }
  return fs;
}

FederatedResult run_federated_experiment(const FederatedScenario& fs,
                                         const ExperimentOptions& options) {
  if (fs.domains.empty()) {
    throw std::invalid_argument("run_federated_experiment: no domains");
  }
  sim::Engine engine;
  engine.set_threads(static_cast<unsigned>(effective_engine_threads(fs.engine_threads)));
  // Declared before the federation: `fed` holds a probe into this vector
  // (set_power_probe below), so the vector must strictly outlive it.
  std::vector<std::unique_ptr<power::PowerManager>> power_mgrs;
  // Declared before the federation for the same lifetime reason: domain
  // controllers hold ObsContext pointers into this bundle.
  Observability obs = make_observability(fs.obs, fs.slos);
  if (obs.trace) {
    engine.set_observer(obs.trace.get());
    obs.trace->set_process_name(0, "global");
  }
  if (obs.profiler) engine.enable_timing();
  federation::Federation fed(engine, federation::make_router(fs.router));
  if (obs.any()) fed.set_obs(obs.context(0));

  // --- models (shared across domains) ----------------------------------------
  auto job_model = std::make_shared<utility::JobUtilityModel>(
      utility::make_utility(fs.jobs.utility_shape));
  auto tx_model = std::make_shared<utility::TxUtilityModel>();

  // --- domains ----------------------------------------------------------------
  core::ControllerConfig ctrl_cfg;
  ctrl_cfg.cycle = util::Seconds{fs.controller.cycle_s};
  for (std::size_t i = 0; i < fs.domains.size(); ++i) {
    const DomainSpec& spec = fs.domains[i];
    // Domain 0 reuses the single-cluster noise seed so a 1-domain
    // federation reproduces run_experiment's λ-observation stream; later
    // domains get independent streams.
    const std::uint64_t noise_seed =
        (fs.seed ^ 0xD1CEBA5EULL) + 0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(i);
    core::ControllerConfig cfg = ctrl_cfg;
    const bool explicit_phase = spec.first_cycle_at_s >= 0.0;
    if (explicit_phase) cfg.first_cycle_at = util::Seconds{spec.first_cycle_at_s};
    federation::Domain& d = fed.add_domain(
        spec.name,
        make_experiment_policy(options, fs.controller.solver, job_model, tx_model, noise_seed),
        fs.controller.latencies, cfg, /*auto_stagger=*/!explicit_phase);
    populate_cluster(d.world().cluster(), spec.cluster);
    if (obs.any()) {
      const auto pid = static_cast<std::uint32_t>(i + 1);
      if (obs.trace) obs.trace->set_process_name(pid, spec.name);
      d.controller().set_obs(obs.context(pid, spec.name));
    }
  }

  // --- apps (router splits demand across domains) -----------------------------
  for (const auto& app : fs.apps) {
    fed.add_app(app.spec, app.trace);
  }

  // --- job stream (one global stream, routed at arrival time) -----------------
  util::Rng rng(fs.seed);
  std::vector<workload::PhasedPoissonArrivals::Phase> phases;
  phases.push_back({util::Seconds{fs.jobs.mean_interarrival_s}, fs.jobs.count});
  if (fs.jobs.tail_count > 0 && fs.jobs.tail_mean_interarrival_s > 0.0) {
    phases.push_back({util::Seconds{fs.jobs.tail_mean_interarrival_s}, fs.jobs.tail_count});
  }
  workload::PhasedPoissonArrivals arrivals{util::Seconds{0.0}, std::move(phases)};
  const auto job_specs = workload::generate_jobs(arrivals, fs.jobs.tmpl, rng);

  // --- per-domain metrics ------------------------------------------------------
  std::vector<MetricsRecorder> recorders;
  recorders.reserve(fed.domain_count());
  std::vector<long> violations(fed.domain_count(), 0);
  // Admitting-domain SLA ledgers, indexed by domain. The arrival lambdas
  // credit on_admit to whichever domain the router picks.
  std::vector<obs::SlaLedger*> domain_ledgers(fed.domain_count(), nullptr);
  for (std::size_t i = 0; i < fed.domain_count(); ++i) {
    recorders.emplace_back(fed.domain(i).world(), job_model, tx_model);
    recorders.back().summary().scenario = fs.name + "/" + fed.domain(i).name();
    recorders.back().summary().policy = to_string(options.policy);
    if (obs.sla_on) {
      domain_ledgers[i] =
          obs.context(static_cast<std::uint32_t>(i + 1), fed.domain(i).name()).sla;
      recorders.back().set_sla(domain_ledgers[i]);
    }
    // Domain-level hook (not the raw executor slot, which the federation
    // owns for its load aggregates).
    fed.domain(i).set_completion_callback(
        [&recorders, i](const workload::Job& job) { recorders[i].on_job_completed(job); });
  }
  fed.set_cycle_observer([&](const federation::Domain& d, const core::CycleReport& report) {
    recorders[d.index()].on_cycle(report);
    if (options.validate_invariants) {
      const auto issues = d.world().cluster().validate();
      violations[d.index()] += static_cast<long>(issues.size());
      for (const auto& msg : issues) util::log_warn() << "invariant[" << d.name() << "]: " << msg;
    }
  });

  // --- schedule arrivals, weight events, sampling, control loops --------------
  for (const auto& spec : job_specs) {
    engine.schedule_at(spec.submit_time, sim::EventPriority::kWorkloadArrival,
                       [&fed, &domain_ledgers, spec] {
                         const federation::Domain& d = fed.submit_job(spec);
                         obs::SlaLedger* const sla = domain_ledgers[d.index()];
                         if (sla != nullptr) sla->on_admit(spec.id, spec.submit_time.get());
                       });
  }
  for (const auto& ev : fs.weight_events) {
    if (ev.domain >= fed.domain_count()) {
      throw std::invalid_argument("run_federated_experiment: weight event domain out of range");
    }
    engine.schedule_at(util::Seconds{ev.at_s}, sim::EventPriority::kWorkloadArrival,
                       [&fed, ev] { fed.set_domain_weight(ev.domain, ev.weight); });
  }

  // --- migration subsystem (optional) -----------------------------------------
  std::optional<migration::MigrationManager> migration_mgr;
  if (fs.migration.enabled) {
    validate_migration_modes(fs.migration);
    const bool uplink_mode =
        migration::link_mode_from_string(fs.migration.link_mode) == migration::LinkMode::kUplink;
    migration::TransferModel transfer{fs.migration.default_bandwidth_mb_per_s,
                                      fs.migration.default_latency_s};
    for (const LinkSpec& link : fs.migration.links) {
      if (link.from >= fed.domain_count() || link.to >= fed.domain_count()) {
        throw std::invalid_argument("run_federated_experiment: link domain out of range");
      }
      // -1.0 is the documented "keep the model default" sentinel; any
      // other out-of-range value is a mistake and must not pass silently
      // — and neither may a setting the selected link mode never reads.
      if (link.bandwidth_mb_per_s > 0.0) {
        if (uplink_mode) {
          throw std::invalid_argument(
              "run_federated_experiment: per-pair link bandwidth has no effect in uplink "
              "mode; use MigrationSpec::uplinks (per-pair latency still applies)");
        }
        transfer.set_link_bandwidth(link.from, link.to, link.bandwidth_mb_per_s);
      } else if (link.bandwidth_mb_per_s != -1.0) {
        throw std::invalid_argument("run_federated_experiment: link bandwidth must be positive");
      }
      if (link.latency_s >= 0.0) {
        transfer.set_link_latency(link.from, link.to, link.latency_s);
      } else if (link.latency_s != -1.0) {
        throw std::invalid_argument("run_federated_experiment: link latency must be nonnegative");
      }
    }
    if (!uplink_mode && !fs.migration.uplinks.empty()) {
      throw std::invalid_argument(
          "run_federated_experiment: uplink overrides have no effect with link_mode = p2p; "
          "set migration.link_mode = uplink");
    }
    for (const UplinkSpec& uplink : fs.migration.uplinks) {
      if (uplink.domain >= fed.domain_count()) {
        throw std::invalid_argument("run_federated_experiment: uplink domain out of range");
      }
      transfer.set_uplink_bandwidth(uplink.domain, uplink.bandwidth_mb_per_s);
    }
    migration::PolicyConfig pol_cfg;
    pol_cfg.high_watermark = fs.migration.high_watermark;
    pol_cfg.low_watermark = fs.migration.low_watermark;
    pol_cfg.selection = migration::selection_from_string(fs.migration.selection);
    if (fs.migration.max_queued_transfers < 0) {
      throw std::invalid_argument(
          "run_federated_experiment: migration.max_queued_transfers must be >= 0");
    }
    pol_cfg.max_queued_transfers =
        static_cast<std::size_t>(fs.migration.max_queued_transfers);
    migration::MigrationOptions mig_opts;
    mig_opts.check_interval = util::Seconds{fs.migration.check_interval_s};
    mig_opts.max_moves_per_tick = fs.migration.max_moves_per_tick;
    mig_opts.link_mode = migration::link_mode_from_string(fs.migration.link_mode);
    mig_opts.max_transfer_retries = fs.migration.max_transfer_retries;
    mig_opts.retry_backoff_s = fs.migration.retry_backoff_s;
    mig_opts.retry_backoff_max_s = fs.migration.retry_backoff_max_s;
    mig_opts.rescore_queued_transfers = fs.migration.rescore_queued_transfers;
    mig_opts.align_attach = fs.migration.align_attach;
    migration_mgr.emplace(fed, std::move(transfer),
                          migration::make_migration_policy(fs.migration.policy, pol_cfg),
                          mig_opts);
    if (obs.any()) migration_mgr->set_obs(obs.context(0));
  }

  // --- power subsystem (optional) -----------------------------------------------
  // One manager per domain: each meters and consolidates its own cluster,
  // under the federation cap or its DomainSpec override. Disabled runs
  // construct nothing and stay bit-identical to the pre-power runner.
  if (fs.power.enabled) {
    for (std::size_t i = 0; i < fed.domain_count(); ++i) {
      power_mgrs.push_back(make_power_manager(engine, fed.domain(i).world(), fs.power,
                                              fs.controller.cycle_s,
                                              fs.domains[i].power_cap_w,
                                              static_cast<sim::ShardId>(i)));
      if (obs.any()) {
        power_mgrs.back()->set_obs(
            obs.context(static_cast<std::uint32_t>(i + 1), fed.domain(i).name()));
      }
    }
    // Surface live per-domain draw in Federation::status so routers (and
    // future energy-aware policies) can observe it.
    fed.set_power_probe(
        [&power_mgrs](std::size_t domain) { return power_mgrs[domain]->current_draw_w(); });
    // Share each controller's same-timestamp post-apply PlacementProblem
    // skeleton with its domain's power tick — but only when migration is
    // off: kMigration events land between kController and kPower at one
    // timestamp and can mutate worlds, which would make the cached
    // skeleton stale.
    if (!fs.migration.enabled) {
      for (std::size_t i = 0; i < fed.domain_count(); ++i) {
        core::PlacementController& ctrl = fed.domain(i).controller();
        ctrl.enable_problem_cache();
        power_mgrs[i]->set_problem_provider(
            [&ctrl](util::Seconds now) { return ctrl.cached_problem(now); });
      }
    }
  }

  const double horizon = options.horizon_override_s > 0.0 ? options.horizon_override_s
                                                          : fs.horizon_s;

  // --- fault injection (optional) ---------------------------------------------
  // A faults-disabled run creates nothing here and stays bit-identical to
  // the pre-fault runner (pinned by tests/fault_test.cpp).
  std::unique_ptr<faults::FaultInjector> injector;
  if (fs.faults.enabled) {
    std::vector<std::size_t> nodes_per_domain;
    for (const DomainSpec& d : fs.domains) {
      nodes_per_domain.push_back(static_cast<std::size_t>(d.cluster.total_nodes()));
    }
    validate_fault_spec(fs.faults, nodes_per_domain, /*federated=*/true, fs.migration.enabled,
                        horizon);
    faults::FaultOptions fault_opts;
    fault_opts.checkpoint_interval_s = fs.faults.checkpoint_interval_s;
    fault_opts.max_concurrent_repairs = fs.faults.max_concurrent_repairs;
    std::vector<faults::DomainHooks> hooks;
    for (std::size_t i = 0; i < fed.domain_count(); ++i) {
      hooks.push_back({&fed.domain(i).world(), &fed.domain(i).controller(),
                       power_mgrs.empty() ? nullptr : power_mgrs[i].get()});
    }
    injector = std::make_unique<faults::FaultInjector>(
        engine, std::move(hooks),
        build_fault_schedule(fs.faults, fs.seed, horizon, nodes_per_domain), fault_opts);
    injector->set_federation(&fed);
    if (migration_mgr) injector->set_migration(&*migration_mgr);
    if (obs.any()) injector->set_obs(obs.context(0));
  }

  // Per-domain and federation-aggregated samples share one
  // AllocationSample per domain per tick: the fed_* series are the sum
  // of exactly the values the per-domain recorders record, bit for bit
  // (asserted by the integration tests).
  FederatedResult out;
  auto sample_all = [&](util::Seconds now) {
    const double t = now.get();
    double tx_alloc = 0.0;
    double lr_alloc = 0.0;
    int running = 0;
    int active = 0;
    double completed = 0.0;
    for (std::size_t i = 0; i < fed.domain_count(); ++i) {
      const core::World& world = fed.domain(i).world();
      const AllocationSample sample = sample_allocations(world);
      recorders[i].sample(now, sample);
      tx_alloc += sample.tx_alloc_mhz;
      lr_alloc += sample.lr_alloc_mhz;
      running += sample.jobs_running;
      active += sample.active_jobs;
      completed += static_cast<double>(world.completed_count());
      out.series.add("weight_" + fed.domain(i).name(), t, fed.domain(i).weight());
    }
    out.series.add("fed_tx_alloc_mhz", t, tx_alloc);
    out.series.add("fed_lr_alloc_mhz", t, lr_alloc);
    out.series.add("fed_jobs_running", t, running);
    out.series.add("fed_active_jobs", t, active);
    out.series.add("fed_jobs_completed", t, completed);
    if (migration_mgr) {
      const migration::MigrationStats& ms = migration_mgr->stats();
      out.series.add("mig_started", t, static_cast<double>(ms.started));
      out.series.add("mig_completed", t, static_cast<double>(ms.completed));
      out.series.add("mig_cancelled", t, static_cast<double>(ms.cancelled));
      out.series.add("mig_in_flight", t, static_cast<double>(ms.in_flight));
      out.series.add("mig_bytes_mb", t, ms.bytes_moved_mb);
      out.series.add("mig_transfer_s", t, ms.transfer_seconds);
      out.series.add("mig_work_lost_mhz_s", t, ms.work_lost_mhz_s);
      const migration::LinkScheduler& links = migration_mgr->link_scheduler();
      out.series.add("mig_queue_depth", t, static_cast<double>(links.queued_transfers()));
      out.series.add("mig_queue_wait_s", t, ms.queue_wait_seconds);
      out.series.add("mig_active_transfers", t, static_cast<double>(links.active_transfers()));
      out.series.add("mig_transfer_retries", t, static_cast<double>(ms.transfer_retries));
      out.series.add("mig_transfer_failbacks", t, static_cast<double>(ms.transfer_failbacks));
      out.series.add("mig_rescored", t, static_cast<double>(ms.transfers_rescored));
    }
    if (injector) {
      double avail_sum = 0.0;
      double failed_nodes = 0.0;
      double lost_s = 0.0;
      double downtime = 0.0;
      for (std::size_t i = 0; i < fed.domain_count(); ++i) {
        const std::string& name = fed.domain(i).name();
        const faults::DomainFaultStats ds = injector->stats(i, now);
        const double avail = injector->availability(i);
        out.series.add("availability_" + name, t, avail);
        out.series.add("fault_failed_nodes_" + name, t,
                       static_cast<double>(injector->failed_node_count(i)));
        out.series.add("jobs_lost_progress_s_" + name, t, ds.jobs_lost_progress_s);
        avail_sum += avail;
        failed_nodes += static_cast<double>(injector->failed_node_count(i));
        lost_s += ds.jobs_lost_progress_s;
        downtime += ds.downtime_s;
      }
      out.series.add("fed_availability", t,
                     avail_sum / static_cast<double>(fed.domain_count()));
      out.series.add("fed_fault_failed_nodes", t, failed_nodes);
      out.series.add("fed_jobs_lost_progress_s", t, lost_s);
      out.series.add("fed_fault_downtime_s", t, downtime);
    }
    if (!power_mgrs.empty()) {
      double draw = 0.0;
      double energy = 0.0;
      double parked = 0.0;
      for (std::size_t i = 0; i < fed.domain_count(); ++i) {
        const double d_draw = power_mgrs[i]->current_draw_w();
        const double d_energy = power_mgrs[i]->energy_wh(now);
        out.series.add("power_w_" + fed.domain(i).name(), t, d_draw);
        out.series.add("energy_wh_" + fed.domain(i).name(), t, d_energy);
        draw += d_draw;
        energy += d_energy;
        parked += static_cast<double>(power_mgrs[i]->parked_count());
      }
      out.series.add("fed_power_w", t, draw);
      out.series.add("fed_energy_wh", t, energy);
      out.series.add("fed_power_parked_nodes", t, parked);
    }
  };

  const util::Seconds sample_dt{fs.sample_interval_s};
  std::function<void()> sample_tick = [&] {
    const obs::ScopedTimer sample_timer(obs.profiler.get(), obs::Phase::kSampling);
    sample_all(engine.now());
    // Serial tick; ledgers visited in fixed domain order, so alert
    // open/close instants are byte-identical across engine thread counts.
    if (obs.alerts) obs.alerts->evaluate(engine.now().get(), obs.ledger_list());
    engine.schedule_in(sample_dt, sim::EventPriority::kSampling, sample_tick);
  };
  engine.schedule_in(sample_dt, sim::EventPriority::kSampling, sample_tick);
  fed.start();
  if (migration_mgr) migration_mgr->start();
  for (auto& mgr : power_mgrs) mgr->start();
  if (injector) injector->start();

  // --- run ---------------------------------------------------------------------
  const std::size_t total_jobs = job_specs.size();
  if (horizon > 0.0) {
    engine.run_until(util::Seconds{horizon});
  } else {
    // Run until every job completes (chunked so the perpetual control
    // loops do not spin forever), capped for safety.
    const double chunk = std::max(10.0 * fs.controller.cycle_s, 6000.0);
    while (fed.total_completed() < total_jobs && engine.now().get() < options.max_sim_time_s) {
      engine.run_until(engine.now() + util::Seconds{chunk});
    }
  }

  // --- finalize -----------------------------------------------------------------
  sample_all(engine.now());  // final sample, mirroring run_experiment
  if (obs.alerts) obs.alerts->evaluate(engine.now().get(), obs.ledger_list());
  const auto routed = fed.jobs_per_domain();
  std::vector<ExperimentSummary> summaries;
  for (std::size_t i = 0; i < fed.domain_count(); ++i) {
    DomainResult dr;
    dr.name = fed.domain(i).name();
    dr.jobs_routed = routed[i];
    dr.result.summary = recorders[i].summary();
    dr.result.summary.jobs_submitted =
        static_cast<long>(fed.domain(i).world().submitted_count());
    dr.result.summary.sim_end_time_s = engine.now().get();
    dr.result.summary.invariant_violations = violations[i];
    if (dr.result.summary.jobs_completed > 0) {
      dr.result.summary.goal_met_fraction /=
          static_cast<double>(dr.result.summary.jobs_completed);
    }
    if (injector) {
      const util::Seconds end = engine.now();
      const faults::DomainFaultStats ds = injector->stats(i, end);
      ExperimentSummary& s = dr.result.summary;
      s.fault_node_crashes = ds.node_crashes;
      s.fault_link_faults = ds.link_faults;
      s.fault_blackouts = ds.blackouts;
      s.jobs_reverted = ds.jobs_reverted;
      s.jobs_lost_progress_s = ds.jobs_lost_progress_s;
      s.fault_downtime_s = ds.downtime_s;
      s.availability = end.get() > 0.0 ? 1.0 - ds.downtime_s / end.get() : 1.0;
    }
    dr.result.series = std::move(recorders[i].series());
    summaries.push_back(dr.result.summary);
    out.domains.push_back(std::move(dr));
  }
  out.summary = merge_summaries(summaries);
  out.summary.scenario = fs.name;
  if (migration_mgr) out.migration = migration_mgr->stats();
  if (injector) {
    const util::Seconds end = engine.now();
    out.faults = injector->totals(end);
    out.fault_mttr_s = injector->mttr_s();
    ExperimentSummary& s = out.summary;
    s.fault_node_crashes = out.faults.node_crashes;
    s.fault_link_faults = out.faults.link_faults;
    s.fault_blackouts = out.faults.blackouts;
    s.jobs_reverted = out.faults.jobs_reverted;
    s.jobs_lost_progress_s = out.faults.jobs_lost_progress_s;
    s.fault_downtime_s = out.faults.downtime_s;
    s.fault_mttr_s = out.fault_mttr_s;
    const double span = end.get() * static_cast<double>(fed.domain_count());
    s.availability = span > 0.0 ? 1.0 - out.faults.downtime_s / span : 1.0;
  }
  out.engine.events_executed = engine.events_executed();
  out.engine.parallel_batches = engine.parallel_batches();
  out.engine.batched_events = engine.batched_events();

  // --- observability export -----------------------------------------------
  if (obs.profiler) {
    const sim::EngineTiming& timing = engine.timing();
    out.engine.serial_spine_ns = timing.serial_ns;
    out.engine.batch_exec_ns = timing.batch_exec_ns;
    out.engine.merge_barrier_ns = timing.merge_barrier_ns;
    out.profile = obs.profiler->report();
    append_engine_profile(out.profile, timing, engine.parallel_batches());
  }
  if (obs.metrics) {
    obs.metrics->gauge("run_sim_end_seconds", "Simulated end time of the run")
        .set(engine.now().get());
    obs.metrics->gauge("run_jobs_submitted", "Jobs submitted over the run")
        .set(static_cast<double>(fed.total_submitted()));
    obs.metrics->gauge("run_jobs_completed", "Jobs completed over the run")
        .set(static_cast<double>(fed.total_completed()));
    obs.metrics->gauge("engine_events_total", "Events the engine dispatched")
        .set(static_cast<double>(engine.events_executed()));
    obs.metrics
        ->gauge("engine_parallel_batches_total", "Parallel batches dispatched to the pool")
        .set(static_cast<double>(engine.parallel_batches()));
  }
  export_observability(fs.obs, obs);
  return out;
}

}  // namespace heteroplace::scenario
