#include "scenario/fault_factory.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <tuple>

#include "util/config.hpp"

namespace heteroplace::scenario {

namespace {

[[nodiscard]] faults::FaultKind kind_from_string(const std::string& name, const std::string& key) {
  if (name == "node-crash") return faults::FaultKind::kNodeCrash;
  if (name == "link-down") return faults::FaultKind::kLinkFault;
  if (name == "blackout") return faults::FaultKind::kDomainBlackout;
  throw util::ConfigError(key + ": unknown fault kind '" + name +
                          "' (expected node-crash|link-down|blackout)");
}

void check_rate_pair(const std::string& prefix, double mttf, double mttr) {
  if (mttf < 0.0) throw util::ConfigError("fault." + prefix + "_mttf_s: must be nonnegative");
  if (mttr < 0.0) throw util::ConfigError("fault." + prefix + "_mttr_s: must be nonnegative");
  if ((mttf > 0.0) != (mttr > 0.0)) {
    throw util::ConfigError("fault." + prefix + "_mttf_s and fault." + prefix +
                            "_mttr_s: set both (or neither)");
  }
}

}  // namespace

void validate_fault_spec(const FaultSpec& spec, const std::vector<std::size_t>& nodes_per_domain,
                         bool federated, bool migration_enabled, double horizon_s) {
  if (!spec.enabled) return;
  if (spec.checkpoint_interval_s < 0.0) {
    throw util::ConfigError("fault.checkpoint_interval_s: must be nonnegative (0 = continuous)");
  }
  if (spec.max_concurrent_repairs < 0) {
    throw util::ConfigError("fault.max_concurrent_repairs: must be nonnegative (0 = unlimited)");
  }
  if (spec.until_s < 0.0) throw util::ConfigError("fault.until_s: must be nonnegative");
  check_rate_pair("node", spec.node_mttf_s, spec.node_mttr_s);
  check_rate_pair("link", spec.link_mttf_s, spec.link_mttr_s);
  check_rate_pair("domain", spec.domain_mttf_s, spec.domain_mttr_s);

  const bool stochastic =
      spec.node_mttf_s > 0.0 || spec.link_mttf_s > 0.0 || spec.domain_mttf_s > 0.0;
  const double until = spec.until_s > 0.0 ? spec.until_s : horizon_s;
  if (stochastic && until <= 0.0) {
    throw util::ConfigError(
        "fault.until_s: stochastic fault processes need a positive generation horizon "
        "(set fault.until_s, or run with a finite horizon_s)");
  }

  bool any_link = spec.link_mttf_s > 0.0;
  bool any_domain = spec.domain_mttf_s > 0.0;
  const std::size_t n_domains = nodes_per_domain.size();

  // (kind, domain, node, to) → explicit [start, end) windows, for the
  // overlap check below.
  std::map<std::tuple<int, std::size_t, std::size_t, std::size_t>,
           std::vector<std::pair<double, double>>>
      explicit_windows;

  for (std::size_t i = 0; i < spec.events.size(); ++i) {
    const FaultEventSpec& e = spec.events[i];
    const std::string p = "fault.event." + std::to_string(i) + ".";
    const faults::FaultKind kind = kind_from_string(e.kind, p + "kind");
    if (e.at_s < 0.0) throw util::ConfigError(p + "at_s: must be set and nonnegative");
    if (e.duration_s <= 0.0) throw util::ConfigError(p + "duration_s: must be set and positive");
    if (e.severity <= 0.0 || e.severity > 1.0) {
      throw util::ConfigError(p + "severity: must be in (0, 1]");
    }
    if (e.severity != 1.0 && kind != faults::FaultKind::kLinkFault) {
      throw util::ConfigError(p + "severity: partial severity only applies to link-down faults");
    }
    if (e.domain >= n_domains) {
      throw util::ConfigError(p + (kind == faults::FaultKind::kLinkFault ? "from" : "domain") +
                              ": domain " + std::to_string(e.domain) + " out of range (have " +
                              std::to_string(n_domains) + ")");
    }
    std::size_t node = 0;
    std::size_t to = 0;
    switch (kind) {
      case faults::FaultKind::kNodeCrash:
        if (e.node >= nodes_per_domain[e.domain]) {
          throw util::ConfigError(p + "node: node " + std::to_string(e.node) + " out of range "
                                  "(domain " + std::to_string(e.domain) + " has " +
                                  std::to_string(nodes_per_domain[e.domain]) + " nodes)");
        }
        node = e.node;
        break;
      case faults::FaultKind::kLinkFault:
        if (e.to >= n_domains) {
          throw util::ConfigError(p + "to: domain " + std::to_string(e.to) + " out of range");
        }
        if (e.to == e.domain) throw util::ConfigError(p + "to: link must cross domains");
        to = e.to;
        any_link = true;
        break;
      case faults::FaultKind::kDomainBlackout:
        any_domain = true;
        break;
    }
    // Overlapping explicit windows on one target are almost always a
    // config mistake (the second fault would hit an already-failed
    // target); reject instead of silently coalescing.
    auto& windows =
        explicit_windows[{static_cast<int>(kind), e.domain, node, to}];
    const double start = e.at_s;
    const double end = e.at_s + e.duration_s;
    for (const auto& [s, t] : windows) {
      if (start < t && s < end) {
        throw util::ConfigError(p + "at_s: window [" + std::to_string(start) + ", " +
                                std::to_string(end) + ") overlaps another explicit " + e.kind +
                                " window on the same target");
      }
    }
    windows.emplace_back(start, end);
  }

  if (any_link && !federated) {
    throw util::ConfigError("fault.link_*: link faults need a federated run (domains >= 2)");
  }
  if (any_link && !migration_enabled) {
    throw util::ConfigError(
        "fault.link_*: link faults need migration.enabled = true (links belong to the "
        "migration subsystem)");
  }
  if (any_domain && !federated) {
    throw util::ConfigError("fault.domain_*: domain blackouts need a federated run");
  }
}

faults::FaultSchedule build_fault_schedule(const FaultSpec& spec, std::uint64_t scenario_seed,
                                           double horizon_s,
                                           const std::vector<std::size_t>& nodes_per_domain) {
  faults::FaultSchedule schedule;
  if (!spec.enabled) return schedule;
  for (const FaultEventSpec& e : spec.events) {
    faults::FaultWindow w;
    w.kind = kind_from_string(e.kind, "fault.event.kind");
    w.domain = e.domain;
    w.node = e.node;
    w.to = e.to;
    w.start_s = e.at_s;
    w.end_s = e.at_s + e.duration_s;
    w.severity = e.severity;
    schedule.add(w);
  }
  faults::FaultRates rates;
  rates.node_mttf_s = spec.node_mttf_s;
  rates.node_mttr_s = spec.node_mttr_s;
  rates.link_mttf_s = spec.link_mttf_s;
  rates.link_mttr_s = spec.link_mttr_s;
  rates.domain_mttf_s = spec.domain_mttf_s;
  rates.domain_mttr_s = spec.domain_mttr_s;
  // The fault seed is decorrelated from the workload streams (which use
  // Rng(seed) directly) even when it defaults to the scenario seed: the
  // schedule generator mixes it through its own splitmix chains.
  const std::uint64_t seed =
      spec.seed != 0 ? spec.seed : scenario_seed ^ 0xFA17FA17FA17FA17ULL;
  const double until = spec.until_s > 0.0 ? spec.until_s : horizon_s;
  schedule.generate(rates, seed, until, nodes_per_domain);
  return schedule;
}

}  // namespace heteroplace::scenario
