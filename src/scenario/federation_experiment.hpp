#pragma once

// Federated (multi-datacenter) experiments: N controller domains on one
// engine, one shared workload stream routed across them.
//
// The federated runner mirrors run_experiment exactly — same event
// ordering, same seeds — so a 1-domain FederatedScenario reproduces the
// single-World trajectories bit for bit (pinned by
// tests/federation_test.cpp).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "faults/injector.hpp"
#include "migration/manager.hpp"
#include "obs/profile.hpp"
#include "scenario/experiment.hpp"
#include "scenario/scenario.hpp"

namespace heteroplace::scenario {

/// One controller domain's shard of the federation.
struct DomainSpec {
  std::string name{"domain"};
  ClusterSpec cluster;
  /// First control evaluation for this domain's controller; < 0 means
  /// auto-stagger (index × cycle / domain_count, domain 0 at phase 0).
  double first_cycle_at_s{-1.0};
  /// Per-domain power-cap override in watts; < 0 inherits the federation
  /// spec's power.cap_w (0 there = uncapped).
  double power_cap_w{-1.0};
};

/// Scheduled health change: at `at_s`, set the domain's router weight
/// (brownout < 1, drain = 0, recovery = 1). The router re-splits every
/// app's demand under the new weights immediately.
struct WeightEvent {
  std::size_t domain{0};
  double at_s{0.0};
  double weight{1.0};
};

/// One directed inter-domain link override for the TransferModel. A
/// component left at exactly -1.0 (the "unset" default) keeps the model
/// default; any other negative value is rejected loudly by the runner.
/// Bandwidths are MB/s.
struct LinkSpec {
  std::size_t from{0};
  std::size_t to{0};
  double bandwidth_mb_per_s{-1.0};
  double latency_s{-1.0};
};

/// Shared-uplink capacity override for one domain (uplink link mode).
struct UplinkSpec {
  std::size_t domain{0};
  double bandwidth_mb_per_s{0.0};
};

/// Live-migration subsystem configuration. Disabled by default: a
/// migration-disabled run takes exactly the pre-migration code path and
/// reproduces its output bit for bit (pinned by tests/migration_test.cpp).
struct MigrationSpec {
  bool enabled{false};
  /// "drain", "rebalance", or "drain+rebalance".
  std::string policy{"drain"};
  double check_interval_s{60.0};
  int max_moves_per_tick{8};
  double high_watermark{1.1};
  double low_watermark{0.8};
  /// Link contention granularity: "p2p" (per ordered domain pair) or
  /// "uplink" (one shared pool per source domain).
  std::string link_mode{"p2p"};
  /// Movable-job ordering: "fifo" (list order, the pre-cost-aware
  /// behavior) or "cost" (image/remaining-work/SLA-slack ranking).
  std::string selection{"fifo"};
  /// Rebalance congestion guard: skip sources with this many outbound
  /// transfers already queued (0 = no guard; see PolicyConfig).
  int max_queued_transfers{0};
  /// Link-fault resilience (see MigrationOptions): retry budget and the
  /// capped exponential backoff for transfers killed by a link fault.
  int max_transfer_retries{3};
  double retry_backoff_s{30.0};
  double retry_backoff_max_s{480.0};
  /// Re-rank queued transfers cheapest-image-first when a link pool backs
  /// up. Off by default (FIFO order is part of the pinned behavior).
  bool rescore_queued_transfers{false};
  /// Defer destination attaches to just before the destination
  /// controller's next cycle so that cycle plans the job (see
  /// MigrationOptions::align_attach). Off by default (immediate attach
  /// is part of the pinned behavior).
  bool align_attach{false};
  double default_bandwidth_mb_per_s{125.0};
  double default_latency_s{2.0};
  std::vector<LinkSpec> links;
  std::vector<UplinkSpec> uplinks;
};

struct FederatedScenario {
  std::string name{"federated"};
  std::vector<DomainSpec> domains;
  std::vector<TxAppScenario> apps;
  JobStreamSpec jobs;
  ControllerSpec controller;
  /// Router choice: "least-loaded", "capacity-weighted", or "sticky".
  std::string router{"least-loaded"};
  std::vector<WeightEvent> weight_events;
  MigrationSpec migration;
  PowerSpec power;
  FaultSpec faults;
  ObsSpec obs;
  /// SLO burn-rate alert specs (see Scenario::slos); evaluated on the
  /// shared sampling clock against the per-domain ledgers merged in
  /// domain order.
  std::vector<obs::SloSpec> slos;
  double horizon_s{0.0};
  double sample_interval_s{600.0};
  std::uint64_t seed{42};
  /// Engine worker threads (see Scenario::engine_threads). Federated
  /// runs are where N > 1 pays off: same-timestamp control cycles,
  /// executor passes, and power ticks of distinct domains run
  /// concurrently between deterministic merge barriers.
  int engine_threads{1};
};

/// Throw util::ConfigError naming the offending key if the spec's
/// link_mode / selection strings are invalid. The config loader and the
/// federated runner both call this; CLI front-ends that fill the strings
/// from flags call it early for a clean usage-style failure instead of
/// an uncaught exception mid-run.
void validate_migration_modes(const MigrationSpec& spec);

/// Shard a single-cluster scenario into `n_domains` equal domains (nodes
/// split as evenly as possible, remainder to the earliest domains); apps,
/// jobs, controller and seeds carry over unchanged. n_domains = 1 yields
/// the scenario's exact single-cluster equivalent.
[[nodiscard]] FederatedScenario federate(const Scenario& single, int n_domains,
                                         const std::string& router = "least-loaded");

/// Per-domain outcome: the same series + summary a single-cluster run
/// produces, plus how many jobs the router sent here.
struct DomainResult {
  std::string name;
  ExperimentResult result;
  long jobs_routed{0};
};

/// Engine-level execution counters for one run. Diagnostic only — the
/// result digest (scenario/result_digest) deliberately excludes them,
/// because parallel_batches/batched_events legitimately differ between
/// engine.threads = 1 (always zero) and N > 1 while the simulation
/// output stays bit-identical.
struct EngineStats {
  std::uint64_t events_executed{0};
  std::uint64_t parallel_batches{0};
  std::uint64_t batched_events{0};
  /// Wall-clock dispatch attribution (obs.profile only; zeros otherwise).
  std::uint64_t serial_spine_ns{0};
  std::uint64_t batch_exec_ns{0};
  std::uint64_t merge_barrier_ns{0};
};

struct FederatedResult {
  std::vector<DomainResult> domains;
  /// Federation-aggregated samples (fed_* series: summed allocations,
  /// job counts; mig_* series when migration is enabled) on the shared
  /// sampling clock.
  util::TimeSeriesSet series;
  /// merge_summaries over the per-domain summaries.
  ExperimentSummary summary;
  /// End-of-run migration counters (all zero when migration is disabled).
  migration::MigrationStats migration;
  /// End-of-run fault counters, summed across domains (all zero when
  /// fault injection is disabled).
  faults::DomainFaultStats faults;
  /// Mean time to repair over completed repairs (0 without faults).
  double fault_mttr_s{0.0};
  /// Execution counters (excluded from the digest; see EngineStats).
  EngineStats engine;
  /// Wall-clock per-phase profile (obs.profile; empty otherwise). Like
  /// EngineStats this is machine-dependent and digest-excluded.
  obs::ProfileReport profile;
};

/// Run a federated scenario. Deterministic for a fixed (scenario, options)
/// pair. options.policy selects every domain's local policy.
[[nodiscard]] FederatedResult run_federated_experiment(const FederatedScenario& scenario,
                                                       const ExperimentOptions& options = {});

}  // namespace heteroplace::scenario
