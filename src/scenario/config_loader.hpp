#pragma once

// Config-driven scenario construction: build a full Scenario from
// key=value configuration (file or command line), so experiments can be
// defined and swept without recompiling.
//
// Recognized keys (defaults = the paper's Section-3 experiment):
//
//   name, seed, horizon_s, sample_interval_s
//   nodes, cpu_per_node_mhz, mem_per_node_mb
//   classes                    — machine-class names (comma list; mutually
//                                 exclusive with the scalar nodes/cpu/mem keys)
//   class.<name>.arch, class.<name>.cores, class.<name>.core_mhz,
//   class.<name>.mem_mb, class.<name>.speed_factor, class.<name>.accel,
//   class.<name>.count
//   jobs.constraint.arch, jobs.constraint.accel, jobs.constraint.min_core_mhz
//   app.<i>.constraint.arch, app.<i>.constraint.accel,
//   app.<i>.constraint.min_core_mhz
//   cycle_s
//   latency.start_job, latency.suspend, latency.resume, latency.migrate,
//   latency.start_instance
//   solver.allow_migration, solver.work_conserving,
//   solver.protect_completion_horizon_s, solver.instance_capacity_factor
//   jobs.count, jobs.mean_interarrival_s, jobs.tail_count,
//   jobs.tail_mean_interarrival_s, jobs.work_mhz_s, jobs.work_cv,
//   jobs.max_speed_mhz, jobs.memory_mb, jobs.goal_stretch,
//   jobs.utility_shape, jobs.importance
//   apps                       — number of transactional apps (default 1)
//   app.<i>.name, app.<i>.lambda, app.<i>.rt_goal_s,
//   app.<i>.service_demand_mhz_s, app.<i>.importance,
//   app.<i>.instance_memory_mb, app.<i>.min_instances,
//   app.<i>.max_instances, app.<i>.utility_cap, app.<i>.max_utilization,
//   app.<i>.throughput_exponent
//
// Federated (multi-domain) scenarios additionally recognize:
//
//   domains                    — number of controller domains (default 1)
//   router                     — least-loaded | capacity-weighted | sticky
//   domain.<i>.name, domain.<i>.nodes, domain.<i>.cpu_per_node_mhz,
//   domain.<i>.mem_per_node_mb, domain.<i>.first_cycle_at_s
//   domain.<i>.class.<name>.count — per-domain machine-class pool override
//                                 (0 allowed: the class lives elsewhere)
//
// Per-domain keys default to an even split of the global `nodes` pool (or
// of each class pool) and auto-staggered control cycles
// (first_cycle_at_s = -1).
//
// Live-migration keys (all under migration.*, disabled by default):
//
//   migration.enabled          — turn the MigrationManager on (default false)
//   migration.policy           — drain | rebalance | drain+rebalance
//   migration.check_interval_s, migration.max_moves_per_tick
//   migration.high_watermark, migration.low_watermark
//   migration.link_mode        — p2p | uplink (link contention pools)
//   migration.selection        — fifo | cost (movable-job ordering)
//   migration.default_bandwidth_mb_per_s, migration.default_latency_s
//     (migration.default_bandwidth_mbps is a deprecated alias — the value
//      was always MB/s; old configs still load)
//   migration.align_attach     — defer each destination attach to just
//                                 before the destination controller's next
//                                 cycle so that cycle plans the arriving
//                                 job (default false)
//   bandwidth.<i>.<j>          — directed link bandwidth override (MB/s;
//                                 p2p mode only — rejected under uplink)
//   link_latency.<i>.<j>       — directed link latency override (s)
//   uplink_bandwidth.<i>       — shared uplink pool capacity (MB/s;
//                                 uplink mode only — rejected under p2p)
//
// Unknown keys raise util::ConfigError so typos fail loudly.

#include "scenario/federation_experiment.hpp"
#include "scenario/scenario.hpp"
#include "util/config.hpp"

namespace heteroplace::scenario {

/// Build a scenario from configuration; unspecified keys fall back to the
/// paper's Section-3 values. Throws util::ConfigError on malformed values
/// or unknown keys.
[[nodiscard]] Scenario scenario_from_config(const util::Config& cfg);

/// Render a scenario back into config text (round-trips through
/// scenario_from_config); handy for archiving exactly what a bench ran.
[[nodiscard]] std::string scenario_to_config(const Scenario& scenario);

/// Build a federated (multi-domain) scenario: the shared keys define the
/// workload and controller, `domains`/`router`/`domain.<i>.*` shard the
/// cluster into controller domains. `domains = 1` (the default) yields
/// the single-cluster scenario's exact federated equivalent.
[[nodiscard]] FederatedScenario federated_scenario_from_config(const util::Config& cfg);

}  // namespace heteroplace::scenario
