#pragma once

// Shared policy construction for the experiment runners.
//
// The single-cluster runner builds one policy; the federated runner builds
// one per domain. Both must wire the identical noisy-monitoring state
// (per-app rate estimators seeded deterministically), so the construction
// lives here once.

#include <cstdint>
#include <memory>

#include "core/policy.hpp"
#include "scenario/experiment.hpp"
#include "utility/job_utility.hpp"
#include "utility/tx_utility.hpp"

namespace heteroplace::scenario {

/// Build the policy selected by `options`. `solver` comes from the
/// scenario's controller spec; `noise_seed` seeds the λ-observation noise
/// stream when options.lambda_noise_cv > 0 (each controller instance gets
/// its own estimator state).
[[nodiscard]] std::unique_ptr<core::PlacementPolicy> make_experiment_policy(
    const ExperimentOptions& options, const core::SolverConfig& solver,
    std::shared_ptr<utility::JobUtilityModel> job_model,
    std::shared_ptr<utility::TxUtilityModel> tx_model, std::uint64_t noise_seed);

}  // namespace heteroplace::scenario
