#include "scenario/policy_factory.hpp"

#include <cmath>
#include <map>

#include "baselines/proportional_share.hpp"
#include "baselines/static_partition.hpp"
#include "core/utility_policy.hpp"
#include "perfmodel/rate_estimator.hpp"
#include "util/rng.hpp"

namespace heteroplace::scenario {

std::unique_ptr<core::PlacementPolicy> make_experiment_policy(
    const ExperimentOptions& options, const core::SolverConfig& solver,
    std::shared_ptr<utility::JobUtilityModel> job_model,
    std::shared_ptr<utility::TxUtilityModel> tx_model, std::uint64_t noise_seed) {
  switch (options.policy) {
    case PolicyKind::kUtilityDriven: {
      auto up = std::make_unique<core::UtilityDrivenPolicy>(job_model, tx_model, solver);
      if (options.lambda_noise_cv > 0.0) {
        // Noisy-monitoring state must outlive the policy: one estimator
        // and one noise stream per app (keyed by app id).
        auto estimators = std::make_shared<std::map<util::AppId, perfmodel::RateEstimator>>();
        auto noise_rng = std::make_shared<util::Rng>(noise_seed);
        const double cv = options.lambda_noise_cv;
        const double half_life = options.lambda_estimator_half_life_s;
        // LogNormal with mean 1 and the requested coefficient of variation.
        const double sigma2 = std::log(1.0 + cv * cv);
        const double mu = -0.5 * sigma2;
        const double sigma = std::sqrt(sigma2);
        up->set_lambda_provider(
            [estimators, noise_rng, mu, sigma, half_life](const workload::TxApp& app,
                                                          util::Seconds now) {
              auto [it, inserted] =
                  estimators->try_emplace(app.id(), perfmodel::RateEstimator{half_life});
              const double observed = app.arrival_rate(now) * noise_rng->lognormal(mu, sigma);
              it->second.observe(now, observed);
              return it->second.estimate();
            });
      }
      return up;
    }
    case PolicyKind::kStaticPartition: {
      baselines::StaticPartitionConfig cfg;
      cfg.tx_node_fraction = options.static_tx_fraction;
      return std::make_unique<baselines::StaticPartitionPolicy>(cfg);
    }
    case PolicyKind::kProportionalEqual:
    case PolicyKind::kProportionalDemand: {
      baselines::ProportionalShareConfig cfg;
      cfg.mode = options.policy == PolicyKind::kProportionalEqual
                     ? baselines::ShareMode::kEqualPerWorkload
                     : baselines::ShareMode::kDemandProportional;
      cfg.solver = solver;
      return std::make_unique<baselines::ProportionalSharePolicy>(job_model, tx_model, cfg);
    }
  }
  return nullptr;  // unreachable: all enum values handled above
}

}  // namespace heteroplace::scenario
