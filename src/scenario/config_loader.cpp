#include "scenario/config_loader.hpp"

#include <set>
#include <sstream>
#include <stdexcept>

#include "federation/router.hpp"
#include "migration/policy.hpp"
#include "scenario/class_factory.hpp"
#include "scenario/fault_factory.hpp"
#include "scenario/obs_factory.hpp"
#include "scenario/power_factory.hpp"

namespace heteroplace::scenario {

namespace {

/// Track consumed keys so unknown keys can be rejected.
class KeyedConfig {
 public:
  explicit KeyedConfig(const util::Config& cfg) : cfg_(cfg) {}

  [[nodiscard]] double num(const std::string& key, double def) {
    used_.insert(key);
    return cfg_.get_double(key, def);
  }
  [[nodiscard]] long long integer(const std::string& key, long long def) {
    used_.insert(key);
    return cfg_.get_int(key, def);
  }
  [[nodiscard]] bool boolean(const std::string& key, bool def) {
    used_.insert(key);
    return cfg_.get_bool(key, def);
  }
  [[nodiscard]] std::string str(const std::string& key, const std::string& def) {
    used_.insert(key);
    return cfg_.get_string(key, def);
  }
  [[nodiscard]] bool has(const std::string& key) const { return cfg_.has(key); }

  void reject_unknown() const {
    for (const auto& key : cfg_.keys()) {
      if (used_.count(key) == 0) {
        throw util::ConfigError("unknown scenario config key: '" + key + "'");
      }
    }
  }

 private:
  const util::Config& cfg_;
  std::set<std::string> used_;
};

Scenario scenario_from_keyed(KeyedConfig& k);

}  // namespace

Scenario scenario_from_config(const util::Config& cfg) {
  KeyedConfig k(cfg);
  Scenario s = scenario_from_keyed(k);
  validate_constraint(s.jobs.tmpl.constraint, {&s.cluster}, "jobs.constraint");
  for (std::size_t i = 0; i < s.apps.size(); ++i) {
    validate_constraint(s.apps[i].spec.constraint, {&s.cluster},
                        "app." + std::to_string(i) + ".constraint");
  }
  // Single-cluster runs cannot express link or domain faults; fail at
  // load time, not mid-run.
  validate_fault_spec(s.faults, {static_cast<std::size_t>(s.cluster.total_nodes())},
                      /*federated=*/false, /*migration_enabled=*/false, s.horizon_s);
  k.reject_unknown();
  return s;
}

FederatedScenario federated_scenario_from_config(const util::Config& cfg) {
  KeyedConfig k(cfg);
  const Scenario base = scenario_from_keyed(k);

  const auto n_domains = k.integer("domains", 1);
  if (n_domains < 1 || n_domains > 64) throw util::ConfigError("domains: out of range [1, 64]");

  FederatedScenario fs;
  fs.name = base.name;
  fs.apps = base.apps;
  fs.jobs = base.jobs;
  fs.controller = base.controller;
  fs.power = base.power;
  fs.faults = base.faults;
  fs.horizon_s = base.horizon_s;
  fs.sample_interval_s = base.sample_interval_s;
  fs.seed = base.seed;
  fs.engine_threads = base.engine_threads;
  fs.obs = base.obs;
  fs.slos = base.slos;
  fs.router = k.str("router", "least-loaded");
  try {
    (void)federation::make_router(fs.router);
  } catch (const std::invalid_argument& e) {
    throw util::ConfigError(std::string("router: ") + e.what());
  }

  // Default split of the global pool is even (remainder to the earliest
  // domains) and may leave later domains with zero nodes; explicit
  // domain.<i>.nodes overrides apply before the positivity check so
  // "2 nodes, 4 domains, 1 node each by override" is a valid config.
  // Heterogeneous specs split each class pool the same way, overridden
  // per-pool by domain.<i>.class.<name>.count (0 = none of that class
  // here, so a GPU pool can live in one domain only).
  const int base_nodes = base.cluster.nodes / static_cast<int>(n_domains);
  const int remainder = base.cluster.nodes % static_cast<int>(n_domains);
  for (long long i = 0; i < n_domains; ++i) {
    const std::string p = "domain." + std::to_string(i) + ".";
    DomainSpec d;
    d.name = "dc" + std::to_string(i);
    d.cluster = base.cluster;
    d.name = k.str(p + "name", d.name);
    if (base.cluster.heterogeneous()) {
      for (const char* key : {"nodes", "cpu_per_node_mhz", "mem_per_node_mb"}) {
        if (k.has(p + key)) {
          throw util::ConfigError(p + key +
                                  " has no effect with explicit machine classes; use " + p +
                                  "class.<name>.count");
        }
      }
      for (ClassPoolSpec& pool : d.cluster.classes) {
        const int pool_base = pool.count / static_cast<int>(n_domains);
        const int pool_rem = pool.count % static_cast<int>(n_domains);
        const std::string ckey = p + "class." + pool.klass.name + ".count";
        const int count = static_cast<int>(
            k.integer(ckey, pool_base + (i < pool_rem ? 1 : 0)));
        if (count < 0) throw util::ConfigError(ckey + ": must be nonnegative");
        pool.count = count;
      }
      if (d.cluster.total_nodes() < 1) {
        throw util::ConfigError(p + "class.<name>.count: domain has no nodes");
      }
    } else {
      d.cluster.nodes = base_nodes + (i < remainder ? 1 : 0);
      d.cluster.nodes = static_cast<int>(k.integer(p + "nodes", d.cluster.nodes));
      if (d.cluster.nodes < 1) throw util::ConfigError(p + "nodes: must be positive");
      d.cluster.cpu_per_node_mhz = k.num(p + "cpu_per_node_mhz", d.cluster.cpu_per_node_mhz);
      d.cluster.mem_per_node_mb = k.num(p + "mem_per_node_mb", d.cluster.mem_per_node_mb);
    }
    d.first_cycle_at_s = k.num(p + "first_cycle_at_s", d.first_cycle_at_s);
    d.power_cap_w = k.num(p + "power_cap_w", d.power_cap_w);
    if (k.has(p + "power_cap_w") && d.power_cap_w < 0.0) {
      throw util::ConfigError(p + "power_cap_w: must be nonnegative (0 = uncapped)");
    }
    fs.domains.push_back(std::move(d));
  }

  // --- live migration ---------------------------------------------------------
  MigrationSpec& m = fs.migration;
  m.enabled = k.boolean("migration.enabled", m.enabled);
  m.policy = k.str("migration.policy", m.policy);
  try {
    (void)migration::make_migration_policy(m.policy);
  } catch (const std::invalid_argument& e) {
    throw util::ConfigError(std::string("migration.policy: ") + e.what());
  }
  m.check_interval_s = k.num("migration.check_interval_s", m.check_interval_s);
  if (m.check_interval_s <= 0.0) {
    throw util::ConfigError("migration.check_interval_s: must be positive");
  }
  m.max_moves_per_tick =
      static_cast<int>(k.integer("migration.max_moves_per_tick", m.max_moves_per_tick));
  if (m.max_moves_per_tick < 1) {
    throw util::ConfigError("migration.max_moves_per_tick: must be >= 1");
  }
  m.high_watermark = k.num("migration.high_watermark", m.high_watermark);
  m.low_watermark = k.num("migration.low_watermark", m.low_watermark);
  m.link_mode = k.str("migration.link_mode", m.link_mode);
  m.selection = k.str("migration.selection", m.selection);
  m.max_queued_transfers =
      static_cast<int>(k.integer("migration.max_queued_transfers", m.max_queued_transfers));
  if (m.max_queued_transfers < 0) {
    throw util::ConfigError("migration.max_queued_transfers: must be nonnegative (0 = no guard)");
  }
  m.max_transfer_retries =
      static_cast<int>(k.integer("migration.max_transfer_retries", m.max_transfer_retries));
  if (m.max_transfer_retries < 0) {
    throw util::ConfigError("migration.max_transfer_retries: must be nonnegative (0 = fail back "
                            "on the first link fault)");
  }
  m.retry_backoff_s = k.num("migration.retry_backoff_s", m.retry_backoff_s);
  if (m.retry_backoff_s <= 0.0) {
    throw util::ConfigError("migration.retry_backoff_s: must be positive");
  }
  m.retry_backoff_max_s = k.num("migration.retry_backoff_max_s", m.retry_backoff_max_s);
  if (m.retry_backoff_max_s < m.retry_backoff_s) {
    throw util::ConfigError("migration.retry_backoff_max_s: must be >= migration.retry_backoff_s");
  }
  m.rescore_queued_transfers =
      k.boolean("migration.rescore_queued_transfers", m.rescore_queued_transfers);
  m.align_attach = k.boolean("migration.align_attach", m.align_attach);
  validate_migration_modes(m);
  // Bandwidths have always been MB/s (images divide directly by them);
  // the preferred key now says so. The old *_mbps spelling is a
  // deprecated alias — same meaning, same units. Diagnostics name the
  // key the user actually wrote.
  if (k.has("migration.default_bandwidth_mb_per_s") &&
      k.has("migration.default_bandwidth_mbps")) {
    throw util::ConfigError(
        "migration.default_bandwidth_mb_per_s and the deprecated "
        "migration.default_bandwidth_mbps are both set; keep one");
  }
  const std::string bw_key = k.has("migration.default_bandwidth_mbps")
                                 ? "migration.default_bandwidth_mbps"
                                 : "migration.default_bandwidth_mb_per_s";
  m.default_bandwidth_mb_per_s = k.num(bw_key, m.default_bandwidth_mb_per_s);
  if (m.default_bandwidth_mb_per_s <= 0.0) {
    throw util::ConfigError(bw_key + ": must be positive");
  }
  m.default_latency_s = k.num("migration.default_latency_s", m.default_latency_s);
  if (m.default_latency_s < 0.0) {
    throw util::ConfigError("migration.default_latency_s: must be nonnegative");
  }
  // Sparse inter-domain link overrides: bandwidth.<i>.<j> (MB/s) and
  // link_latency.<i>.<j> (s) for every ordered domain pair. Presence is
  // tested explicitly so an out-of-range value fails loudly instead of
  // masquerading as "unset".
  for (long long i = 0; i < n_domains; ++i) {
    for (long long j = 0; j < n_domains; ++j) {
      if (i == j) continue;
      const std::string suffix = std::to_string(i) + "." + std::to_string(j);
      const bool has_bw = k.has("bandwidth." + suffix);
      const bool has_lat = k.has("link_latency." + suffix);
      const double bw = k.num("bandwidth." + suffix, -1.0);
      const double lat = k.num("link_latency." + suffix, -1.0);
      if (has_bw && bw <= 0.0) {
        throw util::ConfigError("bandwidth." + suffix + ": must be positive");
      }
      if (has_bw && m.link_mode == "uplink") {
        throw util::ConfigError("bandwidth." + suffix +
                                ": has no effect with migration.link_mode = uplink; "
                                "use uplink_bandwidth.<i> (per-pair latency still applies)");
      }
      if (has_lat && lat < 0.0) {
        throw util::ConfigError("link_latency." + suffix + ": must be nonnegative");
      }
      if (!has_bw && !has_lat) continue;
      LinkSpec link;
      link.from = static_cast<std::size_t>(i);
      link.to = static_cast<std::size_t>(j);
      link.bandwidth_mb_per_s = has_bw ? bw : -1.0;
      link.latency_s = has_lat ? lat : -1.0;
      m.links.push_back(link);
    }
  }
  // Shared-uplink pool capacities: uplink_bandwidth.<i> (MB/s), used in
  // link_mode = uplink. Same fail-loud presence test as the pair links.
  for (long long i = 0; i < n_domains; ++i) {
    const std::string key = "uplink_bandwidth." + std::to_string(i);
    const bool has_uplink = k.has(key);
    const double uplink = k.num(key, -1.0);
    if (!has_uplink) continue;
    if (uplink <= 0.0) throw util::ConfigError(key + ": must be positive");
    if (m.link_mode != "uplink") {
      throw util::ConfigError(key + ": has no effect with migration.link_mode = " +
                              m.link_mode + "; set migration.link_mode = uplink");
    }
    m.uplinks.push_back({static_cast<std::size_t>(i), uplink});
  }

  {
    // A constraint is satisfiable if any domain kept an admitting pool
    // (per-domain count overrides may have moved pools around).
    std::vector<const ClusterSpec*> domain_clusters;
    for (const DomainSpec& d : fs.domains) domain_clusters.push_back(&d.cluster);
    validate_constraint(fs.jobs.tmpl.constraint, domain_clusters, "jobs.constraint");
    for (std::size_t i = 0; i < fs.apps.size(); ++i) {
      validate_constraint(fs.apps[i].spec.constraint, domain_clusters,
                          "app." + std::to_string(i) + ".constraint");
    }
  }

  {
    std::vector<std::size_t> nodes_per_domain;
    for (const DomainSpec& d : fs.domains) {
      nodes_per_domain.push_back(static_cast<std::size_t>(d.cluster.total_nodes()));
    }
    validate_fault_spec(fs.faults, nodes_per_domain, /*federated=*/true, fs.migration.enabled,
                        fs.horizon_s);
  }

  k.reject_unknown();
  return fs;
}

namespace {

Scenario scenario_from_keyed(KeyedConfig& k) {
  const Scenario defaults = section3_scenario();
  Scenario s;

  s.name = k.str("name", "custom");
  s.seed = static_cast<std::uint64_t>(k.integer("seed", static_cast<long long>(defaults.seed)));
  s.horizon_s = k.num("horizon_s", defaults.horizon_s);
  s.sample_interval_s = k.num("sample_interval_s", defaults.sample_interval_s);
  s.engine_threads = static_cast<int>(k.integer("engine.threads", defaults.engine_threads));
  if (s.engine_threads < 1) throw util::ConfigError("engine.threads: must be >= 1");

  s.cluster.nodes = static_cast<int>(k.integer("nodes", defaults.cluster.nodes));
  s.cluster.cpu_per_node_mhz = k.num("cpu_per_node_mhz", defaults.cluster.cpu_per_node_mhz);
  s.cluster.mem_per_node_mb = k.num("mem_per_node_mb", defaults.cluster.mem_per_node_mb);

  // --- machine classes --------------------------------------------------------
  // `classes = big,arm` names the pools; each pool is then described by
  // class.<name>.* keys. Scalar and pooled layouts are mutually
  // exclusive spellings of the cluster — mixing them is rejected rather
  // than guessed at.
  const std::vector<std::string> class_names =
      parse_tag_list(k.str("classes", ""), "classes");
  if (!class_names.empty()) {
    for (const char* key : {"nodes", "cpu_per_node_mhz", "mem_per_node_mb"}) {
      if (k.has(key)) {
        throw util::ConfigError(std::string(key) +
                                " has no effect with explicit machine classes; "
                                "size each pool via class.<name>.count");
      }
    }
    for (const std::string& name : class_names) {
      const std::string p = "class." + name + ".";
      ClassPoolSpec pool;
      pool.klass.name = name;
      pool.klass.arch = k.str(p + "arch", "");
      pool.klass.cores = static_cast<int>(k.integer(p + "cores", 0));
      pool.klass.core_mhz = k.num(p + "core_mhz", 0.0);
      pool.klass.mem_mb = k.num(p + "mem_mb", 0.0);
      pool.klass.speed_factor = k.num(p + "speed_factor", 1.0);
      pool.klass.accel = parse_tag_list(k.str(p + "accel", ""), p + "accel");
      pool.count = static_cast<int>(k.integer(p + "count", 0));
      s.cluster.classes.push_back(std::move(pool));
    }
    validate_class_pools(s.cluster);
  }

  // Shared shape for jobs.constraint.* / app.<i>.constraint.* keys.
  // Satisfiability against the actual pools is checked by the caller —
  // the federated loader must test against per-domain class counts.
  auto parse_constraint = [&k](const std::string& p) {
    cluster::ConstraintSet c;
    c.arch = k.str(p + "arch", "");
    c.accel = parse_tag_list(k.str(p + "accel", ""), p + "accel");
    c.min_core_mhz = k.num(p + "min_core_mhz", 0.0);
    if (c.min_core_mhz < 0.0) {
      throw util::ConfigError(p + "min_core_mhz: must be nonnegative");
    }
    return c;
  };

  s.controller.cycle_s = k.num("cycle_s", defaults.controller.cycle_s);
  auto& lat = s.controller.latencies;
  lat.start_job = util::Seconds{k.num("latency.start_job", lat.start_job.get())};
  lat.suspend_job = util::Seconds{k.num("latency.suspend", lat.suspend_job.get())};
  lat.resume_job = util::Seconds{k.num("latency.resume", lat.resume_job.get())};
  lat.migrate_job = util::Seconds{k.num("latency.migrate", lat.migrate_job.get())};
  lat.start_instance = util::Seconds{k.num("latency.start_instance", lat.start_instance.get())};

  auto& sol = s.controller.solver;
  sol.allow_migration = k.boolean("solver.allow_migration", sol.allow_migration);
  sol.work_conserving = k.boolean("solver.work_conserving", sol.work_conserving);
  sol.protect_completion_horizon_s =
      k.num("solver.protect_completion_horizon_s", sol.protect_completion_horizon_s);
  sol.instance_capacity_factor =
      k.num("solver.instance_capacity_factor", sol.instance_capacity_factor);

  s.jobs.count = k.integer("jobs.count", defaults.jobs.count);
  s.jobs.mean_interarrival_s =
      k.num("jobs.mean_interarrival_s", defaults.jobs.mean_interarrival_s);
  s.jobs.tail_count = k.integer("jobs.tail_count", 0);
  s.jobs.tail_mean_interarrival_s = k.num("jobs.tail_mean_interarrival_s", 0.0);
  s.jobs.tmpl.work = util::MhzSeconds{k.num("jobs.work_mhz_s", defaults.jobs.tmpl.work.get())};
  s.jobs.tmpl.work_cv = k.num("jobs.work_cv", defaults.jobs.tmpl.work_cv);
  s.jobs.tmpl.max_speed =
      util::CpuMhz{k.num("jobs.max_speed_mhz", defaults.jobs.tmpl.max_speed.get())};
  s.jobs.tmpl.memory = util::MemMb{k.num("jobs.memory_mb", defaults.jobs.tmpl.memory.get())};
  s.jobs.tmpl.goal_stretch = k.num("jobs.goal_stretch", defaults.jobs.tmpl.goal_stretch);
  s.jobs.tmpl.importance = k.num("jobs.importance", defaults.jobs.tmpl.importance);
  s.jobs.utility_shape = k.str("jobs.utility_shape", defaults.jobs.utility_shape);
  s.jobs.tmpl.constraint = parse_constraint("jobs.constraint.");

  // --- power & energy ---------------------------------------------------------
  PowerSpec& pw = s.power;
  pw.enabled = k.boolean("power.enabled", pw.enabled);
  pw.policy = k.str("power.policy", pw.policy);
  pw.check_interval_s = k.num("power.check_interval_s", pw.check_interval_s);
  pw.idle_timeout_s = k.num("power.idle_timeout_s", pw.idle_timeout_s);
  pw.headroom_factor = k.num("power.headroom_factor", pw.headroom_factor);
  pw.min_active_nodes =
      static_cast<int>(k.integer("power.min_active_nodes", pw.min_active_nodes));
  pw.cap_w = k.num("power.cap_w", pw.cap_w);
  pw.park_state = k.str("power.park_state", pw.park_state);
  pw.active_w = k.num("power.active_w", pw.active_w);
  pw.standby_w = k.num("power.standby_w", pw.standby_w);
  pw.off_w = k.num("power.off_w", pw.off_w);
  pw.park_latency_s = k.num("power.park_latency_s", pw.park_latency_s);
  pw.wake_latency_s = k.num("power.wake_latency_s", pw.wake_latency_s);
  pw.pstates = static_cast<int>(k.integer("power.pstates", pw.pstates));
  validate_power_spec(pw);

  // --- fault injection --------------------------------------------------------
  FaultSpec& ft = s.faults;
  ft.enabled = k.boolean("fault.enabled", ft.enabled);
  ft.seed = static_cast<std::uint64_t>(k.integer("fault.seed", 0));
  ft.until_s = k.num("fault.until_s", ft.until_s);
  ft.checkpoint_interval_s = k.num("fault.checkpoint_interval_s", ft.checkpoint_interval_s);
  ft.max_concurrent_repairs = static_cast<int>(
      k.integer("fault.max_concurrent_repairs", ft.max_concurrent_repairs));
  ft.node_mttf_s = k.num("fault.node_mttf_s", ft.node_mttf_s);
  ft.node_mttr_s = k.num("fault.node_mttr_s", ft.node_mttr_s);
  ft.link_mttf_s = k.num("fault.link_mttf_s", ft.link_mttf_s);
  ft.link_mttr_s = k.num("fault.link_mttr_s", ft.link_mttr_s);
  ft.domain_mttf_s = k.num("fault.domain_mttf_s", ft.domain_mttf_s);
  ft.domain_mttr_s = k.num("fault.domain_mttr_s", ft.domain_mttr_s);
  const auto n_fault_events = k.integer("fault.events", 0);
  if (n_fault_events < 0 || n_fault_events > 4096) {
    throw util::ConfigError("fault.events: out of range [0, 4096]");
  }
  for (long long i = 0; i < n_fault_events; ++i) {
    const std::string p = "fault.event." + std::to_string(i) + ".";
    FaultEventSpec e;
    e.kind = k.str(p + "kind", e.kind);
    // Link events name their source "from"; the other kinds "domain".
    // Both spellings land in the same field; setting both is ambiguous.
    const bool has_domain = k.has(p + "domain");
    const bool has_from = k.has(p + "from");
    if (has_domain && has_from) {
      throw util::ConfigError(p + "domain and " + p + "from are both set; keep one");
    }
    const auto domain = k.integer(has_from ? p + "from" : p + "domain", 0);
    if (domain < 0) throw util::ConfigError(p + "domain: must be nonnegative");
    e.domain = static_cast<std::size_t>(domain);
    const auto node = k.integer(p + "node", 0);
    if (node < 0) throw util::ConfigError(p + "node: must be nonnegative");
    e.node = static_cast<std::size_t>(node);
    const auto to = k.integer(p + "to", 0);
    if (to < 0) throw util::ConfigError(p + "to: must be nonnegative");
    e.to = static_cast<std::size_t>(to);
    e.at_s = k.num(p + "at_s", e.at_s);
    e.duration_s = k.num(p + "duration_s", e.duration_s);
    e.severity = k.num(p + "severity", e.severity);
    ft.events.push_back(std::move(e));
  }

  // --- observability ----------------------------------------------------------
  ObsSpec& ob = s.obs;
  ob.trace = k.str("obs.trace", ob.trace);
  ob.trace_path = k.str("obs.trace_path", ob.trace_path);
  ob.trace_ring_capacity = static_cast<long>(
      k.integer("obs.trace_ring_capacity", static_cast<long long>(ob.trace_ring_capacity)));
  ob.trace_engine = k.boolean("obs.trace_engine", ob.trace_engine);
  ob.metrics_path = k.str("obs.metrics_path", ob.metrics_path);
  ob.metrics_json_path = k.str("obs.metrics_json_path", ob.metrics_json_path);
  ob.profile = k.boolean("obs.profile", ob.profile);
  if (!ob.trace_enabled()) {
    for (const char* key : {"obs.trace_path", "obs.trace_ring_capacity", "obs.trace_engine"}) {
      if (k.has(key)) {
        throw util::ConfigError(std::string(key) + " has no effect with obs.trace=off");
      }
    }
  } else if (ob.trace != "ring" && k.has("obs.trace_ring_capacity")) {
    throw util::ConfigError("obs.trace_ring_capacity has no effect with obs.trace=" + ob.trace);
  }
  ob.audit = k.str("obs.audit", ob.audit);
  ob.audit_path = k.str("obs.audit_path", ob.audit_path);
  ob.audit_ring_capacity = static_cast<long>(
      k.integer("obs.audit_ring_capacity", static_cast<long long>(ob.audit_ring_capacity)));
  if (!ob.audit_enabled()) {
    for (const char* key : {"obs.audit_path", "obs.audit_ring_capacity"}) {
      if (k.has(key)) {
        throw util::ConfigError(std::string(key) + " has no effect with obs.audit=off");
      }
    }
  }
  ob.sla_report_path = k.str("obs.sla_report_path", ob.sla_report_path);
  ob.sla_report_csv_path = k.str("obs.sla_report_csv_path", ob.sla_report_csv_path);
  validate_obs_spec(ob);

  const auto n_apps = k.integer("apps", 1);
  if (n_apps < 0 || n_apps > 64) throw util::ConfigError("apps: out of range [0, 64]");
  const TxAppScenario& app_defaults = defaults.apps.front();
  for (long long i = 0; i < n_apps; ++i) {
    const std::string p = "app." + std::to_string(i) + ".";
    TxAppScenario app;
    app.spec = app_defaults.spec;
    app.spec.id = util::AppId{static_cast<util::AppId::underlying_type>(i)};
    app.spec.name = k.str(p + "name", n_apps == 1 ? "web" : "app" + std::to_string(i));
    app.spec.rt_goal = util::Seconds{k.num(p + "rt_goal_s", app_defaults.spec.rt_goal.get())};
    app.spec.service_demand =
        k.num(p + "service_demand_mhz_s", app_defaults.spec.service_demand);
    app.spec.importance = k.num(p + "importance", 1.0);
    app.spec.instance_memory =
        util::MemMb{k.num(p + "instance_memory_mb", app_defaults.spec.instance_memory.get())};
    app.spec.min_instances =
        static_cast<int>(k.integer(p + "min_instances", app_defaults.spec.min_instances));
    app.spec.max_instances =
        static_cast<int>(k.integer(p + "max_instances", s.cluster.total_nodes()));
    app.spec.utility_cap = k.num(p + "utility_cap", app_defaults.spec.utility_cap);
    app.spec.max_utilization = k.num(p + "max_utilization", app_defaults.spec.max_utilization);
    app.spec.throughput_exponent =
        k.num(p + "throughput_exponent", app_defaults.spec.throughput_exponent);
    app.spec.max_cpu_per_instance = util::CpuMhz{s.cluster.max_node_cpu_mhz()};
    app.spec.constraint = parse_constraint(p + "constraint.");
    app.trace = workload::DemandTrace{k.num(p + "lambda", 24.0)};
    s.apps.push_back(std::move(app));
  }

  // --- SLOs & burn-rate alerting ---------------------------------------------
  // `slos = web,jobs` names the objectives; each is then described by
  // slo.<name>.* keys. A name must be a tx app's name or the literal
  // "jobs" (batch completion-ratio objective). Parsed after the apps so
  // the name check sees the real app list.
  const std::vector<std::string> slo_names = parse_tag_list(k.str("slos", ""), "slos");
  for (const std::string& name : slo_names) {
    const std::string p = "slo." + name + ".";
    if (name != "jobs") {
      bool known = false;
      for (const TxAppScenario& app : s.apps) known = known || app.spec.name == name;
      if (!known) {
        throw util::ConfigError("slos: '" + name +
                                "' is neither a tx app name nor the literal 'jobs'");
      }
    }
    obs::SloSpec slo;
    slo.app = name;
    slo.target = k.num(p + "target", slo.target);
    slo.long_window_s = k.num(p + "long_window_s", slo.long_window_s);
    slo.short_window_s = k.num(p + "short_window_s", slo.short_window_s);
    slo.burn_threshold = k.num(p + "burn_threshold", slo.burn_threshold);
    if (!(slo.target > 0.0 && slo.target < 1.0)) {
      throw util::ConfigError(p + "target: must be in (0, 1)");
    }
    if (slo.short_window_s <= 0.0 || slo.long_window_s < slo.short_window_s) {
      throw util::ConfigError(p + "long_window_s/short_window_s: need 0 < short <= long");
    }
    if (slo.burn_threshold <= 0.0) {
      throw util::ConfigError(p + "burn_threshold: must be positive");
    }
    s.slos.push_back(std::move(slo));
  }

  return s;
}

}  // namespace

std::string scenario_to_config(const Scenario& s) {
  std::ostringstream os;
  const auto join = [](const std::vector<std::string>& tags) {
    std::string out;
    for (const auto& t : tags) {
      if (!out.empty()) out += ",";
      out += t;
    }
    return out;
  };
  const auto emit_constraint = [&os](const std::string& p, const cluster::ConstraintSet& c,
                                     const auto& join_fn) {
    if (!c.arch.empty()) os << p << "arch = " << c.arch << "\n";
    if (!c.accel.empty()) os << p << "accel = " << join_fn(c.accel) << "\n";
    if (c.min_core_mhz > 0.0) os << p << "min_core_mhz = " << c.min_core_mhz << "\n";
  };
  os << "name = " << s.name << "\n";
  os << "seed = " << s.seed << "\n";
  os << "horizon_s = " << s.horizon_s << "\n";
  os << "sample_interval_s = " << s.sample_interval_s << "\n";
  if (s.cluster.heterogeneous()) {
    std::vector<std::string> names;
    for (const auto& pool : s.cluster.classes) names.push_back(pool.klass.name);
    os << "classes = " << join(names) << "\n";
    for (const auto& pool : s.cluster.classes) {
      const std::string p = "class." + pool.klass.name + ".";
      if (!pool.klass.arch.empty()) os << p << "arch = " << pool.klass.arch << "\n";
      os << p << "cores = " << pool.klass.cores << "\n";
      os << p << "core_mhz = " << pool.klass.core_mhz << "\n";
      os << p << "mem_mb = " << pool.klass.mem_mb << "\n";
      os << p << "speed_factor = " << pool.klass.speed_factor << "\n";
      if (!pool.klass.accel.empty()) os << p << "accel = " << join(pool.klass.accel) << "\n";
      os << p << "count = " << pool.count << "\n";
    }
  } else {
    os << "nodes = " << s.cluster.nodes << "\n";
    os << "cpu_per_node_mhz = " << s.cluster.cpu_per_node_mhz << "\n";
    os << "mem_per_node_mb = " << s.cluster.mem_per_node_mb << "\n";
  }
  os << "cycle_s = " << s.controller.cycle_s << "\n";
  os << "jobs.count = " << s.jobs.count << "\n";
  os << "jobs.mean_interarrival_s = " << s.jobs.mean_interarrival_s << "\n";
  os << "jobs.work_mhz_s = " << s.jobs.tmpl.work.get() << "\n";
  os << "jobs.work_cv = " << s.jobs.tmpl.work_cv << "\n";
  os << "jobs.max_speed_mhz = " << s.jobs.tmpl.max_speed.get() << "\n";
  os << "jobs.memory_mb = " << s.jobs.tmpl.memory.get() << "\n";
  os << "jobs.goal_stretch = " << s.jobs.tmpl.goal_stretch << "\n";
  os << "jobs.utility_shape = " << s.jobs.utility_shape << "\n";
  emit_constraint("jobs.constraint.", s.jobs.tmpl.constraint, join);
  os << "apps = " << s.apps.size() << "\n";
  for (std::size_t i = 0; i < s.apps.size(); ++i) {
    const auto& a = s.apps[i];
    const std::string p = "app." + std::to_string(i) + ".";
    os << p << "name = " << a.spec.name << "\n";
    os << p << "lambda = " << a.trace.rate_at(util::Seconds{0.0}) << "\n";
    os << p << "rt_goal_s = " << a.spec.rt_goal.get() << "\n";
    os << p << "service_demand_mhz_s = " << a.spec.service_demand << "\n";
    os << p << "importance = " << a.spec.importance << "\n";
    os << p << "instance_memory_mb = " << a.spec.instance_memory.get() << "\n";
    os << p << "min_instances = " << a.spec.min_instances << "\n";
    os << p << "max_instances = " << a.spec.max_instances << "\n";
    os << p << "utility_cap = " << a.spec.utility_cap << "\n";
    os << p << "max_utilization = " << a.spec.max_utilization << "\n";
    os << p << "throughput_exponent = " << a.spec.throughput_exponent << "\n";
    emit_constraint(p + "constraint.", a.spec.constraint, join);
  }
  return os.str();
}

}  // namespace heteroplace::scenario
