#include "scenario/experiment.hpp"

#include <memory>
#include <stdexcept>

#include "core/controller.hpp"
#include "power/manager.hpp"
#include "scenario/policy_factory.hpp"
#include "scenario/power_factory.hpp"
#include "sim/engine.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "utility/utility_fn.hpp"

namespace heteroplace::scenario {

const char* to_string(PolicyKind p) {
  switch (p) {
    case PolicyKind::kUtilityDriven:
      return "utility-driven";
    case PolicyKind::kStaticPartition:
      return "static-partition";
    case PolicyKind::kProportionalEqual:
      return "proportional-equal";
    case PolicyKind::kProportionalDemand:
      return "proportional-demand";
  }
  return "?";
}

PolicyKind policy_from_string(const std::string& name) {
  if (name == "utility-driven" || name == "utility") return PolicyKind::kUtilityDriven;
  if (name == "static-partition" || name == "static") return PolicyKind::kStaticPartition;
  if (name == "proportional-equal") return PolicyKind::kProportionalEqual;
  if (name == "proportional-demand") return PolicyKind::kProportionalDemand;
  throw std::invalid_argument("unknown policy: " + name);
}

ExperimentResult run_experiment(const Scenario& scenario, const ExperimentOptions& options) {
  sim::Engine engine;
  core::World world;

  // --- cluster & apps -------------------------------------------------------
  world.cluster().add_nodes(scenario.cluster.nodes,
                            cluster::Resources{util::CpuMhz{scenario.cluster.cpu_per_node_mhz},
                                               util::MemMb{scenario.cluster.mem_per_node_mb}});
  for (const auto& app : scenario.apps) {
    world.add_app(workload::TxApp{app.spec, app.trace});
  }

  // --- job stream -----------------------------------------------------------
  util::Rng rng(scenario.seed);
  std::vector<workload::PhasedPoissonArrivals::Phase> phases;
  phases.push_back({util::Seconds{scenario.jobs.mean_interarrival_s}, scenario.jobs.count});
  if (scenario.jobs.tail_count > 0 && scenario.jobs.tail_mean_interarrival_s > 0.0) {
    phases.push_back(
        {util::Seconds{scenario.jobs.tail_mean_interarrival_s}, scenario.jobs.tail_count});
  }
  workload::PhasedPoissonArrivals arrivals{util::Seconds{0.0}, std::move(phases)};
  const auto job_specs = workload::generate_jobs(arrivals, scenario.jobs.tmpl, rng);

  // --- models ----------------------------------------------------------------
  auto job_model = std::make_shared<utility::JobUtilityModel>(
      utility::make_utility(scenario.jobs.utility_shape));
  auto tx_model = std::make_shared<utility::TxUtilityModel>();

  // --- policy ----------------------------------------------------------------
  std::unique_ptr<core::PlacementPolicy> policy = make_experiment_policy(
      options, scenario.controller.solver, job_model, tx_model, scenario.seed ^ 0xD1CEBA5EULL);

  // --- controller & metrics ---------------------------------------------------
  core::ControllerConfig ctrl_cfg;
  ctrl_cfg.cycle = util::Seconds{scenario.controller.cycle_s};
  core::PlacementController controller(engine, world, std::move(policy),
                                       scenario.controller.latencies, ctrl_cfg);

  MetricsRecorder recorder(world, job_model, tx_model);
  recorder.summary().scenario = scenario.name;
  recorder.summary().policy = to_string(options.policy);

  long invariant_violations = 0;
  controller.set_observer([&](const core::CycleReport& report) {
    recorder.on_cycle(report);
    if (options.validate_invariants) {
      const auto issues = world.cluster().validate();
      invariant_violations += static_cast<long>(issues.size());
      for (const auto& msg : issues) util::log_warn() << "invariant: " << msg;
    }
  });
  controller.executor().set_completion_callback(
      [&](const workload::Job& job) { recorder.on_job_completed(job); });

  // --- power subsystem (optional) ---------------------------------------------
  // Constructed after the cluster is populated; started after the
  // controller so its kPower ticks interleave deterministically. A
  // power-disabled run creates nothing here and stays bit-identical to
  // the pre-power runner (pinned by tests/power_test.cpp).
  std::unique_ptr<power::PowerManager> power_mgr;
  if (scenario.power.enabled) {
    power_mgr =
        make_power_manager(engine, world, scenario.power, scenario.controller.cycle_s);
  }

  // --- schedule arrivals, sampling, control loop ------------------------------
  for (const auto& spec : job_specs) {
    engine.schedule_at(spec.submit_time, sim::EventPriority::kWorkloadArrival,
                       [&world, spec] { world.submit_job(spec); });
  }
  auto sample_power = [&] {
    if (!power_mgr) return;
    const double t = engine.now().get();
    recorder.series().add("power_w", t, power_mgr->current_draw_w());
    recorder.series().add("energy_wh", t, power_mgr->energy_wh(engine.now()));
    recorder.series().add("power_parked_nodes", t,
                          static_cast<double>(power_mgr->parked_count()));
  };
  // Periodic sampling, self-rescheduling.
  const util::Seconds sample_dt{scenario.sample_interval_s};
  std::function<void()> sample_tick = [&] {
    recorder.sample(engine.now());
    sample_power();
    engine.schedule_in(sample_dt, sim::EventPriority::kSampling, sample_tick);
  };
  engine.schedule_in(sample_dt, sim::EventPriority::kSampling, sample_tick);
  controller.start();
  if (power_mgr) power_mgr->start();

  // --- run ---------------------------------------------------------------------
  const double horizon =
      options.horizon_override_s > 0.0 ? options.horizon_override_s : scenario.horizon_s;
  const std::size_t total_jobs = job_specs.size();
  if (horizon > 0.0) {
    engine.run_until(util::Seconds{horizon});
  } else {
    // Run until every job completes (chunked so the perpetual control
    // loop does not spin forever), capped for safety.
    const double chunk = std::max(10.0 * scenario.controller.cycle_s, 6000.0);
    while (world.completed_count() < total_jobs &&
           engine.now().get() < options.max_sim_time_s) {
      engine.run_until(engine.now() + util::Seconds{chunk});
    }
  }

  // --- finalize -----------------------------------------------------------------
  recorder.sample(engine.now());
  sample_power();
  ExperimentResult result;
  result.summary = recorder.summary();
  result.summary.jobs_submitted = static_cast<long>(world.submitted_count());
  result.summary.sim_end_time_s = engine.now().get();
  result.summary.invariant_violations = invariant_violations;
  if (result.summary.jobs_completed > 0) {
    result.summary.goal_met_fraction /= static_cast<double>(result.summary.jobs_completed);
  }
  result.series = std::move(recorder.series());
  return result;
}

}  // namespace heteroplace::scenario
