#include "scenario/experiment.hpp"

#include <cstdlib>
#include <memory>
#include <stdexcept>

#include "core/controller.hpp"
#include "faults/injector.hpp"
#include "power/manager.hpp"
#include "scenario/class_factory.hpp"
#include "scenario/fault_factory.hpp"
#include "scenario/obs_factory.hpp"
#include "scenario/policy_factory.hpp"
#include "scenario/power_factory.hpp"
#include "sim/engine.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "utility/utility_fn.hpp"

namespace heteroplace::scenario {

const char* to_string(PolicyKind p) {
  switch (p) {
    case PolicyKind::kUtilityDriven:
      return "utility-driven";
    case PolicyKind::kStaticPartition:
      return "static-partition";
    case PolicyKind::kProportionalEqual:
      return "proportional-equal";
    case PolicyKind::kProportionalDemand:
      return "proportional-demand";
  }
  return "?";
}

PolicyKind policy_from_string(const std::string& name) {
  if (name == "utility-driven" || name == "utility") return PolicyKind::kUtilityDriven;
  if (name == "static-partition" || name == "static") return PolicyKind::kStaticPartition;
  if (name == "proportional-equal") return PolicyKind::kProportionalEqual;
  if (name == "proportional-demand") return PolicyKind::kProportionalDemand;
  throw std::invalid_argument("unknown policy: " + name);
}

int effective_engine_threads(int configured) {
  if (const char* env = std::getenv("HETEROPLACE_FORCE_THREADS")) {
    const int forced = std::atoi(env);
    if (forced >= 1) return forced;
  }
  return std::max(configured, 1);
}

ExperimentResult run_experiment(const Scenario& scenario, const ExperimentOptions& options) {
  sim::Engine engine;
  engine.set_threads(static_cast<unsigned>(effective_engine_threads(scenario.engine_threads)));
  core::World world;

  // --- observability (optional) ----------------------------------------------
  // Constructed first so every subsystem below can borrow pointers into
  // the bundle; an obs-off scenario builds nothing and the run stays
  // bit-identical to the uninstrumented path (pinned by tests/obs_test.cpp).
  Observability obs = make_observability(scenario.obs, scenario.slos);
  if (obs.trace) {
    engine.set_observer(obs.trace.get());
    obs.trace->set_process_name(0, "global");
    obs.trace->set_process_name(1, scenario.name.empty() ? "world" : scenario.name);
  }
  if (obs.profiler) engine.enable_timing();

  // --- cluster & apps -------------------------------------------------------
  populate_cluster(world.cluster(), scenario.cluster);
  for (const auto& app : scenario.apps) {
    world.add_app(workload::TxApp{app.spec, app.trace});
  }

  // --- job stream -----------------------------------------------------------
  util::Rng rng(scenario.seed);
  std::vector<workload::PhasedPoissonArrivals::Phase> phases;
  phases.push_back({util::Seconds{scenario.jobs.mean_interarrival_s}, scenario.jobs.count});
  if (scenario.jobs.tail_count > 0 && scenario.jobs.tail_mean_interarrival_s > 0.0) {
    phases.push_back(
        {util::Seconds{scenario.jobs.tail_mean_interarrival_s}, scenario.jobs.tail_count});
  }
  workload::PhasedPoissonArrivals arrivals{util::Seconds{0.0}, std::move(phases)};
  const auto job_specs = workload::generate_jobs(arrivals, scenario.jobs.tmpl, rng);

  // --- models ----------------------------------------------------------------
  auto job_model = std::make_shared<utility::JobUtilityModel>(
      utility::make_utility(scenario.jobs.utility_shape));
  auto tx_model = std::make_shared<utility::TxUtilityModel>();

  // --- policy ----------------------------------------------------------------
  std::unique_ptr<core::PlacementPolicy> policy = make_experiment_policy(
      options, scenario.controller.solver, job_model, tx_model, scenario.seed ^ 0xD1CEBA5EULL);

  // --- controller & metrics ---------------------------------------------------
  core::ControllerConfig ctrl_cfg;
  ctrl_cfg.cycle = util::Seconds{scenario.controller.cycle_s};
  // The one world is shard 0: a single-cluster run gains no concurrency
  // from engine.threads > 1, but tagging keeps the batch machinery on
  // the exact same code path the federated runner exercises (and the
  // bit-identity pin non-vacuous).
  ctrl_cfg.shard = 0;
  core::PlacementController controller(engine, world, std::move(policy),
                                       scenario.controller.latencies, ctrl_cfg);
  if (obs.any()) controller.set_obs(obs.context(1));

  MetricsRecorder recorder(world, job_model, tx_model);
  recorder.summary().scenario = scenario.name;
  recorder.summary().policy = to_string(options.policy);
  // The one world's SLA ledger (pid 1; created lazily by context()).
  obs::SlaLedger* const sla = obs.sla_on ? obs.context(1).sla : nullptr;
  recorder.set_sla(sla);

  long invariant_violations = 0;
  controller.set_observer([&](const core::CycleReport& report) {
    recorder.on_cycle(report);
    if (options.validate_invariants) {
      const auto issues = world.cluster().validate();
      invariant_violations += static_cast<long>(issues.size());
      for (const auto& msg : issues) util::log_warn() << "invariant: " << msg;
    }
  });
  controller.executor().set_completion_callback(
      [&](const workload::Job& job) { recorder.on_job_completed(job); });

  // --- power subsystem (optional) ---------------------------------------------
  // Constructed after the cluster is populated; started after the
  // controller so its kPower ticks interleave deterministically. A
  // power-disabled run creates nothing here and stays bit-identical to
  // the pre-power runner (pinned by tests/power_test.cpp).
  std::unique_ptr<power::PowerManager> power_mgr;
  if (scenario.power.enabled) {
    power_mgr = make_power_manager(engine, world, scenario.power, scenario.controller.cycle_s,
                                   /*cap_w_override=*/-1.0, /*shard=*/0);
    if (obs.any()) power_mgr->set_obs(obs.context(1));
    // When a power tick lands on the same timestamp as a finished control
    // cycle, reuse the cycle's post-apply PlacementProblem skeleton
    // instead of rebuilding it from the world (identical by
    // construction: nothing mutates the world between kController and
    // kPower at one timestamp in this runner).
    controller.enable_problem_cache();
    power_mgr->set_problem_provider(
        [&controller](util::Seconds now) { return controller.cached_problem(now); });
  }

  const double horizon =
      options.horizon_override_s > 0.0 ? options.horizon_override_s : scenario.horizon_s;

  // --- fault injection (optional) ---------------------------------------------
  // A faults-disabled run creates nothing here and stays bit-identical to
  // the pre-fault runner (pinned by tests/fault_test.cpp).
  std::unique_ptr<faults::FaultInjector> injector;
  if (scenario.faults.enabled) {
    const std::vector<std::size_t> nodes_per_domain{
        static_cast<std::size_t>(scenario.cluster.total_nodes())};
    validate_fault_spec(scenario.faults, nodes_per_domain, /*federated=*/false,
                        /*migration_enabled=*/false, horizon);
    faults::FaultOptions fault_opts;
    fault_opts.checkpoint_interval_s = scenario.faults.checkpoint_interval_s;
    fault_opts.max_concurrent_repairs = scenario.faults.max_concurrent_repairs;
    injector = std::make_unique<faults::FaultInjector>(
        engine,
        std::vector<faults::DomainHooks>{{&world, &controller, power_mgr.get()}},
        build_fault_schedule(scenario.faults, scenario.seed, horizon, nodes_per_domain),
        fault_opts);
    if (obs.any()) injector->set_obs(obs.context(0));
  }

  // --- schedule arrivals, sampling, control loop ------------------------------
  for (const auto& spec : job_specs) {
    engine.schedule_at(spec.submit_time, sim::EventPriority::kWorkloadArrival,
                       [&world, spec, sla] {
                         world.submit_job(spec);
                         if (sla != nullptr) sla->on_admit(spec.id, spec.submit_time.get());
                       });
  }
  auto sample_power = [&] {
    if (!power_mgr) return;
    const double t = engine.now().get();
    recorder.series().add("power_w", t, power_mgr->current_draw_w());
    recorder.series().add("energy_wh", t, power_mgr->energy_wh(engine.now()));
    recorder.series().add("power_parked_nodes", t,
                          static_cast<double>(power_mgr->parked_count()));
  };
  auto sample_faults = [&] {
    if (!injector) return;
    const util::Seconds now = engine.now();
    const double t = now.get();
    recorder.series().add("availability", t, injector->availability(0));
    recorder.series().add("fault_failed_nodes", t,
                          static_cast<double>(injector->failed_node_count(0)));
    recorder.series().add("fault_downtime_s", t, injector->downtime_s(0, now));
    recorder.series().add("jobs_lost_progress_s", t,
                          injector->stats(0, now).jobs_lost_progress_s);
  };
  // Per-class placeable-capacity series; gated on explicit classes so a
  // scalar run records nothing new (its digest is pinned).
  auto sample_classes = [&] {
    const auto& reg = world.cluster().classes();
    if (!reg.explicit_classes()) return;
    const double t = engine.now().get();
    const auto by_class = world.cluster().placeable_capacity_by_class();
    for (std::size_t ci = 0; ci < by_class.size(); ++ci) {
      recorder.series().add(
          "class_" + reg.at(static_cast<cluster::ClassId>(ci)).name + "_placeable_mhz", t,
          by_class[ci].cpu.get());
    }
  };
  // Periodic sampling, self-rescheduling.
  const util::Seconds sample_dt{scenario.sample_interval_s};
  std::function<void()> sample_tick = [&] {
    const obs::ScopedTimer sample_timer(obs.profiler.get(), obs::Phase::kSampling);
    recorder.sample(engine.now());
    sample_power();
    sample_faults();
    sample_classes();
    if (obs.alerts) obs.alerts->evaluate(engine.now().get(), obs.ledger_list());
    engine.schedule_in(sample_dt, sim::EventPriority::kSampling, sample_tick);
  };
  engine.schedule_in(sample_dt, sim::EventPriority::kSampling, sample_tick);
  controller.start();
  if (power_mgr) power_mgr->start();
  if (injector) injector->start();

  // --- run ---------------------------------------------------------------------
  const std::size_t total_jobs = job_specs.size();
  if (horizon > 0.0) {
    engine.run_until(util::Seconds{horizon});
  } else {
    // Run until every job completes (chunked so the perpetual control
    // loop does not spin forever), capped for safety.
    const double chunk = std::max(10.0 * scenario.controller.cycle_s, 6000.0);
    while (world.completed_count() < total_jobs &&
           engine.now().get() < options.max_sim_time_s) {
      engine.run_until(engine.now() + util::Seconds{chunk});
    }
  }

  // --- finalize -----------------------------------------------------------------
  recorder.sample(engine.now());
  sample_power();
  sample_faults();
  sample_classes();
  if (obs.alerts) obs.alerts->evaluate(engine.now().get(), obs.ledger_list());
  ExperimentResult result;
  result.summary = recorder.summary();
  result.summary.jobs_submitted = static_cast<long>(world.submitted_count());
  result.summary.sim_end_time_s = engine.now().get();
  result.summary.invariant_violations = invariant_violations;
  if (result.summary.jobs_completed > 0) {
    result.summary.goal_met_fraction /= static_cast<double>(result.summary.jobs_completed);
  }
  if (injector) {
    const util::Seconds end = engine.now();
    const faults::DomainFaultStats tot = injector->totals(end);
    result.summary.fault_node_crashes = tot.node_crashes;
    result.summary.fault_link_faults = tot.link_faults;
    result.summary.fault_blackouts = tot.blackouts;
    result.summary.jobs_reverted = tot.jobs_reverted;
    result.summary.jobs_lost_progress_s = tot.jobs_lost_progress_s;
    result.summary.fault_downtime_s = tot.downtime_s;
    result.summary.fault_mttr_s = injector->mttr_s();
    result.summary.availability =
        end.get() > 0.0 ? 1.0 - tot.downtime_s / end.get() : 1.0;
  }
  result.series = std::move(recorder.series());

  // --- observability export -----------------------------------------------
  if (obs.profiler) {
    result.profile = obs.profiler->report();
    append_engine_profile(result.profile, engine.timing(), engine.parallel_batches());
  }
  if (obs.metrics) {
    obs.metrics->gauge("run_sim_end_seconds", "Simulated end time of the run")
        .set(engine.now().get());
    obs.metrics->gauge("run_jobs_submitted", "Jobs submitted over the run")
        .set(static_cast<double>(result.summary.jobs_submitted));
    obs.metrics->gauge("run_jobs_completed", "Jobs completed over the run")
        .set(static_cast<double>(result.summary.jobs_completed));
    obs.metrics->gauge("engine_events_total", "Events the engine dispatched")
        .set(static_cast<double>(engine.events_executed()));
    if (world.cluster().classes().explicit_classes()) {
      const auto by_class = world.cluster().placeable_capacity_by_class();
      for (std::size_t ci = 0; ci < by_class.size(); ++ci) {
        const auto& c = world.cluster().classes().at(static_cast<cluster::ClassId>(ci));
        obs.metrics
            ->gauge("cluster_class_placeable_mhz", "Placeable CPU per machine class",
                    obs::prometheus_label("class", c.name))
            .set(by_class[ci].cpu.get());
      }
    }
  }
  export_observability(scenario.obs, obs);
  return result;
}

}  // namespace heteroplace::scenario
