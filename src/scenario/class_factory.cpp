#include "scenario/class_factory.hpp"

#include <algorithm>
#include <set>

#include "util/config.hpp"

namespace heteroplace::scenario {

std::vector<std::string> parse_tag_list(const std::string& csv, const std::string& key) {
  std::vector<std::string> tags;
  if (csv.empty()) return tags;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string tag =
        csv.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
    if (tag.empty()) throw util::ConfigError(key + ": empty tag in list '" + csv + "'");
    if (tag.find_first_of(" \t") != std::string::npos) {
      throw util::ConfigError(key + ": tag '" + tag + "' contains whitespace");
    }
    tags.push_back(tag);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  std::sort(tags.begin(), tags.end());
  tags.erase(std::unique(tags.begin(), tags.end()), tags.end());
  return tags;
}

void validate_class_pools(const ClusterSpec& cluster) {
  std::set<std::string> seen;
  for (const auto& pool : cluster.classes) {
    const cluster::MachineClass& c = pool.klass;
    const std::string p = "class." + c.name + ".";
    if (c.name.empty()) throw util::ConfigError("classes: empty class name");
    if (!seen.insert(c.name).second) {
      throw util::ConfigError("classes: duplicate class name '" + c.name + "'");
    }
    if (pool.count < 1) throw util::ConfigError(p + "count: must be positive");
    if (c.cores < 1) throw util::ConfigError(p + "cores: must be positive");
    if (c.core_mhz <= 0.0) throw util::ConfigError(p + "core_mhz: must be positive");
    if (c.mem_mb <= 0.0) throw util::ConfigError(p + "mem_mb: must be positive");
    if (c.speed_factor <= 0.0 || c.speed_factor > 1.0) {
      throw util::ConfigError(p + "speed_factor: must be in (0, 1]");
    }
  }
}

bool cluster_admits(const ClusterSpec& cluster, const cluster::ConstraintSet& c) {
  if (!cluster.heterogeneous()) return c.admits(cluster::MachineClass{});
  for (const auto& pool : cluster.classes) {
    if (pool.count > 0 && c.admits(pool.klass)) return true;
  }
  return false;
}

void validate_constraint(const cluster::ConstraintSet& c,
                         const std::vector<const ClusterSpec*>& clusters,
                         const std::string& what) {
  if (c.empty()) return;
  for (const ClusterSpec* cl : clusters) {
    if (cluster_admits(*cl, c)) return;
  }
  std::string desc;
  if (!c.arch.empty()) desc += " arch=" + c.arch;
  for (const auto& tag : c.accel) desc += " accel=" + tag;
  if (c.min_core_mhz > 0.0) desc += " min_core_mhz=" + std::to_string(c.min_core_mhz);
  throw util::ConfigError(what + ": no machine class satisfies" + desc +
                          " — the constrained work could never be placed");
}

void populate_cluster(cluster::Cluster& cl, const ClusterSpec& spec) {
  if (!spec.heterogeneous()) {
    // The legacy scalar path, byte for byte: default-class nodes of the
    // flat per-node capacity.
    cl.add_nodes(spec.nodes, cluster::Resources{util::CpuMhz{spec.cpu_per_node_mhz},
                                                util::MemMb{spec.mem_per_node_mb}});
    return;
  }
  for (const auto& pool : spec.classes) {
    const cluster::ClassId id = cl.add_class(pool.klass);
    if (pool.count > 0) cl.add_class_nodes(id, pool.count);
  }
}

}  // namespace heteroplace::scenario
