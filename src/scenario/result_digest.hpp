#pragma once

// Bit-exact run fingerprints.
//
// The parallel engine's contract is that engine.threads = N reproduces
// the threads = 1 reference bit for bit. That claim is only as strong as
// the comparison, so the determinism pins (tests/parallel_engine_test)
// and the macro benchmark (bench/perf_macro) both fold a run's entire
// output — every sampled series point and the headline summary counters
// — into one 64-bit FNV-1a digest over the raw IEEE-754 bit patterns.
// A single ULP of drift anywhere in any series changes the digest.

#include <cstdint>
#include <string>

#include "scenario/experiment.hpp"
#include "scenario/federation_experiment.hpp"
#include "util/time_series.hpp"

namespace heteroplace::scenario {

/// Incremental 64-bit FNV-1a, folding values by their exact bit patterns
/// (doubles via bit_cast, so -0.0 vs 0.0 and NaN payloads all count).
class ResultDigest {
 public:
  void fold(std::uint64_t bits);
  void fold(double v);
  void fold(long v);
  void fold(const std::string& s);
  void fold(const util::TimeSeries& series);
  /// Folds series in name-sorted order so insertion order (which may
  /// legitimately differ between runner variants) does not contribute.
  void fold(const util::TimeSeriesSet& set);

  [[nodiscard]] std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_{0xcbf29ce484222325ULL};  // FNV offset basis
};

/// Digest a single-cluster run: all series plus the summary counters.
[[nodiscard]] std::uint64_t digest(const ExperimentResult& result);

/// Digest a federated run: per-domain series + summaries (in domain
/// order) plus the federation-level series and summary.
[[nodiscard]] std::uint64_t digest(const FederatedResult& result);

}  // namespace heteroplace::scenario
