#include "scenario/report.hpp"

#include <iomanip>
#include <set>
#include <sstream>

#include "util/csv.hpp"

namespace heteroplace::scenario {

void print_summary(std::ostream& os, const ExperimentSummary& s) {
  os << "=== " << s.scenario << " / " << s.policy << " ===\n";
  os << "  sim end time:        " << s.sim_end_time_s << " s over " << s.cycles << " cycles\n";
  os << "  jobs:                " << s.jobs_completed << "/" << s.jobs_submitted
     << " completed, goal met " << std::fixed << std::setprecision(3) << s.goal_met_fraction
     << "\n";
  os << "  completion ratio:    mean " << s.completion_ratio.mean() << " max "
     << s.completion_ratio.max() << "\n";
  os << "  job utility @done:   mean " << s.job_utility.mean() << " min " << s.job_utility.min()
     << "\n";
  os << "  tx utility:          mean " << s.tx_utility.mean() << " min " << s.tx_utility.min()
     << "\n";
  os << "  lr hyp utility:      mean " << s.lr_utility.mean() << " min " << s.lr_utility.min()
     << "\n";
  os << "  equalization gap:    mean " << s.equalization_gap.mean() << " (contended cycles: "
     << s.equalization_gap.count() << ")\n";
  os << "  actions:             starts " << s.actions.starts << ", suspends "
     << s.actions.suspends << ", resumes " << s.actions.resumes << ", migrations "
     << s.actions.migrations << ", inst+ " << s.actions.instance_starts << ", inst- "
     << s.actions.instance_stops << "\n";
  os << "  invariant violations: " << s.invariant_violations << "\n";
  os.unsetf(std::ios::fixed);
}

std::string summary_csv_header() {
  return "scenario,policy,jobs_completed,jobs_submitted,goal_met_fraction,"
         "completion_ratio_mean,job_utility_mean,tx_utility_mean,lr_utility_mean,"
         "equalization_gap_mean,suspends,resumes,migrations,instance_starts,cycles,"
         "sim_end_time_s";
}

std::string summary_csv_row(const ExperimentSummary& s) {
  std::ostringstream os;
  util::CsvWriter w(os);
  w.cell(s.scenario)
      .cell(s.policy)
      .cell(static_cast<long long>(s.jobs_completed))
      .cell(static_cast<long long>(s.jobs_submitted))
      .cell(s.goal_met_fraction)
      .cell(s.completion_ratio.mean())
      .cell(s.job_utility.mean())
      .cell(s.tx_utility.mean())
      .cell(s.lr_utility.mean())
      .cell(s.equalization_gap.mean())
      .cell(static_cast<long long>(s.actions.suspends))
      .cell(static_cast<long long>(s.actions.resumes))
      .cell(static_cast<long long>(s.actions.migrations))
      .cell(static_cast<long long>(s.actions.instance_starts))
      .cell(static_cast<long long>(s.cycles))
      .cell(s.sim_end_time_s);
  std::string row = os.str();
  return row;
}

void print_series_csv(std::ostream& os, const util::TimeSeriesSet& series,
                      const std::vector<std::string>& names, int every_nth) {
  if (every_nth < 1) every_nth = 1;
  util::CsvWriter w(os);
  w.cell("t");
  for (const auto& n : names) w.cell(n);
  w.row();

  std::set<double> times;
  for (const auto& n : names) {
    if (const auto* s = series.find(n)) {
      for (const auto& p : s->points()) times.insert(p.t);
    }
  }
  int idx = 0;
  for (double t : times) {
    if (idx++ % every_nth != 0) continue;
    w.cell(t);
    for (const auto& n : names) {
      const auto* s = series.find(n);
      w.cell(s != nullptr ? s->value_at(t) : 0.0);
    }
    w.row();
  }
}

}  // namespace heteroplace::scenario
