#include "scenario/power_factory.hpp"

#include <stdexcept>

#include "util/config.hpp"

namespace heteroplace::scenario {

void validate_power_spec(const PowerSpec& spec) {
  try {
    (void)power::make_consolidation_policy(spec.policy);
  } catch (const std::invalid_argument& e) {
    throw util::ConfigError(std::string("power.policy: ") + e.what());
  }
  try {
    (void)power::park_depth_from_string(spec.park_state);
  } catch (const std::invalid_argument& e) {
    throw util::ConfigError(std::string("power.park_state: ") + e.what());
  }
  if (spec.check_interval_s < 0.0) {
    throw util::ConfigError("power.check_interval_s: must be nonnegative (0 = control cycle)");
  }
  if (spec.idle_timeout_s < 0.0) {
    throw util::ConfigError("power.idle_timeout_s: must be nonnegative");
  }
  if (spec.headroom_factor < 1.0) {
    throw util::ConfigError("power.headroom_factor: must be >= 1");
  }
  if (spec.min_active_nodes < 0) {
    throw util::ConfigError("power.min_active_nodes: must be nonnegative");
  }
  if (spec.cap_w < 0.0) {
    throw util::ConfigError("power.cap_w: must be nonnegative (0 = uncapped)");
  }
  try {
    power_model_from_spec(spec).validate();
  } catch (const std::invalid_argument& e) {
    throw util::ConfigError(std::string("power.*: ") + e.what());
  }
}

power::PowerModel power_model_from_spec(const PowerSpec& spec) {
  power::PowerModel model = power::PowerModel::ladder(spec.active_w, spec.pstates);
  model.standby_w = spec.standby_w;
  model.off_w = spec.off_w;
  model.park_latency_s = spec.park_latency_s;
  model.wake_latency_s = spec.wake_latency_s;
  return model;
}

std::unique_ptr<power::PowerManager> make_power_manager(sim::Engine& engine, core::World& world,
                                                        const PowerSpec& spec, double cycle_s,
                                                        double cap_w_override, sim::ShardId shard) {
  validate_power_spec(spec);
  power::IdleParkConfig park_cfg;
  park_cfg.idle_timeout_s = spec.idle_timeout_s;
  park_cfg.headroom_factor = spec.headroom_factor;
  power::PowerOptions options;
  options.check_interval =
      util::Seconds{spec.check_interval_s > 0.0 ? spec.check_interval_s : cycle_s};
  options.park_depth = power::park_depth_from_string(spec.park_state);
  options.cap_w = cap_w_override >= 0.0 ? cap_w_override : spec.cap_w;
  options.min_active_nodes = spec.min_active_nodes;
  options.shard = shard;
  return std::make_unique<power::PowerManager>(
      engine, world, power_model_from_spec(spec),
      power::make_consolidation_policy(spec.policy, park_cfg), options);
}

}  // namespace heteroplace::scenario
